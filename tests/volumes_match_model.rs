//! Cross-crate consistency: the *actual* bytes moved by the functional
//! distributed substrate must equal the analytic volumes (Eq. 1 / Eq. 2)
//! that the cluster simulator and Table II use.

use dlrm::layers::{Activation, Mlp};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_data::DlrmConfig;
use dlrm_dist::ddp::flatten_grads;
use dlrm_dist::exchange::{forward_exchange, tables_of, ExchangeStrategy};
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(100, 64);
    cfg.dense_features = 8;
    cfg.bottom_mlp = vec![8, 4];
    cfg.emb_dim = 4;
    cfg.num_tables = 6;
    cfg.table_rows = vec![100; 6];
    cfg.top_mlp = vec![8, 1];
    cfg
}

#[test]
fn flattened_gradient_length_matches_eq1() {
    // Eq. 1: allreduce size = sum over layers of f_i*f_o + f_o.
    let cfg = tiny_cfg();
    let mut rng = seeded_rng(1, 0);
    let bottom = Mlp::new(
        cfg.dense_features,
        &cfg.bottom_mlp,
        Activation::Relu,
        &mut rng,
    );
    let top = Mlp::new(
        cfg.interaction_output_dim(),
        &cfg.top_mlp,
        Activation::None,
        &mut rng,
    );
    let flat = flatten_grads(&[&bottom, &top]);
    assert_eq!(flat.len() as u64, cfg.mlp_param_count());
    assert_eq!(flat.len() as u64 * 4, cfg.allreduce_bytes());
}

#[test]
fn alltoall_payload_volume_matches_eq2() {
    // Eq. 2: total alltoall volume = S * GN * E elements. Count the floats
    // the forward exchange actually materializes on the receive side
    // (including the rank's own slice, matching the paper's accounting).
    let cfg = tiny_cfg();
    let nranks = 3;
    let local_n = 4;
    let gn = nranks * local_n;
    let e = cfg.emb_dim;
    let s = cfg.num_tables;

    let received = CommWorld::run(nranks, |comm| {
        let me = comm.rank();
        let outs: Vec<Matrix> = tables_of(s, nranks, me)
            .into_iter()
            .map(|t| Matrix::from_fn(gn, e, |r, c| (t * 1000 + r * 10 + c) as f32))
            .collect();
        let slices = forward_exchange(
            ExchangeStrategy::Alltoall,
            &comm,
            None,
            &outs,
            s,
            local_n,
            e,
            WirePrecision::Fp32,
        );
        slices.iter().map(|m| m.len()).sum::<usize>()
    });
    let total: usize = received.iter().sum();
    assert_eq!(total as u64 * 4, cfg.alltoall_bytes(gn));
}

#[test]
fn simulator_and_config_agree_on_max_ranks() {
    for cfg in DlrmConfig::all_paper() {
        let ranks = dlrm_clustersim::experiments::paper_rank_list(&cfg, 64);
        assert!(ranks.iter().all(|&r| r <= cfg.max_ranks()));
        assert_eq!(*ranks.last().unwrap(), cfg.max_ranks().min(64));
    }
}

#[test]
fn blocking_exceeds_overlapping_everywhere_in_the_grid() {
    use dlrm_clustersim::experiments::{scaling_sweep, ScalingKind};
    use dlrm_clustersim::{Calibration, Cluster, RunMode, Strategy};
    let cluster = Cluster::cluster_64socket();
    let calib = Calibration::default();
    for cfg in DlrmConfig::all_paper() {
        for kind in [ScalingKind::Strong, ScalingKind::Weak] {
            let ov = scaling_sweep(&cfg, &cluster, &calib, kind, RunMode::Overlapping);
            let bl = scaling_sweep(&cfg, &cluster, &calib, kind, RunMode::Blocking);
            for (o, b) in ov.iter().zip(&bl) {
                assert_eq!((o.ranks, o.strategy), (b.ranks, b.strategy));
                // MPI overlap inflates compute, so only the CCL rows are
                // guaranteed to be <= blocking; check those strictly.
                if o.strategy == Strategy::CclAlltoall {
                    assert!(
                        o.breakdown.total() <= b.breakdown.total() + 1e-12,
                        "{} {:?} R={}: overlap worse than blocking",
                        cfg.name,
                        kind,
                        o.ranks
                    );
                }
            }
        }
    }
}
