//! End-to-end gradient check: finite differences through the *entire*
//! DLRM (bottom MLP → embeddings → interaction → top MLP → BCE loss)
//! against the analytic gradients the training step applies.

use dlrm::layers::Execution;
use dlrm::model::DlrmModel;
use dlrm::precision::PrecisionMode;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_kernels::embedding::UpdateStrategy;
use dlrm_kernels::loss::bce_with_logits_loss;
use dlrm_tensor::init::seeded_rng;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(16, 1024);
    cfg.dense_features = 5;
    cfg.bottom_mlp = vec![6, 4];
    cfg.emb_dim = 4;
    cfg.num_tables = 2;
    cfg.table_rows = vec![16, 8];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![6, 1];
    cfg
}

fn model_and_batch() -> (DlrmModel, MiniBatch) {
    let cfg = tiny_cfg();
    let batch = MiniBatch::random(&cfg, 6, IndexDistribution::Uniform, &mut seeded_rng(31, 0));
    let model = DlrmModel::new(
        &cfg,
        Execution::Reference,
        UpdateStrategy::Reference,
        PrecisionMode::Fp32,
        8,
    );
    (model, batch)
}

fn loss_of(model: &mut DlrmModel, batch: &MiniBatch) -> f64 {
    let logits = model.forward(batch);
    bce_with_logits_loss(&logits, &batch.labels)
}

/// Analytic gradient via one SGD step of known learning rate: after
/// `train_step(lr)`, `w' = w − lr·g`, so `g = (w − w') / lr`.
fn implied_gradient(w_before: f32, w_after: f32, lr: f32) -> f64 {
    ((w_before - w_after) / lr) as f64
}

#[test]
fn full_model_gradients_match_finite_differences() {
    let lr = 1e-3f32;
    let h = 1e-2f32;

    // Probe a handful of parameters spread across every component.
    // (component, layer-or-table, row, col)
    enum Probe {
        Bottom(usize, usize, usize),
        Top(usize, usize, usize),
        Table(usize, usize, usize),
    }
    let probes = [
        Probe::Bottom(0, 2, 3),
        Probe::Bottom(1, 1, 0),
        Probe::Top(0, 3, 5),
        Probe::Top(1, 0, 2),
        Probe::Table(0, 3, 1),
        Probe::Table(1, 5, 2),
    ];

    for (pi, probe) in probes.iter().enumerate() {
        // Fresh model per probe: train_step mutates everything.
        let (mut model, batch) = model_and_batch();

        let read = |m: &DlrmModel| -> f32 {
            match probe {
                Probe::Bottom(l, r, c) => m.bottom.layers[*l].w[(*r, *c)],
                Probe::Top(l, r, c) => m.top.layers[*l].w[(*r, *c)],
                Probe::Table(t, r, c) => m.tables[*t].weight[(*r, *c)],
            }
        };
        let write = |m: &mut DlrmModel, v: f32| match probe {
            Probe::Bottom(l, r, c) => m.bottom.layers[*l].w[(*r, *c)] = v,
            Probe::Top(l, r, c) => m.top.layers[*l].w[(*r, *c)] = v,
            Probe::Table(t, r, c) => m.tables[*t].weight[(*r, *c)] = v,
        };

        // Finite difference of the loss.
        let orig = read(&model);
        write(&mut model, orig + h);
        let lp = loss_of(&mut model, &batch);
        write(&mut model, orig - h);
        let lm = loss_of(&mut model, &batch);
        write(&mut model, orig);
        let fd = (lp - lm) / (2.0 * h as f64);

        // Analytic gradient implied by one SGD step.
        let before = read(&model);
        let _ = model.train_step(&batch, lr);
        let after = read(&model);
        let analytic = implied_gradient(before, after, lr);

        // Embedding-table probes may legitimately have zero gradient when
        // the row was never looked up; the finite difference agrees (0≈0).
        assert!(
            (analytic - fd).abs() < 2e-3_f64.max(0.15 * fd.abs()),
            "probe {pi}: analytic {analytic:.6} vs finite-difference {fd:.6}"
        );
    }
}

#[test]
fn at_least_one_table_row_receives_gradient() {
    // Guard that the previous test exercises real embedding gradients.
    let lr = 0.1f32;
    let (mut model, batch) = model_and_batch();
    let before: Vec<Vec<f32>> = model
        .tables
        .iter()
        .map(|t| t.weight.as_slice().to_vec())
        .collect();
    let _ = model.train_step(&batch, lr);
    let mut changed = 0usize;
    for (t, b) in model.tables.iter().zip(&before) {
        changed += t
            .weight
            .as_slice()
            .iter()
            .zip(b)
            .filter(|(x, y)| x != y)
            .count();
    }
    assert!(changed > 0, "embedding tables must receive updates");
}
