//! Workspace integration tests: the public API exercised across crates the
//! way the examples use it.

use dlrm::layers::Execution;
use dlrm::metrics::roc_auc;
use dlrm::model::DlrmModel;
use dlrm::precision::PrecisionMode;
use dlrm::trainer::{Trainer, TrainerOptions};
use dlrm_data::{ClickLog, DlrmConfig, IndexDistribution};
use dlrm_kernels::embedding::UpdateStrategy;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(2_000, 64);
    cfg.dense_features = 16;
    cfg.bottom_mlp = vec![32, 16];
    cfg.emb_dim = 16;
    cfg.num_tables = 4;
    cfg.table_rows = vec![2000, 1000, 500, 200];
    cfg.lookups_per_table = 3;
    cfg.top_mlp = vec![32, 16, 1];
    cfg
}

#[test]
fn full_pipeline_learns_synthetic_ctr() {
    let cfg = tiny_cfg();
    let log = ClickLog::new(&cfg, IndexDistribution::Zipf { s: 1.05 }, 5);
    let model = DlrmModel::new(
        &cfg,
        Execution::optimized(2),
        UpdateStrategy::RaceFree,
        PrecisionMode::Fp32,
        1,
    );
    let mut trainer = Trainer::new(
        model,
        &log,
        TrainerOptions {
            lr: 0.15,
            batch_size: 96,
            batches_per_epoch: 250,
            eval_every_frac: 0.5,
            eval_batches: 6,
        },
    );
    let (before, _) = trainer.evaluate();
    let reports = trainer.run_epoch();
    let after = reports.last().unwrap().auc;
    assert!(
        after > before + 0.08,
        "training must lift AUC: {before:.3} -> {after:.3}"
    );
}

#[test]
fn all_update_strategies_learn_equally_well() {
    // Every Figure 7 strategy is a *performance* variant; accuracy must be
    // unchanged. Train briefly with each and compare final AUC closely.
    let cfg = tiny_cfg();
    let log = ClickLog::new(&cfg, IndexDistribution::Uniform, 9);
    let mut finals = Vec::new();
    for strategy in [
        UpdateStrategy::AtomicXchg,
        UpdateStrategy::Rtm,
        UpdateStrategy::RaceFree,
    ] {
        let model = DlrmModel::new(
            &cfg,
            Execution::optimized(3),
            strategy,
            PrecisionMode::Fp32,
            2,
        );
        let mut trainer = Trainer::new(
            model,
            &log,
            TrainerOptions {
                lr: 0.15,
                batch_size: 64,
                batches_per_epoch: 120,
                eval_every_frac: 1.0,
                eval_batches: 6,
            },
        );
        finals.push(trainer.run_epoch().last().unwrap().auc);
    }
    let (min, max) = (
        finals.iter().cloned().fold(f64::INFINITY, f64::min),
        finals.iter().cloned().fold(0.0, f64::max),
    );
    assert!(
        max - min < 0.02,
        "strategies must agree on accuracy: {finals:?}"
    );
}

#[test]
fn split_sgd_tracks_fp32_and_pure_bf16_does_not() {
    let cfg = tiny_cfg();
    let log = ClickLog::new(&cfg, IndexDistribution::Uniform, 31);
    let run = |mode: PrecisionMode| -> f64 {
        let model = DlrmModel::new(
            &cfg,
            Execution::optimized(2),
            UpdateStrategy::RaceFree,
            mode,
            77,
        );
        let mut trainer = Trainer::new(
            model,
            &log,
            TrainerOptions {
                // Small steps relative to BF16's 8-bit mantissa: state-free
                // BF16 loses most updates to truncation and stalls, while
                // Split-SGD's 16 hidden bits keep it glued to FP32.
                lr: 0.04,
                batch_size: 96,
                batches_per_epoch: 700,
                eval_every_frac: 1.0,
                eval_batches: 16,
            },
        );
        trainer.run_epoch().last().unwrap().auc
    };
    let fp32 = run(PrecisionMode::Fp32);
    let split = run(PrecisionMode::Bf16Split);
    let pure = run(PrecisionMode::Bf16Pure);
    assert!(
        (fp32 - split).abs() < 0.01,
        "Split-SGD must track FP32: {fp32:.4} vs {split:.4}"
    );
    assert!(
        fp32 - pure > 0.01,
        "state-free BF16 must fall behind: fp32 {fp32:.4} vs pure {pure:.4}"
    );
}

#[test]
fn predictions_are_probabilities() {
    let cfg = tiny_cfg();
    let log = ClickLog::new(&cfg, IndexDistribution::Uniform, 3);
    let mut model = DlrmModel::new(
        &cfg,
        Execution::Reference,
        UpdateStrategy::Reference,
        PrecisionMode::Fp32,
        4,
    );
    let batch = log.batch(32, 0, 1);
    let probs = model.predict_proba(&batch);
    assert_eq!(probs.len(), 32);
    assert!(probs.iter().all(|&p| (0.0..=1.0).contains(&p)));
    // And the AUC of an untrained model is near chance.
    let auc = roc_auc(&probs, &batch.labels);
    assert!((0.2..0.8).contains(&auc), "untrained AUC {auc}");
}
