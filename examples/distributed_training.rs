//! Hybrid-parallel distributed training on threads-as-ranks: model-parallel
//! embeddings + data-parallel MLPs, with all four embedding-exchange
//! strategies, checked against the single-process trainer.
//!
//! ```text
//! cargo run --release -p dlrm-repro --example distributed_training
//! ```

use dlrm::layers::Execution;
use dlrm::model::DlrmModel;
use dlrm::precision::PrecisionMode;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_dist::{distributed::run_training, DistOptions, ExchangeStrategy};
use dlrm_kernels::embedding::UpdateStrategy;
use dlrm_tensor::init::seeded_rng;

fn main() {
    // A shrunken Small config: 8 tables so we can scale to 8 thread-ranks.
    let mut cfg = DlrmConfig::small().scaled_down(10_000, 64);
    cfg.dense_features = 32;
    cfg.bottom_mlp = vec![64, 32];
    cfg.emb_dim = 32;
    cfg.top_mlp = vec![64, 32, 1];
    let gn = 64usize;
    let steps = 6usize;
    let lr = 0.1f32;
    let seed = 2024u64;

    // Global minibatches — every rank slices the same stream.
    let batches: Vec<MiniBatch> = (0..steps)
        .map(|i| {
            MiniBatch::random(
                &cfg,
                gn,
                IndexDistribution::Uniform,
                &mut seeded_rng(1_000 + i as u64, 3),
            )
        })
        .collect();

    // Single-process reference trajectory.
    let mut reference = DlrmModel::new(
        &cfg,
        Execution::optimized(2),
        UpdateStrategy::RaceFree,
        PrecisionMode::Fp32,
        seed,
    );
    let ref_losses: Vec<f64> = batches
        .iter()
        .map(|b| reference.train_step(b, lr))
        .collect();
    println!(
        "single-process loss trajectory: {:?}\n",
        round3(&ref_losses)
    );

    for strategy in ExchangeStrategy::ALL {
        for ranks in [2usize, 4, 8] {
            let opts = DistOptions {
                strategy,
                seed,
                ..Default::default()
            };
            let per_rank = run_training(&cfg, ranks, &opts, &batches, lr);
            // Mean of local losses = the global-batch loss.
            let mean: Vec<f64> = (0..steps)
                .map(|s| per_rank.iter().map(|r| r[s]).sum::<f64>() / ranks as f64)
                .collect();
            let max_dev = mean
                .iter()
                .zip(&ref_losses)
                .map(|(a, b)| (a - b).abs())
                .fold(0.0f64, f64::max);
            println!(
                "{strategy:<14} R={ranks}:  losses {:?}  (max deviation vs single-process: {max_dev:.2e})",
                round3(&mean)
            );
            assert!(
                max_dev < 1e-2,
                "distributed run diverged from the single-process reference"
            );
        }
        println!();
    }
    println!("All strategies at all rank counts reproduce the single-process trajectory.");
}

fn round3(v: &[f64]) -> Vec<f64> {
    v.iter().map(|x| (x * 1000.0).round() / 1000.0).collect()
}
