//! Mixed-precision ads-CTR training: the Split-SGD-BF16 optimizer vs FP32
//! and the failed alternatives, on an MLPerf-shaped model.
//!
//! Demonstrates the paper's Section VII claims end to end:
//! * Split-SGD-BF16 matches FP32 accuracy with zero extra master-weight
//!   storage (the hi/lo planes together *are* the FP32 weights);
//! * only 8 LSBs of optimizer state is not enough;
//! * the forward/backward passes read a genuine BF16 tensor (2× bandwidth).
//!
//! ```text
//! cargo run --release -p dlrm-repro --example mixed_precision
//! ```

use dlrm::layers::Execution;
use dlrm::prelude::*;
use dlrm_data::{ClickLog, DlrmConfig, IndexDistribution};

fn main() {
    let mut cfg = DlrmConfig::mlperf().scaled_down(20_000, 16);
    cfg.bottom_mlp = vec![128, 64, 32];
    cfg.emb_dim = 32;
    cfg.top_mlp = vec![128, 64, 32, 1];
    println!(
        "MLPerf-shaped model: 26 tables, E={}, Zipf click traffic\n",
        cfg.emb_dim
    );
    let log = ClickLog::new(&cfg, IndexDistribution::Zipf { s: 1.05 }, 99);

    let opts = TrainerOptions {
        lr: 0.15,
        batch_size: 128,
        batches_per_epoch: 400,
        eval_every_frac: 0.25,
        eval_batches: 8,
    };

    println!(
        "{:<28} {:>10} {:>10} {:>14}",
        "optimizer", "AUC @50%", "AUC @100%", "extra state"
    );
    let mut fp32_final = 0.0;
    for mode in [
        PrecisionMode::Fp32,
        PrecisionMode::Bf16Split,
        PrecisionMode::Fp24,
        PrecisionMode::Bf16Split8,
        PrecisionMode::Bf16Pure,
    ] {
        let model = DlrmModel::new(
            &cfg,
            Execution::optimized(2),
            UpdateStrategy::RaceFree,
            mode,
            4242,
        );
        let params = model.param_count();
        let mut trainer = Trainer::new(model, &log, opts.clone());
        let reports = trainer.run_epoch();
        let mid = reports[1].auc; // the 50% checkpoint (4 reports/epoch)
        let fin = reports.last().unwrap().auc;
        if mode == PrecisionMode::Fp32 {
            fp32_final = fin;
        }
        // Split modes store weights as 2x16-bit planes = FP32-equivalent;
        // classic mixed precision would need a full FP32 master copy.
        let extra = match mode {
            PrecisionMode::Bf16Split => "0 B (vs 4 B/param master)".to_string(),
            PrecisionMode::Bf16Split8 => format!("{} B total lo", params), // 1 byte/param
            _ => "0 B".to_string(),
        };
        println!(
            "{:<28} {:>10.4} {:>10.4} {:>14}",
            mode.to_string(),
            mid,
            fin,
            extra
        );
    }
    println!(
        "\nFP32 final AUC {fp32_final:.4}; the BF16 Split-SGD row should match it\n\
         within ~0.001 while Fp24/8-LSB/no-state fall behind — Figure 16's shape."
    );
}
