//! Quickstart: build a small DLRM, train it on a synthetic click log, and
//! watch the test-set ROC AUC climb.
//!
//! ```text
//! cargo run --release -p dlrm-repro --example quickstart
//! ```

use dlrm::layers::Execution;
use dlrm::prelude::*;
use dlrm_data::{ClickLog, DlrmConfig, IndexDistribution};

fn main() {
    // A laptop-sized instance of the paper's Small configuration: same
    // topology (8 tables, E=64, 2-layer bottom MLP, deep top MLP), tables
    // capped at 50k rows.
    let cfg = DlrmConfig::small().scaled_down(50_000, 16);
    println!(
        "config: {} — {} tables x {} rows, E={}",
        cfg.name, cfg.num_tables, cfg.table_rows[0], cfg.emb_dim
    );

    // A synthetic click log with learnable structure (stands in for real
    // click data; see DESIGN.md).
    let log = ClickLog::new(&cfg, IndexDistribution::Zipf { s: 1.05 }, 7);

    // The optimized single-socket trainer: thread-pool kernels and the
    // race-free embedding update (the paper's best single-socket variant).
    let model = DlrmModel::new(
        &cfg,
        Execution::optimized(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        ),
        UpdateStrategy::RaceFree,
        PrecisionMode::Fp32,
        42,
    );

    let mut trainer = Trainer::new(
        model,
        &log,
        TrainerOptions {
            lr: 0.1,
            batch_size: 128,
            batches_per_epoch: 300,
            eval_every_frac: 0.1,
            eval_batches: 8,
        },
    );

    let (auc0, _) = trainer.evaluate();
    println!("untrained AUC: {auc0:.4}\n");
    println!(
        "{:>8}  {:>8}  {:>8}  {:>10}",
        "% epoch", "AUC", "logloss", "train loss"
    );
    for r in trainer.run_epoch() {
        println!(
            "{:>7.0}%  {:>8.4}  {:>8.4}  {:>10.4}",
            r.epoch_frac * 100.0,
            r.auc,
            r.logloss,
            r.train_loss
        );
    }

    let prof = &trainer.model.profiler;
    let (e, m, r) = prof.fractions();
    println!(
        "\n{:.1} ms/iteration — time split: embeddings {:.0}%, MLP {:.0}%, rest {:.0}%",
        prof.ms_per_iter(),
        e * 100.0,
        m * 100.0,
        r * 100.0
    );
}
