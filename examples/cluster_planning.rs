//! Capacity planning with the cluster simulator: given a DLRM
//! configuration, how many sockets should you buy, which exchange strategy
//! should you run, and is the big shared-memory box or the HPC cluster the
//! better machine?
//!
//! ```text
//! cargo run --release -p dlrm-repro --example cluster_planning
//! ```

use dlrm_clustersim::experiments::{paper_rank_list, scaling_sweep, ScalingKind};
use dlrm_clustersim::{Calibration, Cluster, RunMode, Strategy};
use dlrm_data::DlrmConfig;
use dlrm_dist::DistCharacteristics;
use dlrm_tensor::util::format_bytes;

fn main() {
    let calib = Calibration::default();
    for cfg in DlrmConfig::all_paper() {
        println!("==============================================");
        println!("{} configuration", cfg.name);
        println!("==============================================");
        let ch = DistCharacteristics::for_config(&cfg, 96 * (1 << 30));
        println!(
            "tables need {} -> at least {} socket(s); at most {} ranks (1 table/rank min)",
            format_bytes(ch.table_bytes),
            ch.min_sockets,
            ch.max_ranks
        );
        println!(
            "per-iteration volumes: allreduce {} (Eq.1), alltoall {} (Eq.2)",
            format_bytes(ch.allreduce_bytes),
            format_bytes(ch.alltoall_bytes)
        );

        // Which strategy? Compare at the largest usable rank count.
        let cluster = Cluster::cluster_64socket();
        let pts = scaling_sweep(
            &cfg,
            &cluster,
            &calib,
            ScalingKind::Strong,
            RunMode::Overlapping,
        );
        let top_r = *paper_rank_list(&cfg, 64).last().unwrap();
        println!("\nstrategy comparison at {top_r} ranks (strong scaling, ms/iter):");
        for s in Strategy::ALL {
            if let Some(p) = pts.iter().find(|p| p.strategy == s && p.ranks == top_r) {
                println!(
                    "  {:<14} {:>8.1} ms   speedup {:>5.2}x   efficiency {:>4.0}%",
                    s.to_string(),
                    p.breakdown.total() * 1e3,
                    p.speedup,
                    p.efficiency * 100.0
                );
            }
        }

        // Sweet spot: the largest rank count whose efficiency stays >= 50%.
        let best = pts
            .iter()
            .filter(|p| p.strategy == Strategy::CclAlltoall && p.efficiency >= 0.5)
            .max_by_key(|p| p.ranks);
        if let Some(p) = best {
            println!(
                "\nrecommendation: {} ranks with CCL-Alltoall ({:.0}% efficiency, {:.2}x)",
                p.ranks,
                p.efficiency * 100.0,
                p.speedup
            );
        } else {
            println!(
                "\nrecommendation: stay at the minimum socket count — communication dominates."
            );
        }

        // 8-socket appliance vs cluster, if the config fits.
        if ch.min_sockets <= 8 && cfg.max_ranks() >= 8 {
            let node = Cluster::node_8socket();
            let node_pts = scaling_sweep(
                &cfg,
                &node,
                &calib,
                ScalingKind::Strong,
                RunMode::Overlapping,
            );
            let node8 = node_pts
                .iter()
                .find(|p| p.strategy == Strategy::CclAlltoall && p.ranks == 8);
            let clus8 = pts
                .iter()
                .find(|p| p.strategy == Strategy::CclAlltoall && p.ranks == 8);
            if let (Some(n8), Some(c8)) = (node8, clus8) {
                println!(
                    "8 sockets as one UPI node: {:.1} ms/iter vs 8 cluster sockets: {:.1} ms/iter",
                    n8.breakdown.total() * 1e3,
                    c8.breakdown.total() * 1e3
                );
                println!("(the appliance needs no external fabric — Section VI-D3's point)");
            }
        }
        println!();
    }
}
