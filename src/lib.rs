//! Umbrella crate for the DLRM CPU-cluster reproduction workspace.
//!
//! This crate exists to host the runnable examples (`examples/`) and the
//! cross-crate integration tests (`tests/`); the actual library surface
//! lives in the member crates.

pub mod prelude {
    pub use dlrm_tensor::{assert_allclose, Matrix};
}
