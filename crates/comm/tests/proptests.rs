//! Property-based tests for the collectives: results must equal the
//! mathematically obvious reductions for arbitrary rank counts and payloads.

use dlrm_comm::collectives;
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use proptest::prelude::*;

/// Reference wire quantization (`f32 → bf16 → f32`), scalar tier.
fn quantize(v: &[f32]) -> Vec<f32> {
    let mut q = v.to_vec();
    dlrm_kernels::bf16wire::quantize_slice(dlrm_kernels::gemm::Isa::Scalar, &mut q);
    q
}

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_elementwise_sum(
        nranks in 1usize..7,
        len in 0usize..64,
        seed in any::<u32>(),
    ) {
        let inputs: Vec<Vec<f32>> = (0..nranks)
            .map(|r| {
                (0..len)
                    .map(|i| (((i * 31 + r * 17 + seed as usize) % 201) as f32 - 100.0) / 10.0)
                    .collect()
            })
            .collect();
        let want: Vec<f32> = (0..len)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        let inputs_ref = &inputs;
        let out = CommWorld::run(nranks, move |c| {
            let mut mine = inputs_ref[c.rank()].clone();
            collectives::allreduce_sum(&c, &mut mine);
            mine
        });
        for got in &out {
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn reduce_scatter_then_allgather_is_allreduce(
        nranks in 1usize..6,
        len in 1usize..48,
    ) {
        let out = CommWorld::run(nranks, |c| {
            let data: Vec<f32> = (0..len).map(|i| (c.rank() * len + i) as f32).collect();
            let chunk = collectives::reduce_scatter_sum(&c, &data);
            let counts: Vec<usize> = (0..nranks)
                .map(|i| (len * (i + 1) / nranks) - (len * i / nranks))
                .collect();
            collectives::allgather_varied(&c, &chunk, &counts)
        });
        let want: Vec<f32> = (0..len)
            .map(|i| (0..nranks).map(|r| (r * len + i) as f32).sum())
            .collect();
        for got in &out {
            prop_assert_eq!(got, &want);
        }
    }

    #[test]
    fn alltoall_transposes_any_matrix(
        nranks in 1usize..6,
        payload in 0usize..9,
    ) {
        let out = CommWorld::run(nranks, |c| {
            let send: Vec<Vec<f32>> = (0..nranks)
                .map(|d| (0..payload).map(|i| (c.rank() * 1000 + d * 10 + i) as f32).collect())
                .collect();
            collectives::alltoall(&c, send)
        });
        for (dst, recv) in out.iter().enumerate() {
            for (src, p) in recv.iter().enumerate() {
                let want: Vec<f32> =
                    (0..payload).map(|i| (src * 1000 + dst * 10 + i) as f32).collect();
                prop_assert_eq!(p, &want);
            }
        }
    }

    #[test]
    fn alltoall_twice_returns_original(nranks in 1usize..6, payload in 0usize..6) {
        // alltoall is an involution on the (src, dst) matrix.
        let out = CommWorld::run(nranks, |c| {
            let send: Vec<Vec<f32>> = (0..nranks)
                .map(|d| vec![(c.rank() * 7 + d) as f32; payload])
                .collect();
            let once = collectives::alltoall(&c, send.clone());
            let twice = collectives::alltoall(&c, once);
            (send, twice)
        });
        for (send, twice) in out {
            prop_assert_eq!(send, twice);
        }
    }

    #[test]
    fn bf16_allreduce_bounded_and_rank_identical(
        nranks in 2usize..7,
        len in 1usize..48,
        seed in any::<u32>(),
    ) {
        let input = |r: usize| -> Vec<f32> {
            (0..len)
                .map(|i| (((i * 31 + r * 17 + seed as usize) % 201) as f32 - 100.0) / 10.0)
                .collect()
        };
        let out = CommWorld::run(nranks, |c| {
            let mut mine = input(c.rank());
            collectives::allreduce_sum_wire(&c, &mut mine, WirePrecision::Bf16);
            mine
        });
        // Every rank must hold bitwise identical results.
        for (rk, got) in out.iter().enumerate() {
            prop_assert_eq!(bits(got), bits(&out[0]), "rank {} diverged", rk);
        }
        // And the result must sit within the accumulated RNE bound of the
        // exact sum: one half-ULP (2^-8 relative) per wire crossing.
        for (j, got) in out[0].iter().enumerate() {
            let exact: f32 = (0..nranks).map(|r| input(r)[j]).sum();
            let m: f32 = (0..nranks).map(|r| input(r)[j].abs()).sum();
            let bound = (nranks as f32 + 1.0) * m * 2.0f32.powi(-8);
            prop_assert!(
                (got - exact).abs() <= bound,
                "elem {}: {} vs {} exceeds bound {}", j, got, exact, bound
            );
        }
    }

    #[test]
    fn int8_allreduce_bounded_and_rank_identical(
        nranks in 2usize..7,
        len in 1usize..48,
        seed in any::<u32>(),
    ) {
        let input = |r: usize| -> Vec<f32> {
            (0..len)
                .map(|i| (((i * 31 + r * 17 + seed as usize) % 201) as f32 - 100.0) / 10.0)
                .collect()
        };
        let out = CommWorld::run(nranks, |c| {
            let mut mine = input(c.rank());
            collectives::allreduce_sum_wire(&c, &mut mine, WirePrecision::Int8);
            mine
        });
        // Every rank must hold bitwise identical results (single
        // quantization at the allgather source, adopted everywhere).
        for (rk, got) in out.iter().enumerate() {
            prop_assert_eq!(bits(got), bits(&out[0]), "rank {} diverged", rk);
        }
        // Error bound: each element crosses ≤ R+1 quantizations, each with
        // error ≤ scale/2 ≤ A_c/254 where A_c bounds the magnitude of any
        // partial sum in the element's ring chunk.
        let abs_sum: Vec<f32> = (0..len)
            .map(|j| (0..nranks).map(|r| input(r)[j].abs()).sum())
            .collect();
        for i in 0..nranks {
            let (s, e) = (len * i / nranks, len * (i + 1) / nranks);
            let a_c = abs_sum[s..e].iter().fold(0.0f32, |m, x| m.max(*x));
            let bound = (nranks as f32 + 1.0) * a_c / 254.0 * 1.00001 + 1e-30;
            for (j, got) in out[0].iter().enumerate().take(e).skip(s) {
                let exact: f32 = (0..nranks).map(|r| input(r)[j]).sum();
                prop_assert!(
                    (got - exact).abs() <= bound,
                    "elem {}: {} vs {} exceeds bound {}", j, got, exact, bound
                );
            }
        }
    }

    #[test]
    fn int8_shared_allreduce_bounded_and_rank_identical(
        nranks in 2usize..7,
        len in 1usize..48,
        seed in any::<u32>(),
    ) {
        // Inputs in [-1, 1], so partial sums stay within the shared grid's
        // ±16 range and no clamping occurs.
        let input = |r: usize| -> Vec<f32> {
            (0..len)
                .map(|i| (((i * 31 + r * 17 + seed as usize) % 201) as f32 - 100.0) / 100.0)
                .collect()
        };
        let shared = 16.0f32 / 127.0;
        let out = CommWorld::run(nranks, |c| {
            let mut mine = input(c.rank());
            collectives::allreduce_sum_wire(&c, &mut mine, WirePrecision::int8_shared(shared));
            mine
        });
        for (rk, got) in out.iter().enumerate() {
            prop_assert_eq!(bits(got), bits(&out[0]), "rank {} diverged", rk);
        }
        let bound = (nranks as f32 + 1.0) * shared * 0.5 * 1.00001;
        for (j, got) in out[0].iter().enumerate() {
            let exact: f32 = (0..nranks).map(|r| input(r)[j]).sum();
            prop_assert!(
                (got - exact).abs() <= bound,
                "elem {}: {} vs {} exceeds bound {}", j, got, exact, bound
            );
        }
    }

    #[test]
    fn bf16_allreduce_bitwise_on_representable_payloads(
        nranks in 2usize..7,
        len in 1usize..40,
        seed in any::<u32>(),
    ) {
        // Small integers: every partial sum stays exactly BF16-representable,
        // so the BF16 wire must be lossless and agree bitwise with FP32.
        let input = |r: usize| -> Vec<f32> {
            (0..len)
                .map(|i| ((i * 7 + r * 5 + seed as usize) % 17) as f32 - 8.0)
                .collect()
        };
        let bf = CommWorld::run(nranks, |c| {
            let mut mine = input(c.rank());
            collectives::allreduce_sum_wire(&c, &mut mine, WirePrecision::Bf16);
            mine
        });
        let fp = CommWorld::run(nranks, |c| {
            let mut mine = input(c.rank());
            collectives::allreduce_sum(&c, &mut mine);
            mine
        });
        for (b, f) in bf.iter().zip(&fp) {
            prop_assert_eq!(bits(b), bits(f));
        }
    }

    #[test]
    fn bf16_alltoall_is_quantized_fp32_alltoall(
        nranks in 1usize..6,
        payload in 0usize..9,
        seed in any::<u32>(),
    ) {
        let mk_send = |rank: usize| -> Vec<Vec<f32>> {
            (0..nranks)
                .map(|d| {
                    (0..payload)
                        .map(|i| {
                            (((rank * 1009 + d * 97 + i * 31 + seed as usize) % 999) as f32
                                - 499.0)
                                * 0.037
                        })
                        .collect()
                })
                .collect()
        };
        let bf = CommWorld::run(nranks, |c| {
            collectives::alltoall_wire(&c, mk_send(c.rank()), WirePrecision::Bf16)
        });
        let fp = CommWorld::run(nranks, |c| collectives::alltoall(&c, mk_send(c.rank())));
        for (b_rank, f_rank) in bf.iter().zip(&fp) {
            for (b, f) in b_rank.iter().zip(f_rank) {
                // R == 1 never touches the wire; otherwise every element is
                // quantized exactly once.
                let want = if nranks == 1 { f.clone() } else { quantize(f) };
                prop_assert_eq!(bits(b), bits(&want));
            }
        }
    }

    #[test]
    fn broadcast_reaches_all(nranks in 1usize..7, root_pick in any::<u8>(), len in 1usize..16) {
        let root = root_pick as usize % nranks;
        let out = CommWorld::run(nranks, |c| {
            let mut buf = if c.rank() == root {
                (0..len).map(|i| i as f32 * 1.5).collect()
            } else {
                vec![0.0; len]
            };
            collectives::broadcast(&c, root, &mut buf);
            buf
        });
        let want: Vec<f32> = (0..len).map(|i| i as f32 * 1.5).collect();
        for got in &out {
            prop_assert_eq!(got, &want);
        }
    }
}
