//! Property-based tests for the collectives: results must equal the
//! mathematically obvious reductions for arbitrary rank counts and payloads.

use dlrm_comm::collectives;
use dlrm_comm::world::CommWorld;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn allreduce_equals_elementwise_sum(
        nranks in 1usize..7,
        len in 0usize..64,
        seed in any::<u32>(),
    ) {
        let inputs: Vec<Vec<f32>> = (0..nranks)
            .map(|r| {
                (0..len)
                    .map(|i| (((i * 31 + r * 17 + seed as usize) % 201) as f32 - 100.0) / 10.0)
                    .collect()
            })
            .collect();
        let want: Vec<f32> = (0..len)
            .map(|i| inputs.iter().map(|v| v[i]).sum())
            .collect();
        let inputs_ref = &inputs;
        let out = CommWorld::run(nranks, move |c| {
            let mut mine = inputs_ref[c.rank()].clone();
            collectives::allreduce_sum(&c, &mut mine);
            mine
        });
        for got in &out {
            for (g, w) in got.iter().zip(&want) {
                prop_assert!((g - w).abs() <= 1e-4 * w.abs().max(1.0), "{g} vs {w}");
            }
        }
    }

    #[test]
    fn reduce_scatter_then_allgather_is_allreduce(
        nranks in 1usize..6,
        len in 1usize..48,
    ) {
        let out = CommWorld::run(nranks, |c| {
            let data: Vec<f32> = (0..len).map(|i| (c.rank() * len + i) as f32).collect();
            let chunk = collectives::reduce_scatter_sum(&c, &data);
            let counts: Vec<usize> = (0..nranks)
                .map(|i| (len * (i + 1) / nranks) - (len * i / nranks))
                .collect();
            collectives::allgather_varied(&c, &chunk, &counts)
        });
        let want: Vec<f32> = (0..len)
            .map(|i| (0..nranks).map(|r| (r * len + i) as f32).sum())
            .collect();
        for got in &out {
            prop_assert_eq!(got, &want);
        }
    }

    #[test]
    fn alltoall_transposes_any_matrix(
        nranks in 1usize..6,
        payload in 0usize..9,
    ) {
        let out = CommWorld::run(nranks, |c| {
            let send: Vec<Vec<f32>> = (0..nranks)
                .map(|d| (0..payload).map(|i| (c.rank() * 1000 + d * 10 + i) as f32).collect())
                .collect();
            collectives::alltoall(&c, send)
        });
        for (dst, recv) in out.iter().enumerate() {
            for (src, p) in recv.iter().enumerate() {
                let want: Vec<f32> =
                    (0..payload).map(|i| (src * 1000 + dst * 10 + i) as f32).collect();
                prop_assert_eq!(p, &want);
            }
        }
    }

    #[test]
    fn alltoall_twice_returns_original(nranks in 1usize..6, payload in 0usize..6) {
        // alltoall is an involution on the (src, dst) matrix.
        let out = CommWorld::run(nranks, |c| {
            let send: Vec<Vec<f32>> = (0..nranks)
                .map(|d| vec![(c.rank() * 7 + d) as f32; payload])
                .collect();
            let once = collectives::alltoall(&c, send.clone());
            let twice = collectives::alltoall(&c, once);
            (send, twice)
        });
        for (send, twice) in out {
            prop_assert_eq!(send, twice);
        }
    }

    #[test]
    fn broadcast_reaches_all(nranks in 1usize..7, root_pick in any::<u8>(), len in 1usize..16) {
        let root = root_pick as usize % nranks;
        let out = CommWorld::run(nranks, |c| {
            let mut buf = if c.rank() == root {
                (0..len).map(|i| i as f32 * 1.5).collect()
            } else {
                vec![0.0; len]
            };
            collectives::broadcast(&c, root, &mut buf);
            buf
        });
        let want: Vec<f32> = (0..len).map(|i| i as f32 * 1.5).collect();
        for got in &out {
            prop_assert_eq!(got, &want);
        }
    }
}
