//! Chaos suite: collectives and progress engines must be **bitwise stable**
//! under hundreds of seeded adversarial schedules.
//!
//! Every test compares a faulted run against a fault-free baseline with
//! exact bit equality (`f32::to_bits`), and every assertion message prints
//! the seed, so any failure reproduces by plugging that seed back into
//! `ChaosConfig::aggressive(seed)`.

use dlrm_comm::chaos::{ChaosConfig, ChaosSnapshot};
use dlrm_comm::nonblocking::{create_channel_worlds_with_chaos, Backend, OpOutput, ProgressEngine};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_comm::FaultPlan;
use std::sync::Arc;

const SEEDS: u64 = 200;
/// The BF16-wire replays prove the fault layer is payload-agnostic; a
/// smaller seed sweep suffices since the transport code paths are shared.
const BF16_SEEDS: u64 = 60;

/// Exact bit equality — `==` on f32 would accept -0.0 vs 0.0.
fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Adversarial payload: rank-asymmetric, non-integral values whose sums are
/// sensitive to reduction order.
fn payload(rank: usize, len: usize, salt: u64) -> Vec<f32> {
    (0..len)
        .map(|i| ((rank * 37 + i * 13) as f32 + salt as f32 * 0.173) * 0.31 - 4.2)
        .collect()
}

// ---------------------------------------------------------------------------
// Blocking collectives over a chaotic world.
// ---------------------------------------------------------------------------

/// One full round of every blocking collective; returns a flat transcript.
fn blocking_round(
    plan: Option<Arc<FaultPlan>>,
    nranks: usize,
    wirep: WirePrecision,
) -> Vec<Vec<f32>> {
    CommWorld::run_with_chaos(nranks, plan, move |c| {
        let me = c.rank();
        let mut transcript = Vec::new();

        let mut ar = payload(me, 48, 1);
        dlrm_comm::collectives::allreduce_sum_wire(&c, &mut ar, wirep);
        transcript.extend_from_slice(&ar);

        let rs = dlrm_comm::collectives::reduce_scatter_sum_wire(&c, &payload(me, 40, 2), wirep);
        transcript.extend_from_slice(&rs);

        let counts = vec![7usize; c.nranks()];
        let ag =
            dlrm_comm::collectives::allgather_varied_wire(&c, &payload(me, 7, 3), &counts, wirep);
        transcript.extend_from_slice(&ag);

        let send: Vec<Vec<f32>> = (0..c.nranks()).map(|d| payload(me * 8 + d, 9, 4)).collect();
        for part in dlrm_comm::collectives::alltoall_wire(&c, send, wirep) {
            transcript.extend_from_slice(&part);
        }

        let mut bc = payload(me, 16, 5);
        dlrm_comm::collectives::broadcast(&c, 1 % c.nranks(), &mut bc);
        transcript.extend_from_slice(&bc);

        c.barrier();
        transcript
    })
}

#[test]
fn blocking_collectives_bitwise_stable_across_seeds() {
    for &nranks in &[2usize, 4] {
        let baseline: Vec<Vec<u32>> = blocking_round(None, nranks, WirePrecision::Fp32)
            .iter()
            .map(|v| bits(v))
            .collect();
        let mut injected_total = 0u64;
        for seed in 0..SEEDS {
            let plan = ChaosConfig::aggressive(seed).plan();
            let out = blocking_round(Some(plan), nranks, WirePrecision::Fp32);
            for (rank, v) in out.iter().enumerate() {
                assert_eq!(
                    bits(v),
                    baseline[rank],
                    "blocking collectives diverged: nranks={nranks} rank={rank} \
                     failing seed={seed}"
                );
            }
            // Every rank observed the same shared stats; count once.
            injected_total += CommWorld::run_with_chaos(
                nranks,
                Some(ChaosConfig::aggressive(seed).plan()),
                |c| {
                    // XOR pairing: every rank has a mutual partner.
                    let _ = c.sendrecv(c.rank() ^ 1, 0, payload(c.rank(), 8, 0));
                    c.barrier();
                    c.chaos_stats().snapshot().total_injected()
                },
            )[0];
        }
        assert!(
            injected_total > SEEDS,
            "chaos too quiet over {SEEDS} seeds: {injected_total} faults"
        );
    }
}

// ---------------------------------------------------------------------------
// Progress engines (both backends) over chaotic channel worlds, with
// worker kill-restart enabled.
// ---------------------------------------------------------------------------

/// Each rank runs interleaved nonblocking allreduces and alltoalls across
/// all channels; returns a per-rank transcript plus the world's fault count.
fn engine_round(
    backend: Backend,
    plan: Option<Arc<FaultPlan>>,
    nranks: usize,
    wirep: WirePrecision,
) -> Vec<(Vec<f32>, u64)> {
    let worlds = create_channel_worlds_with_chaos(nranks, backend, plan.clone());
    std::thread::scope(|s| {
        let handles: Vec<_> = worlds
            .into_iter()
            .map(|comms| {
                let plan = plan.clone();
                s.spawn(move || {
                    let eng = ProgressEngine::new_with_chaos(backend, comms, plan);
                    let me = eng.rank();
                    let nch = eng.num_channels();
                    let mut transcript = Vec::new();
                    for round in 0..6u64 {
                        let ar =
                            eng.allreduce_wire(round as usize % nch, payload(me, 32, round), wirep);
                        let send: Vec<Vec<f32>> =
                            (0..nranks).map(|d| payload(me * 4 + d, 6, round)).collect();
                        let a2a = eng.alltoall_wire((round as usize + 1) % nch, send, wirep);
                        match a2a.wait() {
                            OpOutput::PerRank(parts) => {
                                for p in parts {
                                    transcript.extend_from_slice(&p);
                                }
                            }
                            other => panic!("expected PerRank, got {other:?}"),
                        }
                        match ar.wait() {
                            OpOutput::Flat(v) => transcript.extend_from_slice(&v),
                            other => panic!("expected Flat, got {other:?}"),
                        }
                    }
                    (transcript, 0u64)
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

fn engine_suite(backend: Backend) {
    let nranks = 4;
    let baseline: Vec<Vec<u32>> = engine_round(backend, None, nranks, WirePrecision::Fp32)
        .iter()
        .map(|(v, _)| bits(v))
        .collect();
    for seed in 0..SEEDS {
        let plan = ChaosConfig::aggressive(seed).plan();
        let out = engine_round(backend, Some(plan), nranks, WirePrecision::Fp32);
        for (rank, (v, _)) in out.iter().enumerate() {
            assert_eq!(
                bits(v),
                baseline[rank],
                "{backend} engine diverged under chaos: rank={rank} failing seed={seed}"
            );
        }
    }
}

#[test]
fn mpi_like_engine_bitwise_stable_across_seeds() {
    engine_suite(Backend::MpiLike);
}

#[test]
fn ccl_like_engine_bitwise_stable_across_seeds() {
    engine_suite(Backend::CclLike { workers: 2 });
}

// ---------------------------------------------------------------------------
// BF16 wire under chaos: the fault layer never inspects payload contents, so
// chaotic BF16 runs must replay the fault-free BF16 baseline bitwise.
// ---------------------------------------------------------------------------

#[test]
fn bf16_blocking_collectives_bitwise_stable_across_seeds() {
    for &nranks in &[2usize, 4] {
        let baseline: Vec<Vec<u32>> = blocking_round(None, nranks, WirePrecision::Bf16)
            .iter()
            .map(|v| bits(v))
            .collect();
        for seed in 0..BF16_SEEDS {
            let plan = ChaosConfig::aggressive(seed).plan();
            let out = blocking_round(Some(plan), nranks, WirePrecision::Bf16);
            for (rank, v) in out.iter().enumerate() {
                assert_eq!(
                    bits(v),
                    baseline[rank],
                    "bf16 blocking collectives diverged: nranks={nranks} rank={rank} \
                     failing seed={seed}"
                );
            }
        }
    }
}

#[test]
fn bf16_engine_bitwise_stable_across_seeds() {
    let nranks = 4;
    let backend = Backend::CclLike { workers: 2 };
    let baseline: Vec<Vec<u32>> = engine_round(backend, None, nranks, WirePrecision::Bf16)
        .iter()
        .map(|(v, _)| bits(v))
        .collect();
    for seed in 0..BF16_SEEDS {
        let plan = ChaosConfig::aggressive(seed).plan();
        let out = engine_round(backend, Some(plan), nranks, WirePrecision::Bf16);
        for (rank, (v, _)) in out.iter().enumerate() {
            assert_eq!(
                bits(v),
                baseline[rank],
                "bf16 {backend} engine diverged under chaos: rank={rank} failing seed={seed}"
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Reproducibility: identical seed ⇒ identical results AND identical fault
// statistics (decisions are schedule-independent, not just result-stable).
// ---------------------------------------------------------------------------

/// Runs one chaotic engine round and returns (per-rank transcripts, stats).
fn stats_round(seed: u64) -> (Vec<Vec<u32>>, ChaosSnapshot) {
    let nranks = 3;
    let backend = Backend::CclLike { workers: 2 };
    let plan = ChaosConfig::aggressive(seed).plan();
    let worlds = create_channel_worlds_with_chaos(nranks, backend, Some(plan.clone()));
    // Keep one world's stats handle: all channel worlds share per-world
    // stats, so probe via a dedicated extra world driven by the same plan.
    std::thread::scope(|s| {
        let handles: Vec<_> = worlds
            .into_iter()
            .map(|comms| {
                let plan = plan.clone();
                s.spawn(move || {
                    // Channel-0 world's shared counters (kept alive past the
                    // engine so we can snapshot after all ranks finish).
                    let stats = Arc::clone(comms[0].chaos_stats_arc());
                    let eng = ProgressEngine::new_with_chaos(backend, comms, Some(plan));
                    let me = eng.rank();
                    let mut out = Vec::new();
                    for round in 0..5u64 {
                        let req = eng.allreduce(round as usize % 2, payload(me, 24, round));
                        match req.wait() {
                            OpOutput::Flat(v) => out.extend(bits(&v)),
                            other => panic!("expected Flat, got {other:?}"),
                        }
                    }
                    drop(eng);
                    (out, stats)
                })
            })
            .collect();
        let results: Vec<_> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let snap = results[0].1.snapshot();
        (results.into_iter().map(|(o, _)| o).collect(), snap)
    })
}

#[test]
fn same_seed_reproduces_results_and_fault_stats() {
    for seed in [3u64, 17, 99] {
        let (out_a, snap_a) = stats_round(seed);
        let (out_b, snap_b) = stats_round(seed);
        assert_eq!(out_a, out_b, "results must replay: failing seed={seed}");
        assert_eq!(
            snap_a, snap_b,
            "fault statistics must replay exactly: failing seed={seed}"
        );
        assert!(
            snap_a.total_injected() > 0,
            "aggressive plan injected nothing at seed={seed}: {snap_a:?}"
        );
    }
}

#[test]
fn different_seeds_draw_different_fault_schedules() {
    let (_, a) = stats_round(1);
    let (_, b) = stats_round(2);
    assert_ne!(a, b, "distinct seeds should differ in fault statistics");
}

// ---------------------------------------------------------------------------
// Worker kill-restart keeps engines correct across many restarts.
// ---------------------------------------------------------------------------

#[test]
fn engines_survive_frequent_worker_kills() {
    let nranks = 2;
    let backend = Backend::CclLike { workers: 2 };
    // Kill-only plan: every other task murders its worker.
    let mut cfg = ChaosConfig::off(12345);
    cfg.kill_worker_prob = 0.5;
    let plan = cfg.plan();
    let worlds = create_channel_worlds_with_chaos(nranks, backend, Some(plan.clone()));
    let outs: Vec<(Vec<f32>, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = worlds
            .into_iter()
            .map(|comms| {
                let plan = plan.clone();
                s.spawn(move || {
                    let stats = Arc::clone(comms[0].chaos_stats_arc());
                    let eng = ProgressEngine::new_with_chaos(backend, comms, Some(plan));
                    let me = eng.rank();
                    let mut acc = Vec::new();
                    for round in 0..40u64 {
                        let req =
                            eng.allreduce(round as usize % 2, vec![me as f32 + round as f32; 8]);
                        match req.wait() {
                            OpOutput::Flat(v) => acc.extend_from_slice(&v),
                            other => panic!("expected Flat, got {other:?}"),
                        }
                    }
                    drop(eng);
                    (
                        acc,
                        stats
                            .workers_killed
                            .load(std::sync::atomic::Ordering::Relaxed),
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });
    for (rank, (acc, _)) in outs.iter().enumerate() {
        let expect: Vec<f32> = (0..40u64)
            .flat_map(|round| std::iter::repeat_n(1.0 + 2.0 * round as f32, 8))
            .collect();
        assert_eq!(acc, &expect, "rank {rank} saw wrong allreduce results");
    }
    assert!(
        outs[0].1 > 10,
        "expected many worker kills at prob 0.5 over 80 tasks, got {}",
        outs[0].1
    );
}
