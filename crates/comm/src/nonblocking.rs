//! Nonblocking collectives via progress threads — the MPI vs. oneCCL
//! backend contrast of Section IV-B/C.
//!
//! PyTorch's MPI backend "spawns a separate thread to drive the
//! communication": the master enqueues an operation and later waits on it.
//! Because there is a *single* progress thread, operations complete strictly
//! in submission order — the paper traces the mysterious "huge alltoall cost"
//! of the MPI backend to exactly this: waiting on an alltoall silently pays
//! for the allreduce queued before it. oneCCL instead drives communication
//! with *multiple* dedicated, pinned worker threads, so independent
//! primitives progress concurrently.
//!
//! [`ProgressEngine`] reproduces both: `Backend::MpiLike` owns one progress
//! channel, `Backend::CclLike { workers }` owns several. Each channel is a
//! FIFO worker thread with its own [`Communicator`] (its own p2p streams),
//! so cross-channel operations cannot interleave incorrectly.

use crate::chaos::FaultPlan;
use crate::instrument::WireStats;
use crate::wire::WirePrecision;
use crate::world::Communicator;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::thread::JoinHandle;

/// Which communication backend to emulate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Backend {
    /// Single progress thread, in-order completion (PyTorch MPI backend).
    MpiLike,
    /// `workers` independent pinned progress threads (oneCCL).
    CclLike {
        /// Number of worker channels (the paper uses 4 EPs per socket).
        workers: usize,
    },
}

impl Backend {
    /// Number of progress channels this backend provides.
    pub fn channels(self) -> usize {
        match self {
            Backend::MpiLike => 1,
            Backend::CclLike { workers } => workers.max(1),
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::MpiLike => write!(f, "MPI Backend"),
            Backend::CclLike { .. } => write!(f, "CCL Backend"),
        }
    }
}

enum Task {
    Allreduce(Vec<f32>, WirePrecision, Sender<OpOutput>),
    /// `(send, wire, tag_base, scale_group, done)` — `scale_group` is the
    /// INT8 per-block scale length (0 = one scale per payload).
    Alltoall(Vec<Vec<f32>>, WirePrecision, u64, usize, Sender<OpOutput>),
    Shutdown,
}

/// Output of a completed nonblocking operation.
#[derive(Debug)]
pub enum OpOutput {
    /// Result of an allreduce.
    Flat(Vec<f32>),
    /// Result of an alltoall.
    PerRank(Vec<Vec<f32>>),
}

/// Handle to an in-flight operation.
pub struct Request {
    rx: Receiver<OpOutput>,
    cached: Option<OpOutput>,
}

impl Request {
    /// Blocks until the operation completes and returns its output.
    pub fn wait(mut self) -> OpOutput {
        if let Some(out) = self.cached.take() {
            return out;
        }
        self.rx.recv().expect("progress channel died")
    }

    /// [`Request::wait`] with the blocking time charged to `kind` on `rec`
    /// (no-op accounting when `rec` is `None`). Split-phase callers use this
    /// so *exposed* wait — not the full collective — is what gets measured.
    pub fn wait_recording(
        self,
        rec: Option<&crate::instrument::TimingRecorder>,
        kind: crate::instrument::OpKind,
    ) -> OpOutput {
        crate::instrument::time_opt(rec, kind, || self.wait())
    }

    /// Non-destructive readiness probe.
    pub fn is_ready(&mut self) -> bool {
        if self.cached.is_some() {
            return true;
        }
        match self.rx.try_recv() {
            Ok(out) => {
                self.cached = Some(out);
                true
            }
            Err(_) => false,
        }
    }
}

/// Registry of progress-thread handles, shared with workers so a killed
/// worker can register its replacement for join-at-drop.
type HandleRegistry = Arc<parking_lot::Mutex<Vec<JoinHandle<()>>>>;

/// Chaos context carried by a progress worker: the fault oracle plus the
/// coordinates and running task index that key its kill decisions.
struct WorkerChaos {
    plan: Arc<FaultPlan>,
    registry: HandleRegistry,
    rank: usize,
    channel: usize,
    /// Tasks completed so far on this channel (survives restarts, so kill
    /// decisions stay a pure function of the logical task stream).
    task_index: u64,
}

/// A per-rank engine owning one or more progress channels.
pub struct ProgressEngine {
    submitters: Vec<Sender<Task>>,
    handles: HandleRegistry,
    rank: usize,
    nranks: usize,
}

impl ProgressEngine {
    /// Builds an engine from one [`Communicator`] per channel. All of a
    /// world's ranks must construct their engines with the same backend and
    /// submit matching operations to matching channel indices.
    pub fn new(backend: Backend, comms: Vec<Communicator>) -> Self {
        Self::new_with_chaos(backend, comms, None)
    }

    /// [`ProgressEngine::new`] plus a fault plan governing worker
    /// kill-restart: after completing a task a worker may exit and be
    /// transparently replaced by a fresh thread that resumes its channel.
    /// (Message-level faults come from the communicators themselves — build
    /// them via [`crate::world::CommWorld::create_with_chaos`] or
    /// [`create_channel_worlds_with_chaos`].)
    pub fn new_with_chaos(
        backend: Backend,
        comms: Vec<Communicator>,
        plan: Option<Arc<FaultPlan>>,
    ) -> Self {
        let nch = backend.channels();
        assert_eq!(
            comms.len(),
            nch,
            "engine needs exactly one communicator per channel"
        );
        let rank = comms[0].rank();
        let nranks = comms[0].nranks();
        let registry: HandleRegistry = Arc::new(parking_lot::Mutex::new(Vec::new()));
        let mut submitters = Vec::with_capacity(nch);
        for (ch, comm) in comms.into_iter().enumerate() {
            let (tx, rx) = unbounded::<Task>();
            submitters.push(tx);
            let chaos = plan.as_ref().map(|p| WorkerChaos {
                plan: Arc::clone(p),
                registry: Arc::clone(&registry),
                rank,
                channel: ch,
                task_index: 0,
            });
            let handle = std::thread::Builder::new()
                .name(format!("progress-r{rank}-c{ch}"))
                .spawn(move || progress_loop(comm, rx, chaos))
                .expect("failed to spawn progress thread");
            registry.lock().push(handle);
        }
        ProgressEngine {
            submitters,
            handles: registry,
            rank,
            nranks,
        }
    }

    /// This rank's id.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Number of progress channels.
    pub fn num_channels(&self) -> usize {
        self.submitters.len()
    }

    /// Enqueues an allreduce-sum on `channel`; returns immediately.
    pub fn allreduce(&self, channel: usize, data: Vec<f32>) -> Request {
        self.allreduce_wire(channel, data, WirePrecision::Fp32)
    }

    /// [`ProgressEngine::allreduce`] with a selectable wire. All ranks must
    /// submit the matching operation with the same [`WirePrecision`].
    pub fn allreduce_wire(&self, channel: usize, data: Vec<f32>, wirep: WirePrecision) -> Request {
        let (tx, rx) = bounded(1);
        self.submitters[channel % self.submitters.len()]
            .send(Task::Allreduce(data, wirep, tx))
            .expect("progress channel died");
        Request { rx, cached: None }
    }

    /// Enqueues an alltoall on `channel`; returns immediately.
    pub fn alltoall(&self, channel: usize, send: Vec<Vec<f32>>) -> Request {
        self.alltoall_wire(channel, send, WirePrecision::Fp32)
    }

    /// [`ProgressEngine::alltoall`] with a selectable wire. All ranks must
    /// submit the matching operation with the same [`WirePrecision`].
    pub fn alltoall_wire(
        &self,
        channel: usize,
        send: Vec<Vec<f32>>,
        wirep: WirePrecision,
    ) -> Request {
        self.alltoall_wire_tagged(channel, send, wirep, crate::collectives::TAG_A2A)
    }

    /// [`ProgressEngine::alltoall_wire`] under an explicit tag base, so a
    /// logically distinct stream (the prefetch row fetch) gets its own
    /// [`WireStats`] byte bucket. Per-pair FIFO order is what makes two
    /// streams on one channel safe, exactly as for the framework exchanges.
    pub fn alltoall_wire_tagged(
        &self,
        channel: usize,
        send: Vec<Vec<f32>>,
        wirep: WirePrecision,
        tag_base: u64,
    ) -> Request {
        self.alltoall_wire_grouped(channel, send, wirep, tag_base, 0)
    }

    /// [`ProgressEngine::alltoall_wire_tagged`] with an INT8 scale-group
    /// length (see
    /// [`alltoall_wire_grouped_tagged`](crate::collectives::alltoall_wire_grouped_tagged)):
    /// the embedding exchanges pass their per-table block length so each
    /// table gets its own scale header. Ignored by FP32/BF16 wires.
    pub fn alltoall_wire_grouped(
        &self,
        channel: usize,
        send: Vec<Vec<f32>>,
        wirep: WirePrecision,
        tag_base: u64,
        scale_group: usize,
    ) -> Request {
        let (tx, rx) = bounded(1);
        self.submitters[channel % self.submitters.len()]
            .send(Task::Alltoall(send, wirep, tag_base, scale_group, tx))
            .expect("progress channel died");
        Request { rx, cached: None }
    }
}

impl Drop for ProgressEngine {
    fn drop(&mut self) {
        for tx in &self.submitters {
            let _ = tx.send(Task::Shutdown);
        }
        // Workers killed by the fault plan register their replacements in
        // the shared registry; keep draining until no thread remains. Once
        // every channel has consumed Shutdown no new handles can appear.
        loop {
            let handle = self.handles.lock().pop();
            match handle {
                Some(h) => {
                    let _ = h.join();
                }
                None => break,
            }
        }
    }
}

fn progress_loop(comm: Communicator, rx: Receiver<Task>, mut chaos: Option<WorkerChaos>) {
    while let Ok(task) = rx.recv() {
        match task {
            Task::Allreduce(mut data, wirep, done) => {
                crate::collectives::allreduce_sum_wire(&comm, &mut data, wirep);
                let _ = done.send(OpOutput::Flat(data));
            }
            Task::Alltoall(send, wirep, tag_base, scale_group, done) => {
                let recv = crate::collectives::alltoall_wire_grouped_tagged(
                    &comm,
                    send,
                    wirep,
                    tag_base,
                    scale_group,
                );
                let _ = done.send(OpOutput::PerRank(recv));
            }
            Task::Shutdown => return,
        }
        // About to go idle on the task queue: release any delayed traffic a
        // peer's in-flight collective may still be waiting for.
        comm.flush_delayed();
        // Kill-and-restart: this worker dies after finishing the task and a
        // fresh thread takes over its channel (same communicator, same task
        // queue, continued task index) — the restart is invisible to
        // submitters, like a relaunched oneCCL worker.
        if let Some(ctx) = &mut chaos {
            let idx = ctx.task_index;
            ctx.task_index += 1;
            if ctx.plan.kill_worker(ctx.rank, ctx.channel, idx) {
                comm.chaos_stats()
                    .workers_killed
                    .fetch_add(1, Ordering::Relaxed);
                let registry = Arc::clone(&ctx.registry);
                let (rank, ch) = (ctx.rank, ctx.channel);
                let successor_chaos = chaos.take();
                let handle = std::thread::Builder::new()
                    .name(format!("progress-r{rank}-c{ch}-restart"))
                    .spawn(move || progress_loop(comm, rx, successor_chaos))
                    .expect("failed to respawn progress thread");
                registry.lock().push(handle);
                return;
            }
        }
    }
}

/// Creates, for each of `nranks` ranks, the vector of communicators an
/// engine with `backend` needs (one world per channel).
pub fn create_channel_worlds(nranks: usize, backend: Backend) -> Vec<Vec<Communicator>> {
    create_channel_worlds_with_chaos(nranks, backend, None)
}

/// [`create_channel_worlds`] with every per-channel world built over the
/// given fault plan, so engine-driven collectives run on a chaotic
/// transport.
pub fn create_channel_worlds_with_chaos(
    nranks: usize,
    backend: Backend,
    plan: Option<Arc<FaultPlan>>,
) -> Vec<Vec<Communicator>> {
    create_channel_worlds_with_opts(nranks, backend, plan, None)
}

/// [`create_channel_worlds_with_chaos`] plus an externally-owned
/// [`WireStats`] shared by every per-channel world, so a harness reads the
/// engine's aggregate wire traffic from one place (pair it with the same
/// `Arc` on the main world via
/// [`CommWorld::create_with_opts`](crate::world::CommWorld::create_with_opts)).
pub fn create_channel_worlds_with_opts(
    nranks: usize,
    backend: Backend,
    plan: Option<Arc<FaultPlan>>,
    wire: Option<Arc<WireStats>>,
) -> Vec<Vec<Communicator>> {
    let nch = backend.channels();
    let mut per_rank: Vec<Vec<Communicator>> = (0..nranks).map(|_| Vec::new()).collect();
    for _ in 0..nch {
        for (rank, comm) in
            crate::world::CommWorld::create_with_opts(nranks, plan.clone(), wire.clone())
                .into_iter()
                .enumerate()
        {
            per_rank[rank].push(comm);
        }
    }
    per_rank
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Runs `f(engine)` on every rank of a fresh world.
    fn run_engines<T: Send>(
        nranks: usize,
        backend: Backend,
        f: impl Fn(ProgressEngine) -> T + Send + Sync,
    ) -> Vec<T> {
        let worlds = create_channel_worlds(nranks, backend);
        std::thread::scope(|s| {
            let handles: Vec<_> = worlds
                .into_iter()
                .map(|comms| {
                    let f = &f;
                    s.spawn(move || f(ProgressEngine::new(backend, comms)))
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).collect()
        })
    }

    fn unwrap_flat(out: OpOutput) -> Vec<f32> {
        match out {
            OpOutput::Flat(v) => v,
            other => panic!("expected Flat, got {other:?}"),
        }
    }

    fn unwrap_per_rank(out: OpOutput) -> Vec<Vec<f32>> {
        match out {
            OpOutput::PerRank(v) => v,
            other => panic!("expected PerRank, got {other:?}"),
        }
    }

    #[test]
    fn mpi_like_allreduce_works() {
        let out = run_engines(4, Backend::MpiLike, |eng| {
            let req = eng.allreduce(0, vec![eng.rank() as f32; 8]);
            unwrap_flat(req.wait())
        });
        for v in out {
            assert_eq!(v, vec![6.0; 8]);
        }
    }

    #[test]
    fn ccl_like_alltoall_works() {
        let out = run_engines(3, Backend::CclLike { workers: 2 }, |eng| {
            let send: Vec<Vec<f32>> = (0..3).map(|d| vec![(eng.rank() * 10 + d) as f32]).collect();
            let req = eng.alltoall(1, send);
            unwrap_per_rank(req.wait())
        });
        for (dst, recv) in out.iter().enumerate() {
            for (src, p) in recv.iter().enumerate() {
                assert_eq!(p, &vec![(src * 10 + dst) as f32]);
            }
        }
    }

    #[test]
    fn mpi_like_completes_in_submission_order() {
        // The Figure 10/11 artifact: on a single progress channel, when the
        // later alltoall is done the earlier allreduce must already be done.
        let flags = run_engines(2, Backend::MpiLike, |eng| {
            let mut ar = eng.allreduce(0, vec![1.0; 4096]);
            let a2a = eng.alltoall(0, vec![vec![0.5; 16]; 2]);
            let _ = a2a.wait();
            let ready_after_a2a = ar.is_ready();
            let _ = ar.wait();
            ready_after_a2a
        });
        assert!(
            flags.iter().all(|&f| f),
            "allreduce must complete before the later alltoall"
        );
    }

    #[test]
    fn ccl_like_channels_progress_independently() {
        // Submit an alltoall on channel 1 and wait for it while channel 0
        // still has a pending allreduce — only possible with >1 channel.
        let out = run_engines(2, Backend::CclLike { workers: 2 }, |eng| {
            let ar = eng.allreduce(0, vec![2.0; 64]);
            let a2a = eng.alltoall(1, vec![vec![eng.rank() as f32]; 2]);
            let recv = unwrap_per_rank(a2a.wait());
            let red = unwrap_flat(ar.wait());
            (recv, red)
        });
        for (dst, (recv, red)) in out.iter().enumerate() {
            let _ = dst;
            assert_eq!(recv[0], vec![0.0]);
            assert_eq!(recv[1], vec![1.0]);
            assert_eq!(red, &vec![4.0; 64]);
        }
    }

    #[test]
    fn many_interleaved_ops_complete() {
        let out = run_engines(3, Backend::CclLike { workers: 3 }, |eng| {
            let reqs: Vec<Request> = (0..12)
                .map(|i| eng.allreduce(i % 3, vec![i as f32; 5]))
                .collect();
            reqs.into_iter()
                .map(|r| unwrap_flat(r.wait())[0])
                .collect::<Vec<f32>>()
        });
        for v in out {
            assert_eq!(v, (0..12).map(|i| 3.0 * i as f32).collect::<Vec<f32>>());
        }
    }

    #[test]
    fn is_ready_is_nondestructive() {
        let out = run_engines(2, Backend::MpiLike, |eng| {
            let mut req = eng.allreduce(0, vec![1.0]);
            while !req.is_ready() {
                std::thread::yield_now();
            }
            assert!(req.is_ready());
            unwrap_flat(req.wait())
        });
        for v in out {
            assert_eq!(v, vec![2.0]);
        }
    }

    #[test]
    fn backend_channel_counts() {
        assert_eq!(Backend::MpiLike.channels(), 1);
        assert_eq!(Backend::CclLike { workers: 4 }.channels(), 4);
        assert_eq!(Backend::CclLike { workers: 0 }.channels(), 1);
    }
}
