//! Wire-precision selection for the collectives.
//!
//! The paper's 16-bit section (and the BF16 projections of Figure 9) halve
//! communication volume by shipping BFLOAT16 halfwords instead of FP32
//! words; the scaled-INT8 tier (ROADMAP item 3, following the adaptive
//! lossy-compression line of work) quarters it. This module holds the knob
//! ([`WirePrecision`]) and the pack plumbing the narrowed-wire collectives
//! share:
//!
//! * **Accumulation policy**: reductions always accumulate in FP32. Only
//!   the *wire representation* narrows — each hop of a narrowed ring
//!   reduce-scatter quantizes the outgoing FP32 partial sum (RNE), and the
//!   receiver reconstructs FP32 values before adding in FP32.
//! * **Single-quantization rule**: every element crosses the narrowed wire
//!   exactly once between producer and consumer. BF16 allgather forwards
//!   received halfwords *bitwise* (re-narrowing a representable value is
//!   the identity); INT8 allgather quantizes each chunk once at its source
//!   rank, forwards the bytes + scale losslessly, and every rank — the
//!   source included — adopts the dequantized values, so all ranks hold
//!   bitwise identical results. Alltoall quantizes the self-destined chunk
//!   locally so all `R` chunks of the result are uniformly wire-quantized.
//!   With `R == 1` nothing crosses a wire and payloads are untouched.
//! * **Scale headers**: INT8 payloads are self-describing — each carries
//!   one FP32 scale per `scale_group` elements (`absmax/127`, computed by
//!   the sender), shipped as 4 on-wire bytes per scale and accounted as
//!   wire bytes by [`WireStats`](crate::instrument::WireStats). The
//!   [`WirePrecision::Int8Shared`] variant instead uses a pre-agreed scale
//!   (e.g. from the adaptive policy's replicated statistics) and ships no
//!   header at all — exactly 4× fewer bytes than FP32.
//! * **Buffer pools**: the transport moves *owned* buffers between rank
//!   threads, so the ring collectives draw their step-0 send buffer from a
//!   thread-local grow-only pool and return the final carry to it — after
//!   warm-up a steady-state train loop performs no payload allocations in
//!   the ring collectives (the alloc-growth suite pins this down).
//!
//! The conversion kernels themselves live in [`dlrm_kernels::bf16wire`] and
//! [`dlrm_kernels::int8wire`] (scalar/AVX2/AVX-512 tiers, bitwise identical
//! across tiers), so every rank produces identical wire bytes no matter
//! which tier it ran.

use std::cell::RefCell;

/// Payload representation used on the wire by a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WirePrecision {
    /// Full-width `f32` words (the default).
    #[default]
    Fp32,
    /// BFLOAT16 halfwords: RNE narrowing at the sender, exact widening at
    /// the receiver, FP32 local accumulation.
    Bf16,
    /// Scaled INT8 bytes with self-describing per-chunk FP32 scale headers
    /// (`absmax/127`, computed by the sender and shipped on the wire).
    Int8,
    /// Scaled INT8 bytes under a pre-agreed scale — no header crosses the
    /// wire. Used by the adaptive policy, whose per-bucket scales are pure
    /// functions of rank-replicated statistics, so every rank already
    /// knows them. The scale travels as raw bits to keep this type `Copy +
    /// Eq + Hash`; construct via [`WirePrecision::int8_shared`].
    Int8Shared {
        /// `f32::to_bits` of the agreed positive, finite scale.
        scale_bits: u32,
    },
}

impl WirePrecision {
    /// Number of *distinct* `WirePrecision` variants. The `match` below is
    /// the exhaustiveness check: adding a variant without updating this
    /// count (and [`Self::ALL`], whose length is this constant) is a
    /// compile error, so new precisions can't be silently omitted from
    /// sweeps.
    pub const COUNT: usize = {
        match WirePrecision::Fp32 {
            // One arm per variant — extend COUNT and ALL when adding one.
            WirePrecision::Fp32
            | WirePrecision::Bf16
            | WirePrecision::Int8
            | WirePrecision::Int8Shared { .. } => {}
        }
        4
    };

    /// One canonical value per variant, FP32 first (report order). The
    /// `Int8Shared` entry is a unit-scale placeholder: real shared scales
    /// are policy-chosen per bucket, but sweeps still need the variant
    /// represented.
    pub const ALL: [WirePrecision; Self::COUNT] = [
        WirePrecision::Fp32,
        WirePrecision::Bf16,
        WirePrecision::Int8,
        WirePrecision::Int8Shared {
            scale_bits: 0x3F80_0000, // 1.0f32
        },
    ];

    /// Scaled-INT8 wire under the given pre-agreed scale (must be positive
    /// and finite — the quantize kernels assert it).
    #[inline]
    pub fn int8_shared(scale: f32) -> Self {
        WirePrecision::Int8Shared {
            scale_bits: scale.to_bits(),
        }
    }

    /// The pre-agreed scale, if this is an [`Int8Shared`] wire.
    ///
    /// [`Int8Shared`]: WirePrecision::Int8Shared
    #[inline]
    pub fn shared_scale(self) -> Option<f32> {
        match self {
            WirePrecision::Int8Shared { scale_bits } => Some(f32::from_bits(scale_bits)),
            _ => None,
        }
    }

    /// Bytes one payload element occupies on the wire, *excluding* INT8
    /// scale headers (those are per-chunk, not per-element; the payload
    /// envelope accounts them).
    #[inline]
    pub fn bytes_per_elem(self) -> usize {
        match self {
            WirePrecision::Fp32 => 4,
            WirePrecision::Bf16 => 2,
            WirePrecision::Int8 | WirePrecision::Int8Shared { .. } => 1,
        }
    }
}

impl std::fmt::Display for WirePrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WirePrecision::Fp32 => f.write_str("fp32"),
            WirePrecision::Bf16 => f.write_str("bf16"),
            WirePrecision::Int8 => f.write_str("int8"),
            WirePrecision::Int8Shared { scale_bits } => {
                write!(f, "int8s({})", f32::from_bits(*scale_bits))
            }
        }
    }
}

thread_local! {
    /// Grow-only per-thread buffer pools for the ring collectives' owned
    /// payloads (see the module docs). One buffer of each width suffices:
    /// a ring step recycles the incoming buffer as the next outgoing one,
    /// so a whole collective call nets one take + one put.
    static F32_POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    static HALF_POOL: RefCell<Vec<Vec<u16>>> = const { RefCell::new(Vec::new()) };
    static BYTES_POOL: RefCell<Vec<Vec<u8>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a reusable `f32` buffer from this thread's pool (empty, capacity
/// retained from earlier use).
pub(crate) fn take_f32() -> Vec<f32> {
    F32_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns an `f32` buffer to this thread's pool.
pub(crate) fn put_f32(mut v: Vec<f32>) {
    v.clear();
    F32_POOL.with(|p| p.borrow_mut().push(v));
}

/// Takes a reusable halfword buffer from this thread's pool.
pub(crate) fn take_half() -> Vec<u16> {
    HALF_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns a halfword buffer to this thread's pool.
pub(crate) fn put_half(mut v: Vec<u16>) {
    v.clear();
    HALF_POOL.with(|p| p.borrow_mut().push(v));
}

/// Takes a reusable byte buffer from this thread's pool (INT8 wire
/// payloads).
pub(crate) fn take_bytes() -> Vec<u8> {
    BYTES_POOL
        .with(|p| p.borrow_mut().pop())
        .unwrap_or_default()
}

/// Returns a byte buffer to this thread's pool.
pub(crate) fn put_bytes(mut v: Vec<u8>) {
    v.clear();
    BYTES_POOL.with(|p| p.borrow_mut().push(v));
}

thread_local! {
    /// Grow-only FP32 staging buffer for widening incoming halfwords before
    /// the FP32 accumulate of the BF16 reduce-scatter.
    static WIDEN_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over a zero-filled FP32 scratch slice of length `len` from this
/// thread's grow-only staging buffer.
pub(crate) fn with_widen_scratch<T>(len: usize, f: impl FnOnce(&mut [f32]) -> T) -> T {
    WIDEN_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        buf.clear();
        buf.resize(len, 0.0);
        f(&mut buf)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_elem() {
        assert_eq!(WirePrecision::Fp32.bytes_per_elem(), 4);
        assert_eq!(WirePrecision::Bf16.bytes_per_elem(), 2);
        assert_eq!(WirePrecision::Int8.bytes_per_elem(), 1);
        assert_eq!(WirePrecision::int8_shared(0.5).bytes_per_elem(), 1);
        assert_eq!(WirePrecision::default(), WirePrecision::Fp32);
        assert_eq!(
            format!(
                "{}/{}/{}/{}",
                WirePrecision::Fp32,
                WirePrecision::Bf16,
                WirePrecision::Int8,
                WirePrecision::int8_shared(0.5)
            ),
            "fp32/bf16/int8/int8s(0.5)"
        );
    }

    #[test]
    fn all_lists_every_variant_exactly_once() {
        // COUNT is enforced exhaustive at compile time (the const match);
        // this pins the runtime side: ALL has COUNT distinct variants, one
        // per enum discriminant, so sweeps over ALL can't skip a tier.
        assert_eq!(WirePrecision::ALL.len(), WirePrecision::COUNT);
        let discriminant = |w: &WirePrecision| match w {
            WirePrecision::Fp32 => 0,
            WirePrecision::Bf16 => 1,
            WirePrecision::Int8 => 2,
            WirePrecision::Int8Shared { .. } => 3,
        };
        let mut seen: Vec<usize> = WirePrecision::ALL.iter().map(discriminant).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(
            seen.len(),
            WirePrecision::COUNT,
            "ALL must cover every variant: {:?}",
            WirePrecision::ALL
        );
        assert_eq!(WirePrecision::ALL[0], WirePrecision::Fp32);
    }

    #[test]
    fn shared_scale_round_trips() {
        assert_eq!(
            WirePrecision::int8_shared(0.125).shared_scale(),
            Some(0.125)
        );
        assert_eq!(WirePrecision::Int8.shared_scale(), None);
        assert_eq!(WirePrecision::Fp32.shared_scale(), None);
    }

    #[test]
    fn pools_recycle_capacity() {
        let mut v = take_f32();
        v.extend_from_slice(&[1.0; 100]);
        let cap = v.capacity();
        put_f32(v);
        let v2 = take_f32();
        assert!(v2.is_empty() && v2.capacity() == cap, "buffer not recycled");
        put_f32(v2);

        let mut h = take_half();
        h.resize(64, 0);
        put_half(h);
        assert!(take_half().capacity() >= 64);

        let mut b = take_bytes();
        b.resize(128, 0);
        put_bytes(b);
        assert!(take_bytes().capacity() >= 128);
    }

    #[test]
    fn widen_scratch_is_zeroed_and_sized() {
        with_widen_scratch(8, |s| {
            assert_eq!(s, &[0.0; 8]);
            s[0] = 5.0;
        });
        // Re-entry re-zeroes even after a smaller earlier use.
        with_widen_scratch(4, |s| assert_eq!(s, &[0.0; 4]));
    }
}
