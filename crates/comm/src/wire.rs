//! Wire-precision selection for the collectives.
//!
//! The paper's 16-bit section (and the BF16 projections of Figure 9) halve
//! communication volume by shipping BFLOAT16 halfwords instead of FP32
//! words. This module holds the knob ([`WirePrecision`]) and the pack
//! plumbing the BF16-wire collectives share:
//!
//! * **Accumulation policy**: reductions always accumulate in FP32. Only
//!   the *wire representation* narrows — each hop of the BF16 ring
//!   reduce-scatter narrows the outgoing FP32 partial sum to BF16 (RNE),
//!   and the receiver widens (exact) before adding in FP32.
//! * **Single-quantization rule**: every element crosses the BF16 wire
//!   exactly once between producer and consumer. Allgather forwards the
//!   received halfwords *bitwise* around the ring (re-narrowing a
//!   BF16-representable value is the identity, so forwarding is lossless),
//!   and alltoall quantizes the self-destined chunk locally so all `R`
//!   chunks of the result are uniformly wire-quantized. With `R == 1`
//!   nothing crosses a wire and payloads are untouched.
//! * **Buffer pools**: the transport moves *owned* buffers between rank
//!   threads, so the ring collectives draw their step-0 send buffer from a
//!   thread-local grow-only pool and return the final carry to it — after
//!   warm-up a steady-state train loop performs no payload allocations in
//!   the ring collectives (the alloc-growth suite pins this down).
//!
//! The narrow/widen kernels themselves live in [`dlrm_kernels::bf16wire`]
//! (scalar/AVX2/AVX-512 tiers, bitwise identical across tiers), so every
//! rank produces identical halfwords no matter which tier it ran.

use std::cell::RefCell;

/// Payload representation used on the wire by a collective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum WirePrecision {
    /// Full-width `f32` words (the default).
    #[default]
    Fp32,
    /// BFLOAT16 halfwords: RNE narrowing at the sender, exact widening at
    /// the receiver, FP32 local accumulation.
    Bf16,
}

impl WirePrecision {
    /// Both settings, FP32 first (report order).
    pub const ALL: [WirePrecision; 2] = [WirePrecision::Fp32, WirePrecision::Bf16];

    /// Bytes one payload element occupies on the wire.
    #[inline]
    pub fn bytes_per_elem(self) -> usize {
        match self {
            WirePrecision::Fp32 => 4,
            WirePrecision::Bf16 => 2,
        }
    }
}

impl std::fmt::Display for WirePrecision {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WirePrecision::Fp32 => f.write_str("fp32"),
            WirePrecision::Bf16 => f.write_str("bf16"),
        }
    }
}

thread_local! {
    /// Grow-only per-thread buffer pools for the ring collectives' owned
    /// payloads (see the module docs). One buffer of each width suffices:
    /// a ring step recycles the incoming buffer as the next outgoing one,
    /// so a whole collective call nets one take + one put.
    static F32_POOL: RefCell<Vec<Vec<f32>>> = const { RefCell::new(Vec::new()) };
    static HALF_POOL: RefCell<Vec<Vec<u16>>> = const { RefCell::new(Vec::new()) };
}

/// Takes a reusable `f32` buffer from this thread's pool (empty, capacity
/// retained from earlier use).
pub(crate) fn take_f32() -> Vec<f32> {
    F32_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns an `f32` buffer to this thread's pool.
pub(crate) fn put_f32(mut v: Vec<f32>) {
    v.clear();
    F32_POOL.with(|p| p.borrow_mut().push(v));
}

/// Takes a reusable halfword buffer from this thread's pool.
pub(crate) fn take_half() -> Vec<u16> {
    HALF_POOL.with(|p| p.borrow_mut().pop()).unwrap_or_default()
}

/// Returns a halfword buffer to this thread's pool.
pub(crate) fn put_half(mut v: Vec<u16>) {
    v.clear();
    HALF_POOL.with(|p| p.borrow_mut().push(v));
}

thread_local! {
    /// Grow-only FP32 staging buffer for widening incoming halfwords before
    /// the FP32 accumulate of the BF16 reduce-scatter.
    static WIDEN_SCRATCH: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Runs `f` over a zero-filled FP32 scratch slice of length `len` from this
/// thread's grow-only staging buffer.
pub(crate) fn with_widen_scratch<T>(len: usize, f: impl FnOnce(&mut [f32]) -> T) -> T {
    WIDEN_SCRATCH.with(|s| {
        let mut buf = s.borrow_mut();
        buf.clear();
        buf.resize(len, 0.0);
        f(&mut buf)
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_elem() {
        assert_eq!(WirePrecision::Fp32.bytes_per_elem(), 4);
        assert_eq!(WirePrecision::Bf16.bytes_per_elem(), 2);
        assert_eq!(WirePrecision::default(), WirePrecision::Fp32);
        assert_eq!(
            format!("{}/{}", WirePrecision::Fp32, WirePrecision::Bf16),
            "fp32/bf16"
        );
    }

    #[test]
    fn pools_recycle_capacity() {
        let mut v = take_f32();
        v.extend_from_slice(&[1.0; 100]);
        let cap = v.capacity();
        put_f32(v);
        let v2 = take_f32();
        assert!(v2.is_empty() && v2.capacity() == cap, "buffer not recycled");
        put_f32(v2);

        let mut h = take_half();
        h.resize(64, 0);
        put_half(h);
        assert!(take_half().capacity() >= 64);
    }

    #[test]
    fn widen_scratch_is_zeroed_and_sized() {
        with_widen_scratch(8, |s| {
            assert_eq!(s, &[0.0; 8]);
            s[0] = 5.0;
        });
        // Re-entry re-zeroes even after a smaller earlier use.
        with_widen_scratch(4, |s| assert_eq!(s, &[0.0; 4]));
    }
}
