//! Blocking collectives over point-to-point messages.
//!
//! The algorithm choices mirror what the paper relies on:
//!
//! * **allreduce** is materialized as ring **reduce-scatter** followed by
//!   ring **allgather** (Section IV-A: "we materialize the all-reduce
//!   operation via a reduce-scatter and an all-gather operation") — which is
//!   also what lets the overlap engine split it around the backward pass.
//! * **alltoall** uses the pairwise-exchange schedule (`R−1` rounds, partner
//!   `(rank ± s) mod R`), the pattern whose per-link volume drops `4×` per
//!   rank doubling in strong scaling (Eq. 2 discussion).
//! * **broadcast** is a binomial tree; **scatter/gather** are rooted linear
//!   exchanges (they model the paper's "ScatterList" strategy, which is
//!   deliberately the slow path).
//!
//! # Wire precision
//!
//! The hot collectives (reduce-scatter, allgather, allreduce, alltoall)
//! come in `_wire` variants taking a [`WirePrecision`]; the plain names are
//! the FP32 wire. The BF16 wire halves every payload: reductions still
//! accumulate in FP32 locally, but each ring hop narrows the outgoing
//! partial sum to BF16 (RNE) and the receiver widens it exactly before
//! adding. The INT8 wires quarter every payload the same way — each hop
//! ships one scaled byte per element (plus a 4-byte scale header for
//! [`WirePrecision::Int8`]; none for the pre-agreed
//! [`WirePrecision::Int8Shared`] scale) and the receiver reconstructs FP32
//! values before accumulating. See [`crate::wire`] for the accumulation
//! policy and the single-quantization rule the variants implement.

use crate::wire::{self, WirePrecision};
use crate::world::{Communicator, Int8Payload, Payload};
use dlrm_kernels::bf16wire;
use dlrm_kernels::gemm::{detect_isa, Isa};
use dlrm_kernels::int8wire;
use dlrm_tensor_free::partition_range;

/// Minimal local re-implementation to avoid a tensor dependency here.
mod dlrm_tensor_free {
    /// Same contract as `dlrm_tensor::util::partition_range`.
    #[inline]
    pub fn partition_range(n: usize, parts: usize, i: usize) -> std::ops::Range<usize> {
        (n * i / parts)..(n * (i + 1) / parts)
    }
}

/// Tag bases keep the p2p streams of different collectives recognizable in
/// assertion failures; correctness relies on per-pair FIFO order, not tags.
/// [`crate::instrument::WireStats`] buckets logical bytes by the tag-base
/// class (`tag >> 24`), which is why the prefetch fetch traffic gets its
/// own base — it shares the alltoall primitive but must be accountable
/// separately from the framework exchanges.
const TAG_RS: u64 = 0x0100_0000;
const TAG_AG: u64 = 0x0200_0000;
/// Public: the engine routes explicitly-tagged alltoalls by base.
pub const TAG_A2A: u64 = 0x0300_0000;
const TAG_BCAST: u64 = 0x0400_0000;
const TAG_SCATTER: u64 = 0x0500_0000;
const TAG_GATHER: u64 = 0x0600_0000;
/// Tag base for prefetch row-fetch alltoalls (see `dlrm-dist::prefetch`).
pub const TAG_PREFETCH: u64 = 0x0700_0000;

/// Effective scale-group length for an INT8 payload of `len` elements:
/// `0` means one scale for the whole payload (the ring collectives' case);
/// a nonzero group gives one scale per `group` elements (the alltoall's
/// per-table scales).
#[inline]
fn int8_group_len(scale_group: usize, len: usize) -> usize {
    if scale_group == 0 {
        len.max(1)
    } else {
        scale_group
    }
}

/// Quantizes `src` into an INT8 wire payload under `wirep` (which must be
/// an INT8 variant), reusing the `bytes`/`scales` buffers. Data-derived
/// scales ([`WirePrecision::Int8`]) are `absmax/127` per scale group and
/// marked headered — they cost 4 on-wire bytes each; a pre-agreed
/// [`WirePrecision::Int8Shared`] scale is carried for the decoder's
/// convenience but ships no header.
fn int8_encode(
    isa: Isa,
    wirep: WirePrecision,
    src: &[f32],
    mut bytes: Vec<u8>,
    mut scales: Vec<f32>,
    scale_group: usize,
) -> Int8Payload {
    let group_len = int8_group_len(scale_group, src.len());
    bytes.clear();
    bytes.resize(src.len(), 0);
    scales.clear();
    let shared = wirep.shared_scale();
    let mut start = 0;
    while start < src.len() {
        let end = (start + group_len).min(src.len());
        let scale = match shared {
            Some(s) => s,
            None => int8wire::scale_for_absmax(int8wire::absmax(&src[start..end])),
        };
        int8wire::quantize_slice(isa, &src[start..end], scale, &mut bytes[start..end]);
        scales.push(scale);
        start = end;
    }
    Int8Payload {
        bytes,
        scales,
        group_len,
        headered: shared.is_none(),
    }
}

/// Reconstructs FP32 values from an INT8 wire payload into `dst`.
fn int8_decode(isa: Isa, p: &Int8Payload, dst: &mut [f32]) {
    assert_eq!(p.bytes.len(), dst.len(), "int8 decode length mismatch");
    for (g, &scale) in p.scales.iter().enumerate() {
        let start = g * p.group_len;
        let end = (start + p.group_len).min(p.bytes.len());
        int8wire::dequantize_slice(isa, &p.bytes[start..end], scale, &mut dst[start..end]);
    }
}

/// Applies the INT8 wire round trip (`f32 → int8 → f32`) to a locally-kept
/// buffer, with the same per-group scale choice [`int8_encode`] would make
/// — used for the chunks that never cross a wire (an alltoall's
/// self-destined payload, a standalone reduce-scatter's own chunk) so they
/// are bitwise what a peer would have reconstructed.
fn int8_requantize(isa: Isa, wirep: WirePrecision, buf: &mut [f32], scale_group: usize) {
    let group_len = int8_group_len(scale_group, buf.len());
    let shared = wirep.shared_scale();
    let mut start = 0;
    while start < buf.len() {
        let end = (start + group_len).min(buf.len());
        let scale = match shared {
            Some(s) => s,
            None => int8wire::scale_for_absmax(int8wire::absmax(&buf[start..end])),
        };
        int8wire::quantize_dequantize_slice(isa, &mut buf[start..end], scale);
        start = end;
    }
}

/// Ring reduce-scatter (sum): every rank contributes `data` (same length on
/// all ranks) and receives the fully-reduced chunk `partition_range(len, R,
/// rank)`.
pub fn reduce_scatter_sum(comm: &Communicator, data: &[f32]) -> Vec<f32> {
    reduce_scatter_sum_wire(comm, data, WirePrecision::Fp32)
}

/// [`reduce_scatter_sum`] with a selectable wire. The narrowed wires
/// accumulate in FP32 and quantize only the hop payloads; the returned
/// chunk is additionally quantized once (`f32 → wire → f32`), so the
/// values every rank later receives from an allgather of these chunks are
/// bitwise the ones the owner holds.
pub fn reduce_scatter_sum_wire(
    comm: &Communicator,
    data: &[f32],
    wirep: WirePrecision,
) -> Vec<f32> {
    reduce_scatter_sum_wire_impl(comm, data, wirep, true)
}

/// [`reduce_scatter_sum_wire`] with the final-chunk quantization made
/// optional. [`allreduce_sum_wire`] on an INT8 wire passes `false`: its
/// allgather quantizes each reduced chunk exactly once at the source (and
/// the source adopts the dequantized values too), so quantizing here as
/// well would double-quantize. BF16 ignores the flag — its allgather
/// forwards representable values losslessly, so the final narrowing here
/// *is* the single quantization.
fn reduce_scatter_sum_wire_impl(
    comm: &Communicator,
    data: &[f32],
    wirep: WirePrecision,
    quantize_final: bool,
) -> Vec<f32> {
    let r = comm.nranks();
    let me = comm.rank();
    if r == 1 {
        return data.to_vec();
    }
    let len = data.len();
    let next = (me + 1) % r;
    let prev = (me + r - 1) % r;

    // Working copy; chunk c is data[partition_range(len, r, c)]. Chunk c
    // starts its ring journey at rank (c+1) mod r and, moving one hop per
    // step, is fully reduced when it arrives at rank c after r-1 steps:
    // rank `me` therefore sends chunk (me-s-1) and receives (me-s-2).
    let mut work = data.to_vec();
    match wirep {
        WirePrecision::Fp32 => {
            // The outgoing chunk is staged in a pooled buffer; each step
            // recycles the buffer that just arrived, so the whole call
            // performs no payload allocations in steady state.
            let mut stage = wire::take_f32();
            for s in 0..r - 1 {
                let send_chunk = (me + 2 * r - s - 1) % r;
                let recv_chunk = (me + 2 * r - s - 2) % r;
                let send_range = partition_range(len, r, send_chunk);
                stage.clear();
                stage.extend_from_slice(&work[send_range]);
                comm.send(next, TAG_RS + s as u64, stage);
                let incoming = comm.recv(prev, TAG_RS + s as u64);
                let recv_range = partition_range(len, r, recv_chunk);
                for (w, &x) in work[recv_range].iter_mut().zip(&incoming) {
                    *w += x;
                }
                stage = incoming;
            }
            wire::put_f32(stage);
            work[partition_range(len, r, me)].to_vec()
        }
        WirePrecision::Bf16 => {
            let isa = detect_isa();
            let mut stage = wire::take_half();
            for s in 0..r - 1 {
                let send_chunk = (me + 2 * r - s - 1) % r;
                let recv_chunk = (me + 2 * r - s - 2) % r;
                let send_range = partition_range(len, r, send_chunk);
                let chunk = &work[send_range];
                stage.resize(chunk.len(), 0);
                bf16wire::narrow_slice(isa, chunk, &mut stage);
                comm.send_payload(next, TAG_RS + s as u64, Payload::Bf16(stage));
                let incoming = comm.recv_payload(prev, TAG_RS + s as u64).into_bf16();
                let recv_range = partition_range(len, r, recv_chunk);
                wire::with_widen_scratch(incoming.len(), |widened| {
                    bf16wire::widen_slice(isa, &incoming, widened);
                    for (w, &x) in work[recv_range].iter_mut().zip(widened.iter()) {
                        *w += x;
                    }
                });
                stage = incoming;
            }
            wire::put_half(stage);
            let mut out = work[partition_range(len, r, me)].to_vec();
            bf16wire::quantize_slice(isa, &mut out);
            out
        }
        WirePrecision::Int8 | WirePrecision::Int8Shared { .. } => {
            let isa = detect_isa();
            let mut stage = wire::take_bytes();
            let mut scale_stage = wire::take_f32();
            for s in 0..r - 1 {
                let send_chunk = (me + 2 * r - s - 1) % r;
                let recv_chunk = (me + 2 * r - s - 2) % r;
                let chunk = &work[partition_range(len, r, send_chunk)];
                let payload = int8_encode(isa, wirep, chunk, stage, scale_stage, 0);
                comm.send_payload(next, TAG_RS + s as u64, Payload::Int8(payload));
                let incoming = comm.recv_payload(prev, TAG_RS + s as u64).into_int8();
                let recv_range = partition_range(len, r, recv_chunk);
                wire::with_widen_scratch(incoming.bytes.len(), |widened| {
                    int8_decode(isa, &incoming, widened);
                    for (acc, &x) in work[recv_range].iter_mut().zip(widened.iter()) {
                        *acc += x;
                    }
                });
                stage = incoming.bytes;
                scale_stage = incoming.scales;
            }
            wire::put_bytes(stage);
            wire::put_f32(scale_stage);
            let mut out = work[partition_range(len, r, me)].to_vec();
            if quantize_final {
                int8_requantize(isa, wirep, &mut out, 0);
            }
            out
        }
    }
}

/// Ring allgather of variable-size chunks. `counts[i]` is rank `i`'s chunk
/// length; returns the concatenation `chunk_0 ‖ chunk_1 ‖ …`.
pub fn allgather_varied(comm: &Communicator, mine: &[f32], counts: &[usize]) -> Vec<f32> {
    allgather_varied_wire(comm, mine, counts, WirePrecision::Fp32)
}

/// [`allgather_varied`] with a selectable wire. On the BF16 wire each chunk
/// is narrowed **once** at its source and then forwarded around the ring as
/// raw halfwords (re-narrowing a BF16-representable value is the identity,
/// so forwarding is lossless); the result equals the FP32-wire allgather of
/// the elementwise-quantized inputs, bitwise identical on every rank —
/// including the local copy of this rank's own chunk, which is quantized
/// too so all `R` chunks of the output are uniformly wire-quantized.
///
/// The INT8 wires get the same single-quantization guarantee by a
/// different route: the source quantizes its chunk once (bytes + scale),
/// every hop forwards those bits losslessly, and *every* rank — the source
/// included — adopts the dequantized reconstruction, so all ranks hold
/// bitwise identical FP32 values.
pub fn allgather_varied_wire(
    comm: &Communicator,
    mine: &[f32],
    counts: &[usize],
    wirep: WirePrecision,
) -> Vec<f32> {
    let r = comm.nranks();
    let me = comm.rank();
    assert_eq!(counts.len(), r, "allgather counts length");
    assert_eq!(mine.len(), counts[me], "allgather own count mismatch");
    let total: usize = counts.iter().sum();
    let starts: Vec<usize> = counts
        .iter()
        .scan(0usize, |acc, &c| {
            let s = *acc;
            *acc += c;
            Some(s)
        })
        .collect();

    let mut out = vec![0.0f32; total];
    out[starts[me]..starts[me] + counts[me]].copy_from_slice(mine);
    if r == 1 {
        return out;
    }
    let next = (me + 1) % r;
    let prev = (me + r - 1) % r;
    match wirep {
        WirePrecision::Fp32 => {
            // Pass chunks around the ring; after R-1 steps everyone has all
            // chunks. The first hop stages into a pooled buffer; later hops
            // recycle the buffer that just arrived.
            let mut carry = wire::take_f32();
            carry.extend_from_slice(mine);
            for s in 0..r - 1 {
                comm.send(next, TAG_AG + s as u64, carry);
                let incoming = comm.recv(prev, TAG_AG + s as u64);
                let owner = (me + r - s - 1) % r;
                out[starts[owner]..starts[owner] + counts[owner]].copy_from_slice(&incoming);
                carry = incoming;
            }
            wire::put_f32(carry);
        }
        WirePrecision::Bf16 => {
            let isa = detect_isa();
            let mut carry = wire::take_half();
            carry.resize(mine.len(), 0);
            bf16wire::narrow_slice(isa, mine, &mut carry);
            // The local copy crosses the same (single) quantization.
            bf16wire::widen_slice(isa, &carry, &mut out[starts[me]..starts[me] + counts[me]]);
            for s in 0..r - 1 {
                comm.send_payload(next, TAG_AG + s as u64, Payload::Bf16(carry));
                let incoming = comm.recv_payload(prev, TAG_AG + s as u64).into_bf16();
                let owner = (me + r - s - 1) % r;
                bf16wire::widen_slice(
                    isa,
                    &incoming,
                    &mut out[starts[owner]..starts[owner] + counts[owner]],
                );
                carry = incoming;
            }
            wire::put_half(carry);
        }
        WirePrecision::Int8 | WirePrecision::Int8Shared { .. } => {
            let isa = detect_isa();
            let mut carry = int8_encode(isa, wirep, mine, wire::take_bytes(), wire::take_f32(), 0);
            // The source adopts its own dequantized chunk, so its local
            // copy is bitwise what every peer reconstructs.
            int8_decode(isa, &carry, &mut out[starts[me]..starts[me] + counts[me]]);
            for s in 0..r - 1 {
                comm.send_payload(next, TAG_AG + s as u64, Payload::Int8(carry));
                let incoming = comm.recv_payload(prev, TAG_AG + s as u64).into_int8();
                let owner = (me + r - s - 1) % r;
                int8_decode(
                    isa,
                    &incoming,
                    &mut out[starts[owner]..starts[owner] + counts[owner]],
                );
                carry = incoming;
            }
            wire::put_bytes(carry.bytes);
            wire::put_f32(carry.scales);
        }
    }
    out
}

/// Ring allgather of equal-size chunks.
pub fn allgather(comm: &Communicator, mine: &[f32]) -> Vec<f32> {
    let counts = vec![mine.len(); comm.nranks()];
    allgather_varied(comm, mine, &counts)
}

/// Allreduce (sum) materialized as reduce-scatter + allgather, in place.
pub fn allreduce_sum(comm: &Communicator, data: &mut [f32]) {
    allreduce_sum_wire(comm, data, WirePrecision::Fp32);
}

/// [`allreduce_sum`] with a selectable wire. On the BF16 wire the
/// reduce-scatter accumulates in FP32 (narrowing only its hop payloads) and
/// quantizes each fully-reduced chunk once; the allgather then forwards
/// those bits losslessly. On the INT8 wires the reduce-scatter leaves each
/// reduced chunk in raw FP32 and the allgather quantizes it exactly once at
/// its source, forwarding bytes + scale losslessly, with every rank — the
/// source included — adopting the dequantized values. Either way **all
/// ranks end bitwise identical** — the property the data-parallel update
/// relies on.
pub fn allreduce_sum_wire(comm: &Communicator, data: &mut [f32], wirep: WirePrecision) {
    let r = comm.nranks();
    if r == 1 {
        return;
    }
    let quantize_final = !matches!(
        wirep,
        WirePrecision::Int8 | WirePrecision::Int8Shared { .. }
    );
    let reduced_chunk = reduce_scatter_sum_wire_impl(comm, data, wirep, quantize_final);
    let counts: Vec<usize> = (0..r)
        .map(|i| partition_range(data.len(), r, i).len())
        .collect();
    // BF16: the reduced chunk is already wire-quantized, so the allgather's
    // source narrowing is the identity on its bits. INT8: the chunk is raw
    // FP32 and the allgather's source quantization is the single one.
    let gathered = allgather_varied_wire(comm, &reduced_chunk, &counts, wirep);
    data.copy_from_slice(&gathered);
}

/// Pairwise-exchange alltoall: `send[dst]` is this rank's payload for rank
/// `dst`; returns `recv[src]` = payload from rank `src`. Payload sizes may
/// differ arbitrarily (this doubles as alltoallv).
pub fn alltoall(comm: &Communicator, send: Vec<Vec<f32>>) -> Vec<Vec<f32>> {
    alltoall_wire(comm, send, WirePrecision::Fp32)
}

/// [`alltoall`] with a selectable wire. On a narrowed wire every payload —
/// including the self-destined chunk, which is quantized locally — crosses
/// the quantization exactly once, so the result equals the FP32-wire
/// alltoall with every element quantized (`f32 → wire → f32`), bitwise.
pub fn alltoall_wire(
    comm: &Communicator,
    send: Vec<Vec<f32>>,
    wirep: WirePrecision,
) -> Vec<Vec<f32>> {
    alltoall_wire_tagged(comm, send, wirep, TAG_A2A)
}

/// [`alltoall_wire`] under an explicit tag base, so callers that reuse the
/// pairwise exchange for a different logical stream (the prefetch row
/// fetch) land in their own [`WireStats`](crate::instrument::WireStats)
/// byte bucket.
pub fn alltoall_wire_tagged(
    comm: &Communicator,
    send: Vec<Vec<f32>>,
    wirep: WirePrecision,
    tag_base: u64,
) -> Vec<Vec<f32>> {
    alltoall_wire_grouped_tagged(comm, send, wirep, tag_base, 0)
}

/// [`alltoall_wire_tagged`] with an INT8 scale-group length. When each
/// payload is a concatenation of equal-length logical blocks — the
/// embedding exchanges pack one `n × E` block per table — passing that
/// block length as `scale_group` gives every block its own scale, so one
/// outlier table can't flatten the quantization grid of the others. `0`
/// means one scale per payload; FP32/BF16 wires ignore the parameter.
pub fn alltoall_wire_grouped_tagged(
    comm: &Communicator,
    mut send: Vec<Vec<f32>>,
    wirep: WirePrecision,
    tag_base: u64,
    scale_group: usize,
) -> Vec<Vec<f32>> {
    let r = comm.nranks();
    let me = comm.rank();
    assert_eq!(send.len(), r, "alltoall needs one payload per rank");
    let mut recv: Vec<Vec<f32>> = (0..r).map(|_| Vec::new()).collect();
    recv[me] = std::mem::take(&mut send[me]);
    if r == 1 {
        return recv;
    }
    match wirep {
        WirePrecision::Fp32 => {
            for s in 1..r {
                let dst = (me + s) % r;
                let src = (me + r - s) % r;
                comm.send(dst, tag_base + s as u64, std::mem::take(&mut send[dst]));
                recv[src] = comm.recv(src, tag_base + s as u64);
            }
        }
        WirePrecision::Bf16 => {
            let isa = detect_isa();
            bf16wire::quantize_slice(isa, &mut recv[me]);
            let mut stage = wire::take_half();
            for s in 1..r {
                let dst = (me + s) % r;
                let src = (me + r - s) % r;
                let outgoing = std::mem::take(&mut send[dst]);
                stage.resize(outgoing.len(), 0);
                bf16wire::narrow_slice(isa, &outgoing, &mut stage);
                comm.send_payload(dst, tag_base + s as u64, Payload::Bf16(stage));
                let incoming = comm.recv_payload(src, tag_base + s as u64).into_bf16();
                // Recycle the f32 buffer we just narrowed from as the
                // widen target for what arrived.
                let mut widened = outgoing;
                widened.clear();
                widened.resize(incoming.len(), 0.0);
                bf16wire::widen_slice(isa, &incoming, &mut widened);
                recv[src] = widened;
                stage = incoming;
            }
            wire::put_half(stage);
        }
        WirePrecision::Int8 | WirePrecision::Int8Shared { .. } => {
            let isa = detect_isa();
            int8_requantize(isa, wirep, &mut recv[me], scale_group);
            let mut bytes = wire::take_bytes();
            let mut scales = wire::take_f32();
            for s in 1..r {
                let dst = (me + s) % r;
                let src = (me + r - s) % r;
                let outgoing = std::mem::take(&mut send[dst]);
                let payload = int8_encode(isa, wirep, &outgoing, bytes, scales, scale_group);
                comm.send_payload(dst, tag_base + s as u64, Payload::Int8(payload));
                let incoming = comm.recv_payload(src, tag_base + s as u64).into_int8();
                // Recycle the f32 buffer we just quantized from as the
                // dequantize target for what arrived.
                let mut widened = outgoing;
                widened.clear();
                widened.resize(incoming.bytes.len(), 0.0);
                int8_decode(isa, &incoming, &mut widened);
                recv[src] = widened;
                bytes = incoming.bytes;
                scales = incoming.scales;
            }
            wire::put_bytes(bytes);
            wire::put_f32(scales);
        }
    }
    recv
}

/// Binomial-tree broadcast from `root`, in place. Non-root ranks pass a
/// buffer of the correct length.
pub fn broadcast(comm: &Communicator, root: usize, data: &mut Vec<f32>) {
    let r = comm.nranks();
    if r == 1 {
        return;
    }
    // Re-index so the root is virtual rank 0.
    let vrank = (comm.rank() + r - root) % r;
    let mut mask = 1usize;
    // Receive phase: the lowest set bit of vrank tells who our parent is.
    while mask < r {
        if vrank & mask != 0 {
            let parent = ((vrank - mask) + root) % r;
            *data = comm.recv(parent, TAG_BCAST);
            break;
        }
        mask <<= 1;
    }
    // Send phase: forward to children below our lowest set bit.
    let mut child_mask = if vrank == 0 {
        let mut top = 1usize;
        while top < r {
            top <<= 1;
        }
        top >> 1
    } else {
        mask >> 1
    };
    while child_mask > 0 {
        let vchild = vrank + child_mask;
        if vchild < r {
            let child = (vchild + root) % r;
            comm.send(child, TAG_BCAST, data.clone());
        }
        child_mask >>= 1;
    }
}

/// Rooted scatter: root provides one payload per rank; every rank receives
/// its part. This is one "scatter" of the paper's ScatterList strategy.
pub fn scatter(comm: &Communicator, root: usize, parts: Option<Vec<Vec<f32>>>) -> Vec<f32> {
    let r = comm.nranks();
    let me = comm.rank();
    if me == root {
        let mut parts = parts.expect("root must supply scatter payloads");
        assert_eq!(parts.len(), r, "scatter needs one payload per rank");
        #[allow(clippy::needless_range_loop)] // dst is a rank id, not just an index
        for dst in 0..r {
            if dst != root {
                comm.send(dst, TAG_SCATTER, std::mem::take(&mut parts[dst]));
            }
        }
        std::mem::take(&mut parts[root])
    } else {
        comm.recv(root, TAG_SCATTER)
    }
}

/// Rooted gather: every rank contributes `mine`; the root receives all
/// payloads in rank order.
pub fn gather(comm: &Communicator, root: usize, mine: Vec<f32>) -> Option<Vec<Vec<f32>>> {
    let r = comm.nranks();
    let me = comm.rank();
    if me == root {
        let mut out: Vec<Vec<f32>> = (0..r).map(|_| Vec::new()).collect();
        out[root] = mine;
        #[allow(clippy::needless_range_loop)] // src is a rank id, not just an index
        for src in 0..r {
            if src != root {
                out[src] = comm.recv(src, TAG_GATHER);
            }
        }
        Some(out)
    } else {
        comm.send(root, TAG_GATHER, mine);
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::CommWorld;

    fn rank_vector(rank: usize, len: usize) -> Vec<f32> {
        (0..len).map(|i| (rank * 100 + i) as f32).collect()
    }

    #[test]
    fn allreduce_sums_across_ranks() {
        for r in [1usize, 2, 3, 4, 7, 8] {
            let out = CommWorld::run(r, |c| {
                let mut data = rank_vector(c.rank(), 13);
                allreduce_sum(&c, &mut data);
                data
            });
            let want: Vec<f32> = (0..13)
                .map(|i| (0..r).map(|rk| (rk * 100 + i) as f32).sum())
                .collect();
            for (rk, got) in out.iter().enumerate() {
                assert_eq!(got, &want, "rank {rk} of {r}");
            }
        }
    }

    #[test]
    fn allreduce_len_smaller_than_ranks() {
        // len=2 with 5 ranks: some ring chunks are empty.
        let out = CommWorld::run(5, |c| {
            let mut data = vec![c.rank() as f32, 1.0];
            allreduce_sum(&c, &mut data);
            data
        });
        for got in out {
            assert_eq!(got, vec![10.0, 5.0]);
        }
    }

    #[test]
    fn reduce_scatter_returns_owned_chunk() {
        let r = 4;
        let len = 10;
        let out = CommWorld::run(r, |c| reduce_scatter_sum(&c, &rank_vector(c.rank(), len)));
        for (rk, chunk) in out.iter().enumerate() {
            let range = (len * rk / r)..(len * (rk + 1) / r);
            let want: Vec<f32> = range
                .map(|i| (0..r).map(|s| (s * 100 + i) as f32).sum())
                .collect();
            assert_eq!(chunk, &want, "rank {rk}");
        }
    }

    #[test]
    fn allgather_concatenates_in_rank_order() {
        let out = CommWorld::run(4, |c| allgather(&c, &[c.rank() as f32 * 2.0]));
        for got in out {
            assert_eq!(got, vec![0.0, 2.0, 4.0, 6.0]);
        }
    }

    #[test]
    fn allgather_varied_sizes() {
        let counts = vec![1usize, 3, 0, 2];
        let out = CommWorld::run(4, |c| {
            let mine: Vec<f32> = (0..counts[c.rank()])
                .map(|i| (c.rank() * 10 + i) as f32)
                .collect();
            allgather_varied(&c, &mine, &counts)
        });
        for got in out {
            assert_eq!(got, vec![0.0, 10.0, 11.0, 12.0, 30.0, 31.0]);
        }
    }

    #[test]
    fn alltoall_is_global_transpose() {
        let r = 5;
        let out = CommWorld::run(r, |c| {
            let send: Vec<Vec<f32>> = (0..r)
                .map(|dst| vec![(c.rank() * 10 + dst) as f32])
                .collect();
            alltoall(&c, send)
        });
        for (dst, recv) in out.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload, &vec![(src * 10 + dst) as f32], "{src}->{dst}");
            }
        }
    }

    #[test]
    fn alltoall_variable_sizes() {
        // rank r sends r+dst elements to dst.
        let r = 3;
        let out = CommWorld::run(r, |c| {
            let send: Vec<Vec<f32>> = (0..r).map(|dst| vec![1.0; c.rank() + dst]).collect();
            alltoall(&c, send)
        });
        for (dst, recv) in out.iter().enumerate() {
            for (src, payload) in recv.iter().enumerate() {
                assert_eq!(payload.len(), src + dst);
            }
        }
    }

    #[test]
    fn broadcast_from_every_root() {
        for r in [1usize, 2, 3, 6, 8] {
            for root in 0..r {
                let out = CommWorld::run(r, |c| {
                    let mut data = if c.rank() == root {
                        vec![42.0, root as f32]
                    } else {
                        vec![0.0, 0.0]
                    };
                    broadcast(&c, root, &mut data);
                    data
                });
                for (rk, got) in out.iter().enumerate() {
                    assert_eq!(
                        got,
                        &vec![42.0, root as f32],
                        "rank {rk}, root {root}, R={r}"
                    );
                }
            }
        }
    }

    #[test]
    fn scatter_distributes_parts() {
        let out = CommWorld::run(4, |c| {
            let parts =
                (c.rank() == 1).then(|| (0..4).map(|d| vec![d as f32; d + 1]).collect::<Vec<_>>());
            scatter(&c, 1, parts)
        });
        for (rk, got) in out.iter().enumerate() {
            assert_eq!(got, &vec![rk as f32; rk + 1]);
        }
    }

    #[test]
    fn gather_collects_in_rank_order() {
        let out = CommWorld::run(3, |c| gather(&c, 2, vec![c.rank() as f32]));
        assert!(out[0].is_none() && out[1].is_none());
        assert_eq!(
            out[2].as_ref().unwrap(),
            &vec![vec![0.0], vec![1.0], vec![2.0]]
        );
    }

    fn quantize_ref(v: &[f32]) -> Vec<f32> {
        let mut q = v.to_vec();
        bf16wire::quantize_slice(dlrm_kernels::gemm::Isa::Scalar, &mut q);
        q
    }

    #[test]
    fn bf16_alltoall_equals_quantized_fp32_alltoall() {
        let r = 4;
        let mk_send = |rank: usize| -> Vec<Vec<f32>> {
            (0..r)
                .map(|d| {
                    (0..d + 2)
                        .map(|i| ((rank * 31 + d * 7 + i) as f32).sin() * 3.7)
                        .collect()
                })
                .collect()
        };
        let bf = CommWorld::run(r, |c| {
            alltoall_wire(&c, mk_send(c.rank()), WirePrecision::Bf16)
        });
        let fp = CommWorld::run(r, |c| alltoall(&c, mk_send(c.rank())));
        for (dst, (b_rank, f_rank)) in bf.iter().zip(&fp).enumerate() {
            for (src, (b, f)) in b_rank.iter().zip(f_rank).enumerate() {
                let want = quantize_ref(f);
                assert_eq!(
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{src}->{dst}: bf16 alltoall must equal quantized fp32 alltoall"
                );
            }
        }
    }

    #[test]
    fn bf16_allreduce_ranks_bitwise_identical_within_rne_bound() {
        for r in [2usize, 3, 4, 8] {
            let len = 33;
            let input = |rk: usize| -> Vec<f32> {
                (0..len)
                    .map(|i| ((rk * 53 + i * 17) as f32).cos() * (i as f32 + 0.3))
                    .collect()
            };
            let bf = CommWorld::run(r, |c| {
                let mut data = input(c.rank());
                allreduce_sum_wire(&c, &mut data, WirePrecision::Bf16);
                data
            });
            let mut fp = input(0);
            for rk in 1..r {
                for (a, b) in fp.iter_mut().zip(input(rk)) {
                    *a += b;
                }
            }
            for rk in 1..r {
                assert_eq!(
                    bf[rk].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    bf[0].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "rank {rk} of {r} diverged on the bf16 wire"
                );
            }
            // Each of the r-1 hops plus the final quantization contributes
            // at most a half-ULP (2^-8 relative) of the running magnitude,
            // bounded by M_j = sum of |contributions|.
            for j in 0..len {
                let m: f32 = (0..r).map(|rk| input(rk)[j].abs()).sum();
                let bound = (r as f32 + 1.0) * m * 2.0f32.powi(-8);
                let err = (bf[0][j] - fp[j]).abs();
                assert!(
                    err <= bound,
                    "R={r} elem {j}: err {err} exceeds RNE bound {bound}"
                );
            }
        }
    }

    #[test]
    fn bf16_allreduce_exact_on_representable_payloads() {
        // Small integers: every partial sum is an integer well inside the
        // BF16 mantissa, so every hop's narrowing is exact and the result
        // must be bitwise the fp32-wire result.
        for r in [2usize, 4, 8] {
            let input = |rk: usize| -> Vec<f32> {
                (0..19)
                    .map(|i| ((rk * 7 + i * 3) % 17) as f32 - 8.0)
                    .collect()
            };
            let bf = CommWorld::run(r, |c| {
                let mut data = input(c.rank());
                allreduce_sum_wire(&c, &mut data, WirePrecision::Bf16);
                data
            });
            let fp = CommWorld::run(r, |c| {
                let mut data = input(c.rank());
                allreduce_sum(&c, &mut data);
                data
            });
            for (rk, (b, f)) in bf.iter().zip(&fp).enumerate() {
                assert_eq!(
                    b.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    f.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "rank {rk} of {r}: representable payloads must be lossless"
                );
            }
        }
    }

    #[test]
    fn bf16_wire_halves_allreduce_and_alltoall_bytes() {
        let r = 4;
        let run_counted = |wirep: WirePrecision| {
            let snaps = CommWorld::run(r, move |c| {
                let mut data = vec![c.rank() as f32; 64];
                allreduce_sum_wire(&c, &mut data, wirep);
                let send: Vec<Vec<f32>> = (0..r).map(|d| vec![d as f32; 16]).collect();
                let _ = alltoall_wire(&c, send, wirep);
                c.barrier();
                c.wire_stats().snapshot()
            });
            snaps[0]
        };
        let fp = run_counted(WirePrecision::Fp32);
        let bf = run_counted(WirePrecision::Bf16);
        assert!(fp.allreduce_bytes() > 0 && fp.alltoall_bytes > 0);
        assert_eq!(bf.allreduce_bytes() * 2, fp.allreduce_bytes());
        assert_eq!(bf.alltoall_bytes * 2, fp.alltoall_bytes);
        assert_eq!(
            bf.messages, fp.messages,
            "same message count, half the bytes"
        );
    }

    #[test]
    fn wire_variants_single_rank_are_identity() {
        for wirep in [
            WirePrecision::Bf16,
            WirePrecision::Int8,
            WirePrecision::int8_shared(0.125),
        ] {
            let out = CommWorld::run(1, move |c| {
                let mut data = vec![0.1234567f32, -9.87654];
                allreduce_sum_wire(&c, &mut data, wirep);
                let recv = alltoall_wire(&c, vec![vec![0.7654321f32]], wirep);
                (data, recv)
            });
            // R = 1: nothing crosses a wire, payloads must be untouched.
            assert_eq!(out[0].0, vec![0.1234567f32, -9.87654], "{wirep}");
            assert_eq!(out[0].1[0], vec![0.7654321f32], "{wirep}");
        }
    }

    fn int8_quantize_ref(v: &[f32], group: usize) -> Vec<f32> {
        let mut q = v.to_vec();
        let group = if group == 0 { v.len().max(1) } else { group };
        let mut start = 0;
        while start < q.len() {
            let end = (start + group).min(q.len());
            let scale = int8wire::scale_for_absmax(int8wire::absmax(&q[start..end]));
            int8wire::quantize_dequantize_slice(
                dlrm_kernels::gemm::Isa::Scalar,
                &mut q[start..end],
                scale,
            );
            start = end;
        }
        q
    }

    #[test]
    fn int8_alltoall_equals_quantized_fp32_alltoall() {
        let r = 4;
        let mk_send = |rank: usize| -> Vec<Vec<f32>> {
            (0..r)
                .map(|d| {
                    (0..d + 2)
                        .map(|i| ((rank * 31 + d * 7 + i) as f32).sin() * 3.7)
                        .collect()
                })
                .collect()
        };
        let i8r = CommWorld::run(r, |c| {
            alltoall_wire(&c, mk_send(c.rank()), WirePrecision::Int8)
        });
        let fp = CommWorld::run(r, |c| alltoall(&c, mk_send(c.rank())));
        for (dst, (q_rank, f_rank)) in i8r.iter().zip(&fp).enumerate() {
            for (src, (q, f)) in q_rank.iter().zip(f_rank).enumerate() {
                let want = int8_quantize_ref(f, 0);
                assert_eq!(
                    q.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{src}->{dst}: int8 alltoall must equal quantized fp32 alltoall"
                );
            }
        }
    }

    #[test]
    fn int8_grouped_alltoall_scales_each_block_independently() {
        // Payloads are two 4-element blocks with wildly different ranges;
        // per-block scales (scale_group = 4) must match quantizing each
        // block independently — the big block can't flatten the small one.
        let r = 3;
        let mk_send = |rank: usize| -> Vec<Vec<f32>> {
            (0..r)
                .map(|d| {
                    let mut v: Vec<f32> = (0..4)
                        .map(|i| ((rank * 13 + d * 5 + i) as f32).sin() * 900.0)
                        .collect();
                    v.extend((0..4).map(|i| ((rank + d + i) as f32).cos() * 0.01));
                    v
                })
                .collect()
        };
        let got = CommWorld::run(r, |c| {
            alltoall_wire_grouped_tagged(&c, mk_send(c.rank()), WirePrecision::Int8, TAG_A2A, 4)
        });
        let fp = CommWorld::run(r, |c| alltoall(&c, mk_send(c.rank())));
        for (dst, (q_rank, f_rank)) in got.iter().zip(&fp).enumerate() {
            for (src, (q, f)) in q_rank.iter().zip(f_rank).enumerate() {
                let want = int8_quantize_ref(f, 4);
                assert_eq!(
                    q.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    want.iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "{src}->{dst}"
                );
                // The small block must actually survive: with one shared
                // scale its values would all collapse to zero.
                assert!(
                    q[4..].iter().any(|&x| x != 0.0),
                    "{src}->{dst}: per-block scale lost the small block"
                );
            }
        }
    }

    #[test]
    fn int8_allreduce_ranks_bitwise_identical_within_scale_bound() {
        for r in [2usize, 3, 4, 8] {
            let len = 33;
            let input = |rk: usize| -> Vec<f32> {
                (0..len)
                    .map(|i| ((rk * 53 + i * 17) as f32).cos() * (i as f32 + 0.3))
                    .collect()
            };
            let q = CommWorld::run(r, |c| {
                let mut data = input(c.rank());
                allreduce_sum_wire(&c, &mut data, WirePrecision::Int8);
                data
            });
            let mut fp = input(0);
            for rk in 1..r {
                for (a, b) in fp.iter_mut().zip(input(rk)) {
                    *a += b;
                }
            }
            for rk in 1..r {
                assert_eq!(
                    q[rk].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    q[0].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "rank {rk} of {r} diverged on the int8 wire"
                );
            }
            // Element j sits in ring chunk c and crosses at most r
            // quantizations (r−1 reduce-scatter hops + 1 allgather source),
            // each on a grid of spacing ≤ A_c/127 where A_c bounds every
            // partial sum in the chunk — so each event errs ≤ A_c/254.
            for c in 0..r {
                let range = partition_range(len, r, c);
                let a_c: f32 = range
                    .clone()
                    .map(|j| (0..r).map(|rk| input(rk)[j].abs()).sum::<f32>())
                    .fold(0.0, f32::max);
                let bound = (r as f32 + 1.0) * a_c / 254.0 * 1.00001 + 1e-30;
                for j in range {
                    let err = (q[0][j] - fp[j]).abs();
                    assert!(
                        err <= bound,
                        "R={r} elem {j}: err {err} exceeds int8 bound {bound}"
                    );
                }
            }
        }
    }

    #[test]
    fn int8_shared_allreduce_bitwise_identical_within_scale_bound() {
        // A pre-agreed scale wide enough for every partial sum: inputs are
        // in [-1, 1], so partial sums stay within ±8 for r ≤ 8.
        let shared = 16.0f32 / 127.0;
        for r in [2usize, 4, 8] {
            let len = 21;
            let input = |rk: usize| -> Vec<f32> {
                (0..len)
                    .map(|i| ((rk * 29 + i * 11) as f32).sin())
                    .collect()
            };
            let q = CommWorld::run(r, |c| {
                let mut data = input(c.rank());
                allreduce_sum_wire(&c, &mut data, WirePrecision::int8_shared(shared));
                data
            });
            let mut fp = input(0);
            for rk in 1..r {
                for (a, b) in fp.iter_mut().zip(input(rk)) {
                    *a += b;
                }
            }
            for rk in 1..r {
                assert_eq!(
                    q[rk].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    q[0].iter().map(|x| x.to_bits()).collect::<Vec<_>>(),
                    "rank {rk} of {r} diverged on the shared-scale int8 wire"
                );
            }
            // r quantization events, each ≤ scale/2 (no clamping: the
            // shared scale covers every partial sum).
            let bound = (r as f32 + 1.0) * shared / 2.0 * 1.00001;
            for j in 0..len {
                let err = (q[0][j] - fp[j]).abs();
                assert!(
                    err <= bound,
                    "R={r} elem {j}: err {err} exceeds shared-scale bound {bound}"
                );
            }
        }
    }

    #[test]
    fn int8_wire_quarters_bytes_with_honest_headers() {
        let r = 4;
        let run_counted = |wirep: WirePrecision| {
            let snaps = CommWorld::run(r, move |c| {
                let mut data = vec![c.rank() as f32; 64];
                allreduce_sum_wire(&c, &mut data, wirep);
                let send: Vec<Vec<f32>> = (0..r).map(|d| vec![d as f32; 16]).collect();
                let _ = alltoall_wire(&c, send, wirep);
                c.barrier();
                c.wire_stats().snapshot()
            });
            snaps[0]
        };
        let fp = run_counted(WirePrecision::Fp32);
        let i8h = run_counted(WirePrecision::Int8);
        let i8s = run_counted(WirePrecision::int8_shared(16.0 / 127.0));
        assert!(fp.allreduce_bytes() > 0 && fp.alltoall_bytes > 0);
        // Headered INT8: element bytes are exactly a quarter of FP32; the
        // self-describing scales add 4 on-wire bytes per message.
        assert_eq!(i8h.logical_bytes() * 4, fp.total_bytes());
        assert_eq!(i8h.header_bytes, 4 * i8h.messages, "one scale per message");
        assert_eq!(
            i8h.total_bytes(),
            fp.total_bytes() / 4 + i8h.header_bytes,
            "class counters must include the headers"
        );
        // Pre-agreed scale: no headers, exactly 4× fewer bytes than FP32.
        assert_eq!(i8s.header_bytes, 0);
        assert_eq!(i8s.allreduce_bytes() * 4, fp.allreduce_bytes());
        assert_eq!(i8s.alltoall_bytes * 4, fp.alltoall_bytes);
        assert_eq!(
            i8h.messages, fp.messages,
            "same message count, a quarter the bytes"
        );
    }

    #[test]
    fn scatter_then_gather_round_trips() {
        let out = CommWorld::run(4, |c| {
            let parts =
                (c.rank() == 0).then(|| (0..4).map(|d| vec![d as f32 * 3.0]).collect::<Vec<_>>());
            let mine = scatter(&c, 0, parts);
            gather(&c, 0, mine)
        });
        assert_eq!(
            out[0].as_ref().unwrap(),
            &vec![vec![0.0], vec![3.0], vec![6.0], vec![9.0]]
        );
    }
}
