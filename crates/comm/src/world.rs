//! Rank bootstrap and point-to-point messaging.
//!
//! A [`CommWorld`] creates `R` [`Communicator`] handles; each is moved onto
//! its own thread (the "rank"). Ranks exchange [`Message`]s over dedicated
//! unbounded channels per (src, dst) pair, so sends never block and
//! messages between a pair arrive in order — the same guarantees MPI gives
//! for matching (source, tag) envelopes.
//!
//! # Fault injection
//!
//! Worlds created through [`CommWorld::create_with_chaos`] thread a seeded
//! [`FaultPlan`] through every endpoint. Faults are injected at the
//! *transport* sub-layer: each message carries a per-(src, dst) sequence
//! number, the sender may hold it in an outbox (reordering it behind later
//! traffic), transmit it twice, or "drop" attempts and retry with counted
//! backoff — and the receiver repairs the stream (reorder buffer + duplicate
//! discard) before delivery, exactly like a reliable transport over a lossy
//! link. The *logical* per-pair FIFO contract above therefore still holds
//! under chaos, which is precisely the property the chaos test suites pin
//! down: collective results must be bitwise identical to a fault-free run.
//!
//! Delayed messages are flushed whenever the sender could block (a receive,
//! a barrier) and when the endpoint drops, so no fault schedule can
//! deadlock a world.

use crate::chaos::{ChaosStats, FaultPlan};
use crate::instrument::WireStats;
use crossbeam::channel::{unbounded, Receiver, Sender};
use std::collections::BTreeMap;
use std::sync::atomic::Ordering;
use std::sync::{Arc, Barrier};

/// A scaled-INT8 wire payload: one signed byte per element (two's
/// complement, shipped as raw `u8`) plus the FP32 scale(s) needed to
/// reconstruct values as `byte as i8 as f32 * scale`.
///
/// Scales come in groups: `scales[g]` covers elements
/// `[g * group_len, (g + 1) * group_len)` — the grouped form is what gives
/// the backward alltoall genuine *per-table* scales (each owner-bound
/// payload is a concatenation of equal-length per-table blocks). A single
/// whole-payload scale is simply `group_len == len`.
///
/// `headered` records whether the scales are self-describing (computed by
/// the sender from the data, so they must cross the wire — 4 bytes each)
/// or pre-agreed (`WirePrecision::Int8Shared`: every rank derived the same
/// scale from replicated statistics, so nothing extra crosses the wire).
/// The in-process transport carries the `scales` vec either way; the
/// distinction is honest *byte accounting* in [`Payload::wire_bytes`],
/// which is what the bench artifacts and `WireStats` report.
#[derive(Debug, Clone)]
pub struct Int8Payload {
    /// Quantized elements, one byte each.
    pub bytes: Vec<u8>,
    /// Per-group FP32 scales; `bytes.len().div_ceil(group_len)` entries
    /// (empty payloads carry no scales).
    pub scales: Vec<f32>,
    /// Elements covered by each scale (≥ 1).
    pub group_len: usize,
    /// True when the scales are data-derived and ship on the wire.
    pub headered: bool,
}

impl Int8Payload {
    /// On-wire bytes the scale headers contribute (0 for pre-agreed
    /// scales).
    pub fn header_bytes(&self) -> u64 {
        if self.headered {
            4 * self.scales.len() as u64
        } else {
            0
        }
    }
}

/// A collective payload in its wire representation.
///
/// The transport (sequencing, chaos, reorder repair) never inspects the
/// contents, so all variants travel identically; only producers and
/// consumers care which one a message carries. BF16 halfwords are shipped
/// as raw `u16` bit patterns (see `dlrm_precision::Bf16` for the format) —
/// half the bytes per element of [`Payload::F32`]; INT8 payloads carry one
/// byte per element plus their scale headers ([`Int8Payload`]).
#[derive(Debug, Clone)]
pub enum Payload {
    /// Full-width `f32` words.
    F32(Vec<f32>),
    /// BFLOAT16 halfwords as raw bit patterns.
    Bf16(Vec<u16>),
    /// Scaled INT8 bytes plus reconstruction scales.
    Int8(Int8Payload),
}

impl Payload {
    /// Number of elements.
    pub fn len(&self) -> usize {
        match self {
            Payload::F32(v) => v.len(),
            Payload::Bf16(v) => v.len(),
            Payload::Int8(p) => p.bytes.len(),
        }
    }

    /// True when the payload has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes this payload occupies on the wire, scale headers included.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Payload::F32(v) => 4 * v.len() as u64,
            Payload::Bf16(v) => 2 * v.len() as u64,
            Payload::Int8(p) => p.bytes.len() as u64 + p.header_bytes(),
        }
    }

    /// Bytes of on-wire metadata (INT8 scale headers) this payload carries
    /// on top of its element data.
    pub fn header_bytes(&self) -> u64 {
        match self {
            Payload::F32(_) | Payload::Bf16(_) => 0,
            Payload::Int8(p) => p.header_bytes(),
        }
    }

    /// Unwraps an FP32 payload; any other arrival here is a protocol bug
    /// (matching send/recv pairs must agree on the wire precision).
    pub fn into_f32(self) -> Vec<f32> {
        match self {
            Payload::F32(v) => v,
            other => panic!("expected an f32 payload, received {}", other.kind()),
        }
    }

    /// Unwraps a BF16 payload; any other arrival here is a protocol bug.
    pub fn into_bf16(self) -> Vec<u16> {
        match self {
            Payload::Bf16(v) => v,
            other => panic!("expected a bf16 payload, received {}", other.kind()),
        }
    }

    /// Unwraps an INT8 payload; any other arrival here is a protocol bug.
    pub fn into_int8(self) -> Int8Payload {
        match self {
            Payload::Int8(p) => p,
            other => panic!("expected an int8 payload, received {}", other.kind()),
        }
    }

    fn kind(&self) -> &'static str {
        match self {
            Payload::F32(_) => "f32",
            Payload::Bf16(_) => "bf16",
            Payload::Int8(_) => "int8",
        }
    }
}

/// A typed message: a [`Payload`] plus an integer tag.
#[derive(Debug, Clone)]
pub struct Message {
    /// Caller-chosen tag; receives assert on it to catch protocol bugs.
    pub tag: u64,
    /// Payload.
    pub data: Payload,
}

/// Transport-level frame: a message plus its per-(src, dst) sequence
/// number, which lets the receiver repair reordering and duplicates.
#[derive(Debug, Clone)]
struct Envelope {
    seq: u64,
    msg: Message,
}

/// Per-destination sender state.
#[derive(Default)]
struct SendState {
    /// Next sequence number to assign.
    next_seq: u64,
    /// Count of send operations to this peer (outbox release clock).
    send_ops: u64,
    /// Delayed envelopes: `(release_when_send_ops_reaches, envelope)`.
    outbox: Vec<(u64, Envelope)>,
}

/// Per-source receiver state.
#[derive(Default)]
struct RecvState {
    /// Sequence number the next delivery must carry.
    next_seq: u64,
    /// Ahead-of-sequence arrivals awaiting their turn.
    buffer: BTreeMap<u64, Message>,
}

/// Mutable endpoint state (sequence clocks, outboxes, reorder buffers).
struct EndpointState {
    send: Vec<SendState>,
    recv: Vec<RecvState>,
    /// Monotone operation counter driving stall decisions.
    ops: u64,
}

/// One rank's endpoint into the world.
pub struct Communicator {
    rank: usize,
    nranks: usize,
    /// `senders[dst]` — channel into rank `dst` from this rank.
    senders: Vec<Sender<Envelope>>,
    /// `receivers[src]` — channel from rank `src` into this rank.
    receivers: Vec<Receiver<Envelope>>,
    barrier: Arc<Barrier>,
    /// Fault oracle; `None` for fault-free worlds.
    plan: Option<Arc<FaultPlan>>,
    /// Fault counters shared by every endpoint of the world.
    stats: Arc<ChaosStats>,
    /// Wire byte counters — shared by every endpoint of the world, and
    /// optionally across worlds (see [`CommWorld::create_with_opts`]).
    wire: Arc<WireStats>,
    state: parking_lot::Mutex<EndpointState>,
}

/// Factory for a set of communicators sharing one world.
pub struct CommWorld;

impl CommWorld {
    /// Creates `nranks` fault-free communicators. Hand one to each rank
    /// thread.
    pub fn create(nranks: usize) -> Vec<Communicator> {
        Self::create_with_chaos(nranks, None)
    }

    /// Creates `nranks` communicators whose transport obeys `plan` (pass
    /// `None` for a fault-free world). All endpoints share one
    /// [`ChaosStats`], reachable via [`Communicator::chaos_stats`].
    pub fn create_with_chaos(nranks: usize, plan: Option<Arc<FaultPlan>>) -> Vec<Communicator> {
        Self::create_with_opts(nranks, plan, None)
    }

    /// [`CommWorld::create_with_chaos`] plus an externally-owned
    /// [`WireStats`] for the wire byte counters. Pass the same `Arc` to
    /// several worlds (e.g. a main world plus the per-channel worlds of a
    /// progress engine) to aggregate their traffic in one place; `None`
    /// gives the world a private fresh counter set.
    pub fn create_with_opts(
        nranks: usize,
        plan: Option<Arc<FaultPlan>>,
        wire: Option<Arc<WireStats>>,
    ) -> Vec<Communicator> {
        assert!(nranks >= 1, "world needs at least one rank");
        // channel[src][dst]
        let mut txs: Vec<Vec<Option<Sender<Envelope>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Envelope>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        for src in 0..nranks {
            for dst in 0..nranks {
                let (tx, rx) = unbounded();
                txs[src][dst] = Some(tx);
                rxs[dst][src] = Some(rx);
            }
        }
        let barrier = Arc::new(Barrier::new(nranks));
        let stats = Arc::new(ChaosStats::default());
        let wire = wire.unwrap_or_default();
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| Communicator {
                rank,
                nranks,
                senders: tx_row.into_iter().map(Option::unwrap).collect(),
                receivers: rx_row.into_iter().map(Option::unwrap).collect(),
                barrier: Arc::clone(&barrier),
                plan: plan.clone(),
                stats: Arc::clone(&stats),
                wire: Arc::clone(&wire),
                state: parking_lot::Mutex::new(EndpointState {
                    send: (0..nranks).map(|_| SendState::default()).collect(),
                    recv: (0..nranks).map(|_| RecvState::default()).collect(),
                    ops: 0,
                }),
            })
            .collect()
    }

    /// Convenience driver: spawns one thread per rank, runs `f(comm)` on
    /// each, and returns the per-rank results in rank order. Panics in any
    /// rank propagate.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        Self::run_with_chaos(nranks, None, f)
    }

    /// [`CommWorld::run`] over a chaotic world. Returns per-rank results in
    /// rank order; results must be bitwise identical to [`CommWorld::run`]
    /// for any plan (that invariant is what the chaos suites verify).
    pub fn run_with_chaos<T, F>(nranks: usize, plan: Option<Arc<FaultPlan>>, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        let comms = Self::create_with_chaos(nranks, plan);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    s.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

impl Communicator {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// The world's shared fault counters (all-zero for fault-free worlds).
    pub fn chaos_stats(&self) -> &ChaosStats {
        &self.stats
    }

    /// Owning handle to the world's fault counters, for callers that need
    /// the stats to outlive this endpoint.
    pub fn chaos_stats_arc(&self) -> &Arc<ChaosStats> {
        &self.stats
    }

    /// The wire byte counters this endpoint records into.
    pub fn wire_stats(&self) -> &WireStats {
        &self.wire
    }

    /// Owning handle to the wire byte counters.
    pub fn wire_stats_arc(&self) -> &Arc<WireStats> {
        &self.wire
    }

    /// Burns a counted number of yields if the plan stalls this operation
    /// boundary. Pure scheduling perturbation; never affects results.
    fn maybe_stall(&self, st: &mut EndpointState) {
        if let Some(plan) = &self.plan {
            let idx = st.ops;
            st.ops += 1;
            let yields = plan.stall_yields(self.rank, idx);
            if yields > 0 {
                self.stats.stalls.fetch_add(1, Ordering::Relaxed);
                for _ in 0..yields {
                    std::thread::yield_now();
                }
            }
        }
    }

    /// Puts an envelope on the wire. In a fault-free world a gone peer is a
    /// caller bug, so we panic. Under chaos it is a legitimate teardown
    /// race: a peer whose endpoint is closed has already dropped its
    /// `Communicator`, which only happens after it completed every receive
    /// it will ever do — typically because a duplicate or flushed copy
    /// satisfied it before this (delayed or straggling) transmission fired.
    fn transmit(&self, dst: usize, env: Envelope) {
        let result = self.senders[dst].send(env);
        if self.plan.is_none() {
            result.expect("send to dead rank");
        }
    }

    /// Releases every outbox entry due at the peer's current send clock.
    fn release_due(&self, st: &mut EndpointState, dst: usize) {
        let now = st.send[dst].send_ops;
        let mut i = 0;
        while i < st.send[dst].outbox.len() {
            if st.send[dst].outbox[i].0 <= now {
                let (_, env) = st.send[dst].outbox.remove(i);
                self.transmit(dst, env);
            } else {
                i += 1;
            }
        }
    }

    /// Releases *all* delayed traffic. Called before any operation that can
    /// block (receive, barrier), after every delivered receive, and on
    /// drop, so delays cannot deadlock a world. Flush sends are lossy on
    /// purpose: a peer whose endpoint is already gone has completed
    /// everything it was doing and cannot be waiting on held traffic
    /// (duplicate-shadowed originals routinely outlive their receiver).
    fn flush_outboxes(&self, st: &mut EndpointState) {
        for dst in 0..self.nranks {
            for (_, env) in std::mem::take(&mut st.send[dst].outbox) {
                let _ = self.senders[dst].send(env);
            }
        }
    }

    /// Sends `data` to `dst` with `tag`. Never blocks (buffered channel);
    /// under chaos the message may be delayed, duplicated, or dropped and
    /// retried, but it is always eventually delivered exactly once.
    pub fn send(&self, dst: usize, tag: u64, data: Vec<f32>) {
        self.send_payload(dst, tag, Payload::F32(data));
    }

    /// [`Communicator::send`] for an arbitrary wire representation. The
    /// transport (sequencing, chaos, repair) is payload-agnostic; the
    /// matching receive must expect the same representation.
    pub fn send_payload(&self, dst: usize, tag: u64, data: Payload) {
        self.wire
            .record(tag, data.wire_bytes(), data.header_bytes());
        let mut st = self.state.lock();
        self.maybe_stall(&mut st);
        let seq = st.send[dst].next_seq;
        st.send[dst].next_seq += 1;
        let env = Envelope {
            seq,
            msg: Message { tag, data },
        };
        let Some(plan) = self.plan.clone() else {
            st.send[dst].send_ops += 1;
            self.transmit(dst, env);
            return;
        };

        // Drop + bounded retry: each "lost" attempt costs a counted
        // exponential backoff; the attempt after max_retries always goes
        // through (reliable-transport model — delayed, never lost).
        let mut attempt = 0u32;
        while plan.drop_attempt(self.rank, dst, seq, attempt) {
            self.stats.dropped.fetch_add(1, Ordering::Relaxed);
            for _ in 0..plan.backoff_yields(attempt) {
                std::thread::yield_now();
            }
            attempt += 1;
        }

        // A duplicate goes on the wire immediately — even when the original
        // is about to be delayed, which lets the copy overtake it.
        if plan.duplicate(self.rank, dst, seq) {
            self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
            self.transmit(dst, env.clone());
        }

        st.send[dst].send_ops += 1;
        let depth = plan.delay_depth(self.rank, dst, seq);
        if depth > 0 {
            self.stats.delayed.fetch_add(1, Ordering::Relaxed);
            let due = st.send[dst].send_ops + depth as u64;
            st.send[dst].outbox.push((due, env));
        } else {
            self.transmit(dst, env);
        }
        self.release_due(&mut st, dst);
    }

    /// Receives the next in-sequence message from `src`, asserting the
    /// expected `tag`. Blocks until it arrives; under chaos, repairs
    /// reordering (buffering ahead-of-sequence arrivals) and discards
    /// duplicates, so delivery order always equals send order.
    ///
    /// Deadlock-freedom invariant: delayed traffic is flushed both before
    /// this rank can block on the wire *and* before this call returns, so a
    /// rank that leaves the comm layer after a receive (e.g. a progress
    /// worker going idle) never holds messages a peer is waiting for.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f32> {
        self.recv_payload(src, tag).into_f32()
    }

    /// [`Communicator::recv`] for an arbitrary wire representation.
    pub fn recv_payload(&self, src: usize, tag: u64) -> Payload {
        let mut st = self.state.lock();
        self.maybe_stall(&mut st);
        let msg = loop {
            let expected = st.recv[src].next_seq;
            if let Some(msg) = st.recv[src].buffer.remove(&expected) {
                st.recv[src].next_seq += 1;
                break msg;
            }
            // About to block on the wire: release our own delayed traffic
            // first so no fault schedule can deadlock the world.
            self.flush_outboxes(&mut st);
            let env = self.receivers[src].recv().expect("recv from dead rank");
            if env.seq < expected || st.recv[src].buffer.contains_key(&env.seq) {
                self.stats.dups_discarded.fetch_add(1, Ordering::Relaxed);
                continue;
            }
            if env.seq == expected {
                st.recv[src].next_seq += 1;
                break env.msg;
            }
            self.stats.reordered.fetch_add(1, Ordering::Relaxed);
            st.recv[src].buffer.insert(env.seq, env.msg);
        };
        self.flush_outboxes(&mut st);
        self.check_tag(src, tag, msg)
    }

    /// Releases all delayed traffic immediately. Callers that hand control
    /// away from the comm layer after send-terminated operations (a rooted
    /// scatter, a broadcast) and then wait on something else — e.g. a
    /// nonblocking [`crate::nonblocking::Request`] — should flush first so
    /// peers never wait on held messages.
    pub fn flush_delayed(&self) {
        let mut st = self.state.lock();
        self.flush_outboxes(&mut st);
    }

    fn check_tag(&self, src: usize, tag: u64, msg: Message) -> Payload {
        assert_eq!(
            msg.tag, tag,
            "rank {} expected tag {tag} from {src}, got {}",
            self.rank, msg.tag
        );
        msg.data
    }

    /// Simultaneous exchange with a partner (both sides call this).
    pub fn sendrecv(&self, partner: usize, tag: u64, data: Vec<f32>) -> Vec<f32> {
        if partner == self.rank {
            return data;
        }
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Blocks until every rank reaches the barrier.
    pub fn barrier(&self) {
        {
            let mut st = self.state.lock();
            self.maybe_stall(&mut st);
            // Peers may legitimately wait for our delayed traffic before
            // they can reach the barrier themselves.
            self.flush_outboxes(&mut st);
        }
        self.barrier.wait();
    }
}

impl Drop for Communicator {
    fn drop(&mut self) {
        let mut st = self.state.lock();
        self.flush_outboxes(&mut st);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::chaos::ChaosConfig;

    #[test]
    fn ranks_are_numbered() {
        let ranks = CommWorld::run(4, |c| (c.rank(), c.nranks()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = CommWorld::run(5, |c| {
            let next = (c.rank() + 1) % c.nranks();
            let prev = (c.rank() + c.nranks() - 1) % c.nranks();
            c.send(next, 1, vec![c.rank() as f32]);
            c.recv(prev, 1)[0]
        });
        assert_eq!(out, vec![4.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn messages_between_pair_arrive_in_order() {
        let out = CommWorld::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    c.send(1, i, vec![i as f32]);
                }
                vec![]
            } else {
                (0..100).map(|i| c.recv(0, i)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..100).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn sendrecv_swaps_payloads() {
        let out = CommWorld::run(2, |c| {
            c.sendrecv(1 - c.rank(), 9, vec![c.rank() as f32 + 10.0])[0]
        });
        assert_eq!(out, vec![11.0, 10.0]);
    }

    #[test]
    fn sendrecv_with_self_is_identity() {
        let out = CommWorld::run(1, |c| c.sendrecv(0, 0, vec![7.0])[0]);
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        CommWorld::run(4, |c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(before.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn tag_mismatch_is_detected() {
        CommWorld::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0]);
            } else {
                c.recv(0, 6);
            }
        });
    }

    #[test]
    fn chaotic_p2p_stream_is_repaired_in_order() {
        let plan = ChaosConfig::aggressive(0xC0FFEE).plan();
        let out = CommWorld::run_with_chaos(2, Some(plan), |c| {
            if c.rank() == 0 {
                for i in 0..200 {
                    c.send(1, i, vec![i as f32]);
                }
                vec![]
            } else {
                (0..200).map(|i| c.recv(0, i)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..200).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn chaotic_world_reports_injected_faults() {
        let plan = ChaosConfig::aggressive(7).plan();
        let snaps = CommWorld::run_with_chaos(2, Some(plan), |c| {
            let peer = 1 - c.rank();
            for i in 0..100 {
                let got = c.sendrecv(peer, i, vec![c.rank() as f32 + i as f32]);
                assert_eq!(got, vec![peer as f32 + i as f32]);
            }
            c.barrier();
            c.chaos_stats().snapshot()
        });
        // Stats are shared; after the barrier both ranks see the totals.
        assert!(
            snaps[0].total_injected() > 0,
            "no faults fired: {:?}",
            snaps[0]
        );
    }

    #[test]
    fn fault_free_world_keeps_zero_stats() {
        let snaps = CommWorld::run(2, |c| {
            let _ = c.sendrecv(1 - c.rank(), 0, vec![1.0]);
            c.chaos_stats().snapshot()
        });
        assert_eq!(snaps[0].total_injected(), 0);
        assert_eq!(snaps[0].reordered, 0);
    }
}
