//! Rank bootstrap and point-to-point messaging.
//!
//! A [`CommWorld`] creates `R` [`Communicator`] handles; each is moved onto
//! its own thread (the "rank"). Ranks exchange [`Message`]s over dedicated
//! unbounded channels per (src, dst) pair, so sends never block and
//! messages between a pair arrive in order — the same guarantees MPI gives
//! for matching (source, tag) envelopes.

use crossbeam::channel::{unbounded, Receiver, Sender};
use std::sync::{Arc, Barrier};

/// A typed message: payload of `f32`s plus an integer tag.
#[derive(Debug, Clone)]
pub struct Message {
    /// Caller-chosen tag; receives assert on it to catch protocol bugs.
    pub tag: u64,
    /// Payload.
    pub data: Vec<f32>,
}

/// One rank's endpoint into the world.
pub struct Communicator {
    rank: usize,
    nranks: usize,
    /// `senders[dst]` — channel into rank `dst` from this rank.
    senders: Vec<Sender<Message>>,
    /// `receivers[src]` — channel from rank `src` into this rank.
    receivers: Vec<Receiver<Message>>,
    barrier: Arc<Barrier>,
}

/// Factory for a set of communicators sharing one world.
pub struct CommWorld;

impl CommWorld {
    /// Creates `nranks` communicators. Hand one to each rank thread.
    pub fn create(nranks: usize) -> Vec<Communicator> {
        assert!(nranks >= 1, "world needs at least one rank");
        // channel[src][dst]
        let mut txs: Vec<Vec<Option<Sender<Message>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        let mut rxs: Vec<Vec<Option<Receiver<Message>>>> = (0..nranks)
            .map(|_| (0..nranks).map(|_| None).collect())
            .collect();
        for src in 0..nranks {
            for dst in 0..nranks {
                let (tx, rx) = unbounded();
                txs[src][dst] = Some(tx);
                rxs[dst][src] = Some(rx);
            }
        }
        let barrier = Arc::new(Barrier::new(nranks));
        txs.into_iter()
            .zip(rxs)
            .enumerate()
            .map(|(rank, (tx_row, rx_row))| Communicator {
                rank,
                nranks,
                senders: tx_row.into_iter().map(Option::unwrap).collect(),
                receivers: rx_row.into_iter().map(Option::unwrap).collect(),
                barrier: Arc::clone(&barrier),
            })
            .collect()
    }

    /// Convenience driver: spawns one thread per rank, runs `f(comm)` on
    /// each, and returns the per-rank results in rank order. Panics in any
    /// rank propagate.
    pub fn run<T, F>(nranks: usize, f: F) -> Vec<T>
    where
        T: Send,
        F: Fn(Communicator) -> T + Send + Sync,
    {
        let comms = Self::create(nranks);
        std::thread::scope(|s| {
            let handles: Vec<_> = comms
                .into_iter()
                .map(|comm| {
                    let f = &f;
                    s.spawn(move || f(comm))
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("rank thread panicked"))
                .collect()
        })
    }
}

impl Communicator {
    /// This rank's id.
    #[inline]
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// World size.
    #[inline]
    pub fn nranks(&self) -> usize {
        self.nranks
    }

    /// Sends `data` to `dst` with `tag`. Never blocks (buffered channel).
    pub fn send(&self, dst: usize, tag: u64, data: Vec<f32>) {
        self.senders[dst]
            .send(Message { tag, data })
            .expect("send to dead rank");
    }

    /// Receives the next message from `src`, asserting the expected `tag`.
    /// Blocks until a message arrives.
    pub fn recv(&self, src: usize, tag: u64) -> Vec<f32> {
        let msg = self.receivers[src].recv().expect("recv from dead rank");
        assert_eq!(
            msg.tag, tag,
            "rank {} expected tag {tag} from {src}, got {}",
            self.rank, msg.tag
        );
        msg.data
    }

    /// Simultaneous exchange with a partner (both sides call this).
    pub fn sendrecv(&self, partner: usize, tag: u64, data: Vec<f32>) -> Vec<f32> {
        if partner == self.rank {
            return data;
        }
        self.send(partner, tag, data);
        self.recv(partner, tag)
    }

    /// Blocks until every rank reaches the barrier.
    pub fn barrier(&self) {
        self.barrier.wait();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ranks_are_numbered() {
        let ranks = CommWorld::run(4, |c| (c.rank(), c.nranks()));
        assert_eq!(ranks, vec![(0, 4), (1, 4), (2, 4), (3, 4)]);
    }

    #[test]
    fn point_to_point_ring() {
        let out = CommWorld::run(5, |c| {
            let next = (c.rank() + 1) % c.nranks();
            let prev = (c.rank() + c.nranks() - 1) % c.nranks();
            c.send(next, 1, vec![c.rank() as f32]);
            c.recv(prev, 1)[0]
        });
        assert_eq!(out, vec![4.0, 0.0, 1.0, 2.0, 3.0]);
    }

    #[test]
    fn messages_between_pair_arrive_in_order() {
        let out = CommWorld::run(2, |c| {
            if c.rank() == 0 {
                for i in 0..100 {
                    c.send(1, i, vec![i as f32]);
                }
                vec![]
            } else {
                (0..100).map(|i| c.recv(0, i)[0]).collect()
            }
        });
        assert_eq!(out[1], (0..100).map(|i| i as f32).collect::<Vec<_>>());
    }

    #[test]
    fn sendrecv_swaps_payloads() {
        let out = CommWorld::run(2, |c| {
            c.sendrecv(1 - c.rank(), 9, vec![c.rank() as f32 + 10.0])[0]
        });
        assert_eq!(out, vec![11.0, 10.0]);
    }

    #[test]
    fn sendrecv_with_self_is_identity() {
        let out = CommWorld::run(1, |c| c.sendrecv(0, 0, vec![7.0])[0]);
        assert_eq!(out, vec![7.0]);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let before = AtomicUsize::new(0);
        CommWorld::run(4, |c| {
            before.fetch_add(1, Ordering::SeqCst);
            c.barrier();
            // After the barrier every rank must observe all increments.
            assert_eq!(before.load(Ordering::SeqCst), 4);
        });
    }

    #[test]
    #[should_panic(expected = "rank thread panicked")]
    fn tag_mismatch_is_detected() {
        CommWorld::run(2, |c| {
            if c.rank() == 0 {
                c.send(1, 5, vec![1.0]);
            } else {
                c.recv(0, 6);
            }
        });
    }
}
