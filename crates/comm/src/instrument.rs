//! Per-primitive wall-clock accounting.
//!
//! The paper instruments PyTorch's DDP and communication backends to split
//! time into "framework" (pre/post-processing: flat-buffer copies, gradient
//! averaging, enqueueing) and "wait" (blocking on the primitive) per
//! primitive kind — the stacked bars of Figures 11 and 14. This recorder is
//! the equivalent hook for our harnesses.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::time::{Duration, Instant};

/// The time buckets of Figures 10–14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Pure compute (GEMMs, embeddings, interaction, loss).
    Compute,
    /// Alltoall pre/post-processing in the framework.
    AlltoallFramework,
    /// Blocking on alltoall completion.
    AlltoallWait,
    /// Allreduce pre/post-processing in the framework.
    AllreduceFramework,
    /// Blocking on allreduce completion.
    AllreduceWait,
    /// Data-loader time (the weak-scaling artifact of Figure 13).
    DataLoader,
}

impl OpKind {
    /// All kinds, in report order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Compute,
        OpKind::AlltoallFramework,
        OpKind::AlltoallWait,
        OpKind::AllreduceFramework,
        OpKind::AllreduceWait,
        OpKind::DataLoader,
    ];
}

impl OpKind {
    /// Stable machine-readable key (snake_case, for JSON reports).
    pub fn json_key(self) -> &'static str {
        match self {
            OpKind::Compute => "compute_s",
            OpKind::AlltoallFramework => "alltoall_framework_s",
            OpKind::AlltoallWait => "alltoall_wait_s",
            OpKind::AllreduceFramework => "allreduce_framework_s",
            OpKind::AllreduceWait => "allreduce_wait_s",
            OpKind::DataLoader => "data_loader_s",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::Compute => "Compute",
            OpKind::AlltoallFramework => "Alltoall-Framework",
            OpKind::AlltoallWait => "Alltoall-Wait",
            OpKind::AllreduceFramework => "Allreduce-Framework",
            OpKind::AllreduceWait => "Allreduce-Wait",
            OpKind::DataLoader => "DataLoader",
        };
        f.write_str(s)
    }
}

/// Times `f` against `rec` when a recorder is attached; otherwise runs `f`
/// with zero instrumentation overhead. The hook every measured hot path
/// threads its optional recorder through.
#[inline]
pub fn time_opt<T>(rec: Option<&TimingRecorder>, kind: OpKind, f: impl FnOnce() -> T) -> T {
    match rec {
        Some(r) => r.time(kind, f),
        None => f(),
    }
}

/// Thread-safe accumulator of durations per [`OpKind`].
#[derive(Default)]
pub struct TimingRecorder {
    totals: Mutex<HashMap<OpKind, Duration>>,
}

impl TimingRecorder {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the bucket for `kind`.
    pub fn record(&self, kind: OpKind, d: Duration) {
        *self.totals.lock().entry(kind).or_default() += d;
    }

    /// Times `f` and charges it to `kind`.
    pub fn time<T>(&self, kind: OpKind, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(kind, t0.elapsed());
        out
    }

    /// Accumulated time for one bucket.
    pub fn total(&self, kind: OpKind) -> Duration {
        self.totals.lock().get(&kind).copied().unwrap_or_default()
    }

    /// Snapshot of all buckets.
    pub fn snapshot(&self) -> HashMap<OpKind, Duration> {
        self.totals.lock().clone()
    }

    /// Clears all buckets.
    pub fn reset(&self) {
        self.totals.lock().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let r = TimingRecorder::new();
        r.record(OpKind::Compute, Duration::from_millis(5));
        r.record(OpKind::Compute, Duration::from_millis(7));
        assert_eq!(r.total(OpKind::Compute), Duration::from_millis(12));
        assert_eq!(r.total(OpKind::AlltoallWait), Duration::ZERO);
    }

    #[test]
    fn time_charges_elapsed() {
        let r = TimingRecorder::new();
        let v = r.time(OpKind::DataLoader, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(r.total(OpKind::DataLoader) >= Duration::from_millis(2));
    }

    #[test]
    fn reset_clears() {
        let r = TimingRecorder::new();
        r.record(OpKind::AllreduceWait, Duration::from_millis(1));
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let r = TimingRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        r.record(OpKind::Compute, Duration::from_micros(1));
                    }
                });
            }
        });
        assert_eq!(r.total(OpKind::Compute), Duration::from_micros(400));
    }
}
