//! Per-primitive wall-clock accounting.
//!
//! The paper instruments PyTorch's DDP and communication backends to split
//! time into "framework" (pre/post-processing: flat-buffer copies, gradient
//! averaging, enqueueing) and "wait" (blocking on the primitive) per
//! primitive kind — the stacked bars of Figures 11 and 14. This recorder is
//! the equivalent hook for our harnesses.

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// The time buckets of Figures 10–14.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum OpKind {
    /// Pure compute (GEMMs, embeddings, interaction, loss).
    Compute,
    /// Alltoall pre/post-processing in the framework.
    AlltoallFramework,
    /// Blocking on alltoall completion.
    AlltoallWait,
    /// Allreduce pre/post-processing in the framework.
    AllreduceFramework,
    /// Blocking on allreduce completion.
    AllreduceWait,
    /// Data-loader time (the weak-scaling artifact of Figure 13).
    DataLoader,
}

impl OpKind {
    /// All kinds, in report order.
    pub const ALL: [OpKind; 6] = [
        OpKind::Compute,
        OpKind::AlltoallFramework,
        OpKind::AlltoallWait,
        OpKind::AllreduceFramework,
        OpKind::AllreduceWait,
        OpKind::DataLoader,
    ];
}

impl OpKind {
    /// Stable machine-readable key (snake_case, for JSON reports).
    pub fn json_key(self) -> &'static str {
        match self {
            OpKind::Compute => "compute_s",
            OpKind::AlltoallFramework => "alltoall_framework_s",
            OpKind::AlltoallWait => "alltoall_wait_s",
            OpKind::AllreduceFramework => "allreduce_framework_s",
            OpKind::AllreduceWait => "allreduce_wait_s",
            OpKind::DataLoader => "data_loader_s",
        }
    }
}

impl std::fmt::Display for OpKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpKind::Compute => "Compute",
            OpKind::AlltoallFramework => "Alltoall-Framework",
            OpKind::AlltoallWait => "Alltoall-Wait",
            OpKind::AllreduceFramework => "Allreduce-Framework",
            OpKind::AllreduceWait => "Allreduce-Wait",
            OpKind::DataLoader => "DataLoader",
        };
        f.write_str(s)
    }
}

/// Times `f` against `rec` when a recorder is attached; otherwise runs `f`
/// with zero instrumentation overhead. The hook every measured hot path
/// threads its optional recorder through.
#[inline]
pub fn time_opt<T>(rec: Option<&TimingRecorder>, kind: OpKind, f: impl FnOnce() -> T) -> T {
    match rec {
        Some(r) => r.time(kind, f),
        None => f(),
    }
}

/// Thread-safe accumulator of durations per [`OpKind`].
#[derive(Default)]
pub struct TimingRecorder {
    totals: Mutex<HashMap<OpKind, Duration>>,
}

impl TimingRecorder {
    /// Fresh, empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds `d` to the bucket for `kind`.
    pub fn record(&self, kind: OpKind, d: Duration) {
        *self.totals.lock().entry(kind).or_default() += d;
    }

    /// Times `f` and charges it to `kind`.
    pub fn time<T>(&self, kind: OpKind, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.record(kind, t0.elapsed());
        out
    }

    /// Accumulated time for one bucket.
    pub fn total(&self, kind: OpKind) -> Duration {
        self.totals.lock().get(&kind).copied().unwrap_or_default()
    }

    /// Snapshot of all buckets.
    pub fn snapshot(&self) -> HashMap<OpKind, Duration> {
        self.totals.lock().clone()
    }

    /// Clears all buckets.
    pub fn reset(&self) {
        self.totals.lock().clear();
    }
}

/// Bytes put on the wire, bucketed by collective class.
///
/// Every [`Communicator::send_payload`](crate::world::Communicator::send_payload)
/// records its payload size here once, keyed by the collective tag base
/// (`tag >> 24` — see the constants in [`crate::collectives`]). The
/// accounting ignores chaos-injected duplicates and retries: it measures
/// the traffic the *algorithm* generates, which is what the wire-precision
/// comparison (BF16 halves, INT8 quarters alltoall + allreduce bytes) is
/// about.
///
/// Per-class counters are **on-wire** bytes: element data *plus* any
/// metadata the payload ships, i.e. INT8 scale headers (4 bytes per scale)
/// are included. The header total is also tracked separately, so
/// [`WireSnapshot::logical_bytes`] can report pure element traffic — the
/// two views keep compression ratios honest (headers are real wire cost)
/// without hiding how much of the wire is metadata.
///
/// Worlds built via [`CommWorld::create_with_opts`](crate::world::CommWorld::create_with_opts)
/// can share one `WireStats` across several worlds (e.g. the per-channel
/// worlds of a progress engine), so a harness reads one aggregate total.
#[derive(Default)]
pub struct WireStats {
    messages: AtomicU64,
    reduce_scatter: AtomicU64,
    allgather: AtomicU64,
    alltoall: AtomicU64,
    broadcast: AtomicU64,
    scatter: AtomicU64,
    gather: AtomicU64,
    prefetch: AtomicU64,
    other: AtomicU64,
    /// On-wire metadata (INT8 scale headers) across all classes; always
    /// ≤ the matching per-class totals, which already include it.
    headers: AtomicU64,
}

/// Point-in-time copy of a [`WireStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WireSnapshot {
    /// Messages sent.
    pub messages: u64,
    /// Bytes sent by reduce-scatter steps.
    pub reduce_scatter_bytes: u64,
    /// Bytes sent by allgather steps.
    pub allgather_bytes: u64,
    /// Bytes sent by alltoall rounds.
    pub alltoall_bytes: u64,
    /// Bytes sent by broadcasts.
    pub broadcast_bytes: u64,
    /// Bytes sent by rooted scatters.
    pub scatter_bytes: u64,
    /// Bytes sent by rooted gathers.
    pub gather_bytes: u64,
    /// Bytes sent by prefetch row-fetch exchanges (the dist trainer's
    /// lookahead pipeline; tag base `TAG_PREFETCH`).
    pub prefetch_bytes: u64,
    /// Bytes sent under any other tag (raw point-to-point traffic).
    pub other_bytes: u64,
    /// On-wire metadata bytes (INT8 scale headers) across all classes.
    /// Already *included* in the per-class counters above — subtract to
    /// get pure element traffic ([`WireSnapshot::logical_bytes`]).
    pub header_bytes: u64,
}

impl WireSnapshot {
    /// Allreduce wire traffic: its reduce-scatter plus allgather phases.
    pub fn allreduce_bytes(&self) -> u64 {
        self.reduce_scatter_bytes + self.allgather_bytes
    }

    /// All on-wire bytes across every class, headers included.
    pub fn total_bytes(&self) -> u64 {
        self.reduce_scatter_bytes
            + self.allgather_bytes
            + self.alltoall_bytes
            + self.broadcast_bytes
            + self.scatter_bytes
            + self.gather_bytes
            + self.prefetch_bytes
            + self.other_bytes
    }

    /// Element-data bytes only: [`WireSnapshot::total_bytes`] with the
    /// scale-header metadata backed out.
    pub fn logical_bytes(&self) -> u64 {
        self.total_bytes() - self.header_bytes
    }
}

impl WireStats {
    /// Fresh, all-zero counters.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sent message under `tag`: `on_wire_bytes` is the full
    /// wire cost (element data plus scale headers), `header_bytes` the
    /// metadata portion of it (0 for FP32/BF16 payloads).
    pub fn record(&self, tag: u64, on_wire_bytes: u64, header_bytes: u64) {
        debug_assert!(header_bytes <= on_wire_bytes);
        self.messages.fetch_add(1, Ordering::Relaxed);
        let bucket = match tag >> 24 {
            0x01 => &self.reduce_scatter,
            0x02 => &self.allgather,
            0x03 => &self.alltoall,
            0x04 => &self.broadcast,
            0x05 => &self.scatter,
            0x06 => &self.gather,
            0x07 => &self.prefetch,
            _ => &self.other,
        };
        bucket.fetch_add(on_wire_bytes, Ordering::Relaxed);
        if header_bytes > 0 {
            self.headers.fetch_add(header_bytes, Ordering::Relaxed);
        }
    }

    /// Point-in-time copy of all counters.
    pub fn snapshot(&self) -> WireSnapshot {
        WireSnapshot {
            messages: self.messages.load(Ordering::Relaxed),
            reduce_scatter_bytes: self.reduce_scatter.load(Ordering::Relaxed),
            allgather_bytes: self.allgather.load(Ordering::Relaxed),
            alltoall_bytes: self.alltoall.load(Ordering::Relaxed),
            broadcast_bytes: self.broadcast.load(Ordering::Relaxed),
            scatter_bytes: self.scatter.load(Ordering::Relaxed),
            gather_bytes: self.gather.load(Ordering::Relaxed),
            prefetch_bytes: self.prefetch.load(Ordering::Relaxed),
            other_bytes: self.other.load(Ordering::Relaxed),
            header_bytes: self.headers.load(Ordering::Relaxed),
        }
    }

    /// Zeroes every counter.
    pub fn reset(&self) {
        for c in [
            &self.messages,
            &self.reduce_scatter,
            &self.allgather,
            &self.alltoall,
            &self.broadcast,
            &self.scatter,
            &self.gather,
            &self.prefetch,
            &self.other,
            &self.headers,
        ] {
            c.store(0, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_stats_bucket_by_tag_class() {
        let w = WireStats::new();
        w.record(0x0100_0000 + 3, 40, 0); // reduce-scatter step
        w.record(0x0200_0001, 40, 0); // allgather step
        w.record(0x0300_0002, 64, 0); // alltoall round
        w.record(0x0400_0000, 8, 0); // broadcast
        w.record(0x0700_0001, 24, 0); // prefetch row fetch
        w.record(7, 100, 0); // untagged p2p
        let s = w.snapshot();
        assert_eq!(s.messages, 6);
        assert_eq!(s.allreduce_bytes(), 80);
        assert_eq!(s.alltoall_bytes, 64);
        assert_eq!(s.broadcast_bytes, 8);
        assert_eq!(s.prefetch_bytes, 24);
        assert_eq!(s.other_bytes, 100);
        assert_eq!(s.total_bytes(), 276);
        assert_eq!(s.logical_bytes(), 276);
        w.reset();
        assert_eq!(w.snapshot(), WireSnapshot::default());
    }

    #[test]
    fn wire_stats_count_scale_headers_as_wire_bytes() {
        // An INT8 reduce-scatter message: 100 element bytes + two 4-byte
        // scale headers = 108 on-wire bytes, 8 of them metadata. The class
        // counter must include the headers (they cross the wire), and the
        // logical view must back them out.
        let w = WireStats::new();
        w.record(0x0100_0000, 108, 8);
        // A headerless (pre-agreed scale) INT8 allgather message.
        w.record(0x0200_0000, 100, 0);
        let s = w.snapshot();
        assert_eq!(s.reduce_scatter_bytes, 108, "headers are on-wire bytes");
        assert_eq!(s.allreduce_bytes(), 208);
        assert_eq!(s.header_bytes, 8);
        assert_eq!(s.total_bytes(), 208);
        assert_eq!(s.logical_bytes(), 200, "logical view excludes headers");
        w.reset();
        assert_eq!(w.snapshot().header_bytes, 0);
    }

    #[test]
    fn records_accumulate() {
        let r = TimingRecorder::new();
        r.record(OpKind::Compute, Duration::from_millis(5));
        r.record(OpKind::Compute, Duration::from_millis(7));
        assert_eq!(r.total(OpKind::Compute), Duration::from_millis(12));
        assert_eq!(r.total(OpKind::AlltoallWait), Duration::ZERO);
    }

    #[test]
    fn time_charges_elapsed() {
        let r = TimingRecorder::new();
        let v = r.time(OpKind::DataLoader, || {
            std::thread::sleep(Duration::from_millis(2));
            42
        });
        assert_eq!(v, 42);
        assert!(r.total(OpKind::DataLoader) >= Duration::from_millis(2));
    }

    #[test]
    fn reset_clears() {
        let r = TimingRecorder::new();
        r.record(OpKind::AllreduceWait, Duration::from_millis(1));
        r.reset();
        assert!(r.snapshot().is_empty());
    }

    #[test]
    fn concurrent_recording_is_safe() {
        let r = TimingRecorder::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..100 {
                        r.record(OpKind::Compute, Duration::from_micros(1));
                    }
                });
            }
        });
        assert_eq!(r.total(OpKind::Compute), Duration::from_micros(400));
    }
}
