//! # dlrm-comm — message-passing substrate (MPI/oneCCL stand-in)
//!
//! The paper's distributed DLRM runs one MPI rank per socket and exchanges
//! data through MPI or Intel oneCCL. Neither library has a mature Rust
//! ecosystem, so this crate implements the required subset from scratch over
//! shared memory with *threads as ranks*:
//!
//! * [`world`] — rank bootstrap, point-to-point typed channels, barrier.
//! * [`collectives`] — blocking collectives built on point-to-point
//!   messages: ring allreduce (materialized as reduce-scatter + allgather,
//!   exactly as the paper does), ring reduce-scatter / allgather, pairwise
//!   alltoall(v), binomial-tree broadcast, scatter and gather.
//! * [`nonblocking`] — progress-thread engines that replicate the two
//!   communication backends the paper compares:
//!   [`nonblocking::Backend::MpiLike`] drives everything through **one**
//!   progress channel (so an alltoall enqueued after an allreduce cannot
//!   start until the allreduce finishes — the in-order-completion artifact
//!   of Figures 10–11), while [`nonblocking::Backend::CclLike`] offers
//!   multiple independent channels like oneCCL's worker threads.
//! * [`instrument`] — per-primitive wall-clock accounting used by the
//!   experiment harnesses to split "framework" from "wait" time, plus
//!   [`instrument::WireStats`] byte counters every send records into.
//! * [`wire`] — the [`wire::WirePrecision`] knob: the hot collectives come
//!   in `_wire` variants that ship BF16 halfwords (RNE narrowing, exact
//!   widening, FP32 local accumulation), halving alltoall and allreduce
//!   bytes exactly as the paper's 16-bit path does — or scaled INT8 bytes
//!   (self-describing per-chunk scale headers, or a pre-agreed
//!   [`wire::WirePrecision::Int8Shared`] scale with no header at all),
//!   quartering them.
//! * [`chaos`] — seeded fault injection (message delay/reorder/duplicate,
//!   drop + bounded retry, rank stalls, progress-worker kill-restart)
//!   threaded through [`world`] and [`nonblocking`], plus the
//!   straggler/late-message knobs `dlrm-clustersim` shares. Every fault
//!   decision is a pure hash of the seed and logical coordinates, so any
//!   failing schedule replays from a single `u64`.
//!
//! Everything is deterministic given deterministic callers: messages
//! between a (src, dst) pair arrive in send order, and all collectives use
//! fixed algorithms and schedules. The chaos layer preserves exactly that
//! contract — faults perturb the physical transport and are repaired before
//! delivery — which is what the `chaos` test suites verify bitwise.

pub mod chaos;
pub mod collectives;
pub mod instrument;
pub mod nonblocking;
pub mod wire;
pub mod world;

pub use chaos::{ChaosConfig, ChaosSnapshot, ChaosStats, FaultPlan};
pub use instrument::{time_opt, OpKind, TimingRecorder, WireSnapshot, WireStats};
pub use nonblocking::{Backend, ProgressEngine, Request};
pub use wire::WirePrecision;
pub use world::{CommWorld, Communicator, Int8Payload, Payload};
