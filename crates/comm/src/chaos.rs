//! Deterministic fault injection for the comm runtime.
//!
//! Real cluster runs fail in ways unit tests never exercise: NIC-level
//! retransmits reorder packets, a progress thread gets descheduled for
//! milliseconds, a worker dies and is restarted by the launcher, one socket
//! runs hot and stragglers every collective. This module provides a *seeded*
//! model of those faults so the runtime's correctness claims ("collectives
//! are bitwise deterministic given deterministic callers") can be tested
//! under hundreds of adversarial schedules — and any failure reproduces from
//! a single `u64` seed.
//!
//! # Design
//!
//! All fault decisions are **pure hash functions** of `(seed, fault domain,
//! message/op coordinates)` — never wall-clock time, never OS-scheduler
//! state. Two runs with the same seed therefore inject exactly the same
//! faults at exactly the same logical points, even though physical thread
//! interleavings differ; and because faults are injected *below* the logical
//! stream (sequence-numbered envelopes repaired at the receiver, see
//! [`crate::world`]), the delivered data — and thus every collective result
//! — is bitwise identical to a fault-free run.
//!
//! Faults modeled:
//!
//! * **Delay / reorder**: a message is held in the sender's outbox and
//!   released only after later traffic, arriving out of order.
//! * **Duplicate**: a message is transmitted twice (the receiver must
//!   discard the copy).
//! * **Drop + retry**: a send attempt is "lost" and retried after a counted
//!   exponential backoff, bounded by [`ChaosConfig::max_retries`].
//! * **Stall**: a rank burns a counted number of `yield_now` calls at an
//!   operation boundary, perturbing the physical schedule.
//! * **Worker kill**: a [`crate::nonblocking::ProgressEngine`] worker thread
//!   exits after completing a task and is transparently replaced by a fresh
//!   thread (restart semantics).
//! * **Stragglers / late messages** (simulation only): per-(rank, iteration)
//!   compute-time multipliers and communication slack for `dlrm-clustersim`
//!   timelines, so the simulator and the runtime share one fault abstraction.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Knobs for the fault injector. All probabilities are per decision point
/// and independent; `0.0` disables that fault class.
#[derive(Debug, Clone, Copy)]
pub struct ChaosConfig {
    /// Master seed; every fault decision derives from it.
    pub seed: u64,
    /// Probability a message is delayed (held in the sender's outbox).
    pub delay_prob: f64,
    /// Maximum number of subsequent same-peer sends a delayed message can be
    /// held behind.
    pub max_delay: u32,
    /// Probability a message is transmitted twice.
    pub duplicate_prob: f64,
    /// Probability a given send *attempt* is dropped (each drop triggers a
    /// retry with counted backoff).
    pub drop_prob: f64,
    /// Upper bound on retries after drops; the final attempt always goes
    /// through, so messages are delayed-not-lost (reliable-transport model).
    pub max_retries: u32,
    /// Probability an operation boundary stalls the calling thread.
    pub stall_prob: f64,
    /// Maximum `yield_now` count per stall.
    pub max_stall_yields: u32,
    /// Probability a progress worker is killed (and restarted) after
    /// completing a task.
    pub kill_worker_prob: f64,
    /// Probability a (rank, iteration) pair is a compute straggler in the
    /// cluster simulator.
    pub straggler_prob: f64,
    /// Maximum extra compute fraction for a straggler (`0.5` ⇒ up to 1.5×).
    pub max_straggler_slowdown: f64,
    /// Probability a (rank, iteration) pair sees late messages in the
    /// cluster simulator.
    pub late_prob: f64,
    /// Maximum fraction of the communication time added as late-arrival
    /// slack.
    pub max_late_fraction: f64,
}

impl ChaosConfig {
    /// Everything disabled — a [`FaultPlan`] from this config is a no-op.
    pub fn off(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay_prob: 0.0,
            max_delay: 0,
            duplicate_prob: 0.0,
            drop_prob: 0.0,
            max_retries: 0,
            stall_prob: 0.0,
            max_stall_yields: 0,
            kill_worker_prob: 0.0,
            straggler_prob: 0.0,
            max_straggler_slowdown: 0.0,
            late_prob: 0.0,
            max_late_fraction: 0.0,
        }
    }

    /// Default adversarial mix used by the chaos test suites: every fault
    /// class enabled at rates high enough that a few-hundred-message
    /// collective sees many injections.
    pub fn aggressive(seed: u64) -> Self {
        ChaosConfig {
            seed,
            delay_prob: 0.25,
            max_delay: 3,
            duplicate_prob: 0.15,
            drop_prob: 0.2,
            max_retries: 3,
            stall_prob: 0.1,
            max_stall_yields: 32,
            kill_worker_prob: 0.05,
            straggler_prob: 0.3,
            max_straggler_slowdown: 0.75,
            late_prob: 0.25,
            max_late_fraction: 0.5,
        }
    }

    /// Builds the immutable decision oracle for this config.
    pub fn plan(self) -> Arc<FaultPlan> {
        Arc::new(FaultPlan { cfg: self })
    }
}

/// Fault-domain discriminators mixed into the hash so the same coordinates
/// in different domains draw independent decisions.
const D_DELAY: u64 = 0x01;
const D_DUP: u64 = 0x02;
const D_DROP: u64 = 0x03;
const D_STALL: u64 = 0x04;
const D_KILL: u64 = 0x05;
const D_STRAGGLER: u64 = 0x06;
const D_LATE: u64 = 0x07;

/// Seeded, stateless fault oracle. Shared (via `Arc`) by every rank of a
/// world; all methods are pure functions of the seed and their arguments.
#[derive(Debug)]
pub struct FaultPlan {
    cfg: ChaosConfig,
}

impl FaultPlan {
    /// The config this plan was built from.
    pub fn config(&self) -> &ChaosConfig {
        &self.cfg
    }

    /// SplitMix64 over the seed, a domain tag, and three coordinates.
    fn hash(&self, domain: u64, a: u64, b: u64, c: u64) -> u64 {
        let mut z = self
            .cfg
            .seed
            .wrapping_add(domain.wrapping_mul(0x9E37_79B9_7F4A_7C15))
            .wrapping_add(a.wrapping_mul(0xBF58_476D_1CE4_E5B9))
            .wrapping_add(b.wrapping_mul(0x94D0_49BB_1331_11EB))
            .wrapping_add(c.wrapping_mul(0xD6E8_FEB8_6659_FD93));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` for the given coordinates.
    fn unit(&self, domain: u64, a: u64, b: u64, c: u64) -> f64 {
        (self.hash(domain, a, b, c) >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// How many subsequent same-peer sends to hold message `(src, dst, seq)`
    /// behind; `0` means transmit immediately.
    pub fn delay_depth(&self, src: usize, dst: usize, seq: u64) -> u32 {
        if self.cfg.max_delay == 0
            || self.unit(D_DELAY, src as u64, dst as u64, seq) >= self.cfg.delay_prob
        {
            return 0;
        }
        // Depth in 1..=max_delay, drawn from an independent hash.
        1 + (self.hash(D_DELAY ^ 0x80, src as u64, dst as u64, seq) % self.cfg.max_delay as u64)
            as u32
    }

    /// Whether to transmit message `(src, dst, seq)` twice.
    pub fn duplicate(&self, src: usize, dst: usize, seq: u64) -> bool {
        self.unit(D_DUP, src as u64, dst as u64, seq) < self.cfg.duplicate_prob
    }

    /// Whether send attempt `attempt` of message `(src, dst, seq)` is
    /// dropped (forcing a retry).
    pub fn drop_attempt(&self, src: usize, dst: usize, seq: u64, attempt: u32) -> bool {
        attempt < self.cfg.max_retries
            && self.unit(
                D_DROP,
                src as u64,
                dst as u64,
                seq ^ ((attempt as u64) << 48),
            ) < self.cfg.drop_prob
    }

    /// Counted exponential backoff (in `yield_now` calls) before retrying
    /// after the given failed attempt.
    pub fn backoff_yields(&self, attempt: u32) -> u32 {
        1u32 << attempt.min(10)
    }

    /// How many `yield_now` calls rank `rank` burns at its `op_index`-th
    /// operation boundary; `0` means no stall.
    pub fn stall_yields(&self, rank: usize, op_index: u64) -> u32 {
        if self.cfg.max_stall_yields == 0
            || self.unit(D_STALL, rank as u64, op_index, 0) >= self.cfg.stall_prob
        {
            return 0;
        }
        1 + (self.hash(D_STALL ^ 0x80, rank as u64, op_index, 0) % self.cfg.max_stall_yields as u64)
            as u32
    }

    /// Whether the progress worker for `(rank, channel)` dies after
    /// completing its `task_index`-th task (it is restarted transparently).
    pub fn kill_worker(&self, rank: usize, channel: usize, task_index: u64) -> bool {
        self.unit(D_KILL, rank as u64, channel as u64, task_index) < self.cfg.kill_worker_prob
    }

    /// Compute-time multiplier (`≥ 1.0`) for `(rank, iteration)` in the
    /// cluster simulator; `1.0` for non-stragglers.
    pub fn straggler_factor(&self, rank: usize, iter: u64) -> f64 {
        if self.unit(D_STRAGGLER, rank as u64, iter, 0) >= self.cfg.straggler_prob {
            return 1.0;
        }
        1.0 + self.unit(D_STRAGGLER ^ 0x80, rank as u64, iter, 1) * self.cfg.max_straggler_slowdown
    }

    /// Fraction of communication time added as late-arrival slack for
    /// `(rank, iteration)` in the cluster simulator; `0.0` when on time.
    pub fn late_message_fraction(&self, rank: usize, iter: u64) -> f64 {
        if self.unit(D_LATE, rank as u64, iter, 0) >= self.cfg.late_prob {
            return 0.0;
        }
        self.unit(D_LATE ^ 0x80, rank as u64, iter, 1) * self.cfg.max_late_fraction
    }
}

/// Shared fault counters for one world. Because every decision is a pure
/// hash over logical coordinates, the totals are themselves deterministic
/// for a given (seed, workload) — the chaos tests assert both that faults
/// actually fired and that the counts replay exactly.
#[derive(Debug, Default)]
pub struct ChaosStats {
    /// Messages held in a sender outbox.
    pub delayed: AtomicU64,
    /// Messages transmitted twice.
    pub duplicated: AtomicU64,
    /// Send attempts dropped (each implies one retry).
    pub dropped: AtomicU64,
    /// Operation-boundary stalls taken.
    pub stalls: AtomicU64,
    /// Progress workers killed and restarted.
    pub workers_killed: AtomicU64,
    /// Messages that arrived ahead of sequence and were buffered.
    pub reordered: AtomicU64,
    /// Duplicate arrivals discarded by the receiver.
    pub dups_discarded: AtomicU64,
}

impl ChaosStats {
    /// Plain-value snapshot of the counters.
    pub fn snapshot(&self) -> ChaosSnapshot {
        ChaosSnapshot {
            delayed: self.delayed.load(Ordering::Relaxed),
            duplicated: self.duplicated.load(Ordering::Relaxed),
            dropped: self.dropped.load(Ordering::Relaxed),
            stalls: self.stalls.load(Ordering::Relaxed),
            workers_killed: self.workers_killed.load(Ordering::Relaxed),
            reordered: self.reordered.load(Ordering::Relaxed),
            dups_discarded: self.dups_discarded.load(Ordering::Relaxed),
        }
    }
}

/// Point-in-time copy of [`ChaosStats`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ChaosSnapshot {
    /// See [`ChaosStats::delayed`].
    pub delayed: u64,
    /// See [`ChaosStats::duplicated`].
    pub duplicated: u64,
    /// See [`ChaosStats::dropped`].
    pub dropped: u64,
    /// See [`ChaosStats::stalls`].
    pub stalls: u64,
    /// See [`ChaosStats::workers_killed`].
    pub workers_killed: u64,
    /// See [`ChaosStats::reordered`].
    pub reordered: u64,
    /// See [`ChaosStats::dups_discarded`].
    pub dups_discarded: u64,
}

impl ChaosSnapshot {
    /// Total injected faults (excluding receiver-side repair counters).
    pub fn total_injected(&self) -> u64 {
        self.delayed + self.duplicated + self.dropped + self.stalls + self.workers_killed
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decisions_are_deterministic() {
        let a = ChaosConfig::aggressive(42).plan();
        let b = ChaosConfig::aggressive(42).plan();
        for seq in 0..500 {
            assert_eq!(a.delay_depth(0, 1, seq), b.delay_depth(0, 1, seq));
            assert_eq!(a.duplicate(1, 0, seq), b.duplicate(1, 0, seq));
            assert_eq!(a.drop_attempt(0, 1, seq, 0), b.drop_attempt(0, 1, seq, 0));
            assert_eq!(a.stall_yields(2, seq), b.stall_yields(2, seq));
            assert_eq!(a.kill_worker(1, 0, seq), b.kill_worker(1, 0, seq));
        }
    }

    #[test]
    fn seeds_change_decisions() {
        let a = ChaosConfig::aggressive(1).plan();
        let b = ChaosConfig::aggressive(2).plan();
        let differ = (0..500).any(|seq| {
            a.delay_depth(0, 1, seq) != b.delay_depth(0, 1, seq)
                || a.duplicate(0, 1, seq) != b.duplicate(0, 1, seq)
        });
        assert!(differ, "different seeds must give different fault plans");
    }

    #[test]
    fn off_config_injects_nothing() {
        let p = ChaosConfig::off(7).plan();
        for seq in 0..200 {
            assert_eq!(p.delay_depth(0, 1, seq), 0);
            assert!(!p.duplicate(0, 1, seq));
            assert!(!p.drop_attempt(0, 1, seq, 0));
            assert_eq!(p.stall_yields(0, seq), 0);
            assert!(!p.kill_worker(0, 0, seq));
            assert_eq!(p.straggler_factor(0, seq), 1.0);
            assert_eq!(p.late_message_fraction(0, seq), 0.0);
        }
    }

    #[test]
    fn aggressive_config_actually_fires() {
        let p = ChaosConfig::aggressive(3).plan();
        let delays = (0..400).filter(|&s| p.delay_depth(0, 1, s) > 0).count();
        let dups = (0..400).filter(|&s| p.duplicate(0, 1, s)).count();
        let drops = (0..400).filter(|&s| p.drop_attempt(0, 1, s, 0)).count();
        assert!(delays > 40, "delays fired only {delays}/400");
        assert!(dups > 20, "duplicates fired only {dups}/400");
        assert!(drops > 30, "drops fired only {drops}/400");
    }

    #[test]
    fn delay_depth_is_bounded() {
        let p = ChaosConfig::aggressive(11).plan();
        for seq in 0..1000 {
            assert!(p.delay_depth(0, 1, seq) <= p.config().max_delay);
        }
    }

    #[test]
    fn final_attempt_never_drops() {
        let p = ChaosConfig::aggressive(5).plan();
        let max = p.config().max_retries;
        for seq in 0..500 {
            assert!(!p.drop_attempt(0, 1, seq, max));
        }
    }

    #[test]
    fn straggler_factor_bounds() {
        let p = ChaosConfig::aggressive(9).plan();
        let mut hit = false;
        for iter in 0..500 {
            let f = p.straggler_factor(1, iter);
            assert!((1.0..=1.0 + p.config().max_straggler_slowdown).contains(&f));
            hit |= f > 1.0;
        }
        assert!(hit, "no straggler in 500 iters at prob 0.3");
    }

    #[test]
    fn snapshot_totals() {
        let s = ChaosStats::default();
        s.delayed.store(2, Ordering::Relaxed);
        s.dropped.store(3, Ordering::Relaxed);
        let snap = s.snapshot();
        assert_eq!(snap.total_injected(), 5);
        assert_eq!(snap, s.snapshot());
    }
}
