//! Bitwise gate for the persistent packed-GEMM execution plan.
//!
//! The `pack-per-call` arm below re-implements, from the public tensor and
//! kernel APIs, exactly what `Linear::forward`/`backward`/`sgd_step` did
//! before the persistent plan existed: re-pack W/X/dY on every call, fresh
//! blocked buffers, unpack between layers, flat SGD. The persistent path
//! (pack-once weights, blocked activation residency, fused backward
//! epilogues, blocked in-place SGD) must produce bit-identical outputs,
//! gradients and parameter planes — across forced ISA tiers, layer shapes
//! (including dimensions the default blocking does not divide), seeds and
//! multiple training steps, plus the sync/invalidate seam under mixed
//! Reference/Optimized execution.

use dlrm::layers::{Activation, Execution, Mlp};
use dlrm_kernels::activations::{bias_add_rows, bias_grad_rows, relu_backward, relu_forward};
use dlrm_kernels::embedding::rowops::available_isas;
use dlrm_kernels::gemm::{self, set_isa_override};
use dlrm_kernels::sgd::sgd_step;
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::{BlockedActivations, BlockedWeights, Blocking, Matrix};

fn bits(s: &[f32]) -> Vec<u32> {
    s.iter().map(|v| v.to_bits()).collect()
}

/// One layer of the pack-per-call arm: plain flat tensors, no plan state.
struct PerCallLayer {
    w: Matrix,
    b: Vec<f32>,
    relu: bool,
    dw: Matrix,
    db: Vec<f32>,
    x: Option<Matrix>,
    y: Option<Matrix>,
}

fn per_call_from(mlp: &Mlp) -> Vec<PerCallLayer> {
    mlp.layers
        .iter()
        .map(|l| PerCallLayer {
            w: l.w.clone(),
            b: l.b.clone(),
            relu: l.act == Activation::Relu,
            dw: Matrix::zeros(l.w.rows(), l.w.cols()),
            db: vec![0.0; l.b.len()],
            x: None,
            y: None,
        })
        .collect()
}

/// The pre-plan optimized forward: pack W and X per call, fused epilogue,
/// unpack between layers.
fn per_call_forward(pool: &ThreadPool, layers: &mut [PerCallLayer], x: &Matrix) -> Matrix {
    let mut cur = x.clone();
    for l in layers.iter_mut() {
        let (k, n) = (l.w.rows(), cur.cols());
        let blk = Blocking::for_shape(n, l.w.cols(), k);
        let wb = BlockedWeights::pack(&l.w, blk);
        let xb = BlockedActivations::pack(&cur, blk.bc, blk.bn);
        let mut yb = BlockedActivations::zeros(k, n, blk.bk, blk.bn);
        gemm::fc_forward_fused(pool, &wb, &xb, &mut yb, Some(&l.b), l.relu);
        let y = yb.unpack();
        l.x = Some(cur);
        l.y = Some(y.clone());
        cur = y;
    }
    cur
}

/// The pre-plan optimized backward: flat ReLU mask and bias reduction,
/// per-call packs, unfused batch-reduce GEMMs.
fn per_call_backward(pool: &ThreadPool, layers: &mut [PerCallLayer], mut dy: Matrix) -> Matrix {
    for l in layers.iter_mut().rev() {
        let y = l.y.as_ref().expect("backward before forward");
        if l.relu {
            relu_backward(y.as_slice(), dy.as_mut_slice());
        }
        let (k, n) = dy.shape();
        bias_grad_rows(dy.as_slice(), k, n, &mut l.db);
        let x = l.x.as_ref().unwrap();
        let c = l.w.cols();
        let blk = Blocking::for_shape(n, c, k);
        let wb = BlockedWeights::pack(&l.w, blk);
        let xb = BlockedActivations::pack(x, blk.bc, blk.bn);
        let dyb = BlockedActivations::pack(&dy, blk.bk, blk.bn);
        let mut dwb = BlockedWeights::zeros(k, c, blk);
        gemm::fc_backward_weights(pool, &xb, &dyb, &mut dwb);
        l.dw = dwb.unpack();
        let mut dxb = BlockedActivations::zeros(c, n, blk.bc, blk.bn);
        gemm::fc_backward_data(pool, &wb, &dyb, &mut dxb);
        dy = dxb.unpack();
    }
    dy
}

/// Reference-tier forward on the pack-per-call arm (naive GEMM on flat
/// tensors), for the mixed-execution phase.
fn per_call_forward_reference(layers: &mut [PerCallLayer], x: &Matrix) -> Matrix {
    let mut cur = x.clone();
    for l in layers.iter_mut() {
        let (k, n) = (l.w.rows(), cur.cols());
        let mut y = Matrix::zeros(k, n);
        gemm::gemm_nn(&l.w, &cur, &mut y);
        bias_add_rows(y.as_mut_slice(), k, n, &l.b);
        if l.relu {
            relu_forward(y.as_mut_slice());
        }
        l.x = Some(cur);
        l.y = Some(y.clone());
        cur = y;
    }
    cur
}

/// Reference-tier backward on the pack-per-call arm.
fn per_call_backward_reference(layers: &mut [PerCallLayer], mut dy: Matrix) -> Matrix {
    for l in layers.iter_mut().rev() {
        let y = l.y.as_ref().expect("backward before forward");
        if l.relu {
            relu_backward(y.as_slice(), dy.as_mut_slice());
        }
        let (k, n) = dy.shape();
        bias_grad_rows(dy.as_slice(), k, n, &mut l.db);
        let x = l.x.as_ref().unwrap();
        l.dw.fill_zero();
        gemm::gemm_nt(&dy, x, &mut l.dw);
        let mut dx = Matrix::zeros(l.w.cols(), n);
        gemm::gemm_tn(&l.w, &dy, &mut dx);
        dy = dx;
    }
    dy
}

fn per_call_sgd(layers: &mut [PerCallLayer], lr: f32) {
    for l in layers.iter_mut() {
        sgd_step(l.w.as_mut_slice(), l.dw.as_slice(), lr);
        sgd_step(&mut l.b, &l.db, lr);
    }
}

/// Deterministic pseudo-loss gradient, computed from bit-identical `y` in
/// both arms.
fn loss_grad(y: &Matrix) -> Matrix {
    Matrix::from_fn(y.rows(), y.cols(), |i, j| y[(i, j)] * 0.01 - 0.005)
}

/// Asserts the persistent-plan MLP and the pack-per-call arm stay bitwise
/// identical over `steps` fwd+bwd+sgd iterations.
fn check_shape(
    in_dim: usize,
    sizes: &[usize],
    n: usize,
    last_act: Activation,
    seed: u64,
    label: &str,
) {
    let exec = Execution::optimized(3);
    let pool = ThreadPool::new(3);
    let mut mlp = Mlp::new(in_dim, sizes, last_act, &mut seeded_rng(seed, 0));
    let mut old = per_call_from(&mlp);
    let x = uniform(in_dim, n, -1.0, 1.0, &mut seeded_rng(seed, 1));
    for step in 0..3 {
        let y_new = mlp.forward(&exec, &x);
        let y_old = per_call_forward(&pool, &mut old, &x);
        assert_eq!(
            bits(y_new.as_slice()),
            bits(y_old.as_slice()),
            "{label} step {step}: forward"
        );
        let dx_new = mlp.backward(&exec, loss_grad(&y_new));
        let dx_old = per_call_backward(&pool, &mut old, loss_grad(&y_old));
        assert_eq!(
            bits(dx_new.as_slice()),
            bits(dx_old.as_slice()),
            "{label} step {step}: backward dx"
        );
        for (i, (l_new, l_old)) in mlp.layers.iter().zip(&old).enumerate() {
            assert_eq!(
                bits(l_new.dw.as_slice()),
                bits(l_old.dw.as_slice()),
                "{label} step {step} layer {i}: dw"
            );
            assert_eq!(
                bits(&l_new.db),
                bits(&l_old.db),
                "{label} step {step} layer {i}: db"
            );
        }
        mlp.sgd_step(&exec, 0.1);
        per_call_sgd(&mut old, 0.1);
        // The flat mirror must lazily catch up with the in-place blocked
        // SGD update, bit for bit.
        mlp.sync_flat_weights();
        for (i, (l_new, l_old)) in mlp.layers.iter().zip(&old).enumerate() {
            assert_eq!(
                bits(l_new.w.as_slice()),
                bits(l_old.w.as_slice()),
                "{label} step {step} layer {i}: post-sgd w"
            );
            assert_eq!(
                bits(&l_new.b),
                bits(&l_old.b),
                "{label} step {step} layer {i}: post-sgd b"
            );
        }
    }
}

/// The sync/invalidate seam: alternating Optimized and Reference steps
/// (with direct flat-weight reads in between) must track a pack-per-call
/// arm doing the same alternation.
fn check_mixed_execution(seed: u64) {
    let opt = Execution::optimized(3);
    let refr = Execution::Reference;
    let pool = ThreadPool::new(3);
    let mut mlp = Mlp::new(8, &[16, 4, 1], Activation::None, &mut seeded_rng(seed, 0));
    let mut old = per_call_from(&mlp);
    let x = uniform(8, 10, -1.0, 1.0, &mut seeded_rng(seed, 1));
    for (step, optimized) in [true, false, true, true, false].into_iter().enumerate() {
        let (y_new, y_old) = if optimized {
            (mlp.forward(&opt, &x), per_call_forward(&pool, &mut old, &x))
        } else {
            (
                mlp.forward(&refr, &x),
                per_call_forward_reference(&mut old, &x),
            )
        };
        assert_eq!(
            bits(y_new.as_slice()),
            bits(y_old.as_slice()),
            "mixed step {step} (optimized={optimized}): forward"
        );
        let (dx_new, dx_old) = if optimized {
            (
                mlp.backward(&opt, loss_grad(&y_new)),
                per_call_backward(&pool, &mut old, loss_grad(&y_old)),
            )
        } else {
            (
                mlp.backward(&refr, loss_grad(&y_new)),
                per_call_backward_reference(&mut old, loss_grad(&y_old)),
            )
        };
        assert_eq!(
            bits(dx_new.as_slice()),
            bits(dx_old.as_slice()),
            "mixed step {step}: backward dx"
        );
        mlp.sgd_step(if optimized { &opt } else { &refr }, 0.05);
        per_call_sgd(&mut old, 0.05);
        mlp.sync_flat_weights();
        for (i, (l_new, l_old)) in mlp.layers.iter().zip(&old).enumerate() {
            assert_eq!(
                bits(l_new.w.as_slice()),
                bits(l_old.w.as_slice()),
                "mixed step {step} layer {i}: post-sgd w"
            );
        }
    }
}

/// One test fn on purpose: the ISA override is process-global, so running
/// tier sweeps from parallel test threads would race.
#[test]
fn packed_persistent_matches_pack_per_call_bitwise() {
    for isa in available_isas() {
        set_isa_override(Some(isa));
        for seed in [11u64, 29] {
            // Default-divisible shapes, ReLU chain + identity head.
            check_shape(
                8,
                &[16, 4, 1],
                10,
                Activation::None,
                seed,
                &format!("{isa:?} s{seed} small"),
            );
            // bk = 64: exercises the widened 2×bk AVX-512 forward variant.
            check_shape(
                64,
                &[64, 64],
                64,
                Activation::None,
                seed,
                &format!("{isa:?} s{seed} wide"),
            );
            // Nothing divisible by the default blocking (bc=10, bk∈{6,9,3},
            // bn=9), ReLU on the last layer so the boundary mask runs.
            check_shape(
                10,
                &[6, 9, 3],
                9,
                Activation::Relu,
                seed,
                &format!("{isa:?} s{seed} ragged"),
            );
        }
        check_mixed_execution(43);
    }
    set_isa_override(None);
}
