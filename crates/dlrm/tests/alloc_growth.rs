//! Steady-state allocation check for the single-socket train step: after
//! warm-up, live heap bytes and the model's iteration-persistent embedding
//! scratch must stop growing. This is what the persistent `dW[NS][E]`
//! scratch, the reused saved-batch vectors, and the reusable `BagPlan` in
//! `EmbeddingLayer` buy — before them, every step leaked fresh `Vec`s and a
//! fresh gradient matrix per table into the allocator's working set.
//!
//! Same counting-global-allocator pattern as
//! `crates/dlrm-dist/tests/alloc_growth.rs`, single-process here: samples
//! are taken between steps, when no kernel is in flight.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

struct CountingAlloc;

static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(
            new_size as isize - layout.size() as isize,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

use dlrm::prelude::*;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_tensor::init::seeded_rng;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(32, 512);
    cfg.dense_features = 6;
    cfg.bottom_mlp = vec![8, 4];
    cfg.emb_dim = 4;
    cfg.num_tables = 4;
    cfg.table_rows = vec![32, 16, 8, 24];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![8, 1];
    cfg
}

/// Runs `steps` optimized train iterations and returns per-step
/// (live-heap, embedding-scratch + MLP-plan-scratch) samples taken
/// between steps.
fn sample_training(strategy: UpdateStrategy, fused: bool, steps: usize) -> Vec<(isize, usize)> {
    let cfg = tiny_cfg();
    let batches: Vec<MiniBatch> = (0..steps)
        .map(|i| {
            MiniBatch::random(
                &cfg,
                8,
                IndexDistribution::Uniform,
                &mut seeded_rng(42 + i as u64, 5),
            )
        })
        .collect();
    let mut model = DlrmModel::new(
        &cfg,
        Execution::optimized(3),
        strategy,
        PrecisionMode::Fp32,
        7,
    );
    for t in &mut model.tables {
        t.fused = fused;
    }
    let mut samples = Vec::with_capacity(steps);
    for b in &batches {
        model.train_step(b, 0.1);
        samples.push((
            LIVE_BYTES.load(Ordering::Relaxed),
            model.embedding_scratch_bytes() + model.mlp_scratch_bytes(),
        ));
    }
    samples
}

fn assert_steady(samples: &[(isize, usize)], label: &str) {
    // Iteration-persistent scratch must stabilize after the very first step.
    let scratch_after_warmup = samples[1].1;
    for (step, (_, scratch)) in samples.iter().enumerate().skip(1) {
        assert_eq!(
            *scratch, scratch_after_warmup,
            "{label}: scratch grew at step {step}"
        );
    }
    // Live heap: the late-window peak must not exceed the warm-up peak by
    // more than a small slack (allocator-internal jitter).
    let mid = samples.len() / 2;
    let warm = samples[2..mid].iter().map(|s| s.0).max().unwrap();
    let late = samples[mid..].iter().map(|s| s.0).max().unwrap();
    const SLACK: isize = 64 * 1024;
    assert!(
        late <= warm + SLACK,
        "{label}: live heap grew from {warm} to {late} bytes"
    );
}

#[test]
fn race_free_step_does_not_grow_allocations() {
    let samples = sample_training(UpdateStrategy::RaceFree, false, 50);
    assert_steady(&samples, "race-free");
}

#[test]
fn bucketed_step_does_not_grow_allocations() {
    let samples = sample_training(UpdateStrategy::Bucketed, false, 50);
    assert_steady(&samples, "bucketed");
}

#[test]
fn planned_fused_step_does_not_grow_allocations() {
    let samples = sample_training(UpdateStrategy::RaceFree, true, 50);
    assert_steady(&samples, "planned-fused");
}

/// The persistent packed-GEMM plan on its own: a full MLP
/// fwd+bwd+sgd loop must stop allocating once the plan (packed weights,
/// blocked gradient scratch, activation residency) has grown to the batch
/// shape.
#[test]
fn mlp_packed_plan_step_does_not_grow_allocations() {
    use dlrm::layers::{Activation, Mlp};
    use dlrm_tensor::init::uniform;
    use dlrm_tensor::Matrix;

    let exec = Execution::optimized(3);
    let mut rng = seeded_rng(31, 0);
    let mut mlp = Mlp::new(12, &[16, 8, 1], Activation::None, &mut rng);
    let x = uniform(12, 24, -1.0, 1.0, &mut rng);
    let mut samples = Vec::new();
    for _ in 0..50 {
        let y = mlp.forward(&exec, &x);
        let dy = Matrix::from_fn(y.rows(), y.cols(), |i, j| y[(i, j)] * 0.01);
        let _ = mlp.backward(&exec, dy);
        mlp.sgd_step(&exec, 0.05);
        samples.push((LIVE_BYTES.load(Ordering::Relaxed), mlp.scratch_bytes()));
    }
    assert_steady(&samples, "mlp-packed-plan");
}
