//! Fully-connected layers and MLP stacks.
//!
//! Two execution tiers mirror Figure 7's contrast:
//!
//! * [`Execution::Reference`] — naive single-threaded GEMMs (the
//!   functionality-first framework baseline);
//! * [`Execution::Optimized`] — thread-pool-parallel GEMM kernels from
//!   `dlrm_kernels`.
//!
//! Tensors follow the paper's `Y = W·X` convention: `W ∈ R^{K×C}`,
//! activations are `features × batch`.

use dlrm_kernels::activations::{bias_add_rows, bias_grad_rows, relu_backward, relu_forward};
use dlrm_kernels::gemm;
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::xavier_uniform;
use dlrm_tensor::{BlockedActivations, BlockedWeights, Blocking, Matrix};
use rand::rngs::StdRng;
use std::sync::Arc;

/// Which kernel tier to run on.
#[derive(Clone)]
pub enum Execution {
    /// Naive single-threaded kernels.
    Reference,
    /// Optimized kernels over a shared thread pool.
    Optimized(Arc<ThreadPool>),
}

impl Execution {
    /// An optimized execution with `n` worker threads.
    pub fn optimized(n: usize) -> Self {
        Execution::Optimized(Arc::new(ThreadPool::new(n)))
    }

    /// The thread pool, if optimized.
    pub fn pool(&self) -> Option<&ThreadPool> {
        match self {
            Execution::Reference => None,
            Execution::Optimized(p) => Some(p),
        }
    }

    fn gemm_nn(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Execution::Reference => gemm::gemm_nn(a, b, c),
            Execution::Optimized(p) => gemm::par_gemm_nn(p, a, b, c),
        }
    }

    fn gemm_tn(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Execution::Reference => gemm::gemm_tn(a, b, c),
            Execution::Optimized(p) => gemm::par_gemm_tn(p, a, b, c),
        }
    }

    fn gemm_nt(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Execution::Reference => gemm::gemm_nt(a, b, c),
            Execution::Optimized(p) => gemm::par_gemm_nt(p, a, b, c),
        }
    }
}

/// Activation applied after the affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Identity (the logit-producing final layer).
    None,
}

/// Persistent packed-GEMM plan state for one layer.
///
/// Once `wb` is packed it becomes the canonical optimized-path weight
/// storage: the blocked SGD step updates it in place, and the flat `w`
/// mirror is only refreshed on demand ([`Linear::sync_flat_weights`]).
/// The invariant is one-directional staleness — either the flat mirror is
/// authoritative (`!packed_valid`) or the packed copy is (`packed_valid`,
/// with `flat_stale` marking whether the mirror has fallen behind). Both
/// being stale is impossible: `flat_stale` is only ever set while
/// `packed_valid`, and [`Linear::invalidate_packed`] refuses to drop a
/// packed copy the mirror hasn't caught up with.
struct PackedPlan {
    /// Packed weights, `[Kb][Cb][bc][bk]` (canonical once `packed_valid`).
    wb: BlockedWeights,
    /// Blocked weight-gradient scratch (grow-only, reused every backward).
    dwb: BlockedWeights,
    /// `wb` matches the layer's current weights.
    packed_valid: bool,
    /// Flat `w` is behind `wb` (blocked SGD ran since the last sync).
    flat_stale: bool,
}

impl PackedPlan {
    fn new() -> Self {
        PackedPlan {
            wb: BlockedWeights::zeros(0, 0, Blocking::DEFAULT),
            dwb: BlockedWeights::zeros(0, 0, Blocking::DEFAULT),
            packed_valid: false,
            flat_stale: false,
        }
    }
}

/// One fully-connected layer with its gradients and saved activations.
pub struct Linear {
    /// Weights, `K×C` — the flat mirror; the Reference path and
    /// checkpointing read this, the optimized path reads the packed plan.
    pub w: Matrix,
    /// Bias, length `K`.
    pub b: Vec<f32>,
    /// Weight gradient of the last backward.
    pub dw: Matrix,
    /// Bias gradient of the last backward.
    pub db: Vec<f32>,
    /// Post-GEMM activation.
    pub act: Activation,
    x_saved: Option<Matrix>,
    y_saved: Option<Matrix>,
    plan: PackedPlan,
}

impl Linear {
    /// Xavier-initialized layer `C → K`.
    pub fn new(c: usize, k: usize, act: Activation, rng: &mut StdRng) -> Self {
        Linear {
            w: xavier_uniform(k, c, rng),
            b: vec![0.0; k],
            dw: Matrix::zeros(k, c),
            db: vec![0.0; k],
            act,
            x_saved: None,
            y_saved: None,
            plan: PackedPlan::new(),
        }
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.w.cols()
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.w.rows()
    }

    /// Blocking factors for this layer at minibatch `n`.
    fn blocking(&self, n: usize) -> Blocking {
        Blocking::for_shape(n, self.w.cols(), self.w.rows())
    }

    /// Packs the flat weights into the persistent plan if the packed copy
    /// is not already valid. `bc`/`bk` depend only on the layer shape, so a
    /// once-packed tensor serves every batch size.
    fn ensure_packed(&mut self, n: usize) {
        if !self.plan.packed_valid {
            debug_assert!(
                !self.plan.flat_stale,
                "flat mirror stale without a packed copy"
            );
            let blk = self.blocking(n);
            self.plan.wb.pack_into(&self.w, blk);
            self.plan.packed_valid = true;
        }
    }

    /// Copies any blocked-SGD updates back into the flat `w` mirror. The
    /// Reference path, checkpointing and anything that reads `w` directly
    /// after optimized training must pass through here.
    pub fn sync_flat_weights(&mut self) {
        if self.plan.flat_stale {
            self.plan.wb.unpack_into(&mut self.w);
            self.plan.flat_stale = false;
        }
    }

    /// Drops the packed weight copy. Call after mutating the flat `w`
    /// externally (e.g. a precision optimizer step) so the next optimized
    /// call re-packs.
    ///
    /// # Panics
    /// Panics if the flat mirror is stale — invalidating then would silently
    /// drop blocked-SGD updates; call [`Linear::sync_flat_weights`] first.
    pub fn invalidate_packed(&mut self) {
        assert!(
            !self.plan.flat_stale,
            "invalidate_packed would drop blocked-SGD updates; call sync_flat_weights first"
        );
        self.plan.packed_valid = false;
    }

    /// Bytes held by this layer's persistent plan (packed weights + blocked
    /// gradient scratch) — grow-only, constant after the first step.
    pub fn plan_bytes(&self) -> usize {
        self.plan.wb.capacity_bytes() + self.plan.dwb.capacity_bytes()
    }

    /// Eagerly packs the weights into the persistent plan. `bc`/`bk` depend
    /// only on the layer shape, so the packed tensor serves every batch
    /// size — serving wants the pack cost at load time, not on the first
    /// request.
    pub fn prepack(&mut self) {
        self.ensure_packed(1);
    }

    /// Forward: `y = act(W·x + b)`; saves what backward needs.
    ///
    /// The optimized tier runs the blocked batch-reduce GEMM of
    /// Algorithm 5 over the persistent packed weights (packed once, reused
    /// every call); the reference tier runs the naive kernels on the flat
    /// mirror.
    pub fn forward(&mut self, exec: &Execution, x: &Matrix) -> Matrix {
        let (k, n) = (self.w.rows(), x.cols());
        assert_eq!(x.rows(), self.w.cols(), "Linear input feature mismatch");
        let y = match exec {
            Execution::Reference => {
                self.sync_flat_weights();
                let mut y = Matrix::zeros(k, n);
                exec.gemm_nn(&self.w, x, &mut y);
                bias_add_rows(y.as_mut_slice(), k, n, &self.b);
                if self.act == Activation::Relu {
                    relu_forward(y.as_mut_slice());
                }
                y
            }
            Execution::Optimized(pool) => {
                // Bias and ReLU are fused into the GEMM epilogue while each
                // output panel is cache-hot (Section II).
                self.ensure_packed(n);
                let blk = self.blocking(n);
                let xb = BlockedActivations::pack(x, blk.bc, blk.bn);
                let mut yb = BlockedActivations::zeros(k, n, blk.bk, blk.bn);
                gemm::fc_forward_fused(
                    pool,
                    &self.plan.wb,
                    &xb,
                    &mut yb,
                    Some(&self.b),
                    self.act == Activation::Relu,
                );
                yb.unpack()
            }
        };
        self.x_saved = Some(x.clone());
        self.y_saved = Some(y.clone());
        y
    }

    /// Forward one layer entirely in blocked layout: the chained-residency
    /// path of [`Mlp::forward`]. `yb` is reshaped (scratch semantics) to
    /// this layer's output blocking; bias/ReLU are fused into the epilogue.
    /// Clears the per-layer saved activations — the blocked chain in
    /// [`Mlp`] scratch is what backward reads.
    fn forward_blocked(
        &mut self,
        pool: &ThreadPool,
        xb: &BlockedActivations,
        yb: &mut BlockedActivations,
    ) {
        let n = xb.n;
        assert_eq!(xb.c, self.w.cols(), "Linear input feature mismatch");
        self.ensure_packed(n);
        let blk = self.blocking(n);
        yb.reshape_scratch(self.w.rows(), n, blk.bk, blk.bn);
        yb.fill_zero();
        gemm::fc_forward_fused(
            pool,
            &self.plan.wb,
            xb,
            yb,
            Some(&self.b),
            self.act == Activation::Relu,
        );
        self.x_saved = None;
        self.y_saved = None;
    }

    /// Backward: consumes the gradient w.r.t. this layer's output and
    /// returns the gradient w.r.t. its input; fills `dw`/`db`.
    pub fn backward(&mut self, exec: &Execution, mut dy: Matrix) -> Matrix {
        match exec {
            Execution::Reference => self.sync_flat_weights(),
            Execution::Optimized(_) => self.ensure_packed(dy.cols()),
        }
        let x = self.x_saved.as_ref().expect("backward before forward");
        let y = self.y_saved.as_ref().unwrap();
        assert_eq!(dy.shape(), y.shape(), "Linear dY shape");
        if self.act == Activation::Relu {
            relu_backward(y.as_slice(), dy.as_mut_slice());
        }
        let (k, n) = dy.shape();
        // db = row-sums of dY
        bias_grad_rows(dy.as_slice(), k, n, &mut self.db);
        match exec {
            Execution::Reference => {
                // dW = dY · Xᵀ
                self.dw.fill_zero();
                exec.gemm_nt(&dy, x, &mut self.dw);
                // dX = Wᵀ · dY
                let mut dx = Matrix::zeros(self.w.cols(), n);
                exec.gemm_tn(&self.w, &dy, &mut dx);
                dx
            }
            Execution::Optimized(pool) => {
                let (blk, c) = (self.blocking(n), self.w.cols());
                let xb = BlockedActivations::pack(x, blk.bc, blk.bn);
                let dyb = BlockedActivations::pack(&dy, blk.bk, blk.bn);
                self.plan.dwb.reshape_scratch(k, c, blk);
                self.plan.dwb.fill_zero();
                gemm::fc_backward_weights(pool, &xb, &dyb, &mut self.plan.dwb);
                self.plan.dwb.unpack_into(&mut self.dw);
                let mut dxb = BlockedActivations::zeros(c, n, blk.bc, blk.bn);
                gemm::fc_backward_data(pool, &self.plan.wb, &dyb, &mut dxb);
                dxb.unpack()
            }
        }
    }

    /// Elements in this layer's gradient (`dW` then `db`) — its span in a
    /// DDP flat gradient buffer.
    pub fn grad_len(&self) -> usize {
        self.dw.len() + self.db.len()
    }

    /// Plain FP32 SGD on weights and bias.
    ///
    /// When the persistent packed plan is live, the optimized tier updates
    /// the packed weights *in place* (blocked SGD) and marks the flat
    /// mirror stale instead of touching it — bitwise identical to the flat
    /// step, since the blocked update is an elementwise permutation of the
    /// same mul-then-add arithmetic.
    pub fn sgd_step(&mut self, exec: &Execution, lr: f32) {
        match exec {
            Execution::Reference => {
                self.sync_flat_weights();
                dlrm_kernels::sgd::sgd_step(self.w.as_mut_slice(), self.dw.as_slice(), lr);
                self.plan.packed_valid = false;
            }
            Execution::Optimized(p) => {
                if self.plan.packed_valid {
                    self.plan.wb.add_scaled_flat(&self.dw, -lr);
                    self.plan.flat_stale = true;
                } else {
                    dlrm_kernels::sgd::par_sgd_step(
                        p,
                        self.w.as_mut_slice(),
                        self.dw.as_slice(),
                        lr,
                    );
                }
            }
        }
        dlrm_kernels::sgd::sgd_step(&mut self.b, &self.db, lr);
    }

    /// SGD with gradient averaging by `1/scale` (the DDP step after an
    /// allreduce that *sums* over ranks), plan-aware like
    /// [`Linear::sgd_step`]: updates the packed weights in place when they
    /// are the canonical copy, bitwise identical to
    /// [`dlrm_kernels::sgd::sgd_step_scaled`] on the flat mirror.
    pub fn sgd_step_scaled(&mut self, lr: f32, scale: f32) {
        if self.plan.packed_valid {
            self.plan.wb.add_scaled_flat(&self.dw, -(lr / scale));
            self.plan.flat_stale = true;
        } else {
            dlrm_kernels::sgd::sgd_step_scaled(
                self.w.as_mut_slice(),
                self.dw.as_slice(),
                lr,
                scale,
            );
        }
        dlrm_kernels::sgd::sgd_step_scaled(&mut self.b, &self.db, lr, scale);
    }
}

/// Grow-only blocked scratch backing the persistent-plan MLP path: the
/// chained forward keeps every layer's activations *blocked* across layers
/// (pack at the input boundary, unpack at the output boundary only), and
/// backward ping-pongs the gradient between two blocked buffers. All
/// buffers use scratch semantics, so after the first step at the largest
/// batch size the whole fwd+bwd+sgd loop is allocation-free.
struct MlpScratch {
    /// `acts[i]` = blocked input of layer `i`; `acts[L]` = blocked output.
    acts: Vec<BlockedActivations>,
    /// Ping-pong blocked gradient buffers for the backward chain.
    grad_a: BlockedActivations,
    grad_b: BlockedActivations,
    /// Batch size of the last chained forward; `None` = no valid residency
    /// (backward then falls back to the per-layer path).
    valid_n: Option<usize>,
}

impl MlpScratch {
    fn new() -> Self {
        MlpScratch {
            acts: Vec::new(),
            grad_a: Self::empty(),
            grad_b: Self::empty(),
            valid_n: None,
        }
    }

    /// A zero-capacity blocked tensor (no allocation until first reshape).
    fn empty() -> BlockedActivations {
        BlockedActivations::zeros(0, 0, 1, 1)
    }
}

/// Applies the ReLU gradient mask in blocked layout: `g = 0` where
/// `y <= 0`. `g` and `y` share one blocking, so this is `relu_backward`
/// under a permutation — bitwise identical to masking the flat tensors.
fn mask_blocked(g: &mut BlockedActivations, y: &BlockedActivations) {
    assert_eq!(
        (g.c, g.n, g.bc, g.bn),
        (y.c, y.n, y.bc, y.bn),
        "relu mask layout mismatch"
    );
    relu_backward(y.as_slice(), g.as_mut_slice());
}

/// A stack of fully-connected layers (ReLU between layers; the final
/// layer's activation is configurable — identity for the logit head).
pub struct Mlp {
    /// The layers in forward order.
    pub layers: Vec<Linear>,
    scratch: MlpScratch,
}

impl Mlp {
    /// Builds an MLP from `input_dim` through `sizes`, ReLU on all layers
    /// except the last, which uses `last_act`.
    pub fn new(input_dim: usize, sizes: &[usize], last_act: Activation, rng: &mut StdRng) -> Self {
        assert!(!sizes.is_empty(), "MLP needs at least one layer");
        let mut layers = Vec::with_capacity(sizes.len());
        let mut prev = input_dim;
        for (i, &s) in sizes.iter().enumerate() {
            let act = if i + 1 == sizes.len() {
                last_act
            } else {
                Activation::Relu
            };
            layers.push(Linear::new(prev, s, act, rng));
            prev = s;
        }
        Mlp {
            layers,
            scratch: MlpScratch::new(),
        }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.layers.last().unwrap().out_features()
    }

    /// Forward through all layers.
    ///
    /// On the optimized tier activations stay blocked across layers: the
    /// input is packed once, each layer's blocked output feeds the next
    /// layer's batch-reduce GEMM directly, and only the final output is
    /// unpacked. The blocked chain is what [`Mlp::backward`] on the same
    /// tier consumes (mixing an optimized forward with a Reference
    /// backward is not supported).
    pub fn forward(&mut self, exec: &Execution, x: &Matrix) -> Matrix {
        match exec {
            Execution::Reference => {
                self.scratch.valid_n = None;
                let mut cur: Option<Matrix> = None;
                for layer in &mut self.layers {
                    let y = layer.forward(exec, cur.as_ref().unwrap_or(x));
                    cur = Some(y);
                }
                cur.expect("MLP has at least one layer")
            }
            Execution::Optimized(pool) => {
                let (n, nl) = (x.cols(), self.layers.len());
                assert_eq!(
                    x.rows(),
                    self.layers[0].in_features(),
                    "Linear input feature mismatch"
                );
                let scratch = &mut self.scratch;
                if scratch.acts.len() != nl + 1 {
                    scratch.acts = (0..=nl).map(|_| MlpScratch::empty()).collect();
                }
                let blk0 = self.layers[0].blocking(n);
                scratch.acts[0].pack_into(x, blk0.bc, blk0.bn);
                for (i, layer) in self.layers.iter_mut().enumerate() {
                    let (head, tail) = scratch.acts.split_at_mut(i + 1);
                    layer.forward_blocked(pool, &head[i], &mut tail[0]);
                }
                scratch.valid_n = Some(n);
                scratch.acts[nl].unpack()
            }
        }
    }

    /// Backward through all layers; returns gradient w.r.t. the input.
    pub fn backward(&mut self, exec: &Execution, dy: Matrix) -> Matrix {
        self.backward_with(exec, dy, |_, _| {})
    }

    /// [`Mlp::backward`] with a per-layer gradient hook: `on_layer(i,
    /// layer)` fires right after layer `i`'s `dw`/`db` are final, in
    /// production order (last layer first). This is the seam a DDP-style
    /// overlap schedule needs — each layer's gradient bucket can start its
    /// allreduce while earlier layers are still computing. The hook must
    /// not change the math; backward results are identical to
    /// [`Mlp::backward`].
    pub fn backward_with(
        &mut self,
        exec: &Execution,
        dy: Matrix,
        mut on_layer: impl FnMut(usize, &Linear),
    ) -> Matrix {
        if let Execution::Optimized(pool) = exec {
            if self.scratch.valid_n == Some(dy.cols()) {
                return self.backward_chained(pool, dy, &mut on_layer);
            }
        }
        let mut cur = dy;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            cur = layer.backward(exec, cur);
            on_layer(i, layer);
        }
        cur
    }

    /// Backward over the blocked activation chain left by an optimized
    /// [`Mlp::forward`]: the boundary gradient is packed once, each layer
    /// runs the fused batch-reduce GEMMs (bias-gradient reduction inside
    /// the weight pass, upstream ReLU mask inside the data pass
    /// writeback), and only the input-boundary gradient is unpacked.
    /// Bitwise identical to the per-layer path — same kernels over the
    /// same bits, with the mask/reduction fusions proven bitwise-neutral
    /// in `dlrm_kernels::gemm`.
    fn backward_chained(
        &mut self,
        pool: &ThreadPool,
        dy: Matrix,
        on_layer: &mut dyn FnMut(usize, &Linear),
    ) -> Matrix {
        let (nl, n) = (self.layers.len(), dy.cols());
        assert_eq!(
            dy.rows(),
            self.layers[nl - 1].out_features(),
            "Mlp dY shape"
        );
        let scratch = &mut self.scratch;
        let blk_last = self.layers[nl - 1].blocking(n);
        scratch.grad_a.pack_into(&dy, blk_last.bk, blk_last.bn);
        // The last layer's own ReLU (applied at layer entry on the
        // per-layer path); inner layers' masks are fused into the
        // downstream layer's data-pass writeback instead.
        if self.layers[nl - 1].act == Activation::Relu {
            mask_blocked(&mut scratch.grad_a, &scratch.acts[nl]);
        }
        for i in (0..nl).rev() {
            let prev_relu = i > 0 && self.layers[i - 1].act == Activation::Relu;
            let layer = &mut self.layers[i];
            assert!(
                layer.plan.packed_valid,
                "chained backward without packed plan"
            );
            let (k, c) = layer.w.shape();
            let blk = layer.blocking(n);
            // Fused dW + db in one pass over the blocked operands; dW is
            // unpacked into the flat gradient so DDP hooks and the wire
            // format are unchanged.
            layer.plan.dwb.reshape_scratch(k, c, blk);
            layer.plan.dwb.fill_zero();
            gemm::fc_backward_weights_fused(
                pool,
                &scratch.acts[i],
                &scratch.grad_a,
                &mut layer.plan.dwb,
                &mut layer.db,
            );
            layer.plan.dwb.unpack_into(&mut layer.dw);
            scratch.grad_b.reshape_scratch(c, n, blk.bc, blk.bn);
            scratch.grad_b.fill_zero();
            let mask = if prev_relu {
                Some(&scratch.acts[i])
            } else {
                None
            };
            gemm::fc_backward_data_fused(
                pool,
                &layer.plan.wb,
                &scratch.grad_a,
                &mut scratch.grad_b,
                mask,
            );
            on_layer(i, layer);
            std::mem::swap(&mut scratch.grad_a, &mut scratch.grad_b);
        }
        scratch.grad_a.unpack()
    }

    /// FP32 SGD on every layer.
    pub fn sgd_step(&mut self, exec: &Execution, lr: f32) {
        for layer in &mut self.layers {
            layer.sgd_step(exec, lr);
        }
    }

    /// Total parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }

    /// Copies any blocked-SGD updates back into every layer's flat `w`
    /// mirror (see [`Linear::sync_flat_weights`]).
    pub fn sync_flat_weights(&mut self) {
        for layer in &mut self.layers {
            layer.sync_flat_weights();
        }
    }

    /// Drops every layer's packed weight copy (see
    /// [`Linear::invalidate_packed`] for the staleness contract).
    pub fn invalidate_packed(&mut self) {
        for layer in &mut self.layers {
            layer.invalidate_packed();
        }
    }

    /// Eagerly packs every layer's weights into its persistent plan (see
    /// [`Linear::prepack`]).
    pub fn prepack_weights(&mut self) {
        for layer in &mut self.layers {
            layer.prepack();
        }
    }

    /// Bytes held by the persistent execution plan: per-layer packed
    /// weights and gradient scratch plus the blocked activation-residency
    /// buffers. Grow-only — constant once the largest batch has been seen.
    pub fn scratch_bytes(&self) -> usize {
        let plans: usize = self.layers.iter().map(|l| l.plan_bytes()).sum();
        let acts: usize = self.scratch.acts.iter().map(|a| a.capacity_bytes()).sum();
        plans + acts + self.scratch.grad_a.capacity_bytes() + self.scratch.grad_b.capacity_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::{seeded_rng, uniform};

    fn both_execs() -> Vec<Execution> {
        vec![Execution::Reference, Execution::optimized(3)]
    }

    #[test]
    fn forward_matches_manual_affine() {
        for exec in both_execs() {
            let mut rng = seeded_rng(1, 0);
            let mut layer = Linear::new(3, 2, Activation::None, &mut rng);
            layer.w = Matrix::from_slice(2, 3, &[1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
            layer.b = vec![1.0, -1.0];
            let x = Matrix::from_slice(3, 1, &[2.0, 4.0, 6.0]);
            let y = layer.forward(&exec, &x);
            assert_eq!(y.as_slice(), &[2.0 - 6.0 + 1.0, 6.0 - 1.0]);
        }
    }

    #[test]
    fn relu_masks_forward_and_backward() {
        let exec = Execution::Reference;
        let mut rng = seeded_rng(2, 0);
        let mut layer = Linear::new(1, 1, Activation::Relu, &mut rng);
        layer.w = Matrix::from_slice(1, 1, &[1.0]);
        layer.b = vec![0.0];
        let y = layer.forward(&exec, &Matrix::from_slice(1, 2, &[-3.0, 3.0]));
        assert_eq!(y.as_slice(), &[0.0, 3.0]);
        let dx = layer.backward(&exec, Matrix::from_slice(1, 2, &[1.0, 1.0]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn reference_and_optimized_agree() {
        let mut rng_a = seeded_rng(3, 0);
        let mut rng_b = seeded_rng(3, 0);
        let mut mlp_ref = Mlp::new(8, &[16, 4, 1], Activation::None, &mut rng_a);
        let mut mlp_opt = Mlp::new(8, &[16, 4, 1], Activation::None, &mut rng_b);
        let x = uniform(8, 10, -1.0, 1.0, &mut seeded_rng(4, 0));
        let opt = Execution::optimized(4);

        let y_ref = mlp_ref.forward(&Execution::Reference, &x);
        let y_opt = mlp_opt.forward(&opt, &x);
        assert_allclose(y_opt.as_slice(), y_ref.as_slice(), 1e-5, "fwd");

        let dy = uniform(1, 10, -1.0, 1.0, &mut seeded_rng(5, 0));
        let dx_ref = mlp_ref.backward(&Execution::Reference, dy.clone());
        let dx_opt = mlp_opt.backward(&opt, dy);
        assert_allclose(dx_opt.as_slice(), dx_ref.as_slice(), 1e-5, "bwd dx");
        for (a, b) in mlp_ref.layers.iter().zip(&mlp_opt.layers) {
            assert_allclose(b.dw.as_slice(), a.dw.as_slice(), 1e-5, "dw");
            assert_allclose(&b.db, &a.db, 1e-5, "db");
        }
    }

    #[test]
    fn gradient_check_linear() {
        // Finite-difference check of dW through a scalar loss L = sum(y).
        let exec = Execution::Reference;
        let mut rng = seeded_rng(6, 0);
        let mut layer = Linear::new(4, 3, Activation::Relu, &mut rng);
        let x = uniform(4, 5, -1.0, 1.0, &mut rng);

        let y = layer.forward(&exec, &x);
        let dy = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let _ = layer.backward(&exec, dy);
        let analytic = layer.dw.clone();

        let h = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (1, 2), (2, 3)] {
            let orig = layer.w[(r, c)];
            layer.w[(r, c)] = orig + h;
            let lp: f64 = layer.forward(&exec, &x).sum();
            layer.w[(r, c)] = orig - h;
            let lm: f64 = layer.forward(&exec, &x).sum();
            layer.w[(r, c)] = orig;
            let fd = ((lp - lm) / (2.0 * h as f64)) as f32;
            assert!(
                (analytic[(r, c)] - fd).abs() < 2e-2,
                "dW[{r}][{c}]: analytic {} vs fd {}",
                analytic[(r, c)],
                fd
            );
        }
    }

    #[test]
    fn sgd_reduces_simple_regression_loss() {
        let exec = Execution::Reference;
        let mut rng = seeded_rng(7, 0);
        let mut mlp = Mlp::new(2, &[8, 1], Activation::None, &mut rng);
        let x = uniform(2, 32, -1.0, 1.0, &mut rng);
        // Target: y = x0 - 2*x1.
        let target: Vec<f32> = (0..32).map(|j| x[(0, j)] - 2.0 * x[(1, j)]).collect();

        let loss = |y: &Matrix, t: &[f32]| -> f64 {
            y.as_slice()
                .iter()
                .zip(t)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
        };
        let y0 = mlp.forward(&exec, &x);
        let before = loss(&y0, &target);
        for _ in 0..200 {
            let y = mlp.forward(&exec, &x);
            let dy = Matrix::from_fn(1, 32, |_, j| 2.0 * (y[(0, j)] - target[j]) / 32.0);
            let _ = mlp.backward(&exec, dy);
            mlp.sgd_step(&exec, 0.05);
        }
        let after = loss(&mlp.forward(&exec, &x), &target);
        assert!(after < before * 0.05, "loss {before} -> {after}");
    }

    #[test]
    fn param_count() {
        let mut rng = seeded_rng(8, 0);
        let mlp = Mlp::new(10, &[4, 2], Activation::None, &mut rng);
        assert_eq!(mlp.param_count(), 10 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn backward_with_hook_sees_layers_in_reverse_with_final_grads() {
        let exec = Execution::Reference;
        let mut rng = seeded_rng(11, 0);
        let mut a = Mlp::new(5, &[6, 3], Activation::Relu, &mut rng);
        let mut rng = seeded_rng(11, 0);
        let mut b = Mlp::new(5, &[6, 3], Activation::Relu, &mut rng);
        let x = Matrix::from_fn(5, 4, |i, j| (i + j) as f32 * 0.1);
        let dy = Matrix::from_fn(3, 4, |i, j| (i * 3 + j) as f32 * 0.01 - 0.02);

        let _ = a.forward(&exec, &x);
        let _ = b.forward(&exec, &x);
        let plain = a.backward(&exec, dy.clone());

        let mut order = Vec::new();
        let mut hooked_bits: Vec<Vec<u32>> = vec![Vec::new(); b.layers.len()];
        let hooked = b.backward_with(&exec, dy, |i, layer| {
            order.push(i);
            hooked_bits[i] = layer
                .dw
                .as_slice()
                .iter()
                .chain(&layer.db)
                .map(|v| v.to_bits())
                .collect();
        });

        assert_eq!(order, vec![1, 0], "hook must fire last layer first");
        assert_eq!(plain.as_slice(), hooked.as_slice());
        // The gradients seen by the hook are the final ones for that layer.
        for (i, layer) in a.layers.iter().enumerate() {
            let want: Vec<u32> = layer
                .dw
                .as_slice()
                .iter()
                .chain(&layer.db)
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(hooked_bits[i], want, "layer {i}");
        }
    }

    #[test]
    fn grad_len_matches_param_count_per_layer() {
        let mut rng = seeded_rng(12, 0);
        let mlp = Mlp::new(10, &[4, 2], Activation::None, &mut rng);
        let total: usize = mlp.layers.iter().map(|l| l.grad_len()).sum();
        assert_eq!(total, mlp.param_count());
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn shape_mismatch_panics() {
        let mut rng = seeded_rng(9, 0);
        let mut layer = Linear::new(4, 2, Activation::None, &mut rng);
        let _ = layer.forward(&Execution::Reference, &Matrix::zeros(3, 1));
    }
}
