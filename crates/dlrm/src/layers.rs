//! Fully-connected layers and MLP stacks.
//!
//! Two execution tiers mirror Figure 7's contrast:
//!
//! * [`Execution::Reference`] — naive single-threaded GEMMs (the
//!   functionality-first framework baseline);
//! * [`Execution::Optimized`] — thread-pool-parallel GEMM kernels from
//!   `dlrm_kernels`.
//!
//! Tensors follow the paper's `Y = W·X` convention: `W ∈ R^{K×C}`,
//! activations are `features × batch`.

use dlrm_kernels::activations::{bias_add_rows, bias_grad_rows, relu_backward, relu_forward};
use dlrm_kernels::gemm;
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::xavier_uniform;
use dlrm_tensor::Matrix;
use rand::rngs::StdRng;
use std::sync::Arc;

/// Which kernel tier to run on.
#[derive(Clone)]
pub enum Execution {
    /// Naive single-threaded kernels.
    Reference,
    /// Optimized kernels over a shared thread pool.
    Optimized(Arc<ThreadPool>),
}

impl Execution {
    /// An optimized execution with `n` worker threads.
    pub fn optimized(n: usize) -> Self {
        Execution::Optimized(Arc::new(ThreadPool::new(n)))
    }

    /// The thread pool, if optimized.
    pub fn pool(&self) -> Option<&ThreadPool> {
        match self {
            Execution::Reference => None,
            Execution::Optimized(p) => Some(p),
        }
    }

    fn gemm_nn(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Execution::Reference => gemm::gemm_nn(a, b, c),
            Execution::Optimized(p) => gemm::par_gemm_nn(p, a, b, c),
        }
    }

    fn gemm_tn(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Execution::Reference => gemm::gemm_tn(a, b, c),
            Execution::Optimized(p) => gemm::par_gemm_tn(p, a, b, c),
        }
    }

    fn gemm_nt(&self, a: &Matrix, b: &Matrix, c: &mut Matrix) {
        match self {
            Execution::Reference => gemm::gemm_nt(a, b, c),
            Execution::Optimized(p) => gemm::par_gemm_nt(p, a, b, c),
        }
    }
}

/// Activation applied after the affine transform.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Rectified linear unit.
    Relu,
    /// Identity (the logit-producing final layer).
    None,
}

/// One fully-connected layer with its gradients and saved activations.
pub struct Linear {
    /// Weights, `K×C`.
    pub w: Matrix,
    /// Bias, length `K`.
    pub b: Vec<f32>,
    /// Weight gradient of the last backward.
    pub dw: Matrix,
    /// Bias gradient of the last backward.
    pub db: Vec<f32>,
    /// Post-GEMM activation.
    pub act: Activation,
    x_saved: Option<Matrix>,
    y_saved: Option<Matrix>,
}

impl Linear {
    /// Xavier-initialized layer `C → K`.
    pub fn new(c: usize, k: usize, act: Activation, rng: &mut StdRng) -> Self {
        Linear {
            w: xavier_uniform(k, c, rng),
            b: vec![0.0; k],
            dw: Matrix::zeros(k, c),
            db: vec![0.0; k],
            act,
            x_saved: None,
            y_saved: None,
        }
    }

    /// Input features.
    pub fn in_features(&self) -> usize {
        self.w.cols()
    }

    /// Output features.
    pub fn out_features(&self) -> usize {
        self.w.rows()
    }

    /// Blocking factors for this layer at minibatch `n`.
    fn blocking(&self, n: usize) -> dlrm_tensor::Blocking {
        dlrm_tensor::Blocking::for_shape(n, self.w.cols(), self.w.rows())
    }

    /// Forward: `y = act(W·x + b)`; saves what backward needs.
    ///
    /// The optimized tier runs the blocked batch-reduce GEMM of
    /// Algorithm 5 (weights packed per call — O(K·C), amortized by the
    /// O(K·C·N) GEMM); the reference tier runs the naive kernels.
    pub fn forward(&mut self, exec: &Execution, x: &Matrix) -> Matrix {
        let (k, n) = (self.w.rows(), x.cols());
        assert_eq!(x.rows(), self.w.cols(), "Linear input feature mismatch");
        let y = match exec {
            Execution::Reference => {
                let mut y = Matrix::zeros(k, n);
                exec.gemm_nn(&self.w, x, &mut y);
                bias_add_rows(y.as_mut_slice(), k, n, &self.b);
                if self.act == Activation::Relu {
                    relu_forward(y.as_mut_slice());
                }
                y
            }
            Execution::Optimized(pool) => {
                // Bias and ReLU are fused into the GEMM epilogue while each
                // output panel is cache-hot (Section II).
                let blk = self.blocking(n);
                let wb = dlrm_tensor::BlockedWeights::pack(&self.w, blk);
                let xb = dlrm_tensor::BlockedActivations::pack(x, blk.bc, blk.bn);
                let mut yb = dlrm_tensor::BlockedActivations::zeros(k, n, blk.bk, blk.bn);
                gemm::fc_forward_fused(
                    pool,
                    &wb,
                    &xb,
                    &mut yb,
                    Some(&self.b),
                    self.act == Activation::Relu,
                );
                yb.unpack()
            }
        };
        self.x_saved = Some(x.clone());
        self.y_saved = Some(y.clone());
        y
    }

    /// Backward: consumes the gradient w.r.t. this layer's output and
    /// returns the gradient w.r.t. its input; fills `dw`/`db`.
    pub fn backward(&mut self, exec: &Execution, mut dy: Matrix) -> Matrix {
        let x = self.x_saved.as_ref().expect("backward before forward");
        let y = self.y_saved.as_ref().unwrap();
        assert_eq!(dy.shape(), y.shape(), "Linear dY shape");
        if self.act == Activation::Relu {
            relu_backward(y.as_slice(), dy.as_mut_slice());
        }
        let (k, n) = dy.shape();
        // db = row-sums of dY
        bias_grad_rows(dy.as_slice(), k, n, &mut self.db);
        match exec {
            Execution::Reference => {
                // dW = dY · Xᵀ
                self.dw.fill_zero();
                exec.gemm_nt(&dy, x, &mut self.dw);
                // dX = Wᵀ · dY
                let mut dx = Matrix::zeros(self.w.cols(), n);
                exec.gemm_tn(&self.w, &dy, &mut dx);
                dx
            }
            Execution::Optimized(pool) => {
                let blk = self.blocking(n);
                let wb = dlrm_tensor::BlockedWeights::pack(&self.w, blk);
                let xb = dlrm_tensor::BlockedActivations::pack(x, blk.bc, blk.bn);
                let dyb = dlrm_tensor::BlockedActivations::pack(&dy, blk.bk, blk.bn);
                let mut dwb = dlrm_tensor::BlockedWeights::zeros(k, self.w.cols(), blk);
                gemm::fc_backward_weights(pool, &xb, &dyb, &mut dwb);
                self.dw = dwb.unpack();
                let mut dxb =
                    dlrm_tensor::BlockedActivations::zeros(self.w.cols(), n, blk.bc, blk.bn);
                gemm::fc_backward_data(pool, &wb, &dyb, &mut dxb);
                dxb.unpack()
            }
        }
    }

    /// Elements in this layer's gradient (`dW` then `db`) — its span in a
    /// DDP flat gradient buffer.
    pub fn grad_len(&self) -> usize {
        self.dw.len() + self.db.len()
    }

    /// Plain FP32 SGD on weights and bias.
    pub fn sgd_step(&mut self, exec: &Execution, lr: f32) {
        match exec {
            Execution::Reference => {
                dlrm_kernels::sgd::sgd_step(self.w.as_mut_slice(), self.dw.as_slice(), lr)
            }
            Execution::Optimized(p) => {
                dlrm_kernels::sgd::par_sgd_step(p, self.w.as_mut_slice(), self.dw.as_slice(), lr)
            }
        }
        dlrm_kernels::sgd::sgd_step(&mut self.b, &self.db, lr);
    }
}

/// A stack of fully-connected layers (ReLU between layers; the final
/// layer's activation is configurable — identity for the logit head).
pub struct Mlp {
    /// The layers in forward order.
    pub layers: Vec<Linear>,
}

impl Mlp {
    /// Builds an MLP from `input_dim` through `sizes`, ReLU on all layers
    /// except the last, which uses `last_act`.
    pub fn new(input_dim: usize, sizes: &[usize], last_act: Activation, rng: &mut StdRng) -> Self {
        assert!(!sizes.is_empty(), "MLP needs at least one layer");
        let mut layers = Vec::with_capacity(sizes.len());
        let mut prev = input_dim;
        for (i, &s) in sizes.iter().enumerate() {
            let act = if i + 1 == sizes.len() {
                last_act
            } else {
                Activation::Relu
            };
            layers.push(Linear::new(prev, s, act, rng));
            prev = s;
        }
        Mlp { layers }
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.layers.last().unwrap().out_features()
    }

    /// Forward through all layers.
    pub fn forward(&mut self, exec: &Execution, x: &Matrix) -> Matrix {
        let mut cur = x.clone();
        for layer in &mut self.layers {
            cur = layer.forward(exec, &cur);
        }
        cur
    }

    /// Backward through all layers; returns gradient w.r.t. the input.
    pub fn backward(&mut self, exec: &Execution, dy: Matrix) -> Matrix {
        self.backward_with(exec, dy, |_, _| {})
    }

    /// [`Mlp::backward`] with a per-layer gradient hook: `on_layer(i,
    /// layer)` fires right after layer `i`'s `dw`/`db` are final, in
    /// production order (last layer first). This is the seam a DDP-style
    /// overlap schedule needs — each layer's gradient bucket can start its
    /// allreduce while earlier layers are still computing. The hook must
    /// not change the math; backward results are identical to
    /// [`Mlp::backward`].
    pub fn backward_with(
        &mut self,
        exec: &Execution,
        dy: Matrix,
        mut on_layer: impl FnMut(usize, &Linear),
    ) -> Matrix {
        let mut cur = dy;
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            cur = layer.backward(exec, cur);
            on_layer(i, layer);
        }
        cur
    }

    /// FP32 SGD on every layer.
    pub fn sgd_step(&mut self, exec: &Execution, lr: f32) {
        for layer in &mut self.layers {
            layer.sgd_step(exec, lr);
        }
    }

    /// Total parameter count (weights + biases).
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.w.len() + l.b.len()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::{seeded_rng, uniform};

    fn both_execs() -> Vec<Execution> {
        vec![Execution::Reference, Execution::optimized(3)]
    }

    #[test]
    fn forward_matches_manual_affine() {
        for exec in both_execs() {
            let mut rng = seeded_rng(1, 0);
            let mut layer = Linear::new(3, 2, Activation::None, &mut rng);
            layer.w = Matrix::from_slice(2, 3, &[1.0, 0.0, -1.0, 0.5, 0.5, 0.5]);
            layer.b = vec![1.0, -1.0];
            let x = Matrix::from_slice(3, 1, &[2.0, 4.0, 6.0]);
            let y = layer.forward(&exec, &x);
            assert_eq!(y.as_slice(), &[2.0 - 6.0 + 1.0, 6.0 - 1.0]);
        }
    }

    #[test]
    fn relu_masks_forward_and_backward() {
        let exec = Execution::Reference;
        let mut rng = seeded_rng(2, 0);
        let mut layer = Linear::new(1, 1, Activation::Relu, &mut rng);
        layer.w = Matrix::from_slice(1, 1, &[1.0]);
        layer.b = vec![0.0];
        let y = layer.forward(&exec, &Matrix::from_slice(1, 2, &[-3.0, 3.0]));
        assert_eq!(y.as_slice(), &[0.0, 3.0]);
        let dx = layer.backward(&exec, Matrix::from_slice(1, 2, &[1.0, 1.0]));
        assert_eq!(dx.as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn reference_and_optimized_agree() {
        let mut rng_a = seeded_rng(3, 0);
        let mut rng_b = seeded_rng(3, 0);
        let mut mlp_ref = Mlp::new(8, &[16, 4, 1], Activation::None, &mut rng_a);
        let mut mlp_opt = Mlp::new(8, &[16, 4, 1], Activation::None, &mut rng_b);
        let x = uniform(8, 10, -1.0, 1.0, &mut seeded_rng(4, 0));
        let opt = Execution::optimized(4);

        let y_ref = mlp_ref.forward(&Execution::Reference, &x);
        let y_opt = mlp_opt.forward(&opt, &x);
        assert_allclose(y_opt.as_slice(), y_ref.as_slice(), 1e-5, "fwd");

        let dy = uniform(1, 10, -1.0, 1.0, &mut seeded_rng(5, 0));
        let dx_ref = mlp_ref.backward(&Execution::Reference, dy.clone());
        let dx_opt = mlp_opt.backward(&opt, dy);
        assert_allclose(dx_opt.as_slice(), dx_ref.as_slice(), 1e-5, "bwd dx");
        for (a, b) in mlp_ref.layers.iter().zip(&mlp_opt.layers) {
            assert_allclose(b.dw.as_slice(), a.dw.as_slice(), 1e-5, "dw");
            assert_allclose(&b.db, &a.db, 1e-5, "db");
        }
    }

    #[test]
    fn gradient_check_linear() {
        // Finite-difference check of dW through a scalar loss L = sum(y).
        let exec = Execution::Reference;
        let mut rng = seeded_rng(6, 0);
        let mut layer = Linear::new(4, 3, Activation::Relu, &mut rng);
        let x = uniform(4, 5, -1.0, 1.0, &mut rng);

        let y = layer.forward(&exec, &x);
        let dy = Matrix::from_fn(y.rows(), y.cols(), |_, _| 1.0);
        let _ = layer.backward(&exec, dy);
        let analytic = layer.dw.clone();

        let h = 1e-3f32;
        for (r, c) in [(0usize, 0usize), (1, 2), (2, 3)] {
            let orig = layer.w[(r, c)];
            layer.w[(r, c)] = orig + h;
            let lp: f64 = layer.forward(&exec, &x).sum();
            layer.w[(r, c)] = orig - h;
            let lm: f64 = layer.forward(&exec, &x).sum();
            layer.w[(r, c)] = orig;
            let fd = ((lp - lm) / (2.0 * h as f64)) as f32;
            assert!(
                (analytic[(r, c)] - fd).abs() < 2e-2,
                "dW[{r}][{c}]: analytic {} vs fd {}",
                analytic[(r, c)],
                fd
            );
        }
    }

    #[test]
    fn sgd_reduces_simple_regression_loss() {
        let exec = Execution::Reference;
        let mut rng = seeded_rng(7, 0);
        let mut mlp = Mlp::new(2, &[8, 1], Activation::None, &mut rng);
        let x = uniform(2, 32, -1.0, 1.0, &mut rng);
        // Target: y = x0 - 2*x1.
        let target: Vec<f32> = (0..32).map(|j| x[(0, j)] - 2.0 * x[(1, j)]).collect();

        let loss = |y: &Matrix, t: &[f32]| -> f64 {
            y.as_slice()
                .iter()
                .zip(t)
                .map(|(&a, &b)| ((a - b) as f64).powi(2))
                .sum::<f64>()
        };
        let y0 = mlp.forward(&exec, &x);
        let before = loss(&y0, &target);
        for _ in 0..200 {
            let y = mlp.forward(&exec, &x);
            let dy = Matrix::from_fn(1, 32, |_, j| 2.0 * (y[(0, j)] - target[j]) / 32.0);
            let _ = mlp.backward(&exec, dy);
            mlp.sgd_step(&exec, 0.05);
        }
        let after = loss(&mlp.forward(&exec, &x), &target);
        assert!(after < before * 0.05, "loss {before} -> {after}");
    }

    #[test]
    fn param_count() {
        let mut rng = seeded_rng(8, 0);
        let mlp = Mlp::new(10, &[4, 2], Activation::None, &mut rng);
        assert_eq!(mlp.param_count(), 10 * 4 + 4 + 4 * 2 + 2);
    }

    #[test]
    fn backward_with_hook_sees_layers_in_reverse_with_final_grads() {
        let exec = Execution::Reference;
        let mut rng = seeded_rng(11, 0);
        let mut a = Mlp::new(5, &[6, 3], Activation::Relu, &mut rng);
        let mut rng = seeded_rng(11, 0);
        let mut b = Mlp::new(5, &[6, 3], Activation::Relu, &mut rng);
        let x = Matrix::from_fn(5, 4, |i, j| (i + j) as f32 * 0.1);
        let dy = Matrix::from_fn(3, 4, |i, j| (i * 3 + j) as f32 * 0.01 - 0.02);

        let _ = a.forward(&exec, &x);
        let _ = b.forward(&exec, &x);
        let plain = a.backward(&exec, dy.clone());

        let mut order = Vec::new();
        let mut hooked_bits: Vec<Vec<u32>> = vec![Vec::new(); b.layers.len()];
        let hooked = b.backward_with(&exec, dy, |i, layer| {
            order.push(i);
            hooked_bits[i] = layer
                .dw
                .as_slice()
                .iter()
                .chain(&layer.db)
                .map(|v| v.to_bits())
                .collect();
        });

        assert_eq!(order, vec![1, 0], "hook must fire last layer first");
        assert_eq!(plain.as_slice(), hooked.as_slice());
        // The gradients seen by the hook are the final ones for that layer.
        for (i, layer) in a.layers.iter().enumerate() {
            let want: Vec<u32> = layer
                .dw
                .as_slice()
                .iter()
                .chain(&layer.db)
                .map(|v| v.to_bits())
                .collect();
            assert_eq!(hooked_bits[i], want, "layer {i}");
        }
    }

    #[test]
    fn grad_len_matches_param_count_per_layer() {
        let mut rng = seeded_rng(12, 0);
        let mlp = Mlp::new(10, &[4, 2], Activation::None, &mut rng);
        let total: usize = mlp.layers.iter().map(|l| l.grad_len()).sum();
        assert_eq!(total, mlp.param_count());
    }

    #[test]
    #[should_panic(expected = "feature mismatch")]
    fn shape_mismatch_panics() {
        let mut rng = seeded_rng(9, 0);
        let mut layer = Linear::new(4, 2, Activation::None, &mut rng);
        let _ = layer.forward(&Execution::Reference, &Matrix::zeros(3, 1));
    }
}
