//! # dlrm — the paper's core contribution: an optimized DLRM trainer
//!
//! A from-scratch implementation of Facebook's Deep Learning
//! Recommendation Model (Section II) with the single-socket optimizations
//! of Section III:
//!
//! * [`layers`] — fully-connected layers and MLP stacks in the `Y = W·X`
//!   convention, with a *reference* execution tier (naive single-threaded
//!   GEMMs — the PyTorch-v1.4-like baseline of Figure 7) and an
//!   *optimized* tier (thread-pool parallel GEMM kernels).
//! * [`embedding_layer`] — the EmbeddingBag stack over `dlrm_kernels`'
//!   Algorithm 1–4 kernels, with the update strategy selectable per run.
//! * [`interaction`] — the dot-product feature interaction (pairwise dots
//!   of all sparse/dense feature vectors) and its backward pass.
//! * [`model`] — the full network: bottom MLP ∥ embeddings → interaction →
//!   top MLP → BCE loss, with a per-op [`profiler`] that produces
//!   Figure 8's Embeddings/MLP/Rest split.
//! * [`precision`] — FP32 / Split-SGD-BF16 / FP24 training modes
//!   (Section VII) via bit-accurate emulation.
//! * [`metrics`] — ROC AUC (Figure 16's metric) and log-loss.
//! * [`trainer`] — the training loop over a synthetic click log with
//!   periodic test-set evaluation.

pub mod embedding_layer;
pub mod interaction;
pub mod layers;
pub mod metrics;
pub mod model;
pub mod precision;
pub mod profiler;
pub mod trainer;

/// Convenience re-exports for examples and downstream crates.
pub mod prelude {
    pub use crate::layers::Execution;
    pub use crate::metrics::roc_auc;
    pub use crate::model::DlrmModel;
    pub use crate::precision::PrecisionMode;
    pub use crate::profiler::{OpClass, Profiler};
    pub use crate::trainer::{TrainReport, Trainer, TrainerOptions};
    pub use dlrm_kernels::embedding::UpdateStrategy;
}
