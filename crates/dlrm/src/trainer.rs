//! Training loop with periodic test-set evaluation — the driver behind the
//! Figure 16 convergence study and the quickstart example.

use crate::metrics::{log_loss, roc_auc};
use crate::model::DlrmModel;
use dlrm_data::ClickLog;

/// Options for a training run.
#[derive(Debug, Clone)]
pub struct TrainerOptions {
    /// SGD learning rate.
    pub lr: f32,
    /// Training minibatch size.
    pub batch_size: usize,
    /// Batches considered one "epoch" for reporting (Figure 16's x-axis is
    /// % of epoch).
    pub batches_per_epoch: usize,
    /// Evaluation cadence as a fraction of an epoch (Figure 16 tests every
    /// 5%).
    pub eval_every_frac: f64,
    /// Test batches per evaluation.
    pub eval_batches: usize,
}

impl Default for TrainerOptions {
    fn default() -> Self {
        TrainerOptions {
            lr: 0.1,
            batch_size: 128,
            batches_per_epoch: 200,
            eval_every_frac: 0.05,
            eval_batches: 4,
        }
    }
}

/// One evaluation row of a training run.
#[derive(Debug, Clone)]
pub struct TrainReport {
    /// Training batches consumed so far.
    pub step: usize,
    /// Fraction of the epoch completed.
    pub epoch_frac: f64,
    /// Test-set ROC AUC.
    pub auc: f64,
    /// Test-set log-loss.
    pub logloss: f64,
    /// Mean training loss since the previous report.
    pub train_loss: f64,
}

/// A model + click log + options, ready to run.
pub struct Trainer<'a> {
    /// The model being trained.
    pub model: DlrmModel,
    log: &'a ClickLog,
    opts: TrainerOptions,
}

impl<'a> Trainer<'a> {
    /// Creates a trainer; the model must have been built for `log.config()`.
    pub fn new(model: DlrmModel, log: &'a ClickLog, opts: TrainerOptions) -> Self {
        Trainer { model, log, opts }
    }

    /// Evaluates the current model on held-out batches.
    pub fn evaluate(&mut self) -> (f64, f64) {
        let mut scores = Vec::new();
        let mut labels = Vec::new();
        for b in 0..self.opts.eval_batches {
            let batch = self.log.batch(self.opts.batch_size, b as u64, 1);
            scores.extend(self.model.predict_proba(&batch));
            labels.extend_from_slice(&batch.labels);
        }
        (roc_auc(&scores, &labels), log_loss(&scores, &labels))
    }

    /// Trains for one epoch, returning the evaluation trace.
    pub fn run_epoch(&mut self) -> Vec<TrainReport> {
        let total = self.opts.batches_per_epoch;
        let eval_every = ((total as f64 * self.opts.eval_every_frac).round() as usize).max(1);
        let mut reports = Vec::new();
        let mut loss_acc = 0.0;
        let mut loss_n = 0usize;
        for step in 1..=total {
            let batch = self.log.batch(self.opts.batch_size, step as u64, 0);
            loss_acc += self.model.train_step(&batch, self.opts.lr);
            loss_n += 1;
            if step % eval_every == 0 || step == total {
                let (auc, ll) = self.evaluate();
                reports.push(TrainReport {
                    step,
                    epoch_frac: step as f64 / total as f64,
                    auc,
                    logloss: ll,
                    train_loss: loss_acc / loss_n as f64,
                });
                loss_acc = 0.0;
                loss_n = 0;
            }
        }
        reports
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::Execution;
    use crate::precision::PrecisionMode;
    use dlrm_data::{DlrmConfig, IndexDistribution};
    use dlrm_kernels::embedding::UpdateStrategy;

    fn tiny_setup() -> (DlrmConfig, ClickLog) {
        let mut cfg = DlrmConfig::small().scaled_down(64, 256);
        cfg.dense_features = 8;
        cfg.bottom_mlp = vec![16, 8];
        cfg.emb_dim = 8;
        cfg.num_tables = 2;
        cfg.table_rows = vec![48, 24];
        cfg.lookups_per_table = 2;
        cfg.top_mlp = vec![16, 1];
        let log = ClickLog::new(&cfg, IndexDistribution::Uniform, 33);
        (cfg, log)
    }

    #[test]
    fn training_improves_auc_over_untrained() {
        let (cfg, log) = tiny_setup();
        let model = DlrmModel::new(
            &cfg,
            Execution::optimized(2),
            UpdateStrategy::RaceFree,
            PrecisionMode::Fp32,
            1,
        );
        let mut trainer = Trainer::new(
            model,
            &log,
            TrainerOptions {
                lr: 0.15,
                batch_size: 64,
                batches_per_epoch: 450,
                eval_every_frac: 0.25,
                eval_batches: 6,
            },
        );
        let (auc0, _) = trainer.evaluate();
        let reports = trainer.run_epoch();
        let auc_end = reports.last().unwrap().auc;
        assert!(
            auc_end > auc0 + 0.15 && auc_end > 0.75,
            "AUC should climb well above chance: {auc0:.3} -> {auc_end:.3}"
        );
    }

    #[test]
    fn reports_cover_the_epoch() {
        let (cfg, log) = tiny_setup();
        let model = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            2,
        );
        let mut trainer = Trainer::new(
            model,
            &log,
            TrainerOptions {
                batches_per_epoch: 20,
                eval_every_frac: 0.25,
                batch_size: 16,
                eval_batches: 2,
                ..Default::default()
            },
        );
        let reports = trainer.run_epoch();
        assert_eq!(reports.len(), 4);
        assert!((reports.last().unwrap().epoch_frac - 1.0).abs() < 1e-12);
        assert!(reports.windows(2).all(|w| w[0].step < w[1].step));
    }
}
