//! The embedding-table layer: EmbeddingBag forward/backward plus the
//! selectable update strategy of Section III-A.
//!
//! All per-iteration working state — the saved batch shape, the `dW[NS][E]`
//! gradient scratch, and the [`BagPlan`] for the bucketed/planned-fused
//! paths — lives on the layer and is reused across steps: after the first
//! batch of each shape the steady-state train loop performs no embedding
//! allocations (asserted by `crates/dlrm/tests/alloc_growth.rs`).

use crate::layers::Execution;
use dlrm_kernels::embedding::{self, BagPlan, UpdateStrategy};
use dlrm_tensor::init::embedding_table;
use dlrm_tensor::Matrix;
use rand::rngs::StdRng;

/// One embedding table with its update strategy.
pub struct EmbeddingLayer {
    /// Table weights, `M×E`.
    pub weight: Matrix,
    /// Update strategy (Figure 7's four bars, plus `Bucketed`).
    pub strategy: UpdateStrategy,
    /// Fuse backward+update (skips materializing `dW[NS][E]`; only valid
    /// outside framework-autograd constraints — Section III-A). The layer
    /// uses the plan-driven fused kernel, so each thread touches only its
    /// own lookups.
    pub fused: bool,
    /// Force the framework-naive (PyTorch-v1.4-style) kernels for this
    /// table regardless of the execution tier — the Figure 7 baseline,
    /// which pairs fast (MKL-backed) MLPs with the pathological embedding
    /// path.
    pub framework_naive: bool,
    saved_indices: Vec<u32>,
    saved_offsets: Vec<usize>,
    /// Iteration-persistent `dW[NS][E]` scratch (scratch semantics: fully
    /// overwritten by `backward` before any read).
    dw: Matrix,
    /// Iteration-persistent lookup plan for the bucketed / planned-fused
    /// update paths.
    plan: BagPlan,
}

impl EmbeddingLayer {
    /// New table with DLRM's `U(-1/√M, 1/√M)` initialization.
    pub fn new(m: usize, e: usize, strategy: UpdateStrategy, rng: &mut StdRng) -> Self {
        EmbeddingLayer {
            weight: embedding_table(m, e, rng),
            strategy,
            fused: false,
            framework_naive: false,
            saved_indices: Vec::new(),
            saved_offsets: Vec::new(),
            dw: Matrix::zeros(0, e),
            plan: BagPlan::new(),
        }
    }

    /// Bytes of iteration-persistent scratch (saved batch, `dW`, plan)
    /// currently held by the layer — excludes the table weights.
    pub fn scratch_bytes(&self) -> usize {
        self.saved_indices.capacity() * std::mem::size_of::<u32>()
            + self.saved_offsets.capacity() * std::mem::size_of::<usize>()
            + self.dw.capacity() * std::mem::size_of::<f32>()
            + self.plan.scratch_bytes()
    }

    /// Rows.
    pub fn rows(&self) -> usize {
        self.weight.rows()
    }

    /// Embedding dimension.
    pub fn dim(&self) -> usize {
        self.weight.cols()
    }

    /// EmbeddingBag forward: sums the rows of each bag. Output is `N×E`.
    pub fn forward(&mut self, exec: &Execution, indices: &[u32], offsets: &[usize]) -> Matrix {
        let n = offsets.len() - 1;
        let mut out = Matrix::zeros(n, self.dim());
        match exec {
            Execution::Reference => {
                embedding::forward_reference(&self.weight, indices, offsets, &mut out)
            }
            Execution::Optimized(_) if self.framework_naive => {
                embedding::forward_reference(&self.weight, indices, offsets, &mut out)
            }
            Execution::Optimized(pool) => {
                embedding::forward(pool, &self.weight, indices, offsets, &mut out)
            }
        }
        self.set_saved_batch(indices, offsets);
        out
    }

    /// Records a batch for a later [`EmbeddingLayer::backward_update`]
    /// *without* running the forward gather. The distributed prefetch path
    /// uses this on owning ranks: the pooled outputs are computed on the
    /// data-parallel side from cached rows, but the owner still applies
    /// the canonical update and needs the batch that produced `dy`.
    pub fn set_saved_batch(&mut self, indices: &[u32], offsets: &[usize]) {
        self.saved_indices.clear();
        self.saved_indices.extend_from_slice(indices);
        self.saved_offsets.clear();
        self.saved_offsets.extend_from_slice(offsets);
    }

    /// Serial `dW[NS][E]` expansion for the framework-naive pipeline,
    /// reusing the persistent scratch.
    fn expand_dw_naive(&mut self, dy: &Matrix) {
        let ns = *self.saved_offsets.last().unwrap();
        self.dw.resize_rows(ns);
        for bag in 0..self.saved_offsets.len() - 1 {
            for s in self.saved_offsets[bag]..self.saved_offsets[bag + 1] {
                self.dw.row_mut(s).copy_from_slice(dy.row(bag));
            }
        }
    }

    /// Backward + SGD update in one call (the sparse gradient never leaves
    /// this layer). `dy` is `N×E`; `lr` the learning rate.
    pub fn backward_update(&mut self, exec: &Execution, dy: &Matrix, lr: f32) {
        let alpha = -lr;
        match exec {
            Execution::Reference => {
                // Materialize dW[NS][E] then apply the framework-naive
                // update — the "focused on functionality instead of
                // performance" kernel that made 99% of the reference
                // DLRM's runtime in the paper's profile.
                self.expand_dw_naive(dy);
                embedding::update_framework_naive(
                    &mut self.weight,
                    &self.dw,
                    &self.saved_indices,
                    alpha,
                );
            }
            Execution::Optimized(_) if self.framework_naive => {
                self.expand_dw_naive(dy);
                embedding::update_framework_naive(
                    &mut self.weight,
                    &self.dw,
                    &self.saved_indices,
                    alpha,
                );
            }
            Execution::Optimized(pool) => {
                if self.fused {
                    self.plan
                        .build(pool, &self.saved_indices, self.weight.rows());
                    self.plan.attach_bags(pool, &self.saved_offsets);
                    embedding::fused_backward_update_planned(
                        pool,
                        &mut self.weight,
                        dy,
                        &self.saved_indices,
                        &self.saved_offsets,
                        alpha,
                        &self.plan,
                    );
                } else {
                    let ns = *self.saved_offsets.last().unwrap();
                    self.dw.resize_rows(ns);
                    embedding::backward(pool, dy, &self.saved_offsets, &mut self.dw);
                    if self.strategy == UpdateStrategy::Bucketed {
                        self.plan
                            .build(pool, &self.saved_indices, self.weight.rows());
                        embedding::update_bucketed(
                            pool,
                            &mut self.weight,
                            &self.dw,
                            &self.saved_indices,
                            alpha,
                            &self.plan,
                        );
                    } else {
                        embedding::update(
                            pool,
                            self.strategy,
                            &mut self.weight,
                            &self.dw,
                            &self.saved_indices,
                            alpha,
                        );
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::seeded_rng;

    fn bags() -> (Vec<u32>, Vec<usize>) {
        (vec![0, 1, 1, 3, 2], vec![0, 2, 3, 5])
    }

    #[test]
    fn forward_sums_bag_rows() {
        let mut rng = seeded_rng(1, 0);
        let mut layer = EmbeddingLayer::new(4, 2, UpdateStrategy::RaceFree, &mut rng);
        layer.weight = Matrix::from_fn(4, 2, |r, c| (r * 10 + c) as f32);
        let (idx, off) = bags();
        let out = layer.forward(&Execution::Reference, &idx, &off);
        assert_eq!(out.row(0), &[10.0, 12.0]); // rows 0 + 1
        assert_eq!(out.row(1), &[10.0, 11.0]); // row 1
        assert_eq!(out.row(2), &[50.0, 52.0]); // rows 3 + 2
    }

    #[test]
    fn reference_and_optimized_agree_end_to_end() {
        let mut rng = seeded_rng(2, 0);
        let w0 = embedding_table(10, 4, &mut rng);
        let (idx, off) = bags();
        let dy = Matrix::from_fn(3, 4, |r, c| (r as f32 - 1.0) * 0.1 + c as f32 * 0.01);

        let run = |exec: &Execution, strategy| {
            let mut layer = EmbeddingLayer::new(10, 4, strategy, &mut seeded_rng(0, 0));
            layer.weight = w0.clone();
            let out = layer.forward(exec, &idx, &off);
            layer.backward_update(exec, &dy, 0.1);
            (out, layer.weight)
        };

        let (out_ref, w_ref) = run(&Execution::Reference, UpdateStrategy::Reference);
        for strategy in [
            UpdateStrategy::AtomicXchg,
            UpdateStrategy::Rtm,
            UpdateStrategy::RaceFree,
            UpdateStrategy::Bucketed,
        ] {
            let (out, w) = run(&Execution::optimized(4), strategy);
            assert_eq!(out.as_slice(), out_ref.as_slice(), "{strategy} fwd");
            assert_allclose(
                w.as_slice(),
                w_ref.as_slice(),
                1e-5,
                &format!("{strategy} upd"),
            );
        }
    }

    #[test]
    fn fused_matches_unfused() {
        let mut rng = seeded_rng(3, 0);
        let w0 = embedding_table(8, 3, &mut rng);
        let (idx, off) = bags();
        let dy = Matrix::from_fn(3, 3, |r, c| ((r + c) as f32) * 0.05);
        let exec = Execution::optimized(3);

        let mut unfused = EmbeddingLayer::new(8, 3, UpdateStrategy::RaceFree, &mut rng);
        unfused.weight = w0.clone();
        let _ = unfused.forward(&exec, &idx, &off);
        unfused.backward_update(&exec, &dy, 0.2);

        let mut fused = EmbeddingLayer::new(8, 3, UpdateStrategy::RaceFree, &mut rng);
        fused.weight = w0.clone();
        fused.fused = true;
        let _ = fused.forward(&exec, &idx, &off);
        fused.backward_update(&exec, &dy, 0.2);

        assert_allclose(
            fused.weight.as_slice(),
            unfused.weight.as_slice(),
            1e-6,
            "fused",
        );
    }

    #[test]
    fn scratch_stabilizes_after_first_step() {
        let mut rng = seeded_rng(5, 0);
        let exec = Execution::optimized(3);
        for (strategy, fused) in [
            (UpdateStrategy::RaceFree, false),
            (UpdateStrategy::Bucketed, false),
            (UpdateStrategy::RaceFree, true),
        ] {
            let mut layer = EmbeddingLayer::new(32, 4, strategy, &mut rng);
            layer.fused = fused;
            let (idx, off) = bags();
            let dy = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.01);
            let _ = layer.forward(&exec, &idx, &off);
            layer.backward_update(&exec, &dy, 0.1);
            let warm = layer.scratch_bytes();
            for _ in 0..4 {
                let _ = layer.forward(&exec, &idx, &off);
                layer.backward_update(&exec, &dy, 0.1);
            }
            assert_eq!(
                layer.scratch_bytes(),
                warm,
                "{strategy} fused={fused}: scratch grew after warm-up"
            );
        }
    }

    #[test]
    fn update_moves_against_gradient() {
        let mut rng = seeded_rng(4, 0);
        let mut layer = EmbeddingLayer::new(3, 2, UpdateStrategy::RaceFree, &mut rng);
        layer.weight = Matrix::zeros(3, 2);
        let exec = Execution::optimized(2);
        let _ = layer.forward(&exec, &[1], &[0, 1]);
        let dy = Matrix::from_slice(1, 2, &[1.0, -1.0]);
        layer.backward_update(&exec, &dy, 0.5);
        assert_eq!(layer.weight.row(1), &[-0.5, 0.5]);
        assert_eq!(layer.weight.row(0), &[0.0, 0.0]);
    }
}
