//! Mixed-precision training modes (Section VII).
//!
//! The model's weights always live in FP32 `Matrix` storage, but each mode
//! maintains an *invariant* on what those bits contain:
//!
//! * [`PrecisionMode::Fp32`] — plain FP32 training.
//! * [`PrecisionMode::Bf16Split`] — Split-SGD-BF16: the optimizer owns a
//!   [`SplitTensor`] whose hi plane is the BF16 model; after every update
//!   the `Matrix` is refreshed with the (BF16-truncated) model view, so the
//!   forward/backward passes see exactly what BF16 hardware would.
//! * [`PrecisionMode::Bf16Split8`] — the failed ablation: only 8 extra
//!   LSBs of optimizer state.
//! * [`PrecisionMode::Bf16Pure`] — no optimizer state at all: weights are
//!   BF16-rounded after every update (worst case).
//! * [`PrecisionMode::Fp24`] — weights kept 1-8-15-quantized (Figure 16's
//!   third curve).
//!
//! Activations stay FP32 in all modes: the paper's Figure 16 isolates the
//! *optimizer/weight-storage* precision (the MLP math used the bit-accurate
//! `vdpbf16ps` emulation, whose products are exact in FP32 — see
//! `dlrm_precision::dot`), and weight storage is where Split-SGD differs.

use dlrm_precision::bf16;
use dlrm_precision::fp16;
use dlrm_precision::fp24;
use dlrm_precision::split::{LoBits, SplitTensor};
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;
use rand::rngs::StdRng;

/// Weight-storage / optimizer precision.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PrecisionMode {
    /// Plain FP32 (the reference curve).
    Fp32,
    /// Split-SGD-BF16 with 16 LSBs of optimizer state.
    Bf16Split,
    /// Split-SGD with only 8 LSBs (paper: "not enough").
    Bf16Split8,
    /// Pure BF16 SGD, no extra state.
    Bf16Pure,
    /// FP24 (1-8-15) weights.
    Fp24,
    /// FP16 weights with *stochastic rounding* on every update — the
    /// low-precision embedding-table scheme the paper tried to replicate
    /// and could not train to state-of-the-art with plain SGD.
    Fp16Stochastic,
}

impl PrecisionMode {
    /// All modes, Figure 16 curves first.
    pub const ALL: [PrecisionMode; 6] = [
        PrecisionMode::Fp32,
        PrecisionMode::Bf16Split,
        PrecisionMode::Fp24,
        PrecisionMode::Bf16Split8,
        PrecisionMode::Bf16Pure,
        PrecisionMode::Fp16Stochastic,
    ];

    /// Does this mode keep Split-SGD state?
    pub fn split_lo_bits(self) -> Option<LoBits> {
        match self {
            PrecisionMode::Bf16Split => Some(LoBits::Sixteen),
            PrecisionMode::Bf16Split8 => Some(LoBits::Eight),
            _ => None,
        }
    }

    /// Quantizer applied to a weight after a stateless update.
    fn quantize(self, x: f32, rng: Option<&mut StdRng>) -> f32 {
        match self {
            PrecisionMode::Fp32 => x,
            PrecisionMode::Fp24 => fp24::quantize_f32(x),
            PrecisionMode::Bf16Pure => bf16::quantize_f32(x),
            PrecisionMode::Fp16Stochastic => {
                fp16::quantize_f32_stochastic(x, rng.expect("fp16 mode needs an rng"))
            }
            // Split modes never use this path.
            PrecisionMode::Bf16Split | PrecisionMode::Bf16Split8 => unreachable!(),
        }
    }

    /// Quantizes an entire freshly-initialized tensor to the mode's storage
    /// format (establishing the invariant).
    pub fn quantize_init(self, w: &mut Matrix) {
        match self {
            PrecisionMode::Fp32 => {}
            PrecisionMode::Bf16Split | PrecisionMode::Bf16Split8 | PrecisionMode::Bf16Pure => {
                for x in w.as_mut_slice() {
                    // Truncation matches the split storage's model view.
                    *x = f32::from_bits(x.to_bits() & 0xFFFF_0000);
                }
            }
            PrecisionMode::Fp24 => {
                for x in w.as_mut_slice() {
                    *x = fp24::quantize_f32(*x);
                }
            }
            PrecisionMode::Fp16Stochastic => {
                for x in w.as_mut_slice() {
                    *x = fp16::quantize_f32(*x);
                }
            }
        }
    }
}

impl std::fmt::Display for PrecisionMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            PrecisionMode::Fp32 => "FP32 (Ref)",
            PrecisionMode::Bf16Split => "BF16 (SplitSGD)",
            PrecisionMode::Bf16Split8 => "BF16 (SplitSGD, 8 LSBs)",
            PrecisionMode::Bf16Pure => "BF16 (no state)",
            PrecisionMode::Fp24 => "FP24 (1-8-15)",
            PrecisionMode::Fp16Stochastic => "FP16 (stochastic)",
        };
        f.write_str(s)
    }
}

/// Optimizer state for one FP32-Matrix-backed parameter tensor.
pub struct ParamOptimizer {
    mode: PrecisionMode,
    split: Option<SplitTensor>,
    /// RNG for stochastic rounding modes.
    rng: Option<StdRng>,
}

impl ParamOptimizer {
    /// Builds state for `w` (which is quantized in place to establish the
    /// storage invariant).
    pub fn new(mode: PrecisionMode, w: &mut Matrix) -> Self {
        let split = mode.split_lo_bits().map(|lo| {
            let t = SplitTensor::from_f32(w.as_slice(), lo);
            // Model view = truncated hi plane.
            for (x, v) in w.as_mut_slice().iter_mut().zip(t.to_f32_model()) {
                *x = v;
            }
            t
        });
        if split.is_none() {
            mode.quantize_init(w);
        }
        let rng =
            (mode == PrecisionMode::Fp16Stochastic).then(|| seeded_rng(0x570C, w.len() as u64));
        ParamOptimizer { mode, split, rng }
    }

    /// Dense SGD step: updates the master state and refreshes `w`'s model
    /// view.
    pub fn step(&mut self, w: &mut Matrix, grad: &Matrix, lr: f32) {
        assert_eq!(w.shape(), grad.shape(), "optimizer shape mismatch");
        match &mut self.split {
            Some(state) => {
                state.sgd_step(grad.as_slice(), lr);
                for (i, x) in w.as_mut_slice().iter_mut().enumerate() {
                    *x = state.model_value(i);
                }
            }
            None => {
                for (x, &g) in w.as_mut_slice().iter_mut().zip(grad.as_slice()) {
                    *x = self.mode.quantize(*x - lr * g, self.rng.as_mut());
                }
            }
        }
    }

    /// Sparse row update for embedding tables: applies `grad_row` to `row`
    /// of the `rows × cols` tensor backing `w`.
    pub fn step_row(&mut self, w: &mut Matrix, row: usize, grad_row: &[f32], lr: f32) {
        let cols = w.cols();
        assert_eq!(grad_row.len(), cols);
        match &mut self.split {
            Some(state) => {
                state.sgd_step_row(row, cols, grad_row, lr);
                for (j, x) in w.row_mut(row).iter_mut().enumerate() {
                    *x = state.model_value(row * cols + j);
                }
            }
            None => {
                for (x, &g) in w.row_mut(row).iter_mut().zip(grad_row) {
                    *x = self.mode.quantize(*x - lr * g, self.rng.as_mut());
                }
            }
        }
    }

    /// Extra optimizer-state bytes beyond the FP32 weights (Split modes
    /// replace the FP32 tensor entirely; this reports their LSB plane).
    pub fn state_bytes(&self) -> usize {
        match &self.split {
            Some(t) => t.nbytes().saturating_sub(2 * t.len()), // lo plane only
            None => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::init::{seeded_rng, uniform};

    #[test]
    fn fp32_step_is_plain_sgd() {
        let mut w = Matrix::from_slice(1, 2, &[1.0, -1.0]);
        let mut opt = ParamOptimizer::new(PrecisionMode::Fp32, &mut w);
        let g = Matrix::from_slice(1, 2, &[0.5, 0.5]);
        opt.step(&mut w, &g, 0.1);
        assert_eq!(w.as_slice(), &[0.95, -1.05]);
    }

    #[test]
    fn split_mode_weights_are_valid_bf16() {
        let mut rng = seeded_rng(1, 0);
        let mut w = uniform(4, 4, -1.0, 1.0, &mut rng);
        let mut opt = ParamOptimizer::new(PrecisionMode::Bf16Split, &mut w);
        let g = uniform(4, 4, -0.1, 0.1, &mut rng);
        for _ in 0..10 {
            opt.step(&mut w, &g, 0.05);
            for &x in w.as_slice() {
                assert_eq!(x.to_bits() & 0xFFFF, 0, "weight {x} is not bf16");
            }
        }
    }

    #[test]
    fn split_master_matches_fp32_master_exactly() {
        // The Split-SGD guarantee: the *reconstructed* master weights equal
        // plain FP32 SGD on the original (full-precision) initial weights —
        // the hi/lo planes together lose nothing.
        let mut rng = seeded_rng(2, 0);
        let init = uniform(2, 8, -1.0, 1.0, &mut rng);
        let g = uniform(2, 8, -0.2, 0.2, &mut rng);

        let mut w_split = init.clone();
        let mut opt = ParamOptimizer::new(PrecisionMode::Bf16Split, &mut w_split);
        let mut w_fp32: Vec<f32> = init.as_slice().to_vec();
        for _ in 0..50 {
            opt.step(&mut w_split, &g, 0.03);
            for (x, &gv) in w_fp32.iter_mut().zip(g.as_slice()) {
                *x -= 0.03 * gv;
            }
        }
        let master = opt.split.as_ref().unwrap().to_f32_full();
        assert_eq!(master, w_fp32);
    }

    #[test]
    fn fp24_weights_stay_quantized() {
        let mut rng = seeded_rng(3, 0);
        let mut w = uniform(3, 3, -1.0, 1.0, &mut rng);
        let mut opt = ParamOptimizer::new(PrecisionMode::Fp24, &mut w);
        let g = uniform(3, 3, -0.1, 0.1, &mut rng);
        opt.step(&mut w, &g, 0.1);
        for &x in w.as_slice() {
            assert_eq!(x.to_bits() & 0xFF, 0, "weight {x} is not fp24");
        }
    }

    #[test]
    fn pure_bf16_loses_tiny_updates_but_split_does_not() {
        let mut w_pure = Matrix::from_slice(1, 1, &[1.0]);
        let mut opt_pure = ParamOptimizer::new(PrecisionMode::Bf16Pure, &mut w_pure);
        let mut w_split = Matrix::from_slice(1, 1, &[1.0]);
        let mut opt_split = ParamOptimizer::new(PrecisionMode::Bf16Split, &mut w_split);
        let g = Matrix::from_slice(1, 1, &[2.0f32.powi(-12)]);
        for _ in 0..2048 {
            opt_pure.step(&mut w_pure, &g, 1.0);
            opt_split.step(&mut w_split, &g, 1.0);
        }
        assert_eq!(w_pure.as_slice()[0], 1.0, "bf16 swallows 2^-12 steps");
        assert!(w_split.as_slice()[0] < 1.0, "split accumulates them");
    }

    #[test]
    fn row_step_touches_only_that_row() {
        let mut w = Matrix::from_fn(3, 2, |_, _| 1.0);
        let mut opt = ParamOptimizer::new(PrecisionMode::Bf16Split, &mut w);
        opt.step_row(&mut w, 1, &[1.0, 2.0], 0.25);
        assert_eq!(w.row(0), &[1.0, 1.0]);
        assert_eq!(w.row(2), &[1.0, 1.0]);
        assert!((w[(1, 0)] - 0.75).abs() < 1e-2);
        assert!((w[(1, 1)] - 0.5).abs() < 1e-2);
    }

    #[test]
    fn fp16_stochastic_weights_stay_on_grid_and_are_unbiased() {
        let mut w = Matrix::from_slice(1, 1, &[1.0]);
        let mut opt = ParamOptimizer::new(PrecisionMode::Fp16Stochastic, &mut w);
        // Repeated sub-ULP updates: RNE would freeze the weight; stochastic
        // rounding lets it drift at the right *rate* in expectation.
        let g = Matrix::from_slice(1, 1, &[2.0f32.powi(-13)]); // 1/8 ULP at 1.0
        for _ in 0..4000 {
            opt.step(&mut w, &g, 1.0);
            let x = w.as_slice()[0];
            assert_eq!(
                dlrm_precision::fp16::quantize_f32(x),
                x,
                "weight must stay on the fp16 grid"
            );
        }
        let expected = 1.0 - 4000.0 * 2.0f64.powi(-13);
        let got = w.as_slice()[0] as f64;
        assert!(
            (got - expected).abs() < 0.1 * (1.0 - expected).abs(),
            "drift {got} vs expected {expected}"
        );
    }

    #[test]
    fn state_bytes_accounting() {
        let mut w = Matrix::zeros(10, 10);
        let split = ParamOptimizer::new(PrecisionMode::Bf16Split, &mut w);
        assert_eq!(split.state_bytes(), 200); // 100 u16 LSBs
        let mut w2 = Matrix::zeros(10, 10);
        let fp32 = ParamOptimizer::new(PrecisionMode::Fp32, &mut w2);
        assert_eq!(fp32.state_bytes(), 0);
    }
}
