//! The dot-product feature interaction.
//!
//! The bottom-MLP output and the `S` embedding-bag outputs give `f = S+1`
//! feature vectors of length `E` per sample. The interaction emits the
//! bottom output itself (E values) concatenated with the strictly-lower
//! triangle of the `f×f` Gram matrix (`f(f−1)/2` pairwise dots) — "a self
//! dot product ... which translates to a batched matrix-matrix
//! multiplication as a key kernel" (Section II).

use crate::layers::Execution;
use dlrm_tensor::Matrix;

/// The interaction operator with its saved forward inputs.
pub struct Interaction {
    /// Embedding dimension `E`.
    pub emb_dim: usize,
    /// Saved feature vectors: `f` matrices of shape `N×E` (index 0 is the
    /// transposed bottom output).
    saved: Vec<Matrix>,
}

/// Number of output features for `f` vectors of dim `e`.
pub fn output_dim(num_vectors: usize, e: usize) -> usize {
    e + num_vectors * (num_vectors - 1) / 2
}

impl Interaction {
    /// New interaction for embedding dimension `e`.
    pub fn new(e: usize) -> Self {
        Interaction {
            emb_dim: e,
            saved: Vec::new(),
        }
    }

    /// Forward: `bottom` is `E×N` (MLP convention), `tables` are `N×E`
    /// (embedding convention). Returns `D×N` for the top MLP.
    pub fn forward(&mut self, exec: &Execution, bottom: &Matrix, tables: &[Matrix]) -> Matrix {
        let e = self.emb_dim;
        let n = bottom.cols();
        assert_eq!(bottom.rows(), e, "bottom output must have E features");
        for t in tables {
            assert_eq!(t.shape(), (n, e), "table output shape");
        }
        let f = tables.len() + 1;
        let d = output_dim(f, e);

        // Gather all vectors as N×E (bottom transposed once).
        let mut vecs = Vec::with_capacity(f);
        vecs.push(bottom.transposed());
        for t in tables {
            vecs.push(t.clone());
        }

        let mut out = Matrix::zeros(d, n);
        let compute_sample = |out_col: &mut dyn FnMut(usize, f32), s: usize| {
            // Passthrough of the bottom vector.
            #[allow(clippy::needless_range_loop)] // k maps output row -> feature
            for k in 0..e {
                out_col(k, vecs[0][(s, k)]);
            }
            // Lower-triangular pairwise dots.
            let mut row = e;
            #[allow(clippy::needless_range_loop)] // (i, j) are pair indices
            for i in 1..f {
                let vi = vecs[i].row(s);
                for j in 0..i {
                    let vj = vecs[j].row(s);
                    let dot: f32 = vi.iter().zip(vj).map(|(&a, &b)| a * b).sum();
                    out_col(row, dot);
                    row += 1;
                }
            }
        };

        match exec.pool() {
            None => {
                for s in 0..n {
                    compute_sample(&mut |r, v| out[(r, s)] = v, s);
                }
            }
            Some(pool) => {
                let base = SendPtr(out.as_mut_slice().as_mut_ptr());
                pool.parallel_for(n, |_tid, range| {
                    for s in range {
                        // SAFETY: sample columns are disjoint across threads.
                        compute_sample(&mut |r, v| unsafe { *base.get().add(r * n + s) = v }, s);
                    }
                });
            }
        }
        self.saved = vecs;
        out
    }

    /// Backward: returns `(d_bottom: E×N, d_tables: Vec<N×E>)`.
    pub fn backward(&self, dout: &Matrix) -> (Matrix, Vec<Matrix>) {
        let e = self.emb_dim;
        let f = self.saved.len();
        assert!(f >= 1, "backward before forward");
        let n = self.saved[0].rows();
        assert_eq!(dout.shape(), (output_dim(f, e), n), "dout shape");

        // Accumulate gradients as N×E per vector.
        let mut grads: Vec<Matrix> = (0..f).map(|_| Matrix::zeros(n, e)).collect();
        for s in 0..n {
            // Passthrough part.
            for k in 0..e {
                grads[0][(s, k)] += dout[(k, s)];
            }
            // Pairwise dots: d(vi·vj) flows vj into vi and vi into vj.
            let mut row = e;
            for i in 1..f {
                for j in 0..i {
                    let g = dout[(row, s)];
                    row += 1;
                    if g == 0.0 {
                        continue;
                    }
                    for k in 0..e {
                        let vik = self.saved[i][(s, k)];
                        let vjk = self.saved[j][(s, k)];
                        grads[i][(s, k)] += g * vjk;
                        grads[j][(s, k)] += g * vik;
                    }
                }
            }
        }
        let d_bottom = grads.remove(0).transposed(); // back to E×N
        (d_bottom, grads)
    }
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}
impl SendPtr {
    #[inline]
    fn get(self) -> *mut f32 {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::assert_allclose;
    use dlrm_tensor::init::{seeded_rng, uniform};

    #[test]
    fn output_dim_formula() {
        assert_eq!(output_dim(9, 64), 64 + 36); // Small config: S=8
        assert_eq!(output_dim(1, 4), 4); // no tables: passthrough only
    }

    #[test]
    fn forward_known_values() {
        let mut inter = Interaction::new(2);
        // One sample; bottom = [1, 2]; one table vector [3, 4].
        let bottom = Matrix::from_slice(2, 1, &[1.0, 2.0]);
        let table = Matrix::from_slice(1, 2, &[3.0, 4.0]);
        let out = inter.forward(&Execution::Reference, &bottom, &[table]);
        assert_eq!(out.shape(), (3, 1));
        assert_eq!(out.as_slice(), &[1.0, 2.0, 11.0]); // dot = 3 + 8
    }

    #[test]
    fn parallel_matches_serial() {
        let mut rng = seeded_rng(1, 0);
        let (e, n, s) = (8, 13, 5);
        let bottom = uniform(e, n, -1.0, 1.0, &mut rng);
        let tables: Vec<Matrix> = (0..s).map(|_| uniform(n, e, -1.0, 1.0, &mut rng)).collect();

        let mut serial = Interaction::new(e);
        let y1 = serial.forward(&Execution::Reference, &bottom, &tables);
        let mut parallel = Interaction::new(e);
        let y2 = parallel.forward(&Execution::optimized(4), &bottom, &tables);
        assert_eq!(y1.as_slice(), y2.as_slice());
    }

    #[test]
    fn gradient_check() {
        let mut rng = seeded_rng(2, 0);
        let (e, n) = (3, 4);
        let bottom = uniform(e, n, -1.0, 1.0, &mut rng);
        let tables: Vec<Matrix> = (0..2).map(|_| uniform(n, e, -1.0, 1.0, &mut rng)).collect();

        let mut inter = Interaction::new(e);
        let out = inter.forward(&Execution::Reference, &bottom, &tables);
        // Loss = sum of outputs; dOut = ones.
        let dout = Matrix::from_fn(out.rows(), out.cols(), |_, _| 1.0);
        let (d_bottom, d_tables) = inter.backward(&dout);

        let h = 1e-3f32;
        let loss = |b: &Matrix, ts: &[Matrix]| -> f64 {
            let mut i2 = Interaction::new(e);
            i2.forward(&Execution::Reference, b, ts).sum()
        };
        // Check a few bottom entries.
        for (r, c) in [(0usize, 0usize), (2, 3)] {
            let mut b2 = bottom.clone();
            b2[(r, c)] += h;
            let lp = loss(&b2, &tables);
            b2[(r, c)] -= 2.0 * h;
            let lm = loss(&b2, &tables);
            let fd = ((lp - lm) / (2.0 * h as f64)) as f32;
            assert!(
                (d_bottom[(r, c)] - fd).abs() < 2e-2,
                "d_bottom[{r}][{c}] {} vs {}",
                d_bottom[(r, c)],
                fd
            );
        }
        // Check a table entry.
        let mut t2 = tables.to_vec();
        let orig = t2[1][(2, 1)];
        t2[1][(2, 1)] = orig + h;
        let lp = loss(&bottom, &t2);
        t2[1][(2, 1)] = orig - h;
        let lm = loss(&bottom, &t2);
        let fd = ((lp - lm) / (2.0 * h as f64)) as f32;
        assert!(
            (d_tables[1][(2, 1)] - fd).abs() < 2e-2,
            "d_table {} vs {}",
            d_tables[1][(2, 1)],
            fd
        );
    }

    #[test]
    fn backward_passthrough_only_when_no_tables() {
        let mut rng = seeded_rng(3, 0);
        let bottom = uniform(4, 3, -1.0, 1.0, &mut rng);
        let mut inter = Interaction::new(4);
        let out = inter.forward(&Execution::Reference, &bottom, &[]);
        assert_eq!(out.as_slice(), bottom.as_slice());
        let dout = uniform(4, 3, -1.0, 1.0, &mut rng);
        let (d_bottom, d_tables) = inter.backward(&dout);
        assert!(d_tables.is_empty());
        assert_allclose(d_bottom.as_slice(), dout.as_slice(), 1e-6, "passthrough");
    }
}
