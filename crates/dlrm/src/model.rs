//! The full DLRM network (Figure 1): bottom MLP ∥ embedding tables →
//! dot-product interaction → top MLP → BCE loss.

use crate::embedding_layer::EmbeddingLayer;
use crate::interaction::Interaction;
use crate::layers::{Activation, Execution, Mlp};
use crate::precision::{ParamOptimizer, PrecisionMode};
use crate::profiler::{OpClass, Profiler};
use dlrm_data::{DlrmConfig, MiniBatch};
use dlrm_kernels::embedding::UpdateStrategy;
use dlrm_kernels::loss::{bce_with_logits_backward, bce_with_logits_loss};
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;

/// A trainable DLRM instance.
pub struct DlrmModel {
    /// The configuration this model was built from.
    pub cfg: DlrmConfig,
    /// Kernel tier.
    pub exec: Execution,
    /// Weight-storage precision.
    pub precision: PrecisionMode,
    /// Bottom (dense-feature) MLP; output dim = `cfg.emb_dim`.
    pub bottom: Mlp,
    /// Embedding tables.
    pub tables: Vec<EmbeddingLayer>,
    /// Interaction op.
    pub interaction: Interaction,
    /// Top MLP ending in the 1-unit logit layer.
    pub top: Mlp,
    /// Per-op-class profiler (Figure 8).
    pub profiler: Profiler,
    /// Per-Linear optimizers (bottom layers then top layers), for non-FP32
    /// modes.
    mlp_opts: Vec<ParamOptimizer>,
    /// Per-table optimizers, for non-FP32 modes.
    emb_opts: Vec<ParamOptimizer>,
}

impl DlrmModel {
    /// RNG stream id of the bottom MLP.
    pub const BOTTOM_STREAM: u64 = 0xB0770;
    /// RNG stream id of the top MLP.
    pub const TOP_STREAM: u64 = 0x70F;
    /// RNG stream id base for table `t` (stream = base + t).
    pub const TABLE_STREAM: u64 = 0x7AB_0000;

    /// Builds table `t` of `cfg` exactly as [`DlrmModel::new`] would —
    /// exposed so model-parallel ranks can construct only their tables.
    pub fn build_table(
        cfg: &DlrmConfig,
        t: usize,
        strategy: UpdateStrategy,
        seed: u64,
    ) -> EmbeddingLayer {
        EmbeddingLayer::new(
            cfg.table_rows[t] as usize,
            cfg.emb_dim,
            strategy,
            &mut seeded_rng(seed, Self::TABLE_STREAM + t as u64),
        )
    }

    /// Builds a model for `cfg`. All randomness comes from `seed`, with an
    /// independent stream per component (bottom MLP, each table, top MLP)
    /// so a distributed instance can reconstruct exactly the same weights
    /// for whichever components a rank owns.
    pub fn new(
        cfg: &DlrmConfig,
        exec: Execution,
        strategy: UpdateStrategy,
        precision: PrecisionMode,
        seed: u64,
    ) -> Self {
        let mut bottom = Mlp::new(
            cfg.dense_features,
            &cfg.bottom_mlp,
            Activation::Relu,
            &mut seeded_rng(seed, Self::BOTTOM_STREAM),
        );
        assert_eq!(
            bottom.out_features(),
            cfg.emb_dim,
            "bottom MLP must project to the embedding dimension"
        );
        let mut tables: Vec<EmbeddingLayer> = (0..cfg.num_tables)
            .map(|t| Self::build_table(cfg, t, strategy, seed))
            .collect();
        let mut top = Mlp::new(
            cfg.interaction_output_dim(),
            &cfg.top_mlp,
            Activation::None,
            &mut seeded_rng(seed, Self::TOP_STREAM),
        );

        let (mlp_opts, emb_opts) = if precision == PrecisionMode::Fp32 {
            (Vec::new(), Vec::new())
        } else {
            let mut mlp_opts = Vec::new();
            for layer in bottom.layers.iter_mut().chain(top.layers.iter_mut()) {
                mlp_opts.push(ParamOptimizer::new(precision, &mut layer.w));
            }
            let emb_opts = tables
                .iter_mut()
                .map(|t| ParamOptimizer::new(precision, &mut t.weight))
                .collect();
            (mlp_opts, emb_opts)
        };

        DlrmModel {
            interaction: Interaction::new(cfg.emb_dim),
            cfg: cfg.clone(),
            exec,
            precision,
            bottom,
            tables,
            top,
            profiler: Profiler::new(),
            mlp_opts,
            emb_opts,
        }
    }

    /// Forward pass; returns the per-sample logits.
    pub fn forward(&mut self, batch: &MiniBatch) -> Vec<f32> {
        let exec = self.exec.clone();
        let z0 = self
            .profiler
            .time(OpClass::Mlp, || self.bottom.forward(&exec, &batch.dense));
        let table_outs: Vec<Matrix> = self.profiler.time(OpClass::Embeddings, || {
            self.tables
                .iter_mut()
                .enumerate()
                .map(|(t, layer)| layer.forward(&exec, &batch.indices[t], &batch.offsets[t]))
                .collect()
        });
        let inter = self.profiler.time(OpClass::Rest, || {
            self.interaction.forward(&exec, &z0, &table_outs)
        });
        let logits = self
            .profiler
            .time(OpClass::Mlp, || self.top.forward(&exec, &inter));
        debug_assert_eq!(logits.rows(), 1);
        logits.as_slice().to_vec()
    }

    /// Forward + predicted click probabilities.
    pub fn predict_proba(&mut self, batch: &MiniBatch) -> Vec<f32> {
        self.forward(batch)
            .into_iter()
            .map(dlrm_kernels::activations::sigmoid)
            .collect()
    }

    /// One full training iteration (forward, loss, backward, update).
    /// Returns the minibatch loss.
    pub fn train_step(&mut self, batch: &MiniBatch, lr: f32) -> f64 {
        let exec = self.exec.clone();
        let n = batch.batch_size();
        let logits = self.forward(batch);

        // Loss + gradient w.r.t. logits.
        let (loss, dlogits) = self.profiler.time(OpClass::Rest, || {
            let loss = bce_with_logits_loss(&logits, &batch.labels);
            let mut g = vec![0.0f32; n];
            bce_with_logits_backward(&logits, &batch.labels, &mut g);
            (loss, Matrix::from_slice(1, n, &g))
        });

        // Top MLP backward.
        let d_inter = self
            .profiler
            .time(OpClass::Mlp, || self.top.backward(&exec, dlogits));

        // Interaction backward.
        let (d_bottom, d_tables) = self
            .profiler
            .time(OpClass::Rest, || self.interaction.backward(&d_inter));

        // Embedding backward + update.
        self.profiler.time(OpClass::Embeddings, || {
            if self.precision == PrecisionMode::Fp32 {
                for (t, layer) in self.tables.iter_mut().enumerate() {
                    let _ = t;
                    layer.backward_update(&exec, &d_tables[t], lr);
                }
            } else {
                // Precision path: per-lookup sparse rows through the
                // mode's optimizer (deterministic index-list order).
                for (t, layer) in self.tables.iter_mut().enumerate() {
                    let opt = &mut self.emb_opts[t];
                    let offsets = &batch.offsets[t];
                    let indices = &batch.indices[t];
                    for bag in 0..n {
                        let grad = d_tables[t].row(bag);
                        #[allow(clippy::needless_range_loop)] // CSR bag walk
                        for s in offsets[bag]..offsets[bag + 1] {
                            opt.step_row(&mut layer.weight, indices[s] as usize, grad, lr);
                        }
                    }
                }
            }
        });

        // Bottom MLP backward.
        let _ = self
            .profiler
            .time(OpClass::Mlp, || self.bottom.backward(&exec, d_bottom));

        // Dense parameter update.
        self.profiler.time(OpClass::Mlp, || {
            if self.precision == PrecisionMode::Fp32 {
                self.bottom.sgd_step(&exec, lr);
                self.top.sgd_step(&exec, lr);
            } else {
                for (layer, opt) in self
                    .bottom
                    .layers
                    .iter_mut()
                    .chain(self.top.layers.iter_mut())
                    .zip(self.mlp_opts.iter_mut())
                {
                    // The precision optimizers mutate the flat weights, so
                    // bracket them with the packed-plan seam: flat must be
                    // current going in, and the packed copy must be dropped
                    // (re-packed on next use) going out.
                    layer.sync_flat_weights();
                    opt.step(&mut layer.w, &layer.dw, lr);
                    layer.invalidate_packed();
                    // Biases stay FP32 (negligible storage; matches the
                    // paper's weight-focused scheme).
                    dlrm_kernels::sgd::sgd_step(&mut layer.b, &layer.db, lr);
                }
            }
        });

        self.profiler.end_iteration();
        loss
    }

    /// Total parameter count (MLPs + tables).
    pub fn param_count(&self) -> usize {
        self.bottom.param_count()
            + self.top.param_count()
            + self.tables.iter().map(|t| t.weight.len()).sum::<usize>()
    }

    /// Bytes of iteration-persistent embedding scratch (saved batches,
    /// `dW` buffers, bag plans) across all tables. Constant after the
    /// first step of a fixed batch shape — see
    /// `crates/dlrm/tests/alloc_growth.rs`.
    pub fn embedding_scratch_bytes(&self) -> usize {
        self.tables.iter().map(|t| t.scratch_bytes()).sum()
    }

    /// Bytes of persistent MLP execution-plan scratch (packed weights,
    /// blocked gradient scratch, activation residency) across both MLPs.
    /// Grow-only, constant after the first step of a fixed batch shape.
    pub fn mlp_scratch_bytes(&self) -> usize {
        self.bottom.scratch_bytes() + self.top.scratch_bytes()
    }

    /// Copies any blocked-SGD updates back into the flat weight mirrors of
    /// both MLPs — required before reading `layer.w` directly (parameter
    /// fingerprints, checkpoints) after optimized training.
    pub fn sync_flat_weights(&mut self) {
        self.bottom.sync_flat_weights();
        self.top.sync_flat_weights();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_data::IndexDistribution;

    fn tiny_cfg() -> DlrmConfig {
        let mut cfg = DlrmConfig::small().scaled_down(64, 256);
        // Shrink the MLPs so tests are fast.
        cfg.dense_features = 16;
        cfg.bottom_mlp = vec![16, 8];
        cfg.emb_dim = 8;
        cfg.num_tables = 3;
        cfg.table_rows = vec![64, 32, 16];
        cfg.lookups_per_table = 2;
        cfg.top_mlp = vec![16, 1];
        cfg
    }

    fn tiny_batch(cfg: &DlrmConfig, n: usize, seed: u64) -> MiniBatch {
        MiniBatch::random(cfg, n, IndexDistribution::Uniform, &mut seeded_rng(seed, 9))
    }

    #[test]
    fn forward_shapes_and_determinism() {
        let cfg = tiny_cfg();
        let batch = tiny_batch(&cfg, 12, 1);
        let mut m1 = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            42,
        );
        let mut m2 = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            42,
        );
        let l1 = m1.forward(&batch);
        let l2 = m2.forward(&batch);
        assert_eq!(l1.len(), 12);
        assert_eq!(l1, l2, "same seed => identical model");
    }

    #[test]
    fn reference_and_optimized_train_identically_modulo_fp() {
        let cfg = tiny_cfg();
        let mut m_ref = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            7,
        );
        let mut m_opt = DlrmModel::new(
            &cfg,
            Execution::optimized(4),
            UpdateStrategy::RaceFree,
            PrecisionMode::Fp32,
            7,
        );
        for step in 0..5 {
            let batch = tiny_batch(&cfg, 16, 100 + step);
            let l_ref = m_ref.train_step(&batch, 0.05);
            let l_opt = m_opt.train_step(&batch, 0.05);
            assert!(
                (l_ref - l_opt).abs() < 1e-4,
                "step {step}: {l_ref} vs {l_opt}"
            );
        }
    }

    #[test]
    fn training_reduces_loss_on_fixed_batch() {
        let cfg = tiny_cfg();
        let batch = tiny_batch(&cfg, 64, 3);
        let mut model = DlrmModel::new(
            &cfg,
            Execution::optimized(2),
            UpdateStrategy::RaceFree,
            PrecisionMode::Fp32,
            11,
        );
        let first = model.train_step(&batch, 0.2);
        let mut last = first;
        for _ in 0..60 {
            last = model.train_step(&batch, 0.2);
        }
        assert!(
            last < first * 0.7,
            "overfitting a fixed batch must reduce loss: {first} -> {last}"
        );
    }

    #[test]
    fn profiler_buckets_populate() {
        let cfg = tiny_cfg();
        let batch = tiny_batch(&cfg, 8, 5);
        let mut model = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            1,
        );
        let _ = model.train_step(&batch, 0.1);
        assert_eq!(model.profiler.iterations(), 1);
        let (e, m, r) = model.profiler.fractions();
        assert!(e > 0.0 && m > 0.0 && r > 0.0, "({e}, {m}, {r})");
    }

    #[test]
    fn bf16_split_trains_close_to_fp32() {
        let cfg = tiny_cfg();
        let mut fp32 = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            21,
        );
        let mut split = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Bf16Split,
            21,
        );
        let mut l_fp32 = 0.0;
        let mut l_split = 0.0;
        for step in 0..20 {
            let batch = tiny_batch(&cfg, 32, 500 + step);
            l_fp32 = fp32.train_step(&batch, 0.1);
            l_split = split.train_step(&batch, 0.1);
        }
        assert!(
            (l_fp32 - l_split).abs() < 0.05,
            "bf16-split loss {l_split} vs fp32 {l_split}: diverged from {l_fp32}"
        );
    }

    #[test]
    fn bf16_split_weights_stay_bf16() {
        let cfg = tiny_cfg();
        let mut model = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Bf16Split,
            5,
        );
        let batch = tiny_batch(&cfg, 16, 6);
        let _ = model.train_step(&batch, 0.1);
        for layer in model.bottom.layers.iter().chain(model.top.layers.iter()) {
            for &x in layer.w.as_slice() {
                assert_eq!(x.to_bits() & 0xFFFF, 0, "MLP weight not bf16");
            }
        }
        for t in &model.tables {
            for &x in t.weight.as_slice() {
                assert_eq!(x.to_bits() & 0xFFFF, 0, "table weight not bf16");
            }
        }
    }

    #[test]
    fn param_count_matches_config() {
        let cfg = tiny_cfg();
        let model = DlrmModel::new(
            &cfg,
            Execution::Reference,
            UpdateStrategy::Reference,
            PrecisionMode::Fp32,
            0,
        );
        let table_params: usize = cfg
            .table_rows
            .iter()
            .map(|&m| m as usize * cfg.emb_dim)
            .sum();
        assert_eq!(
            model.param_count(),
            model.bottom.param_count() + model.top.param_count() + table_params
        );
    }
}
