//! Evaluation metrics: ROC AUC (Figure 16's y-axis) and log-loss.

/// ROC AUC via the Mann–Whitney U statistic with average ranks for ties.
///
/// `labels` are `{0.0, 1.0}`. Returns 0.5 for degenerate inputs (a single
/// class present).
pub fn roc_auc(scores: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(scores.len(), labels.len(), "roc_auc length mismatch");
    let n = scores.len();
    let n_pos = labels.iter().filter(|&&l| l > 0.5).count();
    let n_neg = n - n_pos;
    if n_pos == 0 || n_neg == 0 {
        return 0.5;
    }

    let mut order: Vec<usize> = (0..n).collect();
    // total_cmp keeps the sort well-defined even for NaN scores (a diverged
    // model must yield a bad AUC, not a panic); NaNs sort above +inf and
    // never tie, so they contribute like uniquely-ranked extreme scores.
    order.sort_by(|&a, &b| scores[a].total_cmp(&scores[b]));

    // Average ranks over tie groups (1-based ranks).
    let mut rank_sum_pos = 0.0f64;
    let mut i = 0;
    while i < n {
        let mut j = i;
        while j + 1 < n && scores[order[j + 1]] == scores[order[i]] {
            j += 1;
        }
        let avg_rank = (i + j + 2) as f64 / 2.0; // ranks i+1 ..= j+1
        for &k in &order[i..=j] {
            if labels[k] > 0.5 {
                rank_sum_pos += avg_rank;
            }
        }
        i = j + 1;
    }

    let u = rank_sum_pos - (n_pos as f64) * (n_pos as f64 + 1.0) / 2.0;
    u / (n_pos as f64 * n_neg as f64)
}

/// Mean binary log-loss over probabilities (clamped for stability).
pub fn log_loss(probs: &[f32], labels: &[f32]) -> f64 {
    assert_eq!(probs.len(), labels.len());
    assert!(!probs.is_empty());
    let mut acc = 0.0f64;
    for (&p, &l) in probs.iter().zip(labels) {
        let p = (p as f64).clamp(1e-7, 1.0 - 1e-7);
        acc -= if l > 0.5 { p.ln() } else { (1.0 - p).ln() };
    }
    acc / probs.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_separation_is_one() {
        let auc = roc_auc(&[0.1, 0.2, 0.8, 0.9], &[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(auc, 1.0);
    }

    #[test]
    fn inverted_separation_is_zero() {
        let auc = roc_auc(&[0.9, 0.8, 0.1, 0.2], &[0.0, 0.0, 1.0, 1.0]);
        assert_eq!(auc, 0.0);
    }

    #[test]
    fn random_scores_near_half() {
        let scores: Vec<f32> = (0..2000)
            .map(|i| ((i * 2654435761u64 as usize) % 997) as f32)
            .collect();
        let labels: Vec<f32> = (0..2000).map(|i| ((i * 40503) % 2) as f32).collect();
        let auc = roc_auc(&scores, &labels);
        assert!((auc - 0.5).abs() < 0.05, "auc = {auc}");
    }

    #[test]
    fn ties_get_half_credit() {
        // All scores equal: AUC must be exactly 0.5.
        let auc = roc_auc(&[1.0; 6], &[0.0, 1.0, 0.0, 1.0, 0.0, 1.0]);
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn single_class_is_half() {
        assert_eq!(roc_auc(&[0.1, 0.9], &[1.0, 1.0]), 0.5);
        assert_eq!(roc_auc(&[0.1, 0.9], &[0.0, 0.0]), 0.5);
    }

    #[test]
    fn auc_is_rank_invariant() {
        let labels = [0.0, 1.0, 0.0, 1.0, 1.0];
        let s1 = [0.1f32, 0.3, 0.2, 0.8, 0.5];
        let s2: Vec<f32> = s1.iter().map(|&x| x * 100.0 - 3.0).collect();
        assert_eq!(roc_auc(&s1, &labels), roc_auc(&s2, &labels));
    }

    #[test]
    fn known_partial_auc() {
        // pos scores {0.4, 0.9}, neg {0.5}; pairs: (0.4 > 0.5)? no,
        // (0.9 > 0.5)? yes -> AUC = 1/2.
        let auc = roc_auc(&[0.4, 0.5, 0.9], &[1.0, 0.0, 1.0]);
        assert_eq!(auc, 0.5);
    }

    #[test]
    fn nan_scores_do_not_panic() {
        // A diverged model (e.g. FP16 overflow) must produce a number.
        let auc = roc_auc(&[f32::NAN, 0.2, 0.8, f32::NAN], &[0.0, 0.0, 1.0, 1.0]);
        assert!((0.0..=1.0).contains(&auc));
    }

    #[test]
    fn log_loss_basics() {
        assert!(log_loss(&[0.99], &[1.0]) < 0.02);
        assert!(log_loss(&[0.01], &[1.0]) > 4.0);
        let balanced = log_loss(&[0.5, 0.5], &[0.0, 1.0]);
        assert!((balanced - std::f64::consts::LN_2).abs() < 1e-9);
    }

    #[test]
    fn log_loss_clamps_extremes() {
        assert!(log_loss(&[0.0, 1.0], &[1.0, 0.0]).is_finite());
    }
}
