//! Per-op wall-clock profiler — the instrument behind Figure 8's
//! "Embeddings / MLP / Rest" split.

use std::time::{Duration, Instant};

/// The three buckets of Figure 8.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Embedding forward/backward/update.
    Embeddings,
    /// Bottom- and top-MLP GEMMs (+ their SGD).
    Mlp,
    /// Everything else: interaction, loss, activation glue, framework.
    Rest,
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpClass::Embeddings => "Embeddings",
            OpClass::Mlp => "MLP",
            OpClass::Rest => "Rest",
        };
        f.write_str(s)
    }
}

/// Accumulating per-class profiler (single-threaded use: the training loop
/// owns it).
#[derive(Debug, Default, Clone)]
pub struct Profiler {
    emb: Duration,
    mlp: Duration,
    rest: Duration,
    iters: u64,
}

impl Profiler {
    /// Fresh profiler.
    pub fn new() -> Self {
        Self::default()
    }

    /// Times `f`, charging it to `class`.
    pub fn time<T>(&mut self, class: OpClass, f: impl FnOnce() -> T) -> T {
        let t0 = Instant::now();
        let out = f();
        self.add(class, t0.elapsed());
        out
    }

    /// Adds a pre-measured duration.
    pub fn add(&mut self, class: OpClass, d: Duration) {
        match class {
            OpClass::Embeddings => self.emb += d,
            OpClass::Mlp => self.mlp += d,
            OpClass::Rest => self.rest += d,
        }
    }

    /// Marks one iteration complete (for per-iteration averages).
    pub fn end_iteration(&mut self) {
        self.iters += 1;
    }

    /// Accumulated time in a bucket.
    pub fn total(&self, class: OpClass) -> Duration {
        match class {
            OpClass::Embeddings => self.emb,
            OpClass::Mlp => self.mlp,
            OpClass::Rest => self.rest,
        }
    }

    /// Sum over all buckets.
    pub fn grand_total(&self) -> Duration {
        self.emb + self.mlp + self.rest
    }

    /// Iterations recorded.
    pub fn iterations(&self) -> u64 {
        self.iters
    }

    /// Average ms per iteration.
    pub fn ms_per_iter(&self) -> f64 {
        if self.iters == 0 {
            return 0.0;
        }
        self.grand_total().as_secs_f64() * 1e3 / self.iters as f64
    }

    /// Fraction of total time in each bucket `(emb, mlp, rest)`.
    pub fn fractions(&self) -> (f64, f64, f64) {
        let t = self.grand_total().as_secs_f64();
        if t == 0.0 {
            return (0.0, 0.0, 0.0);
        }
        (
            self.emb.as_secs_f64() / t,
            self.mlp.as_secs_f64() / t,
            self.rest.as_secs_f64() / t,
        )
    }

    /// Clears all counters.
    pub fn reset(&mut self) {
        *self = Self::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn buckets_accumulate_independently() {
        let mut p = Profiler::new();
        p.add(OpClass::Embeddings, Duration::from_millis(10));
        p.add(OpClass::Mlp, Duration::from_millis(30));
        p.add(OpClass::Embeddings, Duration::from_millis(5));
        assert_eq!(p.total(OpClass::Embeddings), Duration::from_millis(15));
        assert_eq!(p.total(OpClass::Mlp), Duration::from_millis(30));
        assert_eq!(p.grand_total(), Duration::from_millis(45));
    }

    #[test]
    fn fractions_sum_to_one() {
        let mut p = Profiler::new();
        p.add(OpClass::Embeddings, Duration::from_millis(20));
        p.add(OpClass::Mlp, Duration::from_millis(20));
        p.add(OpClass::Rest, Duration::from_millis(60));
        let (e, m, r) = p.fractions();
        assert!((e + m + r - 1.0).abs() < 1e-12);
        assert!((r - 0.6).abs() < 1e-12);
    }

    #[test]
    fn ms_per_iter_averages() {
        let mut p = Profiler::new();
        p.add(OpClass::Rest, Duration::from_millis(30));
        p.end_iteration();
        p.end_iteration();
        p.end_iteration();
        assert!((p.ms_per_iter() - 10.0).abs() < 1e-9);
    }

    #[test]
    fn time_closure_returns_value() {
        let mut p = Profiler::new();
        let v = p.time(OpClass::Mlp, || 7);
        assert_eq!(v, 7);
        assert!(p.total(OpClass::Mlp) > Duration::ZERO);
    }

    #[test]
    fn empty_profiler_is_calm() {
        let p = Profiler::new();
        assert_eq!(p.ms_per_iter(), 0.0);
        assert_eq!(p.fractions(), (0.0, 0.0, 0.0));
    }
}
