//! Synthetic click-through log with learnable structure.
//!
//! Substitute for the Criteo Terabyte dataset in the convergence study
//! (Figure 16): a frozen random *teacher* assigns every dense feature a
//! weight and every embedding row a scalar affinity score; the click
//! probability of a sample is the sigmoid of the teacher's logit. A DLRM
//! trained on this log must discover the row affinities through its
//! embedding tables and the dense weighting through its MLPs, so test-set
//! ROC AUC climbs with training exactly as on real click data, and the
//! relative behaviour of FP32 / BF16-split / FP24 optimizers is preserved.

use crate::batch::MiniBatch;
use crate::configs::DlrmConfig;
use crate::distributions::IndexDistribution;
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;
use rand::Rng;

/// A deterministic synthetic click log.
pub struct ClickLog {
    cfg: DlrmConfig,
    seed: u64,
    dist: IndexDistribution,
    /// Teacher weight per dense feature.
    teacher_dense: Vec<f32>,
    /// Teacher affinity score per row, per table.
    teacher_scores: Vec<Vec<f32>>,
    /// Scale applied to the teacher logit (controls Bayes AUC).
    temperature: f32,
}

impl ClickLog {
    /// Builds a log for `cfg` with index skew `dist`. The teacher is drawn
    /// from `seed` and never changes afterwards.
    pub fn new(cfg: &DlrmConfig, dist: IndexDistribution, seed: u64) -> Self {
        let mut rng = seeded_rng(seed, 0xC11C);
        let d = cfg.dense_features;
        let teacher_dense: Vec<f32> = (0..d)
            .map(|_| rng.gen_range(-1.0f32..1.0) / (d as f32).sqrt())
            .collect();
        // Per-row scores scaled so the total logit std is O(1) regardless of
        // S and P: each sample sums S·P scores.
        let terms = (cfg.num_tables * cfg.lookups_per_table) as f32;
        let row_std = 1.2 / terms.sqrt();
        let teacher_scores: Vec<Vec<f32>> = (0..cfg.num_tables)
            .map(|t| {
                (0..cfg.table_rows[t])
                    .map(|_| rng.gen_range(-1.732f32..1.732) * row_std)
                    .collect()
            })
            .collect();
        ClickLog {
            cfg: cfg.clone(),
            seed,
            dist,
            teacher_dense,
            teacher_scores,
            temperature: 2.0,
        }
    }

    /// The configuration this log was built for.
    pub fn config(&self) -> &DlrmConfig {
        &self.cfg
    }

    /// Teacher logit for one sample.
    fn teacher_logit(&self, dense_col: &[f32], batch: &MiniBatch, sample: usize) -> f32 {
        let mut z: f32 = dense_col
            .iter()
            .zip(&self.teacher_dense)
            .map(|(&x, &w)| x * w)
            .sum();
        for t in 0..self.cfg.num_tables {
            for s in batch.offsets[t][sample]..batch.offsets[t][sample + 1] {
                z += self.teacher_scores[t][batch.indices[t][s] as usize];
            }
        }
        z * self.temperature
    }

    /// Deterministically generates batch `batch_idx` of `n` samples.
    /// `split` distinguishes independent streams (0 = train, 1 = test, …).
    pub fn batch(&self, n: usize, batch_idx: u64, split: u64) -> MiniBatch {
        let mut rng = seeded_rng(self.seed, 0xBA7C_0000 ^ (split << 32) ^ batch_idx);
        let cfg = &self.cfg;
        let dense = Matrix::from_fn(cfg.dense_features, n, |_, _| rng.gen_range(-1.0..1.0f32));
        let mut indices = Vec::with_capacity(cfg.num_tables);
        let mut offsets = Vec::with_capacity(cfg.num_tables);
        for t in 0..cfg.num_tables {
            let m = cfg.table_rows[t];
            let mut idx = Vec::with_capacity(n * cfg.lookups_per_table);
            let mut off = vec![0usize];
            for _ in 0..n {
                for _ in 0..cfg.lookups_per_table {
                    idx.push(self.dist.sample(m, &mut rng));
                }
                off.push(idx.len());
            }
            indices.push(idx);
            offsets.push(off);
        }
        let mut batch = MiniBatch {
            dense,
            indices,
            offsets,
            labels: vec![0.0; n],
        };
        // Labels: Bernoulli(sigmoid(teacher logit)).
        let dense_cols: Vec<Vec<f32>> = (0..n)
            .map(|j| {
                (0..cfg.dense_features)
                    .map(|i| batch.dense[(i, j)])
                    .collect()
            })
            .collect();
        #[allow(clippy::needless_range_loop)] // j indexes two parallel structures
        for j in 0..n {
            let z = self.teacher_logit(&dense_cols[j], &batch, j);
            let p = 1.0 / (1.0 + (-z).exp());
            batch.labels[j] = if rng.gen_range(0.0f32..1.0) < p {
                1.0
            } else {
                0.0
            };
        }
        batch
    }

    /// The teacher's own test-set AUC ceiling estimate: scores test samples
    /// with the true logit. Useful for sanity-checking convergence targets.
    pub fn bayes_scores(&self, batch: &MiniBatch) -> Vec<f32> {
        let n = batch.batch_size();
        (0..n)
            .map(|j| {
                let col: Vec<f32> = (0..self.cfg.dense_features)
                    .map(|i| batch.dense[(i, j)])
                    .collect();
                self.teacher_logit(&col, batch, j)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_log() -> ClickLog {
        let cfg = DlrmConfig::small().scaled_down(200, 64);
        ClickLog::new(&cfg, IndexDistribution::Uniform, 7)
    }

    #[test]
    fn batches_are_deterministic() {
        let log = tiny_log();
        let a = log.batch(16, 3, 0);
        let b = log.batch(16, 3, 0);
        assert_eq!(a.labels, b.labels);
        assert_eq!(a.indices, b.indices);
        assert_eq!(a.dense.as_slice(), b.dense.as_slice());
    }

    #[test]
    fn splits_and_batch_indices_differ() {
        let log = tiny_log();
        let train = log.batch(32, 0, 0);
        let test = log.batch(32, 0, 1);
        let later = log.batch(32, 1, 0);
        assert_ne!(train.indices, test.indices);
        assert_ne!(train.indices, later.indices);
    }

    #[test]
    fn labels_are_binary_and_mixed() {
        let log = tiny_log();
        let b = log.batch(512, 0, 0);
        b.validate(log.config());
        let pos: usize = b.labels.iter().map(|&l| l as usize).sum();
        // Teacher is roughly balanced; expect both classes present in bulk.
        assert!(pos > 100 && pos < 412, "positives = {pos}");
    }

    #[test]
    fn teacher_scores_separate_classes() {
        // The Bayes scores must rank positives above negatives on average —
        // i.e. the log carries learnable signal.
        let log = tiny_log();
        let b = log.batch(1024, 9, 1);
        let scores = log.bayes_scores(&b);
        let (mut pos_sum, mut pos_n, mut neg_sum, mut neg_n) = (0.0f64, 0u32, 0.0f64, 0u32);
        for (s, &l) in scores.iter().zip(&b.labels) {
            if l > 0.5 {
                pos_sum += *s as f64;
                pos_n += 1;
            } else {
                neg_sum += *s as f64;
                neg_n += 1;
            }
        }
        let gap = pos_sum / pos_n as f64 - neg_sum / neg_n as f64;
        assert!(gap > 0.5, "class separation too weak: {gap}");
    }

    #[test]
    fn works_with_mlperf_shape() {
        let cfg = DlrmConfig::mlperf().scaled_down(1000, 256);
        let log = ClickLog::new(&cfg, IndexDistribution::Zipf { s: 1.05 }, 11);
        let b = log.batch(8, 0, 0);
        b.validate(&cfg);
        assert_eq!(b.num_tables(), 26);
    }
}
