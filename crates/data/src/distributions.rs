//! Index-distribution generators for embedding look-ups.
//!
//! The contention behaviour of the embedding update (Figures 7–8) depends
//! entirely on index reuse: uniform random indices over a million-row table
//! almost never collide, whereas real click logs are heavily skewed (a few
//! hot users/items dominate). The Zipf and clustered generators reproduce
//! that skew synthetically.

use rand::rngs::StdRng;
use rand::Rng;

/// How look-up indices are drawn from `0..m`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum IndexDistribution {
    /// Uniform over the table — the paper's random Small/Large datasets.
    Uniform,
    /// Zipf-like with exponent `s > 0` (`s` near 1 ⇒ heavy skew toward low
    /// indices), approximating click-log popularity.
    Zipf {
        /// Skew exponent.
        s: f64,
    },
    /// With probability `hot_prob`, draw from the first
    /// `hot_fraction · m` rows — the "indices are clustered" case the paper
    /// flags as the load-imbalance risk of the race-free update.
    Clustered {
        /// Fraction of the table that is hot.
        hot_fraction: f64,
        /// Probability a look-up hits the hot region.
        hot_prob: f64,
    },
}

impl IndexDistribution {
    /// Draws one index in `0..m` at full `u64` width — the primitive the
    /// narrowing [`sample`](Self::sample) wraps. Use this directly for
    /// tables with ≥ 2³² rows (full Criteo-Terabyte vocabularies).
    pub fn sample_wide(&self, m: u64, rng: &mut StdRng) -> u64 {
        debug_assert!(m >= 1);
        match *self {
            IndexDistribution::Uniform => rng.gen_range(0..m),
            IndexDistribution::Zipf { s } => zipf_sample(m, s, rng),
            IndexDistribution::Clustered {
                hot_fraction,
                hot_prob,
            } => {
                let hot = ((m as f64 * hot_fraction).ceil() as u64).clamp(1, m);
                if rng.gen_bool(hot_prob.clamp(0.0, 1.0)) {
                    rng.gen_range(0..hot)
                } else {
                    rng.gen_range(0..m)
                }
            }
        }
    }

    /// Draws one index in `0..m`, narrowed to the `u32` index type the
    /// kernel bag format uses. Panics (rather than silently wrapping and
    /// aliasing rows) if the draw exceeds `u32::MAX`; callers with ≥ 2³²-row
    /// tables must use [`sample_wide`](Self::sample_wide).
    pub fn sample(&self, m: u64, rng: &mut StdRng) -> u32 {
        let idx = self.sample_wide(m, rng);
        u32::try_from(idx).unwrap_or_else(|_| {
            panic!(
                "index {idx} drawn from a table of {m} rows does not fit in u32; \
                 use sample_wide for tables with >= 2^32 rows"
            )
        })
    }

    /// Fills a vector with `count` indices in `0..m`.
    pub fn sample_many(&self, m: u64, count: usize, rng: &mut StdRng) -> Vec<u32> {
        (0..count).map(|_| self.sample(m, rng)).collect()
    }
}

/// Approximate Zipf(s) sampling over `1..=m` via inverse-CDF of the
/// continuous power-law envelope — accurate enough for workload generation
/// and O(1) per sample for tables of tens of millions of rows.
fn zipf_sample(m: u64, s: f64, rng: &mut StdRng) -> u64 {
    let s = s.max(1e-6);
    let u: f64 = rng.gen_range(0.0..1.0);
    let x = if (s - 1.0).abs() < 1e-9 {
        // F(x) ∝ ln x  ⇒  x = m^u
        (m as f64).powf(u)
    } else {
        // F(x) ∝ (x^{1-s} − 1)  ⇒  invert
        let t = 1.0 - s;
        ((m as f64).powf(t) * u + (1.0 - u)).powf(1.0 / t)
    };
    (x.floor() as u64).clamp(1, m) - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::init::seeded_rng;

    fn histogram(dist: IndexDistribution, m: u64, n: usize) -> Vec<usize> {
        let mut rng = seeded_rng(42, 0);
        let mut h = vec![0usize; m as usize];
        for _ in 0..n {
            h[dist.sample(m, &mut rng) as usize] += 1;
        }
        h
    }

    #[test]
    fn uniform_stays_in_bounds_and_covers() {
        let h = histogram(IndexDistribution::Uniform, 50, 20_000);
        assert!(h.iter().all(|&c| c > 0), "all bins should be hit");
        let (min, max) = (h.iter().min().unwrap(), h.iter().max().unwrap());
        assert!(*max < 3 * *min, "uniform should be roughly flat");
    }

    #[test]
    fn zipf_is_head_heavy() {
        let h = histogram(IndexDistribution::Zipf { s: 1.1 }, 1000, 50_000);
        let head: usize = h[..10].iter().sum();
        let tail: usize = h[500..].iter().sum();
        assert!(
            head > 5 * tail.max(1),
            "zipf head {head} should dominate tail {tail}"
        );
        // Monotone-ish: first bin is the most popular.
        assert_eq!(h.iter().enumerate().max_by_key(|&(_, &c)| c).unwrap().0, 0);
    }

    #[test]
    fn clustered_hits_hot_region() {
        let dist = IndexDistribution::Clustered {
            hot_fraction: 0.01,
            hot_prob: 0.9,
        };
        let h = histogram(dist, 1000, 50_000);
        let hot: usize = h[..10].iter().sum();
        assert!(
            hot as f64 > 0.85 * 50_000.0,
            "≈90% of hits should land in the hot 1% (got {hot})"
        );
    }

    #[test]
    fn single_row_table_always_zero() {
        let mut rng = seeded_rng(1, 0);
        for dist in [
            IndexDistribution::Uniform,
            IndexDistribution::Zipf { s: 1.2 },
            IndexDistribution::Clustered {
                hot_fraction: 0.5,
                hot_prob: 0.5,
            },
        ] {
            for _ in 0..100 {
                assert_eq!(dist.sample(1, &mut rng), 0);
            }
        }
    }

    #[test]
    fn sample_at_u32_boundary_is_exact_not_wrapped() {
        // A table of exactly 2^32 rows: every valid index fits in u32, so
        // `sample` must succeed — and must cover indices above 2^31 (which a
        // signed or narrower conversion would mangle).
        let m = 1u64 << 32;
        let mut rng = seeded_rng(11, 0);
        let mut saw_high = false;
        for _ in 0..256 {
            let idx = IndexDistribution::Uniform.sample(m, &mut rng);
            assert!((idx as u64) < m);
            saw_high |= idx > u32::MAX / 2;
        }
        assert!(
            saw_high,
            "uniform draws over 2^32 rows must reach the top half"
        );
    }

    #[test]
    fn sample_beyond_u32_panics_instead_of_aliasing() {
        // Before the fix, `idx as u32` silently wrapped: row 2^32 aliased
        // row 0. Now the narrowing draw must panic.
        let m = 1u64 << 33;
        let r = std::panic::catch_unwind(|| {
            let mut rng = seeded_rng(12, 0);
            // 64 uniform draws over 2^33 rows: P(all fit in u32) = 2^-64.
            for _ in 0..64 {
                let _ = IndexDistribution::Uniform.sample(m, &mut rng);
            }
        });
        assert!(r.is_err(), "narrowing sample over 2^33 rows must panic");
    }

    #[test]
    fn sample_wide_reaches_beyond_u32() {
        let m = 1u64 << 40;
        let mut rng = seeded_rng(13, 0);
        let mut saw_wide = false;
        for dist in [
            IndexDistribution::Uniform,
            IndexDistribution::Clustered {
                hot_fraction: 1.0,
                hot_prob: 0.5,
            },
        ] {
            for _ in 0..256 {
                let idx = dist.sample_wide(m, &mut rng);
                assert!(idx < m);
                saw_wide |= idx > u32::MAX as u64;
            }
        }
        assert!(saw_wide, "wide draws over 2^40 rows must exceed u32::MAX");
    }

    #[test]
    fn samples_are_reproducible() {
        let dist = IndexDistribution::Zipf { s: 1.05 };
        let a = dist.sample_many(10_000, 64, &mut seeded_rng(7, 3));
        let b = dist.sample_many(10_000, 64, &mut seeded_rng(7, 3));
        assert_eq!(a, b);
    }

    #[test]
    fn all_samples_in_bounds_for_huge_tables() {
        let mut rng = seeded_rng(9, 0);
        let m = 39_884_406u64; // largest MLPerf table
        for dist in [
            IndexDistribution::Uniform,
            IndexDistribution::Zipf { s: 1.2 },
        ] {
            for _ in 0..1000 {
                assert!((dist.sample(m, &mut rng) as u64) < m);
            }
        }
    }
}
