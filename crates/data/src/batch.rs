//! Minibatch container and random batch generation.

use crate::configs::DlrmConfig;
use crate::distributions::IndexDistribution;
use dlrm_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;

/// One minibatch of DLRM training data.
///
/// Dense features use the `C×N` convention of the MLP kernels (features are
/// rows, samples are columns). Sparse features are per-table CSR bags:
/// `offsets[t]` has `N+1` entries indexing into `indices[t]`.
#[derive(Debug, Clone)]
pub struct MiniBatch {
    /// Dense features, `dense_features × N`.
    pub dense: Matrix,
    /// Per-table look-up indices.
    pub indices: Vec<Vec<u32>>,
    /// Per-table bag offsets (`N+1` entries each).
    pub offsets: Vec<Vec<usize>>,
    /// Click labels in `{0.0, 1.0}`, length `N`.
    pub labels: Vec<f32>,
}

impl MiniBatch {
    /// Number of samples.
    pub fn batch_size(&self) -> usize {
        self.labels.len()
    }

    /// Number of tables.
    pub fn num_tables(&self) -> usize {
        self.indices.len()
    }

    /// Generates a fully random batch (random labels — no learnable signal;
    /// the paper's "random dataset" used for the Small/Large configs).
    pub fn random(cfg: &DlrmConfig, n: usize, dist: IndexDistribution, rng: &mut StdRng) -> Self {
        let dense = Matrix::from_fn(cfg.dense_features, n, |_, _| rng.gen_range(-1.0..1.0f32));
        let mut indices = Vec::with_capacity(cfg.num_tables);
        let mut offsets = Vec::with_capacity(cfg.num_tables);
        for t in 0..cfg.num_tables {
            let m = cfg.table_rows[t];
            let mut idx = Vec::with_capacity(n * cfg.lookups_per_table);
            let mut off = Vec::with_capacity(n + 1);
            off.push(0usize);
            for _ in 0..n {
                for _ in 0..cfg.lookups_per_table {
                    idx.push(dist.sample(m, rng));
                }
                off.push(idx.len());
            }
            indices.push(idx);
            offsets.push(off);
        }
        let labels = (0..n)
            .map(|_| if rng.gen_bool(0.5) { 1.0 } else { 0.0 })
            .collect();
        MiniBatch {
            dense,
            indices,
            offsets,
            labels,
        }
    }

    /// Extracts the sample sub-range `lo..hi` as its own batch (used to
    /// shard a global minibatch across ranks).
    pub fn slice(&self, lo: usize, hi: usize) -> MiniBatch {
        assert!(lo <= hi && hi <= self.batch_size(), "bad slice range");
        let d = self.dense.rows();
        let dense = Matrix::from_fn(d, hi - lo, |r, c| self.dense[(r, lo + c)]);
        let mut indices = Vec::with_capacity(self.num_tables());
        let mut offsets = Vec::with_capacity(self.num_tables());
        for t in 0..self.num_tables() {
            let (start, end) = (self.offsets[t][lo], self.offsets[t][hi]);
            indices.push(self.indices[t][start..end].to_vec());
            offsets.push(
                self.offsets[t][lo..=hi]
                    .iter()
                    .map(|&o| o - start)
                    .collect(),
            );
        }
        MiniBatch {
            dense,
            indices,
            offsets,
            labels: self.labels[lo..hi].to_vec(),
        }
    }

    /// Validity check used by tests and debug assertions.
    pub fn validate(&self, cfg: &DlrmConfig) {
        let n = self.batch_size();
        assert_eq!(self.dense.shape(), (cfg.dense_features, n));
        assert_eq!(self.indices.len(), cfg.num_tables);
        assert_eq!(self.offsets.len(), cfg.num_tables);
        for t in 0..cfg.num_tables {
            assert_eq!(self.offsets[t].len(), n + 1);
            assert_eq!(*self.offsets[t].last().unwrap(), self.indices[t].len());
            assert!(self.indices[t]
                .iter()
                .all(|&i| (i as u64) < cfg.table_rows[t]));
        }
        assert!(self.labels.iter().all(|&l| l == 0.0 || l == 1.0));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor::init::seeded_rng;

    fn tiny_cfg() -> DlrmConfig {
        DlrmConfig::small().scaled_down(100, 64)
    }

    #[test]
    fn random_batch_is_valid() {
        let cfg = tiny_cfg();
        let mut rng = seeded_rng(3, 0);
        let b = MiniBatch::random(&cfg, 16, IndexDistribution::Uniform, &mut rng);
        b.validate(&cfg);
        assert_eq!(b.batch_size(), 16);
        assert_eq!(b.indices[0].len(), 16 * cfg.lookups_per_table);
    }

    #[test]
    fn slices_partition_the_batch() {
        let cfg = tiny_cfg();
        let mut rng = seeded_rng(4, 0);
        let b = MiniBatch::random(&cfg, 12, IndexDistribution::Uniform, &mut rng);
        let lo = b.slice(0, 5);
        let hi = b.slice(5, 12);
        lo.validate(&cfg);
        hi.validate(&cfg);
        assert_eq!(lo.batch_size() + hi.batch_size(), 12);
        // Index content is preserved.
        let rejoined: Vec<u32> = lo.indices[0]
            .iter()
            .chain(hi.indices[0].iter())
            .copied()
            .collect();
        assert_eq!(rejoined, b.indices[0]);
        // Labels preserved.
        assert_eq!(&lo.labels[..], &b.labels[..5]);
    }

    #[test]
    fn slice_of_full_range_is_identity() {
        let cfg = tiny_cfg();
        let mut rng = seeded_rng(5, 0);
        let b = MiniBatch::random(&cfg, 8, IndexDistribution::Uniform, &mut rng);
        let s = b.slice(0, 8);
        assert_eq!(s.indices, b.indices);
        assert_eq!(s.offsets, b.offsets);
        assert_eq!(s.dense.as_slice(), b.dense.as_slice());
    }

    #[test]
    fn empty_slice_is_allowed() {
        let cfg = tiny_cfg();
        let mut rng = seeded_rng(6, 0);
        let b = MiniBatch::random(&cfg, 4, IndexDistribution::Uniform, &mut rng);
        let s = b.slice(2, 2);
        assert_eq!(s.batch_size(), 0);
        assert!(s.indices[0].is_empty());
    }
}
