//! Data loaders for distributed training.
//!
//! The paper observes (Figure 13 discussion) that "the current data loader
//! design always reads the data for the full global minibatch on each rank",
//! so loader cost grows linearly with rank count under weak scaling.
//! [`LoaderMode::FullGlobalBatch`] reproduces that design;
//! [`LoaderMode::Sharded`] is the fixed version that materializes only the
//! local shard.

use crate::batch::MiniBatch;
use crate::clicklog::ClickLog;

/// How much of the global batch each rank materializes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoaderMode {
    /// Every rank generates all `GN` samples, then keeps its shard — the
    /// paper's (inefficient) baseline loader.
    FullGlobalBatch,
    /// Every rank generates only its own `LN` samples.
    Sharded,
}

/// Per-rank loader over a [`ClickLog`].
pub struct RankLoader<'a> {
    log: &'a ClickLog,
    mode: LoaderMode,
    rank: usize,
    nranks: usize,
    local_n: usize,
    next_batch: u64,
}

impl<'a> RankLoader<'a> {
    /// Creates a loader for `rank` of `nranks`, yielding `local_n` samples
    /// per step.
    pub fn new(
        log: &'a ClickLog,
        mode: LoaderMode,
        rank: usize,
        nranks: usize,
        local_n: usize,
    ) -> Self {
        assert!(rank < nranks);
        RankLoader {
            log,
            mode,
            rank,
            nranks,
            local_n,
            next_batch: 0,
        }
    }

    /// Global batch size.
    pub fn global_n(&self) -> usize {
        self.local_n * self.nranks
    }

    /// Produces this rank's next local batch. In `FullGlobalBatch` mode the
    /// cost of generating all `GN` samples is really paid (and then all but
    /// the local shard discarded), matching the paper's loader.
    ///
    /// All ranks of a step see consistent shards of the same global batch.
    pub fn next_batch(&mut self) -> MiniBatch {
        let idx = self.next_batch;
        self.next_batch += 1;
        match self.mode {
            LoaderMode::FullGlobalBatch => {
                let global = self.log.batch(self.global_n(), idx, 0);
                let lo = self.rank * self.local_n;
                global.slice(lo, lo + self.local_n)
            }
            LoaderMode::Sharded => {
                // Each rank generates an independent stream; shards differ
                // from FullGlobalBatch's but are equally distributed.
                self.log.batch(self.local_n, idx, 0x5AD0 + self.rank as u64)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::DlrmConfig;
    use crate::distributions::IndexDistribution;

    fn tiny_log() -> ClickLog {
        let cfg = DlrmConfig::small().scaled_down(100, 128);
        ClickLog::new(&cfg, IndexDistribution::Uniform, 21)
    }

    #[test]
    fn full_global_shards_are_consistent() {
        let log = tiny_log();
        let nranks = 4;
        let ln = 8;
        let shards: Vec<MiniBatch> = (0..nranks)
            .map(|r| RankLoader::new(&log, LoaderMode::FullGlobalBatch, r, nranks, ln).next_batch())
            .collect();
        // Together the shards must reproduce the global batch exactly.
        let global = log.batch(nranks * ln, 0, 0);
        let mut labels = vec![];
        for s in &shards {
            assert_eq!(s.batch_size(), ln);
            labels.extend_from_slice(&s.labels);
        }
        assert_eq!(labels, global.labels);
    }

    #[test]
    fn sharded_mode_yields_local_size() {
        let log = tiny_log();
        let mut l = RankLoader::new(&log, LoaderMode::Sharded, 2, 4, 8);
        let b = l.next_batch();
        assert_eq!(b.batch_size(), 8);
        b.validate(log.config());
    }

    #[test]
    fn sharded_ranks_get_different_data() {
        let log = tiny_log();
        let a = RankLoader::new(&log, LoaderMode::Sharded, 0, 2, 16).next_batch();
        let b = RankLoader::new(&log, LoaderMode::Sharded, 1, 2, 16).next_batch();
        assert_ne!(a.indices, b.indices);
    }

    #[test]
    fn loader_advances_between_steps() {
        let log = tiny_log();
        let mut l = RankLoader::new(&log, LoaderMode::FullGlobalBatch, 0, 2, 8);
        let b0 = l.next_batch();
        let b1 = l.next_batch();
        assert_ne!(b0.indices, b1.indices);
    }
}
