//! # dlrm-data — model configurations and synthetic datasets
//!
//! * [`configs`] — the three DLRM configurations of Table I (Small, Large,
//!   MLPerf) plus laptop-scaled variants, with the derived quantities of
//!   Table II (memory footprints, Eq. 1 allreduce size, Eq. 2 alltoall
//!   volume).
//! * [`distributions`] — index-distribution generators (uniform, Zipf,
//!   clustered). The paper's Figure 7/8 contrast hinges on index reuse: the
//!   random Small config has "very little contention" while the
//!   Criteo-Terabyte-driven MLPerf config has heavy reuse that thrashes the
//!   atomic/RTM strategies.
//! * [`batch`] — minibatch container + random batch generator.
//! * [`clicklog`] — a synthetic click-through log with *learnable*
//!   structure: a frozen random teacher model produces ground-truth click
//!   probabilities, substituting for the Criteo Terabyte dataset in the
//!   Figure 16 convergence study.
//! * [`loader`] — data loaders, including the paper's "reads the full
//!   global minibatch on every rank" behaviour whose cost grows with weak
//!   scaling (Figure 13 discussion).
//! * [`lookahead`] — a peekable window over the deterministic batch
//!   stream, the shared view the BagPipe-style prefetch pipeline in the
//!   distributed trainer derives its transfer plans from.

pub mod batch;
pub mod clicklog;
pub mod configs;
pub mod distributions;
pub mod loader;
pub mod lookahead;

pub use batch::MiniBatch;
pub use clicklog::ClickLog;
pub use configs::DlrmConfig;
pub use distributions::IndexDistribution;
pub use lookahead::LookaheadWindow;
