//! The DLRM model configurations of Table I and their derived
//! characteristics (Table II).

/// Bytes per FP32 element.
pub const F32_BYTES: u64 = 4;

/// Per-table row counts of the MLPerf/Criteo-Terabyte DLRM configuration
/// (26 categorical features; the well-known MLPerf embedding sizes). Sums to
/// ≈186 M rows ≈ 95 GiB at E=128 FP32 — the "98 GB" of Table II.
pub const MLPERF_TABLE_ROWS: [u64; 26] = [
    39_884_406, 39_043, 17_289, 7_420, 20_263, 3, 7_120, 1_543, 63, 38_532_951, 2_953_546, 403_346,
    10, 2_208, 11_938, 155, 4, 976, 14, 39_979_771, 25_641_295, 39_664_984, 585_935, 12_972, 108,
    36,
];

/// A full DLRM model + run configuration (one column of Table I).
#[derive(Debug, Clone)]
pub struct DlrmConfig {
    /// Human-readable name ("Small", "Large", "MLPerf", …).
    pub name: String,
    /// Number of dense input features (length of the Bottom-MLP input).
    pub dense_features: usize,
    /// Bottom-MLP layer output sizes; the last equals `emb_dim` so sparse
    /// and dense features meet in the same space at the interaction.
    pub bottom_mlp: Vec<usize>,
    /// Top-MLP layer output sizes; the last is 1 (the click logit).
    pub top_mlp: Vec<usize>,
    /// Number of embedding tables (`S`).
    pub num_tables: usize,
    /// Rows per table (`M`), one entry per table.
    pub table_rows: Vec<u64>,
    /// Embedding dimension (`E`).
    pub emb_dim: usize,
    /// Average look-ups per table per sample (`P`).
    pub lookups_per_table: usize,
    /// Single-socket minibatch (`N`).
    pub mb_single: usize,
    /// Global minibatch for strong scaling (`GN`).
    pub gn_strong: usize,
    /// Local (per-rank) minibatch for weak scaling (`LN`).
    pub ln_weak: usize,
}

impl DlrmConfig {
    /// The Small configuration (the DLRM release-paper model problem).
    pub fn small() -> Self {
        DlrmConfig {
            name: "Small".into(),
            dense_features: 512,
            bottom_mlp: vec![512, 64],
            top_mlp: vec![1024, 1024, 1024, 1],
            num_tables: 8,
            table_rows: vec![1_000_000; 8],
            emb_dim: 64,
            lookups_per_table: 50,
            mb_single: 2048,
            gn_strong: 8192,
            ln_weak: 1024,
        }
    }

    /// The Large configuration (Small scaled up in every dimension for
    /// scale-out runs; needs ≥4 sockets' worth of memory).
    pub fn large() -> Self {
        DlrmConfig {
            name: "Large".into(),
            dense_features: 2048,
            bottom_mlp: vec![2048; 7].into_iter().chain([256]).collect(),
            top_mlp: vec![4096; 15].into_iter().chain([1]).collect(),
            num_tables: 64,
            table_rows: vec![6_000_000; 64],
            emb_dim: 256,
            lookups_per_table: 100,
            mb_single: 2048,
            gn_strong: 16384,
            ln_weak: 512,
        }
    }

    /// The MLPerf configuration (Criteo Terabyte shapes).
    ///
    /// Table I abbreviates the top MLP as "512-512-256-1", but that yields a
    /// 3.2 MB allreduce, contradicting Table II's 9.0 MB. The official
    /// MLPerf DLRM top MLP (1024-1024-512-256-1) reproduces Table II's
    /// number exactly, so we use it.
    pub fn mlperf() -> Self {
        DlrmConfig {
            name: "MLPerf".into(),
            dense_features: 13,
            bottom_mlp: vec![512, 256, 128],
            top_mlp: vec![1024, 1024, 512, 256, 1],
            num_tables: 26,
            table_rows: MLPERF_TABLE_ROWS.to_vec(),
            emb_dim: 128,
            lookups_per_table: 1,
            mb_single: 2048,
            gn_strong: 16384,
            ln_weak: 2048,
        }
    }

    /// All three paper configurations in Table I order.
    pub fn all_paper() -> Vec<Self> {
        vec![Self::small(), Self::large(), Self::mlperf()]
    }

    /// Shrinks every embedding table to at most `max_rows` rows and the
    /// minibatches by `mb_divisor`, for runs on small machines. MLP shapes
    /// are preserved so per-sample compute behaviour is unchanged.
    pub fn scaled_down(&self, max_rows: u64, mb_divisor: usize) -> Self {
        let d = mb_divisor.max(1);
        DlrmConfig {
            name: format!("{}-scaled", self.name),
            table_rows: self.table_rows.iter().map(|&m| m.min(max_rows)).collect(),
            mb_single: (self.mb_single / d).max(1),
            gn_strong: (self.gn_strong / d).max(1),
            ln_weak: (self.ln_weak / d).max(1),
            ..self.clone()
        }
    }

    /// Dimension pairs `(in, out)` of the bottom MLP.
    pub fn bottom_layer_dims(&self) -> Vec<(usize, usize)> {
        layer_dims(self.dense_features, &self.bottom_mlp)
    }

    /// Dimension pairs `(in, out)` of the top MLP (input = interaction
    /// output).
    pub fn top_layer_dims(&self) -> Vec<(usize, usize)> {
        layer_dims(self.interaction_output_dim(), &self.top_mlp)
    }

    /// Output width of the dot-product interaction: the bottom-MLP output
    /// (E features) concatenated with the strictly-lower-triangular pairwise
    /// dot products among the S embedding outputs and the bottom output
    /// (`(S+1)·S/2` values).
    pub fn interaction_output_dim(&self) -> usize {
        let f = self.num_tables + 1;
        self.emb_dim + f * (f - 1) / 2
    }

    /// Bytes of one embedding table `t`.
    pub fn table_bytes(&self, t: usize) -> u64 {
        self.table_rows[t] * self.emb_dim as u64 * F32_BYTES
    }

    /// Total bytes of all embedding tables ("Mem capacity required for all
    /// tables" in Table II).
    pub fn total_table_bytes(&self) -> u64 {
        (0..self.num_tables).map(|t| self.table_bytes(t)).sum()
    }

    /// Number of MLP parameters (weights + biases), i.e. Eq. 1's
    /// `Σ_l f_i·f_o + f_o` over both MLPs.
    pub fn mlp_param_count(&self) -> u64 {
        self.bottom_layer_dims()
            .iter()
            .chain(self.top_layer_dims().iter())
            .map(|&(fi, fo)| (fi as u64) * (fo as u64) + fo as u64)
            .sum()
    }

    /// Eq. 1: allreduce bytes per iteration as seen by each rank
    /// (independent of rank count and minibatch).
    pub fn allreduce_bytes(&self) -> u64 {
        self.mlp_param_count() * F32_BYTES
    }

    /// Eq. 2: total alltoall volume across all ranks for global minibatch
    /// `gn`: `S × N × E` elements.
    pub fn alltoall_bytes(&self, gn: usize) -> u64 {
        self.num_tables as u64 * gn as u64 * self.emb_dim as u64 * F32_BYTES
    }

    /// Maximum ranks the pure model-parallel embedding distribution can
    /// use: one table is never split, so at most `S` ranks.
    pub fn max_ranks(&self) -> usize {
        self.num_tables
    }

    /// Minimum sockets needed to hold all tables given `bytes_per_socket`
    /// of usable DRAM, distributing whole tables greedily (largest first).
    pub fn min_sockets(&self, bytes_per_socket: u64) -> usize {
        let mut sizes: Vec<u64> = (0..self.num_tables).map(|t| self.table_bytes(t)).collect();
        sizes.sort_unstable_by(|a, b| b.cmp(a));
        assert!(
            sizes.first().is_none_or(|&s| s <= bytes_per_socket),
            "largest table does not fit on a socket"
        );
        // First-fit-decreasing bin packing.
        let mut bins: Vec<u64> = Vec::new();
        for s in sizes {
            if let Some(b) = bins.iter_mut().find(|b| **b + s <= bytes_per_socket) {
                *b += s;
            } else {
                bins.push(s);
            }
        }
        bins.len().max(1)
    }

    /// Splits tables across `ranks` round-robin (table `t` lives on rank
    /// `t % ranks`) — the paper's pure model-parallel distribution.
    pub fn tables_for_rank(&self, rank: usize, ranks: usize) -> Vec<usize> {
        assert!(
            ranks >= 1 && ranks <= self.max_ranks(),
            "invalid rank count"
        );
        (0..self.num_tables).filter(|t| t % ranks == rank).collect()
    }

    /// FLOPs of one full training iteration (fwd + bwd ≈ 3× fwd GEMM cost)
    /// at minibatch `n` — the compute the strong-scaling model divides
    /// across ranks.
    pub fn mlp_flops_per_iter(&self, n: usize) -> u64 {
        let gemm: u64 = self
            .bottom_layer_dims()
            .iter()
            .chain(self.top_layer_dims().iter())
            .map(|&(fi, fo)| 2 * fi as u64 * fo as u64 * n as u64)
            .sum();
        3 * gemm
    }

    /// Bytes of embedding table traffic of one iteration at minibatch `n`:
    /// forward reads + update read-modify-write (≈3×).
    pub fn embedding_bytes_per_iter(&self, n: usize) -> u64 {
        3 * self.num_tables as u64
            * self.lookups_per_table as u64
            * n as u64
            * self.emb_dim as u64
            * F32_BYTES
    }
}

fn layer_dims(input: usize, sizes: &[usize]) -> Vec<(usize, usize)> {
    let mut dims = Vec::with_capacity(sizes.len());
    let mut prev = input;
    for &s in sizes {
        dims.push((prev, s));
        prev = s;
    }
    dims
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_matches_table1() {
        let c = DlrmConfig::small();
        assert_eq!(c.num_tables, 8);
        assert_eq!(c.emb_dim, 64);
        assert_eq!(c.lookups_per_table, 50);
        assert_eq!(c.bottom_layer_dims(), vec![(512, 512), (512, 64)]);
        assert_eq!(c.top_mlp.last(), Some(&1));
        // Table II: "Mem capacity required for all tables: 2 GB".
        let gib = c.total_table_bytes() as f64 / (1u64 << 30) as f64;
        assert!((1.5..2.5).contains(&gib), "small tables = {gib:.2} GiB");
    }

    #[test]
    fn large_matches_table2_characteristics() {
        let c = DlrmConfig::large();
        // Table II: 384 GB of tables, allreduce ≈ 1047 MB, alltoall ≈ 1024 MB.
        let gib = c.total_table_bytes() as f64 / (1u64 << 30) as f64;
        assert!((350.0..400.0).contains(&gib), "large tables = {gib:.1} GiB");
        let ar_mib = c.allreduce_bytes() as f64 / (1u64 << 20) as f64;
        assert!(
            (950.0..1150.0).contains(&ar_mib),
            "allreduce = {ar_mib:.0} MiB"
        );
        let a2a_mib = c.alltoall_bytes(c.gn_strong) as f64 / (1u64 << 20) as f64;
        assert!(
            (950.0..1100.0).contains(&a2a_mib),
            "alltoall = {a2a_mib:.0} MiB"
        );
        assert_eq!(c.max_ranks(), 64);
    }

    #[test]
    fn mlperf_matches_table2_characteristics() {
        let c = DlrmConfig::mlperf();
        // Table II: 98 GB tables, 9.0 MB allreduce, 208 MB alltoall.
        let gb = c.total_table_bytes() as f64 / 1e9;
        assert!((92.0..100.0).contains(&gb), "mlperf tables = {gb:.1} GB");
        let ar_mib = c.allreduce_bytes() as f64 / (1u64 << 20) as f64;
        assert!((8.0..10.0).contains(&ar_mib), "allreduce = {ar_mib:.1} MiB");
        let a2a_mib = c.alltoall_bytes(c.gn_strong) as f64 / (1u64 << 20) as f64;
        assert!(
            (195.0..215.0).contains(&a2a_mib),
            "alltoall = {a2a_mib:.0} MiB"
        );
        assert_eq!(c.max_ranks(), 26);
    }

    #[test]
    fn small_allreduce_is_9_5_mb() {
        // Table II: 9.5 MB for the Small config.
        let mib = DlrmConfig::small().allreduce_bytes() as f64 / (1u64 << 20) as f64;
        assert!((8.5..10.5).contains(&mib), "small allreduce = {mib:.1} MiB");
    }

    #[test]
    fn interaction_dim() {
        let c = DlrmConfig::small(); // S=8 -> 9*8/2 = 36 pairs + E=64
        assert_eq!(c.interaction_output_dim(), 100);
    }

    #[test]
    fn min_sockets_large_is_four() {
        // Table II: Large needs a minimum of 4 sockets (~128 usable GB each
        // of the 8-socket node's 192 GB/socket; the paper states 450 GB
        // total need). With 96 GiB usable per socket: 384/96 = 4.
        let c = DlrmConfig::large();
        assert_eq!(c.min_sockets(100 * (1 << 30)), 4);
        // Small fits on one socket.
        assert_eq!(DlrmConfig::small().min_sockets(100 * (1 << 30)), 1);
    }

    #[test]
    fn tables_round_robin_partition() {
        let c = DlrmConfig::mlperf();
        let ranks = 8;
        let mut seen = vec![false; c.num_tables];
        for r in 0..ranks {
            for t in c.tables_for_rank(r, ranks) {
                assert!(!seen[t], "table {t} assigned twice");
                seen[t] = true;
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn scaled_down_preserves_shapes() {
        let c = DlrmConfig::mlperf().scaled_down(100_000, 8);
        assert_eq!(c.bottom_mlp, DlrmConfig::mlperf().bottom_mlp);
        assert!(c.table_rows.iter().all(|&m| m <= 100_000));
        assert_eq!(c.mb_single, 256);
        // Small tables stay their original size.
        assert_eq!(c.table_rows[5], 3);
    }

    #[test]
    fn alltoall_volume_is_rank_independent_for_strong_scaling() {
        let c = DlrmConfig::small();
        // Eq. 2 depends only on the global minibatch.
        assert_eq!(c.alltoall_bytes(8192), 8 * 8192 * 64 * 4);
    }

    #[test]
    #[should_panic(expected = "invalid rank count")]
    fn too_many_ranks_rejected() {
        DlrmConfig::small().tables_for_rank(0, 9);
    }
}
