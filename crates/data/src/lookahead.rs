//! `LookaheadWindow` — a cursor over a deterministic batch stream that can
//! peek W future batches.
//!
//! BagPipe's lookahead trick only works because the training loader is
//! deterministic: every rank can see not just the current batch but the
//! next W batches, and — since all ranks walk the *same* stream — derive
//! identical prefetch decisions from that shared view without exchanging
//! any metadata. This type is that shared view: a window `[pos, pos + W]`
//! over an in-memory batch slice. `peek(0)` is the current batch and
//! `peek(k)` for `k ≤ W` is a future one (`None` past the end of the
//! stream, which is how the pipeline drains).

use crate::batch::MiniBatch;

/// A cursor with `window` batches of lookahead over a batch slice.
pub struct LookaheadWindow<'a> {
    batches: &'a [MiniBatch],
    pos: usize,
    window: usize,
}

impl<'a> LookaheadWindow<'a> {
    /// A window of `window ≥ 1` future batches over `batches`, starting at
    /// position 0.
    pub fn new(batches: &'a [MiniBatch], window: usize) -> Self {
        assert!(window >= 1, "lookahead window must be >= 1");
        LookaheadWindow {
            batches,
            pos: 0,
            window,
        }
    }

    /// The current batch. Panics when the stream is exhausted
    /// (check [`LookaheadWindow::is_finished`] first).
    pub fn current(&self) -> &'a MiniBatch {
        &self.batches[self.pos]
    }

    /// Batch `k` steps ahead of the cursor (`k = 0` is the current batch).
    /// `None` when `k` exceeds the window or runs past the end of the
    /// stream.
    pub fn peek(&self, k: usize) -> Option<&'a MiniBatch> {
        if k > self.window {
            return None;
        }
        self.batches.get(self.pos + k)
    }

    /// Advances the cursor one batch.
    pub fn advance(&mut self) {
        self.pos += 1;
    }

    /// Cursor position (batches consumed so far).
    pub fn pos(&self) -> usize {
        self.pos
    }

    /// Lookahead depth W.
    pub fn window(&self) -> usize {
        self.window
    }

    /// Total batches in the underlying stream.
    pub fn len(&self) -> usize {
        self.batches.len()
    }

    /// True when there are no batches in the stream.
    pub fn is_empty(&self) -> bool {
        self.batches.is_empty()
    }

    /// True once the cursor has walked off the end of the stream.
    pub fn is_finished(&self) -> bool {
        self.pos >= self.batches.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::configs::DlrmConfig;
    use crate::distributions::IndexDistribution;
    use dlrm_tensor::init::seeded_rng;

    fn stream(count: usize) -> Vec<MiniBatch> {
        let cfg = DlrmConfig::small().scaled_down(32, 64);
        (0..count)
            .map(|i| {
                let mut rng = seeded_rng(900 + i as u64, 5);
                MiniBatch::random(&cfg, 4, IndexDistribution::Uniform, &mut rng)
            })
            .collect()
    }

    #[test]
    fn window_walks_the_stream_and_drains() {
        let batches = stream(3);
        let mut win = LookaheadWindow::new(&batches, 2);
        assert_eq!(win.len(), 3);
        assert!(!win.is_empty());
        // At pos 0 the whole window is visible.
        assert!(std::ptr::eq(win.current(), &batches[0]));
        assert!(std::ptr::eq(win.peek(0).unwrap(), &batches[0]));
        assert!(std::ptr::eq(win.peek(2).unwrap(), &batches[2]));
        assert!(win.peek(3).is_none(), "peek past the window");
        win.advance();
        // Near the end the window truncates instead of wrapping.
        assert!(std::ptr::eq(win.peek(1).unwrap(), &batches[2]));
        assert!(win.peek(2).is_none(), "peek past the end of the stream");
        win.advance();
        assert_eq!(win.pos(), 2);
        assert!(!win.is_finished());
        win.advance();
        assert!(win.is_finished());
    }
}
