//! The 8-socket twisted-hypercube UPI fabric (Fig. 3, Inspur TS860M5).
//!
//! Each Platinum-series socket has 3 UPI links but 7 peers, so the sockets
//! are wired as a *twisted* hypercube: a 3-cube with one dimension's links
//! crossed. The twist shortens the worst-case distance from 3 hops (plain
//! cube, antipodal) to 2 hops, balancing the communication paths — 3 peers
//! at 1 hop, 4 peers at 2 hops from every socket.

use crate::{bfs_hops, Bps, Interconnect, Seconds};

/// Per-direction bandwidth of one UPI link (≈22 GB/s bidirectional per the
/// paper; we model 22 GB/s usable for a one-way stream since DLRM's
/// collectives are symmetric and keep both directions busy).
pub const UPI_LINK_BPS: Bps = 22.0e9;

/// UPI hop latency — sub-microsecond; 0.1 µs per hop.
pub const UPI_HOP_LATENCY: Seconds = 0.1e-6;

/// The 8-socket twisted hypercube.
pub struct TwistedHypercube8 {
    adj: Vec<Vec<usize>>,
    hops: Vec<Vec<usize>>,
}

impl Default for TwistedHypercube8 {
    fn default() -> Self {
        Self::new()
    }
}

impl TwistedHypercube8 {
    /// Builds the fabric with the canonical twisted wiring.
    pub fn new() -> Self {
        // Dimensions 0 and 1 are plain cube edges; dimension 2 is twisted:
        // the (2,6)/(3,7) pair is crossed into (2,7)/(3,6).
        let edges: [(usize, usize); 12] = [
            (0, 1),
            (2, 3),
            (4, 5),
            (6, 7), // dim 0
            (0, 2),
            (1, 3),
            (4, 6),
            (5, 7), // dim 1
            (0, 4),
            (1, 5),
            (2, 7),
            (3, 6), // dim 2, twisted
        ];
        let mut adj = vec![Vec::new(); 8];
        for &(a, b) in &edges {
            adj[a].push(b);
            adj[b].push(a);
        }
        let hops = (0..8).map(|s| bfs_hops(&adj, s)).collect();
        TwistedHypercube8 { adj, hops }
    }

    /// Number of unique UPI links (12 — paper: "260 GB/s aggregated" at
    /// 22 GB/s per link).
    pub fn num_links(&self) -> usize {
        self.adj.iter().map(|n| n.len()).sum::<usize>() / 2
    }

    /// Direct neighbours of a socket.
    pub fn neighbors(&self, s: usize) -> &[usize] {
        &self.adj[s]
    }

    /// Aggregate fabric bandwidth (all links, both directions counted once).
    pub fn aggregate_bandwidth(&self) -> Bps {
        self.num_links() as f64 * UPI_LINK_BPS
    }

    /// The deterministic shortest route `a → b` (lowest-numbered neighbour
    /// first on ties), as the list of sockets visited including both ends.
    pub fn route(&self, a: usize, b: usize) -> Vec<usize> {
        let mut path = vec![a];
        let mut cur = a;
        while cur != b {
            // Greedy step to any neighbour strictly closer to b.
            let next = *self.adj[cur]
                .iter()
                .filter(|&&n| self.hops(n, b) < self.hops(cur, b))
                .min()
                .expect("connected fabric always has a closer neighbour");
            path.push(next);
            cur = next;
        }
        path
    }

    /// Directed per-link traffic of a uniform alltoall over the first
    /// `ranks` sockets with this deterministic routing: how many (src, dst)
    /// unit flows cross each physical link. The imbalance of this histogram
    /// is why the generic pairwise schedule leaves UPI bandwidth on the
    /// table beyond 4 sockets (Section VI-D3).
    pub fn alltoall_link_loads(
        &self,
        ranks: usize,
    ) -> std::collections::BTreeMap<(usize, usize), u32> {
        assert!((1..=8).contains(&ranks));
        let mut loads = std::collections::BTreeMap::new();
        for a in 0..ranks {
            for b in 0..ranks {
                if a == b {
                    continue;
                }
                for hop in self.route(a, b).windows(2) {
                    *loads.entry((hop[0], hop[1])).or_insert(0) += 1;
                }
            }
        }
        loads
    }

    /// Maximum directed-link load of the uniform alltoall (the congestion
    /// bottleneck), in unit flows.
    pub fn max_link_load(&self, ranks: usize) -> u32 {
        self.alltoall_link_loads(ranks)
            .values()
            .copied()
            .max()
            .unwrap_or(0)
    }
}

impl Interconnect for TwistedHypercube8 {
    fn nranks(&self) -> usize {
        8
    }

    fn hops(&self, a: usize, b: usize) -> usize {
        self.hops[a][b]
    }

    fn latency(&self, a: usize, b: usize) -> Seconds {
        self.hops(a, b) as f64 * UPI_HOP_LATENCY
    }

    fn path_bandwidth(&self, a: usize, b: usize) -> Bps {
        if a == b {
            f64::INFINITY
        } else {
            UPI_LINK_BPS
        }
    }

    fn ring_bandwidth(&self, ranks: usize) -> Bps {
        assert!((1..=8).contains(&ranks));
        if ranks == 1 {
            return f64::INFINITY;
        }
        // A ring embedded over socket ids 0..ranks traverses on average
        // `avg_hops` physical links per logical hop; links shared by two
        // logical hops halve the sustained rate.
        let mut total_hops = 0usize;
        for r in 0..ranks {
            total_hops += self.hops(r, (r + 1) % ranks);
        }
        let avg = total_hops as f64 / ranks as f64;
        UPI_LINK_BPS / avg.max(1.0)
    }

    fn alltoall_bandwidth(&self, ranks: usize) -> Bps {
        assert!((1..=8).contains(&ranks));
        if ranks == 1 {
            return f64::INFINITY;
        }
        // Each socket injects through its min(ranks-1, 3) links; traffic to
        // 2-hop peers crosses two links. The sustained per-rank rate is the
        // injection capacity divided by the average path length, further
        // degraded because the alltoall schedule is not tuned for the
        // twisted wiring (Section VI-D3: "the alltoall implementation is
        // not optimally tuned for twisted-hypercube connectivity").
        let links = (ranks - 1).min(3) as f64;
        let mut tot = 0usize;
        let mut pairs = 0usize;
        for a in 0..ranks {
            for b in 0..ranks {
                if a != b {
                    tot += self.hops(a, b);
                    pairs += 1;
                }
            }
        }
        let avg_hops = tot as f64 / pairs as f64;
        const SCHEDULE_EFFICIENCY: f64 = 0.7;
        // Beyond 4 sockets the pairwise schedule involves 2-hop partners
        // whose forwarded traffic collides on shared links; the generic
        // (non-topology-aware) schedule loses a further ~30% (Section
        // VI-D3: the alltoall cost does not drop from 4 to 8 sockets).
        let untuned = if ranks > 4 { 0.7 } else { 1.0 };
        untuned * SCHEDULE_EFFICIENCY * links * UPI_LINK_BPS / avg_hops
    }

    fn name(&self) -> &str {
        "8-socket twisted hypercube (UPI)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_socket_has_three_links() {
        let t = TwistedHypercube8::new();
        for s in 0..8 {
            assert_eq!(t.neighbors(s).len(), 3, "socket {s}");
        }
        assert_eq!(t.num_links(), 12);
    }

    #[test]
    fn aggregate_bandwidth_matches_paper() {
        // Paper: "an aggregated system UPI bandwidth of 260 GB/s".
        let t = TwistedHypercube8::new();
        let gbs = t.aggregate_bandwidth() / 1e9;
        assert!((255.0..=270.0).contains(&gbs), "{gbs} GB/s");
    }

    #[test]
    fn three_one_hop_and_four_two_hop_peers() {
        // The twisted wiring's defining property (Section V-A).
        let t = TwistedHypercube8::new();
        for s in 0..8 {
            let one = (0..8).filter(|&p| t.hops(s, p) == 1).count();
            let two = (0..8).filter(|&p| t.hops(s, p) == 2).count();
            assert_eq!((one, two), (3, 4), "socket {s}");
            assert_eq!(t.hops(s, s), 0);
        }
    }

    #[test]
    fn no_peer_is_three_hops_away() {
        let t = TwistedHypercube8::new();
        for a in 0..8 {
            for b in 0..8 {
                assert!(t.hops(a, b) <= 2, "{a}->{b} = {} hops", t.hops(a, b));
            }
        }
    }

    #[test]
    fn hops_are_symmetric() {
        let t = TwistedHypercube8::new();
        for a in 0..8 {
            for b in 0..8 {
                assert_eq!(t.hops(a, b), t.hops(b, a));
            }
        }
    }

    #[test]
    fn ring_bandwidth_decreases_with_multi_hop_rings() {
        let t = TwistedHypercube8::new();
        assert_eq!(t.ring_bandwidth(1), f64::INFINITY);
        // 2 sockets: direct link.
        assert_eq!(t.ring_bandwidth(2), UPI_LINK_BPS);
        // 8-socket ring includes 2-hop segments -> less than a full link.
        assert!(t.ring_bandwidth(8) < UPI_LINK_BPS);
        assert!(t.ring_bandwidth(8) > 0.4 * UPI_LINK_BPS);
    }

    #[test]
    fn alltoall_bandwidth_grows_then_saturates() {
        let t = TwistedHypercube8::new();
        let b2 = t.alltoall_bandwidth(2);
        let b4 = t.alltoall_bandwidth(4);
        let b8 = t.alltoall_bandwidth(8);
        assert!(b2 > 0.0 && b4 > 0.0 && b8 > 0.0);
        // With 8 ranks, average path length grows, so per-rank bandwidth
        // drops vs the 4-rank case — the "alltoall does not improve from 4
        // to 8 sockets" observation of Fig. 15.
        assert!(b8 < b4, "b8={b8} should be < b4={b4}");
    }

    #[test]
    fn routes_are_valid_shortest_paths() {
        let t = TwistedHypercube8::new();
        for a in 0..8 {
            for b in 0..8 {
                let path = t.route(a, b);
                assert_eq!(path.first(), Some(&a));
                assert_eq!(path.last(), Some(&b));
                assert_eq!(path.len(), t.hops(a, b) + 1, "{a}->{b}");
                for hop in path.windows(2) {
                    assert!(
                        t.neighbors(hop[0]).contains(&hop[1]),
                        "{a}->{b} uses non-edge {}->{}",
                        hop[0],
                        hop[1]
                    );
                }
            }
        }
    }

    #[test]
    fn alltoall_link_loads_conserve_flow() {
        let t = TwistedHypercube8::new();
        for ranks in [2usize, 4, 8] {
            let loads = t.alltoall_link_loads(ranks);
            let total: u32 = loads.values().sum();
            // Sum of per-link flows == sum of path lengths over all pairs.
            let want: u32 = (0..ranks)
                .flat_map(|a| (0..ranks).map(move |b| (a, b)))
                .filter(|(a, b)| a != b)
                .map(|(a, b)| t.hops(a, b) as u32)
                .sum();
            assert_eq!(total, want, "ranks={ranks}");
            // Loads only on physical edges.
            for &(u, v) in loads.keys() {
                assert!(t.neighbors(u).contains(&v));
            }
        }
    }

    #[test]
    fn deterministic_routing_is_imbalanced_at_eight_sockets() {
        // The quantitative basis of the untuned-schedule penalty: with all
        // 56 flows routed greedily, some link carries well more than the
        // perfectly balanced 88/24 ≈ 3.7 flows.
        let t = TwistedHypercube8::new();
        let loads = t.alltoall_link_loads(8);
        let total: u32 = loads.values().sum();
        let links = loads.len() as f64; // 24 directed links
        let balanced = total as f64 / links;
        let max = t.max_link_load(8) as f64;
        assert!(
            max >= 1.3 * balanced,
            "max load {max} vs balanced {balanced:.1} — expected visible imbalance"
        );
        // At 8 sockets every one of the 24 directed links is in play, so
        // the imbalance wastes fabric capacity that a topology-aware
        // schedule could recover.
        assert_eq!(loads.len(), 24, "all directed links carry traffic");
    }

    #[test]
    fn latency_scales_with_hops() {
        let t = TwistedHypercube8::new();
        assert_eq!(t.latency(0, 0), 0.0);
        assert_eq!(t.latency(0, 1), UPI_HOP_LATENCY);
        let two_hop_peer = (0..8).find(|&p| t.hops(0, p) == 2).unwrap();
        assert_eq!(t.latency(0, two_hop_peer), 2.0 * UPI_HOP_LATENCY);
    }
}
