//! The 64-socket pruned fat-tree OPA cluster (Fig. 4).
//!
//! 32 dual-socket nodes; each socket has its own 100G Omni-Path adapter.
//! 16 nodes (32 sockets) hang off each of two leaf switches; the leaves
//! connect to a root switch with 16 links each — a 2:1 pruning, so 200 GB/s
//! within a leaf and 200 GB/s between the leaves.

use crate::{Bps, Interconnect, Seconds};

/// One-way bandwidth of a 100G OPA adapter ≈ 12.5 GB/s.
pub const OPA_LINK_BPS: Bps = 12.5e9;

/// OPA port-to-port latency (paper: "100G connectivity at 1 µs latency").
pub const OPA_LATENCY: Seconds = 1.0e-6;

/// Fraction of nominal bandwidth reachable through the NIC stack — the
/// paper notes OPA data "needs to be copied through the network card stack
/// which means multiple internal data copies", unlike UPI's direct stores.
pub const NIC_EFFICIENCY: f64 = 0.85;

/// A two-level pruned fat-tree.
pub struct PrunedFatTree {
    sockets: usize,
    sockets_per_leaf: usize,
    /// Ratio of leaf down-links to leaf up-links (2.0 = the paper's 2:1).
    pruning: f64,
}

impl Default for PrunedFatTree {
    fn default() -> Self {
        Self::paper_cluster()
    }
}

impl PrunedFatTree {
    /// The paper's cluster: 64 sockets, 32 per leaf, 2:1 pruning.
    pub fn paper_cluster() -> Self {
        PrunedFatTree {
            sockets: 64,
            sockets_per_leaf: 32,
            pruning: 2.0,
        }
    }

    /// Custom fat-tree for what-if studies.
    pub fn new(sockets: usize, sockets_per_leaf: usize, pruning: f64) -> Self {
        assert!(sockets >= 1 && sockets_per_leaf >= 1 && pruning >= 1.0);
        PrunedFatTree {
            sockets,
            sockets_per_leaf,
            pruning,
        }
    }

    /// Leaf switch a socket hangs off.
    pub fn leaf_of(&self, s: usize) -> usize {
        s / self.sockets_per_leaf
    }

    /// Aggregate up-link bandwidth of one leaf (after pruning).
    pub fn leaf_uplink_bandwidth(&self) -> Bps {
        self.sockets_per_leaf as f64 * OPA_LINK_BPS / self.pruning
    }
}

impl Interconnect for PrunedFatTree {
    fn nranks(&self) -> usize {
        self.sockets
    }

    fn hops(&self, a: usize, b: usize) -> usize {
        if a == b {
            0
        } else if self.leaf_of(a) == self.leaf_of(b) {
            2 // socket -> leaf -> socket
        } else {
            4 // socket -> leaf -> root -> leaf -> socket
        }
    }

    fn latency(&self, a: usize, b: usize) -> Seconds {
        match self.hops(a, b) {
            0 => 0.0,
            2 => OPA_LATENCY,
            _ => 2.0 * OPA_LATENCY,
        }
    }

    fn path_bandwidth(&self, a: usize, b: usize) -> Bps {
        if a == b {
            f64::INFINITY
        } else {
            NIC_EFFICIENCY * OPA_LINK_BPS
        }
    }

    fn ring_bandwidth(&self, ranks: usize) -> Bps {
        assert!(ranks >= 1 && ranks <= self.sockets);
        if ranks == 1 {
            return f64::INFINITY;
        }
        // A rank order that fills leaves consecutively crosses the root on
        // only 2 of the R ring links, so the NIC — not the pruned up-link —
        // is the ring bottleneck.
        NIC_EFFICIENCY * OPA_LINK_BPS
    }

    fn alltoall_bandwidth(&self, ranks: usize) -> Bps {
        assert!(ranks >= 1 && ranks <= self.sockets);
        if ranks == 1 {
            return f64::INFINITY;
        }
        let nic = NIC_EFFICIENCY * OPA_LINK_BPS;
        if ranks <= self.sockets_per_leaf {
            // Entirely within one leaf: full bisection, NIC-bound.
            return nic;
        }
        // Cross-leaf fraction of a uniform alltoall from one rank's view:
        // peers on the other leaf / all peers. That traffic shares the
        // pruned up-links.
        let other = (ranks - self.sockets_per_leaf) as f64;
        let cross_frac = other / (ranks - 1) as f64;
        let per_rank_uplink_share = self.leaf_uplink_bandwidth() / self.sockets_per_leaf as f64;
        // Per-rank sustained rate r satisfies: cross traffic rate
        // r*cross_frac ≤ uplink share, and total rate ≤ NIC.
        let uplink_bound = per_rank_uplink_share / cross_frac.max(1e-12);
        nic.min(uplink_bound)
    }

    fn name(&self) -> &str {
        "64-socket pruned fat-tree (OPA)"
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn leaf_assignment() {
        let t = PrunedFatTree::paper_cluster();
        assert_eq!(t.leaf_of(0), 0);
        assert_eq!(t.leaf_of(31), 0);
        assert_eq!(t.leaf_of(32), 1);
        assert_eq!(t.leaf_of(63), 1);
    }

    #[test]
    fn hop_structure() {
        let t = PrunedFatTree::paper_cluster();
        assert_eq!(t.hops(3, 3), 0);
        assert_eq!(t.hops(3, 17), 2);
        assert_eq!(t.hops(3, 40), 4);
        assert!(t.latency(3, 40) > t.latency(3, 17));
    }

    #[test]
    fn uplink_bandwidth_matches_paper() {
        // Paper: "200 GB/s within each leaf and 200 GB/s between leaves".
        let t = PrunedFatTree::paper_cluster();
        let gbs = t.leaf_uplink_bandwidth() / 1e9;
        assert!((195.0..=205.0).contains(&gbs), "{gbs} GB/s");
    }

    #[test]
    fn ring_is_nic_bound() {
        let t = PrunedFatTree::paper_cluster();
        let bw = t.ring_bandwidth(64);
        assert!((bw - NIC_EFFICIENCY * OPA_LINK_BPS).abs() < 1.0);
    }

    #[test]
    fn alltoall_within_leaf_is_nic_bound() {
        let t = PrunedFatTree::paper_cluster();
        for r in [2usize, 8, 16, 32] {
            assert_eq!(t.alltoall_bandwidth(r), NIC_EFFICIENCY * OPA_LINK_BPS);
        }
    }

    #[test]
    fn two_to_one_pruning_is_balanced_for_alltoall() {
        // The design insight behind the paper's 2:1 pruning: in a uniform
        // 64-rank alltoall only ~half the traffic crosses the root, so the
        // pruned up-links (12.3 GB/s effective share) do not bind below the
        // NIC (10.6 GB/s) — cross-leaf alltoall runs at full NIC rate.
        let t = PrunedFatTree::paper_cluster();
        let within = t.alltoall_bandwidth(32);
        let across = t.alltoall_bandwidth(64);
        assert!(across <= within, "pruning must not speed things up");
        assert_eq!(across, within, "2:1 pruning should exactly balance");
    }

    #[test]
    fn single_rank_is_free() {
        let t = PrunedFatTree::paper_cluster();
        assert_eq!(t.ring_bandwidth(1), f64::INFINITY);
        assert_eq!(t.alltoall_bandwidth(1), f64::INFINITY);
    }

    #[test]
    fn custom_tree_pruning_parameter() {
        let flat = PrunedFatTree::new(64, 32, 1.0);
        let pruned = PrunedFatTree::new(64, 32, 4.0);
        assert!(flat.alltoall_bandwidth(64) > pruned.alltoall_bandwidth(64));
    }
}
