//! Table-ownership and core-placement maps shared by the trainer and the
//! serving engine.
//!
//! The hybrid-parallel design (Section IV) partitions embedding tables
//! across ranks; the serving engine partitions the same tables across
//! in-process shards. Both used to hard-code the round-robin `t % n` rule
//! in their own corners — [`OwnershipMap`] extracts it into one explicit,
//! reusable mapping type so a future elastic reshard (rank set changes,
//! shard set changes) only has to swap the map, not chase modulo
//! arithmetic through two crates.
//!
//! [`CorePlacement`] is the companion compute map: which host cores each
//! shard's worker team should occupy. It is advisory — pinning is
//! best-effort at the thread-pool layer — but keeping it here means the
//! socket-topology crate owns *both* halves of placement: tables→shards
//! and shards→cores.

/// An explicit table → shard (or table → rank) ownership mapping.
///
/// The map is always a partition: every table has exactly one owner and
/// every owner's table list is ascending. [`OwnershipMap::round_robin`]
/// reproduces the trainer's historical `t % nshards` rule bit-for-bit;
/// [`OwnershipMap::from_owners`] accepts any explicit assignment (the hook
/// elastic resharding needs).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct OwnershipMap {
    /// Table → owning shard.
    owners: Vec<usize>,
    /// Table → position within its owner's ascending table list.
    local: Vec<usize>,
    /// Shard → owned tables, ascending.
    tables: Vec<Vec<usize>>,
}

impl OwnershipMap {
    /// The round-robin map: table `t` is owned by shard `t % nshards` —
    /// exactly the rule previously hard-coded in `dlrm-dist`.
    pub fn round_robin(num_tables: usize, nshards: usize) -> Self {
        assert!(nshards >= 1, "ownership map needs at least one shard");
        Self::from_owners((0..num_tables).map(|t| t % nshards).collect(), nshards)
    }

    /// The round-robin owner of table `t` without building a map — the
    /// allocation-free form for hot paths that only need one lookup.
    #[inline]
    pub fn round_robin_owner(t: usize, nshards: usize) -> usize {
        t % nshards
    }

    /// An arbitrary explicit assignment (`owners[t]` = owning shard).
    /// Panics if any owner is out of range.
    pub fn from_owners(owners: Vec<usize>, nshards: usize) -> Self {
        assert!(nshards >= 1, "ownership map needs at least one shard");
        let mut tables: Vec<Vec<usize>> = vec![Vec::new(); nshards];
        let mut local = Vec::with_capacity(owners.len());
        for (t, &q) in owners.iter().enumerate() {
            assert!(q < nshards, "table {t} assigned to shard {q} >= {nshards}");
            local.push(tables[q].len());
            tables[q].push(t);
        }
        OwnershipMap {
            owners,
            local,
            tables,
        }
    }

    /// Number of tables in the map.
    pub fn num_tables(&self) -> usize {
        self.owners.len()
    }

    /// Number of shards (some may own no tables).
    pub fn num_shards(&self) -> usize {
        self.tables.len()
    }

    /// Owning shard of table `t`.
    #[inline]
    pub fn owner_of(&self, t: usize) -> usize {
        self.owners[t]
    }

    /// Position of table `t` within [`Self::tables_of`]`(owner_of(t))`.
    #[inline]
    pub fn local_index(&self, t: usize) -> usize {
        self.local[t]
    }

    /// Tables owned by shard `q`, ascending.
    pub fn tables_of(&self, q: usize) -> &[usize] {
        &self.tables[q]
    }
}

/// Which host cores each shard's worker team should occupy.
///
/// The contiguous layout keeps a shard's workers on neighbouring cores
/// (shared L2/LLC slice on most parts) and spreads shards across the
/// machine; when the machine has fewer cores than workers the assignment
/// wraps (deliberate oversubscription rather than refusal, so the same
/// configuration runs on a laptop and a 2-socket server).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CorePlacement {
    cores: Vec<Vec<usize>>,
}

impl CorePlacement {
    /// Places `nshards` teams of `workers_per_shard` on `host_cores` cores:
    /// worker `w` of shard `s` gets core `(s·W + w) mod host_cores`.
    pub fn contiguous(host_cores: usize, nshards: usize, workers_per_shard: usize) -> Self {
        assert!(host_cores >= 1, "placement needs at least one core");
        assert!(
            workers_per_shard >= 1,
            "placement needs at least one worker per shard"
        );
        let cores = (0..nshards)
            .map(|s| {
                (0..workers_per_shard)
                    .map(|w| (s * workers_per_shard + w) % host_cores)
                    .collect()
            })
            .collect();
        CorePlacement { cores }
    }

    /// Number of shard teams placed.
    pub fn num_shards(&self) -> usize {
        self.cores.len()
    }

    /// Core ids assigned to shard `s`'s workers, in worker order.
    pub fn shard_cores(&self, s: usize) -> &[usize] {
        &self.cores[s]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_robin_is_a_partition_matching_the_modulo_rule() {
        for nshards in 1..=8 {
            for num_tables in 0..=13 {
                let map = OwnershipMap::round_robin(num_tables, nshards);
                assert_eq!(map.num_tables(), num_tables);
                assert_eq!(map.num_shards(), nshards);
                let mut seen = vec![false; num_tables];
                for q in 0..nshards {
                    let mut prev = None;
                    for &t in map.tables_of(q) {
                        assert_eq!(t % nshards, q, "modulo rule");
                        assert_eq!(map.owner_of(t), q);
                        assert_eq!(
                            OwnershipMap::round_robin_owner(t, nshards),
                            q,
                            "allocation-free form must agree"
                        );
                        assert!(prev.map_or(true, |p| p < t), "ascending");
                        prev = Some(t);
                        assert!(!seen[t], "table owned twice");
                        seen[t] = true;
                    }
                }
                assert!(seen.iter().all(|&s| s), "every table owned");
            }
        }
    }

    #[test]
    fn local_index_inverts_tables_of() {
        let map = OwnershipMap::round_robin(11, 4);
        for t in 0..11 {
            let q = map.owner_of(t);
            assert_eq!(map.tables_of(q)[map.local_index(t)], t);
        }
    }

    #[test]
    fn explicit_owners_round_trip() {
        let map = OwnershipMap::from_owners(vec![2, 0, 2, 1], 3);
        assert_eq!(map.tables_of(0), &[1]);
        assert_eq!(map.tables_of(1), &[3]);
        assert_eq!(map.tables_of(2), &[0, 2]);
        assert_eq!(map.local_index(2), 1);
        // A shard may own nothing.
        let map = OwnershipMap::from_owners(vec![0, 0], 4);
        assert!(map.tables_of(3).is_empty());
    }

    #[test]
    #[should_panic(expected = "assigned to shard")]
    fn out_of_range_owner_is_rejected() {
        let _ = OwnershipMap::from_owners(vec![0, 5], 2);
    }

    #[test]
    fn contiguous_placement_tiles_then_wraps() {
        let p = CorePlacement::contiguous(8, 3, 2);
        assert_eq!(p.shard_cores(0), &[0, 1]);
        assert_eq!(p.shard_cores(1), &[2, 3]);
        assert_eq!(p.shard_cores(2), &[4, 5]);
        // More workers than cores: wrap, never panic.
        let p = CorePlacement::contiguous(2, 3, 2);
        assert_eq!(p.shard_cores(0), &[0, 1]);
        assert_eq!(p.shard_cores(1), &[0, 1]);
        assert_eq!(p.shard_cores(2), &[0, 1]);
        assert_eq!(p.num_shards(), 3);
    }
}
