//! # dlrm-topology — interconnect models of the two test beds
//!
//! Section V of the paper describes two machines:
//!
//! * an 8-socket shared-memory node whose sockets form a **twisted
//!   hypercube** of UPI links ([`hypercube::TwistedHypercube8`], Fig. 3) —
//!   3 links per socket, 12 unique links of ≈22 GB/s, every peer reachable
//!   in ≤2 hops;
//! * a 64-socket cluster wired as a **2:1 pruned fat-tree** of 100G
//!   Omni-Path ([`fattree::PrunedFatTree`], Fig. 4) — 16 dual-socket nodes
//!   per leaf switch, two leaves under one root with half bandwidth going
//!   up.
//!
//! Both implement [`Interconnect`], the graph-level interface the cluster
//! simulator queries: hop counts, per-link bandwidths, and the effective
//! bandwidths seen by ring (allreduce) and pairwise (alltoall) collective
//! schedules.
//!
//! [`placement`] holds the *placement* maps layered on top of the wiring:
//! [`OwnershipMap`] (table → shard/rank, shared by the distributed trainer
//! and the sharded serving engine) and [`CorePlacement`] (shard worker
//! team → host cores).

pub mod fattree;
pub mod hypercube;
pub mod placement;

pub use fattree::PrunedFatTree;
pub use hypercube::TwistedHypercube8;
pub use placement::{CorePlacement, OwnershipMap};

/// Seconds, bytes-per-second — all cost math is in SI units.
pub type Seconds = f64;
/// Bandwidth in bytes per second.
pub type Bps = f64;

/// A socket-level interconnect.
pub trait Interconnect {
    /// Number of sockets (ranks).
    fn nranks(&self) -> usize;

    /// Hop count between two sockets (0 for self).
    fn hops(&self, a: usize, b: usize) -> usize;

    /// One-way latency between two sockets in seconds.
    fn latency(&self, a: usize, b: usize) -> Seconds;

    /// Bandwidth of the narrowest link on the path `a → b`, bytes/s.
    fn path_bandwidth(&self, a: usize, b: usize) -> Bps;

    /// Effective per-rank bandwidth sustained by a ring schedule over the
    /// first `ranks` sockets (each rank talks only to ring neighbours).
    fn ring_bandwidth(&self, ranks: usize) -> Bps;

    /// Effective per-rank bandwidth sustained by a pairwise alltoall over
    /// the first `ranks` sockets, accounting for multi-hop traffic and
    /// shared up-links.
    fn alltoall_bandwidth(&self, ranks: usize) -> Bps;

    /// Human-readable name for reports.
    fn name(&self) -> &str;
}

/// Breadth-first hop counts over an adjacency list — shared by both
/// topologies' constructors.
pub(crate) fn bfs_hops(adj: &[Vec<usize>], src: usize) -> Vec<usize> {
    let n = adj.len();
    let mut dist = vec![usize::MAX; n];
    let mut queue = std::collections::VecDeque::new();
    dist[src] = 0;
    queue.push_back(src);
    while let Some(u) = queue.pop_front() {
        for &v in &adj[u] {
            if dist[v] == usize::MAX {
                dist[v] = dist[u] + 1;
                queue.push_back(v);
            }
        }
    }
    dist
}
