//! The request-level serving engine: concurrent single-user requests →
//! micro-batches → forward-only DLRM → per-request latency accounting.
//!
//! A [`ServeModel`] is a forward-only view over the training stack: the
//! same bottom-MLP / embedding-bag / interaction / top-MLP kernels, with
//! each embedding table optionally fronted by a [`HotRowCache`]. A
//! [`ServeEngine`] owns one `ServeModel` on a dedicated worker thread and
//! feeds it batches from a [`MicroBatcher`]; clients submit one sample at a
//! time from any thread and block (or poll) for their scored response.

use crate::batcher::MicroBatcher;
use crate::cache::{CacheStats, HotRowCache};
use dlrm::layers::Execution;
use dlrm::model::DlrmModel;
use dlrm::precision::PrecisionMode;
use dlrm_data::{DlrmConfig, MiniBatch};
use dlrm_kernels::activations::sigmoid;
use dlrm_kernels::embedding::{self, rowops, UpdateStrategy};
use dlrm_kernels::gemm::micro::detect_isa;
use dlrm_tensor::Matrix;
use std::sync::mpsc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// How each table's hot-row cache is sized.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum CacheSizing {
    /// No cache: every gather reads the backing table.
    Disabled,
    /// A fixed number of rows per table.
    Rows(usize),
    /// A fraction of each table's rows (`ceil(M · f)`, at least 1).
    Fraction(f64),
}

impl CacheSizing {
    pub(crate) fn rows_for_table(&self, m: usize) -> Option<usize> {
        match *self {
            CacheSizing::Disabled => None,
            CacheSizing::Rows(r) => Some(r.clamp(1, m.max(1))),
            CacheSizing::Fraction(f) => {
                assert!(f > 0.0, "cache fraction must be positive");
                Some(((m as f64 * f).ceil() as usize).clamp(1, m.max(1)))
            }
        }
    }
}

/// Engine configuration: the batching dial plus compute resources.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Micro-batch size cap.
    pub max_batch: usize,
    /// Batching window: max wait from the first queued request before the
    /// batch is closed out (see [`MicroBatcher::next_batch`]).
    pub window: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            max_batch: 32,
            window: Duration::from_micros(200),
        }
    }
}

/// One inference request: a single user/sample.
#[derive(Debug, Clone)]
pub struct Request {
    /// Dense features, length `cfg.dense_features`.
    pub dense: Vec<f32>,
    /// Per-table lookup indices (any bag length, including empty).
    pub indices: Vec<Vec<u32>>,
}

/// The scored response for one request.
#[derive(Debug, Clone, Copy)]
pub struct Response {
    /// Raw click logit.
    pub logit: f32,
    /// `sigmoid(logit)` — the predicted click probability.
    pub prob: f32,
    /// Submission → response-ready latency as seen by the engine.
    pub latency: Duration,
}

/// A forward-only DLRM with optional per-table hot-row caches.
pub struct ServeModel {
    model: DlrmModel,
    caches: Vec<Option<HotRowCache>>,
    /// Reused per-table gather outputs (`N × E` each).
    gather_outs: Vec<Matrix>,
}

impl ServeModel {
    /// Builds a forward-only model for `cfg`, seeded exactly like
    /// [`DlrmModel::new`] — the same `seed` reconstructs bitwise-identical
    /// weights, which is what the cached-vs-uncached identity gates compare
    /// against.
    pub fn new(cfg: &DlrmConfig, exec: Execution, cache: CacheSizing, seed: u64) -> Self {
        let mut model = DlrmModel::new(
            cfg,
            exec,
            UpdateStrategy::RaceFree,
            PrecisionMode::Fp32,
            seed,
        );
        if matches!(model.exec, Execution::Optimized(_)) {
            // Forward-only plan: pay the weight-packing cost once at load
            // time, not on the first served request.
            model.bottom.prepack_weights();
            model.top.prepack_weights();
        }
        let caches = model
            .tables
            .iter()
            .map(|t| {
                cache
                    .rows_for_table(t.rows())
                    .map(|rows| HotRowCache::new(rows, t.dim()))
            })
            .collect();
        let gather_outs = model
            .tables
            .iter()
            .map(|t| Matrix::zeros(0, t.dim()))
            .collect();
        ServeModel {
            model,
            caches,
            gather_outs,
        }
    }

    /// The model configuration.
    pub fn cfg(&self) -> &DlrmConfig {
        &self.model.cfg
    }

    /// Per-table cache statistics (`None` for uncached tables).
    pub fn cache_stats(&self) -> Vec<Option<CacheStats>> {
        self.caches
            .iter()
            .map(|c| c.as_ref().map(|c| c.stats))
            .collect()
    }

    /// Zeroes every table's cache counters (e.g. after warm-up).
    pub fn reset_cache_stats(&mut self) {
        for c in self.caches.iter_mut().flatten() {
            c.stats.reset();
        }
    }

    /// Forward-only pass; returns per-sample logits. Embedding gathers run
    /// serially through the SIMD row primitives — through the hot-row cache
    /// where one is configured, bitwise identical either way.
    pub fn forward(&mut self, batch: &MiniBatch) -> Vec<f32> {
        let exec = self.model.exec.clone();
        let n = batch.batch_size();
        let z0 = self.model.bottom.forward(&exec, &batch.dense);
        let isa = detect_isa();
        for (t, layer) in self.model.tables.iter().enumerate() {
            let out = &mut self.gather_outs[t];
            out.resize_rows(n);
            match &mut self.caches[t] {
                Some(cache) => gather_cached(
                    cache,
                    &layer.weight,
                    &batch.indices[t],
                    &batch.offsets[t],
                    out,
                    isa,
                ),
                None => embedding::forward_serial(
                    &layer.weight,
                    &batch.indices[t],
                    &batch.offsets[t],
                    out,
                ),
            }
        }
        let inter = self
            .model
            .interaction
            .forward(&exec, &z0, &self.gather_outs);
        let logits = self.model.top.forward(&exec, &inter);
        debug_assert_eq!(logits.rows(), 1);
        logits.as_slice().to_vec()
    }
}

/// Bag-sum gather through the hot-row cache: same accumulation order and
/// SIMD row primitives as [`embedding::forward_serial`], with each row
/// served from the cache (admitting from `weight` on a miss). Cached rows
/// are verbatim copies, so the output is bitwise identical to the uncached
/// gather.
pub(crate) fn gather_cached(
    cache: &mut HotRowCache,
    weight: &Matrix,
    indices: &[u32],
    offsets: &[usize],
    out: &mut Matrix,
    isa: dlrm_kernels::gemm::micro::Isa,
) {
    let n = offsets.len() - 1;
    assert_eq!(out.shape(), (n, weight.cols()), "gather output shape");
    for bag in 0..n {
        let out_row = out.row_mut(bag);
        out_row.fill(0.0);
        for &idx in &indices[offsets[bag]..offsets[bag + 1]] {
            let row = cache.get_or_admit(idx, weight);
            rowops::accumulate(isa, out_row, row);
        }
    }
}

pub(crate) struct Pending {
    pub(crate) req: Request,
    pub(crate) submitted: Instant,
    pub(crate) tx: mpsc::Sender<Response>,
}

/// Per-shard slice of an [`EngineReport`]: what one worker team saw.
///
/// The unsharded engine reports exactly one of these (shard 0 owning every
/// table); the sharded engine reports one per shard, so dashboards can
/// spot a hot shard (skewed `requests`, deep `queue_depth_hwm`, cold
/// caches) without re-deriving the table partition.
#[derive(Debug, Clone, Default)]
pub struct ShardReport {
    /// Shard index.
    pub shard: usize,
    /// Global table ids this shard's servers own.
    pub owned_tables: Vec<usize>,
    /// Requests whose MLP ran on this shard's lane.
    pub requests: u64,
    /// Micro-batches this shard's lane executed.
    pub batches: u64,
    /// Largest micro-batch this lane saw.
    pub max_batch_seen: usize,
    /// Engine-side latency of each request served by this lane, in
    /// microseconds, in completion order.
    pub latencies_us: Vec<u64>,
    /// High-water mark of requests visible to this lane when it pulled a
    /// batch (batch in hand + still queued behind it).
    pub queue_depth_hwm: usize,
    /// Cache statistics for this shard's owned tables, in `owned_tables`
    /// order (`None` for uncached tables).
    pub cache_stats: Vec<Option<CacheStats>>,
}

/// Aggregate statistics returned by [`ServeEngine::shutdown`].
#[derive(Debug, Clone, Default)]
pub struct EngineReport {
    /// Requests served.
    pub requests: u64,
    /// Micro-batches executed.
    pub batches: u64,
    /// Largest micro-batch seen.
    pub max_batch_seen: usize,
    /// Engine-side latency of every request, in microseconds
    /// (submission → response ready), in completion order.
    pub latencies_us: Vec<u64>,
    /// Final per-table cache statistics (`None` for uncached tables),
    /// indexed by global table id.
    pub cache_stats: Vec<Option<CacheStats>>,
    /// Per-shard breakdown (one entry for the unsharded engine).
    pub shards: Vec<ShardReport>,
}

impl EngineReport {
    /// Mean micro-batch size.
    pub fn mean_batch(&self) -> f64 {
        if self.batches == 0 {
            0.0
        } else {
            self.requests as f64 / self.batches as f64
        }
    }
}

/// A cloneable client handle for submitting requests to a running engine.
#[derive(Clone)]
pub struct ServeClient {
    batcher: MicroBatcher<Pending>,
    dense_features: usize,
    table_rows: Vec<u64>,
}

impl ServeClient {
    pub(crate) fn new(
        batcher: MicroBatcher<Pending>,
        dense_features: usize,
        table_rows: Vec<u64>,
    ) -> Self {
        ServeClient {
            batcher,
            dense_features,
            table_rows,
        }
    }

    fn validate(&self, req: &Request) -> Result<(), String> {
        if req.dense.len() != self.dense_features {
            return Err(format!(
                "dense feature length {} != {}",
                req.dense.len(),
                self.dense_features
            ));
        }
        if req.indices.len() != self.table_rows.len() {
            return Err(format!(
                "request has {} tables, model has {}",
                req.indices.len(),
                self.table_rows.len()
            ));
        }
        for (t, bag) in req.indices.iter().enumerate() {
            if let Some(&bad) = bag.iter().find(|&&i| i as u64 >= self.table_rows[t]) {
                return Err(format!(
                    "index {bad} out of bounds for table {t} ({} rows)",
                    self.table_rows[t]
                ));
            }
        }
        Ok(())
    }

    /// Validates and enqueues `req`; returns a handle to wait on. Fails if
    /// the request is malformed or the engine has shut down.
    pub fn submit(&self, req: Request) -> Result<ResponseHandle, String> {
        self.validate(&req)?;
        let (tx, rx) = mpsc::channel();
        let accepted = self.batcher.push(Pending {
            req,
            submitted: Instant::now(),
            tx,
        });
        if !accepted {
            return Err("engine is shut down".into());
        }
        Ok(ResponseHandle { rx })
    }

    /// Submits and blocks for the response.
    pub fn infer(&self, req: Request) -> Result<Response, String> {
        self.submit(req)?.wait()
    }
}

/// A pending response.
pub struct ResponseHandle {
    rx: mpsc::Receiver<Response>,
}

impl ResponseHandle {
    /// Blocks until the engine scores this request.
    pub fn wait(self) -> Result<Response, String> {
        self.rx
            .recv()
            .map_err(|_| "engine dropped the request (shut down mid-flight)".into())
    }
}

/// A running serving engine: one worker thread draining a micro-batcher
/// into a [`ServeModel`].
pub struct ServeEngine {
    client: ServeClient,
    batcher: MicroBatcher<Pending>,
    worker: Option<JoinHandle<EngineReport>>,
}

impl ServeEngine {
    /// Starts the engine, taking ownership of `model` on a worker thread.
    pub fn start(mut model: ServeModel, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        let batcher: MicroBatcher<Pending> = MicroBatcher::new();
        let client = ServeClient::new(
            batcher.clone(),
            model.cfg().dense_features,
            model.cfg().table_rows.clone(),
        );
        let num_tables = model.cfg().num_tables;
        let consumer = batcher.clone();
        let worker = std::thread::Builder::new()
            .name("dlrm-serve".into())
            .spawn(move || {
                let mut report = EngineReport::default();
                let mut queue_depth_hwm = 0usize;
                while let Some(mut pendings) = consumer.next_batch(cfg.max_batch, cfg.window) {
                    queue_depth_hwm = queue_depth_hwm.max(pendings.len() + consumer.len());
                    let batch = assemble(model.cfg(), &pendings);
                    let logits = model.forward(&batch);
                    report.batches += 1;
                    report.max_batch_seen = report.max_batch_seen.max(pendings.len());
                    for (i, p) in pendings.drain(..).enumerate() {
                        let latency = p.submitted.elapsed();
                        report.requests += 1;
                        report.latencies_us.push(latency.as_micros() as u64);
                        let _ = p.tx.send(Response {
                            logit: logits[i],
                            prob: sigmoid(logits[i]),
                            latency,
                        });
                    }
                }
                report.cache_stats = model.cache_stats();
                // The unsharded engine is the degenerate one-shard layout:
                // a single team owning every table.
                report.shards = vec![ShardReport {
                    shard: 0,
                    owned_tables: (0..num_tables).collect(),
                    requests: report.requests,
                    batches: report.batches,
                    max_batch_seen: report.max_batch_seen,
                    latencies_us: report.latencies_us.clone(),
                    queue_depth_hwm,
                    cache_stats: report.cache_stats.clone(),
                }];
                report
            })
            .expect("spawn serving worker");
        ServeEngine {
            client,
            batcher,
            worker: Some(worker),
        }
    }

    /// A cloneable client handle.
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// Stops accepting requests, drains what is queued, and returns the
    /// aggregate report.
    pub fn shutdown(mut self) -> EngineReport {
        self.batcher.close();
        self.worker
            .take()
            .expect("engine already shut down")
            .join()
            .expect("serving worker panicked")
    }
}

impl Drop for ServeEngine {
    fn drop(&mut self) {
        if let Some(worker) = self.worker.take() {
            self.batcher.close();
            let _ = worker.join();
        }
    }
}

/// Packs a micro-batch of pending requests into the kernel batch format
/// (dense is `C × N` — samples are columns; sparse is per-table CSR bags).
pub(crate) fn assemble(cfg: &DlrmConfig, pendings: &[Pending]) -> MiniBatch {
    let n = pendings.len();
    let dense = Matrix::from_fn(cfg.dense_features, n, |r, c| pendings[c].req.dense[r]);
    let mut indices = Vec::with_capacity(cfg.num_tables);
    let mut offsets = Vec::with_capacity(cfg.num_tables);
    for t in 0..cfg.num_tables {
        let mut idx = Vec::new();
        let mut off = Vec::with_capacity(n + 1);
        off.push(0usize);
        for p in pendings {
            idx.extend_from_slice(&p.req.indices[t]);
            off.push(idx.len());
        }
        indices.push(idx);
        offsets.push(off);
    }
    MiniBatch {
        dense,
        indices,
        offsets,
        labels: vec![0.0; n],
    }
}
