//! Micro-batcher: turns a concurrent stream of single items into bounded
//! batches under a batching window.
//!
//! Producers [`push`](MicroBatcher::push) items from any thread; any
//! number of consumers call [`next_batch`](MicroBatcher::next_batch),
//! which blocks until something is queued, then keeps collecting until
//! either `max_batch` items are available or `window` has elapsed since
//! the first item was seen — the classic throughput/latency dial of
//! batched serving (a wide window amortizes kernel launch over more
//! samples; a narrow one bounds the queueing delay added to every
//! request). With several consumers — the sharded engine runs one lane
//! per shard off a single batcher — a consumer that loses the race for a
//! freshly filled queue goes back to waiting instead of returning an
//! empty batch.

use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

struct BatchState<T> {
    queue: VecDeque<T>,
    closed: bool,
}

struct Shared<T> {
    state: Mutex<BatchState<T>>,
    cv: Condvar,
}

/// A cloneable multi-producer / single-consumer micro-batching queue.
pub struct MicroBatcher<T> {
    shared: Arc<Shared<T>>,
}

impl<T> Clone for MicroBatcher<T> {
    fn clone(&self) -> Self {
        MicroBatcher {
            shared: Arc::clone(&self.shared),
        }
    }
}

impl<T> Default for MicroBatcher<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> MicroBatcher<T> {
    /// An empty, open batcher.
    pub fn new() -> Self {
        MicroBatcher {
            shared: Arc::new(Shared {
                state: Mutex::new(BatchState {
                    queue: VecDeque::new(),
                    closed: false,
                }),
                cv: Condvar::new(),
            }),
        }
    }

    /// Enqueues one item. Returns `false` (dropping the item) if the
    /// batcher has been closed.
    pub fn push(&self, item: T) -> bool {
        let mut st = self.shared.state.lock().unwrap();
        if st.closed {
            return false;
        }
        st.queue.push_back(item);
        drop(st);
        self.shared.cv.notify_all();
        true
    }

    /// Closes the batcher: subsequent pushes are rejected; the consumer
    /// drains what is queued and then sees `None`.
    pub fn close(&self) {
        self.shared.state.lock().unwrap().closed = true;
        self.shared.cv.notify_all();
    }

    /// Items currently queued.
    pub fn len(&self) -> usize {
        self.shared.state.lock().unwrap().queue.len()
    }

    /// True when nothing is queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Blocks for the next micro-batch (1..=`max_batch` items): waits for a
    /// first item, then collects until `max_batch` or until `window` has
    /// elapsed. Returns `None` once the batcher is closed and drained —
    /// items queued at the moment `close` lands are still delivered, never
    /// dropped. Never returns an empty batch: if another consumer drains
    /// the queue first, this one resumes waiting.
    pub fn next_batch(&self, max_batch: usize, window: Duration) -> Option<Vec<T>> {
        assert!(max_batch >= 1, "max_batch must be >= 1");
        let mut st = self.shared.state.lock().unwrap();
        loop {
            while st.queue.is_empty() {
                if st.closed {
                    return None;
                }
                st = self.shared.cv.wait(st).unwrap();
            }
            let deadline = Instant::now() + window;
            while st.queue.len() < max_batch && !st.closed {
                let now = Instant::now();
                if now >= deadline {
                    break;
                }
                let (guard, wait) = self.shared.cv.wait_timeout(st, deadline - now).unwrap();
                st = guard;
                if wait.timed_out() {
                    break;
                }
            }
            // A concurrent consumer may have raced us to the queue while we
            // slept inside the window wait; an empty grab is not a batch.
            let take = st.queue.len().min(max_batch);
            if take > 0 {
                return Some(st.queue.drain(..take).collect());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn batches_respect_max_batch() {
        let b = MicroBatcher::new();
        for i in 0..10 {
            assert!(b.push(i));
        }
        let first = b.next_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(first, vec![0, 1, 2, 3]);
        let second = b.next_batch(4, Duration::from_millis(1)).unwrap();
        assert_eq!(second, vec![4, 5, 6, 7]);
    }

    #[test]
    fn window_flushes_partial_batch() {
        let b = MicroBatcher::new();
        b.push(7u32);
        let batch = b.next_batch(64, Duration::from_millis(5)).unwrap();
        assert_eq!(batch, vec![7]);
    }

    #[test]
    fn zero_window_is_immediate_batch_of_whatever_is_queued() {
        let b = MicroBatcher::new();
        b.push(1u32);
        b.push(2);
        let batch = b.next_batch(64, Duration::ZERO).unwrap();
        assert_eq!(batch, vec![1, 2]);
    }

    #[test]
    fn close_drains_then_ends() {
        let b = MicroBatcher::new();
        b.push(1u32);
        b.close();
        assert!(!b.push(2), "push after close must be rejected");
        assert_eq!(b.next_batch(8, Duration::ZERO), Some(vec![1]));
        assert_eq!(b.next_batch(8, Duration::ZERO), None);
    }

    #[test]
    fn competing_consumers_never_see_an_empty_batch_and_split_the_stream() {
        let b = MicroBatcher::new();
        let consumers: Vec<_> = (0..3)
            .map(|_| {
                let b = b.clone();
                thread::spawn(move || {
                    let mut got = Vec::new();
                    while let Some(batch) = b.next_batch(4, Duration::from_millis(2)) {
                        assert!(!batch.is_empty(), "empty batch delivered to a consumer");
                        got.extend(batch);
                    }
                    got
                })
            })
            .collect();
        for i in 0..300u32 {
            assert!(b.push(i));
            if i % 7 == 0 {
                thread::yield_now();
            }
        }
        b.close();
        let mut got: Vec<u32> = consumers
            .into_iter()
            .flat_map(|c| c.join().unwrap())
            .collect();
        got.sort_unstable();
        assert_eq!(got, (0..300).collect::<Vec<_>>());
    }

    #[test]
    fn items_queued_at_close_are_delivered_not_dropped() {
        let b = MicroBatcher::new();
        for i in 0..10u32 {
            assert!(b.push(i));
        }
        b.close();
        let mut got = Vec::new();
        while let Some(batch) = b.next_batch(3, Duration::ZERO) {
            got.extend(batch);
        }
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn cross_thread_producers_are_all_collected() {
        let b = MicroBatcher::new();
        let producers: Vec<_> = (0..4)
            .map(|t| {
                let b = b.clone();
                thread::spawn(move || {
                    for i in 0..25u32 {
                        assert!(b.push(t * 100 + i));
                    }
                })
            })
            .collect();
        for p in producers {
            p.join().unwrap();
        }
        b.close();
        let mut got = Vec::new();
        while let Some(batch) = b.next_batch(16, Duration::ZERO) {
            assert!(batch.len() <= 16);
            got.extend(batch);
        }
        got.sort_unstable();
        let mut want: Vec<u32> = (0..4)
            .flat_map(|t| (0..25).map(move |i| t * 100 + i))
            .collect();
        want.sort_unstable();
        assert_eq!(got, want);
    }
}
