//! Fixed-capacity, frequency-aware hot-row embedding cache.
//!
//! "Dissecting Embedding Bag Performance in DLRM Inference" (PAPERS.md)
//! shows the embedding-bag gather dominates DLRM inference and is bound by
//! cache residency, and BagPipe observes that under Zipf-shaped traffic a
//! cache holding the tiny popularity head captures the bulk of all lookups.
//! This cache exploits exactly that: a compact `capacity × E` row store
//! (contiguous, so the hot working set stays hardware-cache-resident
//! regardless of how the full table scatters) fronted by a row-id → slot
//! map.
//!
//! Replacement is CLOCK with frequency aging — a fixed-capacity
//! approximation of LFU: every hit bumps the slot's frequency counter;
//! a miss evicts the first slot whose counter has decayed to zero, halving
//! counters as the clock hand passes. Admission is gated by a TinyLFU-style
//! doorkeeper: an aged count of recent lookups per row, and a missed row
//! only enters the (full) cache once it has been seen twice in the current
//! aging window. The Zipf tail is dominated by
//! one-shot rows; filtering them keeps the resident set pinned to the
//! popularity head instead of churning it. Everything is O(1) amortized
//! per lookup.
//!
//! Rows are stored verbatim (bit-for-bit copies of the table rows), so a
//! gather served from the cache is bitwise identical to one served from
//! the backing table — the engine's identity gate relies on this.

use dlrm_kernels::embedding::RowStore;
use dlrm_tensor::Matrix;
use std::collections::HashMap;

/// Hit/miss instrumentation. Counters are cumulative; [`CacheStats::reset`]
/// zeroes them (used to exclude cold-start warm-up from measured hit rates).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Lookups served from the cache.
    pub hits: u64,
    /// Lookups that had to touch the backing table.
    pub misses: u64,
    /// Missed rows admitted into the cache.
    pub insertions: u64,
    /// Admissions that displaced a resident row.
    pub evictions: u64,
    /// Missed rows the doorkeeper declined to admit (served from the
    /// table without entering the cache).
    pub rejections: u64,
}

impl CacheStats {
    /// Fraction of lookups served from the cache (0 when no traffic yet).
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Zeroes all counters.
    pub fn reset(&mut self) {
        *self = CacheStats::default();
    }
}

/// Sentinel for an unoccupied slot (re-exported from the shared store so
/// existing policy code reads unchanged).
const EMPTY: u32 = RowStore::EMPTY_ROW;

/// A fixed-capacity cache of hot embedding rows (see module docs).
///
/// Storage (the compact `capacity × e` slot buffer and the slot → row
/// back-map) lives in the shared [`RowStore`]; this type owns only the
/// replacement and admission *policy* — CLOCK frequency aging, the
/// doorkeeper sketch, and the row → slot map.
pub struct HotRowCache {
    /// Compact row store, `capacity × e`, plus the slot → row back-map.
    store: RowStore,
    /// Slot → frequency counter (CLOCK aging state).
    freq: Vec<u32>,
    /// Table row → slot.
    map: HashMap<u32, u32>,
    /// CLOCK hand.
    hand: usize,
    /// Doorkeeper: exact per-row lookup counts for the recent window,
    /// halved (dropping zeroes) every [`Self::age_window`] lookups so the
    /// counts track *recent* popularity. Bounded by the window length.
    recent: HashMap<u32, u8>,
    /// Lookups between doorkeeper agings.
    age_window: usize,
    /// Lookups since the last aging.
    ops_since_age: usize,
    /// Instrumentation.
    pub stats: CacheStats,
}

impl HotRowCache {
    /// A cache of `capacity` rows of width `e`. `capacity` must be ≥ 1.
    pub fn new(capacity: usize, e: usize) -> Self {
        assert!(capacity >= 1, "cache capacity must be >= 1");
        assert!(capacity < EMPTY as usize, "cache capacity must fit in u32");
        // A window of 16 lookups per slot is TinyLFU's usual
        // sample-to-capacity ratio.
        HotRowCache {
            store: RowStore::with_slots(capacity, e),
            freq: vec![0; capacity],
            map: HashMap::with_capacity(capacity * 2),
            hand: 0,
            recent: HashMap::new(),
            age_window: capacity * 16,
            ops_since_age: 0,
            stats: CacheStats::default(),
        }
    }

    /// Capacity in rows.
    pub fn capacity(&self) -> usize {
        self.store.slots()
    }

    /// Rows currently resident.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no rows are resident.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Looks up table row `row`, admitting it from `table` on a miss if the
    /// doorkeeper approves. Returns the row (from the cache when resident,
    /// straight from `table` otherwise) — always bit-identical to
    /// `table.row(row)`.
    pub fn get_or_admit<'a>(&'a mut self, row: u32, table: &'a Matrix) -> &'a [f32] {
        let est = self.doorkeeper_bump(row);
        if let Some(&slot) = self.map.get(&row) {
            let slot = slot as usize;
            self.stats.hits += 1;
            self.freq[slot] = self.freq[slot].saturating_add(1);
            return self.store.row(slot);
        }
        self.stats.misses += 1;
        // Doorkeeper: while slots are free, admit everything (cold start);
        // once full, only rows the sketch has seen at least twice this
        // window may displace a resident row. One-shot Zipf-tail rows fail
        // the gate and are served straight from the table.
        if self.map.len() == self.capacity() && est < 2 {
            self.stats.rejections += 1;
            return table.row(row as usize);
        }
        self.stats.insertions += 1;
        let slot = self.find_victim();
        let old = self.store.row_id(slot);
        if old != EMPTY {
            self.stats.evictions += 1;
            self.map.remove(&old);
        }
        self.freq[slot] = 1;
        self.map.insert(row, slot as u32);
        self.store.set(slot, row, table.row(row as usize));
        self.store.row(slot)
    }

    /// Records a lookup of `row` in the doorkeeper and returns the updated
    /// frequency count. Counts are halved once per aging window (entries
    /// reaching zero are dropped), so they track *recent* popularity and
    /// the map stays bounded by the window length.
    fn doorkeeper_bump(&mut self, row: u32) -> u8 {
        self.ops_since_age += 1;
        if self.ops_since_age >= self.age_window {
            self.ops_since_age = 0;
            self.recent.retain(|_, c| {
                *c /= 2;
                *c > 0
            });
        }
        let c = self.recent.entry(row).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// CLOCK sweep: returns the first empty or frequency-0 slot, halving
    /// counters as the hand passes (so sustained popularity is required to
    /// stay resident). Bounded at two full sweeps — after halving every
    /// counter once, a second pass must find a zero unless every counter
    /// was ≥ 2, in which case the hand position is evicted outright.
    fn find_victim(&mut self) -> usize {
        let cap = self.store.slots();
        for _ in 0..cap * 2 {
            let slot = self.hand;
            self.hand = (self.hand + 1) % cap;
            if self.store.row_id(slot) == EMPTY || self.freq[slot] == 0 {
                return slot;
            }
            self.freq[slot] /= 2;
        }
        let slot = self.hand;
        self.hand = (self.hand + 1) % cap;
        slot
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn table(m: usize, e: usize) -> Matrix {
        Matrix::from_fn(m, e, |r, c| (r * 100 + c) as f32)
    }

    #[test]
    fn cached_rows_are_bitwise_copies() {
        let t = table(16, 4);
        let mut c = HotRowCache::new(4, 4);
        for row in [3u32, 7, 3, 11, 3] {
            assert_eq!(c.get_or_admit(row, &t), t.row(row as usize));
        }
        assert_eq!(c.stats.hits, 2);
        assert_eq!(c.stats.misses, 3);
    }

    #[test]
    fn capacity_is_respected() {
        let t = table(64, 2);
        let mut c = HotRowCache::new(8, 2);
        for row in 0..64u32 {
            let _ = c.get_or_admit(row, &t);
        }
        assert!(c.len() <= 8);
        // Cold start fills the 8 slots; each later row is a one-shot the
        // doorkeeper declines, so no resident row is ever displaced.
        assert_eq!(c.stats.insertions, 8);
        assert_eq!(c.stats.evictions, 0);
        assert_eq!(c.stats.rejections, 64 - 8);
    }

    #[test]
    fn doorkeeper_admits_on_second_sighting() {
        let t = table(64, 2);
        let mut c = HotRowCache::new(2, 2);
        let _ = c.get_or_admit(1, &t); // cold fill
        let _ = c.get_or_admit(2, &t); // cold fill — cache now full
        assert_eq!(c.get_or_admit(9, &t), t.row(9)); // first sighting: rejected
        assert_eq!(c.stats.rejections, 1);
        assert_eq!(c.len(), 2);
        let _ = c.get_or_admit(9, &t); // second sighting: admitted
        assert_eq!(c.stats.insertions, 3);
        assert_eq!(c.stats.evictions, 1);
        c.stats.reset();
        let _ = c.get_or_admit(9, &t);
        assert_eq!(c.stats.hits, 1, "row 9 must now be resident");
    }

    #[test]
    fn hot_row_survives_cold_churn() {
        let t = table(256, 2);
        let mut c = HotRowCache::new(4, 2);
        // Interleave a hot row with a stream of one-shot cold rows: the hot
        // row's counter stays high, so the churn evicts only cold slots.
        for i in 0..200u32 {
            let _ = c.get_or_admit(0, &t);
            let _ = c.get_or_admit(1 + (i % 255), &t);
        }
        c.stats.reset();
        let _ = c.get_or_admit(0, &t);
        assert_eq!(c.stats.hits, 1, "hot row must stay resident");
    }

    #[test]
    fn single_slot_cache_works() {
        let t = table(8, 3);
        let mut c = HotRowCache::new(1, 3);
        assert_eq!(c.get_or_admit(5, &t), t.row(5));
        assert_eq!(c.get_or_admit(5, &t), t.row(5));
        // Row 2 is rejected on first sighting, admitted on the second —
        // the returned data is the correct table row either way.
        assert_eq!(c.get_or_admit(2, &t), t.row(2));
        assert_eq!(c.get_or_admit(2, &t), t.row(2));
        assert_eq!(c.stats.hits, 1);
        assert_eq!(c.stats.misses, 3);
        assert_eq!(c.stats.rejections, 1);
        assert_eq!(c.stats.insertions, 2);
    }

    #[test]
    fn hit_rate_math() {
        let mut s = CacheStats::default();
        assert_eq!(s.hit_rate(), 0.0);
        s.hits = 3;
        s.misses = 1;
        assert!((s.hit_rate() - 0.75).abs() < 1e-12);
        s.reset();
        assert_eq!(s, CacheStats::default());
    }
}
