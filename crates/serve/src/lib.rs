//! # dlrm-serve — batched, hot-row-cached DLRM inference
//!
//! Training is only half of a production recommender: this crate serves
//! the trained model. Three pieces (see DESIGN.md §11):
//!
//! * [`MicroBatcher`] — turns concurrent single-user requests into bounded
//!   micro-batches under a batching window (the throughput/latency dial).
//! * [`HotRowCache`] — a fixed-capacity, frequency-aware (CLOCK-with-aging)
//!   cache of hot embedding rows in a compact store. Embedding-bag gather
//!   dominates DLRM inference and is cache-residency-bound; under
//!   Zipf-shaped traffic the popularity head is tiny relative to the
//!   table, so a ~1% cache captures most lookups.
//! * [`ServeEngine`] — a worker thread running a forward-only
//!   [`ServeModel`] over the training stack's SIMD embedding + GEMM
//!   kernels, recording per-request latency for p50/p99/QPS SLO reporting
//!   ([`metrics`]).
//!
//! For multi-socket hosts, [`sharded`] scales the same engine across
//! worker teams (DESIGN.md §15): tables are partitioned over shards by the
//! trainer's `OwnershipMap`, each shard runs its own lane + table-server
//! thread pair with its own caches and (optionally core-pinned) GEMM team,
//! and lanes fan sparse lookups out to owning shards over lock-free SPSC
//! rings ([`spsc`]).
//!
//! Correctness contract: cached and uncached forward output are **bitwise
//! identical** (cached rows are verbatim copies, summed in the same order
//! by the same rowops tiers), so turning the cache on can never change a
//! served score. The sharded engine extends the same gate: sharded and
//! unsharded output are bitwise identical for any shard count.

pub mod batcher;
pub mod cache;
pub mod engine;
pub mod metrics;
pub mod sharded;
pub mod spsc;

pub use batcher::MicroBatcher;
pub use cache::{CacheStats, HotRowCache};
pub use engine::{
    CacheSizing, EngineReport, Request, Response, ServeClient, ServeConfig, ServeEngine,
    ServeModel, ShardReport,
};
pub use metrics::{summarize_latencies_us, LatencySummary};
pub use sharded::{ShardSpec, ShardedEngine, ShardedServeModel};
