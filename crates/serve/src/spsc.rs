//! A bounded lock-free single-producer / single-consumer ring.
//!
//! The sharded engine's fan-out lanes talk to shard table-servers over
//! one of these per (lane, server) pair — an in-process scatter/gather
//! data plane with no comm-world dependency and no lock on the hot path.
//! A lane submits at most one gather job per server per micro-batch and
//! blocks on the replies before pulling the next batch, so a tiny
//! capacity suffices and the full case is a defensive backoff, not a
//! steady-state regime.
//!
//! The implementation is the textbook monotonic-counter SPSC queue: the
//! producer owns `tail`, the consumer owns `head`, each reads the other's
//! counter with `Acquire` and publishes its own with `Release`, and slot
//! `i` lives at `i % capacity`. Counters are `u64`-sized (`usize` on the
//! targets we build) and never wrap in practice.

use std::cell::UnsafeCell;
use std::mem::MaybeUninit;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

struct Ring<T> {
    buf: Box<[UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot the consumer will read (monotonic).
    head: AtomicUsize,
    /// Next slot the producer will write (monotonic).
    tail: AtomicUsize,
}

// SAFETY: the producer/consumer split below guarantees a slot is touched
// by at most one thread at a time — the producer only writes slots in
// `tail..head+cap`, the consumer only reads slots in `head..tail`, and the
// counter handoffs are Release→Acquire ordered.
unsafe impl<T: Send> Send for Ring<T> {}
unsafe impl<T: Send> Sync for Ring<T> {}

impl<T> Drop for Ring<T> {
    fn drop(&mut self) {
        // Exclusive access here (last Arc owner): drop whatever is still
        // queued.
        let head = *self.head.get_mut();
        let tail = *self.tail.get_mut();
        for i in head..tail {
            // SAFETY: slots in head..tail were initialized by push and not
            // yet consumed by pop.
            unsafe { (*self.buf[i % self.cap].get()).assume_init_drop() };
        }
    }
}

/// The sending half; exactly one exists per ring.
pub struct SpscProducer<T> {
    ring: Arc<Ring<T>>,
}

/// The receiving half; exactly one exists per ring.
pub struct SpscConsumer<T> {
    ring: Arc<Ring<T>>,
}

/// A bounded SPSC ring of `capacity` slots (`capacity >= 1`).
pub fn spsc<T: Send>(capacity: usize) -> (SpscProducer<T>, SpscConsumer<T>) {
    assert!(capacity >= 1, "spsc ring needs at least one slot");
    let ring = Arc::new(Ring {
        buf: (0..capacity)
            .map(|_| UnsafeCell::new(MaybeUninit::uninit()))
            .collect(),
        cap: capacity,
        head: AtomicUsize::new(0),
        tail: AtomicUsize::new(0),
    });
    (
        SpscProducer {
            ring: Arc::clone(&ring),
        },
        SpscConsumer { ring },
    )
}

impl<T: Send> SpscProducer<T> {
    /// Enqueues `v`, or returns it back when the ring is full.
    pub fn push(&mut self, v: T) -> Result<(), T> {
        let ring = &*self.ring;
        let tail = ring.tail.load(Ordering::Relaxed);
        let head = ring.head.load(Ordering::Acquire);
        if tail - head == ring.cap {
            return Err(v);
        }
        // SAFETY: `tail < head + cap`, so this slot has been consumed (or
        // never written); only this producer writes it.
        unsafe { (*ring.buf[tail % ring.cap].get()).write(v) };
        ring.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }
}

impl<T: Send> SpscConsumer<T> {
    /// Dequeues the oldest item, if any.
    pub fn pop(&mut self) -> Option<T> {
        let ring = &*self.ring;
        let head = ring.head.load(Ordering::Relaxed);
        let tail = ring.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: `head < tail`, so the slot was fully written (Release on
        // tail, Acquire above); only this consumer reads it.
        let v = unsafe { (*ring.buf[head % ring.cap].get()).assume_init_read() };
        ring.head.store(head + 1, Ordering::Release);
        Some(v)
    }

    /// Items currently queued (a snapshot; exact when the producer is
    /// quiescent).
    pub fn len(&self) -> usize {
        let ring = &*self.ring;
        ring.tail.load(Ordering::Acquire) - ring.head.load(Ordering::Relaxed)
    }

    /// True when nothing is queued right now.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize as Counter;

    #[test]
    fn fifo_order_and_capacity() {
        let (mut tx, mut rx) = spsc::<u32>(2);
        assert!(tx.push(1).is_ok());
        assert!(tx.push(2).is_ok());
        assert_eq!(tx.push(3), Err(3), "full ring must reject");
        assert_eq!(rx.len(), 2);
        assert_eq!(rx.pop(), Some(1));
        assert!(tx.push(4).is_ok(), "slot freed by pop");
        assert_eq!(rx.pop(), Some(2));
        assert_eq!(rx.pop(), Some(4));
        assert_eq!(rx.pop(), None);
        assert!(rx.is_empty());
    }

    #[test]
    fn cross_thread_stream_is_lossless_and_ordered() {
        let (mut tx, mut rx) = spsc::<u64>(8);
        let n = 100_000u64;
        let producer = std::thread::spawn(move || {
            for i in 0..n {
                let mut v = i;
                loop {
                    match tx.push(v) {
                        Ok(()) => break,
                        Err(back) => {
                            v = back;
                            std::thread::yield_now();
                        }
                    }
                }
            }
        });
        let mut expect = 0u64;
        while expect < n {
            match rx.pop() {
                Some(v) => {
                    assert_eq!(v, expect, "out of order");
                    expect += 1;
                }
                None => std::thread::yield_now(),
            }
        }
        producer.join().unwrap();
        assert_eq!(rx.pop(), None);
    }

    #[test]
    fn dropping_the_ring_drops_queued_items() {
        static DROPS: Counter = Counter::new(0);
        struct D;
        impl Drop for D {
            fn drop(&mut self) {
                DROPS.fetch_add(1, Ordering::SeqCst);
            }
        }
        let (mut tx, rx) = spsc::<D>(4);
        tx.push(D).ok();
        tx.push(D).ok();
        drop(rx);
        drop(tx);
        assert_eq!(DROPS.load(Ordering::SeqCst), 2);
    }
}
