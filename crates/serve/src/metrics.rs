//! Latency-SLO metrics: percentile summaries over per-request latencies.
//!
//! Serving SLOs are stated as tail percentiles (p50/p99), not means — a
//! recommendation that misses its latency budget is dropped by the caller,
//! so the tail *is* the product metric. The summary here uses the standard
//! nearest-rank-with-interpolation definition over the full sample set (no
//! reservoir sampling: even millions of `u64` samples are only megabytes).

/// Percentile summary of a latency sample set, in microseconds.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// Mean.
    pub mean_us: f64,
    /// Median.
    pub p50_us: f64,
    /// 90th percentile.
    pub p90_us: f64,
    /// 99th percentile.
    pub p99_us: f64,
    /// Worst observed.
    pub max_us: f64,
}

impl LatencySummary {
    /// The all-zero summary for an empty sample set.
    pub fn empty() -> Self {
        LatencySummary {
            count: 0,
            mean_us: 0.0,
            p50_us: 0.0,
            p90_us: 0.0,
            p99_us: 0.0,
            max_us: 0.0,
        }
    }
}

/// Linear-interpolated percentile (`q` in `[0, 1]`) of an ascending-sorted
/// sample set. Panics on an empty slice.
pub fn percentile_sorted_us(sorted: &[u64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample set");
    assert!((0.0..=1.0).contains(&q), "percentile q out of range: {q}");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    sorted[lo] as f64 * (1.0 - frac) + sorted[hi] as f64 * frac
}

/// Sorts `samples` in place and summarizes it.
pub fn summarize_latencies_us(samples: &mut [u64]) -> LatencySummary {
    if samples.is_empty() {
        return LatencySummary::empty();
    }
    samples.sort_unstable();
    let sum: u128 = samples.iter().map(|&x| x as u128).sum();
    LatencySummary {
        count: samples.len(),
        mean_us: sum as f64 / samples.len() as f64,
        p50_us: percentile_sorted_us(samples, 0.50),
        p90_us: percentile_sorted_us(samples, 0.90),
        p99_us: percentile_sorted_us(samples, 0.99),
        max_us: *samples.last().unwrap() as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_of_known_set() {
        let sorted: Vec<u64> = (1..=100).collect();
        assert!((percentile_sorted_us(&sorted, 0.0) - 1.0).abs() < 1e-12);
        assert!((percentile_sorted_us(&sorted, 1.0) - 100.0).abs() < 1e-12);
        assert!((percentile_sorted_us(&sorted, 0.5) - 50.5).abs() < 1e-12);
        assert!((percentile_sorted_us(&sorted, 0.99) - 99.01).abs() < 1e-9);
    }

    #[test]
    fn summary_handles_singletons_and_empties() {
        assert_eq!(summarize_latencies_us(&mut []), LatencySummary::empty());
        let s = summarize_latencies_us(&mut [42]);
        assert_eq!(s.count, 1);
        assert_eq!(s.p50_us, 42.0);
        assert_eq!(s.p99_us, 42.0);
        assert_eq!(s.max_us, 42.0);
    }

    #[test]
    fn summary_sorts_unsorted_input() {
        let mut v = vec![30, 10, 20];
        let s = summarize_latencies_us(&mut v);
        assert_eq!(s.p50_us, 20.0);
        assert_eq!(s.max_us, 30.0);
        assert!((s.mean_us - 20.0).abs() < 1e-12);
    }
}
