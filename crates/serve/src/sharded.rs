//! Table-sharded, multi-worker-team serving: the in-process analogue of
//! the paper's hybrid-parallel training layout.
//!
//! The distributed trainer model-parallelizes the embedding tables across
//! sockets and data-parallelizes the MLPs; this module mirrors that split
//! inside one serving process. Tables are partitioned over `S` shards by
//! the same [`OwnershipMap`] the trainer uses (DESIGN.md §15); each shard
//! gets its own worker team ([`dlrm_kernels::threadpool::ThreadPool`],
//! optionally core-pinned via [`CorePlacement`]), its own per-table
//! [`HotRowCache`]s, and its own request lane off a shared
//! [`MicroBatcher`]. A lane fans each micro-batch's sparse lookups out to
//! the owning shards over lock-free SPSC rings ([`crate::spsc`] — no
//! comm-world dependency), gathers the pooled `N × E` rows back, and runs
//! the replicated bottom/interaction/top MLP stack on its own team.
//!
//! Correctness contract, extending the cached≡uncached gate: for any shard
//! count, any micro-batch composition, and any worker-team width, the
//! served logits are **bitwise identical** to the unsharded
//! [`crate::ServeModel`]. Three properties make that hold:
//!
//! 1. each table's bag-sum runs serially at its owning shard through the
//!    exact [`gather_cached`] / `forward_serial` code the unsharded engine
//!    uses — sharding moves *which thread* gathers, never the accumulation
//!    order;
//! 2. the MLP replicas are rebuilt from the model seed's per-component RNG
//!    streams, so every shard holds bitwise-equal weights;
//! 3. the blocked GEMM partitions a fixed tile grid, making its output
//!    invariant to the pool width, and is per-sample (per-column)
//!    independent, making each logit invariant to micro-batch grouping.

use crate::batcher::MicroBatcher;
use crate::cache::{CacheStats, HotRowCache};
use crate::engine::{
    assemble, gather_cached, CacheSizing, EngineReport, Pending, Response, ServeClient,
    ServeConfig, ShardReport,
};
use crate::spsc::{spsc, SpscConsumer, SpscProducer};
use dlrm::embedding_layer::EmbeddingLayer;
use dlrm::interaction::Interaction;
use dlrm::layers::{Activation, Execution, Mlp};
use dlrm::model::DlrmModel;
use dlrm_data::{DlrmConfig, MiniBatch};
use dlrm_kernels::activations::sigmoid;
use dlrm_kernels::embedding::{self, UpdateStrategy};
use dlrm_kernels::gemm::micro::detect_isa;
use dlrm_kernels::threadpool::ThreadPool;
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;
use dlrm_topology::{CorePlacement, OwnershipMap};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// How to carve the model across shards.
#[derive(Debug, Clone)]
pub struct ShardSpec {
    /// Number of shards (worker teams). 1 reproduces the unsharded layout.
    pub shards: usize,
    /// GEMM worker threads per shard's team.
    pub workers_per_shard: usize,
    /// Pin each team's workers to distinct host cores
    /// ([`CorePlacement::contiguous`]); best-effort — pinning failures are
    /// non-fatal.
    pub pin_cores: bool,
    /// Hot-row cache sizing for each shard's owned tables.
    pub cache: CacheSizing,
}

impl Default for ShardSpec {
    fn default() -> Self {
        ShardSpec {
            shards: 2,
            workers_per_shard: 1,
            pin_cores: false,
            cache: CacheSizing::Disabled,
        }
    }
}

/// The MLP side of one shard: the replicated dense stack plus the team it
/// runs on. Lives on the shard's lane thread.
struct LaneHalf {
    exec: Execution,
    bottom: Mlp,
    interaction: Interaction,
    top: Mlp,
    /// Reused per-table gather outputs, indexed by **global** table id.
    gather_outs: Vec<Matrix>,
}

/// The embedding side of one shard: the owned tables and their caches.
/// Lives on the shard's server thread, keeping cache mutation
/// single-threaded.
struct ServerHalf {
    /// Owned tables, in [`OwnershipMap::tables_of`] (local) order.
    tables: Vec<EmbeddingLayer>,
    caches: Vec<Option<HotRowCache>>,
}

impl ServerHalf {
    /// Bag-sum gather of local table `li` into `out` (`n × E`) — the same
    /// serial path (and same per-call ISA detection) as the unsharded
    /// engine.
    fn gather_into(&mut self, li: usize, indices: &[u32], offsets: &[usize], out: &mut Matrix) {
        match &mut self.caches[li] {
            Some(cache) => {
                let isa = detect_isa();
                gather_cached(cache, &self.tables[li].weight, indices, offsets, out, isa)
            }
            None => embedding::forward_serial(&self.tables[li].weight, indices, offsets, out),
        }
    }

    fn cache_stats(&self) -> Vec<Option<CacheStats>> {
        self.caches
            .iter()
            .map(|c| c.as_ref().map(|c| c.stats))
            .collect()
    }
}

/// A table-sharded forward-only model: `S` lane halves (replicated MLPs on
/// per-shard teams) + `S` server halves (partitioned tables).
///
/// [`forward`](Self::forward) runs the whole thing synchronously on the
/// calling thread — the identity-test harness; [`ShardedEngine::start`]
/// puts each half on its own thread.
pub struct ShardedServeModel {
    cfg: DlrmConfig,
    ownership: OwnershipMap,
    lanes: Vec<LaneHalf>,
    servers: Vec<ServerHalf>,
    pinned_workers: Vec<usize>,
}

impl ShardedServeModel {
    /// Builds a sharded model for `cfg`, seeded exactly like
    /// [`crate::ServeModel::new`]: the same `seed` gives every shard's MLP
    /// replica and every owned table bitwise the weights the unsharded
    /// model holds.
    pub fn new(cfg: &DlrmConfig, spec: &ShardSpec, seed: u64) -> Self {
        assert!(spec.shards >= 1, "need at least one shard");
        assert!(spec.workers_per_shard >= 1, "each team needs a worker");
        let ownership = OwnershipMap::round_robin(cfg.num_tables, spec.shards);
        let placement = spec.pin_cores.then(|| {
            CorePlacement::contiguous(
                ThreadPool::default_parallelism(),
                spec.shards,
                spec.workers_per_shard,
            )
        });
        let mut lanes = Vec::with_capacity(spec.shards);
        let mut servers = Vec::with_capacity(spec.shards);
        let mut pinned_workers = Vec::with_capacity(spec.shards);
        for s in 0..spec.shards {
            let pool = match &placement {
                Some(p) => ThreadPool::with_affinity(p.shard_cores(s)),
                None => ThreadPool::new(spec.workers_per_shard),
            };
            pinned_workers.push(pool.pinned_workers());
            let exec = Execution::Optimized(Arc::new(pool));
            let mut bottom = Mlp::new(
                cfg.dense_features,
                &cfg.bottom_mlp,
                Activation::Relu,
                &mut seeded_rng(seed, DlrmModel::BOTTOM_STREAM),
            );
            assert_eq!(
                bottom.out_features(),
                cfg.emb_dim,
                "bottom MLP must project to the embedding dimension"
            );
            let mut top = Mlp::new(
                cfg.interaction_output_dim(),
                &cfg.top_mlp,
                Activation::None,
                &mut seeded_rng(seed, DlrmModel::TOP_STREAM),
            );
            // Forward-only: pack once at build time (bitwise-equal to the
            // flat path per the packed-plan equivalence gate).
            bottom.prepack_weights();
            top.prepack_weights();
            lanes.push(LaneHalf {
                exec,
                bottom,
                interaction: Interaction::new(cfg.emb_dim),
                top,
                gather_outs: (0..cfg.num_tables)
                    .map(|_| Matrix::zeros(0, cfg.emb_dim))
                    .collect(),
            });
            let tables: Vec<_> = ownership
                .tables_of(s)
                .iter()
                .map(|&t| DlrmModel::build_table(cfg, t, UpdateStrategy::RaceFree, seed))
                .collect();
            let caches = tables
                .iter()
                .map(|t| {
                    spec.cache
                        .rows_for_table(t.rows())
                        .map(|rows| HotRowCache::new(rows, t.dim()))
                })
                .collect();
            servers.push(ServerHalf { tables, caches });
        }
        ShardedServeModel {
            cfg: cfg.clone(),
            ownership,
            lanes,
            servers,
            pinned_workers,
        }
    }

    /// The model configuration.
    pub fn cfg(&self) -> &DlrmConfig {
        &self.cfg
    }

    /// The table → shard partition.
    pub fn ownership(&self) -> &OwnershipMap {
        &self.ownership
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.lanes.len()
    }

    /// Workers that were successfully core-pinned, per shard (all zero
    /// unless [`ShardSpec::pin_cores`] was set and pinning succeeded).
    pub fn pinned_workers(&self) -> &[usize] {
        &self.pinned_workers
    }

    /// Cache statistics indexed by **global** table id (`None` for
    /// uncached tables).
    pub fn cache_stats(&self) -> Vec<Option<CacheStats>> {
        let mut global = vec![None; self.cfg.num_tables];
        for (q, server) in self.servers.iter().enumerate() {
            for (li, &t) in self.ownership.tables_of(q).iter().enumerate() {
                global[t] = server.caches[li].as_ref().map(|c| c.stats);
            }
        }
        global
    }

    /// Synchronous sharded forward: every table gathers at its owning
    /// shard's server half, then `gather_shard`'s lane half runs the MLP
    /// stack. Returns per-sample logits, bitwise identical to
    /// [`crate::ServeModel::forward`] for any `gather_shard`.
    pub fn forward(&mut self, gather_shard: usize, batch: &MiniBatch) -> Vec<f32> {
        let n = batch.batch_size();
        for (q, server) in self.servers.iter_mut().enumerate() {
            for (li, &t) in self.ownership.tables_of(q).iter().enumerate() {
                let out = &mut self.lanes[gather_shard].gather_outs[t];
                out.resize_rows(n);
                server.gather_into(li, &batch.indices[t], &batch.offsets[t], out);
            }
        }
        let lane = &mut self.lanes[gather_shard];
        let exec = lane.exec.clone();
        let z0 = lane.bottom.forward(&exec, &batch.dense);
        let inter = lane.interaction.forward(&exec, &z0, &lane.gather_outs);
        let logits = lane.top.forward(&exec, &inter);
        debug_assert_eq!(logits.rows(), 1);
        logits.as_slice().to_vec()
    }
}

/// One fan-out unit: the CSR slices for every table a shard owns (local
/// order), for one micro-batch.
struct GatherJob {
    /// Batch size — sizes the `n × E` outputs even for all-empty bags.
    n: usize,
    /// The owning shard this job targets (echoed on the reply so the lane
    /// can place the outputs without per-owner channels).
    owner: usize,
    /// Per owned table (local order): flattened lookup indices.
    indices: Vec<Vec<u32>>,
    /// Per owned table (local order): bag offsets (`n + 1` entries).
    offsets: Vec<Vec<usize>>,
    /// Where to send the pooled rows, tagged with the owner shard.
    reply: mpsc::Sender<(usize, Vec<Matrix>)>,
}

/// Wakeup channel for one server thread: a sequence count under a mutex so
/// a notify that lands before the server sleeps is never lost, plus a stop
/// flag for shutdown.
struct ServerCtl {
    seq: Mutex<u64>,
    cv: Condvar,
    stop: AtomicBool,
}

impl ServerCtl {
    fn new() -> Self {
        ServerCtl {
            seq: Mutex::new(0),
            cv: Condvar::new(),
            stop: AtomicBool::new(false),
        }
    }

    /// Signals "new work may be visible in a ring".
    fn notify(&self) {
        *self.seq.lock().unwrap() += 1;
        self.cv.notify_all();
    }

    fn request_stop(&self) {
        self.stop.store(true, Ordering::Release);
        self.notify();
    }

    fn stopped(&self) -> bool {
        self.stop.load(Ordering::Acquire)
    }

    /// Parks until the sequence count moves past `last_seen` (or stop);
    /// returns the count observed on wake.
    fn wait(&self, last_seen: u64) -> u64 {
        let mut seq = self.seq.lock().unwrap();
        while *seq == last_seen && !self.stopped() {
            seq = self.cv.wait(seq).unwrap();
        }
        *seq
    }
}

/// A running sharded engine: per shard, a **lane** thread (micro-batch →
/// fan-out → gather → MLP → respond) and a **server** thread (owned-table
/// gathers for every lane), wired all-to-all with SPSC rings.
pub struct ShardedEngine {
    client: ServeClient,
    batcher: MicroBatcher<Pending>,
    lanes: Vec<JoinHandle<ShardReport>>,
    servers: Vec<JoinHandle<Vec<Option<CacheStats>>>>,
    ctls: Vec<Arc<ServerCtl>>,
    ownership: Arc<OwnershipMap>,
    num_tables: usize,
}

impl ShardedEngine {
    /// Starts the engine, moving each shard's halves onto their threads.
    pub fn start(model: ShardedServeModel, cfg: ServeConfig) -> Self {
        assert!(cfg.max_batch >= 1, "max_batch must be >= 1");
        let nshards = model.num_shards();
        let ownership = Arc::new(model.ownership);
        let model_cfg = Arc::new(model.cfg);
        let batcher: MicroBatcher<Pending> = MicroBatcher::new();
        let client = ServeClient::new(
            batcher.clone(),
            model_cfg.dense_features,
            model_cfg.table_rows.clone(),
        );

        // One ring per (lane, server) pair. A lane has at most one job in
        // flight per server (it blocks on the replies each batch), so a
        // tiny capacity never fills in steady state.
        let mut lane_producers: Vec<Vec<SpscProducer<GatherJob>>> =
            (0..nshards).map(|_| Vec::with_capacity(nshards)).collect();
        let mut server_consumers: Vec<Vec<SpscConsumer<GatherJob>>> =
            (0..nshards).map(|_| Vec::with_capacity(nshards)).collect();
        for producers in lane_producers.iter_mut() {
            for consumers in server_consumers.iter_mut() {
                let (tx, rx) = spsc(2);
                producers.push(tx);
                consumers.push(rx);
            }
        }
        let ctls: Vec<Arc<ServerCtl>> = (0..nshards).map(|_| Arc::new(ServerCtl::new())).collect();

        let servers: Vec<JoinHandle<Vec<Option<CacheStats>>>> = model
            .servers
            .into_iter()
            .zip(server_consumers)
            .enumerate()
            .map(|(q, (server, consumers))| {
                let ctl = Arc::clone(&ctls[q]);
                std::thread::Builder::new()
                    .name(format!("dlrm-shard{q}-srv"))
                    .spawn(move || run_server(server, consumers, &ctl))
                    .expect("spawn shard server")
            })
            .collect();

        let lanes: Vec<JoinHandle<ShardReport>> = model
            .lanes
            .into_iter()
            .enumerate()
            .map(|(s, lane)| {
                let consumer = batcher.clone();
                let producers = std::mem::take(&mut lane_producers[s]);
                let ctls: Vec<Arc<ServerCtl>> = ctls.iter().map(Arc::clone).collect();
                let ownership = Arc::clone(&ownership);
                let model_cfg = Arc::clone(&model_cfg);
                let serve_cfg = cfg.clone();
                std::thread::Builder::new()
                    .name(format!("dlrm-shard{s}-lane"))
                    .spawn(move || {
                        run_lane(
                            s, lane, consumer, producers, ctls, &ownership, &model_cfg, &serve_cfg,
                        )
                    })
                    .expect("spawn shard lane")
            })
            .collect();

        ShardedEngine {
            client,
            batcher,
            lanes,
            servers,
            ctls,
            num_tables: model_cfg.num_tables,
            ownership,
        }
    }

    /// A cloneable client handle (same request/response surface as the
    /// unsharded [`crate::ServeEngine`]).
    pub fn client(&self) -> ServeClient {
        self.client.clone()
    }

    /// Stops accepting requests, drains every queued request, and returns
    /// the aggregate report with its per-shard breakdown.
    pub fn shutdown(mut self) -> EngineReport {
        self.join_all()
    }

    fn join_all(&mut self) -> EngineReport {
        // Order matters: close the batcher and join the lanes first — a
        // lane blocks on its replies every batch, so once the lanes exit,
        // every ring is empty and the servers can be stopped.
        self.batcher.close();
        let mut shard_reports: Vec<ShardReport> = self
            .lanes
            .drain(..)
            .map(|l| l.join().expect("lane panicked"))
            .collect();
        for ctl in &self.ctls {
            ctl.request_stop();
        }
        let server_stats: Vec<Vec<Option<CacheStats>>> = self
            .servers
            .drain(..)
            .map(|s| s.join().expect("shard server panicked"))
            .collect();

        let mut report = EngineReport {
            cache_stats: vec![None; self.num_tables],
            ..EngineReport::default()
        };
        for (q, stats) in server_stats.into_iter().enumerate() {
            shard_reports[q].cache_stats = stats.clone();
            for (li, &t) in self.ownership.tables_of(q).iter().enumerate() {
                report.cache_stats[t] = stats[li];
            }
        }
        for sr in &shard_reports {
            report.requests += sr.requests;
            report.batches += sr.batches;
            report.max_batch_seen = report.max_batch_seen.max(sr.max_batch_seen);
            report.latencies_us.extend_from_slice(&sr.latencies_us);
        }
        report.shards = shard_reports;
        report
    }
}

impl Drop for ShardedEngine {
    fn drop(&mut self) {
        if !self.lanes.is_empty() || !self.servers.is_empty() {
            let _ = self.join_all();
        }
    }
}

/// Server thread body: drain gather jobs from every lane's ring, park on
/// the ctl when idle, exit once stop is requested and the rings are dry.
fn run_server(
    mut server: ServerHalf,
    mut consumers: Vec<SpscConsumer<GatherJob>>,
    ctl: &ServerCtl,
) -> Vec<Option<CacheStats>> {
    let mut last_seen = 0u64;
    loop {
        let mut served = 0usize;
        for ring in consumers.iter_mut() {
            while let Some(job) = ring.pop() {
                served += 1;
                let outs: Vec<Matrix> = (0..server.tables.len())
                    .map(|li| {
                        let mut out = Matrix::zeros(job.n, server.tables[li].dim());
                        server.gather_into(li, &job.indices[li], &job.offsets[li], &mut out);
                        out
                    })
                    .collect();
                // A lane that died mid-batch just drops its receiver.
                let _ = job.reply.send((job.owner, outs));
            }
        }
        if served == 0 {
            if ctl.stopped() {
                return server.cache_stats();
            }
            last_seen = ctl.wait(last_seen);
        }
    }
}

/// Lane thread body: pull micro-batches, scatter the sparse half to the
/// owning servers, gather the pooled rows, run the dense stack, respond.
#[allow(clippy::too_many_arguments)]
fn run_lane(
    shard: usize,
    mut lane: LaneHalf,
    consumer: MicroBatcher<Pending>,
    mut producers: Vec<SpscProducer<GatherJob>>,
    ctls: Vec<Arc<ServerCtl>>,
    ownership: &OwnershipMap,
    cfg: &DlrmConfig,
    serve_cfg: &ServeConfig,
) -> ShardReport {
    let mut report = ShardReport {
        shard,
        owned_tables: ownership.tables_of(shard).to_vec(),
        ..ShardReport::default()
    };
    let exec = lane.exec.clone();
    while let Some(mut pendings) = consumer.next_batch(serve_cfg.max_batch, serve_cfg.window) {
        report.queue_depth_hwm = report.queue_depth_hwm.max(pendings.len() + consumer.len());
        let n = pendings.len();
        let batch = assemble(cfg, &pendings);

        // Scatter: one coalesced job per owning shard.
        let (reply_tx, reply_rx) = mpsc::channel();
        let mut outstanding = 0usize;
        for (q, ctl) in ctls.iter().enumerate() {
            let owned = ownership.tables_of(q);
            if owned.is_empty() {
                continue;
            }
            let mut job = GatherJob {
                n,
                owner: q,
                indices: owned.iter().map(|&t| batch.indices[t].clone()).collect(),
                offsets: owned.iter().map(|&t| batch.offsets[t].clone()).collect(),
                reply: reply_tx.clone(),
            };
            loop {
                match producers[q].push(job) {
                    Ok(()) => break,
                    Err(back) => {
                        // Ring full (the server is behind) — nudge it and
                        // retry; capacity 2 with one job in flight per lane
                        // makes this a cold path.
                        job = back;
                        ctl.notify();
                        std::thread::yield_now();
                    }
                }
            }
            ctl.notify();
            outstanding += 1;
        }
        drop(reply_tx);

        // Gather: block for every owner's pooled rows.
        for _ in 0..outstanding {
            let (q, outs) = reply_rx
                .recv()
                .expect("shard server dropped a gather reply");
            for (&t, out) in ownership.tables_of(q).iter().zip(outs) {
                lane.gather_outs[t] = out;
            }
        }

        // Dense stack on this shard's team.
        let z0 = lane.bottom.forward(&exec, &batch.dense);
        let inter = lane.interaction.forward(&exec, &z0, &lane.gather_outs);
        let logit_mat = lane.top.forward(&exec, &inter);
        debug_assert_eq!(logit_mat.rows(), 1);
        let logits = logit_mat.as_slice();

        report.batches += 1;
        report.max_batch_seen = report.max_batch_seen.max(n);
        for (i, p) in pendings.drain(..).enumerate() {
            let latency = p.submitted.elapsed();
            report.requests += 1;
            report.latencies_us.push(latency.as_micros() as u64);
            let _ = p.tx.send(Response {
                logit: logits[i],
                prob: sigmoid(logits[i]),
                latency,
            });
        }
    }
    report
}
