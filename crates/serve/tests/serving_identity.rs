//! Serving-path edge coverage: cached-vs-uncached bitwise identity, empty
//! bags, single-row tables, batch-size-1 micro-batches, and engine
//! end-to-end agreement with the direct forward pass.

use dlrm::layers::Execution;
use dlrm::model::DlrmModel;
use dlrm::precision::PrecisionMode;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_kernels::embedding::UpdateStrategy;
use dlrm_serve::{CacheSizing, Request, ServeConfig, ServeEngine, ServeModel};
use dlrm_tensor::init::seeded_rng;
use std::time::Duration;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(500, 256);
    cfg.dense_features = 16;
    cfg.bottom_mlp = vec![16, 8];
    cfg.emb_dim = 8;
    cfg.num_tables = 3;
    cfg.table_rows = vec![500, 64, 16];
    cfg.lookups_per_table = 3;
    cfg.top_mlp = vec![16, 1];
    cfg
}

/// Extracts sample `i` of a batch as a single-user request.
fn request_of(batch: &MiniBatch, i: usize) -> Request {
    let dense = (0..batch.dense.rows())
        .map(|r| batch.dense[(r, i)])
        .collect();
    let indices = (0..batch.num_tables())
        .map(|t| batch.indices[t][batch.offsets[t][i]..batch.offsets[t][i + 1]].to_vec())
        .collect();
    Request { dense, indices }
}

#[test]
fn cached_forward_bitwise_identical_to_uncached_across_traffic_shapes() {
    let cfg = tiny_cfg();
    for (name, dist) in [
        ("zipf", IndexDistribution::Zipf { s: 1.1 }),
        (
            "clustered",
            IndexDistribution::Clustered {
                hot_fraction: 0.01,
                hot_prob: 0.9,
            },
        ),
        ("uniform", IndexDistribution::Uniform),
    ] {
        let mut uncached = ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Disabled, 7);
        let mut cached = ServeModel::new(
            &cfg,
            Execution::optimized(2),
            CacheSizing::Fraction(0.05),
            7,
        );
        let mut rng = seeded_rng(42, 1);
        // Several rounds so the second and later rounds hit a warm cache
        // (hits and misses both on the gather path).
        for round in 0..4 {
            let batch = MiniBatch::random(&cfg, 24, dist, &mut rng);
            let want = uncached.forward(&batch);
            let got = cached.forward(&batch);
            assert_eq!(got, want, "{name} round {round}: cached != uncached");
        }
        let stats = cached.cache_stats();
        assert!(
            stats.iter().flatten().any(|s| s.hits > 0),
            "{name}: warm rounds must produce cache hits"
        );
    }
}

#[test]
fn serve_forward_matches_training_model_forward() {
    let cfg = tiny_cfg();
    let mut train = DlrmModel::new(
        &cfg,
        Execution::optimized(2),
        UpdateStrategy::RaceFree,
        PrecisionMode::Fp32,
        21,
    );
    let mut serve = ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Rows(64), 21);
    let mut rng = seeded_rng(5, 0);
    let batch = MiniBatch::random(&cfg, 16, IndexDistribution::Zipf { s: 1.1 }, &mut rng);
    assert_eq!(
        serve.forward(&batch),
        train.forward(&batch),
        "serving forward must reproduce the training stack's forward bitwise"
    );
}

#[test]
fn empty_bags_are_served_and_identical() {
    let cfg = tiny_cfg();
    let mut uncached = ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Disabled, 3);
    let mut cached = ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Rows(8), 3);
    let mut rng = seeded_rng(9, 0);
    let mut batch = MiniBatch::random(&cfg, 6, IndexDistribution::Uniform, &mut rng);
    // Empty every bag of table 1, and bag 2 of every table (a fully
    // featureless sample).
    batch.indices[1].clear();
    batch.offsets[1] = vec![0; batch.batch_size() + 1];
    for t in 0..batch.num_tables() {
        let (lo, hi) = (batch.offsets[t][2], batch.offsets[t][3]);
        batch.indices[t].drain(lo..hi);
        for off in batch.offsets[t].iter_mut().skip(3) {
            *off -= hi - lo;
        }
    }
    let want = uncached.forward(&batch);
    let got = cached.forward(&batch);
    assert_eq!(got, want, "empty bags: cached != uncached");
    assert_eq!(want.len(), 6);
    assert!(want.iter().all(|l| l.is_finite()));
}

#[test]
fn single_row_tables_serve_identically() {
    let mut cfg = tiny_cfg();
    cfg.table_rows = vec![1, 1, 1];
    let mut uncached = ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Disabled, 11);
    let mut cached = ServeModel::new(
        &cfg,
        Execution::optimized(2),
        CacheSizing::Fraction(0.01),
        11,
    );
    let mut rng = seeded_rng(13, 0);
    let batch = MiniBatch::random(&cfg, 8, IndexDistribution::Uniform, &mut rng);
    assert_eq!(cached.forward(&batch), uncached.forward(&batch));
    // A 1-row table with any fraction still gets a 1-slot cache, and every
    // lookup after the first is a hit.
    let stats = cached.cache_stats();
    for s in stats.iter().flatten() {
        assert_eq!(s.misses, 1, "single-row table: exactly one cold miss");
    }
}

#[test]
fn engine_batch_size_one_micro_batches() {
    let cfg = tiny_cfg();
    let mut direct = ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Disabled, 17);
    let engine = ServeEngine::start(
        ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Rows(32), 17),
        ServeConfig {
            max_batch: 1,
            window: Duration::ZERO,
        },
    );
    let client = engine.client();
    let mut rng = seeded_rng(19, 0);
    let batch = MiniBatch::random(&cfg, 10, IndexDistribution::Zipf { s: 1.1 }, &mut rng);
    for i in 0..10 {
        let req = request_of(&batch, i);
        let resp = client.infer(req).expect("infer");
        let single = batch.slice(i, i + 1);
        let want = direct.forward(&single)[0];
        assert_eq!(resp.logit, want, "request {i}: batch-of-1 must be bitwise");
        assert!((0.0..=1.0).contains(&resp.prob));
    }
    let report = engine.shutdown();
    assert_eq!(report.requests, 10);
    assert_eq!(report.max_batch_seen, 1, "max_batch=1 must cap every batch");
    assert_eq!(report.latencies_us.len(), 10);
}

#[test]
fn engine_concurrent_clients_match_direct_forward() {
    let cfg = tiny_cfg();
    let mut direct = ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Disabled, 23);
    let engine = ServeEngine::start(
        ServeModel::new(
            &cfg,
            Execution::optimized(2),
            CacheSizing::Fraction(0.1),
            23,
        ),
        ServeConfig {
            max_batch: 8,
            window: Duration::from_micros(500),
        },
    );
    let mut rng = seeded_rng(29, 0);
    let batch = MiniBatch::random(
        &cfg,
        40,
        IndexDistribution::Clustered {
            hot_fraction: 0.02,
            hot_prob: 0.8,
        },
        &mut rng,
    );
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let client = engine.client();
            let batch = batch.clone();
            std::thread::spawn(move || {
                (0..10)
                    .map(|j| {
                        let i = w * 10 + j;
                        (i, client.infer(request_of(&batch, i)).expect("infer"))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut responses: Vec<(usize, f32)> = Vec::new();
    for h in workers {
        for (i, resp) in h.join().unwrap() {
            responses.push((i, resp.logit));
        }
    }
    let report = engine.shutdown();
    assert_eq!(report.requests, 40);
    assert!(report.max_batch_seen <= 8, "micro-batch cap violated");
    for (i, logit) in responses {
        let want = direct.forward(&batch.slice(i, i + 1))[0];
        // Micro-batch composition is timing-dependent, so request i may be
        // scored inside any batch; the forward pass is sample-independent
        // per column, so the score must still be bitwise reproducible.
        assert_eq!(logit, want, "request {i}");
    }
}

#[test]
fn engine_rejects_malformed_and_post_shutdown_requests() {
    let cfg = tiny_cfg();
    let engine = ServeEngine::start(
        ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Disabled, 31),
        ServeConfig::default(),
    );
    let client = engine.client();
    let good = Request {
        dense: vec![0.0; cfg.dense_features],
        indices: vec![vec![0], vec![1], vec![2]],
    };
    assert!(client.infer(good.clone()).is_ok());
    let short_dense = Request {
        dense: vec![0.0; 3],
        ..good.clone()
    };
    assert!(client.submit(short_dense).is_err(), "short dense vector");
    let wrong_tables = Request {
        dense: good.dense.clone(),
        indices: vec![vec![0]],
    };
    assert!(client.submit(wrong_tables).is_err(), "wrong table count");
    let oob = Request {
        dense: good.dense.clone(),
        indices: vec![vec![0], vec![64], vec![0]],
    };
    assert!(client.submit(oob).is_err(), "out-of-bounds index");
    let _ = engine.shutdown();
    assert!(
        client.submit(good).is_err(),
        "submissions after shutdown must be rejected"
    );
}
