//! Cached-vs-uncached identity under *forced* ISA tiers.
//!
//! Kept in its own test binary: the ISA override is process-global, so
//! forcing tiers must not race with other serving tests comparing outputs.
//! Within each forced tier, the cached gather must be bitwise identical to
//! the uncached one on both Zipf and clustered traffic.

use dlrm::layers::Execution;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_kernels::embedding::rowops::available_isas;
use dlrm_kernels::gemm::micro::set_isa_override;
use dlrm_serve::{CacheSizing, ServeModel, ShardSpec, ShardedServeModel};
use dlrm_tensor::init::seeded_rng;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(400, 256);
    cfg.dense_features = 8;
    cfg.bottom_mlp = vec![12, 8];
    cfg.emb_dim = 8;
    cfg.num_tables = 2;
    cfg.table_rows = vec![400, 50];
    cfg.lookups_per_table = 4;
    cfg.top_mlp = vec![8, 1];
    cfg
}

#[test]
fn cached_identity_holds_under_every_isa_tier() {
    let cfg = tiny_cfg();
    for isa in available_isas() {
        set_isa_override(Some(isa));
        for dist in [
            IndexDistribution::Zipf { s: 1.1 },
            IndexDistribution::Clustered {
                hot_fraction: 0.05,
                hot_prob: 0.9,
            },
        ] {
            let mut uncached =
                ServeModel::new(&cfg, Execution::optimized(2), CacheSizing::Disabled, 37);
            let mut cached = ServeModel::new(
                &cfg,
                Execution::optimized(2),
                CacheSizing::Fraction(0.02),
                37,
            );
            // The sharded engine must hold the same identity within each
            // forced tier (same process-global override, hence this file).
            let mut sharded = ShardedServeModel::new(
                &cfg,
                &ShardSpec {
                    shards: 2,
                    workers_per_shard: 1,
                    pin_cores: false,
                    cache: CacheSizing::Fraction(0.02),
                },
                37,
            );
            let mut rng = seeded_rng(41, 2);
            for round in 0..3 {
                let batch = MiniBatch::random(&cfg, 16, dist, &mut rng);
                let want = uncached.forward(&batch);
                assert_eq!(
                    cached.forward(&batch),
                    want,
                    "{isa:?} {dist:?} round {round}: cached"
                );
                assert_eq!(
                    sharded.forward(round % 2, &batch),
                    want,
                    "{isa:?} {dist:?} round {round}: sharded"
                );
            }
        }
    }
    set_isa_override(None);
}
