//! Sharded-vs-unsharded bitwise identity: the tentpole gate of the
//! multi-socket serving engine.
//!
//! For every tested shard count, traffic shape, edge batch, worker-team
//! width, and gathering shard, the sharded output must be **bitwise
//! identical** to the unsharded `ServeModel` — sharding relocates work,
//! never changes arithmetic. Also covers the threaded `ShardedEngine`
//! end-to-end (concurrent clients, per-shard report, shutdown draining).

use dlrm::layers::Execution;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_serve::{
    CacheSizing, Request, ServeConfig, ServeEngine, ServeModel, ShardSpec, ShardedEngine,
    ShardedServeModel,
};
use dlrm_tensor::init::seeded_rng;
use std::time::Duration;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(500, 256);
    cfg.dense_features = 16;
    cfg.bottom_mlp = vec![16, 8];
    cfg.emb_dim = 8;
    cfg.num_tables = 3;
    cfg.table_rows = vec![500, 64, 16];
    cfg.lookups_per_table = 3;
    cfg.top_mlp = vec![16, 1];
    cfg
}

fn spec(shards: usize, cache: CacheSizing) -> ShardSpec {
    ShardSpec {
        shards,
        workers_per_shard: 1,
        pin_cores: false,
        cache,
    }
}

/// Extracts sample `i` of a batch as a single-user request.
fn request_of(batch: &MiniBatch, i: usize) -> Request {
    let dense = (0..batch.dense.rows())
        .map(|r| batch.dense[(r, i)])
        .collect();
    let indices = (0..batch.num_tables())
        .map(|t| batch.indices[t][batch.offsets[t][i]..batch.offsets[t][i + 1]].to_vec())
        .collect();
    Request { dense, indices }
}

#[test]
fn sharded_forward_bitwise_identical_for_every_shard_count() {
    let cfg = tiny_cfg();
    for (name, dist) in [
        ("zipf", IndexDistribution::Zipf { s: 1.1 }),
        (
            "clustered",
            IndexDistribution::Clustered {
                hot_fraction: 0.01,
                hot_prob: 0.9,
            },
        ),
        ("uniform", IndexDistribution::Uniform),
    ] {
        let mut unsharded =
            ServeModel::new(&cfg, Execution::optimized(1), CacheSizing::Disabled, 7);
        // More shards than tables is legal: some shards own nothing.
        for shards in [1usize, 2, 4, 8] {
            let mut sharded = ShardedServeModel::new(&cfg, &spec(shards, CacheSizing::Disabled), 7);
            let mut cached =
                ShardedServeModel::new(&cfg, &spec(shards, CacheSizing::Fraction(0.05)), 7);
            let mut rng = seeded_rng(42, 1);
            // Several rounds so later rounds hit warm per-shard caches, and
            // a rotating gather shard so every lane's MLP replica is hit.
            for round in 0..4 {
                let batch = MiniBatch::random(&cfg, 24, dist, &mut rng);
                let want = unsharded.forward(&batch);
                let gather_shard = round % shards;
                assert_eq!(
                    sharded.forward(gather_shard, &batch),
                    want,
                    "{name} S={shards} round {round}: sharded != unsharded"
                );
                assert_eq!(
                    cached.forward(gather_shard, &batch),
                    want,
                    "{name} S={shards} round {round}: sharded+cached != unsharded"
                );
            }
            if shards > 1 {
                let owned: usize = (0..shards)
                    .map(|q| cached.ownership().tables_of(q).len())
                    .sum();
                assert_eq!(owned, cfg.num_tables, "ownership must partition tables");
            }
            let stats = cached.cache_stats();
            assert!(
                stats.iter().flatten().any(|s| s.hits > 0),
                "{name} S={shards}: warm rounds must produce per-shard cache hits"
            );
        }
    }
}

#[test]
fn worker_team_width_does_not_change_sharded_logits() {
    let cfg = tiny_cfg();
    let mut narrow = ShardedServeModel::new(&cfg, &spec(2, CacheSizing::Disabled), 13);
    let mut wide = ShardedServeModel::new(
        &cfg,
        &ShardSpec {
            shards: 2,
            workers_per_shard: 3,
            pin_cores: false,
            cache: CacheSizing::Disabled,
        },
        13,
    );
    let mut rng = seeded_rng(3, 0);
    for round in 0..3 {
        let batch = MiniBatch::random(&cfg, 17, IndexDistribution::Uniform, &mut rng);
        assert_eq!(
            narrow.forward(round % 2, &batch),
            wide.forward(round % 2, &batch),
            "blocked GEMM must be invariant to the team width"
        );
    }
}

#[test]
fn pinned_teams_serve_identically() {
    let cfg = tiny_cfg();
    let mut unpinned = ShardedServeModel::new(&cfg, &spec(2, CacheSizing::Disabled), 19);
    let mut pinned = ShardedServeModel::new(
        &cfg,
        &ShardSpec {
            shards: 2,
            workers_per_shard: 1,
            pin_cores: true,
            cache: CacheSizing::Disabled,
        },
        19,
    );
    let mut rng = seeded_rng(23, 0);
    let batch = MiniBatch::random(&cfg, 12, IndexDistribution::Uniform, &mut rng);
    assert_eq!(pinned.forward(0, &batch), unpinned.forward(0, &batch));
    #[cfg(all(target_os = "linux", target_arch = "x86_64"))]
    assert!(
        pinned.pinned_workers().iter().all(|&p| p >= 1),
        "every team should pin its worker on linux: {:?}",
        pinned.pinned_workers()
    );
}

#[test]
fn sharded_edge_batches_are_identical() {
    // Empty bags (one table fully empty + one featureless sample).
    let cfg = tiny_cfg();
    let mut unsharded = ServeModel::new(&cfg, Execution::optimized(1), CacheSizing::Disabled, 3);
    let mut sharded = ShardedServeModel::new(&cfg, &spec(3, CacheSizing::Rows(8)), 3);
    let mut rng = seeded_rng(9, 0);
    let mut batch = MiniBatch::random(&cfg, 6, IndexDistribution::Uniform, &mut rng);
    batch.indices[1].clear();
    batch.offsets[1] = vec![0; batch.batch_size() + 1];
    for t in 0..batch.num_tables() {
        let (lo, hi) = (batch.offsets[t][2], batch.offsets[t][3]);
        batch.indices[t].drain(lo..hi);
        for off in batch.offsets[t].iter_mut().skip(3) {
            *off -= hi - lo;
        }
    }
    assert_eq!(
        sharded.forward(1, &batch),
        unsharded.forward(&batch),
        "empty bags: sharded != unsharded"
    );

    // Batch size 1.
    let one = MiniBatch::random(&cfg, 1, IndexDistribution::Uniform, &mut rng);
    assert_eq!(sharded.forward(2, &one), unsharded.forward(&one));

    // Single-row tables.
    let mut tiny = tiny_cfg();
    tiny.table_rows = vec![1, 1, 1];
    let mut u1 = ServeModel::new(&tiny, Execution::optimized(1), CacheSizing::Disabled, 11);
    let mut s1 = ShardedServeModel::new(&tiny, &spec(2, CacheSizing::Fraction(0.01)), 11);
    let b1 = MiniBatch::random(&tiny, 8, IndexDistribution::Uniform, &mut rng);
    assert_eq!(s1.forward(0, &b1), u1.forward(&b1));
}

#[test]
fn sharded_engine_concurrent_clients_match_direct_forward() {
    let cfg = tiny_cfg();
    let shards = 3;
    let mut direct = ServeModel::new(&cfg, Execution::optimized(1), CacheSizing::Disabled, 23);
    let engine = ShardedEngine::start(
        ShardedServeModel::new(&cfg, &spec(shards, CacheSizing::Fraction(0.1)), 23),
        ServeConfig {
            max_batch: 8,
            window: Duration::from_micros(500),
        },
    );
    let mut rng = seeded_rng(29, 0);
    let batch = MiniBatch::random(
        &cfg,
        40,
        IndexDistribution::Clustered {
            hot_fraction: 0.02,
            hot_prob: 0.8,
        },
        &mut rng,
    );
    let workers: Vec<_> = (0..4)
        .map(|w| {
            let client = engine.client();
            let batch = batch.clone();
            std::thread::spawn(move || {
                (0..10)
                    .map(|j| {
                        let i = w * 10 + j;
                        (i, client.infer(request_of(&batch, i)).expect("infer"))
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let mut responses: Vec<(usize, f32)> = Vec::new();
    for h in workers {
        for (i, resp) in h.join().unwrap() {
            responses.push((i, resp.logit));
        }
    }
    let report = engine.shutdown();
    assert_eq!(report.requests, 40);
    assert!(report.max_batch_seen <= 8, "micro-batch cap violated");
    assert_eq!(report.shards.len(), shards);
    assert_eq!(
        report.shards.iter().map(|s| s.requests).sum::<u64>(),
        40,
        "per-shard requests must sum to the total"
    );
    let mut owned: Vec<usize> = report
        .shards
        .iter()
        .flat_map(|s| s.owned_tables.iter().copied())
        .collect();
    owned.sort_unstable();
    assert_eq!(owned, vec![0, 1, 2], "shard reports must cover every table");
    assert_eq!(report.cache_stats.len(), cfg.num_tables);
    assert!(
        report.cache_stats.iter().flatten().any(|s| s.misses > 0),
        "cached tables must have seen traffic"
    );
    for sr in &report.shards {
        assert_eq!(sr.latencies_us.len() as u64, sr.requests);
        if sr.batches > 0 {
            assert!(sr.queue_depth_hwm >= 1, "a served lane saw >= 1 queued");
        }
    }
    // Micro-batch composition is timing-dependent and lane assignment is a
    // race, but each logit is per-column independent and every replica is
    // bitwise-equal, so each score must match the direct forward exactly.
    for (i, logit) in responses {
        let want = direct.forward(&batch.slice(i, i + 1))[0];
        assert_eq!(logit, want, "request {i}");
    }
}

#[test]
fn shutdown_drains_queued_requests_in_both_engines() {
    let cfg = tiny_cfg();
    let mut rng = seeded_rng(31, 0);
    let batch = MiniBatch::random(&cfg, 30, IndexDistribution::Uniform, &mut rng);

    // Unsharded engine: queue a burst, shut down immediately — every
    // accepted request must still be answered (the close-drain contract).
    let engine = ServeEngine::start(
        ServeModel::new(&cfg, Execution::optimized(1), CacheSizing::Disabled, 37),
        ServeConfig {
            max_batch: 4,
            window: Duration::from_millis(5),
        },
    );
    let client = engine.client();
    let handles: Vec<_> = (0..30)
        .map(|i| client.submit(request_of(&batch, i)).expect("submit"))
        .collect();
    let report = engine.shutdown();
    assert_eq!(report.requests, 30, "shutdown dropped queued requests");
    for (i, h) in handles.into_iter().enumerate() {
        let resp = h
            .wait()
            .unwrap_or_else(|e| panic!("request {i} dropped: {e}"));
        assert!(resp.logit.is_finite());
    }

    // Sharded engine: same contract across the fan-out path.
    let engine = ShardedEngine::start(
        ShardedServeModel::new(&cfg, &spec(2, CacheSizing::Disabled), 37),
        ServeConfig {
            max_batch: 4,
            window: Duration::from_millis(5),
        },
    );
    let client = engine.client();
    let handles: Vec<_> = (0..30)
        .map(|i| client.submit(request_of(&batch, i)).expect("submit"))
        .collect();
    let report = engine.shutdown();
    assert_eq!(
        report.requests, 30,
        "sharded shutdown dropped queued requests"
    );
    for (i, h) in handles.into_iter().enumerate() {
        let resp = h
            .wait()
            .unwrap_or_else(|e| panic!("request {i} dropped: {e}"));
        assert!(resp.logit.is_finite());
    }
    assert!(
        client.submit(request_of(&batch, 0)).is_err(),
        "submissions after sharded shutdown must be rejected"
    );
}
