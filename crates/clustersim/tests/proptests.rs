//! Property-based invariants of the cluster simulator: times are positive
//! and finite everywhere in the parameter space, overlap never loses to
//! blocking (CCL), and the communication models are monotone in volume.

use dlrm_clustersim::comm::CommModel;
use dlrm_clustersim::timeline::{simulate_iteration, RunMode, SimParams};
use dlrm_clustersim::{BackendKind, Calibration, Cluster, Strategy as ExStrategy};
use dlrm_comm::wire::WirePrecision;
use dlrm_data::DlrmConfig;
use proptest::prelude::*;

fn any_strategy() -> impl Strategy<Value = ExStrategy> {
    prop::sample::select(ExStrategy::ALL.to_vec())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn iteration_times_are_finite_and_positive(
        ranks_pow in 1u32..7,
        local_n in prop::sample::select(vec![64usize, 256, 1024]),
        strategy in any_strategy(),
        blocking in any::<bool>(),
    ) {
        let ranks = (1usize << ranks_pow).min(64);
        let cfg = DlrmConfig::large(); // 64 tables: any rank count works
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let b = simulate_iteration(
            &cfg,
            &cluster,
            &calib,
            SimParams {
                ranks,
                local_n,
                strategy,
                mode: if blocking { RunMode::Blocking } else { RunMode::Overlapping },
                charge_loader: false,
                wire: WirePrecision::Fp32,
            },
        );
        prop_assert!(b.total().is_finite() && b.total() > 0.0);
        prop_assert!(b.compute > 0.0);
        prop_assert!(b.alltoall_wait >= 0.0 && b.allreduce_wait >= 0.0);
        prop_assert!(b.alltoall_framework >= 0.0 && b.allreduce_framework >= 0.0);
    }

    #[test]
    fn ccl_overlap_never_beats_blocking_backwards(
        ranks_pow in 2u32..7,
        local_n in prop::sample::select(vec![128usize, 512]),
    ) {
        let ranks = 1usize << ranks_pow;
        let cfg = DlrmConfig::large();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let mk = |mode| {
            simulate_iteration(&cfg, &cluster, &calib, SimParams {
                ranks, local_n, strategy: ExStrategy::CclAlltoall, mode,
                charge_loader: false, wire: WirePrecision::Fp32,
            })
        };
        prop_assert!(mk(RunMode::Overlapping).total() <= mk(RunMode::Blocking).total() + 1e-12);
    }

    #[test]
    fn allreduce_monotone_in_bytes(
        a in 1u64..1_000_000u64,
        b in 1u64..1_000_000u64,
        ranks_pow in 1u32..7,
    ) {
        let ranks = 1usize << ranks_pow;
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let m = CommModel { cluster: &cluster, calib: &calib };
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            m.allreduce_time(lo, ranks, BackendKind::Ccl)
                <= m.allreduce_time(hi, ranks, BackendKind::Ccl) + 1e-15
        );
    }

    #[test]
    fn alltoall_monotone_in_bytes_and_backend(
        v in 1u64..2_000_000u64,
        ranks_pow in 1u32..7,
    ) {
        let ranks = 1usize << ranks_pow;
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let m = CommModel { cluster: &cluster, calib: &calib };
        let t_mpi = m.alltoall_time(v, ranks, BackendKind::Mpi);
        let t_ccl = m.alltoall_time(v, ranks, BackendKind::Ccl);
        prop_assert!(t_ccl <= t_mpi, "CCL must sustain >= MPI bandwidth");
        prop_assert!(
            m.alltoall_time(v, ranks, BackendKind::Ccl)
                <= m.alltoall_time(2 * v, ranks, BackendKind::Ccl) + 1e-15
        );
    }

    #[test]
    fn scatter_strategies_never_beat_native_alltoall(
        v in 1u64..1_000_000_000u64,
        ranks_pow in 1u32..7,
        tables in 1usize..128,
    ) {
        let ranks = 1usize << ranks_pow;
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let m = CommModel { cluster: &cluster, calib: &calib };
        let (a2a, _) = m.exchange(ExStrategy::Alltoall, v, ranks, tables);
        for s in [ExStrategy::ScatterList, ExStrategy::FusedScatter] {
            let (t, _) = m.exchange(s, v, ranks, tables);
            prop_assert!(t >= a2a - 1e-15, "{s:?} {t} vs alltoall {a2a}");
        }
    }
}
