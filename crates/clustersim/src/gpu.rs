//! Section VI-C: the single-socket CPU vs. single-V100 comparison.
//!
//! The paper measured the Small config at 62 ms/iteration on a V100 (the
//! DLRM release paper's Caffe2 number), 38 ms on the optimized SKX socket,
//! and *estimated* a fully-optimized GPU stack at 10–15 ms — while noting
//! that the V100's 16–32 GB of HBM cannot hold the Large (384 GB) or
//! MLPerf (98 GB) tables at all. This module reproduces that roofline
//! arithmetic with the same style of model the rest of the simulator uses.

use crate::calib::Calibration;
use crate::compute::ComputeModel;
use crate::machine::Cluster;
use dlrm_data::DlrmConfig;

/// A GPU accelerator, roofline-level.
#[derive(Debug, Clone)]
pub struct GpuSpec {
    /// Marketing name.
    pub name: &'static str,
    /// FP32 peak, FLOP/s.
    pub peak_flops: f64,
    /// HBM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// HBM capacity, bytes.
    pub mem_capacity: u64,
}

impl GpuSpec {
    /// NVIDIA V100 (16 GB SXM2): the paper's comparison point — "roughly
    /// 3.5x more FP32-FLOPS than Skylake/Cascade and 8x more available
    /// bandwidth at much smaller memory capacity".
    pub fn v100_16gb() -> Self {
        GpuSpec {
            name: "V100 (16 GB)",
            peak_flops: 15.7e12,
            mem_bw: 900.0e9,
            mem_capacity: 16 * (1 << 30),
        }
    }

    /// The 32 GB variant.
    pub fn v100_32gb() -> Self {
        GpuSpec {
            mem_capacity: 32 * (1 << 30),
            name: "V100 (32 GB)",
            ..Self::v100_16gb()
        }
    }
}

/// One row of the CPU-vs-GPU comparison.
#[derive(Debug, Clone)]
pub struct GpuComparison {
    /// Config name.
    pub config: String,
    /// Optimized single-socket CPU estimate, ms/iteration.
    pub cpu_ms: f64,
    /// Fully-optimized single-GPU estimate, ms/iteration (meaningless if
    /// the model does not fit).
    pub gpu_ms: f64,
    /// Do the embedding tables fit in HBM?
    pub fits_on_gpu: bool,
    /// Table bytes vs HBM capacity.
    pub table_bytes: u64,
}

/// Estimates one optimized-GPU iteration with the same roofline the CPU
/// model uses: MLP flops at a GEMM efficiency, embedding traffic at HBM
/// bandwidth, plus a fixed per-iteration launch/framework overhead.
pub fn gpu_iteration_seconds(
    cfg: &DlrmConfig,
    gpu: &GpuSpec,
    n: usize,
    calib: &Calibration,
) -> f64 {
    let mlp_flops = cfg.mlp_flops_per_iter(n) as f64;
    // DLRM's GEMMs (C, K ≤ a few thousand at minibatch ~2048) cannot keep
    // 80 SMs busy the way a 28-core socket is kept busy; sustained GEMM
    // efficiency on V100 for these shapes is well below the CPU's.
    const GPU_GEMM_EFFICIENCY: f64 = 0.35;
    let mlp = mlp_flops / (GPU_GEMM_EFFICIENCY * gpu.peak_flops);
    let emb = cfg.embedding_bytes_per_iter(n) as f64 / (calib.emb_bw_efficiency * gpu.mem_bw);
    // Interaction: tiny batched GEMMs run relatively better on GPUs; reuse
    // the CPU interaction-efficiency against the GPU peak.
    let f = (cfg.num_tables + 1) as f64;
    let inter_flops = 3.0 * n as f64 * f * (f - 1.0) * cfg.emb_dim as f64;
    let inter = inter_flops / (calib.interaction_efficiency * gpu.peak_flops);
    // Kernel-launch/framework overhead per iteration (dozens of kernels).
    const GPU_LAUNCH_OVERHEAD: f64 = 2.0e-3;
    mlp + emb + inter + GPU_LAUNCH_OVERHEAD
}

/// Builds the full Section VI-C comparison for the paper's three configs.
pub fn compare(cluster: &Cluster, gpu: &GpuSpec, calib: &Calibration) -> Vec<GpuComparison> {
    DlrmConfig::all_paper()
        .iter()
        .map(|cfg| {
            let n = cfg.mb_single;
            let cpu_model = ComputeModel { cluster, calib };
            GpuComparison {
                config: cfg.name.clone(),
                cpu_ms: cpu_model.total(cfg, n, n, 1) * 1e3,
                gpu_ms: gpu_iteration_seconds(cfg, gpu, n, calib) * 1e3,
                fits_on_gpu: cfg.total_table_bytes() <= gpu.mem_capacity,
                table_bytes: cfg.total_table_bytes(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn v100_ratios_match_paper_statement() {
        // "V100 has roughly 3.5x more FP32-FLOPS ... and 8x more bandwidth".
        let gpu = GpuSpec::v100_16gb();
        let skx = crate::machine::SocketSpec::skx_8180();
        let flops_ratio = gpu.peak_flops / skx.peak_flops;
        let bw_ratio = gpu.mem_bw / skx.mem_bw;
        assert!((3.0..4.5).contains(&flops_ratio), "{flops_ratio}");
        assert!((8.0..10.0).contains(&bw_ratio), "{bw_ratio}");
    }

    #[test]
    fn only_small_fits_in_hbm() {
        let rows = compare(
            &Cluster::node_8socket(),
            &GpuSpec::v100_32gb(),
            &Calibration::default(),
        );
        assert!(rows[0].fits_on_gpu, "Small (2 GB) fits");
        assert!(!rows[1].fits_on_gpu, "Large (384 GB) cannot fit");
        assert!(!rows[2].fits_on_gpu, "MLPerf (98 GB) cannot fit");
    }

    #[test]
    fn optimized_gpu_estimate_lands_in_paper_band() {
        // Paper: "we can expect a fully-optimized GPU software stack to be
        // at around 10-15 ms for the small problem, being 2-3x faster than
        // our optimized single-socket CPU version".
        let rows = compare(
            &Cluster::node_8socket(),
            &GpuSpec::v100_16gb(),
            &Calibration::default(),
        );
        let small = &rows[0];
        assert!(
            (8.0..20.0).contains(&small.gpu_ms),
            "gpu estimate {:.1} ms (paper: 10-15)",
            small.gpu_ms
        );
        let ratio = small.cpu_ms / small.gpu_ms;
        assert!(
            (1.5..4.0).contains(&ratio),
            "cpu/gpu ratio {ratio:.2} (paper: 2-3x)"
        );
    }
}
