//! Communication-time model: Eq. 1 / Eq. 2 volumes over the fabric
//! bandwidths, per backend and per exchange strategy.

use crate::calib::Calibration;
use crate::machine::Cluster;
use crate::{BackendKind, Strategy};

/// Communication-time estimates for one rank.
pub struct CommModel<'a> {
    /// Cluster hardware.
    pub cluster: &'a Cluster,
    /// Calibration constants.
    pub calib: &'a Calibration,
}

impl<'a> CommModel<'a> {
    /// Fraction of fabric bandwidth the backend's progress engine sustains.
    pub fn backend_bw_fraction(&self, backend: BackendKind) -> f64 {
        match backend {
            BackendKind::Mpi => self.calib.mpi_bw_fraction,
            BackendKind::Ccl => self.calib.ccl_bw_fraction,
        }
    }

    /// Ring allreduce (reduce-scatter + allgather) of `bytes` per rank:
    /// each phase moves `(R−1)/R · bytes` through the ring.
    pub fn allreduce_time(&self, bytes: u64, ranks: usize, backend: BackendKind) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let congestion = 1.0 + self.calib.ring_congestion * (ranks as f64).log2();
        let bw = self.cluster.fabric.ring_bandwidth(ranks) * self.backend_bw_fraction(backend)
            / congestion;
        let vol = 2.0 * (ranks as f64 - 1.0) / ranks as f64 * bytes as f64;
        vol / bw + 2.0 * (ranks as f64 - 1.0) * self.cluster.fabric.max_latency(ranks)
    }

    /// Native pairwise alltoall of Eq. 2 total volume `total_bytes`:
    /// per-rank egress is `(V/R)·(R−1)/R`, all NICs transmit concurrently.
    /// A 2-rank exchange is a single unpipelined round and pays the
    /// `single_round_penalty` (Section VI-D1's very high 2-rank alltoall
    /// cost for MLPerf).
    pub fn alltoall_time(&self, total_bytes: u64, ranks: usize, backend: BackendKind) -> f64 {
        if ranks <= 1 {
            return 0.0;
        }
        let r = ranks as f64;
        let egress = total_bytes as f64 / r * (r - 1.0) / r;
        let pipelining = 1.0 - self.calib.single_round_penalty / (r - 1.0);
        let bw = self.cluster.fabric.alltoall_bandwidth(ranks)
            * self.backend_bw_fraction(backend)
            * pipelining.max(0.1);
        egress / bw + (r - 1.0) * self.cluster.fabric.max_latency(ranks)
    }

    /// Embedding-exchange time + number of framework calls for a strategy
    /// (Section IV-B). Scatter-based strategies move the same volume but
    /// serialize on roots (only partial pipelining across the sequentially
    /// issued calls) and multiply the per-call overhead.
    pub fn exchange(
        &self,
        strategy: Strategy,
        total_bytes: u64,
        ranks: usize,
        num_tables: usize,
    ) -> (f64, usize) {
        let backend = strategy.backend();
        let base = self.alltoall_time(total_bytes, ranks, backend);
        match strategy {
            Strategy::Alltoall | Strategy::CclAlltoall => (base, 1),
            Strategy::FusedScatter => {
                let ser = 1.0 + self.calib.scatter_serialization * (ranks as f64).log2();
                (base * ser, ranks)
            }
            Strategy::ScatterList => {
                let ser = 1.0 + self.calib.scatter_serialization * (ranks as f64).log2();
                (base * ser, num_tables.max(ranks))
            }
        }
    }

    /// Framework (pre/post-processing) time: per-call overhead plus local
    /// copies of the communicated bytes at a fraction of DRAM bandwidth.
    pub fn framework_time(&self, bytes: u64, calls: usize) -> f64 {
        calls as f64 * self.calib.per_call_overhead
            + bytes as f64 / (self.calib.framework_copy_bw_fraction * self.cluster.socket.mem_bw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Cluster;

    fn mk<'a>(cluster: &'a Cluster, calib: &'a Calibration) -> CommModel<'a> {
        CommModel { cluster, calib }
    }

    #[test]
    fn single_rank_communicates_nothing() {
        let cl = Cluster::cluster_64socket();
        let cal = Calibration::default();
        let m = mk(&cl, &cal);
        assert_eq!(m.allreduce_time(1 << 30, 1, BackendKind::Mpi), 0.0);
        assert_eq!(m.alltoall_time(1 << 30, 1, BackendKind::Ccl), 0.0);
    }

    #[test]
    fn allreduce_cost_grows_slowly_with_ranks() {
        // Ring allreduce volume → 2·bytes as R → ∞; with congestion and
        // latency the 8→64 step grows the cost, but well below linearly —
        // the strong-scaling pain is that it does not *drop*.
        let cl = Cluster::cluster_64socket();
        let cal = Calibration::default();
        let m = mk(&cl, &cal);
        let t8 = m.allreduce_time(10 << 20, 8, BackendKind::Ccl);
        let t64 = m.allreduce_time(10 << 20, 64, BackendKind::Ccl);
        assert!(t64 > t8, "more ranks = more ring steps + congestion");
        assert!(t64 < 2.5 * t8, "but far below linear growth");
    }

    #[test]
    fn alltoall_cost_falls_with_ranks_strong_scaling() {
        // Eq. 2: volume fixed by GN ⇒ per-rank egress ∝ 1/R.
        let cl = Cluster::cluster_64socket();
        let cal = Calibration::default();
        let m = mk(&cl, &cal);
        let v = 208 << 20; // MLPerf Table II
        let t4 = m.alltoall_time(v, 4, BackendKind::Ccl);
        let t8 = m.alltoall_time(v, 8, BackendKind::Ccl);
        let t16 = m.alltoall_time(v, 16, BackendKind::Ccl);
        assert!(t4 > t8 && t8 > t16);
    }

    #[test]
    fn two_rank_alltoall_pays_single_round_penalty() {
        let cl = Cluster::cluster_64socket();
        let cal = Calibration::default();
        let m = mk(&cl, &cal);
        let v = 208 << 20;
        let t2 = m.alltoall_time(v, 2, BackendKind::Mpi);
        let t4 = m.alltoall_time(v, 4, BackendKind::Mpi);
        // Per-rank egress at R=2 is V/4, at R=4 is 3V/16 (0.75×); with the
        // single-round penalty the R=2 point must be much worse than that.
        assert!(t2 > 1.5 * t4, "t2={t2} t4={t4}");
    }

    #[test]
    fn ccl_beats_mpi_on_pure_bandwidth() {
        let cl = Cluster::cluster_64socket();
        let cal = Calibration::default();
        let m = mk(&cl, &cal);
        let t_mpi = m.allreduce_time(100 << 20, 16, BackendKind::Mpi);
        let t_ccl = m.allreduce_time(100 << 20, 16, BackendKind::Ccl);
        assert!(t_ccl < t_mpi, "Figure 11: pure CCL comm cost is lower");
    }

    #[test]
    fn strategy_ordering_matches_figure9() {
        let cl = Cluster::cluster_64socket();
        let cal = Calibration::default();
        let m = mk(&cl, &cal);
        let v = 1 << 30;
        let (ranks, tables) = (16, 64);
        let t = |s: Strategy| {
            let (time, calls) = m.exchange(s, v, ranks, tables);
            time + m.framework_time(v / ranks as u64, calls)
        };
        let sl = t(Strategy::ScatterList);
        let fs = t(Strategy::FusedScatter);
        let a2a = t(Strategy::Alltoall);
        let ccl = t(Strategy::CclAlltoall);
        assert!(sl >= fs, "ScatterList {sl} >= FusedScatter {fs}");
        assert!(fs > a2a, "FusedScatter {fs} > Alltoall {a2a}");
        assert!(a2a > ccl, "MPI Alltoall {a2a} > CCL Alltoall {ccl}");
    }

    #[test]
    fn framework_time_scales_with_calls_and_bytes() {
        let cl = Cluster::node_8socket();
        let cal = Calibration::default();
        let m = mk(&cl, &cal);
        let t1 = m.framework_time(1 << 20, 1);
        let t2 = m.framework_time(2 << 20, 2);
        assert!(t2 > t1);
        assert!((m.framework_time(0, 10) - 10.0 * cal.per_call_overhead).abs() < 1e-12);
    }
}
