//! Section VII outlook: projected single-socket gains from native BF16
//! (Cooper-Lake `vdpbf16ps`) with Split-SGD.
//!
//! With Split-SGD the model tensors *are* BF16, so "66% of the training
//! passes enjoy a 2x bandwidth reduction": the embedding forward and
//! backward read/write half the bytes (the update still touches both
//! 16-bit planes — FP32-equivalent traffic), and `vdpbf16ps` doubles the
//! FMA throughput of the MLP GEMMs. This module projects those effects
//! through the same roofline the rest of the simulator uses — the paper's
//! "this will help to also significantly speed-up the MLP portions as
//! well" once silicon is available.

use crate::calib::Calibration;
use crate::compute::ComputeModel;
use crate::machine::Cluster;
use dlrm_data::DlrmConfig;

/// Projected FP32-vs-BF16 single-socket iteration times.
#[derive(Debug, Clone)]
pub struct Bf16Projection {
    /// Config name.
    pub config: String,
    /// FP32 iteration, ms.
    pub fp32_ms: f64,
    /// Projected BF16 (Split-SGD + vdpbf16ps) iteration, ms.
    pub bf16_ms: f64,
    /// fp32 / bf16.
    pub speedup: f64,
}

/// Fraction of embedding row traffic that runs at BF16 width: forward and
/// backward do (2 of 3 sweeps at half the bytes), the Split-SGD update
/// reads hi+lo planes (full width).
const EMB_BYTES_FACTOR: f64 = (2.0 * 0.5 + 1.0) / 3.0;

/// `vdpbf16ps` retires twice the FP32 FMA throughput per cycle.
const MLP_SPEEDUP: f64 = 2.0;

/// Projects the BF16 iteration time for one config at minibatch `n`.
pub fn project_config(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    n: usize,
) -> Bf16Projection {
    let m = ComputeModel { cluster, calib };
    let mlp = m.bottom_fwd(cfg, n) + m.bottom_bwd(cfg, n) + m.top_fwd(cfg, n) + m.top_bwd(cfg, n);
    let emb = m.embedding(cfg, n, 1);
    let rest = m.interaction(cfg, n) + calib.framework_overhead;

    let fp32 = mlp + emb + rest;
    let bf16 = mlp / MLP_SPEEDUP + emb * EMB_BYTES_FACTOR + rest;
    Bf16Projection {
        config: cfg.name.clone(),
        fp32_ms: fp32 * 1e3,
        bf16_ms: bf16 * 1e3,
        speedup: fp32 / bf16,
    }
}

/// All three paper configs at their single-socket minibatch.
pub fn project_all(cluster: &Cluster, calib: &Calibration) -> Vec<Bf16Projection> {
    DlrmConfig::all_paper()
        .iter()
        .map(|cfg| project_config(cfg, cluster, calib, cfg.mb_single))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn speedups_are_bounded_by_the_component_gains() {
        let rows = project_all(&Cluster::node_8socket(), &Calibration::default());
        for r in &rows {
            assert!(
                r.speedup > 1.0 && r.speedup < 2.0,
                "{}: {:.2}x must sit between no gain and the 2x ceiling",
                r.config,
                r.speedup
            );
        }
    }

    #[test]
    fn mlp_heavy_configs_gain_more() {
        // Large (deep 4096-wide MLPs) is more compute-bound than Small, so
        // the vdpbf16ps doubling helps it more.
        let cluster = Cluster::node_8socket();
        let calib = Calibration::default();
        let rows = project_all(&cluster, &calib);
        let small = rows.iter().find(|r| r.config == "Small").unwrap();
        let large = rows.iter().find(|r| r.config == "Large").unwrap();
        assert!(
            large.speedup > small.speedup,
            "large {:.2}x should beat small {:.2}x",
            large.speedup,
            small.speedup
        );
    }

    #[test]
    fn embedding_factor_matches_the_papers_66_percent_claim() {
        // 2 of 3 passes at half width = 2/3 of traffic halved.
        assert!((EMB_BYTES_FACTOR - 2.0 / 3.0).abs() < 1e-12);
    }
}
