//! One-iteration timeline: composes the compute and communication models
//! with the paper's overlap rules and backend artifacts.

use crate::calib::Calibration;
use crate::comm::CommModel;
use crate::compute::ComputeModel;
use crate::machine::Cluster;
use crate::{BackendKind, Strategy};
use dlrm_data::DlrmConfig;
use serde::Serialize;

/// Overlapping vs. blocking communication (the two halves of Figs. 10–14).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub enum RunMode {
    /// Nonblocking communication overlapped per Section IV.
    Overlapping,
    /// Instrumented blocking communication.
    Blocking,
}

/// Per-iteration time breakdown of one (busiest) rank, seconds.
#[derive(Debug, Clone, Default, Serialize)]
pub struct IterBreakdown {
    /// Pure compute (MLPs, embeddings, interaction, framework fixed cost).
    pub compute: f64,
    /// Data-loader time.
    pub loader: f64,
    /// Alltoall pre/post-processing ("Alltoall-Framework").
    pub alltoall_framework: f64,
    /// Exposed alltoall wait ("Alltoall-Wait").
    pub alltoall_wait: f64,
    /// Allreduce pre/post-processing ("Allreduce-Framework").
    pub allreduce_framework: f64,
    /// Exposed allreduce wait ("Allreduce-Wait").
    pub allreduce_wait: f64,
}

impl IterBreakdown {
    /// Total iteration time.
    pub fn total(&self) -> f64 {
        self.compute
            + self.loader
            + self.alltoall_framework
            + self.alltoall_wait
            + self.allreduce_framework
            + self.allreduce_wait
    }

    /// Total communication time (framework + wait).
    pub fn comm(&self) -> f64 {
        self.alltoall_framework + self.alltoall_wait + self.allreduce_framework + self.allreduce_wait
    }
}

/// Simulation parameters for one data point.
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// Number of ranks (sockets).
    pub ranks: usize,
    /// Local (per-rank) minibatch.
    pub local_n: usize,
    /// Embedding-exchange strategy (also fixes the backend).
    pub strategy: Strategy,
    /// Overlapping or blocking communication.
    pub mode: RunMode,
    /// Whether the (full-global-batch) data loader cost is charged — the
    /// paper's random datasets (Small/Large) "do not account for time spent
    /// in data loader"; the MLPerf/Criteo config does.
    pub charge_loader: bool,
}

/// Simulates one training iteration and returns its time breakdown.
pub fn simulate_iteration(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    p: SimParams,
) -> IterBreakdown {
    assert!(p.ranks >= 1, "need at least one rank");
    assert!(
        p.ranks <= cluster.fabric.max_ranks(),
        "cluster has only {} sockets",
        cluster.fabric.max_ranks()
    );
    assert!(
        p.ranks <= cfg.max_ranks(),
        "pure model parallelism caps at {} ranks",
        cfg.max_ranks()
    );
    let compute_model = ComputeModel { cluster, calib };
    let comm_model = CommModel { cluster, calib };
    let backend = p.strategy.backend();
    let gn = p.local_n * p.ranks;

    // --- compute pieces -----------------------------------------------
    let bottom_fwd = compute_model.bottom_fwd(cfg, p.local_n);
    let bottom_bwd = compute_model.bottom_bwd(cfg, p.local_n);
    let top_fwd = compute_model.top_fwd(cfg, p.local_n);
    let top_bwd = compute_model.top_bwd(cfg, p.local_n);
    let emb = compute_model.embedding(cfg, gn, p.ranks);
    let interaction = compute_model.interaction(cfg, p.local_n);
    let mut compute =
        bottom_fwd + bottom_bwd + top_fwd + top_bwd + emb + interaction + calib.framework_overhead;

    let loader = if p.charge_loader {
        // The paper's loader materializes the full global batch per rank.
        compute_model.loader(gn)
    } else {
        0.0
    };

    if p.ranks == 1 {
        return IterBreakdown {
            compute,
            loader,
            ..Default::default()
        };
    }

    // --- communication volumes ------------------------------------------
    // The alltoall moves the Eq. 2 volume once per iteration — Table II's
    // accounting. (The backward gradient exchange reuses the same pattern;
    // the paper counts the volume once and so do we.)
    let a2a_volume = cfg.alltoall_bytes(gn);
    let ar_bytes = cfg.allreduce_bytes();

    let (a2a_total, a2a_calls) =
        comm_model.exchange(p.strategy, a2a_volume, p.ranks, cfg.num_tables);
    let ar_total = comm_model.allreduce_time(ar_bytes, p.ranks, backend);

    // Framework pre/post-processing (paid in both modes; Figure 11 shows it
    // comparable across backends).
    let per_rank_a2a_bytes = a2a_volume / p.ranks as u64;
    let alltoall_framework = comm_model.framework_time(per_rank_a2a_bytes, a2a_calls);
    let allreduce_framework = comm_model.framework_time(ar_bytes, 2);

    match p.mode {
        RunMode::Blocking => IterBreakdown {
            compute,
            loader,
            alltoall_framework,
            alltoall_wait: a2a_total,
            allreduce_framework,
            allreduce_wait: ar_total,
        },
        RunMode::Overlapping => {
            // Overlap windows (Section IV / VI-D): the allreduce hides
            // behind the whole backward pass; the alltoall only behind the
            // bottom-MLP windows.
            if backend == BackendKind::Mpi {
                // The unpinned MPI progress thread steals compute cycles.
                compute *= calib.mpi_compute_interference;
            }
            let a2a_window = bottom_fwd + bottom_bwd;
            let ar_window = top_bwd + bottom_bwd + emb * (2.0 / 3.0);
            let exposed_a2a = (a2a_total - a2a_window).max(0.0);
            let exposed_ar = (ar_total - ar_window).max(0.0);
            let (alltoall_wait, allreduce_wait) = match backend {
                // In-order completion: the wait on the (later-enqueued)
                // alltoall absorbs the exposed allreduce (Section VI-D1).
                BackendKind::Mpi => (exposed_a2a + exposed_ar, 0.0),
                BackendKind::Ccl => (exposed_a2a, exposed_ar),
            };
            IterBreakdown {
                compute,
                loader,
                alltoall_framework,
                alltoall_wait,
                allreduce_framework,
                allreduce_wait,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Cluster;

    fn sim(cfg: &DlrmConfig, ranks: usize, strategy: Strategy, mode: RunMode) -> IterBreakdown {
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let local_n = cfg.gn_strong / ranks;
        simulate_iteration(
            cfg,
            &cluster,
            &calib,
            SimParams {
                ranks,
                local_n,
                strategy,
                mode,
                charge_loader: false,
            },
        )
    }

    #[test]
    fn single_rank_has_no_communication() {
        let cfg = DlrmConfig::small();
        let b = sim(&cfg, 1, Strategy::CclAlltoall, RunMode::Overlapping);
        assert_eq!(b.comm(), 0.0);
        assert!(b.compute > 0.0);
    }

    #[test]
    fn blocking_total_never_beats_overlapping_ccl() {
        let cfg = DlrmConfig::large();
        for ranks in [4usize, 8, 16, 32, 64] {
            let ov = sim(&cfg, ranks, Strategy::CclAlltoall, RunMode::Overlapping);
            let bl = sim(&cfg, ranks, Strategy::CclAlltoall, RunMode::Blocking);
            assert!(
                ov.total() <= bl.total() + 1e-12,
                "ranks={ranks}: overlap {} > blocking {}",
                ov.total(),
                bl.total()
            );
        }
    }

    #[test]
    fn mpi_charges_exposed_allreduce_to_alltoall_wait() {
        // The Figure 10/11 artifact.
        let cfg = DlrmConfig::large();
        let b = sim(&cfg, 64, Strategy::Alltoall, RunMode::Overlapping);
        assert_eq!(b.allreduce_wait, 0.0);
        assert!(b.alltoall_wait > 0.0);
        let c = sim(&cfg, 64, Strategy::CclAlltoall, RunMode::Overlapping);
        assert!(c.allreduce_wait > 0.0, "CCL shows allreduce wait where it belongs");
    }

    #[test]
    fn mpi_overlap_inflates_compute() {
        let cfg = DlrmConfig::large();
        let ov = sim(&cfg, 16, Strategy::Alltoall, RunMode::Overlapping);
        let bl = sim(&cfg, 16, Strategy::Alltoall, RunMode::Blocking);
        assert!(
            ov.compute > bl.compute,
            "Figure 10: MPI compute grows under overlap"
        );
        let ov_ccl = sim(&cfg, 16, Strategy::CclAlltoall, RunMode::Overlapping);
        let bl_ccl = sim(&cfg, 16, Strategy::CclAlltoall, RunMode::Blocking);
        assert!((ov_ccl.compute - bl_ccl.compute).abs() < 1e-12, "CCL compute unchanged");
    }

    #[test]
    fn strategies_rank_correctly_end_to_end() {
        let cfg = DlrmConfig::mlperf();
        for ranks in [8usize, 16] {
            let t = |s| sim(&cfg, ranks, s, RunMode::Overlapping).total();
            assert!(t(Strategy::ScatterList) >= t(Strategy::FusedScatter));
            assert!(t(Strategy::FusedScatter) > t(Strategy::Alltoall));
            assert!(t(Strategy::Alltoall) > t(Strategy::CclAlltoall));
        }
    }

    #[test]
    fn strong_scaling_reduces_total_time() {
        let cfg = DlrmConfig::large();
        let t4 = sim(&cfg, 4, Strategy::CclAlltoall, RunMode::Overlapping).total();
        let t16 = sim(&cfg, 16, Strategy::CclAlltoall, RunMode::Overlapping).total();
        let t64 = sim(&cfg, 64, Strategy::CclAlltoall, RunMode::Overlapping).total();
        assert!(t4 > t16 && t16 > t64, "{t4} > {t16} > {t64}");
    }

    #[test]
    fn loader_charge_grows_with_global_batch() {
        let cfg = DlrmConfig::mlperf();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let mk = |ranks: usize| {
            simulate_iteration(
                &cfg,
                &cluster,
                &calib,
                SimParams {
                    ranks,
                    local_n: cfg.ln_weak,
                    strategy: Strategy::CclAlltoall,
                    mode: RunMode::Blocking,
                    charge_loader: true,
                },
            )
        };
        // Weak scaling: GN = LN·R, so the full-global-batch loader cost
        // grows linearly with rank count (Figure 13's creeping compute).
        assert!(mk(16).loader > 3.9 * mk(4).loader);
    }

    #[test]
    #[should_panic(expected = "model parallelism caps")]
    fn rank_count_capped_by_tables() {
        let cfg = DlrmConfig::small(); // 8 tables
        let _ = sim(&cfg, 16, Strategy::Alltoall, RunMode::Blocking);
    }
}
