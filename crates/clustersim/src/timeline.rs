//! One-iteration timeline: composes the compute and communication models
//! with the paper's overlap rules and backend artifacts.

use crate::calib::Calibration;
use crate::comm::CommModel;
use crate::compute::ComputeModel;
use crate::machine::Cluster;
use crate::{BackendKind, Strategy};
use dlrm_comm::chaos::FaultPlan;
use dlrm_comm::wire::WirePrecision;
use dlrm_data::DlrmConfig;

/// Overlapping vs. blocking communication (the two halves of Figs. 10–14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RunMode {
    /// Nonblocking communication overlapped per Section IV.
    Overlapping,
    /// Instrumented blocking communication.
    Blocking,
}

/// Per-iteration time breakdown of one (busiest) rank, seconds.
#[derive(Debug, Clone, Default)]
pub struct IterBreakdown {
    /// Pure compute (MLPs, embeddings, interaction, framework fixed cost).
    pub compute: f64,
    /// Data-loader time.
    pub loader: f64,
    /// Alltoall pre/post-processing ("Alltoall-Framework").
    pub alltoall_framework: f64,
    /// Exposed alltoall wait ("Alltoall-Wait").
    pub alltoall_wait: f64,
    /// Allreduce pre/post-processing ("Allreduce-Framework").
    pub allreduce_framework: f64,
    /// Exposed allreduce wait ("Allreduce-Wait").
    pub allreduce_wait: f64,
}

impl IterBreakdown {
    /// Total iteration time.
    pub fn total(&self) -> f64 {
        self.compute
            + self.loader
            + self.alltoall_framework
            + self.alltoall_wait
            + self.allreduce_framework
            + self.allreduce_wait
    }

    /// Total communication time (framework + wait).
    pub fn comm(&self) -> f64 {
        self.alltoall_framework
            + self.alltoall_wait
            + self.allreduce_framework
            + self.allreduce_wait
    }
}

/// Simulation parameters for one data point.
#[derive(Debug, Clone, Copy)]
pub struct SimParams {
    /// Number of ranks (sockets).
    pub ranks: usize,
    /// Local (per-rank) minibatch.
    pub local_n: usize,
    /// Embedding-exchange strategy (also fixes the backend).
    pub strategy: Strategy,
    /// Overlapping or blocking communication.
    pub mode: RunMode,
    /// Whether the (full-global-batch) data loader cost is charged — the
    /// paper's random datasets (Small/Large) "do not account for time spent
    /// in data loader"; the MLPerf/Criteo config does.
    pub charge_loader: bool,
    /// On-wire element format of the alltoall and allreduce payloads: BF16
    /// halves the exchanged bytes (the functional `dlrm-comm` wire layer's
    /// counters confirm exactly 2×), leaving compute untouched — the
    /// comm-side half of the paper's 16-bit outlook, complementing the
    /// compute-side [`crate::bf16_outlook`] projection.
    pub wire: WirePrecision,
}

/// Simulates one training iteration and returns its time breakdown.
pub fn simulate_iteration(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    p: SimParams,
) -> IterBreakdown {
    assert!(p.ranks >= 1, "need at least one rank");
    assert!(
        p.ranks <= cluster.fabric.max_ranks(),
        "cluster has only {} sockets",
        cluster.fabric.max_ranks()
    );
    assert!(
        p.ranks <= cfg.max_ranks(),
        "pure model parallelism caps at {} ranks",
        cfg.max_ranks()
    );
    let compute_model = ComputeModel { cluster, calib };
    let comm_model = CommModel { cluster, calib };
    let backend = p.strategy.backend();
    let gn = p.local_n * p.ranks;

    // --- compute pieces -----------------------------------------------
    let bottom_fwd = compute_model.bottom_fwd(cfg, p.local_n);
    let bottom_bwd = compute_model.bottom_bwd(cfg, p.local_n);
    let top_fwd = compute_model.top_fwd(cfg, p.local_n);
    let top_bwd = compute_model.top_bwd(cfg, p.local_n);
    let emb = compute_model.embedding(cfg, gn, p.ranks);
    let interaction = compute_model.interaction(cfg, p.local_n);
    let mut compute =
        bottom_fwd + bottom_bwd + top_fwd + top_bwd + emb + interaction + calib.framework_overhead;

    let loader = if p.charge_loader {
        // The paper's loader materializes the full global batch per rank.
        compute_model.loader(gn)
    } else {
        0.0
    };

    if p.ranks == 1 {
        return IterBreakdown {
            compute,
            loader,
            ..Default::default()
        };
    }

    // --- communication volumes ------------------------------------------
    // The alltoall moves the Eq. 2 volume once per iteration — Table II's
    // accounting. (The backward gradient exchange reuses the same pattern;
    // the paper counts the volume once and so do we.) The config's byte
    // counts assume 4-byte elements; the wire format rescales them.
    let wire_scale = |bytes: u64| bytes * p.wire.bytes_per_elem() as u64 / 4;
    let a2a_volume = wire_scale(cfg.alltoall_bytes(gn));
    let ar_bytes = wire_scale(cfg.allreduce_bytes());

    let (a2a_total, a2a_calls) =
        comm_model.exchange(p.strategy, a2a_volume, p.ranks, cfg.num_tables);
    let ar_total = comm_model.allreduce_time(ar_bytes, p.ranks, backend);

    // Framework pre/post-processing (paid in both modes; Figure 11 shows it
    // comparable across backends).
    let per_rank_a2a_bytes = a2a_volume / p.ranks as u64;
    let alltoall_framework = comm_model.framework_time(per_rank_a2a_bytes, a2a_calls);
    let allreduce_framework = comm_model.framework_time(ar_bytes, 2);

    match p.mode {
        RunMode::Blocking => IterBreakdown {
            compute,
            loader,
            alltoall_framework,
            alltoall_wait: a2a_total,
            allreduce_framework,
            allreduce_wait: ar_total,
        },
        RunMode::Overlapping => {
            // Overlap windows (Section IV / VI-D): the allreduce hides
            // behind the whole backward pass; the alltoall only behind the
            // bottom-MLP windows.
            if backend == BackendKind::Mpi {
                // The unpinned MPI progress thread steals compute cycles.
                compute *= calib.mpi_compute_interference;
            }
            let a2a_window = bottom_fwd + bottom_bwd;
            let ar_window = top_bwd + bottom_bwd + emb * (2.0 / 3.0);
            let exposed_a2a = (a2a_total - a2a_window).max(0.0);
            let exposed_ar = (ar_total - ar_window).max(0.0);
            let (alltoall_wait, allreduce_wait) = match backend {
                // In-order completion: the wait on the (later-enqueued)
                // alltoall absorbs the exposed allreduce (Section VI-D1).
                BackendKind::Mpi => (exposed_a2a + exposed_ar, 0.0),
                BackendKind::Ccl => (exposed_a2a, exposed_ar),
            };
            IterBreakdown {
                compute,
                loader,
                alltoall_framework,
                alltoall_wait,
                allreduce_framework,
                allreduce_wait,
            }
        }
    }
}

/// Exposed-communication comparison between the two [`RunMode`]s at one
/// configuration — the analytic counterpart of `bench_overlap`'s measured
/// sync-vs-overlapped contrast.
#[derive(Debug, Clone)]
pub struct OverlapSavings {
    /// Exposed wait (alltoall + allreduce) when blocking, seconds.
    pub blocking_exposed: f64,
    /// Exposed wait when overlapped, seconds.
    pub overlapped_exposed: f64,
}

impl OverlapSavings {
    /// Fraction of the blocking exposed wait that overlap hides (0 when
    /// nothing was exposed to begin with).
    pub fn hidden_fraction(&self) -> f64 {
        if self.blocking_exposed <= 0.0 {
            0.0
        } else {
            1.0 - self.overlapped_exposed / self.blocking_exposed
        }
    }
}

/// Simulates the same configuration blocking and overlapping and returns
/// the exposed-wait contrast. `p.mode` is ignored.
pub fn overlap_savings(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    p: SimParams,
) -> OverlapSavings {
    let run = |mode| {
        let b = simulate_iteration(cfg, cluster, calib, SimParams { mode, ..p });
        b.alltoall_wait + b.allreduce_wait
    };
    OverlapSavings {
        blocking_exposed: run(RunMode::Blocking),
        overlapped_exposed: run(RunMode::Overlapping),
    }
}

/// One simulated iteration under a seeded [`FaultPlan`] — the same plan
/// the functional `dlrm-comm` chaos harness consumes, so a single `u64`
/// seed drives both the bitwise-stability tests and these analytic
/// what-ifs.
#[derive(Debug, Clone)]
pub struct FaultedIteration {
    /// Time breakdown of the critical (slowest) rank with faults applied.
    pub breakdown: IterBreakdown,
    /// The rank that set the iteration time.
    pub critical_rank: usize,
    /// That rank's straggler slowdown factor (≥ 1).
    pub straggler_factor: f64,
    /// That rank's fraction of exchange traffic arriving late.
    pub late_fraction: f64,
}

/// Simulates iteration `iter` under `plan`'s straggler and late-message
/// faults. Each rank's compute is scaled by its
/// [`FaultPlan::straggler_factor`]; a [`FaultPlan::late_message_fraction`]
/// share of its exchange traffic misses every overlap window (late by
/// definition) and is charged as extra exposed alltoall wait. Collectives
/// synchronize the ranks, so the iteration time is the slowest rank's —
/// exactly why the paper pins communication cores: one straggling socket
/// stalls the whole cluster step.
pub fn simulate_iteration_faulted(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    p: SimParams,
    plan: &FaultPlan,
    iter: u64,
) -> FaultedIteration {
    let base = simulate_iteration(cfg, cluster, calib, p);
    // Full (unoverlapped) alltoall time: the blocking run exposes it all.
    let a2a_total = if p.ranks == 1 {
        0.0
    } else if p.mode == RunMode::Blocking {
        base.alltoall_wait
    } else {
        simulate_iteration(
            cfg,
            cluster,
            calib,
            SimParams {
                mode: RunMode::Blocking,
                ..p
            },
        )
        .alltoall_wait
    };

    let mut crit: Option<FaultedIteration> = None;
    for rank in 0..p.ranks {
        let s = plan.straggler_factor(rank, iter);
        let f = plan.late_message_fraction(rank, iter);
        let breakdown = IterBreakdown {
            compute: base.compute * s,
            alltoall_wait: base.alltoall_wait + f * a2a_total,
            ..base.clone()
        };
        let worse = match &crit {
            Some(c) => breakdown.total() > c.breakdown.total(),
            None => true,
        };
        if worse {
            crit = Some(FaultedIteration {
                breakdown,
                critical_rank: rank,
                straggler_factor: s,
                late_fraction: f,
            });
        }
    }
    crit.expect("at least one rank")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Cluster;
    use dlrm_comm::chaos::ChaosConfig;

    fn sim(cfg: &DlrmConfig, ranks: usize, strategy: Strategy, mode: RunMode) -> IterBreakdown {
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let local_n = cfg.gn_strong / ranks;
        simulate_iteration(
            cfg,
            &cluster,
            &calib,
            SimParams {
                ranks,
                local_n,
                strategy,
                mode,
                charge_loader: false,
                wire: WirePrecision::Fp32,
            },
        )
    }

    #[test]
    fn single_rank_has_no_communication() {
        let cfg = DlrmConfig::small();
        let b = sim(&cfg, 1, Strategy::CclAlltoall, RunMode::Overlapping);
        assert_eq!(b.comm(), 0.0);
        assert!(b.compute > 0.0);
    }

    #[test]
    fn blocking_total_never_beats_overlapping_ccl() {
        let cfg = DlrmConfig::large();
        for ranks in [4usize, 8, 16, 32, 64] {
            let ov = sim(&cfg, ranks, Strategy::CclAlltoall, RunMode::Overlapping);
            let bl = sim(&cfg, ranks, Strategy::CclAlltoall, RunMode::Blocking);
            assert!(
                ov.total() <= bl.total() + 1e-12,
                "ranks={ranks}: overlap {} > blocking {}",
                ov.total(),
                bl.total()
            );
        }
    }

    #[test]
    fn bf16_wire_shrinks_comm_but_not_compute() {
        let cfg = DlrmConfig::large();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        for ranks in [4usize, 16, 64] {
            let mk = |wire| {
                simulate_iteration(
                    &cfg,
                    &cluster,
                    &calib,
                    SimParams {
                        ranks,
                        local_n: cfg.gn_strong / ranks,
                        strategy: Strategy::CclAlltoall,
                        mode: RunMode::Blocking,
                        charge_loader: false,
                        wire,
                    },
                )
            };
            let fp = mk(WirePrecision::Fp32);
            let bf = mk(WirePrecision::Bf16);
            assert_eq!(bf.compute, fp.compute, "wire must not touch compute");
            assert!(
                bf.alltoall_wait < fp.alltoall_wait,
                "R={ranks}: bf16 alltoall {} !< fp32 {}",
                bf.alltoall_wait,
                fp.alltoall_wait
            );
            assert!(
                bf.allreduce_wait < fp.allreduce_wait,
                "R={ranks}: bf16 allreduce {} !< fp32 {}",
                bf.allreduce_wait,
                fp.allreduce_wait
            );
            // The volume term halves exactly; latency floors keep the
            // total wait above half.
            assert!(bf.alltoall_wait >= fp.alltoall_wait / 2.0 - 1e-12);
        }
    }

    #[test]
    fn int8_wire_quarters_comm_volume_in_the_64socket_model() {
        let cfg = DlrmConfig::large();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        for ranks in [4usize, 16, 64] {
            let mk = |wire| {
                simulate_iteration(
                    &cfg,
                    &cluster,
                    &calib,
                    SimParams {
                        ranks,
                        local_n: cfg.gn_strong / ranks,
                        strategy: Strategy::CclAlltoall,
                        mode: RunMode::Blocking,
                        charge_loader: false,
                        wire,
                    },
                )
            };
            let fp = mk(WirePrecision::Fp32);
            let bf = mk(WirePrecision::Bf16);
            let i8 = mk(WirePrecision::Int8);
            let i8s = mk(WirePrecision::int8_shared(1.0));
            assert_eq!(i8.compute, fp.compute, "wire must not touch compute");
            // One byte per element, identical for both INT8 flavors (the
            // analytic model charges payload volume; the self-describing
            // flavor's scale headers are one f32 per table block —
            // negligible against n·E payloads and not modeled here).
            assert_eq!(i8.alltoall_wait, i8s.alltoall_wait);
            assert!(
                i8.alltoall_wait < bf.alltoall_wait && i8.allreduce_wait < bf.allreduce_wait,
                "R={ranks}: int8 must undercut bf16"
            );
            // The volume term quarters exactly; latency floors keep the
            // total wait above a quarter.
            assert!(i8.alltoall_wait >= fp.alltoall_wait / 4.0 - 1e-12);
        }
    }

    #[test]
    fn mpi_charges_exposed_allreduce_to_alltoall_wait() {
        // The Figure 10/11 artifact.
        let cfg = DlrmConfig::large();
        let b = sim(&cfg, 64, Strategy::Alltoall, RunMode::Overlapping);
        assert_eq!(b.allreduce_wait, 0.0);
        assert!(b.alltoall_wait > 0.0);
        let c = sim(&cfg, 64, Strategy::CclAlltoall, RunMode::Overlapping);
        assert!(
            c.allreduce_wait > 0.0,
            "CCL shows allreduce wait where it belongs"
        );
    }

    #[test]
    fn mpi_overlap_inflates_compute() {
        let cfg = DlrmConfig::large();
        let ov = sim(&cfg, 16, Strategy::Alltoall, RunMode::Overlapping);
        let bl = sim(&cfg, 16, Strategy::Alltoall, RunMode::Blocking);
        assert!(
            ov.compute > bl.compute,
            "Figure 10: MPI compute grows under overlap"
        );
        let ov_ccl = sim(&cfg, 16, Strategy::CclAlltoall, RunMode::Overlapping);
        let bl_ccl = sim(&cfg, 16, Strategy::CclAlltoall, RunMode::Blocking);
        assert!(
            (ov_ccl.compute - bl_ccl.compute).abs() < 1e-12,
            "CCL compute unchanged"
        );
    }

    #[test]
    fn strategies_rank_correctly_end_to_end() {
        let cfg = DlrmConfig::mlperf();
        for ranks in [8usize, 16] {
            let t = |s| sim(&cfg, ranks, s, RunMode::Overlapping).total();
            assert!(t(Strategy::ScatterList) >= t(Strategy::FusedScatter));
            assert!(t(Strategy::FusedScatter) > t(Strategy::Alltoall));
            assert!(t(Strategy::Alltoall) > t(Strategy::CclAlltoall));
        }
    }

    #[test]
    fn strong_scaling_reduces_total_time() {
        let cfg = DlrmConfig::large();
        let t4 = sim(&cfg, 4, Strategy::CclAlltoall, RunMode::Overlapping).total();
        let t16 = sim(&cfg, 16, Strategy::CclAlltoall, RunMode::Overlapping).total();
        let t64 = sim(&cfg, 64, Strategy::CclAlltoall, RunMode::Overlapping).total();
        assert!(t4 > t16 && t16 > t64, "{t4} > {t16} > {t64}");
    }

    #[test]
    fn loader_charge_grows_with_global_batch() {
        let cfg = DlrmConfig::mlperf();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let mk = |ranks: usize| {
            simulate_iteration(
                &cfg,
                &cluster,
                &calib,
                SimParams {
                    ranks,
                    local_n: cfg.ln_weak,
                    strategy: Strategy::CclAlltoall,
                    mode: RunMode::Blocking,
                    charge_loader: true,
                    wire: WirePrecision::Fp32,
                },
            )
        };
        // Weak scaling: GN = LN·R, so the full-global-batch loader cost
        // grows linearly with rank count (Figure 13's creeping compute).
        assert!(mk(16).loader > 3.9 * mk(4).loader);
    }

    #[test]
    #[should_panic(expected = "model parallelism caps")]
    fn rank_count_capped_by_tables() {
        let cfg = DlrmConfig::small(); // 8 tables
        let _ = sim(&cfg, 16, Strategy::Alltoall, RunMode::Blocking);
    }

    fn faulted(seed: u64, iter: u64, mode: RunMode) -> (FaultedIteration, IterBreakdown) {
        let cfg = DlrmConfig::large();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let p = SimParams {
            ranks: 16,
            local_n: cfg.gn_strong / 16,
            strategy: Strategy::CclAlltoall,
            mode,
            charge_loader: false,
            wire: WirePrecision::Fp32,
        };
        let plan = ChaosConfig::aggressive(seed).plan();
        let f = simulate_iteration_faulted(&cfg, &cluster, &calib, p, &plan, iter);
        let base = simulate_iteration(&cfg, &cluster, &calib, p);
        (f, base)
    }

    #[test]
    fn off_plan_is_fault_free() {
        let cfg = DlrmConfig::large();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let p = SimParams {
            ranks: 8,
            local_n: cfg.gn_strong / 8,
            strategy: Strategy::Alltoall,
            mode: RunMode::Overlapping,
            charge_loader: false,
            wire: WirePrecision::Fp32,
        };
        let plan = ChaosConfig::off(99).plan();
        let f = simulate_iteration_faulted(&cfg, &cluster, &calib, p, &plan, 0);
        let base = simulate_iteration(&cfg, &cluster, &calib, p);
        assert_eq!(f.straggler_factor, 1.0);
        assert_eq!(f.late_fraction, 0.0);
        assert_eq!(f.breakdown.total(), base.total());
    }

    #[test]
    fn faults_never_speed_an_iteration_up() {
        for iter in 0..24u64 {
            for mode in [RunMode::Overlapping, RunMode::Blocking] {
                let (f, base) = faulted(5, iter, mode);
                assert!(
                    f.breakdown.total() >= base.total(),
                    "iter {iter}: faulted {} < fault-free {}",
                    f.breakdown.total(),
                    base.total()
                );
            }
        }
    }

    #[test]
    fn straggler_slowdown_is_bounded_by_the_plan() {
        let max = ChaosConfig::aggressive(5).max_straggler_slowdown;
        for iter in 0..24u64 {
            let (f, base) = faulted(5, iter, RunMode::Overlapping);
            assert!(f.straggler_factor >= 1.0);
            assert!(
                f.breakdown.compute <= base.compute * (1.0 + max) + 1e-12,
                "iter {iter}: compute blew past the straggler cap"
            );
        }
    }

    #[test]
    fn faulted_timeline_replays_from_the_seed() {
        for iter in [0u64, 3, 11] {
            let (a, _) = faulted(42, iter, RunMode::Overlapping);
            let (b, _) = faulted(42, iter, RunMode::Overlapping);
            assert_eq!(a.breakdown.total(), b.breakdown.total());
            assert_eq!(a.critical_rank, b.critical_rank);
            assert_eq!(a.straggler_factor, b.straggler_factor);
            assert_eq!(a.late_fraction, b.late_fraction);
        }
    }

    #[test]
    fn fault_schedule_varies_across_iterations() {
        let totals: Vec<f64> = (0..16u64)
            .map(|iter| faulted(7, iter, RunMode::Overlapping).0.breakdown.total())
            .collect();
        assert!(
            totals.iter().any(|t| (t - totals[0]).abs() > 1e-12),
            "aggressive plan produced a flat timeline: {totals:?}"
        );
    }
    #[test]
    fn overlap_savings_hides_comm_at_scale() {
        let cfg = DlrmConfig::large();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        for ranks in [4usize, 16, 64] {
            let sv = overlap_savings(
                &cfg,
                &cluster,
                &calib,
                SimParams {
                    ranks,
                    local_n: cfg.gn_strong / ranks,
                    strategy: Strategy::CclAlltoall,
                    mode: RunMode::Overlapping,
                    charge_loader: false,
                    wire: WirePrecision::Fp32,
                },
            );
            assert!(
                sv.overlapped_exposed < sv.blocking_exposed,
                "R={ranks}: {sv:?}"
            );
            let f = sv.hidden_fraction();
            assert!((0.0..=1.0).contains(&f), "R={ranks}: fraction {f}");
        }
        // Single rank: no communication, nothing to hide.
        let sv = overlap_savings(
            &cfg,
            &cluster,
            &calib,
            SimParams {
                ranks: 1,
                local_n: cfg.gn_strong,
                strategy: Strategy::CclAlltoall,
                mode: RunMode::Blocking,
                charge_loader: false,
                wire: WirePrecision::Fp32,
            },
        );
        assert_eq!(sv.hidden_fraction(), 0.0);
    }
}
