//! Hardware descriptions of the paper's two test beds (Section V).

use dlrm_topology::{Interconnect, PrunedFatTree, TwistedHypercube8};

/// One CPU socket.
#[derive(Debug, Clone)]
pub struct SocketSpec {
    /// Marketing name.
    pub name: &'static str,
    /// Physical cores.
    pub cores: usize,
    /// FP32 peak at AVX-512 base clock, FLOP/s.
    pub peak_flops: f64,
    /// Sustained DRAM bandwidth, bytes/s.
    pub mem_bw: f64,
    /// DRAM capacity, bytes.
    pub mem_capacity: u64,
}

impl SocketSpec {
    /// Intel Xeon Platinum 8180 (Skylake) as configured in the 8-socket
    /// node: 28 cores, 4.1 TF FP32, 12×16 GB DDR4-2400 → 100 GB/s.
    pub fn skx_8180() -> Self {
        SocketSpec {
            name: "Xeon Platinum 8180 (SKX)",
            cores: 28,
            peak_flops: 4.1e12,
            mem_bw: 100.0e9,
            mem_capacity: 192 * (1 << 30),
        }
    }

    /// Intel Xeon Platinum 8280 (Cascade Lake) as configured in the
    /// cluster: 28 cores, 4.3 TF FP32, 6×16 GB DDR4-2666 → 105 GB/s.
    /// (4 of the 32 nodes have 192 GB/socket; the default models the
    /// standard 96 GB sockets.)
    pub fn clx_8280() -> Self {
        SocketSpec {
            name: "Xeon Platinum 8280 (CLX)",
            cores: 28,
            peak_flops: 4.3e12,
            mem_bw: 105.0e9,
            mem_capacity: 96 * (1 << 30),
        }
    }
}

/// Interconnect fabric of a cluster.
pub enum Fabric {
    /// The 8-socket twisted-hypercube UPI node.
    Upi(TwistedHypercube8),
    /// The 64-socket pruned fat-tree OPA cluster.
    Opa(PrunedFatTree),
}

impl Fabric {
    /// Effective per-rank ring bandwidth for `ranks` participants.
    pub fn ring_bandwidth(&self, ranks: usize) -> f64 {
        match self {
            Fabric::Upi(t) => t.ring_bandwidth(ranks),
            Fabric::Opa(t) => t.ring_bandwidth(ranks),
        }
    }

    /// Effective per-rank alltoall bandwidth for `ranks` participants.
    pub fn alltoall_bandwidth(&self, ranks: usize) -> f64 {
        match self {
            Fabric::Upi(t) => t.alltoall_bandwidth(ranks),
            Fabric::Opa(t) => t.alltoall_bandwidth(ranks),
        }
    }

    /// Worst-case one-way latency among the first `ranks` sockets.
    pub fn max_latency(&self, ranks: usize) -> f64 {
        let lat = |t: &dyn Interconnect| {
            let mut worst: f64 = 0.0;
            for a in 0..ranks {
                for b in 0..ranks {
                    worst = worst.max(t.latency(a, b));
                }
            }
            worst
        };
        match self {
            Fabric::Upi(t) => lat(t),
            Fabric::Opa(t) => lat(t),
        }
    }

    /// Total sockets available.
    pub fn max_ranks(&self) -> usize {
        match self {
            Fabric::Upi(t) => t.nranks(),
            Fabric::Opa(t) => t.nranks(),
        }
    }

    /// Display name.
    pub fn name(&self) -> &str {
        match self {
            Fabric::Upi(t) => t.name(),
            Fabric::Opa(t) => t.name(),
        }
    }
}

/// A cluster: homogeneous sockets over a fabric.
pub struct Cluster {
    /// Per-socket hardware.
    pub socket: SocketSpec,
    /// Socket-to-socket fabric.
    pub fabric: Fabric,
}

impl Cluster {
    /// The 8-socket SKX shared-memory node (Section V-A).
    pub fn node_8socket() -> Self {
        Cluster {
            socket: SocketSpec::skx_8180(),
            fabric: Fabric::Upi(TwistedHypercube8::new()),
        }
    }

    /// The 64-socket CLX OPA cluster (Section V-B).
    pub fn cluster_64socket() -> Self {
        Cluster {
            socket: SocketSpec::clx_8280(),
            fabric: Fabric::Opa(PrunedFatTree::paper_cluster()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn socket_specs_match_section_v() {
        let skx = SocketSpec::skx_8180();
        assert_eq!(skx.cores, 28);
        assert!((skx.peak_flops - 4.1e12).abs() < 1e9);
        let clx = SocketSpec::clx_8280();
        assert!(clx.peak_flops > skx.peak_flops);
        assert!(clx.mem_bw > skx.mem_bw);
    }

    #[test]
    fn cluster_shapes() {
        assert_eq!(Cluster::node_8socket().fabric.max_ranks(), 8);
        assert_eq!(Cluster::cluster_64socket().fabric.max_ranks(), 64);
    }

    #[test]
    fn aggregate_cluster_stats_match_paper() {
        // "In total the machine offers 1,792 cores providing 275 FP32-TFLOPS
        // at 6.7 TB/s bandwidth with a capacity of 6 TB" (Section V-B).
        let c = Cluster::cluster_64socket();
        let total_cores = 64 * c.socket.cores;
        assert_eq!(total_cores, 1792);
        let tflops = 64.0 * c.socket.peak_flops / 1e12;
        assert!((270.0..280.0).contains(&tflops));
        let tbs = 64.0 * c.socket.mem_bw / 1e12;
        assert!((6.5..7.0).contains(&tbs));
    }

    #[test]
    fn eight_socket_node_stats_match_paper() {
        // "224 cores providing 32 FP32-TFLOPS at 800 GB/s".
        let c = Cluster::node_8socket();
        assert_eq!(8 * c.socket.cores, 224);
        let tflops = 8.0 * c.socket.peak_flops / 1e12;
        assert!((32.0..34.0).contains(&tflops));
        let gbs = 8.0 * c.socket.mem_bw / 1e9;
        assert!((795.0..805.0).contains(&gbs));
    }

    #[test]
    fn fabric_latency_monotone_in_ranks() {
        let f = Cluster::cluster_64socket().fabric;
        assert!(f.max_latency(8) <= f.max_latency(64));
    }
}
