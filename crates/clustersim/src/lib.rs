//! # dlrm-clustersim — analytic cluster simulator for the scaling studies
//!
//! The paper's multi-socket results (Figures 6, 9–15) were measured on an
//! 8-socket UPI node and a 64-socket OPA cluster. Neither exists here, so
//! this crate reproduces the *shape* of those results from first principles:
//!
//! * per-rank **compute** from a roofline over the paper's socket specs
//!   (Section V: 4.1/4.3 TF FP32 peak, 100/105 GB/s DRAM) and the measured
//!   kernel efficiencies of Section VI-A;
//! * **communication** volumes from the paper's own Eq. 1 (allreduce) and
//!   Eq. 2 (alltoall), over the link/bisection bandwidths of the
//!   `dlrm-topology` fabrics;
//! * **backend behaviour** from Section VI-D: the MPI backend drives
//!   communication with one unpinned progress thread (lower sustained
//!   bandwidth, compute interference under overlap, in-order completion
//!   charging exposed allreduce to the alltoall wait), the CCL backend with
//!   multiple pinned workers;
//! * **overlap** from Section IV: allreduce hides behind the whole backward
//!   pass, alltoall only behind the bottom-MLP window.
//!
//! Every constant that is a calibration (not a hardware datum) lives in
//! [`calib::Calibration`] with a justification, and the ablation benches
//! sweep them.

pub mod bf16_outlook;
pub mod calib;
pub mod comm;
pub mod compute;
pub mod experiments;
pub mod gpu;
pub mod machine;
pub mod timeline;

pub use calib::Calibration;
pub use machine::{Cluster, Fabric, SocketSpec};
pub use timeline::{
    overlap_savings, simulate_iteration, simulate_iteration_faulted, FaultedIteration,
    IterBreakdown, OverlapSavings, RunMode,
};

/// The four embedding-exchange strategies of Figures 9/12 (the fourth is
/// the alltoall primitive on the CCL backend).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Strategy {
    /// One scatter call per table (the original multi-device code).
    ScatterList,
    /// One scatter call per rank with locally-coalesced tables.
    FusedScatter,
    /// Native alltoall primitive on the MPI backend.
    Alltoall,
    /// Native alltoall on the CCL backend.
    CclAlltoall,
}

impl Strategy {
    /// All strategies in the figures' legend order.
    pub const ALL: [Strategy; 4] = [
        Strategy::ScatterList,
        Strategy::FusedScatter,
        Strategy::Alltoall,
        Strategy::CclAlltoall,
    ];

    /// The communication backend each strategy runs on in the paper.
    pub fn backend(self) -> BackendKind {
        match self {
            Strategy::CclAlltoall => BackendKind::Ccl,
            _ => BackendKind::Mpi,
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            Strategy::ScatterList => "ScatterList",
            Strategy::FusedScatter => "Fused Scatter",
            Strategy::Alltoall => "Alltoall",
            Strategy::CclAlltoall => "CCL Alltoall",
        };
        f.write_str(s)
    }
}

/// Communication backend (Section IV-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BackendKind {
    /// PyTorch MPI backend: one unpinned progress thread.
    Mpi,
    /// oneCCL: multiple pinned communication workers.
    Ccl,
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendKind::Mpi => write!(f, "MPI Backend"),
            BackendKind::Ccl => write!(f, "CCL Backend"),
        }
    }
}
