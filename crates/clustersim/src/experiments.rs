//! Experiment drivers: the sweeps behind Figures 6, 9–15.

use crate::calib::Calibration;
use crate::comm::CommModel;
use crate::compute::ComputeModel;
use crate::machine::Cluster;
use crate::timeline::{simulate_iteration, IterBreakdown, RunMode, SimParams};
use crate::{BackendKind, Strategy};
use dlrm_comm::wire::WirePrecision;
use dlrm_data::DlrmConfig;

/// Strong scaling (fixed `GN`) vs weak scaling (fixed `LN`).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ScalingKind {
    /// Global minibatch fixed at `cfg.gn_strong`.
    Strong,
    /// Per-rank minibatch fixed at `cfg.ln_weak`.
    Weak,
}

/// One point of a scaling figure.
#[derive(Debug, Clone)]
pub struct ScalingPoint {
    /// Rank count.
    pub ranks: usize,
    /// Strategy used.
    pub strategy: Strategy,
    /// Time breakdown at this point.
    pub breakdown: IterBreakdown,
    /// Speed-up vs. the optimized baseline (Figures 9/12 left panels).
    pub speedup: f64,
    /// Scaling efficiency (right panels).
    pub efficiency: f64,
}

/// The paper's rank sweeps (Figures 9–14): Small scales to its 8 tables,
/// Large starts at its 4-socket memory floor, MLPerf caps at 26 tables.
pub fn paper_rank_list(cfg: &DlrmConfig, max_ranks: usize) -> Vec<usize> {
    let base: Vec<usize> = match cfg.name.as_str() {
        n if n.starts_with("Small") => vec![2, 4, 8],
        n if n.starts_with("Large") => vec![4, 8, 16, 32, 64],
        n if n.starts_with("MLPerf") => vec![2, 4, 8, 16, 26],
        _ => vec![2, 4, 8, 16, 32, 64],
    };
    base.into_iter()
        .filter(|&r| r <= max_ranks && r <= cfg.max_ranks())
        .collect()
}

/// Baseline rank count for speed-up computation: 1 for configs that fit on
/// a socket, 4 for Large (its tables need ≥4 sockets — the paper uses the
/// "4 ranks best performance (CCL-Alltoall)" as the Large baseline).
pub fn baseline_ranks(cfg: &DlrmConfig) -> usize {
    if cfg.name.starts_with("Large") {
        4
    } else {
        1
    }
}

/// Whether the loader is charged: only the MLPerf config uses a real
/// dataset; Small/Large use random data with no loader accounting.
pub fn charges_loader(cfg: &DlrmConfig) -> bool {
    cfg.name.starts_with("MLPerf")
}

fn point_time(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    kind: ScalingKind,
    ranks: usize,
    strategy: Strategy,
    mode: RunMode,
) -> IterBreakdown {
    let local_n = match kind {
        ScalingKind::Strong => (cfg.gn_strong / ranks).max(1),
        ScalingKind::Weak => cfg.ln_weak,
    };
    simulate_iteration(
        cfg,
        cluster,
        calib,
        SimParams {
            ranks,
            local_n,
            strategy,
            mode,
            charge_loader: charges_loader(cfg),
            wire: WirePrecision::Fp32,
        },
    )
}

/// Full sweep for one figure: every strategy × every paper rank count.
///
/// Speed-up definitions match Section VI-D: strong scaling compares
/// time-per-iteration on the fixed global problem; weak scaling compares
/// *throughput* (samples/s) normalized by the baseline.
pub fn scaling_sweep(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    kind: ScalingKind,
    mode: RunMode,
) -> Vec<ScalingPoint> {
    let base_r = baseline_ranks(cfg);
    let base = point_time(
        cfg,
        cluster,
        calib,
        kind,
        base_r,
        Strategy::CclAlltoall,
        mode,
    );
    let base_t = base.total();

    let mut out = Vec::new();
    for strategy in Strategy::ALL {
        for ranks in paper_rank_list(cfg, cluster.fabric.max_ranks()) {
            if ranks < base_r {
                continue;
            }
            let b = point_time(cfg, cluster, calib, kind, ranks, strategy, mode);
            let rank_ratio = ranks as f64 / base_r as f64;
            let (speedup, efficiency) = match kind {
                ScalingKind::Strong => {
                    let s = base_t / b.total();
                    (s, s / rank_ratio)
                }
                ScalingKind::Weak => {
                    // Throughput speed-up: R ranks each doing LN samples.
                    let s = rank_ratio * base_t / b.total();
                    (s, s / rank_ratio)
                }
            };
            out.push(ScalingPoint {
                ranks,
                strategy,
                breakdown: b,
                speedup,
                efficiency,
            });
        }
    }
    out
}

// ---------------------------------------------------------------------------
// Figure 2/6: standalone MLP communication/computation overlap
// ---------------------------------------------------------------------------

/// One bar pair of Figure 6.
#[derive(Debug, Clone)]
pub struct OverlapBar {
    /// "BWD pass" (backward-by-data, overlapped with all-gather) or
    /// "UPD pass" (backward-by-weights, overlapped with reduce-scatter).
    pub pass: &'static str,
    /// GEMM compute time, ms.
    pub gemm_ms: f64,
    /// Overlapped communication time, ms.
    pub comm_ms: f64,
}

/// The standalone 5-layer MLP overlap experiment: 8 CLX nodes, 1 MPI
/// process per node with 4 communication endpoints, N=1008, C=K=1024.
pub fn fig6_mlp_overlap(calib: &Calibration) -> Vec<OverlapBar> {
    let cluster = Cluster::cluster_64socket();
    let nodes = 8;
    // N=1008 is the per-node minibatch of the paper's Figure 6 caption.
    let (c, k, n_local, layers) = (1024usize, 1024usize, 1008usize, 5usize);

    // The paper dedicates 4 of 28 cores to communication; 24 compute.
    let compute_fraction = 24.0 / 28.0;
    let flops_per_pass = layers as f64 * 2.0 * (c * k * n_local) as f64;
    let gemm_s =
        flops_per_pass / (calib.mlp_efficiency * cluster.socket.peak_flops * compute_fraction);

    let comm = CommModel {
        cluster: &cluster,
        calib,
    };
    let grad_bytes = (layers * c * k + layers * k) as u64 * 4;
    // Allreduce = reduce-scatter + allgather; each phase is half the ring
    // volume. 4 EPs ≈ the CCL bandwidth fraction.
    let ar = comm.allreduce_time(grad_bytes, nodes, BackendKind::Ccl);
    let (rs_s, ag_s) = (ar / 2.0, ar / 2.0);

    vec![
        OverlapBar {
            pass: "BWD pass",
            gemm_ms: gemm_s * 1e3,
            comm_ms: ag_s * 1e3,
        },
        OverlapBar {
            pass: "UPD pass",
            gemm_ms: gemm_s * 1e3,
            comm_ms: rs_s * 1e3,
        },
    ]
}

// ---------------------------------------------------------------------------
// Figure 15: strong scaling on the 8-socket shared-memory node
// ---------------------------------------------------------------------------

/// One bar of Figure 15.
#[derive(Debug, Clone)]
pub struct Fig15Bar {
    /// Rank count.
    pub ranks: usize,
    /// Compute ms.
    pub compute_ms: f64,
    /// Allreduce ms.
    pub allreduce_ms: f64,
    /// Alltoall ms.
    pub alltoall_ms: f64,
}

/// Strong scaling breakdown on the twisted-hypercube node, per config.
pub fn fig15_8socket(cfg: &DlrmConfig, calib: &Calibration) -> Vec<Fig15Bar> {
    let cluster = Cluster::node_8socket();
    let base_r = baseline_ranks(cfg);
    let mut ranks: Vec<usize> = vec![1, 2, 4, 8];
    ranks.retain(|&r| r >= base_r && r <= cfg.max_ranks());
    ranks
        .into_iter()
        .map(|r| {
            let b = point_time(
                cfg,
                &cluster,
                calib,
                ScalingKind::Strong,
                r,
                Strategy::CclAlltoall,
                RunMode::Blocking,
            );
            // Figure 15 splits three ways with op-level timers around the
            // collectives; framework pre/post-processing (local copies)
            // lands in the compute bar.
            Fig15Bar {
                ranks: r,
                compute_ms: (b.compute + b.loader + b.allreduce_framework + b.alltoall_framework)
                    * 1e3,
                allreduce_ms: b.allreduce_wait * 1e3,
                alltoall_ms: b.alltoall_wait * 1e3,
            }
        })
        .collect()
}

/// Convenience: the (busiest-rank) compute/communication split the
/// Figure 10/13 harnesses print, for one strategy's backend across modes.
pub fn backend_mode_sweep(
    cfg: &DlrmConfig,
    cluster: &Cluster,
    calib: &Calibration,
    kind: ScalingKind,
) -> Vec<(BackendKind, RunMode, usize, IterBreakdown)> {
    let mut rows = Vec::new();
    for mode in [RunMode::Overlapping, RunMode::Blocking] {
        for backend in [BackendKind::Mpi, BackendKind::Ccl] {
            let strategy = match backend {
                BackendKind::Mpi => Strategy::Alltoall,
                BackendKind::Ccl => Strategy::CclAlltoall,
            };
            for ranks in paper_rank_list(cfg, cluster.fabric.max_ranks()) {
                if ranks < baseline_ranks(cfg) {
                    continue;
                }
                let b = point_time(cfg, cluster, calib, kind, ranks, strategy, mode);
                rows.push((backend, mode, ranks, b));
            }
        }
    }
    rows
}

/// Compute model accessor for harnesses that report sub-component times.
pub fn compute_model<'a>(cluster: &'a Cluster, calib: &'a Calibration) -> ComputeModel<'a> {
    ComputeModel { cluster, calib }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sweep(cfg: &DlrmConfig, kind: ScalingKind) -> Vec<ScalingPoint> {
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        scaling_sweep(cfg, &cluster, &calib, kind, RunMode::Overlapping)
    }

    fn pick(points: &[ScalingPoint], s: Strategy, r: usize) -> &ScalingPoint {
        points
            .iter()
            .find(|p| p.strategy == s && p.ranks == r)
            .unwrap()
    }

    #[test]
    fn strong_scaling_small_hits_paper_band() {
        // Paper: "about 5x-6x speed up when increasing the number of
        // sockets by 8x for the small and large configs (~60%-71% eff.)".
        let cfg = DlrmConfig::small();
        let pts = sweep(&cfg, ScalingKind::Strong);
        let p8 = pick(&pts, Strategy::CclAlltoall, 8);
        assert!(
            (3.5..8.0).contains(&p8.speedup),
            "small 8R speedup = {:.2} (paper ~5-6x)",
            p8.speedup
        );
        assert!(
            (0.4..1.0).contains(&p8.efficiency),
            "small 8R efficiency = {:.2}",
            p8.efficiency
        );
    }

    #[test]
    fn strong_scaling_large_hits_paper_band() {
        let cfg = DlrmConfig::large();
        let pts = sweep(&cfg, ScalingKind::Strong);
        // Baseline is 4R; 32R is the 8x socket increase the paper quotes.
        let p32 = pick(&pts, Strategy::CclAlltoall, 32);
        assert!(
            (3.0..8.0).contains(&p32.speedup),
            "large 32R speedup = {:.2} (paper ~5-6x at 8x sockets)",
            p32.speedup
        );
    }

    #[test]
    fn strong_scaling_mlperf_hits_paper_band() {
        // Paper: "up to 8.5x end-to-end speed up ... on 26 sockets (33%)".
        let cfg = DlrmConfig::mlperf();
        let pts = sweep(&cfg, ScalingKind::Strong);
        let p26 = pick(&pts, Strategy::CclAlltoall, 26);
        assert!(
            (5.0..13.0).contains(&p26.speedup),
            "mlperf 26R speedup = {:.2} (paper 8.5x)",
            p26.speedup
        );
        assert!(
            (0.2..0.5).contains(&p26.efficiency),
            "mlperf 26R efficiency = {:.2} (paper 33%)",
            p26.efficiency
        );
    }

    #[test]
    fn weak_scaling_beats_strong_scaling_efficiency() {
        // Figures 9 vs 12: weak scaling sustains much higher efficiency.
        for cfg in [DlrmConfig::small(), DlrmConfig::large()] {
            let strong = sweep(&cfg, ScalingKind::Strong);
            let weak = sweep(&cfg, ScalingKind::Weak);
            let top_r = *paper_rank_list(&cfg, 64).last().unwrap();
            let es = pick(&strong, Strategy::CclAlltoall, top_r).efficiency;
            let ew = pick(&weak, Strategy::CclAlltoall, top_r).efficiency;
            assert!(ew > es, "{}: weak {ew:.2} vs strong {es:.2}", cfg.name);
        }
    }

    #[test]
    fn weak_scaling_large_hits_paper_band() {
        // Paper: 13.5x speedup (84% efficiency) at 64 ranks vs 4-rank base.
        let cfg = DlrmConfig::large();
        let pts = sweep(&cfg, ScalingKind::Weak);
        let p = pick(&pts, Strategy::CclAlltoall, 64);
        assert!(
            (10.0..16.0).contains(&p.speedup),
            "large weak 64R speedup = {:.2} (paper 13.5x)",
            p.speedup
        );
        assert!(
            (0.6..1.0).contains(&p.efficiency),
            "large weak 64R efficiency = {:.2} (paper 84%)",
            p.efficiency
        );
    }

    #[test]
    fn ccl_alltoall_wins_at_every_point() {
        for cfg in [
            DlrmConfig::small(),
            DlrmConfig::large(),
            DlrmConfig::mlperf(),
        ] {
            let pts = sweep(&cfg, ScalingKind::Strong);
            for r in paper_rank_list(&cfg, 64) {
                if r < baseline_ranks(&cfg) {
                    continue;
                }
                let ccl = pick(&pts, Strategy::CclAlltoall, r).breakdown.total();
                for s in [
                    Strategy::ScatterList,
                    Strategy::FusedScatter,
                    Strategy::Alltoall,
                ] {
                    let t = pick(&pts, s, r).breakdown.total();
                    assert!(ccl <= t, "{} R={r}: CCL {ccl} vs {s} {t}", cfg.name);
                }
            }
        }
    }

    #[test]
    fn mlperf_crossover_alltoall_to_allreduce_bound() {
        // Section VI-D: "the MLPerf config would initially be alltoall-bound
        // and becomes allreduce-bound for high rank counts".
        let cfg = DlrmConfig::mlperf();
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let at = |r: usize| {
            point_time(
                &cfg,
                &cluster,
                &calib,
                ScalingKind::Strong,
                r,
                Strategy::CclAlltoall,
                RunMode::Blocking,
            )
        };
        let lo = at(2);
        let hi = at(26);
        let a2a = |b: &IterBreakdown| b.alltoall_framework + b.alltoall_wait;
        let ar = |b: &IterBreakdown| b.allreduce_framework + b.allreduce_wait;
        assert!(a2a(&lo) > ar(&lo), "2 ranks: alltoall-bound");
        assert!(ar(&hi) > a2a(&hi), "26 ranks: allreduce-bound");
    }

    #[test]
    fn fig6_communication_hides_behind_gemms() {
        // Figure 6's point: the comm bars fit inside the GEMM bars.
        let bars = fig6_mlp_overlap(&Calibration::default());
        assert_eq!(bars.len(), 2);
        for b in &bars {
            assert!(
                b.comm_ms < b.gemm_ms,
                "{}: comm {:.2} ms should hide behind gemm {:.2} ms",
                b.pass,
                b.comm_ms,
                b.gemm_ms
            );
            // Paper quotes ~5.4 ms GEMM, 1.9-2.8 ms comm at this config.
            assert!((1.0..15.0).contains(&b.gemm_ms));
        }
    }

    #[test]
    fn fig15_alltoall_does_not_improve_4_to_8() {
        // Section VI-D3: on the twisted hypercube the alltoall cost fails
        // to drop from 4 to 8 sockets.
        let bars = fig15_8socket(&DlrmConfig::mlperf(), &Calibration::default());
        let b4 = bars.iter().find(|b| b.ranks == 4).unwrap();
        let b8 = bars.iter().find(|b| b.ranks == 8).unwrap();
        assert!(
            b8.alltoall_ms > 0.8 * b4.alltoall_ms,
            "4R alltoall {:.2} ms vs 8R {:.2} ms",
            b4.alltoall_ms,
            b8.alltoall_ms
        );
    }

    #[test]
    fn backend_mode_sweep_shapes() {
        let cfg = DlrmConfig::large();
        let cluster = Cluster::cluster_64socket();
        let rows = backend_mode_sweep(&cfg, &cluster, &Calibration::default(), ScalingKind::Strong);
        // 2 modes x 2 backends x 5 rank counts.
        assert_eq!(rows.len(), 20);
    }
}
