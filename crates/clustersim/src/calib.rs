//! Calibration constants — every number that is a *fit* rather than a
//! hardware datum, in one place with its justification.

/// Simulator calibration. Defaults are fitted to the paper's single-socket
/// measurements (Figures 5, 7, 8) and backend observations (Section VI-D).
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Fraction of FP32 peak the optimized MLP kernels sustain end-to-end.
    /// Figure 5 reports 72% for the standalone kernels; embedded in the full
    /// framework iteration the paper's Figure 8 breakdown implies ~55–65%.
    pub mlp_efficiency: f64,
    /// Fraction of DRAM bandwidth the embedding kernels sustain ("these
    /// operations run at close to peak bandwidth": Section II).
    pub emb_bw_efficiency: f64,
    /// Fraction of FP32 peak for the interaction's batched small GEMMs —
    /// tiny `E×E` products with little reuse.
    pub interaction_efficiency: f64,
    /// Fixed per-iteration framework overhead (op dispatch, autograd
    /// bookkeeping, loss), seconds. Figure 8's "Rest" bucket at small
    /// minibatches is dominated by this.
    pub framework_overhead: f64,
    /// Data-loader cost per generated sample, seconds (full-global-batch
    /// loader pays this on *GN* samples per rank, the Figure 13 artifact).
    pub loader_per_sample: f64,

    /// Sustained fraction of fabric bandwidth under the MPI backend's single
    /// progress thread (Section VI-D: "CCL uses multiple cores to drive the
    /// communication" — MPI cannot saturate the link from one core).
    pub mpi_bw_fraction: f64,
    /// Sustained fraction under CCL's multiple pinned workers.
    pub ccl_bw_fraction: f64,
    /// Multiplier on *compute* when overlapping on the MPI backend: the
    /// unpinned progress thread preempts compute threads ("almost all
    /// compute kernels were slowed down due to communication overlap").
    pub mpi_compute_interference: f64,
    /// Per-communication-call framework overhead (enqueue, flat-buffer
    /// bookkeeping), seconds — multiplied by the call count, which is what
    /// separates ScatterList (S calls) from Fused Scatter (R calls) from
    /// Alltoall (1 call).
    pub per_call_overhead: f64,
    /// Serialization penalty of scatter-based exchanges relative to the
    /// native pairwise alltoall: scatters are issued per root and only
    /// partially pipeline across roots. Applied as
    /// `1 + scatter_serialization · log2(R)`.
    pub scatter_serialization: f64,
    /// Single-round penalty: a 2-rank alltoall is one unpipelined
    /// bulk exchange; multi-round schedules keep the NIC busy. Modeled as
    /// bandwidth fraction `1 − single_round_penalty / (R − 1)`.
    pub single_round_penalty: f64,
    /// Ring-allreduce congestion growth with scale: achieved ring
    /// bandwidth degrades as `1 / (1 + ring_congestion · log2(R))`
    /// (multi-switch traffic, imperfect overlap of the R−1 ring steps) —
    /// the source of the exposed allreduce that caps weak-scaling
    /// efficiency at ~84% in Figure 12.
    pub ring_congestion: f64,
    /// Bytes/s of local memory copies for communication pre/post-processing
    /// (flat-buffer packing, gradient averaging) as a fraction of DRAM
    /// bandwidth.
    pub framework_copy_bw_fraction: f64,
}

impl Default for Calibration {
    fn default() -> Self {
        Calibration {
            mlp_efficiency: 0.60,
            emb_bw_efficiency: 0.80,
            interaction_efficiency: 0.08,
            framework_overhead: 3.0e-3,
            loader_per_sample: 0.4e-6,
            mpi_bw_fraction: 0.45,
            ccl_bw_fraction: 0.90,
            mpi_compute_interference: 1.20,
            per_call_overhead: 40.0e-6,
            scatter_serialization: 0.5,
            single_round_penalty: 0.5,
            ring_congestion: 0.15,
            framework_copy_bw_fraction: 0.30,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane_fractions() {
        let c = Calibration::default();
        for f in [
            c.mlp_efficiency,
            c.emb_bw_efficiency,
            c.interaction_efficiency,
            c.mpi_bw_fraction,
            c.ccl_bw_fraction,
            c.framework_copy_bw_fraction,
        ] {
            assert!(f > 0.0 && f <= 1.0, "{f}");
        }
        assert!(c.ccl_bw_fraction > c.mpi_bw_fraction);
        assert!(c.mpi_compute_interference >= 1.0);
        assert!(c.ring_congestion >= 0.0);
    }
}
