//! Per-rank compute-time model (roofline over the socket specs).

use crate::calib::Calibration;
use crate::machine::Cluster;
use dlrm_data::DlrmConfig;

/// Compute-time estimates for one rank of a hybrid-parallel DLRM iteration.
///
/// MLPs are data-parallel (local minibatch `n`), embeddings are
/// model-parallel: each rank processes the **global** minibatch for the
/// tables it owns, so the embedding term depends on `gn` and the per-rank
/// table count.
pub struct ComputeModel<'a> {
    /// Cluster hardware.
    pub cluster: &'a Cluster,
    /// Calibration constants.
    pub calib: &'a Calibration,
}

impl<'a> ComputeModel<'a> {
    fn mlp_time(&self, dims: &[(usize, usize)], n: usize, passes: f64) -> f64 {
        let flops: f64 = dims
            .iter()
            .map(|&(fi, fo)| 2.0 * fi as f64 * fo as f64 * n as f64)
            .sum();
        passes * flops / (self.calib.mlp_efficiency * self.cluster.socket.peak_flops)
    }

    /// Bottom-MLP forward time at local minibatch `n`.
    pub fn bottom_fwd(&self, cfg: &DlrmConfig, n: usize) -> f64 {
        self.mlp_time(&cfg.bottom_layer_dims(), n, 1.0)
    }

    /// Bottom-MLP backward (data + weights) time.
    pub fn bottom_bwd(&self, cfg: &DlrmConfig, n: usize) -> f64 {
        self.mlp_time(&cfg.bottom_layer_dims(), n, 2.0)
    }

    /// Top-MLP forward time.
    pub fn top_fwd(&self, cfg: &DlrmConfig, n: usize) -> f64 {
        self.mlp_time(&cfg.top_layer_dims(), n, 1.0)
    }

    /// Top-MLP backward time.
    pub fn top_bwd(&self, cfg: &DlrmConfig, n: usize) -> f64 {
        self.mlp_time(&cfg.top_layer_dims(), n, 2.0)
    }

    /// Tables owned by the busiest rank (round-robin distribution).
    pub fn tables_on_critical_rank(&self, cfg: &DlrmConfig, ranks: usize) -> usize {
        cfg.num_tables.div_ceil(ranks)
    }

    /// Embedding time (fwd + bwd + update ≈ 3 row sweeps) for the busiest
    /// rank: model-parallel, so the whole global minibatch `gn` hits the
    /// local tables. Memory-bandwidth bound (the GUPS-like kernel).
    pub fn embedding(&self, cfg: &DlrmConfig, gn: usize, ranks: usize) -> f64 {
        let tables = self.tables_on_critical_rank(cfg, ranks) as f64;
        let bytes =
            3.0 * tables * cfg.lookups_per_table as f64 * gn as f64 * cfg.emb_dim as f64 * 4.0;
        bytes / (self.calib.emb_bw_efficiency * self.cluster.socket.mem_bw)
    }

    /// Interaction time: `(S+1)·S/2` length-`E` dot products per sample —
    /// tiny batched GEMMs with poor efficiency.
    pub fn interaction(&self, cfg: &DlrmConfig, n: usize) -> f64 {
        let f = (cfg.num_tables + 1) as f64;
        let flops = 3.0 * n as f64 * f * (f - 1.0) * cfg.emb_dim as f64; // fwd+bwd
        flops / (self.calib.interaction_efficiency * self.cluster.socket.peak_flops)
    }

    /// Data-loader time for `samples` generated samples.
    pub fn loader(&self, samples: usize) -> f64 {
        self.calib.loader_per_sample * samples as f64
    }

    /// Total compute (no loader, no communication) of one iteration on the
    /// busiest rank.
    pub fn total(&self, cfg: &DlrmConfig, n: usize, gn: usize, ranks: usize) -> f64 {
        self.bottom_fwd(cfg, n)
            + self.bottom_bwd(cfg, n)
            + self.top_fwd(cfg, n)
            + self.top_bwd(cfg, n)
            + self.embedding(cfg, gn, ranks)
            + self.interaction(cfg, n)
            + self.calib.framework_overhead
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::Cluster;

    fn model<'a>(cluster: &'a Cluster, calib: &'a Calibration) -> ComputeModel<'a> {
        ComputeModel { cluster, calib }
    }

    #[test]
    fn single_socket_small_config_lands_near_paper() {
        // Figure 7: optimized Small config ≈ 38–40 ms/iteration at N=2048.
        let cluster = Cluster::node_8socket();
        let calib = Calibration::default();
        let m = model(&cluster, &calib);
        let cfg = dlrm_data::DlrmConfig::small();
        let t = m.total(&cfg, 2048, 2048, 1) * 1e3;
        assert!(
            (15.0..80.0).contains(&t),
            "small single-socket ≈ {t:.1} ms (paper: ~38 ms)"
        );
    }

    #[test]
    fn mlp_passes_scale_linearly_in_batch() {
        let cluster = Cluster::node_8socket();
        let calib = Calibration::default();
        let m = model(&cluster, &calib);
        let cfg = dlrm_data::DlrmConfig::small();
        let t1 = m.bottom_fwd(&cfg, 1024);
        let t2 = m.bottom_fwd(&cfg, 2048);
        assert!((t2 / t1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn backward_is_twice_forward() {
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let m = model(&cluster, &calib);
        let cfg = dlrm_data::DlrmConfig::large();
        assert!((m.top_bwd(&cfg, 512) / m.top_fwd(&cfg, 512) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn embedding_time_shrinks_with_ranks() {
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let m = model(&cluster, &calib);
        let cfg = dlrm_data::DlrmConfig::large();
        let t4 = m.embedding(&cfg, 16384, 4);
        let t64 = m.embedding(&cfg, 16384, 64);
        assert!(
            (t4 / t64 - 16.0).abs() < 1e-6,
            "64 tables split 4 vs 64 ways"
        );
    }

    #[test]
    fn critical_rank_sees_ceiling_of_table_split() {
        let cluster = Cluster::cluster_64socket();
        let calib = Calibration::default();
        let m = model(&cluster, &calib);
        let cfg = dlrm_data::DlrmConfig::mlperf(); // 26 tables
        assert_eq!(m.tables_on_critical_rank(&cfg, 8), 4);
        assert_eq!(m.tables_on_critical_rank(&cfg, 16), 2);
        assert_eq!(m.tables_on_critical_rank(&cfg, 26), 1);
    }

    #[test]
    fn total_is_sum_of_parts_plus_overhead() {
        let cluster = Cluster::node_8socket();
        let calib = Calibration::default();
        let m = model(&cluster, &calib);
        let cfg = dlrm_data::DlrmConfig::small();
        let parts = m.bottom_fwd(&cfg, 256)
            + m.bottom_bwd(&cfg, 256)
            + m.top_fwd(&cfg, 256)
            + m.top_bwd(&cfg, 256)
            + m.embedding(&cfg, 1024, 4)
            + m.interaction(&cfg, 256)
            + calib.framework_overhead;
        assert!((m.total(&cfg, 256, 1024, 4) - parts).abs() < 1e-12);
    }
}
