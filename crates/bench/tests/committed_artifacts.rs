//! Every committed `results/BENCH_*.json` must pass its schema validator,
//! and every artifact cited by ROADMAP.md/EXPERIMENTS.md must actually be
//! committed — the audit that motivated this test found two cited
//! artifacts that had never been checked in.

use std::path::PathBuf;

fn committed_results_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results")
}

#[test]
fn every_committed_bench_artifact_validates() {
    let dir = committed_results_dir();
    let mut seen = Vec::new();
    for entry in std::fs::read_dir(&dir).expect("read results/") {
        let path = entry.expect("dir entry").path();
        let name = path.file_name().unwrap().to_string_lossy().into_owned();
        if !name.starts_with("BENCH_") || !name.ends_with(".json") {
            continue;
        }
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        dlrm_bench::validate_artifact(&name, &json)
            .unwrap_or_else(|e| panic!("{name} failed schema validation: {e}"));
        seen.push(name);
    }
    // The artifacts the docs cite must exist (regression: BENCH_embedding
    // and BENCH_wire_precision were cited but never committed).
    for required in [
        "BENCH_embedding.json",
        "BENCH_wire_precision.json",
        "BENCH_overlap.json",
        "BENCH_serving.json",
        "BENCH_prefetch.json",
        "BENCH_gemm.json",
    ] {
        assert!(
            seen.iter().any(|n| n == required),
            "cited artifact {required} is not committed in results/ (found: {seen:?})"
        );
    }
}

#[test]
fn committed_perf_artifacts_are_full_scale() {
    // A smoke-mode artifact records schema, not performance — committing
    // one would silently replace measured numbers with CI placeholder
    // values. (BENCH_overlap predates the smoke flag and has no such
    // field.)
    for name in [
        "BENCH_embedding.json",
        "BENCH_wire_precision.json",
        "BENCH_serving.json",
        "BENCH_prefetch.json",
        "BENCH_gemm.json",
    ] {
        let path = committed_results_dir().join(name);
        let json = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
        assert!(
            json.contains("\"smoke\": false"),
            "{name}: committed artifact must be a full-scale run, not --smoke"
        );
    }
}
