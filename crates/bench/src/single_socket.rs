//! Shared driver for the single-socket end-to-end measurements
//! (Figures 7 and 8): trains a scaled DLRM for a few iterations under the
//! reference tier and each optimized update strategy, recording time and
//! the per-op-class split.

use dlrm::layers::Execution;
use dlrm::prelude::*;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_tensor::init::seeded_rng;

/// One measured bar of Figure 7/8.
pub struct SingleSocketRow {
    /// Config name ("Small" / "MLPerf").
    pub config: String,
    /// Strategy label (Figure 7's bar names).
    pub label: String,
    /// ms per iteration.
    pub ms_per_iter: f64,
    /// (embeddings, mlp, rest) fractions.
    pub split: (f64, f64, f64),
}

/// The scaled Small config: Table I shapes with tables capped for this
/// machine. Uniform random indices (the paper's random dataset) — little
/// update contention.
pub fn small_scaled(paper_scale: bool) -> (DlrmConfig, IndexDistribution) {
    let cfg = if paper_scale {
        DlrmConfig::small()
    } else {
        DlrmConfig::small().scaled_down(100_000, 8)
    };
    (cfg, IndexDistribution::Uniform)
}

/// The scaled MLPerf config: 26 tables, P=1, and a *clustered* index
/// distribution standing in for the Criteo Terabyte reuse pattern that
/// causes the contention of Figure 7's right half.
pub fn mlperf_scaled(paper_scale: bool) -> (DlrmConfig, IndexDistribution) {
    let cfg = if paper_scale {
        DlrmConfig::mlperf()
    } else {
        DlrmConfig::mlperf().scaled_down(100_000, 8)
    };
    (
        cfg,
        IndexDistribution::Clustered {
            hot_fraction: 0.0005,
            hot_prob: 0.7,
        },
    )
}

/// Measures one (config, tier) cell over `iters` training iterations.
///
/// `framework_naive` selects the Figure 7 baseline: optimized (MKL-class)
/// MLPs but the framework's functionality-first embedding kernels — the
/// configuration the paper actually profiled as "Reference".
pub fn measure(
    cfg: &DlrmConfig,
    dist: IndexDistribution,
    exec: Execution,
    strategy: UpdateStrategy,
    framework_naive: bool,
    label: &str,
    iters: usize,
) -> SingleSocketRow {
    let mut model = DlrmModel::new(cfg, exec, strategy, PrecisionMode::Fp32, 7);
    if framework_naive {
        for table in &mut model.tables {
            table.framework_naive = true;
        }
    }
    let mut rng = seeded_rng(99, 0);
    let batches: Vec<MiniBatch> = (0..iters.min(4))
        .map(|_| MiniBatch::random(cfg, cfg.mb_single, dist, &mut rng))
        .collect();
    // Warm-up iteration (first touch of the tables).
    let _ = model.train_step(&batches[0], 0.01);
    model.profiler.reset();
    for i in 0..iters {
        let _ = model.train_step(&batches[i % batches.len()], 0.01);
    }
    SingleSocketRow {
        config: cfg.name.clone(),
        label: label.to_string(),
        ms_per_iter: model.profiler.ms_per_iter(),
        split: model.profiler.fractions(),
    }
}

/// Runs all four Figure 7 bars for one config, plus this repo's `Bucketed`
/// refinement as a fifth.
pub fn run_config(
    cfg: &DlrmConfig,
    dist: IndexDistribution,
    threads: usize,
    iters: usize,
) -> Vec<SingleSocketRow> {
    let mut rows = Vec::new();
    rows.push(measure(
        cfg,
        dist,
        Execution::optimized(threads),
        UpdateStrategy::RaceFree,
        true,
        "Reference",
        // The reference tier is painfully slow by design; fewer iterations.
        iters.div_ceil(2),
    ));
    for strategy in [
        UpdateStrategy::AtomicXchg,
        UpdateStrategy::Rtm,
        UpdateStrategy::RaceFree,
        UpdateStrategy::Bucketed,
    ] {
        rows.push(measure(
            cfg,
            dist,
            Execution::optimized(threads),
            strategy,
            false,
            &strategy.to_string(),
            iters,
        ));
    }
    rows
}
