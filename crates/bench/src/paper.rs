//! The paper's published numbers, for side-by-side "paper vs. measured"
//! reporting in every harness and in EXPERIMENTS.md.

/// Figure 7: single-socket ms/iteration.
pub mod fig7 {
    /// (strategy, small_ms, mlperf_ms) — the bar heights of Figure 7.
    pub const ROWS: [(&str, f64, f64); 4] = [
        ("Reference", 4288.0, 272.0),
        ("Atomic XCHG", 40.4, 106.3),
        ("RTM", 38.3, 96.8),
        ("Race Free", 38.9, 34.8),
    ];
    /// Headline speedup of the Small config.
    pub const SMALL_SPEEDUP: f64 = 110.0;
    /// Headline speedup of the MLPerf config.
    pub const MLPERF_SPEEDUP: f64 = 8.0;
}

/// Figure 8: percentage splits (Embeddings, MLP, Rest) after optimization.
pub mod fig8 {
    /// Small config, Race-Free bar: ≈31% embeddings / 33% MLP / 36% rest
    /// ("about 30% of total time ... matching it with MLP time").
    pub const SMALL_OPTIMIZED: (f64, f64, f64) = (0.31, 0.33, 0.36);
    /// MLPerf config, Race-Free bar: embeddings < 20%.
    pub const MLPERF_OPTIMIZED_EMB_MAX: f64 = 0.20;
    /// Reference bars: embeddings dominate (~99% for Small).
    pub const SMALL_REFERENCE_EMB_MIN: f64 = 0.9;
}

/// Figure 5: single-socket MLP kernel efficiency (fraction of FP32 peak).
pub mod fig5 {
    /// This-work blocked batch-reduce kernels, average across configs.
    pub const THIS_WORK_EFF: f64 = 0.72;
    /// Facebook's blocked implementation.
    pub const FB_EFF: f64 = 0.75;
    /// PyTorch large multi-threaded MKL GEMMs.
    pub const PYTORCH_EFF: f64 = 0.61;
}

/// Figure 6: standalone MLP overlap on 8 CLX nodes (ms).
pub mod fig6 {
    /// Backward-by-data GEMM time.
    pub const BWD_GEMM_MS: f64 = 5.40;
    /// Backward-by-weights GEMM time.
    pub const UPD_GEMM_MS: f64 = 5.39;
    /// Overlapped all-gather time.
    pub const BWD_COMM_MS: f64 = 2.84;
    /// Overlapped reduce-scatter time.
    pub const UPD_COMM_MS: f64 = 1.86;
}

/// Figures 9/12: headline scaling results.
pub mod scaling {
    /// Small strong scaling at 8 ranks: ~5-6x (60-71% efficiency).
    pub const SMALL_STRONG_8R: (f64, f64) = (5.5, 0.66);
    /// MLPerf strong scaling at 26 ranks: 8.5x (33%).
    pub const MLPERF_STRONG_26R: (f64, f64) = (8.5, 0.33);
    /// Large weak scaling at 64 ranks vs 4: 13.5x (84%).
    pub const LARGE_WEAK_64R: (f64, f64) = (13.5, 0.84);
    /// MLPerf weak scaling at 26 ranks: 17x (65%).
    pub const MLPERF_WEAK_26R: (f64, f64) = (17.0, 0.65);
    /// Small weak scaling at 8 ranks: 6.4x (80%).
    pub const SMALL_WEAK_8R: (f64, f64) = (6.4, 0.80);
    /// Native alltoall vs scatter-based: ">2x performance benefits".
    pub const ALLTOALL_VS_SCATTER_MIN: f64 = 2.0;
    /// CCL vs MPI alltoall: "up to 1.4x additional speed up".
    pub const CCL_VS_MPI_MAX: f64 = 1.4;
}

/// Figure 16: convergence (ROC AUC at 100% of the epoch).
pub mod fig16 {
    /// FP32 reference final AUC.
    pub const FP32_FINAL_AUC: f64 = 0.8027;
    /// BF16 Split-SGD final AUC (within 0.001 of FP32).
    pub const BF16_SPLIT_FINAL_AUC: f64 = 0.8027;
    /// FP24 final AUC (visibly below).
    pub const FP24_FINAL_AUC: f64 = 0.7947;
    /// Maximum |FP32 − BF16-split| gap the paper reports.
    pub const SPLIT_GAP_MAX: f64 = 0.001;
}

/// Section III-A: fused embedding backward+update standalone speedup.
pub const FUSED_EMBEDDING_SPEEDUP: f64 = 1.6;

#[cfg(test)]
mod tests {
    #[test]
    fn reference_numbers_are_consistent() {
        // Small: 4288 / 38.9 ≈ 110x.
        let s = super::fig7::ROWS[0].1 / super::fig7::ROWS[3].1;
        assert!((s - super::fig7::SMALL_SPEEDUP).abs() < 5.0);
        // MLPerf: 272 / 34.8 ≈ 8x.
        let m = super::fig7::ROWS[0].2 / super::fig7::ROWS[3].2;
        assert!((m - super::fig7::MLPERF_SPEEDUP).abs() < 0.5);
    }
}
