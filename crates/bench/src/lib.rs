//! # dlrm-bench — experiment harnesses
//!
//! One binary per table/figure of the paper's evaluation (see DESIGN.md's
//! experiment index) plus Criterion kernel benches. This library holds the
//! shared plumbing: report formatting, paper reference values, scaled-down
//! default problem sizes and the `--paper-scale` switch.

use std::time::Instant;

pub mod paper;
pub mod single_socket;

/// Command-line options shared by the figure harnesses.
#[derive(Debug, Clone)]
pub struct HarnessOpts {
    /// Use the paper's full problem sizes instead of laptop-scaled ones.
    pub paper_scale: bool,
    /// Emit machine-readable JSON lines alongside the tables.
    pub json: bool,
    /// CI smoke mode: tiny problem sizes, single measured iteration —
    /// exercises every code path and the artifact schema, not performance.
    pub smoke: bool,
}

impl HarnessOpts {
    /// Parses `--paper-scale` / `--json` / `--smoke` from `std::env::args`.
    pub fn from_args() -> Self {
        let mut o = HarnessOpts {
            paper_scale: false,
            json: false,
            smoke: false,
        };
        for a in std::env::args().skip(1) {
            match a.as_str() {
                "--paper-scale" => o.paper_scale = true,
                "--json" => o.json = true,
                "--smoke" => o.smoke = true,
                "--help" | "-h" => {
                    eprintln!("options: --paper-scale  use full Table I sizes\n         --json         emit JSON lines\n         --smoke        tiny CI sizes");
                    std::process::exit(0);
                }
                other => eprintln!("warning: unknown option {other}"),
            }
        }
        o
    }
}

/// Resolves the artifact output directory: `$DLRM_RESULTS_DIR` if set,
/// else `results/` relative to the current directory. Bench bins must
/// write through [`write_artifact`] so they work from any cwd.
pub fn results_dir() -> std::path::PathBuf {
    std::env::var_os("DLRM_RESULTS_DIR")
        .map(std::path::PathBuf::from)
        .unwrap_or_else(|| std::path::PathBuf::from("results"))
}

/// Writes a bench artifact into [`results_dir`], creating the directory if
/// missing, and returns the path written. Panics with the offending path
/// on I/O errors (a bench bin has no useful recovery).
pub fn write_artifact(name: &str, contents: &str) -> std::path::PathBuf {
    let dir = results_dir();
    std::fs::create_dir_all(&dir)
        .unwrap_or_else(|e| panic!("create results dir {}: {e}", dir.display()));
    let path = dir.join(name);
    std::fs::write(&path, contents)
        .unwrap_or_else(|e| panic!("write artifact {}: {e}", path.display()));
    path
}

/// Checks that every required field appears as a `"key":` literal.
fn require_keys(json: &str, required: &[&str]) -> Result<(), String> {
    for key in required {
        if !json.contains(&format!("{key}:")) {
            return Err(format!("missing required field {key}"));
        }
    }
    Ok(())
}

/// Extracts the first numeric value following a `"key":` literal. Returns
/// `None` when the key is absent or not followed by a number — enough to
/// gate on scalar fields without a JSON parser in the workspace.
fn extract_number(json: &str, key: &str) -> Option<f64> {
    let pat = format!("\"{key}\":");
    let rest = json[json.find(&pat)? + pat.len()..].trim_start();
    let end = rest
        .find(|c: char| !(c.is_ascii_digit() || "+-.eE".contains(c)))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Checks that braces/brackets balance and never go negative.
fn check_balanced(json: &str) -> Result<(), String> {
    let mut depth_brace = 0i64;
    let mut depth_bracket = 0i64;
    for c in json.chars() {
        match c {
            '{' => depth_brace += 1,
            '}' => depth_brace -= 1,
            '[' => depth_bracket += 1,
            ']' => depth_bracket -= 1,
            _ => {}
        }
        if depth_brace < 0 || depth_bracket < 0 {
            return Err("unbalanced braces/brackets".into());
        }
    }
    if depth_brace != 0 || depth_bracket != 0 {
        return Err("unbalanced braces/brackets".into());
    }
    Ok(())
}

/// Dispatches a committed `results/BENCH_*.json` artifact to its schema
/// validator by file name. Unknown artifact names are an error so a new
/// bench cannot commit an unvalidated artifact (CI runs this over every
/// committed `BENCH_*.json` via `crates/bench/tests/committed_artifacts.rs`).
pub fn validate_artifact(file_name: &str, json: &str) -> Result<(), String> {
    match file_name {
        "BENCH_embedding.json" => validate_bench_embedding_json(json),
        "BENCH_wire_precision.json" => validate_bench_wire_precision_json(json),
        "BENCH_overlap.json" => validate_bench_overlap_json(json),
        "BENCH_serving.json" => validate_bench_serving_json(json),
        "BENCH_prefetch.json" => validate_bench_prefetch_json(json),
        "BENCH_gemm.json" => validate_bench_gemm_json(json),
        other => Err(format!(
            "no schema validator registered for {other}; add one to dlrm_bench::validate_artifact"
        )),
    }
}

/// Structural schema check for `results/BENCH_embedding.json` (the
/// `bench_embedding` artifact). No JSON parser in the workspace, so this is
/// a key-presence + balance check: every required field of the schema must
/// appear as a `"key":` literal and the braces/brackets must balance. Used
/// by the emitting binary (self-validation before writing) and by CI.
pub fn validate_bench_embedding_json(json: &str) -> Result<(), String> {
    const REQUIRED: [&str; 12] = [
        "\"bench\"",
        "\"smoke\"",
        "\"threads\"",
        "\"config\"",
        "\"isa_tiers\"",
        "\"forward_gups\"",
        "\"update_gups\"",
        "\"clustered\"",
        "\"bucketed_vs_racefree_speedup\"",
        "\"fused\"",
        "\"simd_vs_scalar_forward_ratio\"",
        "\"equivalence_ok\"",
    ];
    require_keys(json, &REQUIRED)?;
    if !json.contains("\"bench\": \"embedding\"") {
        return Err("\"bench\" must be \"embedding\"".into());
    }
    if !json.contains("\"equivalence_ok\": true") {
        return Err("\"equivalence_ok\" must be true".into());
    }
    check_balanced(json)
}

/// Structural schema check for `results/BENCH_wire_precision.json` (the
/// `bench_wire_precision` artifact). Same key-presence + balance approach
/// as [`validate_bench_embedding_json`]: every required field must appear
/// as a `"key":` literal, the bench tag and the representable-payload
/// bitwise gate must hold, and braces/brackets must balance.
pub fn validate_bench_wire_precision_json(json: &str) -> Result<(), String> {
    const REQUIRED: [&str; 21] = [
        "\"bench\"",
        "\"smoke\"",
        "\"config\"",
        "\"fp32\"",
        "\"bf16\"",
        "\"int8\"",
        "\"adaptive\"",
        "\"alltoall_bytes\"",
        "\"allreduce_bytes\"",
        "\"exchange_s_per_step\"",
        "\"alltoall_bytes_ratio\"",
        "\"allreduce_bytes_ratio\"",
        "\"int8_allreduce_bytes_ratio\"",
        "\"adaptive_allreduce_reduction_x\"",
        "\"adaptive_error_bound\"",
        "\"adaptive_decisions\"",
        "\"max_loss_delta\"",
        "\"int8_max_loss_delta\"",
        "\"adaptive_max_loss_delta\"",
        "\"representable_bitwise_equal\"",
        "\"analytic\"",
    ];
    require_keys(json, &REQUIRED)?;
    if !json.contains("\"bench\": \"wire_precision\"") {
        return Err("\"bench\" must be \"wire_precision\"".into());
    }
    if !json.contains("\"representable_bitwise_equal\": true") {
        return Err("\"representable_bitwise_equal\" must be true".into());
    }
    // The headline INT8 gate: the adaptive policy's steady-state allreduce
    // traffic must be exactly 4x smaller than FP32 (headerless shared-scale
    // INT8 on every bucket once warm).
    if !json.contains("\"adaptive_allreduce_reduction_x\": 4.0000") {
        return Err("\"adaptive_allreduce_reduction_x\" must be exactly 4.0000".into());
    }
    check_balanced(json)
}

/// Structural schema check for `results/BENCH_overlap.json` (the
/// `bench_overlap` artifact). Same key-presence + balance approach as the
/// other validators; the bitwise-loss-identity gate must hold.
pub fn validate_bench_overlap_json(json: &str) -> Result<(), String> {
    const REQUIRED: [&str; 9] = [
        "\"bench\"",
        "\"config\"",
        "\"loss_bitwise_identical\"",
        "\"synchronous\"",
        "\"overlapped\"",
        "\"exposed_comm_mean_s\"",
        "\"per_rank\"",
        "\"hidden_fraction_measured\"",
        "\"analytic\"",
    ];
    require_keys(json, &REQUIRED)?;
    if !json.contains("\"bench\": \"overlap\"") {
        return Err("\"bench\" must be \"overlap\"".into());
    }
    if !json.contains("\"loss_bitwise_identical\": true") {
        return Err("\"loss_bitwise_identical\" must be true".into());
    }
    check_balanced(json)
}

/// Structural schema check for `results/BENCH_serving.json` (the
/// `bench_serving` artifact): the QPS-vs-latency-percentile curve, the
/// cache hit-rate sweep over Zipf α × cache capacity, the sharded-engine
/// scaling sweep with its per-shard observability block, and two identity
/// gates — cached-vs-uncached and sharded-vs-unsharded, both bitwise.
///
/// The multi-shard speedup gate (`multi_shard_speedup > 1.0`) only applies
/// to full-scale artifacts measured on a multi-core host: a single-core
/// host cannot show parallel speedup, and smoke runs do not measure
/// performance — the artifact records `host_cores` so the gate arms itself
/// exactly when the measurement could have shown scaling.
pub fn validate_bench_serving_json(json: &str) -> Result<(), String> {
    const REQUIRED: [&str; 24] = [
        "\"bench\"",
        "\"smoke\"",
        "\"config\"",
        "\"latency_curve\"",
        "\"clients\"",
        "\"qps\"",
        "\"p50_us\"",
        "\"p99_us\"",
        "\"mean_batch\"",
        "\"cache_sweep\"",
        "\"zipf_s\"",
        "\"capacity_frac\"",
        "\"hit_rate\"",
        "\"hot_head_hit_rate\"",
        "\"shard_sweep\"",
        "\"shards\"",
        "\"workers_per_shard\"",
        "\"per_shard\"",
        "\"requests\"",
        "\"p90_us\"",
        "\"queue_depth_hwm\"",
        "\"host_cores\"",
        "\"multi_shard_speedup\"",
        "\"sharded_identity_ok\"",
    ];
    require_keys(json, &REQUIRED)?;
    if !json.contains("\"bench\": \"serving\"") {
        return Err("\"bench\" must be \"serving\"".into());
    }
    if !json.contains("\"bitwise_identical\": true") {
        return Err("\"bitwise_identical\" must be true".into());
    }
    if !json.contains("\"sharded_identity_ok\": true")
        || json.contains("\"sharded_identity_ok\": false")
    {
        return Err("\"sharded_identity_ok\" must be true".into());
    }
    let host_cores = extract_number(json, "host_cores").ok_or("\"host_cores\" must be numeric")?;
    let speedup = extract_number(json, "multi_shard_speedup")
        .ok_or("\"multi_shard_speedup\" must be numeric")?;
    if json.contains("\"smoke\": false") && host_cores > 1.0 && speedup <= 1.0 {
        return Err(format!(
            "full-scale run on a {host_cores}-core host must show multi-shard speedup > 1.0, got {speedup}"
        ));
    }
    check_balanced(json)
}

/// Structural schema check for `results/BENCH_prefetch.json` (the
/// `bench_prefetch` artifact): the forward-exchange volume sweep over
/// Zipf skew × lookahead window, plus the bitwise-loss-identity gate.
/// Same key-presence + balance approach as the other validators.
pub fn validate_bench_prefetch_json(json: &str) -> Result<(), String> {
    const REQUIRED: [&str; 11] = [
        "\"bench\"",
        "\"smoke\"",
        "\"config\"",
        "\"sweep\"",
        "\"zipf_s\"",
        "\"window\"",
        "\"naive_forward_alltoall_bytes\"",
        "\"prefetch_fetch_bytes\"",
        "\"forward_bytes_ratio\"",
        "\"min_ratio_window_ge_4\"",
        "\"losses_bitwise_identical\"",
    ];
    require_keys(json, &REQUIRED)?;
    if !json.contains("\"bench\": \"prefetch\"") {
        return Err("\"bench\" must be \"prefetch\"".into());
    }
    if !json.contains("\"losses_bitwise_identical\": true")
        || json.contains("\"losses_bitwise_identical\": false")
    {
        return Err("\"losses_bitwise_identical\" must be true".into());
    }
    check_balanced(json)
}

/// Structural schema check for `results/BENCH_gemm.json` (the `bench_gemm`
/// artifact): per-pass GFLOP/s (fwd / bwd_data / bwd_weights) for the
/// pack-per-call arm vs the persistent packed plan, per ISA tier and layer
/// shape, plus the bitwise persistent-vs-per-call equivalence gate.
/// `min_fwd_bwd_speedup` is the minimum across shapes at the native
/// (highest available) ISA tier. Same key-presence + balance approach as
/// the other validators.
pub fn validate_bench_gemm_json(json: &str) -> Result<(), String> {
    const REQUIRED: [&str; 18] = [
        "\"bench\"",
        "\"smoke\"",
        "\"threads\"",
        "\"isa_tiers\"",
        "\"configs\"",
        "\"n\"",
        "\"c\"",
        "\"k\"",
        "\"tiers\"",
        "\"isa\"",
        "\"passes\"",
        "\"pass\"",
        "\"per_call_gflops\"",
        "\"persistent_gflops\"",
        "\"fwd_bwd_speedup\"",
        "\"native_isa\"",
        "\"min_fwd_bwd_speedup\"",
        "\"equivalence_ok\"",
    ];
    require_keys(json, &REQUIRED)?;
    if !json.contains("\"bench\": \"gemm\"") {
        return Err("\"bench\" must be \"gemm\"".into());
    }
    if !json.contains("\"equivalence_ok\": true") {
        return Err("\"equivalence_ok\" must be true".into());
    }
    check_balanced(json)
}

/// Prints a section header for a figure/table harness.
pub fn header(title: &str, note: &str) {
    println!("\n================================================================");
    println!("{title}");
    if !note.is_empty() {
        println!("{note}");
    }
    println!("================================================================");
}

/// A simple fixed-width table printer.
pub struct Table {
    widths: Vec<usize>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given column headers.
    pub fn new(headers: &[&str]) -> Self {
        let mut t = Table {
            widths: headers.iter().map(|h| h.len()).collect(),
            rows: Vec::new(),
        };
        t.row(headers.iter().map(|s| s.to_string()).collect());
        t
    }

    /// Appends a row (must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.widths.len(), "table arity mismatch");
        for (w, c) in self.widths.iter_mut().zip(&cells) {
            *w = (*w).max(c.len());
        }
        self.rows.push(cells);
    }

    /// Renders the table to stdout.
    pub fn print(&self) {
        for (i, row) in self.rows.iter().enumerate() {
            let line: Vec<String> = row
                .iter()
                .zip(&self.widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect();
            println!("  {}", line.join("  "));
            if i == 0 {
                let sep: Vec<String> = self.widths.iter().map(|w| "-".repeat(*w)).collect();
                println!("  {}", sep.join("  "));
            }
        }
    }
}

/// Times `f` over `iters` runs after `warmup` runs; returns seconds/run.
pub fn time_it<T>(warmup: usize, iters: usize, mut f: impl FnMut() -> T) -> f64 {
    for _ in 0..warmup {
        std::hint::black_box(f());
    }
    let t0 = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(f());
    }
    t0.elapsed().as_secs_f64() / iters.max(1) as f64
}

/// Formats seconds as adaptive ms/µs.
pub fn fmt_time(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2} s")
    } else if s >= 1e-3 {
        format!("{:.2} ms", s * 1e3)
    } else {
        format!("{:.1} µs", s * 1e6)
    }
}

/// Formats a ratio as `12.3x`.
pub fn fmt_speedup(x: f64) -> String {
    format!("{x:.2}x")
}

/// Formats a fraction as a percentage.
pub fn fmt_pct(x: f64) -> String {
    format!("{:.0}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_rejects_bad_arity() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let r =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| t.row(vec!["oops".into()])));
        assert!(r.is_err());
    }

    #[test]
    fn time_it_returns_positive() {
        let t = time_it(1, 3, || (0..1000).sum::<u64>());
        assert!(t > 0.0);
    }

    #[test]
    fn json_validator_accepts_minimal_schema() {
        let ok = r#"{
  "bench": "embedding",
  "smoke": true,
  "threads": 8,
  "config": {"rows": 10, "dim": 4, "bags": 2, "lookups_per_bag": 3},
  "isa_tiers": ["scalar"],
  "forward_gups": {"scalar": 0.1},
  "update_gups": {"race_free": {"scalar": 0.1}},
  "clustered": {"race_free_gups": 0.1, "bucketed_gups": 0.2, "bucketed_vs_racefree_speedup": 2.0},
  "fused": {"full_scan_gups": 0.1, "planned_gups": 0.2},
  "simd_vs_scalar_forward_ratio": 1.0,
  "equivalence_ok": true
}"#;
        assert!(validate_bench_embedding_json(ok).is_ok());
    }

    #[test]
    fn json_validator_rejects_bad_artifacts() {
        assert!(validate_bench_embedding_json("{}").is_err());
        let missing = r#"{"bench": "embedding", "equivalence_ok": true}"#;
        assert!(validate_bench_embedding_json(missing).is_err());
        let failed_gate = r#"{
  "bench": "embedding", "smoke": false, "threads": 8, "config": {},
  "isa_tiers": [], "forward_gups": {}, "update_gups": {},
  "clustered": {"bucketed_vs_racefree_speedup": 1.0}, "fused": {},
  "simd_vs_scalar_forward_ratio": 1.0, "equivalence_ok": false
}"#;
        assert!(validate_bench_embedding_json(failed_gate).is_err());
        let unbalanced = failed_gate.replace("false\n}", "true\n");
        assert!(validate_bench_embedding_json(&unbalanced).is_err());
    }

    #[test]
    fn wire_precision_validator_accepts_minimal_schema() {
        let ok = r#"{
  "bench": "wire_precision",
  "smoke": true,
  "config": {"ranks": 4, "local_n": 8, "steps": 4},
  "fp32": {"alltoall_bytes": 1000, "allreduce_bytes": 2000, "exchange_s_per_step": 0.001},
  "bf16": {"alltoall_bytes": 500, "allreduce_bytes": 1000, "exchange_s_per_step": 0.001},
  "int8": {"alltoall_bytes": 1000, "allreduce_bytes": 502, "exchange_s_per_step": 0.001},
  "adaptive": {"alltoall_bytes": 1000, "allreduce_bytes": 500, "exchange_s_per_step": 0.001},
  "alltoall_bytes_ratio": 0.5,
  "allreduce_bytes_ratio": 0.5,
  "int8_allreduce_bytes_ratio": 0.251,
  "adaptive_allreduce_reduction_x": 4.0000,
  "adaptive_error_bound": 0.05,
  "adaptive_decisions": {"fp32": 2, "bf16": 0, "int8": 10},
  "max_loss_delta": 0.003,
  "int8_max_loss_delta": 0.004,
  "adaptive_max_loss_delta": 0.004,
  "representable_bitwise_equal": true,
  "analytic": {"fp32_comm_s": 0.1, "bf16_comm_s": 0.06, "int8_comm_s": 0.03}
}"#;
        assert!(validate_bench_wire_precision_json(ok).is_ok());
    }

    #[test]
    fn wire_precision_validator_rejects_bad_artifacts() {
        assert!(validate_bench_wire_precision_json("{}").is_err());
        let missing = r#"{"bench": "wire_precision", "representable_bitwise_equal": true}"#;
        assert!(validate_bench_wire_precision_json(missing).is_err());
        let failed_gate = r#"{
  "bench": "wire_precision", "smoke": false, "config": {},
  "fp32": {"alltoall_bytes": 1, "allreduce_bytes": 1, "exchange_s_per_step": 0.1},
  "bf16": {"alltoall_bytes": 1, "allreduce_bytes": 1, "exchange_s_per_step": 0.1},
  "int8": {"alltoall_bytes": 1, "allreduce_bytes": 1, "exchange_s_per_step": 0.1},
  "adaptive": {"alltoall_bytes": 1, "allreduce_bytes": 1, "exchange_s_per_step": 0.1},
  "alltoall_bytes_ratio": 1.0, "allreduce_bytes_ratio": 1.0,
  "int8_allreduce_bytes_ratio": 1.0,
  "adaptive_allreduce_reduction_x": 4.0000,
  "adaptive_error_bound": 0.05,
  "adaptive_decisions": {"fp32": 1, "bf16": 0, "int8": 0},
  "max_loss_delta": 0.0,
  "int8_max_loss_delta": 0.0, "adaptive_max_loss_delta": 0.0,
  "representable_bitwise_equal": false,
  "analytic": {}
}"#;
        assert!(validate_bench_wire_precision_json(failed_gate).is_err());
        let weak_reduction = failed_gate.replace(
            "\"representable_bitwise_equal\": false",
            "\"representable_bitwise_equal\": true",
        );
        let weak_reduction = weak_reduction.replace(
            "\"adaptive_allreduce_reduction_x\": 4.0000",
            "\"adaptive_allreduce_reduction_x\": 2.0000",
        );
        assert!(validate_bench_wire_precision_json(&weak_reduction).is_err());
        let unbalanced = failed_gate
            .replace("false,", "true,")
            .replace("{}\n}", "{}\n");
        assert!(validate_bench_wire_precision_json(&unbalanced).is_err());
    }

    #[test]
    fn overlap_validator_accepts_committed_shape_and_rejects_bad() {
        let ok = r#"{
  "bench": "overlap",
  "config": {"ranks": 4, "local_n": 8, "steps": 4, "warmup": 1},
  "loss_bitwise_identical": true,
  "synchronous": {"exposed_comm_mean_s": 0.01, "per_rank": [0.01]},
  "overlapped": {"exposed_comm_mean_s": 0.005, "per_rank": [0.005]},
  "hidden_fraction_measured": 0.5,
  "analytic": {"blocking_exposed_s": 0.01, "overlapped_exposed_s": 0.005, "hidden_fraction": 0.5}
}"#;
        assert!(validate_bench_overlap_json(ok).is_ok());
        assert!(validate_bench_overlap_json("{}").is_err());
        let gate_broken = ok.replace(
            "\"loss_bitwise_identical\": true",
            "\"loss_bitwise_identical\": false",
        );
        assert!(validate_bench_overlap_json(&gate_broken).is_err());
    }

    #[test]
    fn serving_validator_accepts_minimal_schema_and_rejects_bad() {
        let ok = r#"{
  "bench": "serving",
  "smoke": true,
  "host_cores": 1,
  "config": {"rows": 1000, "dim": 16, "tables": 1, "lookups": 2, "max_batch": 8, "window_us": 200},
  "latency_curve": [
    {"clients": 1, "qps": 1000.0, "p50_us": 150.0, "p99_us": 400.0, "mean_batch": 1.2}
  ],
  "cache_sweep": [
    {"zipf_s": 1.1, "capacity_frac": 0.01, "hit_rate": 0.76, "bitwise_identical": true}
  ],
  "hot_head_hit_rate": 0.76,
  "bitwise_identical": true,
  "shard_sweep": [
    {"shards": 1, "workers_per_shard": 1, "qps": 900.0, "p50_us": 160.0, "p90_us": 300.0, "p99_us": 500.0,
     "per_shard": [
       {"shard": 0, "requests": 100, "qps": 900.0, "p50_us": 160.0, "p90_us": 300.0, "p99_us": 500.0,
        "queue_depth_hwm": 3, "cache": {"hits": 10, "misses": 5, "hit_rate": 0.67}}
     ],
     "sharded_identity_ok": true}
  ],
  "multi_shard_speedup": 0.95,
  "sharded_identity_ok": true
}"#;
        assert!(validate_bench_serving_json(ok).is_ok());
        assert!(validate_bench_serving_json("{}").is_err());
        let gate_broken = ok.replace(
            "\"bitwise_identical\": true",
            "\"bitwise_identical\": false",
        );
        assert!(validate_bench_serving_json(&gate_broken).is_err());
        let shard_gate_broken = ok.replace(
            "\"sharded_identity_ok\": true\n}",
            "\"sharded_identity_ok\": false\n}",
        );
        assert!(validate_bench_serving_json(&shard_gate_broken).is_err());
        let unbalanced = ok.replace("true\n}", "true\n");
        assert!(validate_bench_serving_json(&unbalanced).is_err());
    }

    #[test]
    fn serving_speedup_gate_arms_only_on_full_scale_multicore_runs() {
        let base = r#"{
  "bench": "serving", "smoke": SMOKE, "host_cores": CORES,
  "config": {}, "latency_curve": [{"clients": 1, "qps": 1.0, "p50_us": 1.0, "p99_us": 1.0, "mean_batch": 1.0}],
  "cache_sweep": [{"zipf_s": 1.1, "capacity_frac": 0.01, "hit_rate": 0.5}],
  "hot_head_hit_rate": 0.5, "bitwise_identical": true,
  "shard_sweep": [{"shards": 1, "workers_per_shard": 1, "qps": 1.0, "p50_us": 1.0, "p90_us": 1.0, "p99_us": 1.0,
    "per_shard": [{"shard": 0, "requests": 1, "queue_depth_hwm": 1}]}],
  "multi_shard_speedup": SPEEDUP,
  "sharded_identity_ok": true
}"#;
        let fill = |smoke: &str, cores: &str, speedup: &str| {
            base.replace("SMOKE", smoke)
                .replace("CORES", cores)
                .replace("SPEEDUP", speedup)
        };
        // Full-scale on multi-core: speedup must exceed 1.0.
        assert!(validate_bench_serving_json(&fill("false", "8", "0.9")).is_err());
        assert!(validate_bench_serving_json(&fill("false", "8", "1.7")).is_ok());
        // Single-core host or smoke run: the gate stays disarmed.
        assert!(validate_bench_serving_json(&fill("false", "1", "0.9")).is_ok());
        assert!(validate_bench_serving_json(&fill("true", "8", "0.9")).is_ok());
    }

    #[test]
    fn prefetch_validator_accepts_minimal_schema_and_rejects_bad() {
        let ok = r#"{
  "bench": "prefetch",
  "smoke": true,
  "config": {"ranks": 4, "tables": 8, "rows_per_table": 512, "global_batch": 128, "steps": 6},
  "sweep": [
    {"zipf_s": 1.05, "window": 4, "naive_forward_alltoall_bytes": 1000, "prefetch_fetch_bytes": 400, "forward_bytes_ratio": 2.5, "naive_step_s": 0.01, "prefetch_step_s": 0.009}
  ],
  "min_ratio_window_ge_4": 2.5,
  "losses_bitwise_identical": true
}"#;
        assert!(validate_bench_prefetch_json(ok).is_ok());
        assert!(validate_bench_prefetch_json("{}").is_err());
        let gate_broken = ok.replace(
            "\"losses_bitwise_identical\": true",
            "\"losses_bitwise_identical\": false",
        );
        assert!(validate_bench_prefetch_json(&gate_broken).is_err());
        let missing = ok.replace("\"min_ratio_window_ge_4\"", "\"min_ratio\"");
        assert!(validate_bench_prefetch_json(&missing).is_err());
        let unbalanced = ok.replace("true\n}", "true\n");
        assert!(validate_bench_prefetch_json(&unbalanced).is_err());
    }

    #[test]
    fn gemm_validator_accepts_minimal_schema_and_rejects_bad() {
        let ok = r#"{
  "bench": "gemm",
  "smoke": true,
  "threads": 8,
  "isa_tiers": ["scalar"],
  "configs": [
    {"n": 64, "c": 64, "k": 64, "tiers": [
      {"isa": "scalar", "passes": [
        {"pass": "fwd", "per_call_gflops": 1.0, "persistent_gflops": 2.0, "speedup": 2.0}
      ], "fwd_bwd_speedup": 2.0}
    ]}
  ],
  "native_isa": "scalar",
  "min_fwd_bwd_speedup": 2.0,
  "equivalence_ok": true
}"#;
        assert!(validate_bench_gemm_json(ok).is_ok());
        assert!(validate_bench_gemm_json("{}").is_err());
        let gate_broken = ok.replace("\"equivalence_ok\": true", "\"equivalence_ok\": false");
        assert!(validate_bench_gemm_json(&gate_broken).is_err());
        let wrong_tag = ok.replace("\"bench\": \"gemm\"", "\"bench\": \"mlp\"");
        assert!(validate_bench_gemm_json(&wrong_tag).is_err());
        let missing = ok.replace("\"min_fwd_bwd_speedup\"", "\"min_speedup\"");
        assert!(validate_bench_gemm_json(&missing).is_err());
        let unbalanced = ok.replace("true\n}", "true\n");
        assert!(validate_bench_gemm_json(&unbalanced).is_err());
    }

    #[test]
    fn artifact_dispatch_covers_every_committed_artifact() {
        // Wrong-schema content must be rejected under every known name, and
        // unknown names must be an error (no unvalidated artifacts).
        for name in [
            "BENCH_embedding.json",
            "BENCH_wire_precision.json",
            "BENCH_overlap.json",
            "BENCH_serving.json",
            "BENCH_prefetch.json",
            "BENCH_gemm.json",
        ] {
            assert!(validate_artifact(name, "{}").is_err(), "{name}");
        }
        assert!(validate_artifact("BENCH_mystery.json", "{}").is_err());
    }

    #[test]
    fn write_artifact_honors_results_dir_override() {
        let dir = std::env::temp_dir().join(format!("dlrm_results_{}", std::process::id()));
        std::env::set_var("DLRM_RESULTS_DIR", &dir);
        let path = write_artifact("BENCH_test_artifact.json", "{}\n");
        std::env::remove_var("DLRM_RESULTS_DIR");
        assert_eq!(path, dir.join("BENCH_test_artifact.json"));
        assert_eq!(std::fs::read_to_string(&path).unwrap(), "{}\n");
        std::fs::remove_dir_all(&dir).unwrap();
        // Without the override the default is the relative results/ dir.
        assert_eq!(results_dir(), std::path::PathBuf::from("results"));
    }

    #[test]
    fn formatting() {
        assert_eq!(fmt_time(2.0), "2.00 s");
        assert_eq!(fmt_time(0.0042), "4.20 ms");
        assert_eq!(fmt_time(42e-6), "42.0 µs");
        assert_eq!(fmt_speedup(5.0), "5.00x");
        assert_eq!(fmt_pct(0.335), "34%");
    }
}
