//! Figure 13 — weak-scaling compute/communication split, MPI vs CCL
//! backend, overlapping vs blocking (Large and MLPerf configs).

use dlrm_bench::{header, Table};
use dlrm_clustersim::experiments::{backend_mode_sweep, ScalingKind};
use dlrm_clustersim::{Calibration, Cluster};
use dlrm_data::DlrmConfig;

fn main() {
    header(
        "Figure 13: compute vs communication, weak scaling (simulated)",
        "Paper shapes: MPI compute inflates under overlap (unpinned progress\n\
         thread); the MLPerf compute bar creeps up with ranks — the full-global-\n         minibatch data loader (Section VI-D2).",
    );
    let cluster = Cluster::cluster_64socket();
    let calib = Calibration::default();
    for cfg in [DlrmConfig::large(), DlrmConfig::mlperf()] {
        println!("\n--- {} ---", cfg.name);
        let rows = backend_mode_sweep(&cfg, &cluster, &calib, ScalingKind::Weak);
        let mut t = Table::new(&[
            "mode",
            "backend",
            "ranks",
            "compute ms",
            "comm ms",
            "total ms",
        ]);
        for (backend, mode, ranks, b) in rows {
            t.row(vec![
                format!("{mode:?}"),
                backend.to_string(),
                format!("{ranks}R"),
                format!("{:.1}", (b.compute + b.loader) * 1e3),
                format!("{:.1}", b.comm() * 1e3),
                format!("{:.1}", b.total() * 1e3),
            ]);
        }
        t.print();
    }
}
