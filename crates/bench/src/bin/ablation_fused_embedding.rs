//! Section III-A ablation — fused embedding backward+update vs the
//! separate backward-then-update pipeline (paper: up to 1.6× standalone).

use dlrm_bench::{fmt_speedup, fmt_time, header, paper, time_it, HarnessOpts, Table};
use dlrm_data::IndexDistribution;
use dlrm_kernels::embedding::{self, UpdateStrategy};
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::Matrix;

fn main() {
    let opts = HarnessOpts::from_args();
    header(
        "Ablation: fused embedding backward+update (Section III-A)",
        "Paper: fusing avoids materializing dW[NS][E]; up to 1.6x standalone.",
    );
    let pool = ThreadPool::with_default_parallelism();
    let (m, e, n, p) = if opts.paper_scale {
        (1_000_000usize, 64usize, 2048usize, 50usize)
    } else {
        (100_000, 64, 512, 50)
    };
    let mut rng = seeded_rng(3, 0);
    let w0 = uniform(m, e, -0.1, 0.1, &mut rng);
    let dist = IndexDistribution::Uniform;
    let indices = dist.sample_many(m as u64, n * p, &mut rng);
    let offsets: Vec<usize> = (0..=n).map(|i| i * p).collect();
    let dy = uniform(n, e, -0.1, 0.1, &mut rng);
    let ns = indices.len();

    let mut w = w0.clone();
    let t_unfused = time_it(1, 5, || {
        let mut dw = Matrix::zeros(ns, e);
        embedding::backward(&pool, &dy, &offsets, &mut dw);
        embedding::update(
            &pool,
            UpdateStrategy::RaceFree,
            &mut w,
            &dw,
            &indices,
            -0.01,
        );
    });

    let mut w = w0.clone();
    let t_fused = time_it(1, 5, || {
        embedding::fused_backward_update(&pool, &mut w, &dy, &indices, &offsets, -0.01);
    });

    // Plan-driven fused: the per-batch plan build is part of the cost, but
    // the plan's buffers are reused (steady-state, as in the layer).
    let mut w = w0.clone();
    let mut plan = embedding::BagPlan::new();
    let t_planned = time_it(1, 5, || {
        plan.build(&pool, &indices, m);
        plan.attach_bags(&pool, &offsets);
        embedding::fused_backward_update_planned(
            &pool, &mut w, &dy, &indices, &offsets, -0.01, &plan,
        );
    });

    let mut t = Table::new(&["variant", "time/iter", "speedup"]);
    t.row(vec![
        "backward + update".into(),
        fmt_time(t_unfused),
        "1.00x".into(),
    ]);
    t.row(vec![
        "fused".into(),
        fmt_time(t_fused),
        fmt_speedup(t_unfused / t_fused),
    ]);
    t.row(vec![
        "fused + plan".into(),
        fmt_time(t_planned),
        fmt_speedup(t_unfused / t_planned),
    ]);
    t.print();
    println!(
        "\nPaper: up to {}x. Table {m} rows x {e}, N={n}, P={p}.",
        paper::FUSED_EMBEDDING_SPEEDUP
    );
}
