//! Figure 7 — single-socket DLRM performance: Reference vs Atomic-XCHG vs
//! RTM vs Race-Free, for the Small and MLPerf configs.

use dlrm_bench::single_socket::{mlperf_scaled, run_config, small_scaled};
use dlrm_bench::{fmt_speedup, header, paper, HarnessOpts, Table};

fn main() {
    let opts = HarnessOpts::from_args();
    header(
        "Figure 7: DLRM single-socket ms/iteration",
        "Paper (28-core SKX): Small 4288 -> 38.9 ms (110x); MLPerf 272 -> 34.8 ms (8x).\n\
         This machine: 1 core; tables scaled unless --paper-scale. The *shape*\n\
         (reference >> optimized; race-free wins under contention) is the result.",
    );
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let iters = if opts.paper_scale { 2 } else { 4 };

    let mut t = Table::new(&[
        "config",
        "strategy",
        "ms/iter (paper)",
        "ms/iter (ours)",
        "emb ms (ours)",
        "speedup vs ref (ours)",
        "emb speedup",
    ]);
    for (setup, paper_col) in [
        (small_scaled(opts.paper_scale), 1usize),
        (mlperf_scaled(opts.paper_scale), 2usize),
    ] {
        let (cfg, dist) = setup;
        let rows = run_config(&cfg, dist, threads, iters);
        let ref_ms = rows[0].ms_per_iter;
        let ref_emb_ms = rows[0].ms_per_iter * rows[0].split.0;
        // Look the paper bar up by label: measured rows now include bars
        // (e.g. Bucketed) that Figure 7 has no counterpart for, and a
        // positional zip would silently drop them.
        for row in rows.iter() {
            let paper_ms = paper::fig7::ROWS
                .iter()
                .find(|p| p.0 == row.label)
                .map(|p| if paper_col == 1 { p.1 } else { p.2 });
            let emb_ms = row.ms_per_iter * row.split.0;
            t.row(vec![
                row.config.clone(),
                row.label.clone(),
                paper_ms.map_or("-".into(), |p| format!("{p:.1}")),
                format!("{:.1}", row.ms_per_iter),
                format!("{emb_ms:.1}"),
                fmt_speedup(ref_ms / row.ms_per_iter),
                fmt_speedup(ref_emb_ms / emb_ms),
            ]);
        }
    }
    t.print();
    println!(
        "\nPaper headline speedups: Small {}x, MLPerf {}x. Those factors pair a",
        paper::fig7::SMALL_SPEEDUP,
        paper::fig7::MLPERF_SPEEDUP
    );
    println!("single-threaded pathological kernel against 28 optimized cores; on one");
    println!("core the end-to-end contrast compresses and shows up in the embedding");
    println!("column (and in `cargo bench -p dlrm-bench --bench embedding`).");
}
