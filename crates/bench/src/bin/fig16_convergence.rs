//! Figure 16 — training accuracy (ROC AUC vs % of epoch) under FP32,
//! BF16-Split-SGD and FP24, plus the paper's 8-LSB ablation.
//!
//! The Criteo Terabyte dataset is substituted by the synthetic click log
//! (see DESIGN.md); the model is a scaled MLPerf shape. The reproduced
//! claims: BF16-Split tracks FP32 to within ~0.001 AUC; FP24 sits visibly
//! below; 8 LSBs of optimizer state are not sufficient.

use dlrm::layers::Execution;
use dlrm::prelude::*;
use dlrm_bench::{header, paper, HarnessOpts, Table};
use dlrm_data::{ClickLog, DlrmConfig, IndexDistribution};

fn scaled_mlperf(paper_scale: bool) -> DlrmConfig {
    let mut cfg = DlrmConfig::mlperf().scaled_down(if paper_scale { 200_000 } else { 20_000 }, 8);
    if !paper_scale {
        // Shrink the MLPs so three full training runs finish in minutes on
        // one core; shapes keep the MLPerf structure (3-layer bottom into
        // E, deep top).
        cfg.bottom_mlp = vec![128, 64, 32];
        cfg.emb_dim = 32;
        cfg.top_mlp = vec![128, 64, 32, 1];
    }
    cfg
}

fn run_mode(
    cfg: &DlrmConfig,
    log: &ClickLog,
    mode: PrecisionMode,
    opts: &TrainerOptions,
) -> Vec<TrainReport> {
    let model = DlrmModel::new(
        cfg,
        Execution::optimized(
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1),
        ),
        UpdateStrategy::RaceFree,
        mode,
        4242,
    );
    Trainer::new(model, log, opts.clone()).run_epoch()
}

fn main() {
    let hopts = HarnessOpts::from_args();
    header(
        "Figure 16: convergence with mixed-precision SGD (synthetic click log)",
        "Curves: FP32 / BF16 Split-SGD / FP24 (+8-LSB ablation). Paper: split\n\
         tracks FP32 within ~0.001 AUC; FP24 visibly lower.",
    );
    let cfg = scaled_mlperf(hopts.paper_scale);
    let log = ClickLog::new(&cfg, IndexDistribution::Zipf { s: 1.05 }, 17);
    let opts = TrainerOptions {
        lr: 0.15,
        batch_size: 128,
        batches_per_epoch: if hopts.paper_scale { 2000 } else { 500 },
        eval_every_frac: 0.05,
        eval_batches: 8,
    };

    let modes = [
        PrecisionMode::Fp32,
        PrecisionMode::Bf16Split,
        PrecisionMode::Fp24,
        PrecisionMode::Bf16Split8,
        PrecisionMode::Fp16Stochastic,
    ];
    let mut traces = Vec::new();
    for mode in modes {
        eprintln!("training {mode} ...");
        traces.push(run_mode(&cfg, &log, mode, &opts));
    }

    let mut t = Table::new(&[
        "% epoch",
        "FP32 (Ref)",
        "BF16 (SplitSGD)",
        "FP24 (1-8-15)",
        "BF16 (Split, 8 LSBs)",
        "FP16 (stochastic)",
    ]);
    for i in 0..traces[0].len() {
        let mut row = vec![format!("{:.0}%", traces[0][i].epoch_frac * 100.0)];
        for trace in &traces {
            row.push(format!("{:.4}", trace[i].auc));
        }
        t.row(row);
    }
    t.print();

    let final_fp32 = traces[0].last().unwrap().auc;
    let final_split = traces[1].last().unwrap().auc;
    let final_fp24 = traces[2].last().unwrap().auc;
    println!(
        "\nFinal AUC: FP32 {final_fp32:.4}, BF16-Split {final_split:.4}, FP24 {final_fp24:.4}"
    );
    println!(
        "FP32 vs BF16-Split gap: {:.4} (paper: < {:.3})",
        (final_fp32 - final_split).abs(),
        paper::fig16::SPLIT_GAP_MAX
    );
    println!(
        "Paper final AUCs (Criteo TB): FP32 {:.4}, Split {:.4}, FP24 {:.4}",
        paper::fig16::FP32_FINAL_AUC,
        paper::fig16::BF16_SPLIT_FINAL_AUC,
        paper::fig16::FP24_FINAL_AUC
    );
}
