//! Overlap benchmark — synchronous vs overlapped train-step schedules at a
//! matched configuration (the functional counterpart of Figures 6/10/11).
//!
//! Runs the same model, batches and seed under both
//! [`Schedule::Synchronous`] and [`Schedule::Overlapped`], with a per-rank
//! [`TimingRecorder`] splitting each iteration into Compute,
//! Alltoall-Framework/Wait and Allreduce-Framework/Wait. Asserts the two
//! schedules' per-rank losses are **bitwise identical** (overlap moves
//! time, not bits), then reports how much exposed communication
//! (Alltoall-Wait + Allreduce-Wait) the overlapped schedule hides, next to
//! the cluster simulator's analytic prediction for the same contrast.
//!
//! Writes `results/BENCH_overlap.json` with the per-rank per-phase
//! breakdown of both schedules.

use dlrm_bench::{fmt_time, header, HarnessOpts, Table};
use dlrm_clustersim::timeline::{overlap_savings, RunMode, SimParams};
use dlrm_clustersim::{Calibration, Cluster, Strategy};
use dlrm_comm::instrument::{OpKind, TimingRecorder};
use dlrm_comm::nonblocking::{create_channel_worlds, Backend, ProgressEngine};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_dist::distributed::{DistDlrm, DistOptions, Schedule};
use dlrm_dist::exchange::ExchangeStrategy;
use dlrm_tensor::init::seeded_rng;
use std::collections::HashMap;
use std::sync::Arc;
use std::time::Instant;

const RANKS: usize = 4;
const LOCAL_N: usize = 64;
const WARMUP: usize = 3;
const STEPS: usize = 30;
/// Small enough for several buckets on this model (~67k grad elements).
const BUCKET_CAP: usize = 64 * 1024;

fn bench_cfg(paper_scale: bool) -> DlrmConfig {
    let mut cfg = DlrmConfig::small();
    cfg.dense_features = 32;
    cfg.bottom_mlp = vec![256, 64];
    cfg.emb_dim = 64;
    cfg.num_tables = 8;
    cfg.table_rows = vec![2000; 8];
    cfg.lookups_per_table = 4;
    cfg.top_mlp = vec![256, 64, 1];
    if paper_scale {
        cfg.bottom_mlp = vec![512, 128];
        cfg.emb_dim = 128;
        cfg.table_rows = vec![20_000; 8];
        cfg.top_mlp = vec![1024, 256, 1];
    }
    cfg
}

struct RankReport {
    losses: Vec<f64>,
    phases: HashMap<OpKind, f64>,
    wall_s: f64,
}

/// One full measured run of `schedule`: per-rank losses + phase breakdown.
fn run_schedule(cfg: &DlrmConfig, batches: &[MiniBatch], schedule: Schedule) -> Vec<RankReport> {
    let opts = DistOptions {
        strategy: ExchangeStrategy::CclAlltoall,
        seed: 42,
        threads_per_rank: 1,
        schedule,
        bucket_cap_bytes: BUCKET_CAP,
        ..Default::default()
    };
    let backend = Backend::CclLike { workers: 2 };
    let worlds = std::sync::Mutex::new(create_channel_worlds(RANKS, backend));
    CommWorld::run(RANKS, |comm| {
        let me = comm.rank();
        let engine = {
            let comms = std::mem::take(&mut worlds.lock().unwrap()[me]);
            ProgressEngine::new(backend, comms)
        };
        let mut model = DistDlrm::new(cfg, comm, Some(engine), &opts);
        let rec = Arc::new(TimingRecorder::new());
        model.set_recorder(Some(Arc::clone(&rec)));

        for b in &batches[..WARMUP] {
            model.train_step(b, 0.05);
        }
        rec.reset();
        model.comm_barrier();
        let t0 = Instant::now();
        let losses: Vec<f64> = batches[WARMUP..]
            .iter()
            .map(|b| model.train_step(b, 0.05))
            .collect();
        model.comm_barrier();
        let wall_s = t0.elapsed().as_secs_f64();
        let phases = rec
            .snapshot()
            .into_iter()
            .map(|(k, d)| (k, d.as_secs_f64()))
            .collect();
        RankReport {
            losses,
            phases,
            wall_s,
        }
    })
}

fn exposed(r: &RankReport) -> f64 {
    r.phases.get(&OpKind::AlltoallWait).copied().unwrap_or(0.0)
        + r.phases.get(&OpKind::AllreduceWait).copied().unwrap_or(0.0)
}

fn mean_exposed(reports: &[RankReport]) -> f64 {
    reports.iter().map(exposed).sum::<f64>() / reports.len() as f64
}

fn json_escape_free(s: &str) -> &str {
    // Keys/labels here are all [a-z_0-9-]; nothing to escape.
    debug_assert!(s.chars().all(|c| c.is_ascii() && c != '"' && c != '\\'));
    s
}

fn rank_json(reports: &[RankReport]) -> String {
    let per_rank: Vec<String> = reports
        .iter()
        .enumerate()
        .map(|(rank, r)| {
            let mut fields = vec![format!("\"rank\": {rank}")];
            for kind in OpKind::ALL {
                let v = r.phases.get(&kind).copied().unwrap_or(0.0);
                fields.push(format!(
                    "\"{}\": {:.6}",
                    json_escape_free(kind.json_key()),
                    v
                ));
            }
            fields.push(format!("\"exposed_comm_s\": {:.6}", exposed(r)));
            fields.push(format!("\"wall_s\": {:.6}", r.wall_s));
            format!("      {{{}}}", fields.join(", "))
        })
        .collect();
    format!("[\n{}\n    ]", per_rank.join(",\n"))
}

fn main() {
    let opts = HarnessOpts::from_args();
    let cfg = bench_cfg(opts.paper_scale);
    header(
        "Overlap benchmark: synchronous vs overlapped schedule (measured)",
        "Same model/batches/seed under both schedules; losses must match\n\
         bitwise. Exposed comm = Alltoall-Wait + Allreduce-Wait per rank.",
    );

    let gn = LOCAL_N * RANKS;
    let batches: Vec<MiniBatch> = (0..WARMUP + STEPS)
        .map(|i| {
            MiniBatch::random(
                &cfg,
                gn,
                IndexDistribution::Uniform,
                &mut seeded_rng(9000 + i as u64, 5),
            )
        })
        .collect();

    let sync = run_schedule(&cfg, &batches, Schedule::Synchronous);
    let over = run_schedule(&cfg, &batches, Schedule::Overlapped);

    // Bitwise loss identity across schedules — the correctness gate.
    for (rank, (s, o)) in sync.iter().zip(&over).enumerate() {
        let sb: Vec<u64> = s.losses.iter().map(|l| l.to_bits()).collect();
        let ob: Vec<u64> = o.losses.iter().map(|l| l.to_bits()).collect();
        assert_eq!(sb, ob, "rank {rank}: schedules diverged bitwise");
    }
    println!(
        "\nloss check: {} steps x {} ranks bitwise identical across schedules",
        STEPS, RANKS
    );

    let mut t = Table::new(&[
        "schedule", "rank", "compute", "a2a-fw", "a2a-wait", "ar-fw", "ar-wait", "exposed", "wall",
    ]);
    for (label, reports) in [("sync", &sync), ("overlap", &over)] {
        for (rank, r) in reports.iter().enumerate() {
            let g = |k: OpKind| r.phases.get(&k).copied().unwrap_or(0.0);
            t.row(vec![
                label.to_string(),
                rank.to_string(),
                fmt_time(g(OpKind::Compute)),
                fmt_time(g(OpKind::AlltoallFramework)),
                fmt_time(g(OpKind::AlltoallWait)),
                fmt_time(g(OpKind::AllreduceFramework)),
                fmt_time(g(OpKind::AllreduceWait)),
                fmt_time(exposed(r)),
                fmt_time(r.wall_s),
            ]);
        }
    }
    t.print();

    let sync_exposed = mean_exposed(&sync);
    let over_exposed = mean_exposed(&over);
    let hidden = 1.0 - over_exposed / sync_exposed.max(f64::MIN_POSITIVE);
    println!(
        "\nexposed comm (mean/rank): sync {} -> overlapped {}  ({:.0}% hidden)",
        fmt_time(sync_exposed),
        fmt_time(over_exposed),
        hidden * 100.0
    );

    // Analytic cross-check from the cluster simulator at the same shape.
    let savings = overlap_savings(
        &cfg,
        &Cluster::cluster_64socket(),
        &Calibration::default(),
        SimParams {
            ranks: RANKS,
            local_n: LOCAL_N,
            strategy: Strategy::CclAlltoall,
            mode: RunMode::Overlapping,
            charge_loader: false,
            wire: WirePrecision::Fp32,
        },
    );
    println!(
        "analytic (clustersim, 64-socket model): {:.0}% hidden",
        savings.hidden_fraction() * 100.0
    );

    assert!(
        over_exposed < sync_exposed,
        "overlapped schedule must expose strictly less comm: {over_exposed} vs {sync_exposed}"
    );

    let json = format!(
        "{{\n  \"bench\": \"overlap\",\n  \"config\": {{\"ranks\": {RANKS}, \"local_n\": {LOCAL_N}, \"steps\": {STEPS}, \"warmup\": {WARMUP}, \"strategy\": \"ccl_alltoall\", \"bucket_cap_bytes\": {BUCKET_CAP}, \"paper_scale\": {}}},\n  \"loss_bitwise_identical\": true,\n  \"synchronous\": {{\n    \"exposed_comm_mean_s\": {:.6},\n    \"per_rank\": {}\n  }},\n  \"overlapped\": {{\n    \"exposed_comm_mean_s\": {:.6},\n    \"per_rank\": {}\n  }},\n  \"hidden_fraction_measured\": {:.4},\n  \"analytic\": {{\"blocking_exposed_s\": {:.6}, \"overlapped_exposed_s\": {:.6}, \"hidden_fraction\": {:.4}}}\n}}\n",
        opts.paper_scale,
        sync_exposed,
        rank_json(&sync),
        over_exposed,
        rank_json(&over),
        hidden,
        savings.blocking_exposed,
        savings.overlapped_exposed,
        savings.hidden_fraction(),
    );
    dlrm_bench::validate_bench_overlap_json(&json).expect("self-validation of artifact schema");
    let path = dlrm_bench::write_artifact("BENCH_overlap.json", &json);
    println!("\nwrote {}", path.display());
    if opts.json {
        println!("{json}");
    }
}
