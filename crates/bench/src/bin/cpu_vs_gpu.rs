//! Section VI-C — single-socket CPU vs single V100 GPU.
//!
//! Paper: the (Caffe2) V100 measured 62 ms on the Small config vs 38 ms on
//! the optimized SKX socket; a fully-optimized GPU stack is estimated at
//! 10–15 ms — but the Large and MLPerf configs simply do not fit in HBM,
//! which is the paper's argument for CPUs.

use dlrm_bench::{header, Table};
use dlrm_clustersim::gpu::{compare, GpuSpec};
use dlrm_clustersim::{Calibration, Cluster};
use dlrm_tensor::util::format_bytes;

fn main() {
    header(
        "Section VI-C: single-socket CPU vs single V100 (roofline estimates)",
        "Paper anchors: V100/Caffe2 measured 62 ms (Small); optimized GPU\n\
         estimate 10-15 ms; optimized CPU 38 ms; Large/MLPerf exceed HBM.",
    );
    let cluster = Cluster::node_8socket();
    let calib = Calibration::default();
    for gpu in [GpuSpec::v100_16gb(), GpuSpec::v100_32gb()] {
        println!("\n--- {} vs {} ---", cluster.socket.name, gpu.name);
        let rows = compare(&cluster, &gpu, &calib);
        let mut t = Table::new(&[
            "config",
            "tables",
            "fits HBM?",
            "CPU ms/iter (est)",
            "GPU ms/iter (est)",
            "GPU/CPU",
        ]);
        for r in rows {
            t.row(vec![
                r.config.clone(),
                format_bytes(r.table_bytes),
                if r.fits_on_gpu {
                    "yes".into()
                } else {
                    "NO".into()
                },
                format!("{:.1}", r.cpu_ms),
                if r.fits_on_gpu {
                    format!("{:.1}", r.gpu_ms)
                } else {
                    format!("({:.1})", r.gpu_ms)
                },
                format!("{:.2}x faster", r.cpu_ms / r.gpu_ms),
            ]);
        }
        t.print();
    }
    println!("\nThe CPU's case is capacity: it runs every configuration; the GPU");
    println!("needs multi-GPU model parallelism for anything beyond Small (and the");
    println!("paper notes FP16 tensor cores don't help DLRM's default optimizer).");
}
