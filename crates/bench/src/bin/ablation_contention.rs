//! Ablation — embedding-update strategies vs index skew.
//!
//! The paper's Figure 7 contrast (atomic/RTM fine on random indices, 10×
//! slower than race-free under Criteo-style reuse) swept across index
//! distributions: uniform → Zipf → heavily clustered.

use dlrm_bench::{fmt_time, header, time_it, HarnessOpts, Table};
use dlrm_data::IndexDistribution;
use dlrm_kernels::embedding::{self, UpdateStrategy};
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::Matrix;

fn main() {
    let opts = HarnessOpts::from_args();
    header(
        "Ablation: update strategy vs index distribution",
        "Contention should hurt AtomicXchg/RTM; RaceFree should be immune\n\
         (but can load-imbalance under extreme clustering).",
    );
    let pool = ThreadPool::with_default_parallelism();
    let (m, e, n, p, iters) = if opts.paper_scale {
        (1_000_000usize, 64usize, 2048usize, 50usize, 3usize)
    } else {
        (50_000, 64, 512, 20, 5)
    };

    let dists: [(&str, IndexDistribution); 4] = [
        ("uniform", IndexDistribution::Uniform),
        ("zipf s=1.05", IndexDistribution::Zipf { s: 1.05 }),
        ("zipf s=1.4", IndexDistribution::Zipf { s: 1.4 }),
        (
            "clustered 0.1%/90%",
            IndexDistribution::Clustered {
                hot_fraction: 0.001,
                hot_prob: 0.9,
            },
        ),
    ];

    let mut t = Table::new(&[
        "distribution",
        "Atomic XCHG",
        "RTM",
        "Race Free",
        "Bucketed",
    ]);
    for (name, dist) in dists {
        let mut rng = seeded_rng(7, 0);
        let w0 = uniform(m, e, -0.1, 0.1, &mut rng);
        let indices = dist.sample_many(m as u64, n * p, &mut rng);
        let offsets: Vec<usize> = (0..=n).map(|i| i * p).collect();
        let dw = uniform(indices.len(), e, -0.1, 0.1, &mut rng);
        let _ = offsets;

        let mut row = vec![name.to_string()];
        for strategy in [
            UpdateStrategy::AtomicXchg,
            UpdateStrategy::Rtm,
            UpdateStrategy::RaceFree,
            UpdateStrategy::Bucketed,
        ] {
            let mut w: Matrix = w0.clone();
            let secs = time_it(1, iters, || {
                embedding::update(&pool, strategy, &mut w, &dw, &indices, -0.01);
            });
            row.push(fmt_time(secs));
        }
        t.row(row);
    }
    t.print();
}
