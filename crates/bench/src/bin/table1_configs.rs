//! Table I — DLRM model specifications used in this work.

use dlrm_bench::{header, Table};
use dlrm_data::DlrmConfig;
use dlrm_tensor::util::format_bytes;

fn main() {
    // No options apply here, but parse argv so unknown flags warn
    // consistently with the other harnesses.
    let _ = dlrm_bench::HarnessOpts::from_args();
    header(
        "Table I: DLRM model specifications",
        "Paper values regenerated from the config definitions.",
    );
    let configs = DlrmConfig::all_paper();
    let mut t = Table::new(&["Parameter", "Small", "Large", "MLPerf"]);
    let cell =
        |f: &dyn Fn(&DlrmConfig) -> String| -> Vec<String> { configs.iter().map(f).collect() };
    let mut push = |name: &str, f: &dyn Fn(&DlrmConfig) -> String| {
        let mut row = vec![name.to_string()];
        row.extend(cell(f));
        t.row(row);
    };
    push("Minibatch (single socket)", &|c| c.mb_single.to_string());
    push("Global MB (strong scaling)", &|c| c.gn_strong.to_string());
    push("Local MB (weak scaling)", &|c| c.ln_weak.to_string());
    push("Look-ups per table (P)", &|c| {
        c.lookups_per_table.to_string()
    });
    push("Number of tables (S)", &|c| c.num_tables.to_string());
    push("Embedding dim (E)", &|c| c.emb_dim.to_string());
    push("Rows per table (M)", &|c| {
        let min = c.table_rows.iter().min().unwrap();
        let max = c.table_rows.iter().max().unwrap();
        if min == max {
            format!("{max:.2e}")
        } else {
            format!("up to {max:.1e}")
        }
    });
    push("Dense features", &|c| c.dense_features.to_string());
    push("Bottom MLP", &|c| {
        c.bottom_mlp
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("-")
    });
    push("Top MLP", &|c| {
        c.top_mlp
            .iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .join("-")
    });
    push("Interaction output dim", &|c| {
        c.interaction_output_dim().to_string()
    });
    push("All tables footprint", &|c| {
        format_bytes(c.total_table_bytes())
    });
    t.print();

    println!("\nNote: the MLPerf top MLP uses the official 1024-1024-512-256-1");
    println!("shape, which reproduces Table II's 9.0 MB allreduce (Table I's");
    println!("abbreviated 512-512-256-1 would give 3.2 MB).");
}
