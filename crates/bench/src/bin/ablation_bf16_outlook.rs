//! Section VII outlook — projected single-socket speedup from native BF16
//! (Split-SGD + `vdpbf16ps`) on Cooper-Lake-class CPUs.

use dlrm_bench::{fmt_speedup, header, Table};
use dlrm_clustersim::bf16_outlook::project_all;
use dlrm_clustersim::{Calibration, Cluster};

fn main() {
    header(
        "Ablation: projected BF16 (Split-SGD + vdpbf16ps) single-socket gains",
        "Paper: 66% of training passes enjoy a 2x bandwidth reduction; native\n\
         BF16 FMAs will 'significantly speed-up the MLP portions as well'.",
    );
    let rows = project_all(&Cluster::node_8socket(), &Calibration::default());
    let mut t = Table::new(&["config", "FP32 ms/iter", "BF16 ms/iter (proj)", "speedup"]);
    for r in &rows {
        t.row(vec![
            r.config.clone(),
            format!("{:.1}", r.fp32_ms),
            format!("{:.1}", r.bf16_ms),
            fmt_speedup(r.speedup),
        ]);
    }
    t.print();
    println!("\n(Embedding fwd/bwd at half the bytes, update at full hi+lo width;");
    println!(" MLP GEMMs at 2x FMA throughput; interaction/framework unchanged.)");
}
