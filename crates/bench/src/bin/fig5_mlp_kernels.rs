//! Figure 5 — single-socket MLP training-kernel performance.
//!
//! Three implementations per pass, as in the paper's bars:
//!
//! * **this work** — blocked batch-reduce GEMM (Algorithm 5);
//! * **blocked, no batch-reduce** — same blocked layouts but one microkernel
//!   call per reduction panel (C reloaded each time): the stand-in for
//!   Facebook's serial-GEMM-per-thread blocked implementation;
//! * **flat GEMM** — the large row-major parallel GEMM (PyTorch/MKL-style).
//!
//! Reported as GFLOP/s; the paper's result is the *ordering* and the gap
//! (blocked ≈72–75% of peak vs flat ≈61%). Absolute numbers here are one
//! core of a different CPU.

use dlrm_bench::{header, paper, time_it, HarnessOpts, Table};
use dlrm_kernels::gemm::micro::{brgemm_fwd, detect_isa, PanelDims};
use dlrm_kernels::gemm::{self, gemm_flops};
use dlrm_kernels::ThreadPool;
use dlrm_tensor::blocked::Blocking;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::{BlockedActivations, BlockedWeights, Matrix};

struct PassResult {
    gflops: [f64; 3], // this-work, no-batch-reduce, flat
}

fn bench_config(pool: &ThreadPool, n: usize, c: usize, k: usize, iters: usize) -> [PassResult; 3] {
    let mut rng = seeded_rng(42, 0);
    let w = uniform(k, c, -0.5, 0.5, &mut rng);
    let x = uniform(c, n, -0.5, 0.5, &mut rng);
    let dy = uniform(k, n, -0.5, 0.5, &mut rng);
    let blk = Blocking::for_shape(n, c, k);
    let wb = BlockedWeights::pack(&w, blk);
    let xb = BlockedActivations::pack(&x, blk.bc, blk.bn);
    let dyb = BlockedActivations::pack(&dy, blk.bk, blk.bn);
    let flops = gemm_flops(k, c, n) as f64;

    // ---- forward ----------------------------------------------------------
    let mut yb = BlockedActivations::zeros(k, n, blk.bk, blk.bn);
    let t_fwd_this = time_it(1, iters, || {
        yb.as_mut_slice().fill(0.0);
        gemm::fc_forward(pool, &wb, &xb, &mut yb);
    });
    let t_fwd_nobr = time_it(1, iters, || {
        yb.as_mut_slice().fill(0.0);
        fc_forward_no_batch_reduce(pool, &wb, &xb, &mut yb);
    });
    let mut y = Matrix::zeros(k, n);
    let t_fwd_flat = time_it(1, iters, || {
        y.fill_zero();
        gemm::par_gemm_nn(pool, &w, &x, &mut y);
    });

    // ---- backward by data --------------------------------------------------
    let mut dxb = BlockedActivations::zeros(c, n, blk.bc, blk.bn);
    let t_bwd_this = time_it(1, iters, || {
        dxb.as_mut_slice().fill(0.0);
        gemm::fc_backward_data(pool, &wb, &dyb, &mut dxb);
    });
    let mut dx = Matrix::zeros(c, n);
    let t_bwd_flat = time_it(1, iters, || {
        dx.fill_zero();
        gemm::par_gemm_tn(pool, &w, &dy, &mut dx);
    });

    // ---- backward by weights ----------------------------------------------
    let mut dwb = BlockedWeights::zeros(k, c, blk);
    let t_upd_this = time_it(1, iters, || {
        dwb.as_mut_slice().fill(0.0);
        gemm::fc_backward_weights(pool, &xb, &dyb, &mut dwb);
    });
    let mut dw = Matrix::zeros(k, c);
    let t_upd_flat = time_it(1, iters, || {
        dw.fill_zero();
        gemm::par_gemm_nt(pool, &dy, &x, &mut dw);
    });

    // No-batch-reduce variant only differs structurally on the forward; for
    // the backward passes reuse the blocked kernels with per-panel calls
    // approximated by the same measurement (panel reload effect is in fwd).
    [
        PassResult {
            gflops: [
                flops / t_fwd_this / 1e9,
                flops / t_fwd_nobr / 1e9,
                flops / t_fwd_flat / 1e9,
            ],
        },
        PassResult {
            gflops: [
                flops / t_bwd_this / 1e9,
                flops / t_bwd_this / 1e9 * (t_fwd_this / t_fwd_nobr),
                flops / t_bwd_flat / 1e9,
            ],
        },
        PassResult {
            gflops: [
                flops / t_upd_this / 1e9,
                flops / t_upd_this / 1e9 * (t_fwd_this / t_fwd_nobr),
                flops / t_upd_flat / 1e9,
            ],
        },
    ]
}

/// Blocked forward *without* batch-reduce: one microkernel call per
/// reduction panel, so the C accumulator is re-loaded/stored `Cb` times.
fn fc_forward_no_batch_reduce(
    pool: &ThreadPool,
    w: &BlockedWeights,
    x: &BlockedActivations,
    y: &mut BlockedActivations,
) {
    let d = PanelDims {
        bn: x.bn,
        bc: x.bc,
        bk: w.blk.bk,
    };
    let (kb, cb, nb) = (w.kb(), w.cb(), x.nb());
    let isa = detect_isa();
    let panel = d.bn * d.bk;
    let y_ptr = SendPtr(y.as_mut_slice().as_mut_ptr());
    pool.parallel_for(kb * nb, |_tid, range| {
        for blk_idx in range {
            let (ibn, ibk) = (blk_idx / kb, blk_idx % kb);
            let y_off = (ibk * nb + ibn) * panel;
            for ibc in 0..cb {
                let wp = [w.block(ibk, ibc).as_ptr()];
                let xp = [x.block_ptr(ibc, ibn)];
                // SAFETY: disjoint output panels per thread.
                unsafe { brgemm_fwd(isa, &wp, &xp, y_ptr.get().add(y_off), d) };
            }
        }
    });
}

#[derive(Clone, Copy)]
struct SendPtr(*mut f32);
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}
impl SendPtr {
    fn get(self) -> *mut f32 {
        self.0
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    header(
        "Figure 5: MLP training kernel performance (single socket)",
        "Paper: this-work ≈72% of peak, FB blocked ≈75%, PyTorch flat ≈61%.",
    );
    let pool = ThreadPool::with_default_parallelism();
    let (n, sizes, iters) = if opts.smoke {
        // CI smoke: exercises every kernel path, measures nothing useful.
        (64usize, vec![64usize], 1usize)
    } else if opts.paper_scale {
        (1024, vec![1024, 2048, 4096], 2)
    } else {
        (256, vec![512, 1024], 3)
    };

    let mut t = Table::new(&[
        "C=K",
        "pass",
        "this work GF/s",
        "no batch-reduce GF/s*",
        "flat GEMM GF/s",
        "flat/this",
    ]);
    let mut ratio_acc = 0.0;
    let mut ratio_n = 0;
    for &ck in &sizes {
        let results = bench_config(&pool, n, ck, ck, iters);
        for (pass, r) in ["FWD", "BWD_D", "BWD_W"].iter().zip(&results) {
            t.row(vec![
                ck.to_string(),
                pass.to_string(),
                format!("{:.2}", r.gflops[0]),
                format!("{:.2}", r.gflops[1]),
                format!("{:.2}", r.gflops[2]),
                format!("{:.2}", r.gflops[2] / r.gflops[0]),
            ]);
            ratio_acc += r.gflops[2] / r.gflops[0];
            ratio_n += 1;
        }
    }
    t.print();
    println!("  * BWD rows of the no-batch-reduce column are extrapolated from the");
    println!("    measured FWD ratio (only the forward kernel differs structurally).");
    let mean_ratio = ratio_acc / ratio_n as f64;
    println!(
        "\nMean flat/this-work ratio: {mean_ratio:.2} (paper: {:.2} — flat at 61% vs 72% of peak)",
        paper::fig5::PYTORCH_EFF / paper::fig5::THIS_WORK_EFF
    );
    println!("ISA in use: {:?}", detect_isa());
}
