//! Lookahead-prefetch benchmark — forward-exchange volume with and
//! without the dist trainer's [`Prefetch::Lookahead`] pipeline, swept
//! over Zipf skew × window depth.
//!
//! The naive forward alltoall ships one pooled `E`-float bag per sample
//! per table regardless of how skewed the indices are. The lookahead
//! pipeline ships each *unique* row once per window and pools locally,
//! so its traffic shrinks with skew (hot rows repeat within a slice) and
//! with window depth (rows stay cached across the window). Both paths
//! run the same model/batches/seed under the overlapped CCL-style
//! schedule with a shared [`WireStats`], so the volumes are measured,
//! not modeled: row fetches land in the `prefetch_bytes` bucket (tagged
//! `TAG_PREFETCH`) while the pooled forward + backward exchanges land in
//! `alltoall_bytes`. The backward exchange is byte-identical in both
//! modes, so `naive.alltoall_bytes - prefetch.alltoall_bytes` isolates
//! the naive *forward* volume the pipeline replaces. Gates:
//!
//! - prefetched loss trajectories are **bitwise identical** to naive on
//!   every rank, for every (skew, window) cell — prefetch moves bytes,
//!   never bits;
//! - allreduce traffic is byte-identical between the two modes (the data
//!   plane outside the forward exchange is untouched);
//! - at full scale, the forward-volume ratio is **≥ 2×** for every skew
//!   at window ≥ 4 (ISSUE 7's acceptance bar).
//!
//! Writes `results/BENCH_prefetch.json`, self-validated against
//! [`validate_bench_prefetch_json`].

use dlrm_bench::{fmt_time, header, validate_bench_prefetch_json, HarnessOpts, Table};
use dlrm_comm::instrument::{WireSnapshot, WireStats};
use dlrm_comm::nonblocking::{create_channel_worlds_with_opts, Backend, ProgressEngine};
use dlrm_comm::world::CommWorld;
use dlrm_data::{DlrmConfig, IndexDistribution, LookaheadWindow, MiniBatch};
use dlrm_dist::distributed::{DistDlrm, DistOptions, Schedule};
use dlrm_dist::exchange::ExchangeStrategy;
use dlrm_dist::prefetch::Prefetch;
use dlrm_tensor::init::seeded_rng;
use std::sync::Arc;
use std::time::Instant;

const RANKS: usize = 4;
const BUCKET_CAP: usize = 16 * 1024;
const ZIPF_S: [f64; 3] = [1.05, 1.2, 1.4];

struct BenchShape {
    rows: u64,
    global_n: usize,
    steps: usize,
    windows: &'static [usize],
}

fn shape(smoke: bool) -> BenchShape {
    if smoke {
        BenchShape {
            rows: 512,
            global_n: 128,
            steps: 6,
            windows: &[1, 2, 4],
        }
    } else {
        BenchShape {
            rows: 65_536,
            global_n: 16_384,
            steps: 10,
            windows: &[1, 2, 4, 8],
        }
    }
}

/// One lookup per table: the paper's tables are wide and the skew story
/// is per-row, so L=1 makes the unique-row arithmetic transparent.
fn bench_cfg(rows: u64) -> DlrmConfig {
    let mut cfg = DlrmConfig::small();
    cfg.dense_features = 16;
    cfg.bottom_mlp = vec![64, 32];
    cfg.emb_dim = 32;
    cfg.num_tables = 8;
    cfg.table_rows = vec![rows; 8];
    cfg.lookups_per_table = 1;
    cfg.top_mlp = vec![64, 1];
    cfg
}

struct Run {
    /// Per-rank per-step loss bit patterns.
    losses: Vec<Vec<u64>>,
    /// Wire bytes over the whole run, all ranks. No warmup window: byte
    /// counts are deterministic and the lookahead pipeline's fetch work
    /// for a step spans earlier steps, so whole-run totals are the only
    /// attribution that is exact for both modes.
    wire: WireSnapshot,
    /// Mean per-rank wall seconds per step.
    step_s: f64,
}

fn run_once(cfg: &DlrmConfig, batches: &[MiniBatch], prefetch: Prefetch) -> Run {
    let opts = DistOptions {
        strategy: ExchangeStrategy::CclAlltoall,
        seed: 42,
        threads_per_rank: 1,
        schedule: Schedule::Overlapped,
        bucket_cap_bytes: BUCKET_CAP,
        prefetch,
        ..Default::default()
    };
    let backend = Backend::CclLike { workers: 2 };
    let wire_stats = Arc::new(WireStats::new());
    let comms = CommWorld::create_with_opts(RANKS, None, Some(Arc::clone(&wire_stats)));
    let worlds = std::sync::Mutex::new(create_channel_worlds_with_opts(
        RANKS,
        backend,
        None,
        Some(Arc::clone(&wire_stats)),
    ));
    let per_rank: Vec<(Vec<u64>, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let worlds = &worlds;
                let opts = &opts;
                s.spawn(move || {
                    let me = comm.rank();
                    let engine = {
                        let channels = std::mem::take(&mut worlds.lock().unwrap()[me]);
                        ProgressEngine::new(backend, channels)
                    };
                    let mut model = DistDlrm::new(cfg, comm, Some(engine), opts);
                    model.comm_barrier();
                    let t0 = Instant::now();
                    let losses: Vec<u64> = match prefetch {
                        Prefetch::Off => batches
                            .iter()
                            .map(|b| model.train_step(b, 0.05).to_bits())
                            .collect(),
                        Prefetch::Lookahead { window } => {
                            let mut win = LookaheadWindow::new(batches, window);
                            let mut out = Vec::with_capacity(batches.len());
                            while !win.is_finished() {
                                out.push(model.train_step_lookahead(&win, 0.05).to_bits());
                                win.advance();
                            }
                            out
                        }
                    };
                    model.comm_barrier();
                    (losses, t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });
    let step_s =
        per_rank.iter().map(|r| r.1).sum::<f64>() / (per_rank.len() * batches.len()) as f64;
    Run {
        losses: per_rank.into_iter().map(|r| r.0).collect(),
        wire: wire_stats.snapshot(),
        step_s,
    }
}

struct Cell {
    zipf_s: f64,
    window: usize,
    naive_forward_bytes: u64,
    fetch_bytes: u64,
    ratio: f64,
    naive_step_s: f64,
    prefetch_step_s: f64,
}

fn main() {
    let opts = HarnessOpts::from_args();
    let sh = shape(opts.smoke);
    let cfg = bench_cfg(sh.rows);
    header(
        "Lookahead prefetch: forward-exchange volume vs Zipf skew x window (measured)",
        "Same model/batches/seed, overlapped CCL schedule; row fetches\n\
         counted in a separate wire bucket from the pooled exchanges.",
    );

    let mut cells: Vec<Cell> = Vec::new();
    let mut all_bitwise = true;
    for s in ZIPF_S {
        let batches: Vec<MiniBatch> = (0..sh.steps)
            .map(|i| {
                MiniBatch::random(
                    &cfg,
                    sh.global_n,
                    IndexDistribution::Zipf { s },
                    &mut seeded_rng(7_000 + i as u64, 5),
                )
            })
            .collect();
        // The naive volume is window-independent: one run per skew.
        let naive = run_once(&cfg, &batches, Prefetch::Off);
        assert_eq!(
            naive.wire.prefetch_bytes, 0,
            "naive run must not fetch rows"
        );
        for &window in sh.windows {
            let pref = run_once(&cfg, &batches, Prefetch::Lookahead { window });
            all_bitwise &= naive.losses == pref.losses;
            assert_eq!(
                naive.losses, pref.losses,
                "s={s} W={window}: prefetched losses must be bitwise identical to naive"
            );
            assert_eq!(
                naive.wire.allreduce_bytes(),
                pref.wire.allreduce_bytes(),
                "s={s} W={window}: allreduce traffic must be untouched by prefetch"
            );
            // The backward alltoall is byte-identical in both modes, so the
            // difference in the alltoall bucket is exactly the naive
            // forward exchange the fetch pipeline replaced.
            assert!(
                pref.wire.alltoall_bytes < naive.wire.alltoall_bytes,
                "s={s} W={window}: prefetch must remove the pooled forward alltoall"
            );
            let naive_forward = naive.wire.alltoall_bytes - pref.wire.alltoall_bytes;
            let ratio = naive_forward as f64 / pref.wire.prefetch_bytes.max(1) as f64;
            cells.push(Cell {
                zipf_s: s,
                window,
                naive_forward_bytes: naive_forward,
                fetch_bytes: pref.wire.prefetch_bytes,
                ratio,
                naive_step_s: naive.step_s,
                prefetch_step_s: pref.step_s,
            });
        }
    }

    let min_ratio_deep = cells
        .iter()
        .filter(|c| c.window >= 4)
        .map(|c| c.ratio)
        .fold(f64::INFINITY, f64::min);
    if !opts.smoke {
        assert!(
            min_ratio_deep >= 2.0,
            "full scale: forward-volume reduction at window >= 4 must be >= 2x, got {min_ratio_deep:.3}x"
        );
    }

    let mut t = Table::new(&[
        "zipf s",
        "window",
        "naive fwd bytes",
        "fetch bytes",
        "ratio",
        "naive step",
        "prefetch step",
    ]);
    for c in &cells {
        t.row(vec![
            format!("{:.2}", c.zipf_s),
            c.window.to_string(),
            c.naive_forward_bytes.to_string(),
            c.fetch_bytes.to_string(),
            format!("{:.2}x", c.ratio),
            fmt_time(c.naive_step_s),
            fmt_time(c.prefetch_step_s),
        ]);
    }
    t.print();
    println!("\nlosses bitwise identical across every cell: {all_bitwise}");
    println!(
        "min forward-volume ratio at window >= 4: {min_ratio_deep:.2}x (gate: >= 2x at full scale)"
    );

    let sweep_json: Vec<String> = cells
        .iter()
        .map(|c| {
            format!(
                "    {{\"zipf_s\": {:.2}, \"window\": {}, \"naive_forward_alltoall_bytes\": {}, \"prefetch_fetch_bytes\": {}, \"forward_bytes_ratio\": {:.4}, \"naive_step_s\": {:.6}, \"prefetch_step_s\": {:.6}}}",
                c.zipf_s,
                c.window,
                c.naive_forward_bytes,
                c.fetch_bytes,
                c.ratio,
                c.naive_step_s,
                c.prefetch_step_s,
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"prefetch\",\n  \"smoke\": {},\n  \"config\": {{\"ranks\": {RANKS}, \"tables\": {}, \"rows_per_table\": {}, \"emb_dim\": {}, \"lookups_per_table\": {}, \"global_batch\": {}, \"steps\": {}, \"strategy\": \"ccl_alltoall\", \"schedule\": \"overlapped\", \"bucket_cap_bytes\": {BUCKET_CAP}}},\n  \"sweep\": [\n{}\n  ],\n  \"min_ratio_window_ge_4\": {:.4},\n  \"losses_bitwise_identical\": {}\n}}\n",
        opts.smoke,
        cfg.num_tables,
        sh.rows,
        cfg.emb_dim,
        cfg.lookups_per_table,
        sh.global_n,
        sh.steps,
        sweep_json.join(",\n"),
        min_ratio_deep,
        all_bitwise,
    );
    validate_bench_prefetch_json(&json).expect("self-validation of artifact schema");
    let path = dlrm_bench::write_artifact("BENCH_prefetch.json", &json);
    println!("\nwrote {}", path.display());
    if opts.json {
        println!("{json}");
    }
}
