//! Wire-precision benchmark — FP32 vs BF16 vs INT8 vs adaptive on-wire
//! payloads for the hybrid-parallel data plane (the comm-side half of the
//! paper's 16-bit outlook, Figure 9's "what if the wire were narrower"
//! contrast, extended to error-bounded INT8).
//!
//! Runs the same model, batches and seed four times under the overlapped
//! CCL-style schedule: FP32 everywhere, `WireConfig::all(Bf16)`, a fixed
//! headered-INT8 gradient allreduce, and the adaptive error-bounded
//! policy ([`AllreduceWire::Adaptive`]). The INT8 and adaptive runs keep
//! the embedding alltoalls at FP32 so the measurement isolates gradient
//! allreduce traffic. A single [`WireStats`] shared by the blocking world
//! and the engine's channel worlds counts bytes-on-wire (scale headers
//! included) per collective class. Gates:
//!
//! - BF16 alltoall and allreduce bytes are **exactly half** of FP32 (same
//!   message schedule, 2-byte vs 4-byte elements);
//! - headered INT8 allreduce payload bytes are **exactly a quarter** of
//!   FP32, and header-inclusive bytes land in (0.25, 0.26] of FP32;
//! - the adaptive run settles on headerless shared-scale INT8 for every
//!   post-warmup bucket: allreduce bytes **exactly a quarter** of FP32
//!   with **zero** header bytes, for the headline 4.0x reduction;
//! - a representable (small-integer) payload crosses the BF16 wire
//!   **bitwise unchanged** vs the FP32 wire for both allreduce and
//!   alltoall — round-to-nearest-even is the only error source, and it is
//!   zero on representable values;
//! - every compressed loss trajectory stays within a small band of FP32.
//!
//! Writes `results/BENCH_wire_precision.json`, self-validated against
//! [`validate_bench_wire_precision_json`].

use dlrm_bench::{fmt_time, header, validate_bench_wire_precision_json, HarnessOpts, Table};
use dlrm_clustersim::timeline::{simulate_iteration, RunMode, SimParams};
use dlrm_clustersim::{Calibration, Cluster, Strategy};
use dlrm_comm::collectives;
use dlrm_comm::instrument::{OpKind, TimingRecorder, WireSnapshot, WireStats};
use dlrm_comm::nonblocking::{create_channel_worlds_with_opts, Backend, ProgressEngine};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_dist::distributed::{AllreduceWire, DistDlrm, DistOptions, Schedule, WireConfig};
use dlrm_dist::exchange::ExchangeStrategy;
use dlrm_dist::wirepolicy::PolicyStats;
use dlrm_tensor::init::seeded_rng;
use std::sync::Arc;
use std::time::Instant;

const RANKS: usize = 4;
/// Small enough for several buckets on the bench model.
const BUCKET_CAP: usize = 16 * 1024;
/// Per-element absolute error bound handed to the adaptive policy.
const ADAPTIVE_ERROR_BOUND: f32 = 0.05;

struct BenchShape {
    local_n: usize,
    warmup: usize,
    steps: usize,
}

fn shape(smoke: bool) -> BenchShape {
    if smoke {
        BenchShape {
            local_n: 8,
            warmup: 1,
            steps: 4,
        }
    } else {
        BenchShape {
            local_n: 32,
            warmup: 3,
            steps: 20,
        }
    }
}

fn bench_cfg(paper_scale: bool) -> DlrmConfig {
    let mut cfg = DlrmConfig::small();
    cfg.dense_features = 16;
    cfg.bottom_mlp = vec![64, 32];
    cfg.emb_dim = 32;
    cfg.num_tables = 8;
    cfg.table_rows = vec![1000; 8];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![64, 1];
    if paper_scale {
        cfg.bottom_mlp = vec![512, 128];
        cfg.emb_dim = 128;
        cfg.table_rows = vec![20_000; 8];
        cfg.top_mlp = vec![1024, 256, 1];
    }
    cfg
}

struct WireRun {
    /// Per-rank per-step losses.
    losses: Vec<Vec<f64>>,
    /// Wire bytes over the measured (post-warmup) steps, all ranks.
    wire: WireSnapshot,
    /// Mean per-rank alltoall framework+wait seconds per measured step.
    exchange_s_per_step: f64,
    /// Mean per-rank wall seconds over the measured steps.
    wall_s: f64,
    /// Adaptive-policy decision counts (rank 0; asserted identical on all
    /// ranks). `None` for fixed-wire runs.
    policy: Option<PolicyStats>,
}

/// One measured run at the given wire config: same model/batches/seed,
/// overlapped CCL-style schedule, shared wire counters across the blocking
/// world and every engine channel world.
fn run_wire(cfg: &DlrmConfig, batches: &[MiniBatch], warmup: usize, wire: WireConfig) -> WireRun {
    let opts = DistOptions {
        strategy: ExchangeStrategy::CclAlltoall,
        seed: 42,
        threads_per_rank: 1,
        schedule: Schedule::Overlapped,
        bucket_cap_bytes: BUCKET_CAP,
        wire,
        ..Default::default()
    };
    let backend = Backend::CclLike { workers: 2 };
    let wire_stats = Arc::new(WireStats::new());
    let comms = CommWorld::create_with_opts(RANKS, None, Some(Arc::clone(&wire_stats)));
    let worlds = std::sync::Mutex::new(create_channel_worlds_with_opts(
        RANKS,
        backend,
        None,
        Some(Arc::clone(&wire_stats)),
    ));
    let mut per_rank: Vec<(Vec<f64>, f64, f64, Option<PolicyStats>)> = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let worlds = &worlds;
                let wire_stats = &wire_stats;
                let opts = &opts;
                s.spawn(move || {
                    let me = comm.rank();
                    let engine = {
                        let channels = std::mem::take(&mut worlds.lock().unwrap()[me]);
                        ProgressEngine::new(backend, channels)
                    };
                    let mut model = DistDlrm::new(cfg, comm, Some(engine), opts);
                    let rec = Arc::new(TimingRecorder::new());
                    model.set_recorder(Some(Arc::clone(&rec)));
                    for b in &batches[..warmup] {
                        model.train_step(b, 0.05);
                    }
                    // Count only steady-state traffic: every rank parks at
                    // the barrier, rank 0 zeroes the shared counters.
                    model.comm_barrier();
                    if me == 0 {
                        wire_stats.reset();
                    }
                    rec.reset();
                    model.comm_barrier();
                    let t0 = Instant::now();
                    let losses: Vec<f64> = batches[warmup..]
                        .iter()
                        .map(|b| model.train_step(b, 0.05))
                        .collect();
                    model.comm_barrier();
                    let wall_s = t0.elapsed().as_secs_f64();
                    let snap = rec.snapshot();
                    let exchange_s = snap
                        .get(&OpKind::AlltoallFramework)
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(0.0)
                        + snap
                            .get(&OpKind::AlltoallWait)
                            .map(|d| d.as_secs_f64())
                            .unwrap_or(0.0);
                    (losses, exchange_s, wall_s, model.wire_policy_stats())
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });
    let steps = batches.len() - warmup;
    let exchange_s_per_step =
        per_rank.iter().map(|r| r.1).sum::<f64>() / (per_rank.len() * steps) as f64;
    let wall_s = per_rank.iter().map(|r| r.2).sum::<f64>() / per_rank.len() as f64;
    // Adaptive decisions are pure functions of the rank-identical reduced
    // gradient, so the per-rank counters must agree exactly.
    let policy = per_rank[0].3;
    for (rk, r) in per_rank.iter().enumerate() {
        assert_eq!(r.3, policy, "rank {rk} diverged on adaptive decisions");
    }
    WireRun {
        losses: per_rank
            .iter_mut()
            .map(|r| std::mem::take(&mut r.0))
            .collect(),
        wire: wire_stats.snapshot(),
        exchange_s_per_step,
        wall_s,
        policy,
    }
}

/// Representable-payload gate: small integers are exact in BF16, so the
/// BF16 wire must reproduce the FP32 wire bitwise for both allreduce and
/// alltoall.
fn representable_bitwise_equal() -> bool {
    let run = |wirep: WirePrecision| -> Vec<(Vec<u32>, Vec<u32>)> {
        CommWorld::run(RANKS, |comm| {
            let me = comm.rank();
            let mut data: Vec<f32> = (0..64).map(|j| ((me * 7 + j) % 32) as f32 - 16.0).collect();
            collectives::allreduce_sum_wire(&comm, &mut data, wirep);
            let send: Vec<Vec<f32>> = (0..comm.nranks())
                .map(|dst| {
                    (0..24)
                        .map(|j| ((me * 13 + dst * 5 + j) % 64) as f32 - 32.0)
                        .collect()
                })
                .collect();
            let recv = collectives::alltoall_wire(&comm, send, wirep);
            (
                data.iter().map(|x| x.to_bits()).collect(),
                recv.iter()
                    .flat_map(|c| c.iter().map(|x| x.to_bits()))
                    .collect(),
            )
        })
    };
    run(WirePrecision::Fp32) == run(WirePrecision::Bf16)
}

fn max_loss_delta(fp: &WireRun, bf: &WireRun) -> f64 {
    fp.losses
        .iter()
        .flatten()
        .zip(bf.losses.iter().flatten())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let cfg = bench_cfg(opts.paper_scale);
    let sh = shape(opts.smoke);
    header(
        "Wire precision: FP32 / BF16 / INT8 / adaptive payloads (measured)",
        "Same model/batches/seed, overlapped CCL schedule; wire byte\n\
         counters shared across the blocking world and engine channels.\n\
         INT8 and adaptive runs compress only the gradient allreduce.",
    );

    let gn = sh.local_n * RANKS;
    let batches: Vec<MiniBatch> = (0..sh.warmup + sh.steps)
        .map(|i| {
            MiniBatch::random(
                &cfg,
                gn,
                IndexDistribution::Uniform,
                &mut seeded_rng(4200 + i as u64, 5),
            )
        })
        .collect();

    let fp = run_wire(&cfg, &batches, sh.warmup, WireConfig::default());
    let bf = run_wire(
        &cfg,
        &batches,
        sh.warmup,
        WireConfig::all(WirePrecision::Bf16),
    );
    // Alltoalls stay FP32 so the INT8 tiers are measured on the gradient
    // allreduce in isolation.
    let i8r = run_wire(
        &cfg,
        &batches,
        sh.warmup,
        WireConfig {
            allreduce: AllreduceWire::Fixed(WirePrecision::Int8),
            ..WireConfig::default()
        },
    );
    let ad = run_wire(
        &cfg,
        &batches,
        sh.warmup,
        WireConfig {
            allreduce: AllreduceWire::Adaptive {
                error_bound: ADAPTIVE_ERROR_BOUND,
            },
            ..WireConfig::default()
        },
    );

    // --- byte gates ---------------------------------------------------
    let a2a_ratio = bf.wire.alltoall_bytes as f64 / fp.wire.alltoall_bytes as f64;
    let ar_ratio = bf.wire.allreduce_bytes() as f64 / fp.wire.allreduce_bytes() as f64;
    assert_eq!(
        bf.wire.alltoall_bytes * 2,
        fp.wire.alltoall_bytes,
        "BF16 alltoall traffic must be exactly half of FP32"
    );
    assert_eq!(
        bf.wire.allreduce_bytes() * 2,
        fp.wire.allreduce_bytes(),
        "BF16 allreduce traffic must be exactly half of FP32"
    );
    assert!(
        (0.45..=0.55).contains(&a2a_ratio) && (0.45..=0.55).contains(&ar_ratio),
        "wire ratios out of band: alltoall {a2a_ratio:.3}, allreduce {ar_ratio:.3}"
    );

    // Headered INT8: payload is exactly a quarter of FP32; the 4-byte
    // per-message scale headers push the on-wire ratio just above 0.25.
    assert_eq!(
        i8r.wire.alltoall_bytes, fp.wire.alltoall_bytes,
        "INT8 run keeps alltoalls at FP32"
    );
    assert_eq!(
        (i8r.wire.allreduce_bytes() - i8r.wire.header_bytes) * 4,
        fp.wire.allreduce_bytes(),
        "headered INT8 allreduce payload must be exactly a quarter of FP32"
    );
    let i8_ar_ratio = i8r.wire.allreduce_bytes() as f64 / fp.wire.allreduce_bytes() as f64;
    assert!(
        0.25 < i8_ar_ratio && i8_ar_ratio <= 0.26,
        "headered INT8 allreduce ratio out of band: {i8_ar_ratio:.4}"
    );

    // Adaptive: every post-warmup bucket must have earned headerless
    // shared-scale INT8, giving the headline exact 4.0x reduction.
    assert_eq!(
        ad.wire.alltoall_bytes, fp.wire.alltoall_bytes,
        "adaptive run keeps alltoalls at FP32"
    );
    assert_eq!(
        ad.wire.header_bytes, 0,
        "warm adaptive buckets ship pre-agreed scales, no headers"
    );
    assert_eq!(
        ad.wire.allreduce_bytes() * 4,
        fp.wire.allreduce_bytes(),
        "adaptive allreduce traffic must be exactly a quarter of FP32"
    );
    let ad_reduction = fp.wire.allreduce_bytes() as f64 / ad.wire.allreduce_bytes() as f64;
    let ad_stats = ad.policy.expect("adaptive run records policy decisions");
    assert!(
        ad_stats.int8 > 0,
        "adaptive policy never picked INT8: {ad_stats:?}"
    );

    // --- precision gates ----------------------------------------------
    let loss_delta = max_loss_delta(&fp, &bf);
    assert!(
        loss_delta < 5e-2,
        "BF16 loss trajectory drifted {loss_delta} from FP32"
    );
    let i8_loss_delta = max_loss_delta(&fp, &i8r);
    assert!(
        i8_loss_delta < 5e-2,
        "INT8 loss trajectory drifted {i8_loss_delta} from FP32"
    );
    let ad_loss_delta = max_loss_delta(&fp, &ad);
    assert!(
        ad_loss_delta < 5e-2,
        "adaptive loss trajectory drifted {ad_loss_delta} from FP32"
    );
    let representable_ok = representable_bitwise_equal();
    assert!(
        representable_ok,
        "representable payloads must cross the BF16 wire bitwise unchanged"
    );

    let mut t = Table::new(&[
        "wire",
        "a2a bytes",
        "ar bytes",
        "hdr bytes",
        "total bytes",
        "msgs",
        "exchange/step",
        "wall",
    ]);
    for (label, r) in [
        ("fp32", &fp),
        ("bf16", &bf),
        ("int8", &i8r),
        ("adaptive", &ad),
    ] {
        t.row(vec![
            label.to_string(),
            r.wire.alltoall_bytes.to_string(),
            r.wire.allreduce_bytes().to_string(),
            r.wire.header_bytes.to_string(),
            r.wire.total_bytes().to_string(),
            r.wire.messages.to_string(),
            fmt_time(r.exchange_s_per_step),
            fmt_time(r.wall_s),
        ]);
    }
    t.print();
    println!(
        "\nbytes-on-wire vs fp32: bf16 allreduce x{ar_ratio:.3}, int8 allreduce \
         x{i8_ar_ratio:.4} (headers included), adaptive allreduce 1/{ad_reduction:.1}"
    );
    println!(
        "adaptive decisions (bound {ADAPTIVE_ERROR_BOUND}): fp32 {}, bf16 {}, int8 {}",
        ad_stats.fp32, ad_stats.bf16, ad_stats.int8
    );
    println!(
        "max loss drift vs fp32 over {} steps x {RANKS} ranks: bf16 {loss_delta:.2e}, \
         int8 {i8_loss_delta:.2e}, adaptive {ad_loss_delta:.2e}",
        sh.steps
    );
    println!("representable payloads bitwise unchanged: {representable_ok}");

    // --- analytic cross-check (cluster simulator, same shape) ---------
    let sim = |wire| {
        simulate_iteration(
            &cfg,
            &Cluster::cluster_64socket(),
            &Calibration::default(),
            SimParams {
                ranks: RANKS,
                local_n: sh.local_n,
                strategy: Strategy::CclAlltoall,
                mode: RunMode::Overlapping,
                charge_loader: false,
                wire,
            },
        )
    };
    let sim_fp = sim(WirePrecision::Fp32);
    let sim_bf = sim(WirePrecision::Bf16);
    let sim_i8 = sim(WirePrecision::Int8);
    println!(
        "analytic (clustersim, 64-socket model): comm {} -> {} (bf16) -> {} (int8) per iteration",
        fmt_time(sim_fp.comm()),
        fmt_time(sim_bf.comm()),
        fmt_time(sim_i8.comm()),
    );

    let run_json = |r: &WireRun| {
        format!(
            "{{\"alltoall_bytes\": {}, \"allreduce_bytes\": {}, \"header_bytes\": {}, \"total_bytes\": {}, \"messages\": {}, \"exchange_s_per_step\": {:.6}, \"wall_s\": {:.6}, \"final_loss_rank0\": {:.6}}}",
            r.wire.alltoall_bytes,
            r.wire.allreduce_bytes(),
            r.wire.header_bytes,
            r.wire.total_bytes(),
            r.wire.messages,
            r.exchange_s_per_step,
            r.wall_s,
            r.losses[0].last().copied().unwrap_or(f64::NAN),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"wire_precision\",\n  \"smoke\": {},\n  \"config\": {{\"ranks\": {RANKS}, \"local_n\": {}, \"steps\": {}, \"warmup\": {}, \"strategy\": \"ccl_alltoall\", \"schedule\": \"overlapped\", \"bucket_cap_bytes\": {BUCKET_CAP}, \"paper_scale\": {}}},\n  \"fp32\": {},\n  \"bf16\": {},\n  \"int8\": {},\n  \"adaptive\": {},\n  \"alltoall_bytes_ratio\": {:.4},\n  \"allreduce_bytes_ratio\": {:.4},\n  \"int8_allreduce_bytes_ratio\": {:.4},\n  \"adaptive_allreduce_reduction_x\": {:.4},\n  \"adaptive_error_bound\": {},\n  \"adaptive_decisions\": {{\"fp32\": {}, \"bf16\": {}, \"int8\": {}}},\n  \"max_loss_delta\": {:.6e},\n  \"int8_max_loss_delta\": {:.6e},\n  \"adaptive_max_loss_delta\": {:.6e},\n  \"representable_bitwise_equal\": {},\n  \"analytic\": {{\"fp32_comm_s\": {:.6}, \"bf16_comm_s\": {:.6}, \"int8_comm_s\": {:.6}, \"fp32_total_s\": {:.6}, \"bf16_total_s\": {:.6}, \"int8_total_s\": {:.6}}}\n}}\n",
        opts.smoke,
        sh.local_n,
        sh.steps,
        sh.warmup,
        opts.paper_scale,
        run_json(&fp),
        run_json(&bf),
        run_json(&i8r),
        run_json(&ad),
        a2a_ratio,
        ar_ratio,
        i8_ar_ratio,
        ad_reduction,
        ADAPTIVE_ERROR_BOUND,
        ad_stats.fp32,
        ad_stats.bf16,
        ad_stats.int8,
        loss_delta,
        i8_loss_delta,
        ad_loss_delta,
        representable_ok,
        sim_fp.comm(),
        sim_bf.comm(),
        sim_i8.comm(),
        sim_fp.total(),
        sim_bf.total(),
        sim_i8.total(),
    );
    validate_bench_wire_precision_json(&json).expect("self-validation of artifact schema");
    let path = dlrm_bench::write_artifact("BENCH_wire_precision.json", &json);
    println!("\nwrote {}", path.display());
    if opts.json {
        println!("{json}");
    }
}
