//! Wire-precision benchmark — FP32 vs BF16 on-wire payloads for the
//! hybrid-parallel data plane (the comm-side half of the paper's 16-bit
//! outlook, Figure 9's "what if the wire were half as wide" contrast).
//!
//! Runs the same model, batches and seed twice under the overlapped
//! CCL-style schedule: once with [`WirePrecision::Fp32`] on every
//! collective and once with `WireConfig::all(Bf16)`. A single
//! [`WireStats`] shared by the blocking world and the engine's channel
//! worlds counts logical bytes-on-wire per collective class, so the run
//! reports measured alltoall/allreduce traffic, per-step exchange latency
//! and the loss trajectory delta. Gates:
//!
//! - BF16 alltoall and allreduce bytes are **exactly half** of FP32 (same
//!   message schedule, 2-byte vs 4-byte elements);
//! - a representable (small-integer) payload crosses the BF16 wire
//!   **bitwise unchanged** vs the FP32 wire for both allreduce and
//!   alltoall — round-to-nearest-even is the only error source, and it is
//!   zero on representable values;
//! - the BF16 loss trajectory stays within a small RNE-scale band of FP32.
//!
//! Writes `results/BENCH_wire_precision.json`, self-validated against
//! [`validate_bench_wire_precision_json`].

use dlrm_bench::{fmt_time, header, validate_bench_wire_precision_json, HarnessOpts, Table};
use dlrm_clustersim::timeline::{simulate_iteration, RunMode, SimParams};
use dlrm_clustersim::{Calibration, Cluster, Strategy};
use dlrm_comm::collectives;
use dlrm_comm::instrument::{OpKind, TimingRecorder, WireSnapshot, WireStats};
use dlrm_comm::nonblocking::{create_channel_worlds_with_opts, Backend, ProgressEngine};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_dist::distributed::{DistDlrm, DistOptions, Schedule, WireConfig};
use dlrm_dist::exchange::ExchangeStrategy;
use dlrm_tensor::init::seeded_rng;
use std::sync::Arc;
use std::time::Instant;

const RANKS: usize = 4;
/// Small enough for several buckets on the bench model.
const BUCKET_CAP: usize = 16 * 1024;

struct BenchShape {
    local_n: usize,
    warmup: usize,
    steps: usize,
}

fn shape(smoke: bool) -> BenchShape {
    if smoke {
        BenchShape {
            local_n: 8,
            warmup: 1,
            steps: 4,
        }
    } else {
        BenchShape {
            local_n: 32,
            warmup: 3,
            steps: 20,
        }
    }
}

fn bench_cfg(paper_scale: bool) -> DlrmConfig {
    let mut cfg = DlrmConfig::small();
    cfg.dense_features = 16;
    cfg.bottom_mlp = vec![64, 32];
    cfg.emb_dim = 32;
    cfg.num_tables = 8;
    cfg.table_rows = vec![1000; 8];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![64, 1];
    if paper_scale {
        cfg.bottom_mlp = vec![512, 128];
        cfg.emb_dim = 128;
        cfg.table_rows = vec![20_000; 8];
        cfg.top_mlp = vec![1024, 256, 1];
    }
    cfg
}

struct WireRun {
    /// Per-rank per-step losses.
    losses: Vec<Vec<f64>>,
    /// Wire bytes over the measured (post-warmup) steps, all ranks.
    wire: WireSnapshot,
    /// Mean per-rank alltoall framework+wait seconds per measured step.
    exchange_s_per_step: f64,
    /// Mean per-rank wall seconds over the measured steps.
    wall_s: f64,
}

/// One measured run at the given wire config: same model/batches/seed,
/// overlapped CCL-style schedule, shared wire counters across the blocking
/// world and every engine channel world.
fn run_wire(cfg: &DlrmConfig, batches: &[MiniBatch], warmup: usize, wire: WireConfig) -> WireRun {
    let opts = DistOptions {
        strategy: ExchangeStrategy::CclAlltoall,
        seed: 42,
        threads_per_rank: 1,
        schedule: Schedule::Overlapped,
        bucket_cap_bytes: BUCKET_CAP,
        wire,
        ..Default::default()
    };
    let backend = Backend::CclLike { workers: 2 };
    let wire_stats = Arc::new(WireStats::new());
    let comms = CommWorld::create_with_opts(RANKS, None, Some(Arc::clone(&wire_stats)));
    let worlds = std::sync::Mutex::new(create_channel_worlds_with_opts(
        RANKS,
        backend,
        None,
        Some(Arc::clone(&wire_stats)),
    ));
    let mut per_rank: Vec<(Vec<f64>, f64, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = comms
            .into_iter()
            .map(|comm| {
                let worlds = &worlds;
                let wire_stats = &wire_stats;
                let opts = &opts;
                s.spawn(move || {
                    let me = comm.rank();
                    let engine = {
                        let channels = std::mem::take(&mut worlds.lock().unwrap()[me]);
                        ProgressEngine::new(backend, channels)
                    };
                    let mut model = DistDlrm::new(cfg, comm, Some(engine), opts);
                    let rec = Arc::new(TimingRecorder::new());
                    model.set_recorder(Some(Arc::clone(&rec)));
                    for b in &batches[..warmup] {
                        model.train_step(b, 0.05);
                    }
                    // Count only steady-state traffic: every rank parks at
                    // the barrier, rank 0 zeroes the shared counters.
                    model.comm_barrier();
                    if me == 0 {
                        wire_stats.reset();
                    }
                    rec.reset();
                    model.comm_barrier();
                    let t0 = Instant::now();
                    let losses: Vec<f64> = batches[warmup..]
                        .iter()
                        .map(|b| model.train_step(b, 0.05))
                        .collect();
                    model.comm_barrier();
                    let wall_s = t0.elapsed().as_secs_f64();
                    let snap = rec.snapshot();
                    let exchange_s = snap
                        .get(&OpKind::AlltoallFramework)
                        .map(|d| d.as_secs_f64())
                        .unwrap_or(0.0)
                        + snap
                            .get(&OpKind::AlltoallWait)
                            .map(|d| d.as_secs_f64())
                            .unwrap_or(0.0);
                    (losses, exchange_s, wall_s)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("rank thread panicked"))
            .collect()
    });
    let steps = batches.len() - warmup;
    let exchange_s_per_step =
        per_rank.iter().map(|r| r.1).sum::<f64>() / (per_rank.len() * steps) as f64;
    let wall_s = per_rank.iter().map(|r| r.2).sum::<f64>() / per_rank.len() as f64;
    WireRun {
        losses: per_rank
            .iter_mut()
            .map(|r| std::mem::take(&mut r.0))
            .collect(),
        wire: wire_stats.snapshot(),
        exchange_s_per_step,
        wall_s,
    }
}

/// Representable-payload gate: small integers are exact in BF16, so the
/// BF16 wire must reproduce the FP32 wire bitwise for both allreduce and
/// alltoall.
fn representable_bitwise_equal() -> bool {
    let run = |wirep: WirePrecision| -> Vec<(Vec<u32>, Vec<u32>)> {
        CommWorld::run(RANKS, |comm| {
            let me = comm.rank();
            let mut data: Vec<f32> = (0..64).map(|j| ((me * 7 + j) % 32) as f32 - 16.0).collect();
            collectives::allreduce_sum_wire(&comm, &mut data, wirep);
            let send: Vec<Vec<f32>> = (0..comm.nranks())
                .map(|dst| {
                    (0..24)
                        .map(|j| ((me * 13 + dst * 5 + j) % 64) as f32 - 32.0)
                        .collect()
                })
                .collect();
            let recv = collectives::alltoall_wire(&comm, send, wirep);
            (
                data.iter().map(|x| x.to_bits()).collect(),
                recv.iter()
                    .flat_map(|c| c.iter().map(|x| x.to_bits()))
                    .collect(),
            )
        })
    };
    run(WirePrecision::Fp32) == run(WirePrecision::Bf16)
}

fn max_loss_delta(fp: &WireRun, bf: &WireRun) -> f64 {
    fp.losses
        .iter()
        .flatten()
        .zip(bf.losses.iter().flatten())
        .map(|(a, b)| (a - b).abs())
        .fold(0.0, f64::max)
}

fn main() {
    let opts = HarnessOpts::from_args();
    let cfg = bench_cfg(opts.paper_scale);
    let sh = shape(opts.smoke);
    header(
        "Wire precision: FP32 vs BF16 payloads on the data plane (measured)",
        "Same model/batches/seed, overlapped CCL schedule; wire byte\n\
         counters shared across the blocking world and engine channels.",
    );

    let gn = sh.local_n * RANKS;
    let batches: Vec<MiniBatch> = (0..sh.warmup + sh.steps)
        .map(|i| {
            MiniBatch::random(
                &cfg,
                gn,
                IndexDistribution::Uniform,
                &mut seeded_rng(4200 + i as u64, 5),
            )
        })
        .collect();

    let fp = run_wire(&cfg, &batches, sh.warmup, WireConfig::default());
    let bf = run_wire(
        &cfg,
        &batches,
        sh.warmup,
        WireConfig::all(WirePrecision::Bf16),
    );

    // --- byte gates ---------------------------------------------------
    let a2a_ratio = bf.wire.alltoall_bytes as f64 / fp.wire.alltoall_bytes as f64;
    let ar_ratio = bf.wire.allreduce_bytes() as f64 / fp.wire.allreduce_bytes() as f64;
    assert_eq!(
        bf.wire.alltoall_bytes * 2,
        fp.wire.alltoall_bytes,
        "BF16 alltoall traffic must be exactly half of FP32"
    );
    assert_eq!(
        bf.wire.allreduce_bytes() * 2,
        fp.wire.allreduce_bytes(),
        "BF16 allreduce traffic must be exactly half of FP32"
    );
    assert!(
        (0.45..=0.55).contains(&a2a_ratio) && (0.45..=0.55).contains(&ar_ratio),
        "wire ratios out of band: alltoall {a2a_ratio:.3}, allreduce {ar_ratio:.3}"
    );

    // --- precision gates ----------------------------------------------
    let loss_delta = max_loss_delta(&fp, &bf);
    assert!(
        loss_delta < 5e-2,
        "BF16 loss trajectory drifted {loss_delta} from FP32"
    );
    let representable_ok = representable_bitwise_equal();
    assert!(
        representable_ok,
        "representable payloads must cross the BF16 wire bitwise unchanged"
    );

    let mut t = Table::new(&[
        "wire",
        "a2a bytes",
        "ar bytes",
        "total bytes",
        "msgs",
        "exchange/step",
        "wall",
    ]);
    for (label, r) in [("fp32", &fp), ("bf16", &bf)] {
        t.row(vec![
            label.to_string(),
            r.wire.alltoall_bytes.to_string(),
            r.wire.allreduce_bytes().to_string(),
            r.wire.total_bytes().to_string(),
            r.wire.messages.to_string(),
            fmt_time(r.exchange_s_per_step),
            fmt_time(r.wall_s),
        ]);
    }
    t.print();
    println!(
        "\nbytes-on-wire: alltoall x{a2a_ratio:.3}, allreduce x{ar_ratio:.3} \
         (exactly half, by construction)"
    );
    println!(
        "max |loss_bf16 - loss_fp32| over {} steps x {RANKS} ranks: {loss_delta:.2e}",
        sh.steps
    );
    println!("representable payloads bitwise unchanged: {representable_ok}");

    // --- analytic cross-check (cluster simulator, same shape) ---------
    let sim = |wire| {
        simulate_iteration(
            &cfg,
            &Cluster::cluster_64socket(),
            &Calibration::default(),
            SimParams {
                ranks: RANKS,
                local_n: sh.local_n,
                strategy: Strategy::CclAlltoall,
                mode: RunMode::Overlapping,
                charge_loader: false,
                wire,
            },
        )
    };
    let sim_fp = sim(WirePrecision::Fp32);
    let sim_bf = sim(WirePrecision::Bf16);
    println!(
        "analytic (clustersim, 64-socket model): comm {} -> {} per iteration",
        fmt_time(sim_fp.comm()),
        fmt_time(sim_bf.comm()),
    );

    let run_json = |r: &WireRun| {
        format!(
            "{{\"alltoall_bytes\": {}, \"allreduce_bytes\": {}, \"total_bytes\": {}, \"messages\": {}, \"exchange_s_per_step\": {:.6}, \"wall_s\": {:.6}, \"final_loss_rank0\": {:.6}}}",
            r.wire.alltoall_bytes,
            r.wire.allreduce_bytes(),
            r.wire.total_bytes(),
            r.wire.messages,
            r.exchange_s_per_step,
            r.wall_s,
            r.losses[0].last().copied().unwrap_or(f64::NAN),
        )
    };
    let json = format!(
        "{{\n  \"bench\": \"wire_precision\",\n  \"smoke\": {},\n  \"config\": {{\"ranks\": {RANKS}, \"local_n\": {}, \"steps\": {}, \"warmup\": {}, \"strategy\": \"ccl_alltoall\", \"schedule\": \"overlapped\", \"bucket_cap_bytes\": {BUCKET_CAP}, \"paper_scale\": {}}},\n  \"fp32\": {},\n  \"bf16\": {},\n  \"alltoall_bytes_ratio\": {:.4},\n  \"allreduce_bytes_ratio\": {:.4},\n  \"max_loss_delta\": {:.6e},\n  \"representable_bitwise_equal\": {},\n  \"analytic\": {{\"fp32_comm_s\": {:.6}, \"bf16_comm_s\": {:.6}, \"fp32_total_s\": {:.6}, \"bf16_total_s\": {:.6}}}\n}}\n",
        opts.smoke,
        sh.local_n,
        sh.steps,
        sh.warmup,
        opts.paper_scale,
        run_json(&fp),
        run_json(&bf),
        a2a_ratio,
        ar_ratio,
        loss_delta,
        representable_ok,
        sim_fp.comm(),
        sim_bf.comm(),
        sim_fp.total(),
        sim_bf.total(),
    );
    validate_bench_wire_precision_json(&json).expect("self-validation of artifact schema");
    let path = dlrm_bench::write_artifact("BENCH_wire_precision.json", &json);
    println!("\nwrote {}", path.display());
    if opts.json {
        println!("{json}");
    }
}
