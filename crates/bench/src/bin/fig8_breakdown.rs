//! Figure 8 — single-socket time split across key ops
//! (Embeddings / MLP / Rest) before and after optimization.

use dlrm_bench::single_socket::{mlperf_scaled, run_config, small_scaled};
use dlrm_bench::{fmt_pct, header, paper, HarnessOpts, Table};

fn main() {
    let opts = HarnessOpts::from_args();
    header(
        "Figure 8: DLRM single-socket time split (Embeddings / MLP / Rest)",
        "Paper: reference is embedding-dominated; after optimization Small has\n\
         embeddings ~30% (matching MLP), MLPerf embeddings < 20%.",
    );
    let threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    let iters = if opts.paper_scale { 2 } else { 4 };

    let mut t = Table::new(&["config", "strategy", "Embeddings", "MLP", "Rest", "ms/iter"]);
    for setup in [
        small_scaled(opts.paper_scale),
        mlperf_scaled(opts.paper_scale),
    ] {
        let (cfg, dist) = setup;
        for row in run_config(&cfg, dist, threads, iters) {
            let (e, m, r) = row.split;
            t.row(vec![
                row.config.clone(),
                row.label.clone(),
                fmt_pct(e),
                fmt_pct(m),
                fmt_pct(r),
                format!("{:.1}", row.ms_per_iter),
            ]);
        }
    }
    t.print();
    let (pe, pm, pr) = paper::fig8::SMALL_OPTIMIZED;
    println!(
        "\nPaper reference points: Small optimized ≈ {}/{}/{} (E/M/R);",
        fmt_pct(pe),
        fmt_pct(pm),
        fmt_pct(pr)
    );
    println!(
        "MLPerf optimized embeddings < {}; reference bars ≥ {} embeddings.",
        fmt_pct(paper::fig8::MLPERF_OPTIMIZED_EMB_MAX),
        fmt_pct(paper::fig8::SMALL_REFERENCE_EMB_MIN)
    );
}
