//! Embedding-engine benchmark — GUPS for the paper's headline kernel
//! (Figures 7/8's embedding component) across update strategies and SIMD
//! tiers.
//!
//! Measures, on a fixed 8-thread team:
//!
//! * forward (bag-sum gather) GUPS under each ISA tier available at
//!   runtime (scalar / AVX2 / AVX-512, forced via the gemm ISA override);
//! * update GUPS for every `UpdateStrategy` × ISA tier on a uniform index
//!   stream;
//! * race-free vs bucketed on a *clustered* stream (0.1% hot rows, 90%
//!   hot) — the workload where race-free's O(NS·T) full scan loses to the
//!   plan's O(NS) bucketing;
//! * fused backward+update, full-scan vs plan-driven.
//!
//! The thread team is deliberately fixed (not `available_parallelism`):
//! race-free's redundant scan cost scales with T whether or not the host
//! has T cores, so the bucketed-vs-race-free contrast is a property of the
//! algorithm, not of the machine the bench happens to run on.
//!
//! Before timing, every optimized path is checked for numerical
//! equivalence against `UpdateStrategy::Reference` (allclose 1e-5;
//! bit-exact for the order-preserving paths) — `equivalence_ok` in the
//! artifact, and a hard assert here.
//!
//! Writes `results/BENCH_embedding.json` (schema checked by
//! `dlrm_bench::validate_bench_embedding_json`, also run by CI).

use dlrm_bench::{header, time_it, validate_bench_embedding_json, HarnessOpts, Table};
use dlrm_data::IndexDistribution;
use dlrm_kernels::embedding::rowops::available_isas;
use dlrm_kernels::embedding::{self, BagPlan, UpdateStrategy};
use dlrm_kernels::gemm::micro::{set_isa_override, Isa};
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::{assert_allclose, Matrix};

/// Fixed thread-team size (see module docs).
const THREADS: usize = 8;

struct Sizes {
    m: usize,
    e: usize,
    n: usize,
    p: usize,
    warmup: usize,
    iters: usize,
}

fn sizes(opts: &HarnessOpts) -> Sizes {
    if opts.smoke {
        Sizes {
            m: 2_000,
            e: 16,
            n: 64,
            p: 8,
            warmup: 1,
            iters: 2,
        }
    } else if opts.paper_scale {
        Sizes {
            m: 1_000_000,
            e: 64,
            n: 2048,
            p: 32,
            warmup: 2,
            iters: 7,
        }
    } else {
        Sizes {
            m: 200_000,
            e: 64,
            n: 1024,
            p: 32,
            warmup: 2,
            iters: 7,
        }
    }
}

fn isa_key(isa: Isa) -> &'static str {
    match isa {
        Isa::Scalar => "scalar",
        Isa::Avx2 => "avx2",
        Isa::Avx512 => "avx512",
    }
}

fn strategy_key(s: UpdateStrategy) -> &'static str {
    match s {
        UpdateStrategy::Reference => "reference",
        UpdateStrategy::AtomicXchg => "atomic_xchg",
        UpdateStrategy::Rtm => "rtm",
        UpdateStrategy::RaceFree => "race_free",
        UpdateStrategy::Bucketed => "bucketed",
    }
}

/// Touched table elements per second, in billions: every lookup reads (or
/// read-modify-writes) one E-long row.
fn gups(ns: usize, e: usize, secs: f64) -> f64 {
    (ns * e) as f64 / secs.max(f64::MIN_POSITIVE) / 1e9
}

struct Workload {
    indices: Vec<u32>,
    offsets: Vec<usize>,
}

fn workload(dist: IndexDistribution, s: &Sizes, seed: u64) -> Workload {
    let mut rng = seeded_rng(seed, 0);
    let indices = dist.sample_many(s.m as u64, s.n * s.p, &mut rng);
    let offsets: Vec<usize> = (0..=s.n).map(|i| i * s.p).collect();
    Workload { indices, offsets }
}

/// Numerical-equivalence gate at a small fixed size: every optimized path
/// vs Reference. Returns true (and is also hard-asserted) so the artifact
/// records the gate explicitly.
fn equivalence_gate(pool: &ThreadPool) -> bool {
    let mut rng = seeded_rng(17, 1);
    let (m, e) = (512usize, 24usize);
    let w0 = uniform(m, e, -1.0, 1.0, &mut rng);
    let dist = IndexDistribution::Clustered {
        hot_fraction: 0.01,
        hot_prob: 0.8,
    };
    let indices = dist.sample_many(m as u64, 600, &mut rng);
    let offsets: Vec<usize> = (0..=200).map(|i| i * 3).collect();
    let n = offsets.len() - 1;
    let ns = indices.len();
    let dw = uniform(ns, e, -1.0, 1.0, &mut rng);
    let dy = uniform(n, e, -1.0, 1.0, &mut rng);
    let alpha = -0.04f32;

    // Forward: optimized vs reference, bit-exact (pure sums, same order).
    let mut want_fwd = Matrix::zeros(n, e);
    embedding::forward_reference(&w0, &indices, &offsets, &mut want_fwd);
    let mut got_fwd = Matrix::zeros(n, e);
    embedding::forward(pool, &w0, &indices, &offsets, &mut got_fwd);
    assert_eq!(got_fwd.as_slice(), want_fwd.as_slice(), "forward");

    let ref_pool = ThreadPool::new(1);
    let mut want = w0.clone();
    embedding::update(
        &ref_pool,
        UpdateStrategy::Reference,
        &mut want,
        &dw,
        &indices,
        alpha,
    );
    for strat in UpdateStrategy::ALL {
        let mut got = w0.clone();
        embedding::update(pool, strat, &mut got, &dw, &indices, alpha);
        assert_allclose(got.as_slice(), want.as_slice(), 1e-5, strategy_key(strat));
        if matches!(strat, UpdateStrategy::RaceFree | UpdateStrategy::Bucketed) {
            assert_eq!(got.as_slice(), want.as_slice(), "{strat} bit-exactness");
        }
    }

    // Fused paths vs backward-then-reference.
    let mut dw_exp = Matrix::zeros(ns, e);
    embedding::backward(pool, &dy, &offsets, &mut dw_exp);
    let mut want_f = w0.clone();
    embedding::update(
        &ref_pool,
        UpdateStrategy::Reference,
        &mut want_f,
        &dw_exp,
        &indices,
        alpha,
    );
    let mut got_full = w0.clone();
    embedding::fused_backward_update(pool, &mut got_full, &dy, &indices, &offsets, alpha);
    assert_eq!(got_full.as_slice(), want_f.as_slice(), "fused full-scan");
    let mut plan = BagPlan::new();
    plan.build(pool, &indices, m);
    plan.attach_bags(pool, &offsets);
    let mut got_planned = w0.clone();
    embedding::fused_backward_update_planned(
        pool,
        &mut got_planned,
        &dy,
        &indices,
        &offsets,
        alpha,
        &plan,
    );
    assert_eq!(got_planned.as_slice(), want_f.as_slice(), "fused planned");
    true
}

fn json_map(pairs: &[(String, f64)]) -> String {
    let fields: Vec<String> = pairs
        .iter()
        .map(|(k, v)| format!("\"{k}\": {v:.4}"))
        .collect();
    format!("{{{}}}", fields.join(", "))
}

fn main() {
    let opts = HarnessOpts::from_args();
    let s = sizes(&opts);
    let tiers = available_isas();
    header(
        "Embedding engine: GUPS per strategy x ISA tier",
        "GUPS = billions of table elements touched per second. Paper context:\n\
         the EmbeddingBag kernels should run at memory bandwidth (~100 GB/s\n\
         per SKX socket, Section III-A); 1 GUPS at E=64 reads 4 GB/s.",
    );
    println!(
        "\ntable {} x {}, N={}, P={} (NS={}), {} threads, tiers {:?}",
        s.m,
        s.e,
        s.n,
        s.p,
        s.n * s.p,
        THREADS,
        tiers
    );

    let pool = ThreadPool::new(THREADS);
    let equivalence_ok = equivalence_gate(&pool);
    println!("equivalence gate: all optimized paths match Reference");

    let uni = workload(IndexDistribution::Uniform, &s, 5);
    let clu = workload(
        IndexDistribution::Clustered {
            hot_fraction: 0.001,
            hot_prob: 0.9,
        },
        &s,
        6,
    );
    let ns = uni.indices.len();
    let mut rng = seeded_rng(7, 2);
    let w0 = uniform(s.m, s.e, -0.1, 0.1, &mut rng);
    let dw = uniform(ns, s.e, -0.1, 0.1, &mut rng);
    let dy = uniform(s.n, s.e, -0.1, 0.1, &mut rng);
    let alpha = -0.01f32;

    // ---- Forward GUPS per ISA tier (uniform indices). -------------------
    let mut forward_gups: Vec<(String, f64)> = Vec::new();
    let mut out = Matrix::zeros(s.n, s.e);
    for &isa in &tiers {
        set_isa_override(Some(isa));
        let secs = time_it(s.warmup, s.iters, || {
            embedding::forward(&pool, &w0, &uni.indices, &uni.offsets, &mut out);
        });
        forward_gups.push((isa_key(isa).to_string(), gups(ns, s.e, secs)));
    }
    set_isa_override(None);
    let scalar_fwd = forward_gups[0].1;
    let best_fwd = forward_gups.iter().map(|p| p.1).fold(0.0f64, f64::max);
    let simd_ratio = best_fwd / scalar_fwd.max(f64::MIN_POSITIVE);

    let mut t = Table::new(&["kernel", "tier", "GUPS", "GB/s read"]);
    for (k, g) in &forward_gups {
        t.row(vec![
            "forward".into(),
            k.clone(),
            format!("{g:.3}"),
            format!("{:.1}", g * 4.0),
        ]);
    }
    t.print();

    // ---- Update GUPS per strategy x ISA tier (uniform indices). ---------
    let mut update_gups: Vec<(UpdateStrategy, Vec<(String, f64)>)> = Vec::new();
    for strat in UpdateStrategy::ALL {
        let mut per_tier: Vec<(String, f64)> = Vec::new();
        for &isa in &tiers {
            set_isa_override(Some(isa));
            let mut w = w0.clone();
            let secs = time_it(s.warmup, s.iters, || {
                embedding::update(&pool, strat, &mut w, &dw, &uni.indices, alpha);
            });
            per_tier.push((isa_key(isa).to_string(), gups(ns, s.e, secs)));
        }
        set_isa_override(None);
        update_gups.push((strat, per_tier));
    }

    let tier_headers: Vec<String> = tiers
        .iter()
        .map(|i| format!("{} GUPS", isa_key(*i)))
        .collect();
    let mut hdr: Vec<&str> = vec!["update strategy"];
    hdr.extend(tier_headers.iter().map(|s| s.as_str()));
    let mut t = Table::new(&hdr);
    for (strat, per_tier) in &update_gups {
        let mut row = vec![strat.to_string()];
        row.extend(per_tier.iter().map(|(_, g)| format!("{g:.3}")));
        t.row(row);
    }
    t.print();

    // ---- Clustered workload: race-free full scan vs bucketed plan. ------
    let mut w = w0.clone();
    let rf_secs = time_it(s.warmup, s.iters, || {
        embedding::update(
            &pool,
            UpdateStrategy::RaceFree,
            &mut w,
            &dw,
            &clu.indices,
            alpha,
        );
    });
    let mut w = w0.clone();
    let mut plan = BagPlan::new();
    let bu_secs = time_it(s.warmup, s.iters, || {
        plan.build(&pool, &clu.indices, s.m);
        embedding::update_bucketed(&pool, &mut w, &dw, &clu.indices, alpha, &plan);
    });
    let rf_gups = gups(ns, s.e, rf_secs);
    let bu_gups = gups(ns, s.e, bu_secs);
    let clustered_speedup = rf_secs / bu_secs.max(f64::MIN_POSITIVE);
    println!(
        "\nclustered (0.1% hot / 90%): race-free {rf_gups:.3} GUPS, bucketed {bu_gups:.3} GUPS \
         -> {clustered_speedup:.2}x (plan kills the O(NS*T) scan)"
    );

    // ---- Fused backward+update: full scan vs plan-driven (uniform). -----
    let mut w = w0.clone();
    let fused_secs = time_it(s.warmup, s.iters, || {
        embedding::fused_backward_update(&pool, &mut w, &dy, &uni.indices, &uni.offsets, alpha);
    });
    let mut w = w0.clone();
    let mut fplan = BagPlan::new();
    let planned_secs = time_it(s.warmup, s.iters, || {
        fplan.build(&pool, &uni.indices, s.m);
        fplan.attach_bags(&pool, &uni.offsets);
        embedding::fused_backward_update_planned(
            &pool,
            &mut w,
            &dy,
            &uni.indices,
            &uni.offsets,
            alpha,
            &fplan,
        );
    });
    let fused_gups = gups(ns, s.e, fused_secs);
    let planned_gups = gups(ns, s.e, planned_secs);
    println!(
        "fused: full-scan {fused_gups:.3} GUPS, planned {planned_gups:.3} GUPS ({:.2}x)",
        fused_secs / planned_secs.max(f64::MIN_POSITIVE)
    );

    // ---- Artifact. ------------------------------------------------------
    let tier_list: Vec<String> = tiers
        .iter()
        .map(|i| format!("\"{}\"", isa_key(*i)))
        .collect();
    let update_json: Vec<String> = update_gups
        .iter()
        .map(|(strat, per_tier)| format!("\"{}\": {}", strategy_key(*strat), json_map(per_tier)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"embedding\",\n  \"smoke\": {},\n  \"threads\": {THREADS},\n  \
         \"config\": {{\"rows\": {}, \"dim\": {}, \"bags\": {}, \"lookups_per_bag\": {}}},\n  \
         \"isa_tiers\": [{}],\n  \
         \"forward_gups\": {},\n  \
         \"update_gups\": {{{}}},\n  \
         \"clustered\": {{\"race_free_gups\": {rf_gups:.4}, \"bucketed_gups\": {bu_gups:.4}, \"bucketed_vs_racefree_speedup\": {clustered_speedup:.4}}},\n  \
         \"fused\": {{\"full_scan_gups\": {fused_gups:.4}, \"planned_gups\": {planned_gups:.4}}},\n  \
         \"simd_vs_scalar_forward_ratio\": {simd_ratio:.4},\n  \
         \"equivalence_ok\": {equivalence_ok}\n}}\n",
        opts.smoke,
        s.m,
        s.e,
        s.n,
        s.p,
        tier_list.join(", "),
        json_map(&forward_gups),
        update_json.join(",\n    "),
    );
    validate_bench_embedding_json(&json).expect("self-validation of the artifact schema");
    let path = dlrm_bench::write_artifact("BENCH_embedding.json", &json);
    println!("\nwrote {} (schema self-validated)", path.display());
    if opts.json {
        println!("{json}");
    }
}
