//! Figure 12 — weak-scaling speed-up and efficiency on the 64-socket
//! cluster (simulated).

use dlrm_bench::{fmt_pct, fmt_speedup, header, paper, Table};
use dlrm_clustersim::experiments::{scaling_sweep, ScalingKind};
use dlrm_clustersim::{Calibration, Cluster, RunMode};
use dlrm_data::DlrmConfig;

fn main() {
    header(
        "Figure 12: DLRM weak scaling (speed-up and efficiency, simulated cluster)",
        "Paper: Small 6.4x@8R (80%), Large 13.5x@64R (84%), MLPerf 17x@26R (65%).",
    );
    let cluster = Cluster::cluster_64socket();
    let calib = Calibration::default();

    for cfg in DlrmConfig::all_paper() {
        println!("\n--- {} (LN={}) ---", cfg.name, cfg.ln_weak);
        let pts = scaling_sweep(
            &cfg,
            &cluster,
            &calib,
            ScalingKind::Weak,
            RunMode::Overlapping,
        );
        let mut t = Table::new(&["ranks", "strategy", "ms/iter", "speedup", "efficiency"]);
        for p in &pts {
            t.row(vec![
                format!("{}R", p.ranks),
                p.strategy.to_string(),
                format!("{:.1}", p.breakdown.total() * 1e3),
                fmt_speedup(p.speedup),
                fmt_pct(p.efficiency),
            ]);
        }
        t.print();
    }
    println!(
        "\nPaper anchors: Small {}x/{}; Large {}x/{}; MLPerf {}x/{}.",
        paper::scaling::SMALL_WEAK_8R.0,
        fmt_pct(paper::scaling::SMALL_WEAK_8R.1),
        paper::scaling::LARGE_WEAK_64R.0,
        fmt_pct(paper::scaling::LARGE_WEAK_64R.1),
        paper::scaling::MLPERF_WEAK_26R.0,
        fmt_pct(paper::scaling::MLPERF_WEAK_26R.1)
    );
}
