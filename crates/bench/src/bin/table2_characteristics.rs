//! Table II — DLRM model characteristics for distributed runs.

use dlrm_bench::{header, Table};
use dlrm_dist::DistCharacteristics;

fn main() {
    // No options apply here, but parse argv so unknown flags warn
    // consistently with the other harnesses.
    let _ = dlrm_bench::HarnessOpts::from_args();
    header(
        "Table II: distributed-run characteristics (paper vs computed)",
        "Allreduce size from Eq. 1, alltoall volume from Eq. 2.",
    );
    // (name, paper: table GB, min sockets, max ranks, allreduce MB, alltoall MB)
    let paper = [
        ("Small", 2.0, 1usize, 8usize, 9.5, 15.8),
        ("Large", 384.0, 4, 64, 1047.0, 1024.0),
        ("MLPerf", 98.0, 1, 26, 9.0, 208.0),
    ];
    let rows = DistCharacteristics::paper_table();
    let mut t = Table::new(&[
        "Config",
        "Tables (paper)",
        "Tables (ours)",
        "MinSock (p/o)",
        "MaxRanks (p/o)",
        "Allreduce MB (p/o)",
        "Alltoall MB (p/o)",
    ]);
    for (row, p) in rows.iter().zip(&paper) {
        t.row(vec![
            row.name.clone(),
            format!("{:.0} GB", p.1),
            format!("{:.1} GB", row.table_bytes as f64 / 1e9),
            format!("{}/{}", p.2, row.min_sockets),
            format!("{}/{}", p.3, row.max_ranks),
            format!(
                "{:.1}/{:.1}",
                p.4,
                row.allreduce_bytes as f64 / (1 << 20) as f64
            ),
            format!(
                "{:.1}/{:.1}",
                p.5,
                row.alltoall_bytes as f64 / (1 << 20) as f64
            ),
        ]);
    }
    t.print();
    println!("\n(Min sockets computed against the 8-socket node's 192 GB/socket;");
    println!(" the paper's Large row assumes ~450 GB with runtime overheads —");
    println!(" both land on 4 sockets with usable-memory accounting.)");
}
