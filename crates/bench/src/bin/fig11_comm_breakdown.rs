//! Figure 11 — communication-time breakdown (framework vs wait, alltoall
//! vs allreduce), strong scaling, MPI vs CCL, overlap vs blocking.

use dlrm_bench::{header, Table};
use dlrm_clustersim::experiments::{backend_mode_sweep, ScalingKind};
use dlrm_clustersim::{Calibration, Cluster};
use dlrm_data::DlrmConfig;

fn main() {
    header(
        "Figure 11: communication breakdown, strong scaling (simulated)",
        "Paper artifact to look for: with the MPI backend overlapping, the\n\
         exposed allreduce is charged to the Alltoall-Wait bucket (in-order\n\
         completion); with CCL it appears where it belongs.",
    );
    let cluster = Cluster::cluster_64socket();
    let calib = Calibration::default();
    for cfg in [DlrmConfig::large(), DlrmConfig::mlperf()] {
        println!("\n--- {} ---", cfg.name);
        let rows = backend_mode_sweep(&cfg, &cluster, &calib, ScalingKind::Strong);
        let mut t = Table::new(&[
            "mode",
            "backend",
            "ranks",
            "A2A-fw ms",
            "A2A-wait ms",
            "AR-fw ms",
            "AR-wait ms",
        ]);
        for (backend, mode, ranks, b) in rows {
            t.row(vec![
                format!("{mode:?}"),
                backend.to_string(),
                format!("{ranks}R"),
                format!("{:.2}", b.alltoall_framework * 1e3),
                format!("{:.2}", b.alltoall_wait * 1e3),
                format!("{:.2}", b.allreduce_framework * 1e3),
                format!("{:.2}", b.allreduce_wait * 1e3),
            ]);
        }
        t.print();
    }
}
