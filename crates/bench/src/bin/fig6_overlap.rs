//! Figures 2/6 — overlapping the SGD allreduce with the backward GEMMs of
//! a standalone 5-layer MLP (simulated 8 CLX nodes, N=1008, C=K=1024).

use dlrm_bench::{header, paper, Table};
use dlrm_clustersim::experiments::fig6_mlp_overlap;
use dlrm_clustersim::Calibration;

fn main() {
    // No options apply here, but parse argv so unknown flags warn
    // consistently with the other harnesses.
    let _ = dlrm_bench::HarnessOpts::from_args();
    header(
        "Figure 6: MLP GEMM / SGD-communication overlap (8 CLX nodes, simulated)",
        "Communication must fit inside the GEMM bars (fully hidden).",
    );
    let bars = fig6_mlp_overlap(&Calibration::default());
    let paper_rows = [
        (
            "BWD pass",
            paper::fig6::BWD_GEMM_MS,
            paper::fig6::BWD_COMM_MS,
        ),
        (
            "UPD pass",
            paper::fig6::UPD_GEMM_MS,
            paper::fig6::UPD_COMM_MS,
        ),
    ];
    let mut t = Table::new(&[
        "pass",
        "GEMM ms (paper)",
        "GEMM ms (sim)",
        "comm ms (paper)",
        "comm ms (sim)",
        "hidden?",
    ]);
    for (bar, p) in bars.iter().zip(&paper_rows) {
        t.row(vec![
            bar.pass.to_string(),
            format!("{:.2}", p.1),
            format!("{:.2}", bar.gemm_ms),
            format!("{:.2}", p.2),
            format!("{:.2}", bar.comm_ms),
            if bar.comm_ms <= bar.gemm_ms {
                "yes".into()
            } else {
                "NO".into()
            },
        ]);
    }
    t.print();
    println!("\n(Allreduce materialized as reduce-scatter + all-gather, 4 dedicated");
    println!(" communication cores per socket, 24 compute cores — Section IV-A.)");
}
