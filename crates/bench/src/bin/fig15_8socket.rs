//! Figure 15 — strong scaling on the 8-socket twisted-hypercube
//! shared-memory node (simulated).

use dlrm_bench::{header, Table};
use dlrm_clustersim::experiments::fig15_8socket;
use dlrm_clustersim::Calibration;
use dlrm_data::DlrmConfig;

fn main() {
    header(
        "Figure 15: strong scaling on the 8-socket shared-memory node (simulated)",
        "Paper shape: alltoall does NOT improve from 4 to 8 sockets (the\n\
         generic schedule is untuned for the twisted hypercube).",
    );
    let calib = Calibration::default();
    for cfg in DlrmConfig::all_paper() {
        println!("\n--- {} (GN={}) ---", cfg.name, cfg.gn_strong);
        let bars = fig15_8socket(&cfg, &calib);
        let mut t = Table::new(&[
            "ranks",
            "compute ms",
            "allreduce ms",
            "alltoall ms",
            "total ms",
        ]);
        for b in &bars {
            t.row(vec![
                format!("{}R", b.ranks),
                format!("{:.1}", b.compute_ms),
                format!("{:.1}", b.allreduce_ms),
                format!("{:.1}", b.alltoall_ms),
                format!("{:.1}", b.compute_ms + b.allreduce_ms + b.alltoall_ms),
            ]);
        }
        t.print();
        if let (Some(b4), Some(b8)) = (
            bars.iter().find(|b| b.ranks == 4),
            bars.iter().find(|b| b.ranks == 8),
        ) {
            println!(
                "  alltoall 4R -> 8R: {:.2} -> {:.2} ms (ratio {:.2}; paper: ~flat)",
                b4.alltoall_ms,
                b8.alltoall_ms,
                b8.alltoall_ms / b4.alltoall_ms.max(1e-9)
            );
        }
    }
}
