//! Figure 9 — strong-scaling speed-up and efficiency on the 64-socket
//! cluster (simulated), all four strategies × all three configs.

use dlrm_bench::{fmt_pct, fmt_speedup, header, paper, Table};
use dlrm_clustersim::experiments::{scaling_sweep, ScalingKind};
use dlrm_clustersim::{Calibration, Cluster, RunMode};
use dlrm_data::DlrmConfig;

fn main() {
    header(
        "Figure 9: DLRM strong scaling (speed-up and efficiency, simulated cluster)",
        "Paper: Small/Large ~5-6x at 8x sockets (60-71%); MLPerf 8.5x at 26 (33%);\n\
         native alltoall >2x over scatter strategies; CCL up to 1.4x over MPI.",
    );
    let cluster = Cluster::cluster_64socket();
    let calib = Calibration::default();

    for cfg in DlrmConfig::all_paper() {
        println!("\n--- {} (GN={}) ---", cfg.name, cfg.gn_strong);
        let pts = scaling_sweep(
            &cfg,
            &cluster,
            &calib,
            ScalingKind::Strong,
            RunMode::Overlapping,
        );
        let mut t = Table::new(&["ranks", "strategy", "ms/iter", "speedup", "efficiency"]);
        for p in &pts {
            t.row(vec![
                format!("{}R", p.ranks),
                p.strategy.to_string(),
                format!("{:.1}", p.breakdown.total() * 1e3),
                fmt_speedup(p.speedup),
                fmt_pct(p.efficiency),
            ]);
        }
        t.print();
    }
    let (s, e) = paper::scaling::SMALL_STRONG_8R;
    println!(
        "\nPaper anchors: Small 8R {}x/{}; MLPerf 26R {}x/{}.",
        s,
        fmt_pct(e),
        paper::scaling::MLPERF_STRONG_26R.0,
        fmt_pct(paper::scaling::MLPERF_STRONG_26R.1)
    );
}
