//! Packed-GEMM execution-plan benchmark — what pack-once weights, blocked
//! activation residency and fused backward epilogues buy over the
//! pack-per-call execution the MLP path used before the persistent plan.
//!
//! For each layer shape × ISA tier, times the three training passes of one
//! fully-connected layer under two arms:
//!
//! * **per-call** — exactly the pre-plan optimized path: re-pack W (and
//!   X/dY) into the blocked layout on every call, allocate fresh blocked
//!   outputs, run the unfused batch-reduce kernel, unpack the result, and
//!   apply the ReLU mask / bias-gradient reduction as separate flat
//!   passes;
//! * **persistent** — the packed plan: weights packed once outside the
//!   loop, activations/gradients resident in grow-only blocked scratch
//!   (`fill_zero` + kernel, no alloc, no repack), epilogues fused into the
//!   kernel writeback. `bwd_weights` still includes the `dW` unpack the
//!   real step performs for the flat optimizer/DDP wire.
//!
//! Before timing, both arms are checked **bitwise identical** per pass
//! (`equivalence_ok` in the artifact, and a hard assert here) — the same
//! contract `crates/dlrm/tests/packed_plan_equivalence.rs` enforces at the
//! full-MLP level.
//!
//! Writes `results/BENCH_gemm.json` (schema checked by
//! `dlrm_bench::validate_bench_gemm_json`, also run by CI).

use dlrm_bench::{header, time_it, validate_bench_gemm_json, HarnessOpts, Table};
use dlrm_kernels::activations::{bias_grad_rows, relu_backward};
use dlrm_kernels::embedding::rowops::available_isas;
use dlrm_kernels::gemm::micro::{set_isa_override, Isa};
use dlrm_kernels::gemm::{self, gemm_flops};
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::{BlockedActivations, BlockedWeights, Blocking, Matrix};

/// Fixed thread-team size so per-call vs persistent is a property of the
/// algorithm, not of the host's core count.
const THREADS: usize = 8;

fn isa_key(isa: Isa) -> &'static str {
    match isa {
        Isa::Scalar => "scalar",
        Isa::Avx2 => "avx2",
        Isa::Avx512 => "avx512",
    }
}

struct Sizes {
    /// (n, c, k) per benchmarked layer.
    configs: Vec<(usize, usize, usize)>,
    warmup: usize,
    iters: usize,
}

fn sizes(opts: &HarnessOpts) -> Sizes {
    if opts.smoke {
        Sizes {
            configs: vec![(64, 64, 64)],
            warmup: 1,
            iters: 2,
        }
    } else if opts.paper_scale {
        Sizes {
            configs: vec![(1024, 1024, 1024), (1024, 2048, 2048), (1024, 4096, 4096)],
            warmup: 1,
            iters: 10,
        }
    } else {
        Sizes {
            configs: vec![(256, 512, 512), (256, 1024, 1024)],
            warmup: 2,
            iters: 20,
        }
    }
}

/// Seconds/iter for (per-call, persistent) on one pass.
struct PassTimes {
    name: &'static str,
    per_call_s: f64,
    persistent_s: f64,
}

struct TierResult {
    isa: Isa,
    passes: Vec<PassTimes>,
}

fn bits(s: &[f32]) -> Vec<u32> {
    s.iter().map(|v| v.to_bits()).collect()
}

/// Benchmarks one layer shape under the current ISA override; asserts the
/// two arms bitwise identical per pass before timing them.
fn bench_tier(
    pool: &ThreadPool,
    n: usize,
    c: usize,
    k: usize,
    warmup: usize,
    iters: usize,
    isa: Isa,
) -> TierResult {
    let mut rng = seeded_rng(0xB61C, (n * c * k) as u64);
    let w = uniform(k, c, -0.5, 0.5, &mut rng);
    let b = uniform(k, 1, -0.5, 0.5, &mut rng).as_slice().to_vec();
    let x = uniform(c, n, -1.0, 1.0, &mut rng);
    let dy = uniform(k, n, -1.0, 1.0, &mut rng);
    let blk = Blocking::for_shape(n, c, k);

    // Persistent-plan state: packed once, resident across iterations.
    let wb = BlockedWeights::pack(&w, blk);
    let xb = BlockedActivations::pack(&x, blk.bc, blk.bn);
    let dyb = BlockedActivations::pack(&dy, blk.bk, blk.bn);
    let mut yb = BlockedActivations::zeros(k, n, blk.bk, blk.bn);
    let mut dxb = BlockedActivations::zeros(c, n, blk.bc, blk.bn);
    let mut dwb = BlockedWeights::zeros(k, c, blk);
    let mut dw_flat = Matrix::zeros(k, c);
    let mut db = vec![0.0f32; k];

    // --- Bitwise equivalence of the two arms, per pass. ---
    yb.fill_zero();
    gemm::fc_forward_fused(pool, &wb, &xb, &mut yb, Some(&b), true);
    let y_pers = yb.unpack();
    let y_pc = {
        let wb2 = BlockedWeights::pack(&w, blk);
        let xb2 = BlockedActivations::pack(&x, blk.bc, blk.bn);
        let mut yb2 = BlockedActivations::zeros(k, n, blk.bk, blk.bn);
        gemm::fc_forward_fused(pool, &wb2, &xb2, &mut yb2, Some(&b), true);
        yb2.unpack()
    };
    assert_eq!(
        bits(y_pers.as_slice()),
        bits(y_pc.as_slice()),
        "{isa:?} {n}x{c}x{k}: fwd arms diverged"
    );

    dxb.fill_zero();
    gemm::fc_backward_data_fused(pool, &wb, &dyb, &mut dxb, Some(&xb));
    let dx_pers = dxb.unpack();
    let dx_pc = {
        let wb2 = BlockedWeights::pack(&w, blk);
        let dyb2 = BlockedActivations::pack(&dy, blk.bk, blk.bn);
        let mut dxb2 = BlockedActivations::zeros(c, n, blk.bc, blk.bn);
        gemm::fc_backward_data(pool, &wb2, &dyb2, &mut dxb2);
        let mut dx = dxb2.unpack();
        relu_backward(x.as_slice(), dx.as_mut_slice());
        dx
    };
    assert_eq!(
        bits(dx_pers.as_slice()),
        bits(dx_pc.as_slice()),
        "{isa:?} {n}x{c}x{k}: bwd_data arms diverged"
    );

    dwb.fill_zero();
    gemm::fc_backward_weights_fused(pool, &xb, &dyb, &mut dwb, &mut db);
    dwb.unpack_into(&mut dw_flat);
    let (dw_pc, db_pc) = {
        let xb2 = BlockedActivations::pack(&x, blk.bc, blk.bn);
        let dyb2 = BlockedActivations::pack(&dy, blk.bk, blk.bn);
        let mut dwb2 = BlockedWeights::zeros(k, c, blk);
        gemm::fc_backward_weights(pool, &xb2, &dyb2, &mut dwb2);
        let mut db2 = vec![0.0f32; k];
        bias_grad_rows(dy.as_slice(), k, n, &mut db2);
        (dwb2.unpack(), db2)
    };
    assert_eq!(
        bits(dw_flat.as_slice()),
        bits(dw_pc.as_slice()),
        "{isa:?} {n}x{c}x{k}: bwd_weights dW arms diverged"
    );
    assert_eq!(
        bits(&db),
        bits(&db_pc),
        "{isa:?} {n}x{c}x{k}: dB arms diverged"
    );

    // --- Timed arms. ---
    let fwd_pc = time_it(warmup, iters, || {
        let wb2 = BlockedWeights::pack(&w, blk);
        let xb2 = BlockedActivations::pack(&x, blk.bc, blk.bn);
        let mut yb2 = BlockedActivations::zeros(k, n, blk.bk, blk.bn);
        gemm::fc_forward_fused(pool, &wb2, &xb2, &mut yb2, Some(&b), true);
        yb2.unpack()
    });
    let fwd_pers = time_it(warmup, iters, || {
        yb.fill_zero();
        gemm::fc_forward_fused(pool, &wb, &xb, &mut yb, Some(&b), true);
    });

    let bwd_d_pc = time_it(warmup, iters, || {
        let wb2 = BlockedWeights::pack(&w, blk);
        let dyb2 = BlockedActivations::pack(&dy, blk.bk, blk.bn);
        let mut dxb2 = BlockedActivations::zeros(c, n, blk.bc, blk.bn);
        gemm::fc_backward_data(pool, &wb2, &dyb2, &mut dxb2);
        let mut dx = dxb2.unpack();
        relu_backward(x.as_slice(), dx.as_mut_slice());
        dx
    });
    let bwd_d_pers = time_it(warmup, iters, || {
        dxb.fill_zero();
        gemm::fc_backward_data_fused(pool, &wb, &dyb, &mut dxb, Some(&xb));
    });

    let bwd_w_pc = time_it(warmup, iters, || {
        let xb2 = BlockedActivations::pack(&x, blk.bc, blk.bn);
        let dyb2 = BlockedActivations::pack(&dy, blk.bk, blk.bn);
        let mut dwb2 = BlockedWeights::zeros(k, c, blk);
        gemm::fc_backward_weights(pool, &xb2, &dyb2, &mut dwb2);
        let mut db2 = vec![0.0f32; k];
        bias_grad_rows(dy.as_slice(), k, n, &mut db2);
        (dwb2.unpack(), db2)
    });
    let bwd_w_pers = time_it(warmup, iters, || {
        dwb.fill_zero();
        gemm::fc_backward_weights_fused(pool, &xb, &dyb, &mut dwb, &mut db);
        dwb.unpack_into(&mut dw_flat);
    });

    TierResult {
        isa,
        passes: vec![
            PassTimes {
                name: "fwd",
                per_call_s: fwd_pc,
                persistent_s: fwd_pers,
            },
            PassTimes {
                name: "bwd_data",
                per_call_s: bwd_d_pc,
                persistent_s: bwd_d_pers,
            },
            PassTimes {
                name: "bwd_weights",
                per_call_s: bwd_w_pc,
                persistent_s: bwd_w_pers,
            },
        ],
    }
}

impl TierResult {
    fn fwd_bwd_speedup(&self) -> f64 {
        let pc: f64 = self.passes.iter().map(|p| p.per_call_s).sum();
        let pers: f64 = self.passes.iter().map(|p| p.persistent_s).sum();
        pc / pers
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    header(
        "Packed-GEMM execution plan: pack-per-call vs persistent",
        "GFLOP/s per training pass; persistent = pack-once weights, blocked \
         residency, fused epilogues.",
    );
    let s = sizes(&opts);
    let pool = ThreadPool::new(THREADS);
    let tiers = available_isas();
    println!(
        "threads = {THREADS}, tiers = {:?}, iters = {}\n",
        tiers, s.iters
    );

    let mut results: Vec<((usize, usize, usize), Vec<TierResult>)> = Vec::new();
    for &(n, c, k) in &s.configs {
        let mut per_tier = Vec::new();
        for &isa in &tiers {
            set_isa_override(Some(isa));
            per_tier.push(bench_tier(&pool, n, c, k, s.warmup, s.iters, isa));
        }
        set_isa_override(None);
        results.push(((n, c, k), per_tier));
    }

    // Headline gate metric: min over shapes at the *native* (highest
    // available) ISA tier — the tier production dispatch actually uses. At
    // the scalar tier the GEMM is so slow that pack overhead vanishes into
    // run-to-run noise, so cross-tier minima measure jitter, not the plan.
    let native = *tiers.last().expect("at least the scalar tier");
    let mut min_speedup = f64::INFINITY;
    for ((n, c, k), per_tier) in &results {
        println!("layer N={n} C={c} K={k}:");
        let mut t = Table::new(&["isa", "pass", "per-call GF/s", "persistent GF/s", "speedup"]);
        let flops = gemm_flops(*k, *c, *n) as f64;
        for tr in per_tier {
            for p in &tr.passes {
                t.row(vec![
                    isa_key(tr.isa).to_string(),
                    p.name.to_string(),
                    format!("{:.2}", flops / p.per_call_s / 1e9),
                    format!("{:.2}", flops / p.persistent_s / 1e9),
                    format!("{:.2}x", p.per_call_s / p.persistent_s),
                ]);
            }
            if tr.isa == native {
                min_speedup = min_speedup.min(tr.fwd_bwd_speedup());
            }
        }
        t.print();
        println!();
    }
    println!(
        "min fwd+bwd persistent speedup across shapes at native tier ({}): {min_speedup:.2}x",
        isa_key(native)
    );
    println!("equivalence: all passes bitwise identical across arms (asserted)");

    // --- Artifact. ---
    let mut cfg_json = Vec::new();
    for ((n, c, k), per_tier) in &results {
        let flops = gemm_flops(*k, *c, *n) as f64;
        let tiers_json: Vec<String> = per_tier
            .iter()
            .map(|tr| {
                let passes: Vec<String> = tr
                    .passes
                    .iter()
                    .map(|p| {
                        format!(
                            "{{\"pass\": \"{}\", \"per_call_gflops\": {:.3}, \"persistent_gflops\": {:.3}, \"speedup\": {:.4}}}",
                            p.name,
                            flops / p.per_call_s / 1e9,
                            flops / p.persistent_s / 1e9,
                            p.per_call_s / p.persistent_s
                        )
                    })
                    .collect();
                format!(
                    "{{\"isa\": \"{}\", \"passes\": [{}], \"fwd_bwd_speedup\": {:.4}}}",
                    isa_key(tr.isa),
                    passes.join(", "),
                    tr.fwd_bwd_speedup()
                )
            })
            .collect();
        cfg_json.push(format!(
            "{{\"n\": {n}, \"c\": {c}, \"k\": {k}, \"tiers\": [{}]}}",
            tiers_json.join(", ")
        ));
    }
    let tier_names: Vec<String> = tiers
        .iter()
        .map(|i| format!("\"{}\"", isa_key(*i)))
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"gemm\",\n  \"smoke\": {},\n  \"threads\": {THREADS},\n  \
         \"isa_tiers\": [{}],\n  \"configs\": [\n    {}\n  ],\n  \
         \"native_isa\": \"{}\",\n  \"min_fwd_bwd_speedup\": {:.4},\n  \
         \"equivalence_ok\": true\n}}\n",
        opts.smoke,
        tier_names.join(", "),
        cfg_json.join(",\n    "),
        isa_key(native),
        min_speedup
    );
    validate_bench_gemm_json(&json).expect("self-validation of the artifact schema");
    let path = dlrm_bench::write_artifact("BENCH_gemm.json", &json);
    println!("\nwrote {} (schema self-validated)", path.display());
}
