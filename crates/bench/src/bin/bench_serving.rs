//! Serving benchmark — QPS vs latency percentiles for the micro-batched
//! inference engine, plus the hot-row-cache hit-rate sweep.
//!
//! Two experiments (see DESIGN.md §11):
//!
//! * **Latency curve** — closed-loop clients hammer a running
//!   [`ServeEngine`]; for each client count we record QPS, p50/p99 request
//!   latency (engine-side: submission → response ready), and the mean
//!   micro-batch size the batching window actually produced. More clients
//!   → bigger batches → higher QPS at higher per-request latency: the
//!   serving throughput/latency dial, measured.
//!
//! * **Cache sweep** — steady-state hot-row-cache hit rate over Zipf
//!   exponent × cache capacity (fraction of table rows), measured after a
//!   warm-up phase, with every measured batch checked bitwise against an
//!   uncached reference model. The paper context ("Dissecting Embedding
//!   Bag Performance in DLRM Inference", BagPipe) predicts the Zipf head
//!   is tiny: at s = 1.1 a cache holding 1% of the table should already
//!   serve most lookups — asserted here (> 50%) and recorded as
//!   `hot_head_hit_rate`.
//!
//! * **Shard sweep** — the table-sharded [`ShardedEngine`] (DESIGN.md §15)
//!   under the same closed-loop load for each shard count: QPS, latency
//!   percentiles, per-shard lane/cache observability, and a per-request
//!   bitwise identity check of every served logit against the unsharded
//!   reference model. `multi_shard_speedup` (best multi-shard QPS over the
//!   single-shard baseline) is gated > 1.0 by the schema validator only
//!   for full-scale runs on a multi-core host — the artifact records
//!   `host_cores` so a single-core measurement stays honest.
//!
//! Writes `results/BENCH_serving.json` (honoring `$DLRM_RESULTS_DIR`),
//! schema-checked by `dlrm_bench::validate_bench_serving_json` before
//! writing and by CI over the committed artifact.

use dlrm::layers::Execution;
use dlrm_bench::{header, validate_bench_serving_json, HarnessOpts, Table};
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_serve::{
    summarize_latencies_us, CacheSizing, Request, ServeConfig, ServeEngine, ServeModel, ShardSpec,
    ShardedEngine, ShardedServeModel,
};
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;
use rand::rngs::StdRng;
use rand::Rng;
use std::time::{Duration, Instant};

/// Fixed MLP thread-team width (property of the engine, not the host).
const THREADS: usize = 4;

struct Sizes {
    /// Rows per embedding table.
    m: usize,
    /// Embedding dimension.
    e: usize,
    /// Tables in the served model.
    tables: usize,
    /// Lookups per table per request.
    p: usize,
    /// Closed-loop client counts for the latency curve.
    client_counts: Vec<usize>,
    /// Requests per client per curve point.
    requests_per_client: usize,
    /// Zipf exponents for the cache sweep.
    zipf_s: Vec<f64>,
    /// Cache capacities (fraction of table rows) for the sweep.
    capacity_fracs: Vec<f64>,
    /// Warm-up / measured batches per sweep point.
    sweep_warmup: usize,
    sweep_measure: usize,
    /// Shard counts for the sharded-engine scaling sweep.
    shard_counts: Vec<usize>,
    /// GEMM workers per shard team in the shard sweep.
    shard_workers: usize,
    /// Closed-loop clients per shard-sweep point.
    shard_clients: usize,
    /// Requests per client per shard-sweep point.
    shard_requests_per_client: usize,
}

fn sizes(opts: &HarnessOpts) -> Sizes {
    if opts.smoke {
        Sizes {
            m: 10_000,
            e: 16,
            tables: 2,
            p: 2,
            client_counts: vec![1, 4],
            requests_per_client: 40,
            zipf_s: vec![1.1],
            capacity_fracs: vec![0.01, 0.05],
            sweep_warmup: 30,
            sweep_measure: 50,
            shard_counts: vec![1, 2],
            shard_workers: 1,
            shard_clients: 2,
            shard_requests_per_client: 25,
        }
    } else {
        Sizes {
            m: 200_000,
            e: 32,
            tables: 4,
            p: 2,
            client_counts: vec![1, 2, 4, 8, 16],
            requests_per_client: 300,
            zipf_s: vec![0.8, 1.1, 1.4],
            capacity_fracs: vec![0.001, 0.01, 0.05],
            sweep_warmup: 80,
            sweep_measure: 120,
            shard_counts: vec![1, 2, 4, 8],
            shard_workers: 2,
            shard_clients: 8,
            shard_requests_per_client: 200,
        }
    }
}

/// The served model configuration (a serving-shaped DLRM, not a Table I
/// training config: few dense features, uniform hot tables).
fn serving_cfg(s: &Sizes) -> DlrmConfig {
    DlrmConfig {
        name: "Serving".into(),
        dense_features: 16,
        bottom_mlp: vec![32, s.e],
        top_mlp: vec![64, 1],
        num_tables: s.tables,
        table_rows: vec![s.m as u64; s.tables],
        emb_dim: s.e,
        lookups_per_table: s.p,
        mb_single: 128,
        gn_strong: 128,
        ln_weak: 128,
    }
}

/// One random single-user request.
fn random_request(cfg: &DlrmConfig, dist: IndexDistribution, rng: &mut StdRng) -> Request {
    let dense = (0..cfg.dense_features)
        .map(|_| rng.gen_range(-1.0..1.0f32))
        .collect();
    let indices = (0..cfg.num_tables)
        .map(|t| dist.sample_many(cfg.table_rows[t], cfg.lookups_per_table, rng))
        .collect();
    Request { dense, indices }
}

struct CurvePoint {
    clients: usize,
    qps: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    mean_batch: f64,
}

/// Closed-loop load point: `clients` threads each issue
/// `requests_per_client` sequential requests against a fresh engine.
fn run_curve_point(
    cfg: &DlrmConfig,
    s: &Sizes,
    clients: usize,
    serve_cfg: &ServeConfig,
) -> CurvePoint {
    let model = ServeModel::new(
        cfg,
        Execution::optimized(THREADS),
        CacheSizing::Fraction(0.01),
        42,
    );
    let engine = ServeEngine::start(model, serve_cfg.clone());
    let dist = IndexDistribution::Zipf { s: 1.1 };
    let t0 = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|c| {
            let client = engine.client();
            let cfg = cfg.clone();
            let n = s.requests_per_client;
            std::thread::spawn(move || {
                let mut rng = seeded_rng(1000 + c as u64, 0);
                for _ in 0..n {
                    let resp = client
                        .infer(random_request(&cfg, dist, &mut rng))
                        .expect("infer");
                    assert!(resp.logit.is_finite());
                }
            })
        })
        .collect();
    for w in workers {
        w.join().expect("client thread");
    }
    let wall = t0.elapsed().as_secs_f64();
    let mut report = engine.shutdown();
    assert_eq!(report.requests as usize, clients * s.requests_per_client);
    let lat = summarize_latencies_us(&mut report.latencies_us);
    CurvePoint {
        clients,
        qps: report.requests as f64 / wall.max(f64::MIN_POSITIVE),
        p50_us: lat.p50_us,
        p90_us: lat.p90_us,
        p99_us: lat.p99_us,
        mean_batch: report.mean_batch(),
    }
}

struct SweepPoint {
    zipf_s: f64,
    capacity_frac: f64,
    capacity_rows: usize,
    hit_rate: f64,
    bitwise_identical: bool,
}

/// Steady-state hit rate at one (Zipf s, capacity fraction) point, with
/// every measured batch checked bitwise against an uncached model.
fn run_sweep_point(cfg: &DlrmConfig, s: &Sizes, zipf_s: f64, frac: f64) -> SweepPoint {
    let exec = Execution::optimized(THREADS);
    let mut cached = ServeModel::new(cfg, exec.clone(), CacheSizing::Fraction(frac), 42);
    let mut uncached = ServeModel::new(cfg, exec, CacheSizing::Disabled, 42);
    let dist = IndexDistribution::Zipf { s: zipf_s };
    let mut rng = seeded_rng(7, 3);
    let n = 64;
    for _ in 0..s.sweep_warmup {
        let batch = MiniBatch::random(cfg, n, dist, &mut rng);
        let _ = cached.forward(&batch);
    }
    cached.reset_cache_stats();
    let mut bitwise = true;
    for _ in 0..s.sweep_measure {
        let batch = MiniBatch::random(cfg, n, dist, &mut rng);
        let got = cached.forward(&batch);
        let want = uncached.forward(&batch);
        bitwise &= got == want;
    }
    let stats = cached.cache_stats();
    let (hits, misses) = stats
        .iter()
        .flatten()
        .fold((0u64, 0u64), |(h, m), st| (h + st.hits, m + st.misses));
    SweepPoint {
        zipf_s,
        capacity_frac: frac,
        capacity_rows: ((s.m as f64 * frac).ceil() as usize).clamp(1, s.m),
        hit_rate: hits as f64 / (hits + misses).max(1) as f64,
        bitwise_identical: bitwise,
    }
}

/// Packs one request as a batch-of-1 for the reference identity forward.
fn single_batch(cfg: &DlrmConfig, req: &Request) -> MiniBatch {
    let dense = Matrix::from_fn(cfg.dense_features, 1, |r, _| req.dense[r]);
    let indices: Vec<Vec<u32>> = req.indices.clone();
    let offsets = indices.iter().map(|bag| vec![0, bag.len()]).collect();
    MiniBatch {
        dense,
        indices,
        offsets,
        labels: vec![0.0],
    }
}

struct PerShard {
    shard: usize,
    requests: u64,
    qps: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    queue_depth_hwm: usize,
    cache_hits: u64,
    cache_misses: u64,
}

struct ShardPoint {
    shards: usize,
    qps: f64,
    p50_us: f64,
    p90_us: f64,
    p99_us: f64,
    identity_ok: bool,
    per_shard: Vec<PerShard>,
}

/// One sharded closed-loop load point: every served logit is re-derived on
/// the unsharded uncached reference model and compared bitwise.
fn run_shard_point(
    cfg: &DlrmConfig,
    s: &Sizes,
    shards: usize,
    serve_cfg: &ServeConfig,
    reference: &mut ServeModel,
) -> ShardPoint {
    let spec = ShardSpec {
        shards,
        workers_per_shard: s.shard_workers,
        pin_cores: false,
        cache: CacheSizing::Fraction(0.01),
    };
    let engine = ShardedEngine::start(ShardedServeModel::new(cfg, &spec, 42), serve_cfg.clone());
    let dist = IndexDistribution::Zipf { s: 1.1 };
    let t0 = Instant::now();
    let workers: Vec<_> = (0..s.shard_clients)
        .map(|c| {
            let client = engine.client();
            let cfg = cfg.clone();
            let n = s.shard_requests_per_client;
            std::thread::spawn(move || {
                let mut rng = seeded_rng(3000 + c as u64, 0);
                (0..n)
                    .map(|_| {
                        let req = random_request(&cfg, dist, &mut rng);
                        let resp = client.infer(req.clone()).expect("infer");
                        (req, resp.logit)
                    })
                    .collect::<Vec<_>>()
            })
        })
        .collect();
    let served: Vec<(Request, f32)> = workers
        .into_iter()
        .flat_map(|w| w.join().expect("client thread"))
        .collect();
    let wall = t0.elapsed().as_secs_f64();
    let mut report = engine.shutdown();
    assert_eq!(report.requests as usize, served.len());
    assert_eq!(report.shards.len(), shards);

    // Per-request identity gate: micro-batch composition and lane choice
    // are races, but each logit must equal the unsharded reference bitwise.
    let identity_ok = served
        .iter()
        .all(|(req, logit)| reference.forward(&single_batch(cfg, req))[0] == *logit);

    let lat = summarize_latencies_us(&mut report.latencies_us);
    let per_shard = report
        .shards
        .iter_mut()
        .map(|sr| {
            let slat = summarize_latencies_us(&mut sr.latencies_us);
            let (hits, misses) = sr
                .cache_stats
                .iter()
                .flatten()
                .fold((0u64, 0u64), |(h, m), st| (h + st.hits, m + st.misses));
            PerShard {
                shard: sr.shard,
                requests: sr.requests,
                qps: sr.requests as f64 / wall.max(f64::MIN_POSITIVE),
                p50_us: slat.p50_us,
                p90_us: slat.p90_us,
                p99_us: slat.p99_us,
                queue_depth_hwm: sr.queue_depth_hwm,
                cache_hits: hits,
                cache_misses: misses,
            }
        })
        .collect();
    ShardPoint {
        shards,
        qps: report.requests as f64 / wall.max(f64::MIN_POSITIVE),
        p50_us: lat.p50_us,
        p90_us: lat.p90_us,
        p99_us: lat.p99_us,
        identity_ok,
        per_shard,
    }
}

fn main() {
    let opts = HarnessOpts::from_args();
    let s = sizes(&opts);
    let cfg = serving_cfg(&s);
    let serve_cfg = ServeConfig {
        max_batch: 32,
        window: Duration::from_micros(200),
    };
    header(
        "Serving engine: QPS vs latency percentiles + hot-row cache sweep",
        "Micro-batched forward-only inference over the SIMD embedding/GEMM\n\
         kernels. Cache context: embedding-bag gather dominates DLRM\n\
         inference and is cache-residency-bound; Zipf traffic concentrates\n\
         lookups in a head tiny relative to the table.",
    );
    println!(
        "\nmodel: {} tables x {} rows x E={}, P={} lookups/table, dense={}, \
         {} MLP threads; batching max_batch={}, window={:?}",
        s.tables, s.m, s.e, s.p, cfg.dense_features, THREADS, serve_cfg.max_batch, serve_cfg.window,
    );

    // ---- Cache sweep (also the bitwise-identity gate). ------------------
    let mut sweep: Vec<SweepPoint> = Vec::new();
    let mut t = Table::new(&["zipf s", "capacity", "rows", "hit rate", "bitwise"]);
    for &zs in &s.zipf_s {
        for &frac in &s.capacity_fracs {
            let p = run_sweep_point(&cfg, &s, zs, frac);
            t.row(vec![
                format!("{zs:.1}"),
                format!("{:.1}%", frac * 100.0),
                format!("{}", p.capacity_rows),
                format!("{:.1}%", p.hit_rate * 100.0),
                format!("{}", p.bitwise_identical),
            ]);
            sweep.push(p);
        }
    }
    t.print();
    let bitwise_ok = sweep.iter().all(|p| p.bitwise_identical);
    assert!(bitwise_ok, "cached forward must be bitwise identical");
    let hot_head = sweep
        .iter()
        .find(|p| (p.zipf_s - 1.1).abs() < 1e-9 && (p.capacity_frac - 0.01).abs() < 1e-9)
        .expect("sweep must include the (s=1.1, 1%) acceptance point");
    println!(
        "\nhot head: s=1.1 with a 1% cache serves {:.1}% of lookups",
        hot_head.hit_rate * 100.0
    );
    assert!(
        hot_head.hit_rate > 0.5,
        "a 1% cache under Zipf s=1.1 must serve >50% of lookups (got {:.3})",
        hot_head.hit_rate
    );
    let hot_head_rate = hot_head.hit_rate;

    // ---- QPS vs latency percentile curve. -------------------------------
    let mut curve: Vec<CurvePoint> = Vec::new();
    let mut t = Table::new(&["clients", "QPS", "p50", "p90", "p99", "mean batch"]);
    for &c in &s.client_counts {
        let p = run_curve_point(&cfg, &s, c, &serve_cfg);
        t.row(vec![
            format!("{}", p.clients),
            format!("{:.0}", p.qps),
            format!("{:.0} us", p.p50_us),
            format!("{:.0} us", p.p90_us),
            format!("{:.0} us", p.p99_us),
            format!("{:.1}", p.mean_batch),
        ]);
        curve.push(p);
    }
    t.print();

    // ---- Sharded-engine scaling sweep. ----------------------------------
    let host_cores = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(1);
    println!(
        "\nshard sweep: {} closed-loop clients x {} requests, {} worker(s)/shard, host_cores={}",
        s.shard_clients, s.shard_requests_per_client, s.shard_workers, host_cores
    );
    let mut reference = ServeModel::new(&cfg, Execution::optimized(1), CacheSizing::Disabled, 42);
    let mut shard_sweep: Vec<ShardPoint> = Vec::new();
    let mut t = Table::new(&["shards", "QPS", "p50", "p99", "vs S=1", "identity"]);
    for &shards in &s.shard_counts {
        let p = run_shard_point(&cfg, &s, shards, &serve_cfg, &mut reference);
        let base = shard_sweep.first().map_or(p.qps, |b| b.qps);
        t.row(vec![
            format!("{}", p.shards),
            format!("{:.0}", p.qps),
            format!("{:.0} us", p.p50_us),
            format!("{:.0} us", p.p99_us),
            format!("{:.2}x", p.qps / base.max(f64::MIN_POSITIVE)),
            format!("{}", p.identity_ok),
        ]);
        shard_sweep.push(p);
    }
    t.print();
    let sharded_identity_ok = shard_sweep.iter().all(|p| p.identity_ok);
    assert!(
        sharded_identity_ok,
        "sharded logits must be bitwise identical to the unsharded reference"
    );
    let single_qps = shard_sweep
        .iter()
        .find(|p| p.shards == 1)
        .map_or(0.0, |p| p.qps);
    let multi_shard_speedup = shard_sweep
        .iter()
        .filter(|p| p.shards > 1)
        .map(|p| p.qps / single_qps.max(f64::MIN_POSITIVE))
        .fold(0.0f64, f64::max);
    println!(
        "\nbest multi-shard speedup vs single shard: {multi_shard_speedup:.2}x \
         ({}meaningful on this {host_cores}-core host)",
        if host_cores > 1 { "" } else { "NOT " }
    );

    // ---- Artifact. ------------------------------------------------------
    let curve_json: Vec<String> = curve
        .iter()
        .map(|p| {
            format!(
                "{{\"clients\": {}, \"qps\": {:.2}, \"p50_us\": {:.1}, \"p90_us\": {:.1}, \
                 \"p99_us\": {:.1}, \"mean_batch\": {:.2}}}",
                p.clients, p.qps, p.p50_us, p.p90_us, p.p99_us, p.mean_batch
            )
        })
        .collect();
    let sweep_json: Vec<String> = sweep
        .iter()
        .map(|p| {
            format!(
                "{{\"zipf_s\": {:.2}, \"capacity_frac\": {:.4}, \"capacity_rows\": {}, \
                 \"hit_rate\": {:.4}, \"bitwise_identical\": {}}}",
                p.zipf_s, p.capacity_frac, p.capacity_rows, p.hit_rate, p.bitwise_identical
            )
        })
        .collect();
    let shard_json: Vec<String> = shard_sweep
        .iter()
        .map(|p| {
            let per: Vec<String> = p
                .per_shard
                .iter()
                .map(|ps| {
                    let looked = (ps.cache_hits + ps.cache_misses).max(1);
                    format!(
                        "{{\"shard\": {}, \"requests\": {}, \"qps\": {:.2}, \"p50_us\": {:.1}, \
                         \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"queue_depth_hwm\": {}, \
                         \"cache\": {{\"hits\": {}, \"misses\": {}, \"hit_rate\": {:.4}}}}}",
                        ps.shard,
                        ps.requests,
                        ps.qps,
                        ps.p50_us,
                        ps.p90_us,
                        ps.p99_us,
                        ps.queue_depth_hwm,
                        ps.cache_hits,
                        ps.cache_misses,
                        ps.cache_hits as f64 / looked as f64,
                    )
                })
                .collect();
            format!(
                "{{\"shards\": {}, \"workers_per_shard\": {}, \"qps\": {:.2}, \"p50_us\": {:.1}, \
                 \"p90_us\": {:.1}, \"p99_us\": {:.1}, \"sharded_identity_ok\": {},\n     \
                 \"per_shard\": [\n       {}\n     ]}}",
                p.shards,
                s.shard_workers,
                p.qps,
                p.p50_us,
                p.p90_us,
                p.p99_us,
                p.identity_ok,
                per.join(",\n       "),
            )
        })
        .collect();
    let json = format!(
        "{{\n  \"bench\": \"serving\",\n  \"smoke\": {},\n  \"host_cores\": {host_cores},\n  \
         \"config\": {{\"rows\": {}, \"dim\": {}, \"tables\": {}, \"lookups\": {}, \
         \"dense_features\": {}, \"threads\": {THREADS}, \"max_batch\": {}, \"window_us\": {}, \
         \"requests_per_client\": {}}},\n  \
         \"latency_curve\": [\n    {}\n  ],\n  \
         \"cache_sweep\": [\n    {}\n  ],\n  \
         \"hot_head_hit_rate\": {:.4},\n  \
         \"bitwise_identical\": {},\n  \
         \"shard_sweep\": [\n    {}\n  ],\n  \
         \"multi_shard_speedup\": {:.4},\n  \
         \"sharded_identity_ok\": {}\n}}\n",
        opts.smoke,
        s.m,
        s.e,
        s.tables,
        s.p,
        cfg.dense_features,
        serve_cfg.max_batch,
        serve_cfg.window.as_micros(),
        s.requests_per_client,
        curve_json.join(",\n    "),
        sweep_json.join(",\n    "),
        hot_head_rate,
        bitwise_ok,
        shard_json.join(",\n    "),
        multi_shard_speedup,
        sharded_identity_ok,
    );
    validate_bench_serving_json(&json).expect("self-validation of the artifact schema");
    let path = dlrm_bench::write_artifact("BENCH_serving.json", &json);
    println!("\nwrote {} (schema self-validated)", path.display());
    if opts.json {
        println!("{json}");
    }
}
