//! Criterion benches for the functional collectives (threads-as-ranks).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlrm_comm::collectives;
use dlrm_comm::world::CommWorld;

fn bench_allreduce(c: &mut Criterion) {
    let mut group = c.benchmark_group("allreduce");
    group.sample_size(10);
    for &ranks in &[2usize, 4] {
        for &len in &[4096usize, 65536] {
            group.throughput(Throughput::Bytes((len * 4) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{ranks}ranks"), len),
                &(),
                |b, _| {
                    b.iter(|| {
                        CommWorld::run(ranks, |comm| {
                            let mut data = vec![comm.rank() as f32; len];
                            collectives::allreduce_sum(&comm, &mut data);
                            data[0]
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    let mut group = c.benchmark_group("alltoall");
    group.sample_size(10);
    for &ranks in &[2usize, 4] {
        for &per_peer in &[1024usize, 16384] {
            group.throughput(Throughput::Bytes((ranks * per_peer * 4) as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{ranks}ranks"), per_peer),
                &(),
                |b, _| {
                    b.iter(|| {
                        CommWorld::run(ranks, |comm| {
                            let send: Vec<Vec<f32>> =
                                (0..ranks).map(|d| vec![d as f32; per_peer]).collect();
                            collectives::alltoall(&comm, send).len()
                        })
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_allreduce, bench_alltoall);
criterion_main!(benches);
