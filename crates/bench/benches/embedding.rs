//! Criterion benches for the EmbeddingBag kernels: forward, the four
//! update strategies under two index distributions, and the fused
//! backward+update.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlrm_data::IndexDistribution;
use dlrm_kernels::embedding::{self, UpdateStrategy};
use dlrm_kernels::ThreadPool;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::Matrix;

const M: usize = 50_000;
const E: usize = 64;
const N: usize = 256;
const P: usize = 20;

struct Setup {
    w: Matrix,
    indices: Vec<u32>,
    offsets: Vec<usize>,
    dy: Matrix,
    dw: Matrix,
}

fn setup(dist: IndexDistribution) -> Setup {
    let mut rng = seeded_rng(11, 0);
    let w = uniform(M, E, -0.1, 0.1, &mut rng);
    let indices = dist.sample_many(M as u64, N * P, &mut rng);
    let offsets: Vec<usize> = (0..=N).map(|i| i * P).collect();
    let dy = uniform(N, E, -0.1, 0.1, &mut rng);
    let dw = uniform(indices.len(), E, -0.1, 0.1, &mut rng);
    Setup {
        w,
        indices,
        offsets,
        dy,
        dw,
    }
}

fn bench_forward(c: &mut Criterion) {
    let pool = ThreadPool::with_default_parallelism();
    let s = setup(IndexDistribution::Uniform);
    let mut group = c.benchmark_group("embedding_forward");
    group.sample_size(10);
    group.throughput(Throughput::Bytes((N * P * E * 4) as u64));
    group.bench_function("reference", |b| {
        let mut out = Matrix::zeros(N, E);
        b.iter(|| embedding::forward_reference(&s.w, &s.indices, &s.offsets, &mut out));
    });
    group.bench_function("optimized", |b| {
        let mut out = Matrix::zeros(N, E);
        b.iter(|| embedding::forward(&pool, &s.w, &s.indices, &s.offsets, &mut out));
    });
    group.finish();
}

fn bench_update_strategies(c: &mut Criterion) {
    let pool = ThreadPool::with_default_parallelism();
    let mut group = c.benchmark_group("embedding_update");
    group.sample_size(10);
    for (name, dist) in [
        ("uniform", IndexDistribution::Uniform),
        (
            "clustered",
            IndexDistribution::Clustered {
                hot_fraction: 0.001,
                hot_prob: 0.9,
            },
        ),
    ] {
        let s = setup(dist);
        for strategy in UpdateStrategy::ALL {
            group.bench_with_input(BenchmarkId::new(strategy.to_string(), name), &(), |b, _| {
                let mut w = s.w.clone();
                b.iter(|| embedding::update(&pool, strategy, &mut w, &s.dw, &s.indices, -0.001));
            });
        }
    }
    group.finish();
}

fn bench_fused(c: &mut Criterion) {
    let pool = ThreadPool::with_default_parallelism();
    let s = setup(IndexDistribution::Uniform);
    let mut group = c.benchmark_group("embedding_fused");
    group.sample_size(10);
    group.bench_function("backward_then_update", |b| {
        let mut w = s.w.clone();
        b.iter(|| {
            let mut dw = Matrix::zeros(s.indices.len(), E);
            embedding::backward(&pool, &s.dy, &s.offsets, &mut dw);
            embedding::update(
                &pool,
                UpdateStrategy::RaceFree,
                &mut w,
                &dw,
                &s.indices,
                -0.001,
            );
        });
    });
    group.bench_function("fused", |b| {
        let mut w = s.w.clone();
        b.iter(|| {
            embedding::fused_backward_update(&pool, &mut w, &s.dy, &s.indices, &s.offsets, -0.001)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_forward, bench_update_strategies, bench_fused);
criterion_main!(benches);
