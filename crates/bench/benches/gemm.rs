//! Criterion benches for the GEMM tiers (naive / flat parallel / blocked
//! batch-reduce) and the ISA dispatch — the kernel-level ground truth
//! behind Figure 5.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use dlrm_kernels::gemm;
use dlrm_kernels::gemm::micro::{set_isa_override, Isa};
use dlrm_kernels::ThreadPool;
use dlrm_tensor::blocked::Blocking;
use dlrm_tensor::init::{seeded_rng, uniform};
use dlrm_tensor::{BlockedActivations, BlockedWeights, Matrix};

fn bench_gemm_tiers(c: &mut Criterion) {
    let pool = ThreadPool::with_default_parallelism();
    let mut group = c.benchmark_group("gemm_tiers");
    group.sample_size(10);

    for &(n, ck) in &[(128usize, 256usize), (256, 512)] {
        let mut rng = seeded_rng(1, 0);
        let w = uniform(ck, ck, -0.5, 0.5, &mut rng);
        let x = uniform(ck, n, -0.5, 0.5, &mut rng);
        let blk = Blocking::for_shape(n, ck, ck);
        let wb = BlockedWeights::pack(&w, blk);
        let xb = BlockedActivations::pack(&x, blk.bc, blk.bn);
        group.throughput(Throughput::Elements(gemm::gemm_flops(ck, ck, n)));

        group.bench_with_input(
            BenchmarkId::new("naive", format!("{ck}x{n}")),
            &(),
            |b, _| {
                let mut y = Matrix::zeros(ck, n);
                b.iter(|| {
                    y.fill_zero();
                    gemm::gemm_nn(&w, &x, &mut y);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("flat", format!("{ck}x{n}")),
            &(),
            |b, _| {
                let mut y = Matrix::zeros(ck, n);
                b.iter(|| {
                    y.fill_zero();
                    gemm::par_gemm_nn(&pool, &w, &x, &mut y);
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("blocked", format!("{ck}x{n}")),
            &(),
            |b, _| {
                let mut yb = BlockedActivations::zeros(ck, n, blk.bk, blk.bn);
                b.iter(|| {
                    yb.as_mut_slice().fill(0.0);
                    gemm::fc_forward(&pool, &wb, &xb, &mut yb);
                });
            },
        );
    }
    group.finish();
}

fn bench_isa_tiers(c: &mut Criterion) {
    let pool = ThreadPool::new(1);
    let mut group = c.benchmark_group("gemm_isa");
    group.sample_size(10);
    let (n, ck) = (128usize, 512usize);
    let mut rng = seeded_rng(2, 0);
    let w = uniform(ck, ck, -0.5, 0.5, &mut rng);
    let x = uniform(ck, n, -0.5, 0.5, &mut rng);
    let blk = Blocking::for_shape(n, ck, ck);
    let wb = BlockedWeights::pack(&w, blk);
    let xb = BlockedActivations::pack(&x, blk.bc, blk.bn);
    group.throughput(Throughput::Elements(gemm::gemm_flops(ck, ck, n)));

    for isa in [Isa::Scalar, Isa::Avx2, Isa::Avx512] {
        set_isa_override(Some(isa));
        if gemm::detect_isa() != isa {
            continue; // CPU lacks this tier
        }
        group.bench_function(format!("{isa:?}"), |b| {
            let mut yb = BlockedActivations::zeros(ck, n, blk.bk, blk.bn);
            b.iter(|| {
                yb.as_mut_slice().fill(0.0);
                gemm::fc_forward(&pool, &wb, &xb, &mut yb);
            });
        });
    }
    set_isa_override(None);
    group.finish();
}

criterion_group!(benches, bench_gemm_tiers, bench_isa_tiers);
criterion_main!(benches);
