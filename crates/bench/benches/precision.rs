//! Criterion benches for the reduced-precision kernels: BF16 conversion
//! throughput, the emulated `vdpbf16ps` dot product, and the Split-SGD
//! step vs plain FP32 SGD.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use dlrm_precision::bf16::{narrow_slice, widen_slice, Bf16};
use dlrm_precision::dot::dot_bf16;
use dlrm_precision::split::{LoBits, SplitTensor};

const LEN: usize = 1 << 16;

fn bench_conversions(c: &mut Criterion) {
    let src: Vec<f32> = (0..LEN).map(|i| (i as f32).sin()).collect();
    let mut group = c.benchmark_group("bf16_convert");
    group.sample_size(20);
    group.throughput(Throughput::Bytes((LEN * 4) as u64));
    group.bench_function("narrow_rne", |b| {
        let mut dst = vec![Bf16::ZERO; LEN];
        b.iter(|| narrow_slice(&src, &mut dst));
    });
    group.bench_function("widen", |b| {
        let mut bf = vec![Bf16::ZERO; LEN];
        narrow_slice(&src, &mut bf);
        let mut dst = vec![0.0f32; LEN];
        b.iter(|| widen_slice(&bf, &mut dst));
    });
    group.finish();
}

fn bench_dot(c: &mut Criterion) {
    let a: Vec<Bf16> = (0..LEN)
        .map(|i| Bf16::from_f32_rne((i as f32).sin()))
        .collect();
    let b_vec: Vec<Bf16> = (0..LEN)
        .map(|i| Bf16::from_f32_rne((i as f32).cos()))
        .collect();
    let mut group = c.benchmark_group("vdpbf16ps_emulated");
    group.sample_size(20);
    group.throughput(Throughput::Elements(LEN as u64));
    group.bench_function("dot_bf16", |b| {
        b.iter(|| dot_bf16(&a, &b_vec));
    });
    group.finish();
}

fn bench_sgd(c: &mut Criterion) {
    let init: Vec<f32> = (0..LEN).map(|i| (i as f32).sin()).collect();
    let grads: Vec<f32> = (0..LEN).map(|i| (i as f32).cos() * 0.01).collect();
    let mut group = c.benchmark_group("sgd_step");
    group.sample_size(20);
    group.throughput(Throughput::Elements(LEN as u64));
    group.bench_function("fp32", |b| {
        let mut w = init.clone();
        b.iter(|| dlrm_kernels::sgd::sgd_step(&mut w, &grads, 0.01));
    });
    group.bench_function("split_bf16", |b| {
        let mut t = SplitTensor::from_f32(&init, LoBits::Sixteen);
        b.iter(|| t.sgd_step(&grads, 0.01));
    });
    group.finish();
}

criterion_group!(benches, bench_conversions, bench_dot, bench_sgd);
criterion_main!(benches);
