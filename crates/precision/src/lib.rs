//! # dlrm-precision — reduced-precision numerics substrate
//!
//! Bit-accurate software implementations of the non-FP32 datatypes the paper
//! uses (Section VII):
//!
//! * [`Bf16`] — BFLOAT16 (1-8-7): the upper 16 bits of an IEEE-754 FP32
//!   value, with round-to-nearest-even conversion. BF16 "perfectly aliases
//!   with the upper half of IEEE754-FP32 numbers" — the property the
//!   Split-SGD trick exploits.
//! * [`Fp24`] — the 1-8-15 format of Figure 16's third curve: FP32 with the
//!   mantissa truncated to 15 explicit bits (i.e. BF16 plus 8 extra LSBs of
//!   mantissa).
//! * [`Fp16`] — IEEE binary16 with round-to-nearest-even and *stochastic*
//!   rounding, used to reproduce the paper's negative result (FP16
//!   embedding training does not reach state-of-the-art with plain SGD).
//! * [`split`] — [`split::SplitTensor`], the Split-SGD-BF16 master-weight
//!   representation: FP32 values stored as two `u16` planes (all MSBs, then
//!   all LSBs). Forward/backward read only the MSB plane (a valid BF16
//!   tensor); the optimizer recombines both planes and performs a fully
//!   FP32-accurate update.
//! * [`dot`] — a bit-accurate emulation of the Cooper Lake `vdpbf16ps`
//!   instruction (BF16 pair dot-product accumulating into FP32), mirroring
//!   the emulation the paper used before silicon was available.

pub mod bf16;
pub mod dot;
pub mod fp16;
pub mod fp24;
pub mod split;

pub use bf16::Bf16;
pub use fp16::Fp16;
pub use fp24::Fp24;
pub use split::SplitTensor;

/// Rounding mode used when narrowing FP32 to a reduced-precision format.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Rounding {
    /// IEEE round-to-nearest-even (the hardware default for BF16 converts).
    NearestEven,
    /// Truncation toward zero (what a raw bit-shift produces).
    Truncate,
}
