//! Bit-accurate emulation of the Cooper Lake `vdpbf16ps` instruction.
//!
//! `vdpbf16ps` computes, per FP32 accumulator lane, a dot-product of *pairs*
//! of BF16 elements: `acc += a[2i] * b[2i] + a[2i+1] * b[2i+1]`, where each
//! BF16 product is formed exactly (a BF16×BF16 product fits in FP32) and the
//! two products are accumulated into the FP32 lane. The paper uses a
//! bit-accurate software emulation of this instruction for the Figure 16
//! convergence study; we mirror that here.

use crate::bf16::Bf16;

/// One `vdpbf16ps` lane step: `acc + a0*b0 + a1*b1` with exact BF16
/// products and FP32 accumulation, matching the instruction's dataflow
/// (first product added, then second).
#[inline]
pub fn dp_lane(acc: f32, a0: Bf16, a1: Bf16, b0: Bf16, b1: Bf16) -> f32 {
    // Each BF16 multiply is exact in FP32 (8+8=16 mantissa bits needed,
    // 24 available), so ordering only matters for the two adds.
    let p0 = a0.to_f32() * b0.to_f32();
    let p1 = a1.to_f32() * b1.to_f32();
    (acc + p0) + p1
}

/// Dot product of two BF16 vectors with FP32 accumulation, processed in
/// pairs exactly as a `vdpbf16ps` loop would.
///
/// Odd-length inputs process the final element as a pair with an implicit
/// zero, matching how kernels pad their tails.
pub fn dot_bf16(a: &[Bf16], b: &[Bf16]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_bf16 length mismatch");
    let mut acc = 0.0f32;
    let pairs = a.len() / 2;
    for i in 0..pairs {
        acc = dp_lane(acc, a[2 * i], a[2 * i + 1], b[2 * i], b[2 * i + 1]);
    }
    if a.len() % 2 == 1 {
        let last = a.len() - 1;
        acc = dp_lane(acc, a[last], Bf16::ZERO, b[last], Bf16::ZERO);
    }
    acc
}

/// GEMV with BF16 inputs and FP32 accumulation: `y = W · x` for a row-major
/// `rows × cols` BF16 matrix. The building block for emulated-BF16 MLPs.
pub fn gemv_bf16(w: &[Bf16], rows: usize, cols: usize, x: &[Bf16], y: &mut [f32]) {
    assert_eq!(w.len(), rows * cols);
    assert_eq!(x.len(), cols);
    assert_eq!(y.len(), rows);
    for (r, out) in y.iter_mut().enumerate() {
        *out = dot_bf16(&w[r * cols..(r + 1) * cols], x);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bf16::quantize_f32;

    fn bf(v: &[f32]) -> Vec<Bf16> {
        v.iter().map(|&x| Bf16::from_f32_rne(x)).collect()
    }

    #[test]
    fn products_are_exact_in_f32() {
        // Any two bf16 values multiply exactly in f32.
        let a = Bf16::from_f32_rne(1.5703125); // needs full 7 mantissa bits
        let b = Bf16::from_f32_rne(0.7734375);
        let exact = (a.to_f32() as f64) * (b.to_f32() as f64);
        assert_eq!(dp_lane(0.0, a, Bf16::ZERO, b, Bf16::ZERO) as f64, exact);
    }

    #[test]
    fn dot_matches_f64_within_accumulation_error() {
        let av: Vec<f32> = (0..97).map(|i| ((i * 7) % 13) as f32 * 0.093).collect();
        let bv: Vec<f32> = (0..97).map(|i| ((i * 5) % 11) as f32 * -0.041).collect();
        let (a, b) = (bf(&av), bf(&bv));
        let got = dot_bf16(&a, &b) as f64;
        let want: f64 = a
            .iter()
            .zip(&b)
            .map(|(&x, &y)| (x.to_f32() as f64) * (y.to_f32() as f64))
            .sum();
        assert!((got - want).abs() < 1e-4, "got {got}, want {want}");
    }

    #[test]
    fn odd_length_pads_with_zero() {
        let a = bf(&[1.0, 2.0, 3.0]);
        let b = bf(&[4.0, 5.0, 6.0]);
        assert_eq!(dot_bf16(&a, &b), 32.0);
    }

    #[test]
    fn empty_dot_is_zero() {
        assert_eq!(dot_bf16(&[], &[]), 0.0);
    }

    #[test]
    fn gemv_matches_rowwise_dot() {
        let w = bf(&[1.0, 0.0, 0.5, 2.0, -1.0, 0.25]);
        let x = bf(&[2.0, 4.0, 8.0]);
        let mut y = [0.0f32; 2];
        gemv_bf16(&w, 2, 3, &x, &mut y);
        assert_eq!(y[0], 1.0 * 2.0 + 0.5 * 8.0);
        assert_eq!(y[1], 2.0 * 2.0 - 4.0 + 0.25 * 8.0);
    }

    #[test]
    fn accumulation_order_is_pairwise_sequential() {
        // Construct a case where FP32 accumulation order is observable:
        // (1e8 + 1) - 1e8 == 0 in f32 if summed left-to-right pairwise.
        let big = quantize_f32(1e8);
        let a = bf(&[big, 1.0, -big, 0.0]);
        let b = bf(&[1.0, 1.0, 1.0, 1.0]);
        // acc = ((0 + big) + 1) == big (1 absorbed), then + (-big) == 0.
        assert_eq!(dot_bf16(&a, &b), 0.0);
    }
}
