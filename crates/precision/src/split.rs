//! Split-SGD-BF16 master-weight storage (Section VII).
//!
//! Classic mixed-precision training keeps 16-bit "regular" weights *plus* a
//! full FP32 master copy — a 3× overhead that DLRM's capacity-starved
//! embedding tables cannot afford. Split-SGD instead stores each FP32 weight
//! as two 16-bit planes:
//!
//! * the **hi plane** holds the 16 MSBs of every FP32 value — which is a
//!   *valid BF16 tensor*, used directly (and exclusively) by the forward and
//!   backward passes;
//! * the **lo plane** holds the 16 LSBs and lives only in the optimizer.
//!
//! The SGD update recombines both planes, updates in full FP32 and splits
//! the result back, so training is bit-identical in weight evolution to an
//! FP32 optimizer whose forward/backward happen to read BF16-rounded
//! weights. Total storage equals plain FP32 — master weights are implicit.
//!
//! The paper also reports that keeping only 8 LSBs is **not** enough to
//! reach state-of-the-art accuracy; [`LoBits::Eight`] reproduces that
//! ablation, and [`LoBits::Zero`] gives the (worse still) pure-BF16 SGD.

use crate::bf16::Bf16;

/// How many low-order bits of each FP32 weight the optimizer retains.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LoBits {
    /// Full Split-SGD: 16 LSBs kept, updates are FP32-exact.
    Sixteen,
    /// Ablation: only 8 LSBs kept (paper: "not enough to train DLRM").
    Eight,
    /// Pure BF16 SGD: no optimizer state beyond the BF16 weights.
    Zero,
}

/// An FP32 tensor stored as split hi/lo 16-bit planes.
pub struct SplitTensor {
    hi: Vec<u16>,
    /// Low plane; stores 16, 8 (in the low byte) or 0 bits per element.
    lo: Vec<u16>,
    lo_bits: LoBits,
}

impl SplitTensor {
    /// Builds a split tensor from FP32 values, retaining `lo_bits` of
    /// low-order state.
    pub fn from_f32(values: &[f32], lo_bits: LoBits) -> Self {
        let mut t = SplitTensor {
            hi: vec![0; values.len()],
            lo: match lo_bits {
                LoBits::Zero => Vec::new(),
                _ => vec![0; values.len()],
            },
            lo_bits,
        };
        for (i, &v) in values.iter().enumerate() {
            t.store(i, v);
        }
        t
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.hi.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.hi.is_empty()
    }

    /// Which low-bit mode this tensor uses.
    pub fn lo_bits(&self) -> LoBits {
        self.lo_bits
    }

    /// The hi plane viewed as BF16 — what the forward/backward passes read.
    ///
    /// This is a zero-cost reinterpretation: `Bf16` is `repr(transparent)`
    /// over `u16`.
    pub fn as_bf16(&self) -> &[Bf16] {
        // SAFETY: Bf16 is repr(transparent) over u16.
        unsafe { std::slice::from_raw_parts(self.hi.as_ptr().cast::<Bf16>(), self.hi.len()) }
    }

    /// Element `i` widened from the BF16 hi plane only (model view).
    #[inline]
    pub fn model_value(&self, i: usize) -> f32 {
        Bf16(self.hi[i]).to_f32()
    }

    /// Element `i` reconstructed from both planes (optimizer view).
    #[inline]
    pub fn full_value(&self, i: usize) -> f32 {
        let lo = match self.lo_bits {
            LoBits::Sixteen => self.lo[i] as u32,
            LoBits::Eight => ((self.lo[i] & 0xFF) as u32) << 8,
            LoBits::Zero => 0,
        };
        f32::from_bits(((self.hi[i] as u32) << 16) | lo)
    }

    /// Stores an FP32 value as split planes, discarding bits the mode
    /// doesn't retain.
    #[inline]
    pub fn store(&mut self, i: usize, v: f32) {
        let bits = v.to_bits();
        self.hi[i] = (bits >> 16) as u16;
        match self.lo_bits {
            LoBits::Sixteen => self.lo[i] = bits as u16,
            LoBits::Eight => self.lo[i] = ((bits >> 8) & 0xFF) as u16,
            LoBits::Zero => {}
        }
    }

    /// The Split-SGD update: `w[i] -= lr * grad[i]` for every element, with
    /// the subtraction performed on the recombined FP32 value.
    ///
    /// "66% of the training passes enjoy a 2x bandwidth reduction" — the
    /// fwd/bwd passes touch only the hi plane; only this update reads both.
    pub fn sgd_step(&mut self, grads: &[f32], lr: f32) {
        assert_eq!(grads.len(), self.len(), "sgd_step gradient length");
        for (i, &g) in grads.iter().enumerate() {
            let w = self.full_value(i) - lr * g;
            self.store(i, w);
        }
    }

    /// Sparse Split-SGD update for embedding rows: applies `sgd_step`
    /// semantics to `row` of a `rows × cols` table stored in this tensor.
    pub fn sgd_step_row(&mut self, row: usize, cols: usize, grad_row: &[f32], lr: f32) {
        assert_eq!(grad_row.len(), cols);
        let base = row * cols;
        for (j, &g) in grad_row.iter().enumerate() {
            let w = self.full_value(base + j) - lr * g;
            self.store(base + j, w);
        }
    }

    /// Reconstructs the full-precision tensor (optimizer view).
    pub fn to_f32_full(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.full_value(i)).collect()
    }

    /// Widens the model (BF16) view to FP32.
    pub fn to_f32_model(&self) -> Vec<f32> {
        (0..self.len()).map(|i| self.model_value(i)).collect()
    }

    /// Storage footprint in bytes (both planes).
    pub fn nbytes(&self) -> usize {
        (self.hi.len() + self.lo.len()) * 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sixteen_bit_round_trip_is_exact() {
        let vals = [1.0f32, -std::f32::consts::PI, 1e-20, 3e25, 0.1];
        let t = SplitTensor::from_f32(&vals, LoBits::Sixteen);
        assert_eq!(t.to_f32_full(), vals);
    }

    #[test]
    fn model_view_is_truncated_bf16() {
        let vals = [std::f32::consts::PI];
        let t = SplitTensor::from_f32(&vals, LoBits::Sixteen);
        // hi plane is the *truncated* upper half (split, not rounded).
        assert_eq!(
            t.model_value(0).to_bits(),
            std::f32::consts::PI.to_bits() & 0xFFFF_0000
        );
    }

    #[test]
    fn split_sgd_matches_fp32_sgd_exactly() {
        // The headline property: with 16 LSBs, weight evolution is
        // bit-identical to plain FP32 SGD.
        let init: Vec<f32> = (0..64).map(|i| (i as f32 - 32.0) * 0.01).collect();
        let mut split = SplitTensor::from_f32(&init, LoBits::Sixteen);
        let mut fp32 = init.clone();
        let lr = 0.05f32;
        for step in 0..100 {
            let grads: Vec<f32> = (0..64)
                .map(|i| ((i + step) as f32 * 0.37).sin() * 0.1)
                .collect();
            split.sgd_step(&grads, lr);
            for (w, &g) in fp32.iter_mut().zip(&grads) {
                *w -= lr * g;
            }
        }
        let recon = split.to_f32_full();
        assert_eq!(recon, fp32, "Split-SGD must be bit-identical to FP32 SGD");
    }

    #[test]
    fn eight_bit_mode_loses_small_updates() {
        // With only 8 extra LSBs, a tiny update that lands below the kept
        // bits is lost — the mechanism behind the paper's failed ablation.
        // Use an *increasing* weight (negative gradient) so the update stays
        // within the binade of 1.5 and is swallowed by truncation.
        let mut t8 = SplitTensor::from_f32(&[1.5], LoBits::Eight);
        let mut t16 = SplitTensor::from_f32(&[1.5], LoBits::Sixteen);
        let tiny = -(2.0f32.powi(-18)); // below 1-8-15 resolution at 1.5
        for _ in 0..1024 {
            t8.sgd_step(&[tiny], 1.0);
            t16.sgd_step(&[tiny], 1.0);
        }
        assert_eq!(t8.full_value(0), 1.5, "8-bit state swallows the updates");
        assert!(t16.full_value(0) > 1.5, "16-bit state accumulates them");
    }

    #[test]
    fn zero_bit_mode_is_pure_bf16() {
        let t = SplitTensor::from_f32(&[std::f32::consts::PI], LoBits::Zero);
        assert_eq!(t.full_value(0), t.model_value(0));
        assert_eq!(t.nbytes(), 2);
    }

    #[test]
    fn storage_footprint_equals_fp32_for_sixteen() {
        let t = SplitTensor::from_f32(&[0.0; 100], LoBits::Sixteen);
        assert_eq!(t.nbytes(), 400); // same as 100 f32s; no 3x master copy
    }

    #[test]
    fn row_update_touches_only_that_row() {
        let vals = vec![1.0f32; 12]; // 3 rows x 4 cols
        let mut t = SplitTensor::from_f32(&vals, LoBits::Sixteen);
        t.sgd_step_row(1, 4, &[1.0, 1.0, 1.0, 1.0], 0.5);
        let full = t.to_f32_full();
        assert_eq!(&full[0..4], &[1.0; 4]);
        assert_eq!(&full[4..8], &[0.5; 4]);
        assert_eq!(&full[8..12], &[1.0; 4]);
    }

    #[test]
    fn as_bf16_view_matches_model_values() {
        let vals = [0.3f32, -7.25, 42.0];
        let t = SplitTensor::from_f32(&vals, LoBits::Sixteen);
        for (i, b) in t.as_bf16().iter().enumerate() {
            assert_eq!(b.to_f32(), t.model_value(i));
        }
    }
}
