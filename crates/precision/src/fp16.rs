//! IEEE-754 half precision (1 sign, 5 exponent, 10 mantissa bits) with
//! optional stochastic rounding.
//!
//! The paper could *not* train DLRM with FP16 + default SGD: unlike BF16,
//! FP16 trades exponent range for mantissa, so embedding gradients (tiny,
//! after the `1/N` loss scaling) underflow and large activations overflow.
//! It also reports that replicating "training with low-precision embedding
//! tables" (Zhang et al. — FP16 embeddings with stochastic quantization)
//! failed to reach state-of-the-art on DLRM. This module provides the
//! bit-accurate FP16 type and stochastic rounding needed to reproduce that
//! negative result.

use rand::rngs::StdRng;
use rand::Rng;

/// An IEEE-754 binary16 value stored as its raw bit pattern.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Fp16(pub u16);

const MAN_BITS: u32 = 10;
const EXP_BIAS: i32 = 15;
/// Largest finite f16 value (65504).
pub const FP16_MAX: f32 = 65504.0;
/// Smallest positive normal f16 (2^-14).
pub const FP16_MIN_NORMAL: f32 = 6.103_515_6e-5;

impl Fp16 {
    /// Converts from FP32 with round-to-nearest-even, IEEE semantics
    /// (overflow → ±inf, subnormal support, NaN preserved).
    pub fn from_f32_rne(x: f32) -> Fp16 {
        Fp16(f32_to_f16_bits_rne(x))
    }

    /// Converts from FP32 with *stochastic rounding*: rounds up with
    /// probability proportional to the discarded fraction, giving unbiased
    /// quantization in expectation (the scheme of the low-precision
    /// embedding-table work the paper tried to replicate).
    pub fn from_f32_stochastic(x: f32, rng: &mut StdRng) -> Fp16 {
        if !x.is_finite() {
            return Fp16::from_f32_rne(x);
        }
        let down = f32_to_f16_bits_trunc(x);
        let lo = f16_bits_to_f32(down);
        if lo == x {
            return Fp16(down);
        }
        // Next representable toward the sign direction of x.
        let up = down.wrapping_add(1);
        let hi = f16_bits_to_f32(up);
        if !hi.is_finite() {
            return Fp16(down);
        }
        let frac = ((x - lo) / (hi - lo)).clamp(0.0, 1.0);
        if rng.gen_range(0.0f32..1.0) < frac {
            Fp16(up)
        } else {
            Fp16(down)
        }
    }

    /// Widens to FP32 (exact).
    pub fn to_f32(self) -> f32 {
        f16_bits_to_f32(self.0)
    }
}

/// `f32 -> f16 -> f32` with round-to-nearest-even.
pub fn quantize_f32(x: f32) -> f32 {
    Fp16::from_f32_rne(x).to_f32()
}

/// `f32 -> f16 -> f32` with stochastic rounding.
pub fn quantize_f32_stochastic(x: f32, rng: &mut StdRng) -> f32 {
    Fp16::from_f32_stochastic(x, rng).to_f32()
}

fn f16_bits_to_f32(h: u16) -> f32 {
    let sign = ((h >> 15) & 1) as u32;
    let exp = ((h >> MAN_BITS) & 0x1F) as u32;
    let man = (h & 0x3FF) as u32;
    let bits = if exp == 0 {
        if man == 0 {
            sign << 31 // signed zero
        } else {
            // Subnormal: value = man * 2^-24.
            let v = man as f32 * 2.0f32.powi(-24);
            return if sign == 1 { -v } else { v };
        }
    } else if exp == 0x1F {
        (sign << 31) | 0x7F80_0000 | (man << 13) // inf / NaN
    } else {
        let e32 = exp as i32 - EXP_BIAS + 127;
        (sign << 31) | ((e32 as u32) << 23) | (man << 13)
    };
    f32::from_bits(bits)
}

/// Round-to-nearest-even f32 -> f16 bit conversion.
fn f32_to_f16_bits_rne(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 31) & 1) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        // Inf or NaN.
        let man = if abs > 0x7F80_0000 { 0x200 } else { 0 };
        return (sign << 15) | 0x7C00 | man;
    }
    let e32 = ((abs >> 23) as i32) - 127;
    if e32 > 15 {
        // Overflow (or would round to overflow) -> inf.
        // Check the exact boundary: values >= 65520 round to inf.
        return if x.abs() >= 65520.0 {
            (sign << 15) | 0x7C00
        } else {
            (sign << 15) | 0x7BFF
        };
    }
    if e32 >= -14 {
        // Normal range: keep 10 mantissa bits, RNE on the 13 dropped.
        let man32 = abs & 0x7F_FFFF;
        let mut h = ((e32 + EXP_BIAS) as u32) << MAN_BITS | (man32 >> 13);
        let rem = man32 & 0x1FFF;
        let half = 0x1000;
        if rem > half || (rem == half && (h & 1) == 1) {
            h += 1; // carries ripple correctly into the exponent
        }
        (sign << 15) | h as u16
    } else if e32 >= -25 {
        // Subnormal: value = round(|x| / 2^-24).
        let scaled = x.abs() * 2.0f32.powi(24);
        let mut q = scaled as u32;
        let rem = scaled - q as f32;
        if rem > 0.5 || (rem == 0.5 && q % 2 == 1) {
            q += 1;
        }
        (sign << 15) | q.min(0x3FF + 1) as u16
    } else {
        sign << 15 // underflow to zero
    }
}

/// Truncate-toward-zero f32 -> f16 bit conversion (floor of |x| on the f16
/// grid) — the "down" neighbour for stochastic rounding.
fn f32_to_f16_bits_trunc(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 31) & 1) as u16;
    let abs = bits & 0x7FFF_FFFF;
    if abs >= 0x7F80_0000 {
        return f32_to_f16_bits_rne(x);
    }
    if x.abs() >= FP16_MAX {
        return (sign << 15) | 0x7BFF;
    }
    let e32 = ((abs >> 23) as i32) - 127;
    if e32 >= -14 {
        let man32 = abs & 0x7F_FFFF;
        let h = ((e32 + EXP_BIAS) as u32) << MAN_BITS | (man32 >> 13);
        (sign << 15) | h as u16
    } else if e32 >= -25 {
        let q = (x.abs() * 2.0f32.powi(24)) as u32;
        (sign << 15) | q.min(0x3FF) as u16
    } else {
        sign << 15
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_tensor_free::seeded_rng;

    /// Avoid a dev-dependency cycle: minimal local seeded rng.
    mod dlrm_tensor_free {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        pub fn seeded_rng(seed: u64) -> StdRng {
            StdRng::seed_from_u64(seed)
        }
    }

    #[test]
    fn exact_values_round_trip() {
        for &v in &[0.0f32, 1.0, -1.0, 0.5, 2.0, 1024.0, 65504.0, -0.125] {
            assert_eq!(quantize_f32(v), v, "{v}");
        }
    }

    #[test]
    fn range_is_tiny_compared_to_bf16() {
        // The paper's core argument against FP16: range.
        assert_eq!(quantize_f32(1.0e5), f32::INFINITY, "overflows at 1e5");
        assert_eq!(quantize_f32(1.0e-9), 0.0, "underflows at 1e-9");
        // BF16 handles both fine.
        assert!(crate::bf16::quantize_f32(1.0e5).is_finite());
        assert!(crate::bf16::quantize_f32(1.0e-9) != 0.0);
    }

    #[test]
    fn rne_is_nearest() {
        // 1 + 2^-11 is halfway between 1.0 and 1+2^-10: rounds to even (1.0).
        assert_eq!(quantize_f32(1.0 + 2.0f32.powi(-11)), 1.0);
        let above = 1.0 + 2.0f32.powi(-11) + 2.0f32.powi(-14);
        assert_eq!(quantize_f32(above), 1.0 + 2.0f32.powi(-10));
    }

    #[test]
    fn subnormals_work() {
        let tiny = 2.0f32.powi(-24); // smallest positive f16 subnormal
        assert_eq!(quantize_f32(tiny), tiny);
        assert_eq!(quantize_f32(3.5 * tiny), 4.0 * tiny); // RNE on the grid
        assert_eq!(quantize_f32(-tiny), -tiny);
    }

    #[test]
    fn specials() {
        assert_eq!(quantize_f32(f32::INFINITY), f32::INFINITY);
        assert!(quantize_f32(f32::NAN).is_nan());
        assert_eq!(
            Fp16::from_f32_rne(-0.0).to_f32().to_bits(),
            (-0.0f32).to_bits()
        );
    }

    #[test]
    fn stochastic_rounding_is_unbiased() {
        // Quantize 1 + 0.3*ulp many times; mean must approach 1 + 0.3*ulp.
        let ulp = 2.0f32.powi(-10);
        let x = 1.0 + 0.3 * ulp;
        let mut rng = seeded_rng(9);
        let n = 20_000;
        let mean: f64 = (0..n)
            .map(|_| quantize_f32_stochastic(x, &mut rng) as f64)
            .sum::<f64>()
            / n as f64;
        let err = (mean - x as f64).abs();
        assert!(err < 0.02 * ulp as f64, "bias {err} vs ulp {ulp}");
        // Whereas RNE always rounds this value down.
        assert_eq!(quantize_f32(x), 1.0);
    }

    #[test]
    fn stochastic_only_picks_neighbours() {
        let mut rng = seeded_rng(10);
        let x = 0.123456f32;
        let lo = f16_bits_to_f32(f32_to_f16_bits_trunc(x));
        let hi = f16_bits_to_f32(f32_to_f16_bits_trunc(x).wrapping_add(1));
        for _ in 0..200 {
            let q = quantize_f32_stochastic(x, &mut rng);
            assert!(q == lo || q == hi, "{q} not in {{{lo}, {hi}}}");
        }
    }

    #[test]
    fn stochastic_exact_values_stay_exact() {
        let mut rng = seeded_rng(11);
        for _ in 0..50 {
            assert_eq!(quantize_f32_stochastic(0.25, &mut rng), 0.25);
        }
    }

    #[test]
    fn widen_matches_reference_for_all_f16_bit_patterns() {
        // Exhaustive: every finite f16 round-trips f16 -> f32 -> f16.
        for bits in 0..=u16::MAX {
            let exp = (bits >> 10) & 0x1F;
            if exp == 0x1F {
                continue; // inf/NaN
            }
            let f = f16_bits_to_f32(bits);
            let back = f32_to_f16_bits_rne(f);
            assert_eq!(back, bits, "bits {bits:#06x} -> {f} -> {back:#06x}");
        }
    }
}
