//! FP24 (1 sign, 8 exponent, 15 mantissa bits) — the "BF16 + 8 LSBs" format
//! of Figure 16.
//!
//! The paper evaluates this format as the third convergence curve ("FP24
//! (1-8-15)") and also reports that keeping only 8 *additional* LSBs as
//! optimizer state (i.e. updating in FP24 rather than FP32) is *not* enough
//! to train DLRM to state-of-the-art accuracy. We reproduce both points.

use crate::Rounding;

/// An FP24 value stored as an FP32 bit pattern whose low 8 mantissa bits are
/// zero.
#[derive(Debug, Clone, Copy, PartialEq)]
#[repr(transparent)]
pub struct Fp24(pub u32);

/// Number of FP32 mantissa bits dropped by FP24.
const DROP_BITS: u32 = 8;
const DROP_MASK: u32 = (1 << DROP_BITS) - 1;

impl Fp24 {
    /// Converts from FP32 with the given rounding mode.
    #[inline]
    pub fn from_f32(x: f32, mode: Rounding) -> Fp24 {
        let bits = x.to_bits();
        match mode {
            Rounding::Truncate => Fp24(bits & !DROP_MASK),
            Rounding::NearestEven => {
                if x.is_nan() {
                    return Fp24((bits | 0x0040_0000) & !DROP_MASK);
                }
                let lsb = (bits >> DROP_BITS) & 1;
                let rounded = bits.wrapping_add((DROP_MASK >> 1) + lsb);
                Fp24(rounded & !DROP_MASK)
            }
        }
    }

    /// Converts from FP32 with round-to-nearest-even.
    #[inline]
    pub fn from_f32_rne(x: f32) -> Fp24 {
        Fp24::from_f32(x, Rounding::NearestEven)
    }

    /// Widens to FP32 (exact).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits(self.0)
    }
}

/// `f32 -> fp24 -> f32` quantization with round-to-nearest-even.
#[inline]
pub fn quantize_f32(x: f32) -> f32 {
    Fp24::from_f32_rne(x).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn low_bits_are_cleared() {
        let q = Fp24::from_f32_rne(std::f32::consts::PI);
        assert_eq!(q.0 & DROP_MASK, 0);
    }

    #[test]
    fn exact_values_survive() {
        for &v in &[0.0f32, 1.0, -2.5, 1024.0, 2.0f32.powi(68) * 1.5] {
            assert_eq!(quantize_f32(v), v);
        }
    }

    #[test]
    fn strictly_more_precise_than_bf16() {
        // A value bf16 cannot represent but fp24 can: 1 + 2^-10.
        let x = 1.0 + 2.0f32.powi(-10);
        assert_eq!(quantize_f32(x), x);
        assert_ne!(crate::bf16::quantize_f32(x), x);
    }

    #[test]
    fn error_bound_is_half_ulp() {
        // In [1, 2), fp24 ULP = 2^-15; RNE error <= 2^-16.
        let mut x = 1.0f32;
        while x < 2.0 {
            let err = (quantize_f32(x) - x).abs();
            assert!(err <= 2.0f32.powi(-16), "x={x} err={err}");
            x += 0.000719;
        }
    }

    #[test]
    fn halfway_rounds_to_even() {
        // 1.0 + 2^-16 is halfway between fp24(1.0) and the next value.
        let halfway = 1.0 + 2.0f32.powi(-16);
        assert_eq!(quantize_f32(halfway), 1.0);
    }

    #[test]
    fn specials() {
        assert_eq!(quantize_f32(f32::INFINITY), f32::INFINITY);
        assert!(quantize_f32(f32::NAN).is_nan());
        assert_eq!(
            Fp24::from_f32_rne(-0.0).to_f32().to_bits(),
            (-0.0f32).to_bits()
        );
    }
}
