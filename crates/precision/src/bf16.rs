//! BFLOAT16 (1 sign, 8 exponent, 7 mantissa bits).
//!
//! BF16 keeps the full FP32 exponent range — the property that lets DLRM
//! train with the default SGD optimizer where FP16 fails (not enough range /
//! mantissa interplay, cf. the paper's introduction).

use crate::Rounding;

/// A BFLOAT16 value stored as its raw 16-bit pattern.
///
/// The bit pattern is exactly the upper half of the corresponding FP32
/// value, so widening is a 16-bit left shift and narrowing (with truncation)
/// is a 16-bit right shift.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
#[repr(transparent)]
pub struct Bf16(pub u16);

impl Bf16 {
    /// Positive zero.
    pub const ZERO: Bf16 = Bf16(0);
    /// One.
    pub const ONE: Bf16 = Bf16(0x3F80);
    /// Machine epsilon: 2^-7.
    pub const EPSILON: Bf16 = Bf16(0x3C00);

    /// Converts from FP32 with the given rounding mode.
    #[inline]
    pub fn from_f32(x: f32, mode: Rounding) -> Bf16 {
        let bits = x.to_bits();
        match mode {
            Rounding::Truncate => Bf16((bits >> 16) as u16),
            Rounding::NearestEven => {
                if x.is_nan() {
                    // Quiet the NaN, keep payload MSBs: avoids producing an
                    // infinity from a signalling-NaN pattern during rounding.
                    return Bf16(((bits >> 16) | 0x0040) as u16);
                }
                // Round-to-nearest-even on the 16 discarded bits.
                let lsb = (bits >> 16) & 1;
                let rounded = bits.wrapping_add(0x7FFF + lsb);
                Bf16((rounded >> 16) as u16)
            }
        }
    }

    /// Converts from FP32 with round-to-nearest-even (the common path).
    #[inline]
    pub fn from_f32_rne(x: f32) -> Bf16 {
        Bf16::from_f32(x, Rounding::NearestEven)
    }

    /// Widens to FP32 (exact: BF16 values are a subset of FP32).
    #[inline]
    pub fn to_f32(self) -> f32 {
        f32::from_bits((self.0 as u32) << 16)
    }

    /// Raw bit pattern.
    #[inline]
    pub fn to_bits(self) -> u16 {
        self.0
    }

    /// Builds from a raw bit pattern.
    #[inline]
    pub fn from_bits(bits: u16) -> Bf16 {
        Bf16(bits)
    }
}

/// Narrows a whole FP32 slice into BF16 with round-to-nearest-even.
pub fn narrow_slice(src: &[f32], dst: &mut [Bf16]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = Bf16::from_f32_rne(s);
    }
}

/// Widens a whole BF16 slice into FP32.
pub fn widen_slice(src: &[Bf16], dst: &mut [f32]) {
    assert_eq!(src.len(), dst.len());
    for (d, &s) in dst.iter_mut().zip(src) {
        *d = s.to_f32();
    }
}

/// The quantization applied to every value that passes through BF16 storage:
/// `f32 -> bf16 -> f32`. Exposed because the emulated-BF16 training path
/// applies it tensor-wide between layers.
#[inline]
pub fn quantize_f32(x: f32) -> f32 {
    Bf16::from_f32_rne(x).to_f32()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_values_round_trip() {
        let big = 2.0f32.powi(100); // power of two: exact in bf16
        for &v in &[0.0f32, 1.0, -1.0, 0.5, -0.5, 2.0, 256.0, big, -1.0 / big] {
            let b = Bf16::from_f32_rne(v);
            assert_eq!(b.to_f32(), v, "value {v} should be exactly representable");
        }
    }

    #[test]
    fn aliases_upper_half_of_f32() {
        let x = 1.2345678f32;
        let b = Bf16::from_f32(x, Rounding::Truncate);
        assert_eq!(b.to_bits(), (x.to_bits() >> 16) as u16);
        // Widen: lower half zeroed.
        assert_eq!(b.to_f32().to_bits() & 0xFFFF, 0);
        assert_eq!(b.to_f32().to_bits() >> 16, b.to_bits() as u32);
    }

    #[test]
    fn rne_rounds_to_nearest() {
        // 1.0 + 2^-8 is exactly halfway between bf16(1.0) and bf16(1.0+2^-7);
        // nearest-even must choose 1.0 (even mantissa).
        let halfway = 1.0 + 2.0f32.powi(-8);
        assert_eq!(Bf16::from_f32_rne(halfway).to_f32(), 1.0);
        // Just above halfway rounds up.
        let above = 1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-12);
        assert_eq!(Bf16::from_f32_rne(above).to_f32(), 1.0 + 2.0f32.powi(-7));
        // Odd-mantissa halfway rounds up to even.
        let odd_halfway = 1.0 + 2.0f32.powi(-7) + 2.0f32.powi(-8);
        assert_eq!(
            Bf16::from_f32_rne(odd_halfway).to_f32(),
            1.0 + 2.0f32.powi(-6)
        );
    }

    #[test]
    fn truncate_vs_rne_differ() {
        let x = 1.0 + 2.0f32.powi(-8) + 2.0f32.powi(-9);
        assert_eq!(Bf16::from_f32(x, Rounding::Truncate).to_f32(), 1.0);
        assert_eq!(Bf16::from_f32_rne(x).to_f32(), 1.0 + 2.0f32.powi(-7));
    }

    #[test]
    fn error_bound_is_half_ulp() {
        // For values in [1, 2), ULP = 2^-7, so RNE error <= 2^-8.
        let mut x = 1.0f32;
        while x < 2.0 {
            let err = (quantize_f32(x) - x).abs();
            assert!(err <= 2.0f32.powi(-8), "x={x} err={err}");
            x += 0.000317;
        }
    }

    #[test]
    fn specials_preserved() {
        assert_eq!(Bf16::from_f32_rne(f32::INFINITY).to_f32(), f32::INFINITY);
        assert_eq!(
            Bf16::from_f32_rne(f32::NEG_INFINITY).to_f32(),
            f32::NEG_INFINITY
        );
        assert!(Bf16::from_f32_rne(f32::NAN).to_f32().is_nan());
        // Signed zero.
        assert_eq!(Bf16::from_f32_rne(-0.0).to_bits(), 0x8000);
    }

    #[test]
    fn rne_never_turns_finite_into_nan() {
        // Near-overflow values round to infinity, not NaN.
        let big = f32::from_bits(0x7F7F_FFFF); // max finite f32
        let b = Bf16::from_f32_rne(big);
        assert_eq!(b.to_f32(), f32::INFINITY);
    }

    #[test]
    fn slice_helpers_round_trip() {
        let src: Vec<f32> = (0..100).map(|i| (i as f32 - 50.0) * 0.25).collect();
        let mut b = vec![Bf16::ZERO; 100];
        narrow_slice(&src, &mut b);
        let mut back = vec![0.0f32; 100];
        widen_slice(&b, &mut back);
        // quarters up to 12.5 are exactly representable in bf16? Not all are;
        // check against elementwise quantize instead.
        for (i, &x) in src.iter().enumerate() {
            assert_eq!(back[i], quantize_f32(x));
        }
    }

    #[test]
    fn constants() {
        assert_eq!(Bf16::ONE.to_f32(), 1.0);
        assert_eq!(Bf16::ZERO.to_f32(), 0.0);
        assert_eq!(Bf16::EPSILON.to_f32(), 2.0f32.powi(-7));
    }
}
