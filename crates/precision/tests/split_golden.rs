//! Golden test for Split-SGD-BF16 (Section VII): after K SGD steps, the
//! recombined hi/lo planes must be **bit-exactly** the FP32 SGD trajectory
//! — on an adversarial weight population (subnormals, huge magnitudes,
//! sign flips, zeros) and a gradient stream spanning many binades. The
//! 8-bit and 0-bit ablations must *not* achieve this.

use dlrm_precision::split::{LoBits, SplitTensor};

const STEPS: usize = 500;

/// Weight population covering the ugly corners of the FP32 lattice.
fn adversarial_weights() -> Vec<f32> {
    let mut w = vec![
        0.0,
        -0.0,
        1.0,
        -1.0,
        1.5,
        std::f32::consts::PI,
        -std::f32::consts::E,
        f32::MIN_POSITIVE, // smallest normal
        -f32::MIN_POSITIVE,
        1.0e-40,      // subnormal
        -1.0e-42,     // subnormal
        3.0e30,       // huge
        -7.0e-30,     // tiny
        0.1,          // repeating fraction in binary
        16_777_216.0, // 2^24: f32 integer precision edge
    ];
    // Plus a deterministic spread over many binades.
    for i in 0..49 {
        let mag = 2.0f32.powi((i % 40) - 20);
        let frac = 1.0 + (i as f32) * 0.017;
        w.push(if i % 2 == 0 { mag * frac } else { -mag * frac });
    }
    w
}

/// Deterministic gradient stream mixing magnitudes so updates land above,
/// inside and below every weight's retained-bit window.
fn grad(step: usize, i: usize) -> f32 {
    let scale = 2.0f32.powi(((step * 7 + i * 3) % 24) as i32 - 12);
    let s = ((step * 31 + i * 17) % 13) as f32 - 6.0;
    s * 0.123 * scale
}

#[test]
fn split_sgd_recombined_halves_are_bit_exact_fp32_after_k_steps() {
    let init = adversarial_weights();
    let mut split = SplitTensor::from_f32(&init, LoBits::Sixteen);
    let mut fp32 = init.clone();
    let lr = 0.02f32;

    for step in 0..STEPS {
        let grads: Vec<f32> = (0..init.len()).map(|i| grad(step, i)).collect();
        split.sgd_step(&grads, lr);
        for (w, &g) in fp32.iter_mut().zip(&grads) {
            *w -= lr * g;
        }
        // Bit-exact at *every* step, not just the end — the split planes
        // are the FP32 master weights, merely stored in two halves.
        for (i, &want) in fp32.iter().enumerate() {
            assert_eq!(
                split.full_value(i).to_bits(),
                want.to_bits(),
                "step {step} element {i}: split {} vs fp32 {}",
                split.full_value(i),
                want
            );
        }
        // The model view is always the pure truncation of the master.
        for (i, &want) in fp32.iter().enumerate() {
            assert_eq!(
                split.model_value(i).to_bits(),
                want.to_bits() & 0xFFFF_0000,
                "step {step} element {i}: hi plane must be the 16 MSBs"
            );
        }
    }
}

#[test]
fn eight_and_zero_bit_ablations_diverge_from_fp32() {
    // The paper's ablation: fewer than 16 retained LSBs loses updates.
    let init = adversarial_weights();
    let lr = 0.02f32;
    for lo_bits in [LoBits::Eight, LoBits::Zero] {
        let mut split = SplitTensor::from_f32(&init, lo_bits);
        let mut fp32 = init.clone();
        for step in 0..STEPS {
            let grads: Vec<f32> = (0..init.len()).map(|i| grad(step, i)).collect();
            split.sgd_step(&grads, lr);
            for (w, &g) in fp32.iter_mut().zip(&grads) {
                *w -= lr * g;
            }
        }
        let diverged = fp32
            .iter()
            .enumerate()
            .any(|(i, &w)| split.full_value(i).to_bits() != w.to_bits());
        assert!(
            diverged,
            "{lo_bits:?} tracked FP32 bit-exactly — the ablation should fail"
        );
    }
}

#[test]
fn sparse_row_updates_are_bit_exact_too() {
    // The embedding path uses sgd_step_row; same golden property per row.
    let (rows, cols) = (16usize, 4usize);
    let init: Vec<f32> = adversarial_weights()
        .into_iter()
        .take(rows * cols)
        .collect();
    assert_eq!(init.len(), rows * cols);
    let mut split = SplitTensor::from_f32(&init, LoBits::Sixteen);
    let mut fp32 = init.clone();
    let lr = 0.05f32;

    for step in 0..STEPS {
        let row = (step * 5 + 3) % rows; // deterministic hot-row pattern
        let grow: Vec<f32> = (0..cols).map(|j| grad(step, row * cols + j)).collect();
        split.sgd_step_row(row, cols, &grow, lr);
        for (j, &g) in grow.iter().enumerate() {
            fp32[row * cols + j] -= lr * g;
        }
    }
    for (i, &want) in fp32.iter().enumerate() {
        assert_eq!(
            split.full_value(i).to_bits(),
            want.to_bits(),
            "element {i} after {STEPS} sparse steps"
        );
    }
}
