//! Property-based tests for the reduced-precision substrate.

use dlrm_precision::bf16::{self, Bf16};
use dlrm_precision::fp24::{self, Fp24};
use dlrm_precision::split::{LoBits, SplitTensor};
use dlrm_precision::Rounding;
use proptest::prelude::*;

fn finite_f32() -> impl Strategy<Value = f32> {
    any::<f32>().prop_filter("finite", |x| x.is_finite())
}

proptest! {
    #[test]
    fn bf16_aliases_upper_half(x in finite_f32()) {
        let b = Bf16::from_f32(x, Rounding::Truncate);
        prop_assert_eq!(b.to_bits() as u32, x.to_bits() >> 16);
        prop_assert_eq!(b.to_f32().to_bits(), x.to_bits() & 0xFFFF_0000);
    }

    #[test]
    fn bf16_rne_is_idempotent(x in finite_f32()) {
        let once = bf16::quantize_f32(x);
        prop_assert_eq!(bf16::quantize_f32(once).to_bits(), once.to_bits());
    }

    #[test]
    fn bf16_rne_is_nearest(x in -1.0e30f32..1.0e30) {
        let q = bf16::quantize_f32(x);
        if q.is_finite() {
            // The truncated neighbour and its successor bracket x; RNE must
            // pick whichever is closer (ties allowed either way here).
            let lo = Bf16::from_f32(x, Rounding::Truncate).to_f32();
            let hi = f32::from_bits(Bf16::from_f32(x, Rounding::Truncate).to_f32().to_bits().wrapping_add(1 << 16));
            let d_q = (q as f64 - x as f64).abs();
            let best = (lo as f64 - x as f64).abs().min((hi as f64 - x as f64).abs());
            prop_assert!(d_q <= best + f64::EPSILON, "x={x} q={q} lo={lo} hi={hi}");
        }
    }

    #[test]
    fn bf16_monotone(a in -1.0e20f32..1.0e20, b in -1.0e20f32..1.0e20) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(bf16::quantize_f32(lo) <= bf16::quantize_f32(hi));
    }

    #[test]
    fn fp24_error_smaller_than_bf16(x in -1.0e20f32..1.0e20) {
        let e24 = (fp24::quantize_f32(x) as f64 - x as f64).abs();
        let e16 = (bf16::quantize_f32(x) as f64 - x as f64).abs();
        prop_assert!(e24 <= e16, "x={x} fp24 err {e24} > bf16 err {e16}");
    }

    #[test]
    fn fp24_preserves_sign_and_clears_bits(x in finite_f32()) {
        let q = Fp24::from_f32_rne(x);
        prop_assert_eq!(q.0 & 0xFF, 0);
        if q.to_f32() != 0.0 {
            prop_assert_eq!(q.to_f32().is_sign_negative(), x.is_sign_negative());
        }
    }

    #[test]
    fn split16_round_trip_exact(vals in prop::collection::vec(finite_f32(), 1..64)) {
        let t = SplitTensor::from_f32(&vals, LoBits::Sixteen);
        prop_assert_eq!(t.to_f32_full(), vals);
    }

    #[test]
    fn split_sgd_equals_fp32_sgd(
        init in prop::collection::vec(-10.0f32..10.0, 1..32),
        grads in prop::collection::vec(-1.0f32..1.0, 1..32),
        lr in 0.0001f32..0.5,
    ) {
        let n = init.len().min(grads.len());
        let init = &init[..n];
        let grads = &grads[..n];
        let mut t = SplitTensor::from_f32(init, LoBits::Sixteen);
        for _ in 0..10 {
            t.sgd_step(grads, lr);
        }
        let mut w = init.to_vec();
        for _ in 0..10 {
            for (wi, &g) in w.iter_mut().zip(grads) {
                *wi -= lr * g;
            }
        }
        prop_assert_eq!(t.to_f32_full(), w);
    }

    #[test]
    fn split_model_view_is_bf16_truncation(vals in prop::collection::vec(finite_f32(), 1..32)) {
        let t = SplitTensor::from_f32(&vals, LoBits::Sixteen);
        for (i, &v) in vals.iter().enumerate() {
            prop_assert_eq!(t.model_value(i).to_bits(), v.to_bits() & 0xFFFF_0000);
        }
    }

    #[test]
    fn dot_bf16_close_to_f64(
        pairs in prop::collection::vec((-4.0f32..4.0, -4.0f32..4.0), 0..64),
    ) {
        let a: Vec<Bf16> = pairs.iter().map(|&(x, _)| Bf16::from_f32_rne(x)).collect();
        let b: Vec<Bf16> = pairs.iter().map(|&(_, y)| Bf16::from_f32_rne(y)).collect();
        let got = dlrm_precision::dot::dot_bf16(&a, &b) as f64;
        let want: f64 = a.iter().zip(&b)
            .map(|(&x, &y)| x.to_f32() as f64 * y.to_f32() as f64)
            .sum();
        // f32 accumulation error grows with length; generous bound.
        let bound = 1e-3 * (pairs.len() as f64 + 1.0);
        prop_assert!((got - want).abs() <= bound, "got {got} want {want}");
    }
}
