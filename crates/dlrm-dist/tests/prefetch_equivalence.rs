//! The lookahead prefetch correctness contract: with
//! [`Prefetch::Lookahead`] the trainer must produce **bitwise identical**
//! per-rank loss trajectories *and parameter planes* (both MLPs' weights
//! and biases, every owned embedding table) to the naive pooled-exchange
//! step — for every exchange strategy, rank count, seed and window size.
//! Prefetch moves bytes, never bits.
//!
//! Any failure prints the (strategy, ranks, seed, window) tuple for
//! replay.

use dlrm_comm::nonblocking::{create_channel_worlds_with_chaos, Backend, ProgressEngine};
use dlrm_comm::world::CommWorld;
use dlrm_data::{DlrmConfig, IndexDistribution, LookaheadWindow, MiniBatch};
use dlrm_dist::distributed::{DistDlrm, DistOptions, Schedule};
use dlrm_dist::exchange::ExchangeStrategy;
use dlrm_dist::prefetch::Prefetch;
use dlrm_tensor::init::seeded_rng;

/// Eight tables so the sweep can run up to 8 ranks.
fn cfg8() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(32, 512);
    cfg.dense_features = 6;
    cfg.bottom_mlp = vec![8, 4];
    cfg.emb_dim = 4;
    cfg.num_tables = 8;
    cfg.table_rows = vec![32, 16, 8, 24, 12, 40, 20, 28];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![8, 1];
    cfg
}

fn global_batches(cfg: &DlrmConfig, gn: usize, count: usize, seed: u64) -> Vec<MiniBatch> {
    (0..count)
        .map(|i| {
            MiniBatch::random(
                cfg,
                gn,
                IndexDistribution::Uniform,
                &mut seeded_rng(seed * 10_000 + i as u64, 5),
            )
        })
        .collect()
}

/// Every trained parameter of one rank as raw bit patterns: bottom and top
/// MLP weights + biases in layer order, then each owned embedding table
/// (tagged with its global index).
fn plane_bits(model: &DistDlrm) -> Vec<u64> {
    let mut bits = Vec::new();
    for mlp in [&model.bottom, &model.top] {
        for layer in &mlp.layers {
            bits.extend(layer.w.as_slice().iter().map(|x| x.to_bits() as u64));
            bits.extend(layer.b.iter().map(|x| x.to_bits() as u64));
        }
    }
    for (t, layer) in &model.local_tables {
        bits.push(*t as u64);
        bits.extend(layer.weight.as_slice().iter().map(|x| x.to_bits() as u64));
    }
    bits
}

/// Trains `nranks` thread-ranks and returns each rank's
/// (loss bits, parameter-plane bits) — the full bitwise fingerprint the
/// equivalence assertions compare.
fn train_fingerprint(
    cfg: &DlrmConfig,
    nranks: usize,
    opts: &DistOptions,
    batches: &[MiniBatch],
    lr: f32,
) -> Vec<(Vec<u64>, Vec<u64>)> {
    let backend = Backend::CclLike { workers: 2 };
    let wants_engine =
        opts.strategy == ExchangeStrategy::CclAlltoall || opts.schedule == Schedule::Overlapped;
    let engines = if wants_engine {
        Some(std::sync::Mutex::new(create_channel_worlds_with_chaos(
            nranks, backend, None,
        )))
    } else {
        None
    };
    CommWorld::run(nranks, |comm| {
        let engine = engines.as_ref().map(|m| {
            let comms = std::mem::take(&mut m.lock().unwrap()[comm.rank()]);
            ProgressEngine::new_with_chaos(backend, comms, None)
        });
        let mut model = DistDlrm::new(cfg, comm, engine, opts);
        let losses: Vec<u64> = match opts.prefetch {
            Prefetch::Off => batches
                .iter()
                .map(|b| model.train_step(b, lr).to_bits())
                .collect(),
            Prefetch::Lookahead { window } => {
                let mut win = LookaheadWindow::new(batches, window);
                let mut losses = Vec::with_capacity(batches.len());
                while !win.is_finished() {
                    losses.push(model.train_step_lookahead(&win, lr).to_bits());
                    win.advance();
                }
                losses
            }
        };
        // The optimized step updates the persistent packed weights in
        // place; bring the flat mirrors up to date before fingerprinting.
        model.sync_flat_weights();
        (losses, plane_bits(&model))
    })
}

fn opts(
    strategy: ExchangeStrategy,
    schedule: Schedule,
    seed: u64,
    prefetch: Prefetch,
) -> DistOptions {
    DistOptions {
        strategy,
        seed,
        threads_per_rank: 1,
        schedule,
        // Small cap → several buckets, so the issue-as-produced allreduce
        // genuinely interleaves with the in-flight early fetches.
        bucket_cap_bytes: 128,
        prefetch,
        ..Default::default()
    }
}

/// ranks {1, 2, 4, 8} × `seeds` seeds × windows {1, 2, 4, 8}: prefetched
/// ≡ naive, bitwise, in losses and every parameter plane. The naive
/// baseline is computed once per (ranks, seed) and reused across windows.
fn equivalence_suite(strategy: ExchangeStrategy, schedule: Schedule, seeds: u64) {
    let cfg = cfg8();
    for nranks in [1usize, 2, 4, 8] {
        for seed in 0..seeds {
            let batches = global_batches(&cfg, 16, 3, seed);
            let naive = train_fingerprint(
                &cfg,
                nranks,
                &opts(strategy, schedule, seed, Prefetch::Off),
                &batches,
                0.1,
            );
            for window in [1usize, 2, 4, 8] {
                let got = train_fingerprint(
                    &cfg,
                    nranks,
                    &opts(strategy, schedule, seed, Prefetch::Lookahead { window }),
                    &batches,
                    0.1,
                );
                for (rank, (n, g)) in naive.iter().zip(&got).enumerate() {
                    assert_eq!(
                        n.0, g.0,
                        "{strategy} {schedule} R={nranks} seed={seed} W={window} rank={rank}: losses diverged"
                    );
                    assert_eq!(
                        n.1, g.1,
                        "{strategy} {schedule} R={nranks} seed={seed} W={window} rank={rank}: parameter planes diverged"
                    );
                }
            }
        }
    }
}

#[test]
fn prefetch_equals_naive_scatter_list() {
    equivalence_suite(ExchangeStrategy::ScatterList, Schedule::Overlapped, 50);
}

#[test]
fn prefetch_equals_naive_fused_scatter() {
    equivalence_suite(ExchangeStrategy::FusedScatter, Schedule::Overlapped, 50);
}

#[test]
fn prefetch_equals_naive_alltoall() {
    equivalence_suite(ExchangeStrategy::Alltoall, Schedule::Overlapped, 50);
}

#[test]
fn prefetch_equals_naive_ccl_alltoall() {
    equivalence_suite(ExchangeStrategy::CclAlltoall, Schedule::Overlapped, 50);
}

/// The synchronous schedule runs the early fetch inline instead of in
/// flight — same bytes, same bits.
#[test]
fn prefetch_equals_naive_synchronous_schedule() {
    equivalence_suite(ExchangeStrategy::Alltoall, Schedule::Synchronous, 10);
    equivalence_suite(ExchangeStrategy::CclAlltoall, Schedule::Synchronous, 10);
}

/// Long streams with a deep window: rows live through many
/// fetch/update/invalidate/evict cycles and the pipeline drains past the
/// end of the stream.
#[test]
fn prefetch_equals_naive_long_stream() {
    let cfg = cfg8();
    for strategy in ExchangeStrategy::ALL {
        let batches = global_batches(&cfg, 16, 12, 91);
        let naive = train_fingerprint(
            &cfg,
            4,
            &opts(strategy, Schedule::Overlapped, 91, Prefetch::Off),
            &batches,
            0.1,
        );
        for window in [1usize, 8] {
            let got = train_fingerprint(
                &cfg,
                4,
                &opts(
                    strategy,
                    Schedule::Overlapped,
                    91,
                    Prefetch::Lookahead { window },
                ),
                &batches,
                0.1,
            );
            for (rank, (n, g)) in naive.iter().zip(&got).enumerate() {
                assert_eq!(n.0, g.0, "{strategy} W={window} rank={rank}: losses");
                assert_eq!(n.1, g.1, "{strategy} W={window} rank={rank}: planes");
            }
        }
    }
}
