//! The overlapped schedule's correctness contract: for every exchange
//! strategy, rank count and seed, [`Schedule::Overlapped`] produces
//! **bitwise identical** per-rank loss trajectories to
//! [`Schedule::Synchronous`] — with and without chaos fault plans on the
//! transport. Overlap moves time, never bits.
//!
//! Any failure prints the (strategy, ranks, seed) triple for replay.

use dlrm_comm::chaos::ChaosConfig;
use dlrm_comm::wire::WirePrecision;
use dlrm_data::{DlrmConfig, IndexDistribution, MiniBatch};
use dlrm_dist::distributed::{run_training_with_chaos, DistOptions, Schedule, WireConfig};
use dlrm_dist::exchange::ExchangeStrategy;
use dlrm_tensor::init::seeded_rng;

/// Eight tables so the sweep can run up to 8 ranks.
fn cfg8() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(32, 512);
    cfg.dense_features = 6;
    cfg.bottom_mlp = vec![8, 4];
    cfg.emb_dim = 4;
    cfg.num_tables = 8;
    cfg.table_rows = vec![32, 16, 8, 24, 12, 40, 20, 28];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![8, 1];
    cfg
}

fn global_batches(cfg: &DlrmConfig, gn: usize, count: usize, seed: u64) -> Vec<MiniBatch> {
    (0..count)
        .map(|i| {
            MiniBatch::random(
                cfg,
                gn,
                IndexDistribution::Uniform,
                &mut seeded_rng(seed * 10_000 + i as u64, 5),
            )
        })
        .collect()
}

fn loss_bits(losses: &[Vec<f64>]) -> Vec<Vec<u64>> {
    losses
        .iter()
        .map(|rank| rank.iter().map(|l| l.to_bits()).collect())
        .collect()
}

fn opts_wire(
    strategy: ExchangeStrategy,
    schedule: Schedule,
    seed: u64,
    wire: WireConfig,
) -> DistOptions {
    DistOptions {
        strategy,
        seed,
        threads_per_rank: 1,
        schedule,
        // Small cap → several buckets even on the tiny model, so the
        // issue-as-produced path is genuinely multi-bucket.
        bucket_cap_bytes: 128,
        wire,
        ..Default::default()
    }
}

/// 50 seeds × ranks {1, 2, 4, 8}: overlapped ≡ synchronous, bitwise.
fn equivalence_suite(strategy: ExchangeStrategy) {
    equivalence_suite_wire(strategy, 50, WireConfig::default());
}

fn equivalence_suite_wire(strategy: ExchangeStrategy, seeds: u64, wire: WireConfig) {
    let cfg = cfg8();
    for nranks in [1usize, 2, 4, 8] {
        for seed in 0..seeds {
            let batches = global_batches(&cfg, 16, 2, seed);
            let sync = run_training_with_chaos(
                &cfg,
                nranks,
                &opts_wire(strategy, Schedule::Synchronous, seed, wire),
                &batches,
                0.1,
                None,
            );
            let over = run_training_with_chaos(
                &cfg,
                nranks,
                &opts_wire(strategy, Schedule::Overlapped, seed, wire),
                &batches,
                0.1,
                None,
            );
            assert_eq!(
                loss_bits(&sync),
                loss_bits(&over),
                "{strategy} R={nranks} seed={seed} wire={wire:?}: schedules diverged"
            );
        }
    }
}

#[test]
fn overlapped_equals_synchronous_scatter_list() {
    equivalence_suite(ExchangeStrategy::ScatterList);
}

#[test]
fn overlapped_equals_synchronous_fused_scatter() {
    equivalence_suite(ExchangeStrategy::FusedScatter);
}

#[test]
fn overlapped_equals_synchronous_alltoall() {
    equivalence_suite(ExchangeStrategy::Alltoall);
}

#[test]
fn overlapped_equals_synchronous_ccl_alltoall() {
    equivalence_suite(ExchangeStrategy::CclAlltoall);
}

/// BF16 on every wire: the schedules still agree bitwise — the overlap
/// contract is independent of the wire format because both schedules run
/// the identical quantize/narrow/widen sequence per collective.
#[test]
fn overlapped_equals_synchronous_bf16_wire() {
    let bf16 = WireConfig::all(WirePrecision::Bf16);
    equivalence_suite_wire(ExchangeStrategy::Alltoall, 15, bf16);
    equivalence_suite_wire(ExchangeStrategy::CclAlltoall, 15, bf16);
}

/// The default bucket cap (25 MiB, one bucket on this model) must also be
/// schedule-invariant — not just the forced multi-bucket plans above.
#[test]
fn overlapped_equals_synchronous_default_bucket_cap() {
    let cfg = cfg8();
    for strategy in ExchangeStrategy::ALL {
        let batches = global_batches(&cfg, 16, 3, 7);
        let mk = |schedule| DistOptions {
            strategy,
            seed: 7,
            threads_per_rank: 1,
            schedule,
            ..Default::default()
        };
        let sync =
            run_training_with_chaos(&cfg, 4, &mk(Schedule::Synchronous), &batches, 0.1, None);
        let over = run_training_with_chaos(&cfg, 4, &mk(Schedule::Overlapped), &batches, 0.1, None);
        assert_eq!(loss_bits(&sync), loss_bits(&over), "{strategy}");
    }
}

/// Chaos replay over the overlapped path: an adversarial transport
/// schedule (delays, reorders, duplicates, drops + retry, stalls, worker
/// kills — PR 2's aggressive plans) must not shift a single bit, and the
/// chaotic overlapped run must still match the fault-free *synchronous*
/// baseline.
fn chaos_suite(strategy: ExchangeStrategy) {
    chaos_suite_wire(strategy, 20, WireConfig::default());
}

fn chaos_suite_wire(strategy: ExchangeStrategy, seeds: u64, wire: WireConfig) {
    let cfg = cfg8();
    let nranks = 4;
    let batches = global_batches(&cfg, 16, 3, 3);
    let baseline = loss_bits(&run_training_with_chaos(
        &cfg,
        nranks,
        &opts_wire(strategy, Schedule::Synchronous, 77, wire),
        &batches,
        0.1,
        None,
    ));
    for seed in 0..seeds {
        let plan = ChaosConfig::aggressive(seed).plan();
        let got = loss_bits(&run_training_with_chaos(
            &cfg,
            nranks,
            &opts_wire(strategy, Schedule::Overlapped, 77, wire),
            &batches,
            0.1,
            Some(plan),
        ));
        assert_eq!(
            got, baseline,
            "{strategy} wire={wire:?}: overlapped-under-chaos diverged, failing seed={seed}"
        );
    }
}

#[test]
fn overlapped_chaos_replay_scatter_list() {
    chaos_suite(ExchangeStrategy::ScatterList);
}

#[test]
fn overlapped_chaos_replay_fused_scatter() {
    chaos_suite(ExchangeStrategy::FusedScatter);
}

#[test]
fn overlapped_chaos_replay_alltoall() {
    chaos_suite(ExchangeStrategy::Alltoall);
}

#[test]
fn overlapped_chaos_replay_ccl_alltoall() {
    chaos_suite(ExchangeStrategy::CclAlltoall);
}

#[test]
fn overlapped_chaos_replay_bf16_wire() {
    chaos_suite_wire(
        ExchangeStrategy::CclAlltoall,
        10,
        WireConfig::all(WirePrecision::Bf16),
    );
}
