//! Property-based tests: the embedding exchange is a lossless permutation
//! for arbitrary world shapes, and every strategy produces identical
//! tensors.

use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_dist::exchange::{backward_exchange, forward_exchange, tables_of, ExchangeStrategy};
use dlrm_tensor::Matrix;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_exchange_delivers_correct_slices(
        nranks in 1usize..5,
        extra_tables in 0usize..6,
        local_n in 1usize..4,
        e in 1usize..5,
        strategy_pick in 0usize..3,
    ) {
        let num_tables = nranks + extra_tables; // >= nranks so every rank owns >= 1
        let strategy = [
            ExchangeStrategy::ScatterList,
            ExchangeStrategy::FusedScatter,
            ExchangeStrategy::Alltoall,
        ][strategy_pick];
        let gn = local_n * nranks;
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| Matrix::from_fn(gn, e, |r, c| (t * 10_000 + r * 10 + c) as f32))
                .collect();
            forward_exchange(
                strategy,
                &comm,
                None,
                &outputs,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            )
        });
        for (rank, slices) in out.iter().enumerate() {
            prop_assert_eq!(slices.len(), num_tables);
            for (t, m) in slices.iter().enumerate() {
                for r in 0..local_n {
                    for c in 0..e {
                        let want = (t * 10_000 + (rank * local_n + r) * 10 + c) as f32;
                        prop_assert_eq!(m[(r, c)], want);
                    }
                }
            }
        }
    }

    #[test]
    fn forward_then_backward_is_identity(
        nranks in 1usize..5,
        extra_tables in 0usize..5,
        local_n in 1usize..4,
        e in 1usize..4,
    ) {
        let num_tables = nranks + extra_tables;
        let gn = local_n * nranks;
        let ok = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| Matrix::from_fn(gn, e, |r, c| ((t + 1) * 1000 + r * e + c) as f32))
                .collect();
            let slices = forward_exchange(
                ExchangeStrategy::Alltoall,
                &comm,
                None,
                &outputs,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            );
            let back = backward_exchange(
                ExchangeStrategy::Alltoall,
                &comm,
                None,
                &slices,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            );
            outputs
                .iter()
                .zip(&back)
                .all(|(a, b)| a.as_slice() == b.as_slice())
        });
        prop_assert!(ok.into_iter().all(|b| b));
    }

    #[test]
    fn table_ownership_is_balanced(num_tables in 1usize..60, nranks in 1usize..16) {
        prop_assume!(nranks <= num_tables);
        let counts: Vec<usize> = (0..nranks)
            .map(|q| tables_of(num_tables, nranks, q).len())
            .collect();
        let (min, max) = (
            counts.iter().min().copied().unwrap(),
            counts.iter().max().copied().unwrap(),
        );
        prop_assert!(max - min <= 1, "round-robin must balance within 1: {counts:?}");
        prop_assert_eq!(counts.iter().sum::<usize>(), num_tables);
    }
}
