//! Steady-state allocation check for the train step: after warm-up, live
//! heap bytes and the trainer's iteration-persistent scratch must stop
//! growing. This is what the scratch-reuse in `exchange.rs` (output
//! matrices), `ddp.rs`/`bucketing.rs` (flat gradient buffer) and the
//! `dlogits` buffer buy — without it, every step leaked fresh `Vec`s into
//! the allocator's working set.
//!
//! Uses a counting global allocator; samples are taken with every rank
//! parked at a barrier so the heap is at a well-defined program point.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicIsize, Ordering};

struct CountingAlloc;

static LIVE_BYTES: AtomicIsize = AtomicIsize::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        LIVE_BYTES.fetch_add(layout.size() as isize, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        LIVE_BYTES.fetch_sub(layout.size() as isize, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        LIVE_BYTES.fetch_add(
            new_size as isize - layout.size() as isize,
            Ordering::Relaxed,
        );
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOC: CountingAlloc = CountingAlloc;

use dlrm_comm::nonblocking::{create_channel_worlds, Backend, ProgressEngine};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_data::{DlrmConfig, IndexDistribution, LookaheadWindow, MiniBatch};
use dlrm_dist::distributed::{DistDlrm, DistOptions, Schedule, WireConfig};
use dlrm_dist::exchange::ExchangeStrategy;
use dlrm_dist::prefetch::Prefetch;
use dlrm_tensor::init::seeded_rng;

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(32, 512);
    cfg.dense_features = 6;
    cfg.bottom_mlp = vec![8, 4];
    cfg.emb_dim = 4;
    cfg.num_tables = 4;
    cfg.table_rows = vec![32, 16, 8, 24];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![8, 1];
    cfg
}

/// Runs `steps` training iterations at 2 ranks and returns rank 0's
/// per-step (live-heap, scratch) samples, each taken inside a barrier
/// sandwich so every rank is parked at a known point.
fn sample_training(schedule: Schedule, steps: usize) -> Vec<(isize, usize)> {
    sample_training_wire(schedule, steps, WireConfig::default())
}

fn sample_training_wire(schedule: Schedule, steps: usize, wire: WireConfig) -> Vec<(isize, usize)> {
    let cfg = tiny_cfg();
    let nranks = 2;
    let opts = DistOptions {
        strategy: ExchangeStrategy::CclAlltoall,
        seed: 5,
        threads_per_rank: 1,
        schedule,
        bucket_cap_bytes: 128, // several buckets: exercise the full path
        wire,
        ..Default::default()
    };
    let batches: Vec<MiniBatch> = (0..steps)
        .map(|i| {
            MiniBatch::random(
                &cfg,
                8,
                IndexDistribution::Uniform,
                &mut seeded_rng(42 + i as u64, 5),
            )
        })
        .collect();
    let backend = Backend::CclLike { workers: 2 };
    let worlds = std::sync::Mutex::new(create_channel_worlds(nranks, backend));
    let out = CommWorld::run(nranks, |comm| {
        let me = comm.rank();
        let engine = {
            let comms = std::mem::take(&mut worlds.lock().unwrap()[me]);
            ProgressEngine::new(backend, comms)
        };
        let mut model = DistDlrm::new(&cfg, comm, Some(engine), &opts);
        let mut samples = Vec::with_capacity(steps);
        for b in &batches {
            model.train_step(b, 0.1);
            model.comm_barrier();
            if me == 0 {
                samples.push((LIVE_BYTES.load(Ordering::Relaxed), model.scratch_bytes()));
            }
            model.comm_barrier();
        }
        samples
    });
    out.into_iter().next().unwrap()
}

fn assert_steady(samples: &[(isize, usize)], label: &str) {
    // Scratch buffers must stabilize after the very first step.
    let scratch_after_warmup = samples[1].1;
    for (step, (_, scratch)) in samples.iter().enumerate().skip(1) {
        assert_eq!(
            *scratch, scratch_after_warmup,
            "{label}: scratch grew at step {step}"
        );
    }
    // Live heap: the late-window peak must not exceed the warm-up peak by
    // more than a small slack (allocator-internal jitter, channel nodes).
    let warm = samples[2..steps_mid(samples)]
        .iter()
        .map(|s| s.0)
        .max()
        .unwrap();
    let late = samples[steps_mid(samples)..]
        .iter()
        .map(|s| s.0)
        .max()
        .unwrap();
    const SLACK: isize = 64 * 1024;
    assert!(
        late <= warm + SLACK,
        "{label}: live heap grew from {warm} to {late} bytes"
    );
}

fn steps_mid(samples: &[(isize, usize)]) -> usize {
    samples.len() / 2
}

/// Prefetch-enabled variant of [`sample_training`]: drives the trainer
/// through the lookahead window loop instead of per-batch steps.
fn sample_training_prefetch(
    schedule: Schedule,
    steps: usize,
    window: usize,
) -> Vec<(isize, usize)> {
    let cfg = tiny_cfg();
    let nranks = 2;
    let opts = DistOptions {
        strategy: ExchangeStrategy::CclAlltoall,
        seed: 5,
        threads_per_rank: 1,
        schedule,
        bucket_cap_bytes: 128,
        prefetch: Prefetch::Lookahead { window },
        ..Default::default()
    };
    // A rotating covering index pattern instead of uniform draws: batch i
    // reads lookup k of table t as row (k + i) mod rows(t). Every slice
    // touches a full-width run of consecutive rows that shifts one row per
    // step, so the resident set, tracker rings, fetch lists and free lists
    // all hit their high-water marks within the first few windows — and
    // *deterministically* stay there, unlike random draws whose capacity
    // high-waters keep creeping on coupon-collector tails. Rows still
    // rotate out of the window (evictions + refetches) and neighbouring
    // slices overlap on the 8-row table (foreign invalidations), so the
    // whole fetch/update/invalidate/evict cycle runs every step.
    let batches: Vec<MiniBatch> = (0..steps)
        .map(|i| {
            let mut b = MiniBatch::random(
                &cfg,
                8,
                IndexDistribution::Uniform,
                &mut seeded_rng(42 + i as u64, 5),
            );
            for (t, idx) in b.indices.iter_mut().enumerate() {
                let rows = cfg.table_rows[t];
                for (k, v) in idx.iter_mut().enumerate() {
                    *v = ((k as u64 + i as u64) % rows) as u32;
                }
            }
            b
        })
        .collect();
    let backend = Backend::CclLike { workers: 2 };
    let worlds = std::sync::Mutex::new(create_channel_worlds(nranks, backend));
    let out = CommWorld::run(nranks, |comm| {
        let me = comm.rank();
        let engine = {
            let comms = std::mem::take(&mut worlds.lock().unwrap()[me]);
            ProgressEngine::new(backend, comms)
        };
        let mut model = DistDlrm::new(&cfg, comm, Some(engine), &opts);
        let mut samples = Vec::with_capacity(steps);
        let mut win = LookaheadWindow::new(&batches, window);
        while !win.is_finished() {
            model.train_step_lookahead(&win, 0.1);
            win.advance();
            model.comm_barrier();
            if me == 0 {
                samples.push((LIVE_BYTES.load(Ordering::Relaxed), model.scratch_bytes()));
            }
            model.comm_barrier();
        }
        samples
    });
    out.into_iter().next().unwrap()
}

/// Steady-state assertion for the lookahead path. The window scratch —
/// row caches, tracker expiry rings, fetch lists, dedup scratch — is
/// grow-only and saturates once the resident row set and per-slice unique
/// counts have hit their maxima, which takes longer than the one-step
/// warm-up of the naive path; scratch is pinned from `warmup` on, and the
/// live-heap peak must not drift between the warm and late halves.
fn assert_steady_from(samples: &[(isize, usize)], warmup: usize, label: &str) {
    if std::env::var_os("ALLOC_DEBUG").is_some() {
        eprintln!(
            "{label}: scratch trajectory {:?}",
            samples.iter().map(|s| s.1).collect::<Vec<_>>()
        );
    }
    // The very last step is the pipeline drain: no next batch, so every
    // still-resident row is evicted at once and the cache free lists grow
    // past their steady-state size one final time. Steady state is every
    // step from `warmup` up to (excluding) the drain.
    let scratch_warm = samples[warmup].1;
    for (step, (_, scratch)) in samples[..samples.len() - 1].iter().enumerate().skip(warmup) {
        assert_eq!(
            *scratch, scratch_warm,
            "{label}: prefetch scratch grew at step {step}"
        );
    }
    let mid = (warmup + samples.len()) / 2;
    let warm = samples[warmup..mid].iter().map(|s| s.0).max().unwrap();
    let late = samples[mid..].iter().map(|s| s.0).max().unwrap();
    const SLACK: isize = 64 * 1024;
    assert!(
        late <= warm + SLACK,
        "{label}: live heap grew from {warm} to {late} bytes"
    );
}

#[test]
fn prefetch_overlapped_step_does_not_grow_allocations() {
    let samples = sample_training_prefetch(Schedule::Overlapped, 60, 4);
    assert_steady_from(&samples, 10, "prefetch overlapped W=4");
}

#[test]
fn prefetch_synchronous_step_does_not_grow_allocations() {
    let samples = sample_training_prefetch(Schedule::Synchronous, 60, 4);
    assert_steady_from(&samples, 10, "prefetch synchronous W=4");
}

#[test]
fn overlapped_step_does_not_grow_allocations() {
    let samples = sample_training(Schedule::Overlapped, 50);
    assert_steady(&samples, "overlapped");
}

#[test]
fn synchronous_step_does_not_grow_allocations() {
    let samples = sample_training(Schedule::Synchronous, 50);
    assert_steady(&samples, "synchronous");
}

// The BF16 wire adds narrow/widen staging to every hot collective; all of
// it must come from the grow-only thread-local pools, so steady state
// stays allocation-flat exactly like FP32.

#[test]
fn bf16_overlapped_step_does_not_grow_allocations() {
    let samples = sample_training_wire(
        Schedule::Overlapped,
        50,
        WireConfig::all(WirePrecision::Bf16),
    );
    assert_steady(&samples, "bf16 overlapped");
}

#[test]
fn bf16_synchronous_step_does_not_grow_allocations() {
    let samples = sample_training_wire(
        Schedule::Synchronous,
        50,
        WireConfig::all(WirePrecision::Bf16),
    );
    assert_steady(&samples, "bf16 synchronous");
}

// The INT8 wire adds quantize staging (byte buffers + scale vectors) to
// every hot collective; bytes come from the comm crate's byte pool and
// scales from the f32 pool, so steady state stays allocation-flat too.

#[test]
fn int8_overlapped_step_does_not_grow_allocations() {
    let samples = sample_training_wire(
        Schedule::Overlapped,
        50,
        WireConfig::all(WirePrecision::Int8),
    );
    assert_steady(&samples, "int8 overlapped");
}

#[test]
fn int8_synchronous_step_does_not_grow_allocations() {
    let samples = sample_training_wire(
        Schedule::Synchronous,
        50,
        WireConfig::all(WirePrecision::Int8),
    );
    assert_steady(&samples, "int8 synchronous");
}

// The adaptive policy keeps per-bucket envelopes and a reused decision
// buffer; its per-step work (decide + observe) must be allocation-flat
// once the bucket count is known.

#[test]
fn adaptive_overlapped_step_does_not_grow_allocations() {
    let wire = WireConfig {
        allreduce: dlrm_dist::distributed::AllreduceWire::Adaptive { error_bound: 0.05 },
        ..WireConfig::default()
    };
    let samples = sample_training_wire(Schedule::Overlapped, 50, wire);
    assert_steady(&samples, "adaptive overlapped");
}
