//! Chaos suite for the distributed layer: embedding exchanges and whole
//! hybrid-parallel training runs must be **bitwise stable** under seeded
//! adversarial transport schedules.
//!
//! Every assertion message prints the failing seed; replay it with
//! `ChaosConfig::aggressive(seed)`.

use dlrm_comm::chaos::{ChaosConfig, ChaosSnapshot};
use dlrm_comm::nonblocking::{create_channel_worlds_with_chaos, Backend, ProgressEngine};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_comm::FaultPlan;
use dlrm_data::{DlrmConfig, IndexDistribution, LookaheadWindow, MiniBatch};
use dlrm_dist::distributed::{run_training_with_chaos, DistDlrm, DistOptions, WireConfig};
use dlrm_dist::exchange::{backward_exchange, forward_exchange, tables_of, ExchangeStrategy};
use dlrm_dist::prefetch::Prefetch;
use dlrm_tensor::init::seeded_rng;
use dlrm_tensor::Matrix;
use std::sync::Arc;

const SEEDS: u64 = 200;

fn bits(v: &[f32]) -> Vec<u32> {
    v.iter().map(|x| x.to_bits()).collect()
}

/// Synthetic `GN×E` table output whose values encode (table, row, col) —
/// any misrouted chunk shows up as a bit difference.
fn table_output(t: usize, gn: usize, e: usize) -> Matrix {
    Matrix::from_fn(gn, e, |row, col| {
        (t * 1_000_000 + row * 100 + col) as f32 * 0.31 - 4.2
    })
}

/// Synthetic `n×E` gradient for table `t` as produced on rank `me`.
fn table_grad(me: usize, t: usize, n: usize, e: usize) -> Matrix {
    Matrix::from_fn(n, e, |row, col| {
        ((me * 131 + t * 17 + row * 5 + col) as f32) * 0.173 - 1.9
    })
}

/// One forward + backward exchange; returns per-rank bit transcripts plus
/// the number of faults the blocking world observed.
fn exchange_round(
    strategy: ExchangeStrategy,
    backend: Backend,
    plan: Option<Arc<FaultPlan>>,
    nranks: usize,
    num_tables: usize,
) -> Vec<(Vec<u32>, u64)> {
    let (local_n, e) = (3usize, 2usize);
    let gn = local_n * nranks;
    let engines = if strategy == ExchangeStrategy::CclAlltoall {
        Some(std::sync::Mutex::new(create_channel_worlds_with_chaos(
            nranks,
            backend,
            plan.clone(),
        )))
    } else {
        None
    };
    CommWorld::run_with_chaos(nranks, plan.clone(), |comm| {
        let me = comm.rank();
        // With CclAlltoall the traffic flows through the engine's channel
        // worlds, so count faults there; keep the handle alive past the
        // engine's drop.
        let mut engine_stats = None;
        let eng = engines.as_ref().map(|m| {
            let comms = std::mem::take(&mut m.lock().unwrap()[me]);
            engine_stats = Some(Arc::clone(comms[0].chaos_stats_arc()));
            ProgressEngine::new_with_chaos(backend, comms, plan.clone())
        });
        let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
            .into_iter()
            .map(|t| table_output(t, gn, e))
            .collect();
        let slices = forward_exchange(
            strategy,
            &comm,
            eng.as_ref(),
            &outputs,
            num_tables,
            local_n,
            e,
            WirePrecision::Fp32,
        );
        let grads: Vec<Matrix> = (0..num_tables)
            .map(|t| table_grad(me, t, local_n, e))
            .collect();
        let full = backward_exchange(
            strategy,
            &comm,
            eng.as_ref(),
            &grads,
            num_tables,
            local_n,
            e,
            WirePrecision::Fp32,
        );
        let mut transcript = Vec::new();
        for m in slices.iter().chain(full.iter()) {
            transcript.extend(bits(m.as_slice()));
        }
        let injected = comm.chaos_stats().snapshot().total_injected()
            + engine_stats
                .map(|s| s.snapshot().total_injected())
                .unwrap_or(0);
        (transcript, injected)
    })
}

fn exchange_suite(strategy: ExchangeStrategy, backend: Backend, nranks: usize, num_tables: usize) {
    let baseline: Vec<Vec<u32>> = exchange_round(strategy, backend, None, nranks, num_tables)
        .into_iter()
        .map(|(t, _)| t)
        .collect();
    let mut injected_total = 0u64;
    for seed in 0..SEEDS {
        let plan = ChaosConfig::aggressive(seed).plan();
        let out = exchange_round(strategy, backend, Some(plan), nranks, num_tables);
        for (rank, (t, injected)) in out.iter().enumerate() {
            assert_eq!(
                t, &baseline[rank],
                "{strategy} exchange diverged: nranks={nranks} rank={rank} \
                 failing seed={seed}"
            );
            injected_total += injected;
        }
    }
    assert!(
        injected_total > SEEDS,
        "{strategy}: chaos too quiet over {SEEDS} seeds: {injected_total} faults"
    );
}

#[test]
fn blocking_exchanges_bitwise_stable_across_seeds() {
    // All three blocking strategies, with tables not divisible by ranks so
    // per-rank payloads are uneven.
    for strategy in [
        ExchangeStrategy::ScatterList,
        ExchangeStrategy::FusedScatter,
        ExchangeStrategy::Alltoall,
    ] {
        exchange_suite(strategy, Backend::MpiLike, 3, 8);
    }
}

#[test]
fn mpi_like_engine_exchange_bitwise_stable_across_seeds() {
    exchange_suite(ExchangeStrategy::CclAlltoall, Backend::MpiLike, 4, 8);
}

#[test]
fn ccl_like_engine_exchange_bitwise_stable_across_seeds() {
    exchange_suite(
        ExchangeStrategy::CclAlltoall,
        Backend::CclLike { workers: 2 },
        4,
        8,
    );
}

// ---------------------------------------------------------------------------
// Whole training runs: the loss trajectory of every rank must replay
// bitwise under chaos.
// ---------------------------------------------------------------------------

fn tiny_cfg() -> DlrmConfig {
    let mut cfg = DlrmConfig::small().scaled_down(32, 512);
    cfg.dense_features = 6;
    cfg.bottom_mlp = vec![8, 4];
    cfg.emb_dim = 4;
    cfg.num_tables = 4;
    cfg.table_rows = vec![32, 16, 8, 24];
    cfg.lookups_per_table = 2;
    cfg.top_mlp = vec![8, 1];
    cfg
}

fn global_batches(cfg: &DlrmConfig, gn: usize, count: usize) -> Vec<MiniBatch> {
    (0..count)
        .map(|i| {
            MiniBatch::random(
                cfg,
                gn,
                IndexDistribution::Uniform,
                &mut seeded_rng(1000 + i as u64, 5),
            )
        })
        .collect()
}

fn loss_bits(losses: &[Vec<f64>]) -> Vec<Vec<u64>> {
    losses
        .iter()
        .map(|rank| rank.iter().map(|l| l.to_bits()).collect())
        .collect()
}

fn training_suite(strategy: ExchangeStrategy, seeds: u64) {
    training_suite_wire(strategy, seeds, WireConfig::default());
}

fn training_suite_wire(strategy: ExchangeStrategy, seeds: u64, wire: WireConfig) {
    let cfg = tiny_cfg();
    let nranks = 4;
    let batches = global_batches(&cfg, 8, 3);
    let opts = DistOptions {
        strategy,
        seed: 77,
        wire,
        ..Default::default()
    };
    let baseline = loss_bits(&run_training_with_chaos(
        &cfg, nranks, &opts, &batches, 0.1, None,
    ));
    for seed in 0..seeds {
        let plan = ChaosConfig::aggressive(seed).plan();
        let got = loss_bits(&run_training_with_chaos(
            &cfg,
            nranks,
            &opts,
            &batches,
            0.1,
            Some(plan),
        ));
        assert_eq!(
            got, baseline,
            "{strategy} training losses diverged under chaos: failing seed={seed}"
        );
    }
}

#[test]
fn training_bitwise_stable_under_chaos_blocking_alltoall() {
    training_suite(ExchangeStrategy::Alltoall, 40);
}

#[test]
fn training_bitwise_stable_under_chaos_fused_scatter() {
    training_suite(ExchangeStrategy::FusedScatter, 40);
}

#[test]
fn training_bitwise_stable_under_chaos_engine_alltoall() {
    training_suite(ExchangeStrategy::CclAlltoall, 40);
}

// ---------------------------------------------------------------------------
// Prefetch-enabled training: the lookahead pipeline's tagged fetches ride
// the same faulted transports — the early fetch flies on the engine's
// exchange channel, the late fetch on the blocking world — and must replay
// the fault-free trajectory bitwise.
// ---------------------------------------------------------------------------

/// One prefetch-enabled training run (CclAlltoall, 4 ranks) over a chaotic
/// transport; returns each rank's loss bits plus the fault snapshot of the
/// engine's exchange channel — the channel the prefetch alltoalls ride.
fn prefetch_training_round(
    window: usize,
    plan: Option<Arc<FaultPlan>>,
) -> Vec<(Vec<u64>, ChaosSnapshot)> {
    let cfg = tiny_cfg();
    let nranks = 4;
    let batches = global_batches(&cfg, 8, 4);
    let backend = Backend::CclLike { workers: 2 };
    let opts = DistOptions {
        strategy: ExchangeStrategy::CclAlltoall,
        seed: 77,
        threads_per_rank: 1,
        prefetch: Prefetch::Lookahead { window },
        ..Default::default()
    };
    let engines = std::sync::Mutex::new(create_channel_worlds_with_chaos(
        nranks,
        backend,
        plan.clone(),
    ));
    CommWorld::run_with_chaos(nranks, plan.clone(), |comm| {
        let me = comm.rank();
        let comms = std::mem::take(&mut engines.lock().unwrap()[me]);
        let stats = Arc::clone(comms[0].chaos_stats_arc());
        let engine = ProgressEngine::new_with_chaos(backend, comms, plan.clone());
        let mut model = DistDlrm::new(&cfg, comm, Some(engine), &opts);
        let mut win = LookaheadWindow::new(&batches, window);
        let mut losses = Vec::with_capacity(batches.len());
        while !win.is_finished() {
            losses.push(model.train_step_lookahead(&win, 0.1).to_bits());
            win.advance();
        }
        (losses, stats.snapshot())
    })
}

/// 200-seed chaos replay of the prefetch-enabled trainer: delays,
/// reorders, drops and stalls on the prefetch channel (and the blocking
/// world under it) must not move a single bit of any rank's trajectory.
#[test]
fn prefetch_training_bitwise_stable_under_chaos() {
    let baseline: Vec<Vec<u64>> = prefetch_training_round(2, None)
        .into_iter()
        .map(|(l, _)| l)
        .collect();
    let mut injected = 0u64;
    for seed in 0..SEEDS {
        let plan = ChaosConfig::aggressive(seed).plan();
        for (rank, (losses, snap)) in prefetch_training_round(2, Some(plan)).iter().enumerate() {
            assert_eq!(
                losses, &baseline[rank],
                "prefetch training diverged under chaos: failing seed={seed} rank={rank}"
            );
            injected += snap.total_injected();
        }
    }
    assert!(
        injected > SEEDS,
        "prefetch chaos too quiet over {SEEDS} seeds: {injected} faults"
    );
}

/// Regression: a delay/stall-heavy plan holds the early fetch of batch
/// `i+1` in the sender's outbox past the start of step `i+1`, so the
/// pipeline's landing wait genuinely blocks on a fetch that arrives late —
/// the trajectory must still replay bitwise, and the plan must actually
/// have injected the late deliveries it promises.
#[test]
fn prefetch_lands_after_next_step_starts_regression() {
    let baseline: Vec<Vec<u64>> = prefetch_training_round(2, None)
        .into_iter()
        .map(|(l, _)| l)
        .collect();
    let plan = ChaosConfig {
        delay_prob: 0.9,
        max_delay: 3,
        stall_prob: 0.5,
        max_stall_yields: 64,
        ..ChaosConfig::aggressive(4242)
    }
    .plan();
    let got = prefetch_training_round(2, Some(plan));
    let mut held_back = 0u64;
    for (rank, (losses, snap)) in got.iter().enumerate() {
        assert_eq!(
            losses, &baseline[rank],
            "late-landing prefetch shifted bits on rank {rank}"
        );
        held_back += snap.delayed + snap.stalls;
    }
    assert!(
        held_back > 0,
        "regression plan injected no delays/stalls on the prefetch channel"
    );
}

#[test]
fn bf16_training_bitwise_stable_under_chaos() {
    // The fault layer never inspects payloads, so a fully BF16 wire must
    // replay its own fault-free baseline bitwise, exactly like FP32.
    training_suite_wire(
        ExchangeStrategy::CclAlltoall,
        20,
        WireConfig::all(WirePrecision::Bf16),
    );
    training_suite_wire(
        ExchangeStrategy::Alltoall,
        20,
        WireConfig::all(WirePrecision::Bf16),
    );
}

#[test]
fn int8_training_bitwise_stable_under_chaos() {
    // The INT8 wire adds scale headers to the faulted payload stream
    // (delay/reorder/drop/duplicate now hit `Payload::Int8` envelopes) —
    // the trajectory must still replay its fault-free baseline bitwise.
    training_suite_wire(
        ExchangeStrategy::CclAlltoall,
        SEEDS,
        WireConfig::all(WirePrecision::Int8),
    );
}

#[test]
fn adaptive_training_bitwise_stable_under_chaos() {
    // The adaptive policy decides per bucket from the reduced gradients;
    // under chaos those are bitwise unchanged, so every rank must keep
    // making identical decisions and the losses must replay bitwise.
    let wire = WireConfig {
        allreduce: dlrm_dist::distributed::AllreduceWire::Adaptive { error_bound: 0.05 },
        ..WireConfig::default()
    };
    training_suite_wire(ExchangeStrategy::CclAlltoall, SEEDS, wire);
}
