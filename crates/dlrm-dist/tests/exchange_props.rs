//! Property tests for the embedding exchange: whatever the strategy, rank
//! count and table geometry, (a) every forward slice lands on the rank that
//! [`owner_of`] says produced it, (b) the backward exchange conserves
//! gradient mass table by table, and (c) forward→backward round-trips the
//! owners' tensors bit-exactly.

use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::CommWorld;
use dlrm_dist::exchange::{
    backward_exchange, forward_exchange, owner_of, tables_of, ExchangeStrategy,
};
use dlrm_tensor::Matrix;
use proptest::prelude::*;

/// Synthetic table output encoding (table, global row, col) in the value.
fn table_output(t: usize, gn: usize, e: usize) -> Matrix {
    Matrix::from_fn(gn, e, |row, col| {
        (t * 1_000_000 + row * 1_000 + col) as f32 + 0.5
    })
}

/// Synthetic gradient for table `t` on rank `me`.
fn table_grad(me: usize, t: usize, n: usize, e: usize) -> Matrix {
    Matrix::from_fn(n, e, |row, col| {
        ((me * 97 + t * 13 + row * 3 + col) as f32).mul_add(0.011, -0.7)
    })
}

fn strategies() -> Vec<ExchangeStrategy> {
    // CclAlltoall without an engine exercises its blocking fallback.
    ExchangeStrategy::ALL.to_vec()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn forward_slices_land_on_owner_ranks(
        nranks in prop::sample::select(vec![1usize, 2, 4, 8]),
        extra_tables in 0usize..6,
        local_n in 1usize..4,
        e in 1usize..5,
        strategy in prop::sample::select(strategies()),
    ) {
        let num_tables = nranks + extra_tables;
        let gn = local_n * nranks;
        let out = CommWorld::run(nranks, move |comm| {
            let me = comm.rank();
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| table_output(t, gn, e))
                .collect();
            forward_exchange(
                strategy,
                &comm,
                None,
                &outputs,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            )
        });
        for (rank, slices) in out.iter().enumerate() {
            prop_assert_eq!(slices.len(), num_tables);
            for (t, m) in slices.iter().enumerate() {
                // The slice must be the owner's rows r·n..(r+1)·n, verbatim.
                prop_assert_eq!(owner_of(t, nranks), t % nranks);
                for row in 0..local_n {
                    for col in 0..e {
                        let want =
                            (t * 1_000_000 + (rank * local_n + row) * 1_000 + col) as f32 + 0.5;
                        prop_assert_eq!(
                            m[(row, col)], want,
                            "{} rank {} table {} ({},{})", strategy, rank, t, row, col
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn backward_exchange_conserves_gradient_mass(
        nranks in prop::sample::select(vec![1usize, 2, 4, 8]),
        extra_tables in 0usize..6,
        local_n in 1usize..4,
        e in 1usize..5,
        strategy in prop::sample::select(strategies()),
    ) {
        let num_tables = nranks + extra_tables;
        let out = CommWorld::run(nranks, move |comm| {
            let me = comm.rank();
            let grads: Vec<Matrix> = (0..num_tables)
                .map(|t| table_grad(me, t, local_n, e))
                .collect();
            backward_exchange(
                strategy,
                &comm,
                None,
                &grads,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            )
        });
        // Each owner got its tables' full gradients; mass per table must be
        // exactly the sum of every rank's submitted block (assembly copies,
        // so summing in the same f64 order is exact).
        for t in 0..num_tables {
            let owner = owner_of(t, nranks);
            let j = tables_of(num_tables, nranks, owner)
                .iter()
                .position(|&x| x == t)
                .unwrap();
            let assembled = &out[owner][j];
            prop_assert_eq!(assembled.rows(), local_n * nranks);
            let mut want = 0.0f64;
            for rank in 0..nranks {
                for v in table_grad(rank, t, local_n, e).as_slice() {
                    want += *v as f64;
                }
            }
            let got: f64 = assembled.as_slice().iter().map(|&v| v as f64).sum();
            prop_assert!(
                (got - want).abs() < 1e-9,
                "{} table {}: mass {} vs {}", strategy, t, got, want
            );
            // And the per-rank blocks are verbatim copies, not just sums.
            for rank in 0..nranks {
                let block = &assembled.as_slice()
                    [rank * local_n * e..(rank + 1) * local_n * e];
                prop_assert_eq!(
                    block,
                    table_grad(rank, t, local_n, e).as_slice(),
                    "{} table {} block from rank {}", strategy, t, rank
                );
            }
        }
    }

    #[test]
    fn forward_backward_round_trip_is_bit_exact(
        nranks in prop::sample::select(vec![1usize, 2, 4, 8]),
        extra_tables in 0usize..6,
        local_n in 1usize..4,
        e in 1usize..5,
        strategy in prop::sample::select(strategies()),
    ) {
        let num_tables = nranks + extra_tables;
        let gn = local_n * nranks;
        let out = CommWorld::run(nranks, move |comm| {
            let me = comm.rank();
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| table_output(t, gn, e))
                .collect();
            let slices = forward_exchange(
                strategy,
                &comm,
                None,
                &outputs,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            );
            let back = backward_exchange(
                strategy,
                &comm,
                None,
                &slices,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            );
            (outputs, back)
        });
        for (rank, (outputs, back)) in out.iter().enumerate() {
            prop_assert_eq!(outputs.len(), back.len());
            for (o, b) in outputs.iter().zip(back) {
                prop_assert_eq!(
                    o.as_slice(), b.as_slice(),
                    "{} rank {}: scatter→gather must round-trip", strategy, rank
                );
            }
        }
    }

    #[test]
    fn bf16_forward_exchange_is_quantized_fp32_exchange(
        nranks in prop::sample::select(vec![1usize, 2, 4, 8]),
        extra_tables in 0usize..6,
        local_n in 1usize..4,
        e in 1usize..5,
    ) {
        // Every delivered element of a BF16-wire alltoall exchange must be
        // exactly the once-quantized FP32-wire element — no double
        // rounding, no element skipping the wire (except the whole
        // exchange when R == 1, which never leaves the rank).
        let num_tables = nranks + extra_tables;
        let gn = local_n * nranks;
        let run = |wire: WirePrecision| {
            CommWorld::run(nranks, move |comm| {
                let me = comm.rank();
                let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                    .into_iter()
                    .map(|t| table_output(t, gn, e))
                    .collect();
                forward_exchange(
                    ExchangeStrategy::Alltoall,
                    &comm,
                    None,
                    &outputs,
                    num_tables,
                    local_n,
                    e,
                    wire,
                )
            })
        };
        let bf = run(WirePrecision::Bf16);
        let fp = run(WirePrecision::Fp32);
        for (rank, (bf_slices, fp_slices)) in bf.iter().zip(&fp).enumerate() {
            for (t, (b, f)) in bf_slices.iter().zip(fp_slices).enumerate() {
                let mut want = f.as_slice().to_vec();
                if nranks > 1 {
                    dlrm_kernels::bf16wire::quantize_slice(
                        dlrm_kernels::gemm::Isa::Scalar,
                        &mut want,
                    );
                }
                let got: Vec<u32> = b.as_slice().iter().map(|v| v.to_bits()).collect();
                let want: Vec<u32> = want.iter().map(|v| v.to_bits()).collect();
                prop_assert_eq!(got, want, "rank {} table {}", rank, t);
            }
        }
    }
}
