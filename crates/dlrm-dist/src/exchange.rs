//! The four embedding-exchange strategies of Section IV-B, as split-phase
//! (begin/finish) collectives.
//!
//! After the model-parallel embedding forward, rank `q` holds, for each of
//! its tables, the bag outputs of the *whole* global minibatch (`GN×E`).
//! The interaction needs, on every rank `r`, the rows `r·n..(r+1)·n` of
//! *every* table's output. The backward pass needs the reverse mapping for
//! the gradients.
//!
//! All strategies move exactly the same Eq. 2 volume; they differ in call
//! structure (S scatters vs R scatters vs 1 alltoall) and in which backend
//! drives them — exactly the contrast Figures 9/12 quantify in time. Here,
//! in the functional substrate, they must all produce identical tensors.
//!
//! # Split-phase structure
//!
//! Every exchange is a `begin_*` (pack the send payloads and, when a
//! [`ProgressEngine`] drives the strategy, put the collective in flight)
//! followed by a `finish_*` (complete the transfer and assemble the output
//! tensors). The overlapped train step runs compute between the two halves
//! so the exchange is hidden behind the bottom MLP; the synchronous
//! schedule calls them back to back. Both orders perform the *identical*
//! packing, collective and assembly, which is why the two schedules are
//! bitwise-equal — begin/finish only moves *when* the transfer happens,
//! never *what* is transferred.
//!
//! Only [`ExchangeStrategy::CclAlltoall`] with an engine is genuinely in
//! flight after `begin`; the blocking strategies defer their collective to
//! `finish` (they have no progress thread to run on — the paper's blocking
//! MPI behaviour). Either way the exposed communication time is what
//! `finish` measures.

use dlrm_comm::collectives;
use dlrm_comm::instrument::{time_opt, OpKind, TimingRecorder};
use dlrm_comm::nonblocking::{OpOutput, ProgressEngine, Request};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::Communicator;
use dlrm_tensor::Matrix;
use dlrm_topology::OwnershipMap;

/// Strategy for the embedding exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// One scatter per table (the original multi-device DLRM code).
    ScatterList,
    /// One scatter per owner rank, tables coalesced into one buffer.
    FusedScatter,
    /// One native pairwise alltoall (blocking).
    Alltoall,
    /// The alltoall submitted to a CCL-like multi-channel progress engine.
    CclAlltoall,
}

impl ExchangeStrategy {
    /// All strategies in the figures' order.
    pub const ALL: [ExchangeStrategy; 4] = [
        ExchangeStrategy::ScatterList,
        ExchangeStrategy::FusedScatter,
        ExchangeStrategy::Alltoall,
        ExchangeStrategy::CclAlltoall,
    ];
}

impl std::fmt::Display for ExchangeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExchangeStrategy::ScatterList => "ScatterList",
            ExchangeStrategy::FusedScatter => "Fused Scatter",
            ExchangeStrategy::Alltoall => "Alltoall",
            ExchangeStrategy::CclAlltoall => "CCL Alltoall",
        };
        f.write_str(s)
    }
}

/// Tables owned by rank `q` (round-robin), in ascending order.
///
/// Thin wrapper over [`dlrm_topology::OwnershipMap::round_robin`] — the
/// trainer and the sharded serving engine share that one mapping type, so
/// a future elastic reshard swaps the map in a single place.
pub fn tables_of(num_tables: usize, nranks: usize, q: usize) -> Vec<usize> {
    OwnershipMap::round_robin(num_tables, nranks)
        .tables_of(q)
        .to_vec()
}

/// Owner rank of table `t` (the allocation-free round-robin form of
/// [`dlrm_topology::OwnershipMap::owner_of`]).
#[inline]
pub fn owner_of(t: usize, nranks: usize) -> usize {
    OwnershipMap::round_robin_owner(t, nranks)
}

/// Grows/reshapes `out` to exactly `count` matrices of `rows×cols`,
/// reusing existing allocations when the shapes already match.
pub(crate) fn ensure_mats(out: &mut Vec<Matrix>, count: usize, rows: usize, cols: usize) {
    out.truncate(count);
    for m in out.iter_mut() {
        if m.shape() != (rows, cols) {
            *m = Matrix::zeros(rows, cols);
        }
    }
    while out.len() < count {
        out.push(Matrix::zeros(rows, cols));
    }
}

/// The engine channel dedicated to embedding exchanges (allreduce buckets
/// avoid it so an in-flight alltoall is never serialized behind them).
pub const EXCHANGE_CHANNEL: usize = 0;

/// What `begin` left for `finish` to do.
enum PendingState {
    /// Submitted to a progress channel; `finish` only waits.
    InFlight(Request),
    /// Packed payloads for a blocking pairwise alltoall, run at `finish`
    /// with the captured wire precision and INT8 scale-group length (the
    /// per-table `n × E` block, so each table gets its own scale).
    DeferredAlltoall(Vec<Vec<f32>>, WirePrecision, usize),
    /// Per-table rooted scatter/gather payloads (forward: `Some(parts)` on
    /// the owner; backward: one payload per table). Always FP32 on the
    /// wire: the rooted scatter/gather strategies model the legacy paths
    /// the paper replaces, so they never take the BF16 fast path.
    DeferredPerTable(Vec<Option<Vec<Vec<f32>>>>),
    /// Per-root coalesced payloads (fused scatter/gather). FP32-only, as
    /// above.
    DeferredPerRoot(Vec<Vec<f32>>),
}

/// An embedding forward exchange between `begin` and `finish`.
pub struct PendingForwardExchange {
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
    state: PendingState,
}

/// An embedding-gradient backward exchange between `begin` and `finish`.
pub struct PendingBackwardExchange {
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
    state: PendingState,
}

/// Packs this rank's table outputs and starts the forward exchange.
/// `local_outputs[j]` is the `GN×E` output of this rank's `j`-th table
/// (ascending global index). Packing time is charged to
/// `Alltoall-Framework`; an engine-driven alltoall is in flight when this
/// returns, the blocking strategies run at `finish`. `wire` selects the
/// on-wire element format of the alltoall strategies (the rooted
/// scatter/gather strategies always ship FP32).
#[allow(clippy::too_many_arguments)] // split-phase twin of the blocking form
pub fn begin_forward_exchange(
    strategy: ExchangeStrategy,
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    local_outputs: &[Matrix],
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
    wire: WirePrecision,
    rec: Option<&TimingRecorder>,
) -> PendingForwardExchange {
    let r = comm.nranks();
    let me = comm.rank();
    let mine = tables_of(num_tables, r, me);
    assert_eq!(
        local_outputs.len(),
        mine.len(),
        "one output per local table"
    );
    for m in local_outputs {
        assert_eq!(
            m.shape(),
            (local_n * r, emb_dim),
            "global-batch table output"
        );
    }
    let chunk = local_n * emb_dim;

    // send[p] = concat over my tables of p's row block.
    let pack_for = |p: usize| -> Vec<f32> {
        let mut buf = Vec::with_capacity(mine.len() * chunk);
        for out in local_outputs {
            buf.extend_from_slice(&out.as_slice()[p * chunk..(p + 1) * chunk]);
        }
        buf
    };

    let state = time_opt(rec, OpKind::AlltoallFramework, || match strategy {
        ExchangeStrategy::Alltoall | ExchangeStrategy::CclAlltoall => {
            let send: Vec<Vec<f32>> = (0..r).map(pack_for).collect();
            match (strategy, engine) {
                (ExchangeStrategy::CclAlltoall, Some(eng)) => {
                    PendingState::InFlight(eng.alltoall_wire_grouped(
                        EXCHANGE_CHANNEL,
                        send,
                        wire,
                        collectives::TAG_A2A,
                        chunk,
                    ))
                }
                _ => PendingState::DeferredAlltoall(send, wire, chunk),
            }
        }
        ExchangeStrategy::ScatterList => {
            let parts = (0..num_tables)
                .map(|t| {
                    (owner_of(t, r) == me).then(|| {
                        let j = mine.iter().position(|&x| x == t).unwrap();
                        (0..r)
                            .map(|p| {
                                local_outputs[j].as_slice()[p * chunk..(p + 1) * chunk].to_vec()
                            })
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            PendingState::DeferredPerTable(parts)
        }
        ExchangeStrategy::FusedScatter => {
            // My own root scatter sends pack_for(p) to each p; the other
            // roots' scatters need no payload from us.
            PendingState::DeferredPerRoot((0..r).map(pack_for).collect())
        }
    });
    PendingForwardExchange {
        num_tables,
        local_n,
        emb_dim,
        state,
    }
}

/// Completes a forward exchange: waits for (or runs) the collective and
/// assembles into `out` the `n×E` slice of every global table for this
/// rank, ordered by global table index. `out` is reused across iterations.
/// Transfer time is charged to `Alltoall-Wait`, assembly to
/// `Alltoall-Framework`.
pub fn finish_forward_exchange(
    pending: PendingForwardExchange,
    comm: &Communicator,
    out: &mut Vec<Matrix>,
    rec: Option<&TimingRecorder>,
) {
    let r = comm.nranks();
    let me = comm.rank();
    let (num_tables, local_n, emb_dim) = (pending.num_tables, pending.local_n, pending.emb_dim);
    let chunk = local_n * emb_dim;
    ensure_mats(out, num_tables, local_n, emb_dim);

    // recv[q] = concat over q's tables of my row block.
    let assemble = |recv: &[Vec<f32>], out: &mut Vec<Matrix>| {
        let mut seen = 0usize;
        for (q, payload) in recv.iter().enumerate() {
            let qt = tables_of(num_tables, r, q);
            assert_eq!(
                payload.len(),
                qt.len() * chunk,
                "payload size from rank {q}"
            );
            for (j, &t) in qt.iter().enumerate() {
                out[t]
                    .as_mut_slice()
                    .copy_from_slice(&payload[j * chunk..(j + 1) * chunk]);
                seen += 1;
            }
        }
        assert_eq!(seen, num_tables, "missing table slice");
    };

    match pending.state {
        PendingState::InFlight(req) => {
            let recv = match req.wait_recording(rec, OpKind::AlltoallWait) {
                OpOutput::PerRank(v) => v,
                other => panic!("unexpected op output: {other:?}"),
            };
            time_opt(rec, OpKind::AlltoallFramework, || assemble(&recv, out));
        }
        PendingState::DeferredAlltoall(send, wire, group) => {
            let recv = time_opt(rec, OpKind::AlltoallWait, || {
                collectives::alltoall_wire_grouped_tagged(
                    comm,
                    send,
                    wire,
                    collectives::TAG_A2A,
                    group,
                )
            });
            time_opt(rec, OpKind::AlltoallFramework, || assemble(&recv, out));
        }
        PendingState::DeferredPerTable(mut parts) => {
            // One scatter per table, rooted at its owner (global order).
            for (t, slot) in parts.iter_mut().enumerate() {
                let root = owner_of(t, r);
                let slice = time_opt(rec, OpKind::AlltoallWait, || {
                    collectives::scatter(comm, root, slot.take())
                });
                time_opt(rec, OpKind::AlltoallFramework, || {
                    out[t].as_mut_slice().copy_from_slice(&slice)
                });
            }
        }
        PendingState::DeferredPerRoot(mine_parts) => {
            // One scatter per owner with all its tables coalesced.
            let mut recv: Vec<Vec<f32>> = (0..r).map(|_| Vec::new()).collect();
            #[allow(clippy::needless_range_loop)] // root is a rank id
            for root in 0..r {
                let parts = (root == me).then(|| mine_parts.clone());
                recv[root] = time_opt(rec, OpKind::AlltoallWait, || {
                    collectives::scatter(comm, root, parts)
                });
            }
            time_opt(rec, OpKind::AlltoallFramework, || assemble(&recv, out));
        }
    }
}

/// Packs this rank's per-table gradients and starts the backward exchange.
/// `grads[t]` is this rank's `n×E` gradient for global table `t`. `wire`
/// selects the on-wire element format of the alltoall strategies.
#[allow(clippy::too_many_arguments)] // split-phase twin of the blocking form
pub fn begin_backward_exchange(
    strategy: ExchangeStrategy,
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    grads: &[Matrix],
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
    wire: WirePrecision,
    rec: Option<&TimingRecorder>,
) -> PendingBackwardExchange {
    let r = comm.nranks();
    assert_eq!(grads.len(), num_tables, "one gradient per global table");
    for g in grads {
        assert_eq!(g.shape(), (local_n, emb_dim), "local gradient shape");
    }
    let chunk = local_n * emb_dim;

    // Payload for owner q: concat over q's tables of my gradient block.
    let pack_for = |q: usize| -> Vec<f32> {
        let mut buf = Vec::new();
        for &t in &tables_of(num_tables, r, q) {
            buf.extend_from_slice(grads[t].as_slice());
        }
        buf
    };

    let state = time_opt(rec, OpKind::AlltoallFramework, || match strategy {
        ExchangeStrategy::Alltoall | ExchangeStrategy::CclAlltoall => {
            let send: Vec<Vec<f32>> = (0..r).map(pack_for).collect();
            match (strategy, engine) {
                (ExchangeStrategy::CclAlltoall, Some(eng)) => {
                    PendingState::InFlight(eng.alltoall_wire_grouped(
                        EXCHANGE_CHANNEL,
                        send,
                        wire,
                        collectives::TAG_A2A,
                        chunk,
                    ))
                }
                _ => PendingState::DeferredAlltoall(send, wire, chunk),
            }
        }
        ExchangeStrategy::ScatterList => {
            // Reverse of a scatter is a gather: one payload per table.
            let parts = (0..num_tables)
                .map(|t| Some(vec![grads[t].as_slice().to_vec()]))
                .collect();
            PendingState::DeferredPerTable(parts)
        }
        ExchangeStrategy::FusedScatter => {
            // One gather per owner with its tables coalesced.
            PendingState::DeferredPerRoot((0..r).map(pack_for).collect())
        }
    });
    PendingBackwardExchange {
        num_tables,
        local_n,
        emb_dim,
        state,
    }
}

/// Completes a backward exchange: assembles into `out`, for each *local*
/// table (ascending global index), the `GN×E` gradient (rank slices
/// stacked in rank order). `out` is reused across iterations.
pub fn finish_backward_exchange(
    pending: PendingBackwardExchange,
    comm: &Communicator,
    out: &mut Vec<Matrix>,
    rec: Option<&TimingRecorder>,
) {
    let r = comm.nranks();
    let me = comm.rank();
    let (num_tables, local_n, emb_dim) = (pending.num_tables, pending.local_n, pending.emb_dim);
    let mine = tables_of(num_tables, r, me);
    let chunk = local_n * emb_dim;
    ensure_mats(out, mine.len(), local_n * r, emb_dim);

    // per_rank[p] = concat over my tables of p's gradient block.
    let assemble_local = |per_rank: &[Vec<f32>], out: &mut Vec<Matrix>| {
        for (j, full) in out.iter_mut().enumerate() {
            for (p, payload) in per_rank.iter().enumerate() {
                full.as_mut_slice()[p * chunk..(p + 1) * chunk]
                    .copy_from_slice(&payload[j * chunk..(j + 1) * chunk]);
            }
        }
    };

    match pending.state {
        PendingState::InFlight(req) => {
            let recv = match req.wait_recording(rec, OpKind::AlltoallWait) {
                OpOutput::PerRank(v) => v,
                other => panic!("unexpected op output: {other:?}"),
            };
            time_opt(rec, OpKind::AlltoallFramework, || {
                assemble_local(&recv, out)
            });
        }
        PendingState::DeferredAlltoall(send, wire, group) => {
            let recv = time_opt(rec, OpKind::AlltoallWait, || {
                collectives::alltoall_wire_grouped_tagged(
                    comm,
                    send,
                    wire,
                    collectives::TAG_A2A,
                    group,
                )
            });
            time_opt(rec, OpKind::AlltoallFramework, || {
                assemble_local(&recv, out)
            });
        }
        PendingState::DeferredPerTable(parts) => {
            let mut j = 0usize;
            for (t, slot) in parts.into_iter().enumerate() {
                let root = owner_of(t, r);
                let payload = slot
                    .map(|mut v| std::mem::take(&mut v[0]))
                    .expect("backward scatter-list payload");
                let gathered = time_opt(rec, OpKind::AlltoallWait, || {
                    collectives::gather(comm, root, payload)
                });
                if let Some(per_rank) = gathered {
                    time_opt(rec, OpKind::AlltoallFramework, || {
                        let full = &mut out[j];
                        for (p, payload) in per_rank.iter().enumerate() {
                            full.as_mut_slice()[p * chunk..(p + 1) * chunk]
                                .copy_from_slice(payload);
                        }
                    });
                    j += 1;
                }
            }
            assert_eq!(j, mine.len(), "gather must return parts at root");
        }
        PendingState::DeferredPerRoot(payloads) => {
            let mut mine_parts: Option<Vec<Vec<f32>>> = None;
            for (root, payload) in payloads.into_iter().enumerate() {
                let gathered = time_opt(rec, OpKind::AlltoallWait, || {
                    collectives::gather(comm, root, payload)
                });
                if root == me {
                    mine_parts = gathered;
                }
            }
            let per_rank = mine_parts.expect("gather must return parts at root");
            time_opt(rec, OpKind::AlltoallFramework, || {
                assemble_local(&per_rank, out)
            });
        }
    }
}

/// Blocking forward exchange (begin + finish back to back). Returns the
/// `n×E` slice of every global table for this rank, ordered by global
/// table index.
#[allow(clippy::too_many_arguments)] // mirror of the split-phase begin
pub fn forward_exchange(
    strategy: ExchangeStrategy,
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    local_outputs: &[Matrix],
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
    wire: WirePrecision,
) -> Vec<Matrix> {
    let pending = begin_forward_exchange(
        strategy,
        comm,
        engine,
        local_outputs,
        num_tables,
        local_n,
        emb_dim,
        wire,
        None,
    );
    let mut out = Vec::new();
    finish_forward_exchange(pending, comm, &mut out, None);
    out
}

/// Blocking backward exchange (begin + finish back to back). Returns, for
/// each *local* table (ascending global index), the assembled `GN×E`
/// gradient (rank slices stacked in rank order).
#[allow(clippy::too_many_arguments)] // mirror of the split-phase begin
pub fn backward_exchange(
    strategy: ExchangeStrategy,
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    grads: &[Matrix],
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
    wire: WirePrecision,
) -> Vec<Matrix> {
    let pending = begin_backward_exchange(
        strategy, comm, engine, grads, num_tables, local_n, emb_dim, wire, None,
    );
    let mut out = Vec::new();
    finish_backward_exchange(pending, comm, &mut out, None);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_comm::nonblocking::{create_channel_worlds, Backend};
    use dlrm_comm::world::CommWorld;

    /// Synthetic table output: value encodes (table, global row, column).
    fn table_output(t: usize, gn: usize, e: usize) -> Matrix {
        Matrix::from_fn(gn, e, |row, col| (t * 1_000_000 + row * 100 + col) as f32)
    }

    fn check_forward(strategy: ExchangeStrategy, nranks: usize, num_tables: usize) {
        let (local_n, e) = (3usize, 2usize);
        let gn = local_n * nranks;
        let engines = if strategy == ExchangeStrategy::CclAlltoall {
            Some(create_channel_worlds(
                nranks,
                Backend::CclLike { workers: 2 },
            ))
        } else {
            None
        };
        let engines = std::sync::Mutex::new(engines);
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let eng = {
                let mut guard = engines.lock().unwrap();
                guard.as_mut().map(|worlds| {
                    ProgressEngine::new(
                        Backend::CclLike { workers: 2 },
                        std::mem::take(&mut worlds[me]),
                    )
                })
            };
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| table_output(t, gn, e))
                .collect();
            forward_exchange(
                strategy,
                &comm,
                eng.as_ref(),
                &outputs,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            )
        });
        for (rank, slices) in out.iter().enumerate() {
            assert_eq!(slices.len(), num_tables);
            for (t, m) in slices.iter().enumerate() {
                for row in 0..local_n {
                    for col in 0..e {
                        let want = (t * 1_000_000 + (rank * local_n + row) * 100 + col) as f32;
                        assert_eq!(
                            m[(row, col)],
                            want,
                            "{strategy}: rank {rank} table {t} ({row},{col})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forward_exchange_all_strategies_agree() {
        for strategy in ExchangeStrategy::ALL {
            check_forward(strategy, 4, 8); // Small-style: S divisible by R
            check_forward(strategy, 3, 8); // uneven tables per rank
            check_forward(strategy, 1, 5); // degenerate single rank
        }
    }

    #[test]
    fn backward_exchange_reassembles_rank_slices() {
        let (nranks, num_tables, local_n, e) = (3usize, 5usize, 2usize, 2usize);
        for strategy in [
            ExchangeStrategy::ScatterList,
            ExchangeStrategy::FusedScatter,
            ExchangeStrategy::Alltoall,
        ] {
            let out = CommWorld::run(nranks, |comm| {
                let me = comm.rank();
                // grad for table t from rank r: constant r*10 + t.
                let grads: Vec<Matrix> = (0..num_tables)
                    .map(|t| Matrix::from_fn(local_n, e, |_, _| (me * 10 + t) as f32))
                    .collect();
                backward_exchange(
                    strategy,
                    &comm,
                    None,
                    &grads,
                    num_tables,
                    local_n,
                    e,
                    WirePrecision::Fp32,
                )
            });
            for (rank, full_grads) in out.iter().enumerate() {
                let mine = tables_of(num_tables, nranks, rank);
                assert_eq!(full_grads.len(), mine.len(), "{strategy}");
                for (j, &t) in mine.iter().enumerate() {
                    let g = &full_grads[j];
                    assert_eq!(g.rows(), local_n * nranks);
                    for p in 0..nranks {
                        for row in 0..local_n {
                            assert_eq!(
                                g[(p * local_n + row, 0)],
                                (p * 10 + t) as f32,
                                "{strategy}: owner {rank} table {t} from rank {p}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forward_then_backward_round_trip() {
        // Scatter out, gather back: owners must recover exactly what the
        // ranks received.
        let (nranks, num_tables, local_n, e) = (4usize, 6usize, 2usize, 3usize);
        let gn = local_n * nranks;
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| table_output(t, gn, e))
                .collect();
            let slices = forward_exchange(
                ExchangeStrategy::Alltoall,
                &comm,
                None,
                &outputs,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            );
            let back = backward_exchange(
                ExchangeStrategy::Alltoall,
                &comm,
                None,
                &slices,
                num_tables,
                local_n,
                e,
                WirePrecision::Fp32,
            );
            (outputs, back)
        });
        for (outputs, back) in out {
            for (o, b) in outputs.iter().zip(&back) {
                assert_eq!(o.as_slice(), b.as_slice());
            }
        }
    }

    #[test]
    fn split_phase_reuses_output_allocations() {
        // Two rounds through the same output vector: the second round must
        // write into the first round's matrices, not fresh ones.
        let (nranks, num_tables, local_n, e) = (2usize, 4usize, 2usize, 3usize);
        let gn = local_n * nranks;
        CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| table_output(t, gn, e))
                .collect();
            let mut out = Vec::new();
            for round in 0..2 {
                let pending = begin_forward_exchange(
                    ExchangeStrategy::Alltoall,
                    &comm,
                    None,
                    &outputs,
                    num_tables,
                    local_n,
                    e,
                    WirePrecision::Fp32,
                    None,
                );
                let ptrs: Vec<*const f32> =
                    out.iter().map(|m: &Matrix| m.as_slice().as_ptr()).collect();
                finish_forward_exchange(pending, &comm, &mut out, None);
                if round > 0 {
                    for (m, p) in out.iter().zip(&ptrs) {
                        assert!(
                            std::ptr::eq(m.as_slice().as_ptr(), *p),
                            "output reallocated"
                        );
                    }
                }
            }
        });
    }

    #[test]
    fn table_ownership_is_a_partition() {
        for nranks in 1..=6 {
            let map = OwnershipMap::round_robin(26, nranks);
            let mut seen = [false; 26];
            for q in 0..nranks {
                for t in tables_of(26, nranks, q) {
                    assert!(!seen[t]);
                    assert_eq!(owner_of(t, nranks), q);
                    // The wrappers and the shared map type must agree —
                    // the serving engine partitions by the same map.
                    assert_eq!(map.owner_of(t), q);
                    seen[t] = true;
                }
                assert_eq!(tables_of(26, nranks, q), map.tables_of(q));
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
