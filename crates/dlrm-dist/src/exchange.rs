//! The four embedding-exchange strategies of Section IV-B.
//!
//! After the model-parallel embedding forward, rank `q` holds, for each of
//! its tables, the bag outputs of the *whole* global minibatch (`GN×E`).
//! The interaction needs, on every rank `r`, the rows `r·n..(r+1)·n` of
//! *every* table's output. The backward pass needs the reverse mapping for
//! the gradients.
//!
//! All strategies move exactly the same Eq. 2 volume; they differ in call
//! structure (S scatters vs R scatters vs 1 alltoall) and in which backend
//! drives them — exactly the contrast Figures 9/12 quantify in time. Here,
//! in the functional substrate, they must all produce identical tensors.

use dlrm_comm::collectives;
use dlrm_comm::nonblocking::{OpOutput, ProgressEngine};
use dlrm_comm::world::Communicator;
use dlrm_tensor::Matrix;

/// Strategy for the embedding exchange.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExchangeStrategy {
    /// One scatter per table (the original multi-device DLRM code).
    ScatterList,
    /// One scatter per owner rank, tables coalesced into one buffer.
    FusedScatter,
    /// One native pairwise alltoall (blocking).
    Alltoall,
    /// The alltoall submitted to a CCL-like multi-channel progress engine.
    CclAlltoall,
}

impl ExchangeStrategy {
    /// All strategies in the figures' order.
    pub const ALL: [ExchangeStrategy; 4] = [
        ExchangeStrategy::ScatterList,
        ExchangeStrategy::FusedScatter,
        ExchangeStrategy::Alltoall,
        ExchangeStrategy::CclAlltoall,
    ];
}

impl std::fmt::Display for ExchangeStrategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ExchangeStrategy::ScatterList => "ScatterList",
            ExchangeStrategy::FusedScatter => "Fused Scatter",
            ExchangeStrategy::Alltoall => "Alltoall",
            ExchangeStrategy::CclAlltoall => "CCL Alltoall",
        };
        f.write_str(s)
    }
}

/// Tables owned by rank `q` (round-robin), in ascending order.
pub fn tables_of(num_tables: usize, nranks: usize, q: usize) -> Vec<usize> {
    (0..num_tables).filter(|t| t % nranks == q).collect()
}

/// Owner rank of table `t`.
#[inline]
pub fn owner_of(t: usize, nranks: usize) -> usize {
    t % nranks
}

/// Forward exchange: `local_outputs[j]` is the `GN×E` output of this
/// rank's `j`-th table (ascending global index). Returns the `n×E` slice
/// of every global table for this rank, ordered by global table index.
pub fn forward_exchange(
    strategy: ExchangeStrategy,
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    local_outputs: &[Matrix],
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
) -> Vec<Matrix> {
    let r = comm.nranks();
    let me = comm.rank();
    let mine = tables_of(num_tables, r, me);
    assert_eq!(
        local_outputs.len(),
        mine.len(),
        "one output per local table"
    );
    for m in local_outputs {
        assert_eq!(
            m.shape(),
            (local_n * r, emb_dim),
            "global-batch table output"
        );
    }
    let chunk = local_n * emb_dim;

    let assemble = |recv: &[Vec<f32>]| -> Vec<Matrix> {
        // recv[q] = concat over q's tables of my row block.
        let mut out: Vec<Option<Matrix>> = (0..num_tables).map(|_| None).collect();
        for (q, payload) in recv.iter().enumerate() {
            let qt = tables_of(num_tables, r, q);
            assert_eq!(
                payload.len(),
                qt.len() * chunk,
                "payload size from rank {q}"
            );
            for (j, &t) in qt.iter().enumerate() {
                out[t] = Some(Matrix::from_slice(
                    local_n,
                    emb_dim,
                    &payload[j * chunk..(j + 1) * chunk],
                ));
            }
        }
        out.into_iter()
            .map(|m| m.expect("missing table slice"))
            .collect()
    };

    match strategy {
        ExchangeStrategy::Alltoall | ExchangeStrategy::CclAlltoall => {
            // send[p] = concat over my tables of p's row block.
            let send: Vec<Vec<f32>> = (0..r)
                .map(|p| {
                    let mut buf = Vec::with_capacity(mine.len() * chunk);
                    for out in local_outputs {
                        buf.extend_from_slice(&out.as_slice()[p * chunk..(p + 1) * chunk]);
                    }
                    buf
                })
                .collect();
            let recv = match (strategy, engine) {
                (ExchangeStrategy::CclAlltoall, Some(eng)) => match eng.alltoall(0, send).wait() {
                    OpOutput::PerRank(v) => v,
                    other => panic!("unexpected op output: {other:?}"),
                },
                _ => collectives::alltoall(comm, send),
            };
            assemble(&recv)
        }
        ExchangeStrategy::ScatterList => {
            // One scatter per table, rooted at its owner (global order).
            let mut out = Vec::with_capacity(num_tables);
            for t in 0..num_tables {
                let root = owner_of(t, r);
                let parts = (root == me).then(|| {
                    let j = mine.iter().position(|&x| x == t).unwrap();
                    (0..r)
                        .map(|p| local_outputs[j].as_slice()[p * chunk..(p + 1) * chunk].to_vec())
                        .collect::<Vec<_>>()
                });
                let slice = collectives::scatter(comm, root, parts);
                out.push(Matrix::from_slice(local_n, emb_dim, &slice));
            }
            out
        }
        ExchangeStrategy::FusedScatter => {
            // One scatter per owner with all its tables coalesced.
            let mut recv: Vec<Vec<f32>> = (0..r).map(|_| Vec::new()).collect();
            #[allow(clippy::needless_range_loop)] // root is a rank id
            for root in 0..r {
                let parts = (root == me).then(|| {
                    (0..r)
                        .map(|p| {
                            let mut buf = Vec::with_capacity(mine.len() * chunk);
                            for out in local_outputs {
                                buf.extend_from_slice(&out.as_slice()[p * chunk..(p + 1) * chunk]);
                            }
                            buf
                        })
                        .collect::<Vec<_>>()
                });
                recv[root] = collectives::scatter(comm, root, parts);
            }
            assemble(&recv)
        }
    }
}

/// Backward exchange: `grads[t]` is this rank's `n×E` gradient for global
/// table `t`. Returns, for each *local* table (ascending global index), the
/// assembled `GN×E` gradient (rank slices stacked in rank order).
pub fn backward_exchange(
    strategy: ExchangeStrategy,
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    grads: &[Matrix],
    num_tables: usize,
    local_n: usize,
    emb_dim: usize,
) -> Vec<Matrix> {
    let r = comm.nranks();
    let me = comm.rank();
    let mine = tables_of(num_tables, r, me);
    assert_eq!(grads.len(), num_tables, "one gradient per global table");
    for g in grads {
        assert_eq!(g.shape(), (local_n, emb_dim), "local gradient shape");
    }
    let chunk = local_n * emb_dim;

    let assemble_local = |per_rank: &[Vec<f32>]| -> Vec<Matrix> {
        // per_rank[p] = concat over my tables of p's gradient block.
        let mut out = Vec::with_capacity(mine.len());
        for (j, _t) in mine.iter().enumerate() {
            let mut full = Matrix::zeros(local_n * r, emb_dim);
            for (p, payload) in per_rank.iter().enumerate() {
                full.as_mut_slice()[p * chunk..(p + 1) * chunk]
                    .copy_from_slice(&payload[j * chunk..(j + 1) * chunk]);
            }
            out.push(full);
        }
        out
    };

    match strategy {
        ExchangeStrategy::Alltoall | ExchangeStrategy::CclAlltoall => {
            // send[q] = concat over q's tables of my gradient block.
            let send: Vec<Vec<f32>> = (0..r)
                .map(|q| {
                    let mut buf = Vec::new();
                    for &t in &tables_of(num_tables, r, q) {
                        buf.extend_from_slice(grads[t].as_slice());
                    }
                    buf
                })
                .collect();
            let recv = match (strategy, engine) {
                (ExchangeStrategy::CclAlltoall, Some(eng)) => match eng.alltoall(0, send).wait() {
                    OpOutput::PerRank(v) => v,
                    other => panic!("unexpected op output: {other:?}"),
                },
                _ => collectives::alltoall(comm, send),
            };
            assemble_local(&recv)
        }
        ExchangeStrategy::ScatterList => {
            // Reverse of a scatter is a gather: one per table.
            let mut out: Vec<Matrix> = Vec::with_capacity(mine.len());
            #[allow(clippy::needless_range_loop)] // t is a global table id
            for t in 0..num_tables {
                let root = owner_of(t, r);
                let gathered = collectives::gather(comm, root, grads[t].as_slice().to_vec());
                if let Some(parts) = gathered {
                    let mut full = Matrix::zeros(local_n * r, emb_dim);
                    for (p, payload) in parts.iter().enumerate() {
                        full.as_mut_slice()[p * chunk..(p + 1) * chunk].copy_from_slice(payload);
                    }
                    out.push(full);
                }
            }
            out
        }
        ExchangeStrategy::FusedScatter => {
            // One gather per owner with its tables coalesced.
            let mut mine_parts: Option<Vec<Vec<f32>>> = None;
            for root in 0..r {
                let mut buf = Vec::new();
                for &t in &tables_of(num_tables, r, root) {
                    buf.extend_from_slice(grads[t].as_slice());
                }
                let gathered = collectives::gather(comm, root, buf);
                if root == me {
                    mine_parts = gathered;
                }
            }
            assemble_local(&mine_parts.expect("gather must return parts at root"))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm_comm::nonblocking::{create_channel_worlds, Backend};
    use dlrm_comm::world::CommWorld;

    /// Synthetic table output: value encodes (table, global row, column).
    fn table_output(t: usize, gn: usize, e: usize) -> Matrix {
        Matrix::from_fn(gn, e, |row, col| (t * 1_000_000 + row * 100 + col) as f32)
    }

    fn check_forward(strategy: ExchangeStrategy, nranks: usize, num_tables: usize) {
        let (local_n, e) = (3usize, 2usize);
        let gn = local_n * nranks;
        let engines = if strategy == ExchangeStrategy::CclAlltoall {
            Some(create_channel_worlds(
                nranks,
                Backend::CclLike { workers: 2 },
            ))
        } else {
            None
        };
        let engines = std::sync::Mutex::new(engines);
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let eng = {
                let mut guard = engines.lock().unwrap();
                guard.as_mut().map(|worlds| {
                    ProgressEngine::new(
                        Backend::CclLike { workers: 2 },
                        std::mem::take(&mut worlds[me]),
                    )
                })
            };
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| table_output(t, gn, e))
                .collect();
            forward_exchange(
                strategy,
                &comm,
                eng.as_ref(),
                &outputs,
                num_tables,
                local_n,
                e,
            )
        });
        for (rank, slices) in out.iter().enumerate() {
            assert_eq!(slices.len(), num_tables);
            for (t, m) in slices.iter().enumerate() {
                for row in 0..local_n {
                    for col in 0..e {
                        let want = (t * 1_000_000 + (rank * local_n + row) * 100 + col) as f32;
                        assert_eq!(
                            m[(row, col)],
                            want,
                            "{strategy}: rank {rank} table {t} ({row},{col})"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn forward_exchange_all_strategies_agree() {
        for strategy in ExchangeStrategy::ALL {
            check_forward(strategy, 4, 8); // Small-style: S divisible by R
            check_forward(strategy, 3, 8); // uneven tables per rank
            check_forward(strategy, 1, 5); // degenerate single rank
        }
    }

    #[test]
    fn backward_exchange_reassembles_rank_slices() {
        let (nranks, num_tables, local_n, e) = (3usize, 5usize, 2usize, 2usize);
        for strategy in [
            ExchangeStrategy::ScatterList,
            ExchangeStrategy::FusedScatter,
            ExchangeStrategy::Alltoall,
        ] {
            let out = CommWorld::run(nranks, |comm| {
                let me = comm.rank();
                // grad for table t from rank r: constant r*10 + t.
                let grads: Vec<Matrix> = (0..num_tables)
                    .map(|t| Matrix::from_fn(local_n, e, |_, _| (me * 10 + t) as f32))
                    .collect();
                backward_exchange(strategy, &comm, None, &grads, num_tables, local_n, e)
            });
            for (rank, full_grads) in out.iter().enumerate() {
                let mine = tables_of(num_tables, nranks, rank);
                assert_eq!(full_grads.len(), mine.len(), "{strategy}");
                for (j, &t) in mine.iter().enumerate() {
                    let g = &full_grads[j];
                    assert_eq!(g.rows(), local_n * nranks);
                    for p in 0..nranks {
                        for row in 0..local_n {
                            assert_eq!(
                                g[(p * local_n + row, 0)],
                                (p * 10 + t) as f32,
                                "{strategy}: owner {rank} table {t} from rank {p}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn forward_then_backward_round_trip() {
        // Scatter out, gather back: owners must recover exactly what the
        // ranks received.
        let (nranks, num_tables, local_n, e) = (4usize, 6usize, 2usize, 3usize);
        let gn = local_n * nranks;
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let outputs: Vec<Matrix> = tables_of(num_tables, nranks, me)
                .into_iter()
                .map(|t| table_output(t, gn, e))
                .collect();
            let slices = forward_exchange(
                ExchangeStrategy::Alltoall,
                &comm,
                None,
                &outputs,
                num_tables,
                local_n,
                e,
            );
            let back = backward_exchange(
                ExchangeStrategy::Alltoall,
                &comm,
                None,
                &slices,
                num_tables,
                local_n,
                e,
            );
            (outputs, back)
        });
        for (outputs, back) in out {
            for (o, b) in outputs.iter().zip(&back) {
                assert_eq!(o.as_slice(), b.as_slice());
            }
        }
    }

    #[test]
    fn table_ownership_is_a_partition() {
        for nranks in 1..=6 {
            let mut seen = [false; 26];
            for q in 0..nranks {
                for t in tables_of(26, nranks, q) {
                    assert!(!seen[t]);
                    assert_eq!(owner_of(t, nranks), q);
                    seen[t] = true;
                }
            }
            assert!(seen.iter().all(|&s| s));
        }
    }
}
