//! DDP gradient bucketing: split the flat gradient into fixed-size buckets
//! and allreduce each as its own nonblocking operation.
//!
//! This is how the paper's DDP wrapper overlaps the allreduce with the
//! backward pass (Figure 2): as each layer's `dW` is produced, its bucket
//! can start reducing while earlier layers are still computing. Buckets are
//! issued in *reverse* flat order because backward produces the last
//! layer's gradients first. [`BucketReducer`] is the issue-as-produced
//! engine of the overlapped train step; [`allreduce_mlp_grads_bucketed`]
//! is the simpler issue-all-at-once form kept for direct tests.
//!
//! # Bitwise determinism
//!
//! A ring allreduce's per-element summation order depends on the chunk
//! partition, which depends on the buffer length — so bucketed and
//! single-buffer reductions are *not* bitwise identical in general. What
//! *is* bitwise stable is any two reductions of the same bucket plan: each
//! bucket is an independent ring allreduce over the same ranks with the
//! same length, whether it runs blocking on the main communicator, on any
//! progress channel, early or late. The train step exploits exactly this —
//! both schedules reduce the same plan, so overlap moves time, not bits.

use crate::ddp::{flatten_grads, unflatten_grads};
use dlrm::layers::Mlp;
use dlrm_comm::collectives;
use dlrm_comm::instrument::{time_opt, OpKind, TimingRecorder};
use dlrm_comm::nonblocking::{OpOutput, ProgressEngine, Request};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::Communicator;
use std::ops::Range;

/// Default bucket cap: 25 MiB of f32 gradients, matching the PyTorch DDP
/// `bucket_cap_mb` default the paper's wrapper inherits. Models smaller
/// than the cap get exactly one bucket, i.e. the classic single-buffer
/// allreduce.
pub const DEFAULT_BUCKET_CAP_BYTES: usize = 25 * 1024 * 1024;

/// A bucketing plan over a flat gradient vector.
#[derive(Debug, Clone)]
pub struct BucketPlan {
    /// Half-open element ranges, in issue order (reverse flat order).
    pub buckets: Vec<Range<usize>>,
}

impl BucketPlan {
    /// Splits `total` elements into buckets of at most `bucket_elems`,
    /// issued back-to-front. The final (front-most) bucket holds the
    /// remainder — the "last bucket flush" of a DDP wrapper.
    pub fn new(total: usize, bucket_elems: usize) -> Self {
        assert!(bucket_elems > 0, "bucket size must be positive");
        let mut buckets = Vec::new();
        let mut end = total;
        while end > 0 {
            let start = end.saturating_sub(bucket_elems);
            buckets.push(start..end);
            end = start;
        }
        BucketPlan { buckets }
    }

    /// Plan for `total` f32 elements under a byte cap ([`BucketPlan::new`]
    /// with the cap converted to elements, at least one element).
    pub fn for_bytes(total: usize, cap_bytes: usize) -> Self {
        let elems = (cap_bytes / std::mem::size_of::<f32>()).max(1);
        Self::new(total, elems)
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when there is nothing to reduce.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// Per-bucket state between issue and completion.
enum BucketOp {
    /// In flight on a progress channel.
    InFlight(Request),
    /// No engine: reduced blocking at [`BucketReducer::finalize`].
    Deferred,
}

/// Issue-as-produced bucketed allreduce over a flat gradient buffer.
///
/// The overlapped train step writes each layer's gradients into the flat
/// buffer *as backward produces them* (back-to-front) and calls
/// [`BucketReducer::on_produced`]; every bucket whose elements are all
/// present is immediately submitted to a progress channel, so it reduces
/// while the remaining layers still compute. [`BucketReducer::finalize`]
/// waits for the stragglers and returns the reduced buffer.
///
/// Without an engine the buckets are recorded and reduced blocking at
/// `finalize` — same plan, same per-bucket ring, bitwise-identical result.
pub struct BucketReducer {
    flat: Vec<f32>,
    plan: BucketPlan,
    /// Everything in `flat[produced_down_to..]` has been written.
    produced_down_to: usize,
    /// Next plan index to issue.
    next_bucket: usize,
    issued: Vec<(Range<usize>, BucketOp)>,
    /// On-wire element format for every bucket's ring allreduce.
    wire: WirePrecision,
    /// Per-bucket wire overrides in plan (issue) order; when set, bucket
    /// `i` ships as `bucket_wires[i]` instead of the uniform `wire`. This
    /// is how the adaptive policy mixes FP32/BF16/INT8 in one step.
    bucket_wires: Option<Vec<WirePrecision>>,
}

impl BucketReducer {
    /// Starts a reduction of `total` elements, reusing `flat` as the
    /// backing buffer (resized as needed; contents fully overwritten by
    /// `write`). The wire defaults to FP32; see [`BucketReducer::with_wire`].
    pub fn new(mut flat: Vec<f32>, total: usize, cap_bytes: usize) -> Self {
        flat.resize(total, 0.0);
        let plan = BucketPlan::for_bytes(total, cap_bytes);
        let issued = Vec::with_capacity(plan.len());
        BucketReducer {
            flat,
            plan,
            produced_down_to: total,
            next_bucket: 0,
            issued,
            wire: WirePrecision::Fp32,
            bucket_wires: None,
        }
    }

    /// Selects the on-wire element format of the bucket allreduces. Both
    /// the engine and the blocking (deferred) paths honor it, so the
    /// overlap-moves-time-not-bits contract holds per wire setting.
    pub fn with_wire(mut self, wire: WirePrecision) -> Self {
        self.wire = wire;
        self
    }

    /// Sets one wire per bucket, in plan (issue) order — the adaptive
    /// policy's per-bucket FP32/BF16/INT8 decisions. Must cover every
    /// bucket; overrides [`BucketReducer::with_wire`].
    pub fn with_bucket_wires(mut self, wires: Vec<WirePrecision>) -> Self {
        assert_eq!(
            wires.len(),
            self.plan.len(),
            "per-bucket wires must cover the whole plan"
        );
        self.bucket_wires = Some(wires);
        self
    }

    /// The wire bucket `idx` (plan order) ships with.
    fn wire_for(&self, idx: usize) -> WirePrecision {
        match &self.bucket_wires {
            Some(wires) => wires[idx],
            None => self.wire,
        }
    }

    /// Number of buckets in the plan.
    pub fn num_buckets(&self) -> usize {
        self.plan.len()
    }

    /// Copies one produced gradient slice into `flat[offset..]`.
    pub fn write(&mut self, offset: usize, data: &[f32]) {
        self.flat[offset..offset + data.len()].copy_from_slice(data);
    }

    /// Marks everything from `offset` to the end as produced and issues
    /// every bucket that is now complete. Backward fills the buffer
    /// back-to-front, so `offset` only ever decreases.
    pub fn on_produced(
        &mut self,
        offset: usize,
        engine: Option<&ProgressEngine>,
        rec: Option<&TimingRecorder>,
    ) {
        debug_assert!(
            offset <= self.produced_down_to,
            "backward runs back-to-front"
        );
        self.produced_down_to = offset;
        while self.next_bucket < self.plan.len()
            && self.plan.buckets[self.next_bucket].start >= self.produced_down_to
        {
            let range = self.plan.buckets[self.next_bucket].clone();
            let op = match engine {
                Some(eng) => {
                    // Keep channel 0 (the exchange channel) free so the
                    // in-flight alltoall is never serialized behind a
                    // bucket on an MPI-like single-channel backend — and
                    // spread buckets round-robin on a CCL-like one.
                    let nch = eng.num_channels().max(1);
                    let ch = if nch > 1 {
                        1 + self.next_bucket % (nch - 1)
                    } else {
                        0
                    };
                    let payload = time_opt(rec, OpKind::AllreduceFramework, || {
                        self.flat[range.clone()].to_vec()
                    });
                    let wire = self.wire_for(self.next_bucket);
                    BucketOp::InFlight(eng.allreduce_wire(ch, payload, wire))
                }
                None => BucketOp::Deferred,
            };
            self.issued.push((range, op));
            self.next_bucket += 1;
        }
    }

    /// Completes all buckets (issuing any not yet produced-complete — a
    /// safety net; a full backward pass produces everything) and returns
    /// the reduced flat buffer for unflattening and the optimizer step.
    pub fn finalize(
        mut self,
        comm: &Communicator,
        engine: Option<&ProgressEngine>,
        rec: Option<&TimingRecorder>,
    ) -> Vec<f32> {
        self.on_produced(0, engine, rec);
        let uniform = self.wire;
        let bucket_wires = self.bucket_wires;
        let mut flat = self.flat;
        // `issued` is filled in plan order, so the enumeration index is the
        // plan index — the same one `with_bucket_wires` keys on.
        for (idx, (range, op)) in self.issued.into_iter().enumerate() {
            match op {
                BucketOp::InFlight(req) => {
                    let reduced = match req.wait_recording(rec, OpKind::AllreduceWait) {
                        OpOutput::Flat(v) => v,
                        other => panic!("unexpected op output: {other:?}"),
                    };
                    time_opt(rec, OpKind::AllreduceFramework, || {
                        flat[range].copy_from_slice(&reduced)
                    });
                }
                BucketOp::Deferred => {
                    let wire = match &bucket_wires {
                        Some(wires) => wires[idx],
                        None => uniform,
                    };
                    time_opt(rec, OpKind::AllreduceWait, || {
                        collectives::allreduce_sum_wire(comm, &mut flat[range], wire)
                    });
                }
            }
        }
        flat
    }
}

/// Allreduces the MLP gradients bucket by bucket (issuing everything at
/// once — the non-fused form of [`BucketReducer`]), through the engine's
/// channels round-robin or blocking without one.
pub fn allreduce_mlp_grads_bucketed(
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    bottom: &mut Mlp,
    top: &mut Mlp,
    bucket_elems: usize,
) {
    let flat = flatten_grads(&[&*bottom, &*top]);
    let total = flat.len();
    let mut reducer = BucketReducer::new(flat, total, bucket_elems * std::mem::size_of::<f32>());
    reducer.on_produced(0, engine, None);
    let flat = reducer.finalize(comm, engine, None);
    unflatten_grads(&flat, &mut [bottom, top]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddp::allreduce_mlp_grads;
    use dlrm::layers::{Activation, Execution, Mlp};
    use dlrm_comm::nonblocking::{create_channel_worlds, Backend, ProgressEngine};
    use dlrm_comm::world::CommWorld;
    use dlrm_tensor::init::{seeded_rng, uniform};

    fn mlp_with_grads(seed: u64, scale: f32) -> Mlp {
        let mut rng = seeded_rng(seed, 0);
        let mut mlp = Mlp::new(5, &[7, 3], Activation::None, &mut rng);
        for layer in &mut mlp.layers {
            layer.dw = uniform(layer.dw.rows(), layer.dw.cols(), -scale, scale, &mut rng);
            layer.db = (0..layer.db.len()).map(|i| i as f32 * scale).collect();
        }
        let _ = Execution::Reference; // silence unused import on some cfgs
        mlp
    }

    #[test]
    fn plan_covers_everything_in_reverse() {
        let plan = BucketPlan::new(10, 4);
        assert_eq!(plan.buckets, vec![6..10, 2..6, 0..2]);
        assert_eq!(BucketPlan::new(0, 4).len(), 0);
        assert_eq!(BucketPlan::new(4, 4).buckets, vec![0..4]);
    }

    #[test]
    fn byte_cap_converts_to_elements() {
        // 16 bytes = 4 f32s.
        assert_eq!(
            BucketPlan::for_bytes(10, 16).buckets,
            vec![6..10, 2..6, 0..2]
        );
        // Default cap swallows small models whole: one bucket.
        assert_eq!(
            BucketPlan::for_bytes(1000, DEFAULT_BUCKET_CAP_BYTES).len(),
            1
        );
        // Degenerate cap still makes progress.
        assert_eq!(BucketPlan::for_bytes(3, 1).len(), 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_size_rejected() {
        let _ = BucketPlan::new(10, 0);
    }

    #[test]
    fn bucketed_equals_single_buffer() {
        let nranks = 3;
        let backend = Backend::CclLike { workers: 2 };
        let worlds = std::sync::Mutex::new(create_channel_worlds(nranks, backend));
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let engine = {
                let comms = std::mem::take(&mut worlds.lock().unwrap()[me]);
                ProgressEngine::new(backend, comms)
            };
            // Bucketed path.
            let mut b1 = mlp_with_grads(me as u64, 0.5);
            let mut t1 = mlp_with_grads(100 + me as u64, 0.25);
            allreduce_mlp_grads_bucketed(&comm, Some(&engine), &mut b1, &mut t1, 7);
            // Single-buffer path on the same inputs.
            let mut b2 = mlp_with_grads(me as u64, 0.5);
            let mut t2 = mlp_with_grads(100 + me as u64, 0.25);
            allreduce_mlp_grads(&comm, None, &mut b2, &mut t2);
            (flatten_grads(&[&b1, &t1]), flatten_grads(&[&b2, &t2]))
        });
        for (bucketed, single) in out {
            for (a, b) in bucketed.iter().zip(&single) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn engine_and_blocking_buckets_agree_bitwise() {
        // The determinism contract the overlapped schedule rests on: the
        // same plan reduced through progress channels vs blocking on the
        // main communicator gives bit-identical sums.
        let nranks = 4;
        let backend = Backend::CclLike { workers: 3 };
        let worlds = std::sync::Mutex::new(create_channel_worlds(nranks, backend));
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let engine = {
                let comms = std::mem::take(&mut worlds.lock().unwrap()[me]);
                ProgressEngine::new(backend, comms)
            };
            let mut b1 = mlp_with_grads(me as u64, 0.3);
            let mut t1 = mlp_with_grads(50 + me as u64, 0.7);
            allreduce_mlp_grads_bucketed(&comm, Some(&engine), &mut b1, &mut t1, 5);
            let mut b2 = mlp_with_grads(me as u64, 0.3);
            let mut t2 = mlp_with_grads(50 + me as u64, 0.7);
            allreduce_mlp_grads_bucketed(&comm, None, &mut b2, &mut t2, 5);
            (flatten_grads(&[&b1, &t1]), flatten_grads(&[&b2, &t2]))
        });
        for (eng, blk) in out {
            assert_eq!(
                eng.iter().map(|f| f.to_bits()).collect::<Vec<_>>(),
                blk.iter().map(|f| f.to_bits()).collect::<Vec<_>>()
            );
        }
    }

    #[test]
    fn reducer_issues_buckets_as_produced() {
        // Single rank: reduction is the identity, so we can drive the
        // reducer by hand and watch buckets become ready back-to-front.
        CommWorld::run(1, |comm| {
            let mut r = BucketReducer::new(Vec::new(), 10, 4 * 4);
            assert_eq!(r.num_buckets(), 3); // [6..10, 2..6, 0..2]
            let data: Vec<f32> = (0..10).map(|i| i as f32).collect();
            r.write(6, &data[6..10]);
            r.on_produced(6, None, None);
            assert_eq!(r.issued.len(), 1);
            r.write(2, &data[2..6]);
            r.on_produced(2, None, None);
            assert_eq!(r.issued.len(), 2);
            r.write(0, &data[0..2]);
            r.on_produced(0, None, None);
            assert_eq!(r.issued.len(), 3);
            let flat = r.finalize(&comm, None, None);
            assert_eq!(flat, data);
        });
    }

    #[test]
    fn mixed_bucket_wires_engine_and_blocking_agree_bitwise() {
        // Per-bucket wires (the adaptive policy's output shape): the same
        // plan with the same wire assignment must be bitwise identical
        // whether buckets run through progress channels or blocking.
        let nranks = 3;
        let total = 10usize;
        let backend = Backend::CclLike { workers: 2 };
        let worlds = std::sync::Mutex::new(create_channel_worlds(nranks, backend));
        let wires = vec![
            WirePrecision::int8_shared(0.125),
            WirePrecision::Bf16,
            WirePrecision::Fp32,
        ];
        let run =
            |comm: &Communicator, engine: Option<&ProgressEngine>, wires: Vec<WirePrecision>| {
                let me = comm.rank();
                let data: Vec<f32> = (0..total)
                    .map(|i| ((me * total + i) as f32).sin())
                    .collect();
                let mut r = BucketReducer::new(Vec::new(), total, 4 * 4).with_bucket_wires(wires);
                assert_eq!(r.num_buckets(), 3);
                r.write(0, &data);
                r.on_produced(0, engine, None);
                r.finalize(comm, engine, None)
            };
        let out = CommWorld::run(nranks, |comm| {
            let engine = {
                let comms = std::mem::take(&mut worlds.lock().unwrap()[comm.rank()]);
                ProgressEngine::new(backend, comms)
            };
            let eng = run(&comm, Some(&engine), wires.clone());
            let blk = run(&comm, None, wires.clone());
            (eng, blk)
        });
        let first = out[0].0.iter().map(|f| f.to_bits()).collect::<Vec<_>>();
        for (eng, blk) in &out {
            let eng: Vec<u32> = eng.iter().map(|f| f.to_bits()).collect();
            let blk: Vec<u32> = blk.iter().map(|f| f.to_bits()).collect();
            assert_eq!(eng, blk, "engine vs blocking");
            assert_eq!(eng, first, "ranks bitwise identical");
        }
    }

    #[test]
    #[should_panic(expected = "cover the whole plan")]
    fn short_bucket_wire_list_rejected() {
        let _ =
            BucketReducer::new(Vec::new(), 10, 4 * 4).with_bucket_wires(vec![WirePrecision::Fp32]);
    }

    #[test]
    fn bucket_count_scales_with_size() {
        let total = 5 * 7 + 7 + 7 * 3 + 3; // the test MLP's grad length
        assert!(BucketPlan::new(total, 8).len() > BucketPlan::new(total, 64).len());
    }
}
