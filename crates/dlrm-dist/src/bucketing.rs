//! DDP gradient bucketing: split the flat gradient into fixed-size buckets
//! and allreduce each as its own nonblocking operation.
//!
//! This is how the paper's DDP wrapper overlaps the allreduce with the
//! backward pass (Figure 2): as each layer's `dW` is produced, its bucket
//! can start reducing while earlier layers are still computing. Buckets are
//! issued in *reverse* flat order because backward produces the last
//! layer's gradients first. Functionally the result is identical to one
//! big allreduce; the win is overlap (modeled in time by the cluster
//! simulator, exercised functionally here).

use crate::ddp::{flatten_grads, unflatten_grads};
use dlrm::layers::Mlp;
use dlrm_comm::nonblocking::{OpOutput, ProgressEngine, Request};

/// A bucketing plan over a flat gradient vector.
#[derive(Debug, Clone)]
pub struct BucketPlan {
    /// Half-open element ranges, in issue order (reverse flat order).
    pub buckets: Vec<std::ops::Range<usize>>,
}

impl BucketPlan {
    /// Splits `total` elements into buckets of at most `bucket_elems`,
    /// issued back-to-front.
    pub fn new(total: usize, bucket_elems: usize) -> Self {
        assert!(bucket_elems > 0, "bucket size must be positive");
        let mut buckets = Vec::new();
        let mut end = total;
        while end > 0 {
            let start = end.saturating_sub(bucket_elems);
            buckets.push(start..end);
            end = start;
        }
        BucketPlan { buckets }
    }

    /// Number of buckets.
    pub fn len(&self) -> usize {
        self.buckets.len()
    }

    /// True when there is nothing to reduce.
    pub fn is_empty(&self) -> bool {
        self.buckets.is_empty()
    }
}

/// Allreduces the MLP gradients bucket by bucket through the engine's
/// channels (round-robin), waiting for all buckets before unflattening.
/// Numerically identical to the single-buffer path.
pub fn allreduce_mlp_grads_bucketed(
    engine: &ProgressEngine,
    bottom: &mut Mlp,
    top: &mut Mlp,
    bucket_elems: usize,
) {
    let mut flat = flatten_grads(&[&*bottom, &*top]);
    let plan = BucketPlan::new(flat.len(), bucket_elems);

    // Issue every bucket immediately (they would be issued as backward
    // produces them in a fused implementation).
    let requests: Vec<(std::ops::Range<usize>, Request)> = plan
        .buckets
        .iter()
        .enumerate()
        .map(|(i, range)| {
            let payload = flat[range.clone()].to_vec();
            (
                range.clone(),
                engine.allreduce(i % engine.num_channels().max(1), payload),
            )
        })
        .collect();

    for (range, req) in requests {
        match req.wait() {
            OpOutput::Flat(reduced) => flat[range].copy_from_slice(&reduced),
            other => panic!("unexpected op output: {other:?}"),
        }
    }
    unflatten_grads(&flat, &mut [bottom, top]);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ddp::allreduce_mlp_grads;
    use dlrm::layers::{Activation, Execution, Mlp};
    use dlrm_comm::nonblocking::{create_channel_worlds, Backend, ProgressEngine};
    use dlrm_comm::world::CommWorld;
    use dlrm_tensor::init::{seeded_rng, uniform};

    fn mlp_with_grads(seed: u64, scale: f32) -> Mlp {
        let mut rng = seeded_rng(seed, 0);
        let mut mlp = Mlp::new(5, &[7, 3], Activation::None, &mut rng);
        for layer in &mut mlp.layers {
            layer.dw = uniform(layer.dw.rows(), layer.dw.cols(), -scale, scale, &mut rng);
            layer.db = (0..layer.db.len()).map(|i| i as f32 * scale).collect();
        }
        let _ = Execution::Reference; // silence unused import on some cfgs
        mlp
    }

    #[test]
    fn plan_covers_everything_in_reverse() {
        let plan = BucketPlan::new(10, 4);
        assert_eq!(plan.buckets, vec![6..10, 2..6, 0..2]);
        assert_eq!(BucketPlan::new(0, 4).len(), 0);
        assert_eq!(BucketPlan::new(4, 4).buckets, vec![0..4]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_bucket_size_rejected() {
        let _ = BucketPlan::new(10, 0);
    }

    #[test]
    fn bucketed_equals_single_buffer() {
        let nranks = 3;
        let backend = Backend::CclLike { workers: 2 };
        let worlds = std::sync::Mutex::new(create_channel_worlds(nranks, backend));
        let out = CommWorld::run(nranks, |comm| {
            let me = comm.rank();
            let engine = {
                let comms = std::mem::take(&mut worlds.lock().unwrap()[me]);
                ProgressEngine::new(backend, comms)
            };
            // Bucketed path.
            let mut b1 = mlp_with_grads(me as u64, 0.5);
            let mut t1 = mlp_with_grads(100 + me as u64, 0.25);
            allreduce_mlp_grads_bucketed(&engine, &mut b1, &mut t1, 7);
            // Single-buffer path on the same inputs.
            let mut b2 = mlp_with_grads(me as u64, 0.5);
            let mut t2 = mlp_with_grads(100 + me as u64, 0.25);
            allreduce_mlp_grads(&comm, None, &mut b2, &mut t2);
            (flatten_grads(&[&b1, &t1]), flatten_grads(&[&b2, &t2]))
        });
        for (bucketed, single) in out {
            for (a, b) in bucketed.iter().zip(&single) {
                assert!((a - b).abs() < 1e-5, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bucket_count_scales_with_size() {
        let total = 5 * 7 + 7 + 7 * 3 + 3; // the test MLP's grad length
        assert!(BucketPlan::new(total, 8).len() > BucketPlan::new(total, 64).len());
    }
}
