//! DDP-style gradient allreduce: flatten every MLP gradient into one
//! buffer, allreduce (reduce-scatter + allgather), unflatten, apply the
//! averaged SGD step.
//!
//! The flat-buffer copies here are exactly the "Allreduce-Framework" time
//! of Figures 11/14; the collective itself is the "Allreduce-Wait".

use dlrm::layers::Mlp;
use dlrm_comm::collectives;
use dlrm_comm::nonblocking::{OpOutput, ProgressEngine};
use dlrm_comm::world::Communicator;

/// Flattens the weight and bias gradients of the given MLPs (in order)
/// into one contiguous buffer — Eq. 1's `Σ f_i·f_o + f_o` elements.
pub fn flatten_grads(mlps: &[&Mlp]) -> Vec<f32> {
    let mut buf = Vec::new();
    flatten_grads_into(mlps, &mut buf);
    buf
}

/// [`flatten_grads`] into a caller-owned buffer, reusing its allocation
/// across iterations (the buffer is cleared first).
pub fn flatten_grads_into(mlps: &[&Mlp], buf: &mut Vec<f32>) {
    buf.clear();
    for mlp in mlps {
        for layer in &mlp.layers {
            buf.extend_from_slice(layer.dw.as_slice());
            buf.extend_from_slice(&layer.db);
        }
    }
}

/// Flat-buffer offset of each layer's gradients (dw then db), per MLP, in
/// [`flatten_grads`] order, plus the total length. `offsets[m][i]` is
/// where MLP `m`'s layer `i` starts.
pub fn grad_offsets(mlps: &[&Mlp]) -> (Vec<Vec<usize>>, usize) {
    let mut off = 0usize;
    let mut per_mlp = Vec::with_capacity(mlps.len());
    for mlp in mlps {
        let mut offs = Vec::with_capacity(mlp.layers.len());
        for layer in &mlp.layers {
            offs.push(off);
            off += layer.grad_len();
        }
        per_mlp.push(offs);
    }
    (per_mlp, off)
}

/// Writes a flat gradient buffer back into the MLPs' gradient tensors.
///
/// # Panics
/// Panics if `buf` does not match the MLPs' total gradient length.
pub fn unflatten_grads(buf: &[f32], mlps: &mut [&mut Mlp]) {
    let mut off = 0;
    for mlp in mlps {
        for layer in &mut mlp.layers {
            let wlen = layer.dw.len();
            layer
                .dw
                .as_mut_slice()
                .copy_from_slice(&buf[off..off + wlen]);
            off += wlen;
            let blen = layer.db.len();
            layer.db.copy_from_slice(&buf[off..off + blen]);
            off += blen;
        }
    }
    assert_eq!(off, buf.len(), "flat gradient length mismatch");
}

/// Allreduces (sums) the flattened gradients of `bottom` and `top` across
/// ranks and writes the sums back. With `engine`, the allreduce goes
/// through the nonblocking progress channel 1 (so an in-flight alltoall on
/// channel 0 is not serialized behind it — the CCL behaviour); otherwise it
/// is a blocking ring allreduce.
pub fn allreduce_mlp_grads(
    comm: &Communicator,
    engine: Option<&ProgressEngine>,
    bottom: &mut Mlp,
    top: &mut Mlp,
) {
    let flat = flatten_grads(&[&*bottom, &*top]);
    let reduced = match engine {
        Some(eng) => match eng.allreduce(1, flat).wait() {
            OpOutput::Flat(v) => v,
            other => panic!("unexpected op output: {other:?}"),
        },
        None => {
            let mut buf = flat;
            collectives::allreduce_sum(comm, &mut buf);
            buf
        }
    };
    unflatten_grads(&reduced, &mut [bottom, top]);
}

/// Applies the averaged SGD step after an allreduce of summed gradients:
/// `w -= (lr / nranks) · g_sum`. Plan-aware via
/// [`dlrm::layers::Linear::sgd_step_scaled`]: when a layer's persistent
/// packed weights are live they are updated in place (the flat mirror is
/// refreshed lazily via `sync_flat_weights`); gradients stay flat, so the
/// allreduce wire format is untouched.
pub fn averaged_sgd_step(mlp: &mut Mlp, lr: f32, nranks: usize) {
    for layer in &mut mlp.layers {
        layer.sgd_step_scaled(lr, nranks as f32);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dlrm::layers::{Activation, Mlp};
    use dlrm_comm::world::CommWorld;
    use dlrm_tensor::init::seeded_rng;
    use dlrm_tensor::Matrix;

    fn mlp_with_grads(seed: u64, fill: f32) -> Mlp {
        let mut rng = seeded_rng(seed, 0);
        let mut mlp = Mlp::new(3, &[4, 2], Activation::None, &mut rng);
        for layer in &mut mlp.layers {
            layer.dw = Matrix::from_fn(layer.dw.rows(), layer.dw.cols(), |_, _| fill);
            layer.db = vec![fill; layer.db.len()];
        }
        mlp
    }

    #[test]
    fn flatten_unflatten_round_trip() {
        let mut a = mlp_with_grads(1, 0.0);
        let mut rng = seeded_rng(2, 0);
        for layer in &mut a.layers {
            layer.dw =
                dlrm_tensor::init::uniform(layer.dw.rows(), layer.dw.cols(), -1.0, 1.0, &mut rng);
            layer.db = (0..layer.db.len()).map(|i| i as f32).collect();
        }
        let flat = flatten_grads(&[&a]);
        assert_eq!(flat.len(), 3 * 4 + 4 + 4 * 2 + 2);
        let mut b = mlp_with_grads(1, 0.0);
        unflatten_grads(&flat, &mut [&mut b]);
        for (la, lb) in a.layers.iter().zip(&b.layers) {
            assert_eq!(la.dw.as_slice(), lb.dw.as_slice());
            assert_eq!(la.db, lb.db);
        }
    }

    #[test]
    fn allreduce_sums_gradients_across_ranks() {
        let out = CommWorld::run(4, |comm| {
            let mut bottom = mlp_with_grads(7, comm.rank() as f32 + 1.0);
            let mut top = mlp_with_grads(8, 10.0 * (comm.rank() as f32 + 1.0));
            allreduce_mlp_grads(&comm, None, &mut bottom, &mut top);
            (bottom.layers[0].dw[(0, 0)], top.layers[0].db[0])
        });
        for (dw, db) in out {
            assert_eq!(dw, 1.0 + 2.0 + 3.0 + 4.0);
            assert_eq!(db, 10.0 * (1.0 + 2.0 + 3.0 + 4.0));
        }
    }

    #[test]
    fn averaged_step_divides_by_ranks() {
        let mut mlp = mlp_with_grads(3, 8.0);
        let w0 = mlp.layers[0].w[(0, 0)];
        averaged_sgd_step(&mut mlp, 0.5, 4);
        assert!((mlp.layers[0].w[(0, 0)] - (w0 - 0.5 * 2.0)).abs() < 1e-6);
    }
}
