//! BagPipe-style lookahead prefetch + index dedup for the dist trainer.
//!
//! The paper's hybrid-parallel step ships, for every table and every
//! data-parallel rank, the *pooled* bag outputs of that rank's whole batch
//! slice — `n × E` floats per (table, rank) pair per step, no matter how
//! few distinct rows the slice actually touched. BagPipe (PAPERS.md,
//! arXiv 2202.12429) observes that under Zipf-shaped traffic the distinct
//! rows are few and repeat across nearby batches, so the right wire unit
//! is the *unique raw row*, fetched once, pooled locally, and kept usable
//! across steps.
//!
//! # The protocol
//!
//! All ranks walk the same deterministic batch stream through a
//! [`LookaheadWindow`], so every transfer decision below is computed
//! *symmetrically*: the owner of a table replicates each destination's
//! tracker state machine and derives bit-identical fetch lists without any
//! metadata exchange. Per step `j`, on every rank:
//!
//! 1. **Land** the early fetch issued during step `j−1` (rows for batch
//!    `j` that were fetchable ahead of time), unpacking into the row cache.
//! 2. **Late fetch**: the unique rows of my slice of batch `j` that are
//!    not validly cached are fetched from their owners with a
//!    [`TAG_PREFETCH`]-tagged alltoall. Owners pack current (canonical)
//!    weights.
//! 3. **Record touches** of batch `j`: rows touched by *other* ranks
//!    become invalid in my cache going forward (their canonical value now
//!    evolves without me); rows touched by *anyone* are ineligible for the
//!    early fetch below (their packed value would go stale this step).
//! 4. **Fan out locally**: every table's slice is pooled from cached rows
//!    in exactly `forward_serial`'s accumulate order — bitwise equal to
//!    the pooled outputs the naive exchange would have delivered.
//! 5. **Early fetch** for batch `j+1`, issued on the engine's exchange
//!    channel while backward compute runs (the split-phase pattern of
//!    [`crate::bucketing`]); blocking strategies run it inline — same
//!    bytes, same values, no overlap.
//! 6. Backward + the **unchanged** gradient exchanges and bucketed
//!    allreduce.
//! 7. **Delayed updates**: the owner applies the canonical sparse update
//!    (via [`EmbeddingLayer::set_saved_batch`] — it no longer runs the
//!    forward); each destination applies its *own* slice's gradients to
//!    its cached rows with the same [`rowops::axpy`] the owner's
//!    scatter-add uses. For a row only I touched, my slice order *is* the
//!    canonical index-list order restricted to that row, so the cached
//!    copy tracks the owner bit-for-bit; rows others touched were
//!    invalidated in step 3 and will be re-fetched before reuse.
//! 8. **Evict** rows whose last visible need (within the window) has
//!    passed, releasing cache slots.
//!
//! # Why this is bitwise-exact
//!
//! Inductively, every cached row equals the owner's post-update value at
//! the moment it is pooled: fetches copy canonical bytes, local updates
//! replay the exact same `axpy` calls in the exact same order the owner
//! applies for my slice, and any row whose canonical order interleaves
//! another rank's gradient is invalidated and re-fetched. Pooling order
//! matches `forward_serial`, and everything downstream (MLPs, backward,
//! gradient exchange, owner update, allreduce) is untouched — so losses
//! *and all parameter planes* are bitwise identical to the naive step, as
//! `tests/prefetch_equivalence.rs` asserts. This does require per-row
//! deterministic updates (`Reference`/`RaceFree`/`Bucketed`) and an FP32
//! alltoall wire, which [`DistDlrm::new`](crate::distributed::DistDlrm)
//! asserts when prefetch is enabled.
//!
//! [`LookaheadWindow`]: dlrm_data::LookaheadWindow
//! [`EmbeddingLayer::set_saved_batch`]: dlrm::embedding_layer::EmbeddingLayer::set_saved_batch
//! [`TAG_PREFETCH`]: dlrm_comm::collectives::TAG_PREFETCH

use crate::exchange::{tables_of, EXCHANGE_CHANNEL};
use dlrm::embedding_layer::EmbeddingLayer;
use dlrm_comm::collectives::{alltoall_wire_tagged, TAG_PREFETCH};
use dlrm_comm::instrument::{time_opt, OpKind, TimingRecorder};
use dlrm_comm::nonblocking::{OpOutput, ProgressEngine, Request};
use dlrm_comm::wire::WirePrecision;
use dlrm_comm::world::Communicator;
use dlrm_data::{DlrmConfig, LookaheadWindow, MiniBatch};
use dlrm_kernels::embedding::{rowops, DedupPlan, RowStore};
use dlrm_kernels::gemm::micro::{detect_isa, Isa};
use dlrm_tensor::Matrix;

/// Opt-in lookahead prefetch for [`DistOptions`](crate::distributed::DistOptions).
///
/// The default is `Off`, under which the trainer's step is byte-for-byte
/// the pre-prefetch code path — prior trajectories are bitwise unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Prefetch {
    /// The naive pooled forward exchange (the default).
    #[default]
    Off,
    /// Dedup + prefetch with `window` batches of lookahead (`window ≥ 1`).
    Lookahead {
        /// How many future batches the pipeline may peek; also the
        /// retention horizon of the row cache.
        window: usize,
    },
}

/// Unoccupied marker in the per-table row → cache-slot map.
const NO_SLOT: u32 = u32::MAX;

/// Per-(table, destination) validity state machine. All marks are
/// `step + 1` (`0` = never), so a fresh tracker is all-invalid in O(1).
///
/// A row is *validly cached* for use at step `j` iff it was received at
/// some step and no foreign rank has touched it since:
/// `recv_mark > 0 && foreign_mark < recv_mark`. Owners run one replica of
/// this per destination; destinations run one per table. Both sides feed
/// them the same slices of the same shared batch stream in the same
/// order, which keeps owner and destination bit-identical — the fetch
/// lists never travel.
struct NeedTracker {
    /// The data-parallel rank whose slice this tracker follows.
    dest: usize,
    /// Last step (+1) whose fetch delivered the row to `dest`.
    recv_mark: Vec<u32>,
    /// Last step (+1) a rank other than `dest` touched the row.
    foreign_mark: Vec<u32>,
    /// Last visible step (+1) `dest` needs the row (retention horizon).
    last_need: Vec<u32>,
    /// Expiry ring, `window + 2` lazy-deletion buckets keyed by step.
    expiry: Vec<Vec<u32>>,
}

impl NeedTracker {
    fn new(rows: usize, dest: usize, window: usize) -> Self {
        NeedTracker {
            dest,
            recv_mark: vec![0; rows],
            foreign_mark: vec![0; rows],
            last_need: vec![0; rows],
            expiry: vec![Vec::new(); window + 2],
        }
    }

    #[inline]
    fn rows(&self) -> usize {
        self.recv_mark.len()
    }

    #[inline]
    fn valid(&self, row: usize) -> bool {
        self.recv_mark[row] != 0 && self.foreign_mark[row] < self.recv_mark[row]
    }

    /// Folds batch `bs`'s slice into the need horizon: bumps `last_need`
    /// and queues the rows in `bs`'s expiry bucket (lazy deletion — a
    /// later re-observation simply outdates the earlier bucket entry).
    fn observe(&mut self, bs: u32, slice: &[u32], dedup: &mut DedupPlan) {
        dedup.build(slice, self.rows());
        let bucket = (bs as usize) % self.expiry.len();
        for &row in dedup.uniques() {
            self.last_need[row as usize] = bs + 1;
            self.expiry[bucket].push(row);
        }
    }

    /// The unique rows of `dest`'s step-`j` slice that are not validly
    /// cached, in first-appearance order; marks them received-as-of-`j`.
    fn build_late_list(
        &mut self,
        j: u32,
        slice: &[u32],
        dedup: &mut DedupPlan,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        dedup.build(slice, self.rows());
        for &row in dedup.uniques() {
            if !self.valid(row as usize) {
                debug_assert!(self.foreign_mark[row as usize] <= j);
                self.recv_mark[row as usize] = j + 1;
                out.push(row);
            }
        }
    }

    /// The unique rows of `dest`'s step-`j+1` slice that can be fetched
    /// *early*, during step `j`: not validly cached, and untouched by
    /// batch `j` on any rank (`touch` is the shared per-table touch mark),
    /// so the owner's pre-update pack equals its post-step-`j` value.
    /// Marks them received-as-of-`j+1`.
    fn build_early_list(
        &mut self,
        j: u32,
        next_slice: &[u32],
        touch: &[u32],
        dedup: &mut DedupPlan,
        out: &mut Vec<u32>,
    ) {
        out.clear();
        dedup.build(next_slice, self.rows());
        for &row in dedup.uniques() {
            let r = row as usize;
            if !self.valid(r) && touch[r] != j + 1 {
                self.recv_mark[r] = j + 2;
                out.push(row);
            }
        }
    }

    /// Marks every row of batch `j` touched by a rank other than `dest`
    /// as foreign-touched (the lookups outside `dest`'s contiguous bag
    /// slice). Must run *after* the late list build and *before* the
    /// early list build of step `j`.
    fn record_touches(&mut self, j: u32, indices: &[u32], offsets: &[usize], n: usize) {
        let lo = offsets[self.dest * n];
        let hi = offsets[(self.dest + 1) * n];
        for &row in &indices[..lo] {
            self.foreign_mark[row as usize] = j + 1;
        }
        for &row in &indices[hi..] {
            self.foreign_mark[row as usize] = j + 1;
        }
    }

    /// Drains step `j`'s expiry bucket: rows whose last visible need was
    /// step `j` are dropped from the cache (`on_evict` releases the slot
    /// on the destination side; owners track marks only).
    fn evict(&mut self, j: u32, mut on_evict: impl FnMut(u32)) {
        let len = self.expiry.len();
        let mut bucket = std::mem::take(&mut self.expiry[(j as usize) % len]);
        for row in bucket.drain(..) {
            let r = row as usize;
            if self.last_need[r] == j + 1 && self.recv_mark[r] != 0 {
                self.recv_mark[r] = 0;
                on_evict(row);
            }
        }
        self.expiry[(j as usize) % len] = bucket;
    }

    fn scratch_bytes(&self) -> usize {
        let ring: usize = self.expiry.iter().map(|b| b.capacity()).sum();
        (self.recv_mark.capacity()
            + self.foreign_mark.capacity()
            + self.last_need.capacity()
            + ring)
            * std::mem::size_of::<u32>()
    }
}

/// An early fetch in flight between steps.
enum PendingFetch {
    /// Genuinely in flight on the progress engine's exchange channel.
    InFlight(Request),
    /// Already completed (blocking strategies run the fetch inline).
    Ready(Vec<Vec<f32>>),
}

/// Per-rank state of the lookahead pipeline (held by
/// [`DistDlrm`](crate::distributed::DistDlrm) when prefetch is enabled).
pub(crate) struct PrefetchState {
    window: usize,
    /// Current step (== the window cursor position).
    step: u32,
    /// Next batch index to fold into the need horizon.
    next_observe: usize,
    /// Global table indices this rank owns (ascending).
    owned: Vec<usize>,
    /// Destination-side tracker per table (this rank as consumer).
    dest_trackers: Vec<NeedTracker>,
    /// Owner-side replicas: `[owned-table][dest rank]`.
    owner_trackers: Vec<Vec<NeedTracker>>,
    /// Row cache per table (grow-on-demand slots, recycled on eviction).
    caches: Vec<RowStore>,
    /// Table row → cache slot per table (`NO_SLOT` when absent).
    slot_of: Vec<Vec<u32>>,
    /// Step (+1) each row was last touched by *any* rank, per table —
    /// shared knowledge (every rank sees the full global batch), used for
    /// early-fetch eligibility.
    touch_mark: Vec<Vec<u32>>,
    /// Rows fetched late this step, per table (unpack layout).
    late_lists: Vec<Vec<u32>>,
    /// Rows fetched early for the next step, per table (unpack layout).
    early_lists: Vec<Vec<u32>>,
    /// Shared dedup scratch (grow-only).
    dedup: DedupPlan,
    /// Early fetch issued during the previous step, if any.
    pending_early: Option<PendingFetch>,
    isa: Isa,
}

/// The lookups of rank `p`'s bag slice of batch `b` for table `t`.
#[inline]
fn slice_lookups(b: &MiniBatch, t: usize, p: usize, n: usize) -> &[u32] {
    let off = &b.offsets[t];
    &b.indices[t][off[p * n]..off[(p + 1) * n]]
}

impl PrefetchState {
    pub(crate) fn new(cfg: &DlrmConfig, nranks: usize, me: usize, window: usize) -> Self {
        assert!(window >= 1, "prefetch window must be >= 1");
        let s = cfg.num_tables;
        let e = cfg.emb_dim;
        let rows = |t: usize| cfg.table_rows[t] as usize;
        let owned = tables_of(s, nranks, me);
        PrefetchState {
            window,
            step: 0,
            next_observe: 0,
            dest_trackers: (0..s)
                .map(|t| NeedTracker::new(rows(t), me, window))
                .collect(),
            owner_trackers: owned
                .iter()
                .map(|&t| {
                    (0..nranks)
                        .map(|p| NeedTracker::new(rows(t), p, window))
                        .collect()
                })
                .collect(),
            caches: (0..s).map(|_| RowStore::new(e)).collect(),
            slot_of: (0..s).map(|t| vec![NO_SLOT; rows(t)]).collect(),
            touch_mark: (0..s).map(|t| vec![0; rows(t)]).collect(),
            late_lists: vec![Vec::new(); s],
            early_lists: vec![Vec::new(); s],
            owned,
            dedup: DedupPlan::new(),
            pending_early: None,
            isa: detect_isa(),
        }
    }

    pub(crate) fn step(&self) -> u32 {
        self.step
    }

    /// Bytes of iteration-persistent scratch (trackers, caches, maps,
    /// fetch lists, dedup scratch).
    pub(crate) fn scratch_bytes(&self) -> usize {
        let trackers: usize = self
            .dest_trackers
            .iter()
            .chain(self.owner_trackers.iter().flatten())
            .map(|t| t.scratch_bytes())
            .sum();
        let caches: usize = self.caches.iter().map(|c| c.scratch_bytes()).sum();
        let maps: usize = self
            .slot_of
            .iter()
            .chain(&self.touch_mark)
            .chain(&self.late_lists)
            .chain(&self.early_lists)
            .map(|v| v.capacity() * std::mem::size_of::<u32>())
            .sum();
        trackers + caches + maps + self.dedup.scratch_bytes()
    }

    /// Phase 0: folds every newly visible batch (`index ≤ step + window`)
    /// into all trackers' need horizons.
    pub(crate) fn observe_visible(&mut self, win: &LookaheadWindow<'_>, n: usize) {
        while self.next_observe <= self.step as usize + self.window {
            let k = self.next_observe - self.step as usize;
            if let Some(b) = win.peek(k) {
                let bs = self.next_observe as u32;
                for (t, tr) in self.dest_trackers.iter_mut().enumerate() {
                    tr.observe(bs, slice_lookups(b, t, tr.dest, n), &mut self.dedup);
                }
                for (lt, per_dest) in self.owner_trackers.iter_mut().enumerate() {
                    let t = self.owned[lt];
                    for tr in per_dest.iter_mut() {
                        tr.observe(bs, slice_lookups(b, t, tr.dest, n), &mut self.dedup);
                    }
                }
            }
            self.next_observe += 1;
        }
    }

    /// Phase 1: waits for (or unwraps) the early fetch issued during the
    /// previous step and lands its rows in the cache.
    pub(crate) fn land_early_fetch(
        &mut self,
        nranks: usize,
        e: usize,
        rec: Option<&TimingRecorder>,
    ) {
        let Some(pending) = self.pending_early.take() else {
            return;
        };
        let recv = match pending {
            PendingFetch::Ready(recv) => recv,
            PendingFetch::InFlight(req) => match req.wait_recording(rec, OpKind::AlltoallWait) {
                OpOutput::PerRank(recv) => recv,
                other => panic!("early fetch returned {other:?}"),
            },
        };
        let lists = std::mem::take(&mut self.early_lists);
        self.unpack(&recv, &lists, nranks, e);
        self.early_lists = lists;
    }

    /// Phase 2: fetches the unique not-validly-cached rows of this rank's
    /// step-`j` slice from their owners (blocking — these rows are needed
    /// by the forward fan-out immediately). Owners pack canonical current
    /// weights; every rank participates symmetrically (empty payloads
    /// cost zero wire bytes).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn late_fetch(
        &mut self,
        j: u32,
        global: &MiniBatch,
        me: usize,
        nranks: usize,
        n: usize,
        local_tables: &[(usize, EmbeddingLayer)],
        comm: &Communicator,
        wire: WirePrecision,
        rec: Option<&TimingRecorder>,
    ) {
        // Destination side: decide what I need.
        let mut lists = std::mem::take(&mut self.late_lists);
        for (t, tr) in self.dest_trackers.iter_mut().enumerate() {
            tr.build_late_list(
                j,
                slice_lookups(global, t, me, n),
                &mut self.dedup,
                &mut lists[t],
            );
        }
        // Owner side: replicate every destination's decision and pack.
        let send = time_opt(rec, OpKind::AlltoallFramework, || {
            self.pack_fetch(j, global, n, nranks, local_tables, FetchKind::Late)
        });
        let recv = time_opt(rec, OpKind::AlltoallWait, || {
            alltoall_wire_tagged(comm, send, wire, TAG_PREFETCH)
        });
        let e = self.caches[0].width();
        self.unpack(&recv, &lists, nranks, e);
        self.late_lists = lists;
    }

    /// Phase 3: records batch `j`'s touches in the shared touch marks and
    /// every tracker's foreign marks.
    pub(crate) fn record_touches(&mut self, j: u32, global: &MiniBatch, n: usize) {
        for (t, touch) in self.touch_mark.iter_mut().enumerate() {
            for &row in &global.indices[t] {
                touch[row as usize] = j + 1;
            }
        }
        for (t, tr) in self.dest_trackers.iter_mut().enumerate() {
            tr.record_touches(j, &global.indices[t], &global.offsets[t], n);
        }
        for (lt, per_dest) in self.owner_trackers.iter_mut().enumerate() {
            let t = self.owned[lt];
            for tr in per_dest.iter_mut() {
                tr.record_touches(j, &global.indices[t], &global.offsets[t], n);
            }
        }
    }

    /// Phase 4: pools every table's local slice from cached rows, in
    /// `forward_serial`'s exact accumulate order — the local fan-out that
    /// replaces the pooled forward alltoall.
    pub(crate) fn pool_forward(&self, global: &MiniBatch, me: usize, n: usize, out: &mut [Matrix]) {
        for (t, out_t) in out.iter_mut().enumerate() {
            let cache = &self.caches[t];
            let slot_of = &self.slot_of[t];
            let idx = &global.indices[t];
            let off = &global.offsets[t];
            for b in 0..n {
                let gbag = me * n + b;
                let out_row = out_t.row_mut(b);
                out_row.fill(0.0);
                for s in off[gbag]..off[gbag + 1] {
                    let slot = slot_of[idx[s] as usize];
                    debug_assert_ne!(slot, NO_SLOT, "needed row not cached");
                    rowops::accumulate(self.isa, out_row, cache.row(slot as usize));
                }
            }
        }
    }

    /// Phase 5: issues the early fetch for batch `j+1` — rows the window
    /// shows are needed next step, not validly cached, and untouched by
    /// batch `j` (so the owner's pre-update pack is already the value the
    /// next step must see). On the CCL backend the exchange goes out on
    /// the engine's exchange channel and flies behind backward compute;
    /// blocking strategies run it inline.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn issue_early_fetch(
        &mut self,
        j: u32,
        win: &LookaheadWindow<'_>,
        me: usize,
        nranks: usize,
        n: usize,
        local_tables: &[(usize, EmbeddingLayer)],
        comm: &Communicator,
        engine: Option<&ProgressEngine>,
        wire: WirePrecision,
        rec: Option<&TimingRecorder>,
    ) {
        debug_assert!(self.pending_early.is_none());
        let Some(next) = win.peek(1) else {
            return; // stream drains: nothing to prefetch, all ranks agree
        };
        let mut lists = std::mem::take(&mut self.early_lists);
        for (t, tr) in self.dest_trackers.iter_mut().enumerate() {
            tr.build_early_list(
                j,
                slice_lookups(next, t, me, n),
                &self.touch_mark[t],
                &mut self.dedup,
                &mut lists[t],
            );
        }
        self.early_lists = lists;
        let send = time_opt(rec, OpKind::AlltoallFramework, || {
            self.pack_fetch(j, next, n, nranks, local_tables, FetchKind::Early)
        });
        self.pending_early = Some(match engine {
            Some(eng) => PendingFetch::InFlight(eng.alltoall_wire_tagged(
                EXCHANGE_CHANNEL,
                send,
                wire,
                TAG_PREFETCH,
            )),
            None => PendingFetch::Ready(time_opt(rec, OpKind::AlltoallWait, || {
                alltoall_wire_tagged(comm, send, wire, TAG_PREFETCH)
            })),
        });
    }

    /// Phase 7 (destination half): replays this rank's slice of the
    /// sparse update onto its cached rows — the delayed-update write path.
    /// Same `axpy`, same per-row order as the owner's canonical
    /// scatter-add restricted to this slice, so exclusively-mine rows
    /// stay bit-identical to the owner.
    pub(crate) fn apply_local_updates(
        &mut self,
        global: &MiniBatch,
        me: usize,
        n: usize,
        d_tables: &[Matrix],
        emb_lr: f32,
    ) {
        for (t, dy) in d_tables.iter().enumerate() {
            let cache = &mut self.caches[t];
            let slot_of = &self.slot_of[t];
            let idx = &global.indices[t];
            let off = &global.offsets[t];
            for b in 0..n {
                let gbag = me * n + b;
                for s in off[gbag]..off[gbag + 1] {
                    let slot = slot_of[idx[s] as usize];
                    debug_assert_ne!(slot, NO_SLOT);
                    rowops::axpy(self.isa, cache.row_mut(slot as usize), dy.row(b), -emb_lr);
                }
            }
        }
    }

    /// Phase 8: drains step `j`'s expiry buckets on every tracker,
    /// releasing destination cache slots, then advances the step.
    pub(crate) fn finish_step(&mut self, j: u32) {
        for (t, tr) in self.dest_trackers.iter_mut().enumerate() {
            let cache = &mut self.caches[t];
            let slot_of = &mut self.slot_of[t];
            tr.evict(j, |row| {
                let slot = slot_of[row as usize];
                debug_assert_ne!(slot, NO_SLOT);
                slot_of[row as usize] = NO_SLOT;
                cache.release(slot);
            });
        }
        for per_dest in self.owner_trackers.iter_mut() {
            for tr in per_dest.iter_mut() {
                tr.evict(j, |_| {});
            }
        }
        self.step = j + 1;
    }

    /// Owner-side pack: replays every destination's list build on the
    /// replica trackers and packs the requested rows — current canonical
    /// weights, concatenated over my owned tables (ascending) per
    /// destination. The layout mirrors [`PrefetchState::unpack`] exactly;
    /// no index metadata crosses the wire.
    fn pack_fetch(
        &mut self,
        j: u32,
        batch: &MiniBatch,
        n: usize,
        nranks: usize,
        local_tables: &[(usize, EmbeddingLayer)],
        kind: FetchKind,
    ) -> Vec<Vec<f32>> {
        let mut send: Vec<Vec<f32>> = (0..nranks).map(|_| Vec::new()).collect();
        let mut list = Vec::new();
        for (lt, per_dest) in self.owner_trackers.iter_mut().enumerate() {
            let t = self.owned[lt];
            debug_assert_eq!(local_tables[lt].0, t);
            let weight = &local_tables[lt].1.weight;
            for (p, tr) in per_dest.iter_mut().enumerate() {
                let slice = slice_lookups(batch, t, p, n);
                match kind {
                    FetchKind::Late => tr.build_late_list(j, slice, &mut self.dedup, &mut list),
                    FetchKind::Early => tr.build_early_list(
                        j,
                        slice,
                        &self.touch_mark[t],
                        &mut self.dedup,
                        &mut list,
                    ),
                }
                for &row in &list {
                    send[p].extend_from_slice(weight.row(row as usize));
                }
            }
        }
        send
    }

    /// Destination-side unpack: walks owners in rank order and their
    /// tables in ascending order, landing each listed row in the cache —
    /// the mirror image of [`PrefetchState::pack_fetch`].
    fn unpack(&mut self, recv: &[Vec<f32>], lists: &[Vec<u32>], nranks: usize, e: usize) {
        let s = self.caches.len();
        for (o, buf) in recv.iter().enumerate() {
            let mut cur = 0usize;
            // Owner o's tables in ascending order (round-robin placement),
            // iterated without the `tables_of` allocation — this runs every
            // step on the steady-state path.
            for t in (o..s).step_by(nranks) {
                let cache = &mut self.caches[t];
                let slot_of = &mut self.slot_of[t];
                for &row in &lists[t] {
                    let r = row as usize;
                    let slot = match slot_of[r] {
                        NO_SLOT => {
                            let slot = cache.acquire(row);
                            slot_of[r] = slot;
                            slot
                        }
                        slot => slot,
                    };
                    cache.set(slot as usize, row, &buf[cur..cur + e]);
                    cur += e;
                }
            }
            assert_eq!(cur, buf.len(), "fetch payload layout mismatch");
        }
    }
}

/// Which list builder [`PrefetchState::pack_fetch`] replays.
#[derive(Clone, Copy)]
enum FetchKind {
    Late,
    Early,
}
